module draid

go 1.23
