package draid_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"draid"
)

// wbArray builds a small write-back array: 5-wide RAID-5, 16 KB chunks
// (64 KB stripe data), staging on with a long idle-destage tick so tests
// control destage timing explicitly (via Flush or full-stripe coverage).
func wbArray(t *testing.T, seed int64) *draid.Array {
	t.Helper()
	arr, err := draid.New(draid.Config{
		Drives: 5, ChunkSize: 16 << 10, DriveCapacity: 1 << 20, Seed: seed,
		WriteBack: true, StageMB: 1, DestageIntervalMs: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

// TestWritebackReadYourWrites: sub-stripe writes are acknowledged without
// drive I/O, readable before destage (from the stage, through every read
// path), and land on the drives after Flush.
func TestWritebackReadYourWrites(t *testing.T) {
	arr := wbArray(t, 11)
	data := randBytes(21, 24<<10) // 1.5 chunks: sub-stripe, stays staged
	if err := arr.WriteSync(4<<10, data); err != nil {
		t.Fatal(err)
	}
	st := arr.Stats()
	if st.StagedWrites == 0 {
		t.Fatalf("sub-stripe write was not staged: %+v", st)
	}
	if st.DestageFullStripe+st.DestageRCW != 0 {
		t.Fatalf("premature destage: %+v", st)
	}
	got, err := arr.ReadSync(4<<10, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("staged read-your-writes returned wrong data")
	}
	// A read straddling staged and unstaged bytes must merge correctly.
	wide, err := arr.ReadSync(0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wide[4<<10:28<<10], data) {
		t.Fatal("straddling read lost staged bytes")
	}
	if err := arr.Flush(); err != nil {
		t.Fatal(err)
	}
	st = arr.Stats()
	if st.DestageFullStripe+st.DestageRCW == 0 {
		t.Fatalf("flush destaged nothing: %+v", st)
	}
	if n := arr.Controller().StagedBytes(); n != 0 {
		t.Fatalf("stage not drained after flush: %d bytes", n)
	}
	got, err = arr.ReadSync(4<<10, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-flush read returned wrong data")
	}
}

// TestWritebackFullCoverageDestagesImmediately: coalescing sub-stripe writes
// to full coverage triggers an immediate full-stripe destage — the optimal
// amplification path needs no timer.
func TestWritebackFullCoverageDestagesImmediately(t *testing.T) {
	arr := wbArray(t, 12)
	ref := randBytes(22, 64<<10)
	for c := 0; c < 4; c++ {
		if err := arr.WriteSync(int64(c)*16<<10, ref[c*16<<10:(c+1)*16<<10]); err != nil {
			t.Fatal(err)
		}
	}
	arr.Run()
	st := arr.Stats()
	if st.DestageFullStripe == 0 {
		t.Fatalf("full coverage did not destage as a full stripe: %+v", st)
	}
	if st.DestageRCW != 0 {
		t.Fatalf("full coverage paid RCW: %+v", st)
	}
	got, err := arr.ReadSync(0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("destaged stripe read back wrong")
	}
}

// TestWritebackFailoverAdoptsStage: acknowledged staged writes survive a host
// crash — the replacement controller replays the intent log via Adopt and
// serves them before any destage.
func TestWritebackFailoverAdoptsStage(t *testing.T) {
	arr := wbArray(t, 13)
	data := randBytes(23, 20<<10)
	if err := arr.WriteSync(8<<10, data); err != nil {
		t.Fatal(err)
	}
	if arr.Stats().StagedWrites == 0 {
		t.Fatal("write was not staged")
	}
	if _, err := arr.FailoverHost(); err != nil {
		t.Fatal(err)
	}
	got, err := arr.ReadSync(8<<10, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("staged write lost across failover")
	}
	if err := arr.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err = arr.ReadSync(8<<10, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("adopted write lost after destage")
	}
}

// TestWritebackTortureCrashMidDestage is the crash-consistency torture
// family: random acknowledged sub-stripe writes against a byte model, with
// host failovers fired while destages are in flight (drive writes abandoned
// mid-stripe), drive failure + degraded service + rebuild racing the stage,
// and background scrubbing under staged-but-not-destaged stripes. Every
// acknowledged write must be readable at every point — zero lost writes.
func TestWritebackTortureCrashMidDestage(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			arr, err := draid.New(draid.Config{
				Drives: 5, ChunkSize: 16 << 10, DriveCapacity: 1 << 20, Seed: seed,
				WriteBack: true, StageMB: 1, DestageIntervalMs: 1,
				Integrity: true,
				Hedge:     draid.HedgeConfig{Policy: draid.HedgeAdaptiveP95},
			})
			if err != nil {
				t.Fatal(err)
			}
			size := arr.Size()
			model := randBytes(seed+40, int(size))
			if err := arr.WriteSync(0, model); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 101))
			failed := -1
			for iter := 0; iter < 60; iter++ {
				// Random acknowledged sub-stripe write; write-back semantics
				// mean the ack makes it durable, so the model updates now.
				wLen := int64(1+rng.Intn(24)) << 10
				wOff := rng.Int63n(size - wLen)
				data := make([]byte, wLen)
				rng.Read(data)
				if err := arr.WriteSync(wOff, data); err != nil {
					t.Fatalf("iter %d write: %v", iter, err)
				}
				copy(model[wOff:], data)

				// Model-checked read (hedged/degraded/overlaid as the state
				// dictates).
				rLen := int64(1+rng.Intn(32)) << 10
				rOff := rng.Int63n(size - rLen)
				got, err := arr.ReadSync(rOff, rLen)
				if err != nil {
					t.Fatalf("iter %d read [%d,+%d): %v", iter, rOff, rLen, err)
				}
				if !bytes.Equal(got, model[rOff:rOff+rLen]) {
					t.Fatalf("iter %d read [%d,+%d) diverged from model", iter, rOff, rLen)
				}

				switch {
				case iter%9 == 4 && failed < 0:
					// Crash mid-destage: kick destages of everything staged
					// (their drive writes go in flight inline), then fail the
					// host over before they complete. The replacement adopts
					// the stage via the intent log; abandoned partial stripes
					// resync through the dirty bitmap. Only while healthy —
					// MD-style resync of a degraded stripe forfeits the
					// missing chunk, which is the classic RAID-5 double
					// failure, not a staging property.
					arr.Controller().FlushStage(func(error) {})
					if _, err := arr.FailoverHost(); err != nil {
						t.Fatalf("iter %d failover: %v", iter, err)
					}
				case iter%15 == 7 && failed < 0:
					failed = 1 + rng.Intn(4)
					arr.FailDrive(failed)
				case iter%15 == 13 && failed >= 0:
					if err := arr.RebuildDrive(failed, 0); err != nil {
						t.Fatalf("iter %d rebuild: %v", iter, err)
					}
					failed = -1
				case iter%10 == 9 && failed < 0:
					if _, err := arr.ScrubNow(); err != nil {
						t.Fatalf("iter %d scrub: %v", iter, err)
					}
				}
			}
			if failed >= 0 {
				if err := arr.RebuildDrive(failed, 0); err != nil {
					t.Fatal(err)
				}
			}
			if err := arr.Flush(); err != nil {
				t.Fatal(err)
			}
			st := arr.Stats()
			if st.StagedWrites == 0 || st.DestageFullStripe+st.DestageRCW == 0 {
				t.Fatalf("torture never exercised the stage: %+v", st)
			}
			got, err := arr.ReadSync(0, size)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model) {
				t.Fatal("device diverged from model after flush — acknowledged writes lost")
			}
			// One last crash after the flush: an empty stage adopts cleanly.
			if _, err := arr.FailoverHost(); err != nil {
				t.Fatal(err)
			}
			got, err = arr.ReadSync(0, size)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model) {
				t.Fatal("device diverged after post-flush failover")
			}
		})
	}
}

// TestWritebackReadCache: with a clean-read cache configured, repeated reads
// of the same range are served from host memory (CacheHits) and writes
// invalidate stale blocks.
func TestWritebackReadCache(t *testing.T) {
	arr, err := draid.New(draid.Config{
		Drives: 5, ChunkSize: 16 << 10, DriveCapacity: 1 << 20, Seed: 31,
		WriteBack: true, StageMB: 1, CacheMB: 1, DestageIntervalMs: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := randBytes(32, 64<<10)
	if err := arr.WriteSync(0, ref); err != nil { // full stripe: write-through
		t.Fatal(err)
	}
	if _, err := arr.ReadSync(0, 64<<10); err != nil { // fills the cache
		t.Fatal(err)
	}
	before := arr.Stats().CacheHits
	got, err := arr.ReadSync(8<<10, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref[8<<10:24<<10]) {
		t.Fatal("cached read returned wrong data")
	}
	st := arr.Stats()
	if st.CacheHits == before {
		t.Fatalf("repeat read missed the cache: %+v", st)
	}
	if st.CacheBytes == 0 {
		t.Fatalf("cache occupancy not accounted: %+v", st)
	}
	// Overwrite through the cache; the stale blocks must not be served.
	upd := randBytes(33, 64<<10)
	if err := arr.WriteSync(0, upd); err != nil {
		t.Fatal(err)
	}
	got, err = arr.ReadSync(8<<10, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, upd[8<<10:24<<10]) {
		t.Fatal("cache served stale data after overwrite")
	}
}

// TestGoldenWritebackDisabledByteIdentical pins the staging layer's
// zero-cost-when-off promise: with WriteBack false (the default) the golden
// workload produces a trace byte-identical to the pre-staging golden capture,
// and every staging surface stays inert.
func TestGoldenWritebackDisabledByteIdentical(t *testing.T) {
	arr := runGoldenWorkload(t, draid.Config{
		Drives: 5, ChunkSize: 64 << 10, DriveCapacity: 1 << 20,
		Seed: 3, Observe: draid.Observe{Trace: true},
		WriteBack: false,
	})
	if got, want := goldenTrace(t, arr), golden(t, "golden_single_volume_trace.json"); !bytes.Equal(got, want) {
		t.Errorf("writeback-disabled trace not byte-identical to golden (%d bytes vs %d)",
			len(got), len(want))
	}
	st := arr.Stats()
	if st.StagedWrites != 0 || st.DestageFullStripe != 0 || st.DestageRCW != 0 ||
		st.CacheHits != 0 || st.CacheBytes != 0 {
		t.Errorf("writeback disabled but staging counters moved: %+v", st)
	}
	if n := arr.Controller().StagedBytes(); n != 0 {
		t.Errorf("writeback disabled but stage reports %d bytes", n)
	}
	if err := arr.Flush(); err != nil { // must complete immediately as a no-op
		t.Errorf("no-op flush failed: %v", err)
	}
}

// TestWritebackConfigValidation: the sizing knobs require WriteBack.
func TestWritebackConfigValidation(t *testing.T) {
	for _, cfg := range []draid.Config{
		{StageMB: 16},
		{CacheMB: 4},
		{DestageIntervalMs: 5},
		{WriteBack: true, StageMB: -1},
	} {
		if _, err := draid.New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if err := (draid.Config{WriteBack: true, StageMB: 8, CacheMB: 2, DestageIntervalMs: 5}).Validate(); err != nil {
		t.Errorf("valid writeback config rejected: %v", err)
	}
}

// TestWritebackPoolVolume: staging composes with pooled volumes — per-volume
// stage, per-volume counters, co-tenant unaffected.
func TestWritebackPoolVolume(t *testing.T) {
	p, err := draid.NewPool(draid.PoolConfig{Drives: 5, DriveCapacity: 2 << 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	staged, err := p.OpenVolume(draid.VolumeConfig{
		Name: "staged", ChunkSize: 16 << 10, Extent: 1 << 20,
		WriteBack: true, StageMB: 1, DestageIntervalMs: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := p.OpenVolume(draid.VolumeConfig{Name: "plain", ChunkSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(41, 24<<10)
	if err := staged.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	if err := plain.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	if staged.Stats().StagedWrites == 0 {
		t.Fatal("pool volume did not stage")
	}
	if plain.Stats().StagedWrites != 0 {
		t.Fatal("co-tenant volume staged without WriteBack")
	}
	if err := staged.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := staged.ReadSync(0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pooled staged volume read back wrong data")
	}
}

// TestWritebackBenchmark: the closed-loop benchmark runs against a staged
// array and the write-mix ratios stay coherent.
func TestWritebackBenchmark(t *testing.T) {
	arr, err := draid.New(draid.Config{
		Drives: 8, ChunkSize: 64 << 10, SizeOnly: true, Seed: 17, WriteBack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := arr.Benchmark(draid.BenchmarkSpec{
		IOSizeBytes: 64 << 10, QueueDepth: 8,
		Ramp: 5 * time.Millisecond, Measure: 20 * time.Millisecond,
	})
	if res.BandwidthMBps <= 0 {
		t.Fatalf("no bandwidth measured: %+v", res)
	}
	if sum := res.FullStripeFrac + res.RMWFrac + res.RCWFrac; sum != 0 && (sum < 0.999 || sum > 1.001) {
		t.Fatalf("write-mix fractions do not sum to 1: %+v", res)
	}
}
