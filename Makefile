GO ?= go

.PHONY: all build test vet race verify trace torture chaos

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate; same sequence as scripts/verify.sh.
verify: build test vet race

# Demo: degraded-read trace, Perfetto-loadable JSON + flame summary.
trace:
	$(GO) run ./cmd/draid-trace -chrome draid-trace.json

# Adversarial fault-injection suites under the race detector: random
# concurrent I/O with mid-run crashes, automatic detection + hot-spare
# rebuild, host failover, the data-integrity tortures (scrub under
# foreground writes, rebuild through UREs, latent-error development), and
# the write-back staging tortures (controller crash mid-destage, intent-log
# adoption, destage racing rebuild), and the declustered-placement tortures
# (AddDrive rebalance racing foreground writes, destage, and a concurrent
# drive failure) — each across ≥2 seeds (seeds are baked into the test
# tables). Slower than `race`; run via FULL=1 scripts/verify.sh.
torture:
	$(GO) test -race -run 'TestTorture' ./internal/core -count=1
	$(GO) test -race -run 'TestAutoRecovery|TestFailoverHost|TestRecoveryTraceDeterminism|TestIntegrityTorture|TestWritebackTorture|TestDeclusterTorture' . -count=1

# Deterministic protocol chaos: one fault (partition, crash+failover, grey
# delay, capsule duplication) placed before every step of a seeded workload,
# healed, and checked against the membership invariants — no acked write
# lost, nothing stale visible, converged scrub. The teeth pass disables
# epoch enforcement and must DETECT the stale-destage corruption.
chaos:
	$(GO) run ./cmd/draid-chaos -wb
	$(GO) run ./cmd/draid-chaos
	$(GO) run ./cmd/draid-chaos -declustered -wb
	$(GO) run ./cmd/draid-chaos -wb -teeth
