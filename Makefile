GO ?= go

.PHONY: all build test vet race verify trace

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate; same sequence as scripts/verify.sh.
verify: build test vet race

# Demo: degraded-read trace, Perfetto-loadable JSON + flame summary.
trace:
	$(GO) run ./cmd/draid-trace -chrome draid-trace.json
