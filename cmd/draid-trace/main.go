// Command draid-trace prints the full protocol timeline of single dRAID
// operations — the clearest way to see the disaggregated data path: the
// PartialWrite/Parity broadcast, peer-to-peer partial-parity forwarding, the
// non-blocking reduce, and a degraded read's decoupled return paths.
//
// Usage:
//
//	draid-trace            # trace a partial-stripe write and a degraded read
//	draid-trace -level 6   # same on RAID-6 (P and Q reducers)
package main

import (
	"flag"
	"fmt"

	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/ssd"
)

func main() {
	level := flag.Int("level", 5, "RAID level: 5 or 6")
	targets := flag.Int("targets", 5, "stripe width")
	flag.Parse()

	lvl := raid.Raid5
	if *level == 6 {
		lvl = raid.Raid6
	}
	trace := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }

	spec := cluster.DefaultSpec()
	spec.Targets = *targets
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	spec.Drive = &drv
	spec.Trace = trace
	cl := cluster.New(spec)
	h := cl.NewDRAID(core.Config{
		Geometry: raid.Geometry{Level: lvl, Width: *targets, ChunkSize: 64 << 10},
		Trace:    trace,
	})

	fmt.Println("=== seeding stripe 0 (full-stripe write; parity on host) ===")
	h.Write(0, parity.Sized(int(h.Geometry().StripeDataSize())), func(err error) {
		fmt.Printf("--- seed complete err=%v ---\n", err)
	})
	cl.Eng.Run()

	fmt.Println()
	fmt.Println("=== partial-stripe write: 64 KB into chunk 0 (read-modify-write) ===")
	h.Write(0, parity.Sized(64<<10), func(err error) {
		fmt.Printf("--- partial write complete err=%v ---\n", err)
	})
	cl.Eng.Run()

	m := h.Geometry().DataDrive(0, 1)
	fmt.Println()
	fmt.Printf("=== failing member %d; degraded read of chunks 0-1 ===\n", m)
	cl.FailTarget(m)
	h.SetFailed(m, true)
	h.Read(0, 2*64<<10, func(b parity.Buffer, err error) {
		fmt.Printf("--- degraded read complete bytes=%d err=%v ---\n", b.Len(), err)
	})
	cl.Eng.Run()

	fmt.Println()
	fmt.Printf("host stats: %+v\n", h.Stats())
	out, in := cl.TotalHostBytes()
	fmt.Printf("host NIC totals: out=%d bytes in=%d bytes\n", out, in)
}
