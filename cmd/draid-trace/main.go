// Command draid-trace records the full virtual-time trace of single dRAID
// operations — the clearest way to see the disaggregated data path: the
// PartialWrite/Parity broadcast, peer-to-peer partial-parity forwarding, the
// non-blocking reduce, and a degraded read's decoupled return paths.
//
// It runs a short scripted scenario (full-stripe seed, partial-stripe
// read-modify-write, member failure, degraded read) with tracing enabled,
// then exports the trace:
//
//	draid-trace                       # flame summary on stdout + draid-trace.json
//	draid-trace -chrome deg.json      # choose the Chrome trace path
//	draid-trace -chrome -             # Chrome JSON on stdout, no summary
//	draid-trace -level 6 -drives 7    # same scenario on RAID-6
//
// Load the JSON in Perfetto (ui.perfetto.dev) or chrome://tracing: each
// storage server is a process row, and during the degraded read the Peer
// spans between server NICs carry the parity traffic that never touches the
// host NIC.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"draid"
)

func main() {
	level := flag.Int("level", 5, "RAID level: 5 or 6")
	drives := flag.Int("drives", 5, "stripe width")
	chrome := flag.String("chrome", "draid-trace.json", "Chrome trace_event output path (- for stdout)")
	flame := flag.Bool("flame", true, "print plain-text flame summary on stdout")
	policy := flag.String("reducer", "random", "reducer policy: random, fixed, or bwaware")
	flag.Parse()

	lvl := draid.Raid5
	if *level == 6 {
		lvl = draid.Raid6
	}
	red, err := draid.ParseReducerPolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	arr, err := draid.New(draid.Config{
		Level: lvl, Drives: *drives, ChunkSize: 64 << 10, DriveCapacity: 64 << 20,
		ReducerPolicy: red,
		Observe:       draid.Observe{Trace: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	quiet := *chrome == "-"
	say := func(format string, args ...any) {
		if !quiet {
			fmt.Printf(format+"\n", args...)
		}
	}

	stripeData := int(arr.Controller().Geometry().StripeDataSize())
	say("=== seeding stripe 0 (full-stripe write; parity on host) ===")
	if err := arr.WriteSync(0, make([]byte, stripeData)); err != nil {
		log.Fatal(err)
	}

	say("=== partial-stripe write: 64 KB into chunk 0 (read-modify-write) ===")
	if err := arr.WriteSync(0, make([]byte, 64<<10)); err != nil {
		log.Fatal(err)
	}

	m := arr.Controller().Geometry().DataDrive(0, 1)
	say("=== failing member %d; degraded read of chunks 0-1 ===", m)
	arr.FailDrive(m)
	if _, err := arr.ReadSync(0, 2*64<<10); err != nil {
		log.Fatal(err)
	}

	if *chrome == "-" {
		if err := arr.Trace().WriteChrome(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		if err := arr.Trace().WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		say("=== wrote %s (load in ui.perfetto.dev or chrome://tracing) ===", *chrome)
	}
	if *flame && !quiet {
		fmt.Println()
		if err := arr.Trace().WriteFlame(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	out, in := arr.HostTraffic()
	say("\nhost stats: %+v", arr.Stats())
	say("host NIC totals: out=%d bytes in=%d bytes (peer parity traffic bypasses the host)", out, in)
}
