// Command draid-bench regenerates the paper's tables and figures on the
// simulated testbed and prints the same rows/series the paper plots.
//
// Usage:
//
//	draid-bench -list
//	draid-bench -fig table1
//	draid-bench -fig fig10,fig12
//	draid-bench -fig all -quick
//	draid-bench -backend realtime -fig fig10 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"draid"
	"draid/internal/experiments"
	"draid/internal/sim"
)

func main() {
	var (
		backendF = flag.String("backend", "sim", "sim | realtime (realtime reruns the dRAID sweeps on wall clocks; -list shows its subset)")
		fig      = flag.String("fig", "", "experiment id(s), comma-separated, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "shrink sweeps to endpoints (smoke run)")
		ramp     = flag.Duration("ramp", 30*time.Millisecond, "per-point warm-up window (virtual on sim, wall-clock on realtime)")
		measure  = flag.Duration("measure", 100*time.Millisecond, "per-point measurement window (virtual on sim, wall-clock on realtime)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 1, "max concurrent simulations (results are identical for any value; realtime always runs serially)")
		rtTCP    = flag.Bool("rt-tcp", false, "realtime: capsules over loopback TCP instead of in-process channels")
		rtDir    = flag.String("rt-dir", "", "realtime: store drives as files under this directory (default: in-memory)")
	)
	flag.Parse()

	kind, err := draid.ParseBackend(*backendF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "draid-bench: %v\n", err)
		os.Exit(2)
	}
	allIDs := experiments.IDs
	if kind == draid.BackendRealtime {
		allIDs = experiments.RealtimeIDs
	}
	if *list {
		for _, id := range allIDs() {
			fmt.Println(id)
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "draid-bench: pass -fig <id>[,<id>...] or -list")
		os.Exit(2)
	}
	opts := experiments.Options{
		Quick:    *quick,
		Ramp:     sim.Duration(*ramp),
		Measure:  sim.Duration(*measure),
		Seed:     *seed,
		Parallel: *parallel,
	}
	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = allIDs()
	}
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}
	var reports []experiments.Report
	if kind == draid.BackendRealtime {
		ro := draid.RealtimeOptions{TCP: *rtTCP, Dir: *rtDir}
		reports, err = experiments.RunAllRealtime(ids, opts, ro)
	} else {
		reports, err = experiments.RunAll(ids, opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "draid-bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range reports {
		fmt.Println(r.Text)
		fmt.Printf("  (%s regenerated in %.1fs wall clock)\n\n", r.ID, r.Elapsed.Seconds())
	}
}
