// Command draid-bench regenerates the paper's tables and figures on the
// simulated testbed and prints the same rows/series the paper plots.
//
// Usage:
//
//	draid-bench -list
//	draid-bench -fig table1
//	draid-bench -fig fig10,fig12
//	draid-bench -fig all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"draid/internal/experiments"
	"draid/internal/sim"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id(s), comma-separated, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "shrink sweeps to endpoints (smoke run)")
		ramp     = flag.Duration("ramp", 30*time.Millisecond, "virtual warm-up window per point")
		measure  = flag.Duration("measure", 100*time.Millisecond, "virtual measurement window per point")
		seed     = flag.Int64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 1, "max concurrent simulations (results are identical for any value)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "draid-bench: pass -fig <id>[,<id>...] or -list")
		os.Exit(2)
	}
	opts := experiments.Options{
		Quick:    *quick,
		Ramp:     sim.Duration(*ramp),
		Measure:  sim.Duration(*measure),
		Seed:     *seed,
		Parallel: *parallel,
	}
	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = experiments.IDs()
	}
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}
	reports, err := experiments.RunAll(ids, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "draid-bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range reports {
		fmt.Println(r.Text)
		fmt.Printf("  (%s regenerated in %.1fs wall clock)\n\n", r.ID, r.Elapsed.Seconds())
	}
}
