// Command draid-fio runs an ad-hoc FIO-style workload against a chosen RAID
// system, either on the simulated testbed (virtual time, deterministic) or
// on the realtime backend (goroutine event loops, wall-clock timers, real
// protocol over channels or loopback TCP).
//
// Examples:
//
//	draid-fio -system draid -targets 8 -iosize 131072 -ratio 0 -qd 12
//	draid-fio -system spdk -targets 8 -fail 0 -ratio 1
//	draid-fio -system linux -level 6 -targets 8 -iosize 4096
//	draid-fio -backend realtime -targets 8 -iosize 131072 -qd 12
//	draid-fio -backend realtime -rt-tcp -fail 2 -ratio 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"draid"
	"draid/internal/experiments"
	"draid/internal/fio"
	"draid/internal/raid"
	"draid/internal/sim"
)

func main() {
	var (
		backend = flag.String("backend", "sim", "sim | realtime (realtime supports -system draid only)")
		system  = flag.String("system", "draid", "draid | spdk | linux")
		targets = flag.Int("targets", 8, "stripe width / storage servers")
		level   = flag.Int("level", 5, "RAID level: 5 or 6")
		chunk   = flag.Int64("chunk", 512<<10, "chunk size in bytes")
		iosize  = flag.Int64("iosize", 128<<10, "I/O size in bytes")
		ratio   = flag.Float64("ratio", 0, "read ratio in [0,1]")
		qd      = flag.Int("qd", 12, "queue depth")
		fail    = flag.String("fail", "", "comma-separated member indices to pre-fail")
		ramp    = flag.Duration("ramp", 30*time.Millisecond, "warm-up window (virtual on sim, wall-clock on realtime)")
		measure = flag.Duration("measure", 100*time.Millisecond, "measurement window (virtual on sim, wall-clock on realtime)")
		seed    = flag.Int64("seed", 1, "workload seed")
		rtTCP   = flag.Bool("rt-tcp", false, "realtime: capsules over loopback TCP instead of in-process channels")
		rtDir   = flag.String("rt-dir", "", "realtime: store drives as files under this directory (default: in-memory)")
		hedge   = flag.String("hedge", "off", "read hedging policy: off | fixed-delay | adaptive-p95 | eager-parity (dRAID only)")
		hdDelay = flag.Duration("hedge-delay", 0, "fixed-delay hedge trigger (0 = 500µs default)")
		slow    = flag.String("slow", "", "grey-drive injection, comma-separated member=profile entries (profiles: const:F, fade:F:RAMP, stall:STALL/PERIOD; e.g. 2=const:10,4=stall:2ms/10ms)")
		wb      = flag.Bool("writeback", false, "host-side write-back staging: small writes ack from host memory and destage as full stripes (dRAID only)")
		stageMB = flag.Int("stage-mb", 0, "staging buffer size in MiB (0 = 16 MiB default; requires -writeback)")
		cacheMB = flag.Int("cache-mb", 0, "host clean-read cache size in MiB (0 = none; requires -writeback)")
	)
	flag.Parse()

	kind, err := draid.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "draid-fio: %v\n", err)
		os.Exit(2)
	}
	var sys experiments.System
	switch strings.ToLower(*system) {
	case "draid":
		sys = experiments.DRAID
	case "spdk":
		sys = experiments.SPDK
	case "linux":
		sys = experiments.Linux
	default:
		fmt.Fprintf(os.Stderr, "draid-fio: unknown system %q\n", *system)
		os.Exit(2)
	}
	lvl := raid.Raid5
	if *level == 6 {
		lvl = raid.Raid6
	}
	var failed []int
	if *fail != "" {
		for _, part := range strings.Split(*fail, ",") {
			m, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "draid-fio: bad -fail entry %q\n", part)
				os.Exit(2)
			}
			failed = append(failed, m)
		}
	}
	hedgePolicy, err := draid.ParseHedgePolicy(*hedge)
	if err != nil {
		fmt.Fprintf(os.Stderr, "draid-fio: %v\n", err)
		os.Exit(2)
	}
	hedgeCfg := draid.HedgeConfig{Policy: hedgePolicy, Delay: *hdDelay}
	type slowEntry struct {
		member int
		prof   draid.SlowProfile
	}
	var slows []slowEntry
	if *slow != "" {
		for _, part := range strings.Split(*slow, ",") {
			mem, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "draid-fio: bad -slow entry %q (want member=profile)\n", part)
				os.Exit(2)
			}
			m, err := strconv.Atoi(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "draid-fio: bad -slow member %q\n", mem)
				os.Exit(2)
			}
			p, err := draid.ParseSlowProfile(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "draid-fio: %v\n", err)
				os.Exit(2)
			}
			slows = append(slows, slowEntry{m, p})
		}
	}
	if !*wb && (*stageMB != 0 || *cacheMB != 0) {
		fmt.Fprintf(os.Stderr, "draid-fio: -stage-mb/-cache-mb require -writeback\n")
		os.Exit(2)
	}
	greyPath := hedgePolicy != draid.HedgeOff || len(slows) > 0 || *wb
	if greyPath && sys != experiments.DRAID {
		fmt.Fprintf(os.Stderr, "draid-fio: -hedge/-slow/-writeback run the dRAID protocol only (got -system %s)\n", *system)
		os.Exit(2)
	}

	var res fio.Result
	var out, in int64
	var arr *draid.Array
	if kind == draid.BackendRealtime {
		if sys != experiments.DRAID {
			fmt.Fprintf(os.Stderr, "draid-fio: the realtime backend runs the dRAID protocol only (got -system %s)\n", *system)
			os.Exit(2)
		}
		a, err := draid.New(draid.Config{
			Backend:       draid.BackendRealtime,
			Realtime:      draid.RealtimeOptions{TCP: *rtTCP, Dir: *rtDir},
			Level:         lvl,
			Drives:        *targets,
			ChunkSize:     *chunk,
			DriveCapacity: 1 << 30,
			SizeOnly:      *rtDir == "", // file media need real bytes
			Seed:          *seed,
			Hedge:         hedgeCfg,
			WriteBack:     *wb,
			StageMB:       *stageMB,
			CacheMB:       *cacheMB,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "draid-fio: %v\n", err)
			os.Exit(1)
		}
		defer a.Close()
		arr = a
		for _, e := range slows {
			if err := a.Inject().SlowDrive(e.member, e.prof); err != nil {
				fmt.Fprintf(os.Stderr, "draid-fio: %v\n", err)
				os.Exit(1)
			}
		}
		for _, m := range failed {
			a.FailDrive(m)
		}
		res = fio.Run(fio.Job{
			Name: string(sys) + "/rt", Dev: a.Controller(), Eng: a.Cluster().Rt,
			IOSize: *iosize, ReadRatio: *ratio, QueueDepth: *qd,
			Ramp: sim.Duration(*ramp), Measure: sim.Duration(*measure), Seed: *seed,
		})
		out, in = a.HostTraffic()
	} else if greyPath {
		a, err := draid.New(draid.Config{
			Level:     lvl,
			Drives:    *targets,
			ChunkSize: *chunk,
			SizeOnly:  true,
			Seed:      *seed,
			Hedge:     hedgeCfg,
			WriteBack: *wb,
			StageMB:   *stageMB,
			CacheMB:   *cacheMB,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "draid-fio: %v\n", err)
			os.Exit(1)
		}
		arr = a
		for _, e := range slows {
			if err := a.Inject().SlowDrive(e.member, e.prof); err != nil {
				fmt.Fprintf(os.Stderr, "draid-fio: %v\n", err)
				os.Exit(1)
			}
		}
		for _, m := range failed {
			a.FailDrive(m)
		}
		res = fio.Run(fio.Job{
			Name: string(sys), Dev: a.Controller(), Eng: a.Cluster().Rt,
			IOSize: *iosize, ReadRatio: *ratio, QueueDepth: *qd,
			Ramp: sim.Duration(*ramp), Measure: sim.Duration(*measure), Seed: *seed,
		})
		out, in = a.HostTraffic()
	} else {
		dev, cl := experiments.Build(experiments.Setup{
			System: sys, Targets: *targets, Level: lvl, ChunkSize: *chunk,
			FailedMembers: failed, Seed: *seed,
		})
		res = fio.Run(fio.Job{
			Name: string(sys), Dev: dev, Eng: cl.Eng,
			IOSize: *iosize, ReadRatio: *ratio, QueueDepth: *qd,
			Ramp: sim.Duration(*ramp), Measure: sim.Duration(*measure), Seed: *seed,
		})
		out, in = cl.TotalHostBytes()
	}
	fmt.Println(res.String())
	user := res.ReadBytes + res.WriteBytes
	if user > 0 {
		fmt.Printf("host NIC traffic: out=%.2fx in=%.2fx of user bytes\n",
			float64(out)/float64(user), float64(in)/float64(user))
	}
	if arr != nil && hedgePolicy != draid.HedgeOff {
		st := arr.Stats()
		fmt.Printf("hedging (%s): %d hedged reads, %d hedge wins\n",
			hedgePolicy, st.HedgedReads, st.HedgeWins)
	}
	if arr != nil && *wb {
		st := arr.Stats()
		fmt.Printf("writeback: %d staged writes, %d full-stripe destages, %d RCW destages, %d cache hits\n",
			st.StagedWrites, st.DestageFullStripe, st.DestageRCW, st.CacheHits)
	}
}
