// Command draid-fio runs an ad-hoc FIO-style workload against a chosen RAID
// system on the simulated testbed.
//
// Examples:
//
//	draid-fio -system draid -targets 8 -iosize 131072 -ratio 0 -qd 12
//	draid-fio -system spdk -targets 8 -fail 0 -ratio 1
//	draid-fio -system linux -level 6 -targets 8 -iosize 4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"draid/internal/experiments"
	"draid/internal/fio"
	"draid/internal/raid"
	"draid/internal/sim"
)

func main() {
	var (
		system  = flag.String("system", "draid", "draid | spdk | linux")
		targets = flag.Int("targets", 8, "stripe width / storage servers")
		level   = flag.Int("level", 5, "RAID level: 5 or 6")
		chunk   = flag.Int64("chunk", 512<<10, "chunk size in bytes")
		iosize  = flag.Int64("iosize", 128<<10, "I/O size in bytes")
		ratio   = flag.Float64("ratio", 0, "read ratio in [0,1]")
		qd      = flag.Int("qd", 12, "queue depth")
		fail    = flag.String("fail", "", "comma-separated member indices to pre-fail")
		ramp    = flag.Duration("ramp", 30*time.Millisecond, "virtual warm-up")
		measure = flag.Duration("measure", 100*time.Millisecond, "virtual measurement window")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var sys experiments.System
	switch strings.ToLower(*system) {
	case "draid":
		sys = experiments.DRAID
	case "spdk":
		sys = experiments.SPDK
	case "linux":
		sys = experiments.Linux
	default:
		fmt.Fprintf(os.Stderr, "draid-fio: unknown system %q\n", *system)
		os.Exit(2)
	}
	lvl := raid.Raid5
	if *level == 6 {
		lvl = raid.Raid6
	}
	var failed []int
	if *fail != "" {
		for _, part := range strings.Split(*fail, ",") {
			m, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "draid-fio: bad -fail entry %q\n", part)
				os.Exit(2)
			}
			failed = append(failed, m)
		}
	}
	dev, cl := experiments.Build(experiments.Setup{
		System: sys, Targets: *targets, Level: lvl, ChunkSize: *chunk,
		FailedMembers: failed, Seed: *seed,
	})
	res := fio.Run(fio.Job{
		Name: string(sys), Dev: dev, Eng: cl.Eng,
		IOSize: *iosize, ReadRatio: *ratio, QueueDepth: *qd,
		Ramp: sim.Duration(*ramp), Measure: sim.Duration(*measure), Seed: *seed,
	})
	fmt.Println(res.String())
	out, in := cl.TotalHostBytes()
	user := res.ReadBytes + res.WriteBytes
	if user > 0 {
		fmt.Printf("host NIC traffic: out=%.2fx in=%.2fx of user bytes\n",
			float64(out)/float64(user), float64(in)/float64(user))
	}
}
