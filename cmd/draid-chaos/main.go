// Command draid-chaos runs the deterministic protocol chaos sweep: a seeded
// workload with one fault — partition, host crash+failover, grey slowness,
// capsule duplication — placed before every step in turn, healed, and checked
// against the membership invariants (no acked write lost, nothing stale
// visible, converged scrub). Every trial is addressable as
// (mode, seed, fault, step) and replays bit-identically on the sim backend.
//
//	draid-chaos                          # sim, fixed layout, write-through
//	draid-chaos -wb -declustered         # write-back staging, declustered layout
//	draid-chaos -backend realtime -tcp   # same schedules over loopback sockets
//	draid-chaos -seeds 4 -steps 4        # smaller sweep
//	draid-chaos -faults partition        # only partition-shaped faults
//	draid-chaos -teeth                   # disable epoch enforcement: the sweep
//	                                     # must now DETECT corruption (exit 0
//	                                     # only if violations were found)
//
// Exit status: 0 on a clean sweep, 1 on violations (inverted under -teeth:
// a teeth sweep that finds nothing proves the harness is blind).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"draid"
	"draid/internal/chaos"
)

func main() {
	backend := flag.String("backend", "sim", "backend: sim or realtime")
	tcp := flag.Bool("tcp", false, "use the TCP transport on the realtime backend")
	declustered := flag.Bool("declustered", false, "declustered layout instead of fixed geometry")
	wb := flag.Bool("wb", false, "write-back staging (host-side stage + destage)")
	teeth := flag.Bool("teeth", false, "disable server epoch enforcement; expect the sweep to catch corruption")
	seeds := flag.Int("seeds", 8, "number of workload seeds (1..n)")
	steps := flag.Int("steps", 6, "workload steps per trial; the fault is placed before each in turn")
	faults := flag.String("faults", "all", "fault set: all or partition")
	flag.Parse()

	mode := chaos.Mode{
		Declustered: *declustered,
		WriteBack:   *wb,
		Teeth:       *teeth,
		TCP:         *tcp,
	}
	switch *backend {
	case "sim":
		mode.Backend = draid.BackendSim
	case "realtime":
		mode.Backend = draid.BackendRealtime
	default:
		log.Fatalf("unknown backend %q (sim or realtime)", *backend)
	}

	opts := chaos.Options{Mode: mode, Steps: *steps}
	for s := int64(1); s <= int64(*seeds); s++ {
		opts.Seeds = append(opts.Seeds, s)
	}
	switch *faults {
	case "all":
		if *teeth {
			// Teeth hunts the stale-destage corruption; only the zombie
			// schedules can produce it.
			opts.Faults = []chaos.Fault{chaos.FaultIsolateSeize}
		}
	case "partition":
		opts.Faults = chaos.PartitionFaults()
	default:
		log.Fatalf("unknown fault set %q (all or partition)", *faults)
	}

	rep, err := chaos.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", mode, rep.Summary())
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	if *teeth {
		if rep.Clean() {
			fmt.Println("TEETH FAILURE: enforcement disabled but no corruption detected — the harness is blind")
			os.Exit(1)
		}
		fmt.Printf("teeth ok: %d/%d trials caught the stale corruption\n", len(rep.Violations), rep.Trials)
		return
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}
