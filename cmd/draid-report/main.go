// Command draid-report runs the machine-checkable encoding of the paper's
// claims against freshly regenerated figures and prints a PASS/FAIL report —
// the artifact-evaluation view of this reproduction.
//
// Usage:
//
//	draid-report              # full run (a few minutes)
//	draid-report -measure 50ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"draid/internal/experiments"
	"draid/internal/sim"
)

func main() {
	var (
		ramp    = flag.Duration("ramp", 30*time.Millisecond, "virtual warm-up window per point")
		measure = flag.Duration("measure", 100*time.Millisecond, "virtual measurement window per point")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	o := experiments.Options{
		Ramp:    sim.Duration(*ramp),
		Measure: sim.Duration(*measure),
		Seed:    *seed,
	}

	figs := map[string]experiments.Figure{}
	pass, fail := 0, 0
	start := time.Now()
	for _, e := range experiments.Expectations() {
		fig, ok := figs[e.FigureID]
		if !ok {
			var err error
			fig, err = experiments.RunFigure(e.FigureID, o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "draid-report: %v\n", err)
				os.Exit(1)
			}
			figs[e.FigureID] = fig
		}
		if err := e.Check(fig); err != nil {
			fail++
			fmt.Printf("FAIL  %-9s %s\n      %v\n", e.FigureID, e.Claim, err)
		} else {
			pass++
			fmt.Printf("pass  %-9s %s\n", e.FigureID, e.Claim)
		}
	}
	fmt.Printf("\n%d/%d paper claims reproduced (%.0fs wall clock)\n",
		pass, pass+fail, time.Since(start).Seconds())
	if fail > 0 {
		os.Exit(1)
	}
}
