// Command draid-rebuild demonstrates the automatic failure-recovery pipeline
// end to end: a drive fail-stops mid-workload with no notification to the
// controller, heartbeat probing detects it, the supervisor marks the member
// failed and rebuilds it onto a hot spare under a token-bucket rate limit
// while foreground I/O keeps serving, and a final full-device read verifies
// every byte survived.
//
//	draid-rebuild                      # RAID-5, 5+1 drives, one hot spare
//	draid-rebuild -level 6 -drives 7   # RAID-6 under the same crash
//	draid-rebuild -rate 100            # throttle the rebuild to 100 MB/s
//	draid-rebuild -chrome reb.json     # Chrome trace of the whole recovery
//
// The entire scenario runs in virtual time: same seed, same trace, every run.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"draid"
)

func main() {
	level := flag.Int("level", 5, "RAID level: 5 or 6")
	drives := flag.Int("drives", 5, "stripe width (excluding spares)")
	spares := flag.Int("spares", 1, "hot spares provisioned on the cluster")
	rate := flag.Float64("rate", 400, "rebuild throttle in MB/s (0 = unthrottled)")
	seed := flag.Int64("seed", 1, "workload and simulation seed")
	victim := flag.Int("victim", 2, "member index to crash")
	chrome := flag.String("chrome", "", "write a Chrome trace_event JSON of the recovery")
	verbose := flag.Bool("v", false, "print per-event recovery log with timestamps")
	flag.Parse()

	lvl := draid.Raid5
	if *level == 6 {
		lvl = draid.Raid6
	}
	arr, err := draid.New(draid.Config{
		Level: lvl, Drives: *drives, ChunkSize: 64 << 10, DriveCapacity: 8 << 20,
		Spares:          *spares,
		Health:          draid.HealthConfig{Detect: true, HeartbeatEvery: time.Millisecond},
		RebuildRateMBps: *rate,
		OpDeadline:      10 * time.Millisecond,
		Seed:            *seed,
		Observe:         draid.Observe{Trace: *chrome != ""},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Seed the device with a random image we can verify after recovery.
	rng := rand.New(rand.NewSource(*seed))
	ref := make([]byte, arr.Size())
	rng.Read(ref)
	const step = 1 << 20
	for off := 0; off < len(ref); off += step {
		end := off + step
		if end > len(ref) {
			end = len(ref)
		}
		if err := arr.WriteSync(int64(off), ref[off:end]); err != nil {
			log.Fatalf("seed write at %d: %v", off, err)
		}
	}
	fmt.Printf("seeded %d MB across %d drives (RAID-%d, %d spare)\n",
		len(ref)>>20, *drives, *level, *spares)

	// Fail-stop: the drive just stops answering. Nobody calls SetFailed.
	fmt.Printf("\nT=%v  member %d fail-stops (controller not told)\n", arr.Now(), *victim)
	arr.CrashDrive(*victim)

	// Keep foreground traffic flowing while detection and rebuild proceed.
	inflight, failed := 0, 0
	for i := 0; i < 32; i++ {
		off := int64(rng.Intn(len(ref)/step)) * step
		arr.Read(off, 64<<10, func(_ []byte, err error) {
			inflight--
			if err != nil {
				failed++
			}
		})
		inflight++
		arr.RunFor(500 * time.Microsecond)
	}
	arr.Run() // drain: detection fires, rebuild runs to completion

	fmt.Printf("T=%v  quiesced: %d foreground reads served during recovery (%d failed)\n",
		arr.Now(), 32-inflight-failed, failed)

	st := arr.RebuildStatus()
	fmt.Printf("\nrebuild: active=%v rebuilt %d/%d stripes onto node %v\n",
		st.Active, st.DoneStripes, st.TotalStripes, st.Dest)
	fmt.Printf("health:  %v  (failed drives: %v, spares left: %d)\n",
		arr.MemberHealth(), arr.FailedDrives(), arr.SparesAvailable())

	if *verbose {
		fmt.Println("\nrecovery event log (virtual time):")
		for _, e := range arr.RecoveryEvents() {
			fmt.Printf("  %v\n", e)
		}
	} else {
		kinds := make([]string, 0, 4)
		for _, e := range arr.RecoveryEvents() {
			kinds = append(kinds, e.Kind)
		}
		fmt.Printf("events:  %v  (-v for timestamps)\n", kinds)
	}

	got, err := arr.ReadSync(0, arr.Size())
	if err != nil {
		log.Fatalf("full read after recovery: %v", err)
	}
	if !bytes.Equal(got, ref) {
		log.Fatal("FAIL: device image diverged after recovery")
	}
	fmt.Printf("\nverify:  full %d MB read back byte-exact after recovery\n", len(ref)>>20)

	s := arr.Stats()
	fmt.Printf("stats:   probes=%d rebuiltStripes=%d degradedReads=%d\n",
		s.Probes, s.RebuiltStripes, s.DegradedReads)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		if err := arr.Trace().WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace:   wrote %s (load in ui.perfetto.dev)\n", *chrome)
	}
}
