package draid_test

import (
	"bytes"
	"testing"
	"time"

	"draid"
)

// recoveryArray builds a small array with one hot spare and automatic
// failure detection on.
func recoveryArray(t *testing.T, seed int64, observe bool) *draid.Array {
	t.Helper()
	return smallArray(t, draid.Config{
		Drives:        5,
		ChunkSize:     64 << 10,
		DriveCapacity: 4 << 20,
		Spares:        1,
		Health: draid.HealthConfig{
			Detect:         true,
			HeartbeatEvery: time.Millisecond,
		},
		RebuildRateMBps: 400,
		Seed:            seed,
		Observe:         draid.Observe{Trace: observe},
	})
}

// TestAutoRecovery is the public-API recovery proof: a drive crashes with NO
// SetFailed call, the array detects it via heartbeats, rebuilds onto the hot
// spare, and the full device reads back byte-exact.
func TestAutoRecovery(t *testing.T) {
	arr := recoveryArray(t, 3, false)
	ref := randBytes(21, int(arr.Size()))
	const step = 1 << 20
	for off := 0; off < len(ref); off += step {
		if err := arr.WriteSync(int64(off), ref[off:off+step]); err != nil {
			t.Fatalf("seed write at %d: %v", off, err)
		}
	}

	arr.CrashDrive(2) // fail-stop: the controller is not told
	if h := arr.MemberHealth(); h[2] != draid.Healthy {
		t.Fatalf("member 2 = %v before detection window, want healthy", h[2])
	}
	arr.RunFor(5 * time.Millisecond) // heartbeats notice and escalate
	arr.Run()                        // the launched rebuild drains

	if got := arr.FailedDrives(); len(got) != 0 {
		t.Fatalf("failed drives after auto-recovery = %v, want none", got)
	}
	if got := arr.SparesAvailable(); got != 0 {
		t.Fatalf("spares = %d, want 0 (consumed by rebuild)", got)
	}
	if st := arr.RebuildStatus(); st.Active {
		t.Fatalf("rebuild still active: %+v", st)
	}
	if h := arr.MemberHealth(); h[2] != draid.Healthy {
		t.Fatalf("member 2 = %v after rebuild, want healthy (served by spare)", h[2])
	}
	kinds := map[string]int{}
	for _, e := range arr.RecoveryEvents() {
		kinds[e.Kind]++
	}
	for _, want := range []string{"failed", "rebuild-start", "rebuild-done"} {
		if kinds[want] != 1 {
			t.Fatalf("recovery log %v: want exactly one %q event", arr.RecoveryEvents(), want)
		}
	}

	got, err := arr.ReadSync(0, arr.Size())
	if err != nil {
		t.Fatalf("full read after recovery: %v", err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("device image diverged after automatic recovery")
	}
}

// TestFailoverHost crashes the controller mid-write through the public API:
// the replacement resyncs exactly the write-intent-dirty stripes and resumes
// service.
func TestFailoverHost(t *testing.T) {
	arr := smallArray(t, draid.Config{Drives: 5, DriveCapacity: 4 << 20, Seed: 5})
	stripeBytes := int64(4) * (64 << 10)
	base := randBytes(31, int(4*stripeBytes))
	if err := arr.WriteSync(0, base); err != nil {
		t.Fatal(err)
	}

	// In-flight writes at crash time: callbacks will be abandoned.
	arr.Write(0, randBytes(32, int(stripeBytes)), func(error) {})
	arr.Write(2*stripeBytes, randBytes(33, int(stripeBytes)), func(error) {})
	arr.RunFor(20 * time.Microsecond)

	resynced, err := arr.FailoverHost()
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if resynced == 0 {
		t.Fatal("failover resynced nothing; expected dirty stripes from the in-flight writes")
	}
	if got := arr.Stats().Resyncs; got != int64(resynced) {
		t.Fatalf("stats resyncs = %d, want %d", got, resynced)
	}

	// Service resumes on the replacement controller.
	fresh := randBytes(34, int(stripeBytes))
	if err := arr.WriteSync(0, fresh); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	got, err := arr.ReadSync(0, stripeBytes)
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("post-failover roundtrip: %v", err)
	}
}

// TestRecoveryTraceDeterminism: the whole detection→rebuild pipeline runs in
// virtual time, so two same-seed recovery runs emit byte-identical traces.
func TestRecoveryTraceDeterminism(t *testing.T) {
	run := func() []byte {
		arr := recoveryArray(t, 9, true)
		data := randBytes(41, 256<<10)
		if err := arr.WriteSync(0, data); err != nil {
			t.Fatal(err)
		}
		arr.CrashDrive(1)
		arr.RunFor(5 * time.Millisecond)
		arr.Run()
		if got := arr.FailedDrives(); len(got) != 0 {
			t.Fatalf("recovery incomplete: failed = %v", got)
		}
		var buf bytes.Buffer
		if err := arr.Trace().WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed recovery runs produced different traces")
	}
	for _, want := range []string{"rebuild", "heartbeat"} {
		if !bytes.Contains(a, []byte(want)) {
			t.Fatalf("recovery trace missing %q", want)
		}
	}
}
