package draid_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"draid"
)

func smallArray(t *testing.T, cfg draid.Config) *draid.Array {
	t.Helper()
	if cfg.DriveCapacity == 0 {
		cfg.DriveCapacity = 64 << 20
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 64 << 10
	}
	if cfg.Drives == 0 {
		cfg.Drives = 5
	}
	arr, err := draid.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestPublicAPIRoundTrip(t *testing.T) {
	arr := smallArray(t, draid.Config{})
	data := randBytes(1, 100<<10)
	if err := arr.WriteSync(8<<10, data); err != nil {
		t.Fatal(err)
	}
	got, err := arr.ReadSync(8<<10, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	if arr.Size() <= 0 {
		t.Fatal("size")
	}
	if arr.Now() <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestDegradedReadThroughPublicAPI(t *testing.T) {
	arr := smallArray(t, draid.Config{})
	data := randBytes(2, 128<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	arr.FailDrive(1)
	if got := arr.FailedDrives(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed drives = %v", got)
	}
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}
}

func TestRebuildDriveRestoresRedundancy(t *testing.T) {
	arr := smallArray(t, draid.Config{Drives: 5})
	data := randBytes(3, 4*64<<10) // one full stripe
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	arr.FailDrive(2)
	if err := arr.RebuildDrive(2, 4); err != nil {
		t.Fatal(err)
	}
	if len(arr.FailedDrives()) != 0 {
		t.Fatal("drive still marked failed after rebuild")
	}
	// Fail a DIFFERENT drive: reads must now lean on the rebuilt one.
	arr.FailDrive(0)
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost after rebuild + second failure")
	}
}

func TestRaid6SurvivesTwoFailures(t *testing.T) {
	arr := smallArray(t, draid.Config{Level: draid.Raid6, Drives: 6})
	data := randBytes(4, 4*64<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	arr.FailDrive(0)
	arr.FailDrive(3)
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("RAID-6 dual-failure read mismatch")
	}
}

func TestTrafficAccounting(t *testing.T) {
	arr := smallArray(t, draid.Config{Drives: 8})
	if err := arr.WriteSync(0, randBytes(5, 64<<10)); err != nil {
		t.Fatal(err)
	}
	arr.ResetTraffic()
	if err := arr.WriteSync(0, randBytes(6, 64<<10)); err != nil {
		t.Fatal(err)
	}
	out, _ := arr.HostTraffic()
	if ratio := float64(out) / (64 << 10); ratio > 1.1 {
		t.Fatalf("dRAID RMW host outbound = %.2fx, want ~1x", ratio)
	}
}

func TestBenchmarkRuns(t *testing.T) {
	arr, err := draid.New(draid.Config{SizeOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	res := arr.Benchmark(draid.BenchmarkSpec{
		IOSizeBytes: 128 << 10, QueueDepth: 12,
		Ramp: 10 * time.Millisecond, Measure: 30 * time.Millisecond,
	})
	if res.BandwidthMBps < 1000 {
		t.Fatalf("bandwidth = %.0f MB/s, implausibly low", res.BandwidthMBps)
	}
	if res.AvgLatency <= 0 || res.P99Latency < res.AvgLatency/2 {
		t.Fatalf("latencies = %v / %v", res.AvgLatency, res.P99Latency)
	}
	if res.P50Latency <= 0 || res.P99Latency < res.P50Latency {
		t.Fatalf("quantiles out of order: p50=%v p99=%v", res.P50Latency, res.P99Latency)
	}
	if res.P999Latency < res.P99Latency {
		t.Fatalf("quantiles out of order: p99=%v p999=%v", res.P99Latency, res.P999Latency)
	}
	if res.IOPS <= 0 {
		t.Fatal("no IOPS")
	}
}

func TestWriteMixAccountsEveryWrite(t *testing.T) {
	// Every per-stripe write execution lands in exactly one mix bucket:
	// with each user write contained in a single healthy stripe (and no
	// staging coalescing them), full + RMW + RCW must equal the user write
	// count exactly.
	arr := smallArray(t, draid.Config{Seed: 11})
	cs := int64(64 << 10)
	sds := 4 * cs // 5 drives, RAID-5: 4 data chunks per stripe
	writes := 0
	put := func(off, n int64) {
		if err := arr.WriteSync(off, randBytes(off+n, int(n))); err != nil {
			t.Fatal(err)
		}
		writes++
	}
	for s := int64(0); s < 8; s++ {
		put(s*sds, sds)        // full stripe
		put(s*sds+4096, 8<<10) // sub-chunk partial → RMW
		put(s*sds+cs, 3*cs)    // most-of-stripe partial → RCW
	}
	st := arr.Stats()
	if st.Writes != int64(writes) {
		t.Fatalf("Writes = %d, issued %d", st.Writes, writes)
	}
	if got := st.FullStripeWrites + st.RMWWrites + st.RCWWrites; got != st.Writes {
		t.Fatalf("write mix leak: full %d + rmw %d + rcw %d = %d, want %d",
			st.FullStripeWrites, st.RMWWrites, st.RCWWrites, got, st.Writes)
	}
	if st.FullStripeWrites == 0 || st.RMWWrites == 0 || st.RCWWrites == 0 {
		t.Fatalf("expected every mode exercised: full %d, rmw %d, rcw %d",
			st.FullStripeWrites, st.RMWWrites, st.RCWWrites)
	}
}

func TestReducerPolicies(t *testing.T) {
	for _, policy := range []draid.ReducerPolicy{draid.ReducerRandom, draid.ReducerBWAware, draid.ReducerFixed} {
		arr := smallArray(t, draid.Config{ReducerPolicy: policy})
		data := randBytes(7, 64<<10)
		if err := arr.WriteSync(0, data); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		arr.FailDrive(arr.Controller().Geometry().DataDrive(0, 0))
		got, err := arr.ReadSync(0, int64(len(data)))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s: degraded read failed: %v", policy, err)
		}
	}
	if _, err := draid.New(draid.Config{ReducerPolicy: draid.ReducerPolicy(99)}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	for in, want := range map[string]draid.ReducerPolicy{
		"": draid.ReducerRandom, "random": draid.ReducerRandom,
		"fixed": draid.ReducerFixed, "bwaware": draid.ReducerBWAware,
	} {
		got, err := draid.ParseReducerPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseReducerPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := draid.ParseReducerPolicy("bogus"); err == nil {
		t.Fatal("bogus policy string accepted")
	}
}

func TestSizeOnlyMode(t *testing.T) {
	arr := smallArray(t, draid.Config{SizeOnly: true})
	if err := arr.WriteSync(0, make([]byte, 8<<10)); err != nil {
		t.Fatal(err)
	}
	got, err := arr.ReadSync(0, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8<<10 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestInvalidGeometry(t *testing.T) {
	if _, err := draid.New(draid.Config{Drives: 2}); err == nil {
		t.Fatal("2-drive RAID-5 accepted")
	}
}

func TestHeterogeneousNICConfig(t *testing.T) {
	arr := smallArray(t, draid.Config{TargetNICGbpsList: []float64{100, 25}})
	if err := arr.WriteSync(0, randBytes(8, 32<<10)); err != nil {
		t.Fatal(err)
	}
}

func TestDrivesPerServerConfig(t *testing.T) {
	arr := smallArray(t, draid.Config{Drives: 6, DrivesPerServer: 2})
	data := randBytes(9, 128<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	got, err := arr.ReadSync(0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("co-located array round-trip failed: %v", err)
	}
	// 6 members over 3 physical servers.
	servers := map[string]bool{}
	for _, nd := range arr.Cluster().Targets {
		servers[nd.Name()] = true
	}
	if len(servers) != 3 {
		t.Fatalf("server count = %d, want 3", len(servers))
	}
}

func TestOffloadedControllerMode(t *testing.T) {
	arr := smallArray(t, draid.Config{Drives: 8, OffloadController: true})
	data := randBytes(10, 64<<10)
	if err := arr.WriteSync(0, data); err != nil {
		t.Fatal(err)
	}
	arr.ResetTraffic()
	if err := arr.WriteSync(0, randBytes(11, 64<<10)); err != nil {
		t.Fatal(err)
	}
	out, _ := arr.HostTraffic()
	if ratio := float64(out) / (64 << 10); ratio > 1.05 {
		t.Fatalf("offloaded client outbound = %.2fx, want ~1x", ratio)
	}
	got, err := arr.ReadSync(0, 64<<10)
	if err != nil || len(got) != 64<<10 {
		t.Fatalf("offloaded read: %v", err)
	}
	// Degraded path still works through the thin client.
	arr.FailDrive(arr.Controller().Geometry().DataDrive(0, 0))
	if _, err := arr.ReadSync(0, 64<<10); err != nil {
		t.Fatalf("offloaded degraded read: %v", err)
	}
}
