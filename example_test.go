package draid_test

import (
	"fmt"

	"draid"
)

// Example demonstrates the whole dRAID lifecycle: build an array, write
// through the disaggregated partial-write path, survive a drive failure,
// and rebuild.
func Example() {
	arr, err := draid.New(draid.Config{
		Drives:        5,
		ChunkSize:     64 << 10,
		DriveCapacity: 64 << 20,
	})
	if err != nil {
		panic(err)
	}

	payload := []byte("the bytes survive the drive")
	if err := arr.WriteSync(0, payload); err != nil {
		panic(err)
	}

	arr.FailDrive(0)
	got, err := arr.ReadSync(0, int64(len(payload)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("degraded read: %q\n", got)

	if err := arr.RebuildDrive(0, 1); err != nil {
		panic(err)
	}
	fmt.Printf("failed drives after rebuild: %d\n", len(arr.FailedDrives()))
	// Output:
	// degraded read: "the bytes survive the drive"
	// failed drives after rebuild: 0
}
