// Package objstore is the paper's "lightweight hash-based object store that
// runs directly on the block device layer" (§9.6): fixed-size objects in
// hash-addressed slots, one block I/O per Get/Put, metadata (occupancy,
// key→slot) kept in memory like a cache index.
package objstore

import (
	"errors"
	"fmt"

	"draid/internal/blockdev"
	"draid/internal/parity"
	"draid/internal/sim"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("objstore: key not found")
	ErrFull     = errors.New("objstore: store full")
)

// Store is a fixed-object-size hash store over a block device.
type Store struct {
	eng     *sim.Engine
	dev     blockdev.Device
	objSize int64
	slots   int64
	index   map[uint64]int64 // key → slot
	used    map[int64]uint64 // slot → key
	puts    int64
	gets    int64
}

// New creates a store of objSize-byte objects covering the whole device.
func New(eng *sim.Engine, dev blockdev.Device, objSize int64) *Store {
	if objSize <= 0 || objSize > dev.Size() {
		panic(fmt.Sprintf("objstore: object size %d vs device %d", objSize, dev.Size()))
	}
	return &Store{
		eng: eng, dev: dev, objSize: objSize,
		slots: dev.Size() / objSize,
		index: make(map[uint64]int64),
		used:  make(map[int64]uint64),
	}
}

// Slots returns the store's capacity in objects.
func (s *Store) Slots() int64 { return s.slots }

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.index) }

// ObjectSize returns the fixed object size.
func (s *Store) ObjectSize() int64 { return s.objSize }

func hashKey(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	key *= 0xC4CEB9FE1A85EC53
	return key ^ (key >> 33)
}

// slotFor finds the slot for key (existing, or a free one via linear
// probing).
func (s *Store) slotFor(key uint64) (int64, error) {
	if slot, ok := s.index[key]; ok {
		return slot, nil
	}
	if int64(len(s.index)) >= s.slots {
		return 0, ErrFull
	}
	slot := int64(hashKey(key) % uint64(s.slots))
	for {
		if _, busy := s.used[slot]; !busy {
			return slot, nil
		}
		slot = (slot + 1) % s.slots
	}
}

// Put stores an object. data shorter than the object size is padded; longer
// is an error.
func (s *Store) Put(key uint64, data parity.Buffer, cb func(error)) {
	if int64(data.Len()) > s.objSize {
		s.eng.Defer(func() { cb(fmt.Errorf("objstore: object %d bytes exceeds slot %d", data.Len(), s.objSize)) })
		return
	}
	slot, err := s.slotFor(key)
	if err != nil {
		s.eng.Defer(func() { cb(err) })
		return
	}
	s.puts++
	payload := data
	if int64(data.Len()) < s.objSize {
		if data.Elided() {
			payload = parity.Sized(int(s.objSize))
		} else {
			p := parity.Alloc(int(s.objSize))
			p.CopyAt(0, data)
			payload = p
		}
	}
	s.dev.Write(slot*s.objSize, payload, func(err error) {
		if err == nil {
			s.index[key] = slot
			s.used[slot] = key
		}
		cb(err)
	})
}

// Get fetches an object.
func (s *Store) Get(key uint64, cb func(parity.Buffer, error)) {
	slot, ok := s.index[key]
	if !ok {
		s.eng.Defer(func() { cb(parity.Buffer{}, ErrNotFound) })
		return
	}
	s.gets++
	s.dev.Read(slot*s.objSize, s.objSize, cb)
}

// Delete removes an object's mapping (the slot is reusable immediately; the
// device bytes are left behind, as in the paper's lightweight design).
func (s *Store) Delete(key uint64) error {
	slot, ok := s.index[key]
	if !ok {
		return ErrNotFound
	}
	delete(s.index, key)
	delete(s.used, slot)
	return nil
}

// Stats returns (puts, gets) op counters.
func (s *Store) Stats() (puts, gets int64) { return s.puts, s.gets }
