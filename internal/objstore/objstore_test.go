package objstore

import (
	"bytes"
	"errors"
	"testing"

	"draid/internal/blockdev"
	"draid/internal/parity"
	"draid/internal/sim"
)

func newStore(t *testing.T, devSize, objSize int64) (*sim.Engine, *Store) {
	t.Helper()
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, devSize, 10*sim.Microsecond)
	return eng, New(eng, dev, objSize)
}

func TestPutGetRoundTrip(t *testing.T) {
	eng, s := newStore(t, 1<<20, 4096)
	want := []byte("object payload")
	var got []byte
	s.Put(42, parity.FromBytes(want), func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
		s.Get(42, func(b parity.Buffer, err error) {
			if err != nil {
				t.Errorf("get: %v", err)
			}
			got = b.Data()[:len(want)]
		})
	})
	eng.Run()
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	eng, s := newStore(t, 1<<20, 4096)
	var err error
	s.Get(7, func(_ parity.Buffer, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteSameSlot(t *testing.T) {
	eng, s := newStore(t, 1<<20, 4096)
	s.Put(1, parity.FromBytes([]byte("v1")), func(error) {})
	eng.Run()
	s.Put(1, parity.FromBytes([]byte("v2")), func(error) {})
	eng.Run()
	if s.Len() != 1 {
		t.Fatalf("len = %d after overwrite", s.Len())
	}
	var got []byte
	s.Get(1, func(b parity.Buffer, _ error) { got = b.Data()[:2] })
	eng.Run()
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
}

func TestCollisionProbing(t *testing.T) {
	eng, s := newStore(t, 16*4096, 4096) // 16 slots
	// Insert more keys than likely collision-free; all must coexist.
	for k := uint64(0); k < 12; k++ {
		payload := []byte{byte(k)}
		s.Put(k, parity.FromBytes(payload), func(err error) {
			if err != nil {
				t.Errorf("put %d: %v", k, err)
			}
		})
		eng.Run()
	}
	for k := uint64(0); k < 12; k++ {
		var got byte
		s.Get(k, func(b parity.Buffer, err error) {
			if err != nil {
				t.Errorf("get %d: %v", k, err)
				return
			}
			got = b.Data()[0]
		})
		eng.Run()
		if got != byte(k) {
			t.Fatalf("key %d read wrong slot (got %d)", k, got)
		}
	}
}

func TestFull(t *testing.T) {
	eng, s := newStore(t, 2*4096, 4096)
	for k := uint64(0); k < 2; k++ {
		s.Put(k, parity.FromBytes([]byte{1}), func(err error) {
			if err != nil {
				t.Errorf("put: %v", err)
			}
		})
		eng.Run()
	}
	var err error
	s.Put(99, parity.FromBytes([]byte{1}), func(e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestDeleteFreesSlot(t *testing.T) {
	eng, s := newStore(t, 2*4096, 4096)
	s.Put(1, parity.FromBytes([]byte{1}), func(error) {})
	s.Put(2, parity.FromBytes([]byte{2}), func(error) {})
	eng.Run()
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if s.Delete(1) == nil {
		t.Fatal("double delete should fail")
	}
	var err error
	s.Put(3, parity.FromBytes([]byte{3}), func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("put after delete: %v", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	eng, s := newStore(t, 1<<20, 1024)
	var err error
	s.Put(1, parity.Sized(2048), func(e error) { err = e })
	eng.Run()
	if err == nil {
		t.Fatal("oversize object accepted")
	}
}

func TestElidedPayloads(t *testing.T) {
	eng, s := newStore(t, 1<<20, 4096)
	s.Put(5, parity.Sized(1000), func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
	})
	eng.Run()
	var n int
	s.Get(5, func(b parity.Buffer, err error) { n = b.Len() })
	eng.Run()
	if n != 4096 {
		t.Fatalf("got %d bytes, want full slot", n)
	}
	puts, gets := s.Stats()
	if puts != 1 || gets != 1 {
		t.Fatalf("stats = %d,%d", puts, gets)
	}
}
