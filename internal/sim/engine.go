// Package sim provides the deterministic discrete-event engine that all
// simulated substrates (network, drives, CPUs) and controllers run on.
//
// A single goroutine executes events in virtual-time order. Events scheduled
// for the same instant run in scheduling order (FIFO), which makes every run
// fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is distinct from
// time.Duration only to keep virtual and wall-clock time from mixing by
// accident; use the helper constructors below.
type Duration = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func Seconds(d Duration) float64 { return float64(d) / float64(Second) }

// String renders a Time using time.Duration formatting.
func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	fn   func()
	idx  int // heap index, -1 once popped or cancelled
	dead bool
	bg   bool // background: does not keep Run from returning
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not ready
// for use; call NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// processed counts executed events, exposed for tests and debugging.
	processed uint64
	// live counts scheduled events that are neither fired nor cancelled —
	// unlike len(queue), it ignores dead timers awaiting heap reaping.
	live int
	// liveFG counts live foreground events only. Run returns when it reaches
	// zero; pending background events (periodic health probes, maintenance
	// tickers) stay queued for the next Run/RunFor.
	liveFG int
	obs    Observer
}

// Observer receives run-loop lifecycle notifications. It exists for
// instrumentation (the tracing subsystem's gauge ticker and per-run spans);
// a nil observer costs one pointer test per Run.
type Observer interface {
	// RunStart fires when Run/RunUntil begins executing events.
	RunStart(now Time)
	// RunEnd fires when the run loop returns, with the cumulative processed
	// event count.
	RunEnd(now Time, processed uint64)
}

// SetObserver installs the run-loop observer (nil to remove).
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	eng *Engine
	ev  *event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.idx < 0 {
		return false
	}
	t.ev.dead = true
	t.eng.live--
	if !t.ev.bg {
		t.eng.liveFG--
	}
	return true
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic error in a causal simulation.
func (e *Engine) At(at Time, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.live++
	e.liveFG++
	heap.Push(&e.queue, ev)
	return &Timer{eng: e, ev: ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+Time(d), fn)
}

// AfterBG schedules fn as a background event d nanoseconds from now: it runs
// like any other event while foreground work remains, but does not by itself
// keep Run from returning. Periodic maintenance (heartbeat probing, repair
// tickers) uses it so an otherwise-idle simulation still quiesces; drive
// background work forward with RunFor/RunUntil.
func (e *Engine) AfterBG(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	at := e.now + Time(d)
	ev := &event{at: at, seq: e.seq, fn: fn, bg: true}
	e.seq++
	e.live++
	heap.Push(&e.queue, ev)
	return &Timer{eng: e, ev: ev}
}

// Defer schedules fn to run at the current time, after all events already
// queued for this instant. It is the simulation analogue of "post to the
// event loop" and is the usual way to break call-stack recursion between
// components.
func (e *Engine) Defer(fn func()) *Timer { return e.After(0, fn) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until no live foreground events remain or Stop is
// called. Background events (AfterBG) interleave normally while foreground
// work exists but never extend the run on their own. It returns the virtual
// time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	if e.obs != nil {
		e.obs.RunStart(e.now)
	}
	for e.liveFG > 0 && !e.stopped {
		e.step()
	}
	if e.obs != nil {
		e.obs.RunEnd(e.now, e.processed)
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline. The clock is left at
// min(deadline, time of last event) if the queue drains early, or exactly
// deadline otherwise.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	if e.obs != nil {
		e.obs.RunStart(e.now)
	}
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			e.now = deadline
			break
		}
		e.step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	if e.obs != nil {
		e.obs.RunEnd(e.now, e.processed)
	}
}

// RunFor advances the clock by d, executing all events in the window.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now + Time(d)) }

// Call executes fn inside the engine's execution domain. A single-goroutine
// simulation's domain is simply the caller, so fn runs inline; the method
// exists so code written against the backend Runner interface (where Call
// marshals onto an event loop) works unchanged on the simulation.
func (e *Engine) Call(fn func()) { fn() }

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	if ev.dead {
		return
	}
	e.live--
	if !ev.bg {
		e.liveFG--
	}
	e.now = ev.at
	e.processed++
	ev.fn()
}

// Pending reports the number of events in the queue, including cancelled
// events not yet reaped.
func (e *Engine) Pending() int { return len(e.queue) }

// Live reports the number of scheduled events that are neither fired nor
// cancelled, background included.
func (e *Engine) Live() int { return e.live }

// LiveFG reports live foreground events only. The tracing ticker re-arms on
// this rather than Live so that perpetual background tickers (heartbeat
// probes, periodic scrub) cannot keep the sampler — itself foreground —
// re-arming forever and prevent Run from returning.
func (e *Engine) LiveFG() int { return e.liveFG }
