package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var at1, at2 Time
	e.After(100, func() {
		at1 = e.Now()
		e.After(50, func() { at2 = e.Now() })
	})
	e.Run()
	if at1 != 100 || at2 != 150 {
		t.Fatalf("at1=%v at2=%v, want 100,150", at1, at2)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(10, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestRunUntilLeavesClockAtDeadline(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {})
	e.At(100, func() {})
	e.RunUntil(50)
	if e.Now() != 50 {
		t.Fatalf("now = %v, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("now=%v pending=%d after second RunUntil", e.Now(), e.Pending())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(5, func() { count++ })
	e.At(15, func() { count++ })
	e.RunFor(10)
	if e.Now() != 10 || count != 1 {
		t.Fatalf("now=%v count=%d, want 10,1", e.Now(), count)
	}
	e.RunFor(10)
	if e.Now() != 20 || count != 2 {
		t.Fatalf("now=%v count=%d, want 20,2", e.Now(), count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	for i := 1; i <= 100; i++ {
		e.At(Time(i), func() {
			ran++
			if ran == 10 {
				e.Stop()
			}
		})
	}
	e.Run()
	if ran != 10 {
		t.Fatalf("ran = %d events, want 10", ran)
	}
	if e.Pending() != 90 {
		t.Fatalf("pending = %d, want 90", e.Pending())
	}
}

func TestDeferRunsAfterQueuedSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.At(10, func() {
		e.Defer(func() { got = append(got, "deferred") })
	})
	e.At(10, func() { got = append(got, "second") })
	e.Run()
	if len(got) != 2 || got[0] != "second" || got[1] != "deferred" {
		t.Fatalf("got %v, want [second deferred]", got)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var samples []int64
		var tick func()
		tick = func() {
			samples = append(samples, e.rng.Int63n(1000), int64(e.Now()))
			if len(samples) < 200 {
				e.After(Duration(1+e.rng.Int63n(50)), tick)
			}
		}
		e.After(1, tick)
		e.Run()
		return samples
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and the engine processes exactly len(delays) events.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var times []Time
		for _, d := range delays {
			e.After(Duration(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return e.Processed() == uint64(len(delays))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%100), func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}
