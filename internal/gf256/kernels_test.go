package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randBytes returns n pseudo-random bytes including occasional zeros (the
// scalar kernels special-case zero operands).
func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	for i := range b {
		if rng.Intn(16) == 0 {
			b[i] = 0
		}
	}
	return b
}

// kernelLengths crosses the 8-byte word boundary in both directions and
// includes the empty and sub-word cases the remainder loops handle.
func kernelLengths(rng *rand.Rand) []int {
	out := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 257}
	for i := 0; i < 8; i++ {
		out = append(out, rng.Intn(4096))
	}
	return out
}

func TestXORSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range kernelLengths(rng) {
		for _, off := range []int{0, 1, 3, 5} {
			src := randBytes(rng, n+off)[off:]
			dst := randBytes(rng, n+off)[off:]
			want := append([]byte(nil), dst...)
			xorSliceScalar(want, src)
			XORSlice(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("XORSlice mismatch at len=%d off=%d", n, off)
			}
		}
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 256; c++ {
		for _, n := range []int{0, 1, 7, 8, 9, 31, 257} {
			src := randBytes(rng, n)
			dst := randBytes(rng, n)
			want := make([]byte, n)
			mulSliceScalar(want, src, byte(c))
			MulSlice(dst, src, byte(c))
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulSlice mismatch at c=%d len=%d", c, n)
			}
		}
	}
}

func TestMulAddSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for c := 0; c < 256; c++ {
		for _, n := range []int{0, 1, 7, 8, 9, 31, 257} {
			src := randBytes(rng, n)
			dst := randBytes(rng, n)
			want := append([]byte(nil), dst...)
			mulAddSliceScalar(want, src, byte(c))
			MulAddSlice(dst, src, byte(c))
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSlice mismatch at c=%d len=%d", c, n)
			}
		}
	}
}

func TestMulAddSliceUnalignedOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, off := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		n := 300
		src := randBytes(rng, n+off)[off:]
		dst := randBytes(rng, n+off)[off:]
		want := append([]byte(nil), dst...)
		mulAddSliceScalar(want, src, 0x8e)
		MulAddSlice(dst, src, 0x8e)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlice mismatch at offset %d", off)
		}
	}
}

func TestSyndromePQMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{0, 1, 2, 3, 6, 16} {
		for _, n := range []int{0, 1, 7, 8, 9, 64, 257, 1000} {
			data := make([][]byte, k)
			for i := range data {
				data[i] = randBytes(rng, n)
			}
			p, q := randBytes(rng, n), randBytes(rng, n)
			wantP, wantQ := make([]byte, n), make([]byte, n)
			syndromePQScalar(wantP, wantQ, data)
			SyndromePQ(p, q, data)
			if !bytes.Equal(p, wantP) {
				t.Fatalf("P mismatch at k=%d n=%d", k, n)
			}
			if !bytes.Equal(q, wantQ) {
				t.Fatalf("Q mismatch at k=%d n=%d", k, n)
			}

			// The nil-p and nil-q halves must agree with the fused pass.
			pOnly, qOnly := randBytes(rng, n), randBytes(rng, n)
			SyndromePQ(pOnly, nil, data)
			SyndromePQ(nil, qOnly, data)
			if !bytes.Equal(pOnly, wantP) || !bytes.Equal(qOnly, wantQ) {
				t.Fatalf("nil-arm mismatch at k=%d n=%d", k, n)
			}
		}
	}
}

func TestSyndromePQLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"chunk": func() { SyndromePQ(make([]byte, 8), make([]byte, 8), [][]byte{make([]byte, 7)}) },
		"pq":    func() { SyndromePQ(make([]byte, 8), make([]byte, 9), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMul2x8MatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 1000; trial++ {
		v := rng.Uint64()
		got := mul2x8(v)
		for lane := 0; lane < 8; lane++ {
			b := byte(v >> (8 * lane))
			if want := Mul(b, 2); byte(got>>(8*lane)) != want {
				t.Fatalf("mul2x8 lane %d of %#x: got %#x want %#x", lane, v, byte(got>>(8*lane)), want)
			}
		}
	}
}

func FuzzXORSlice(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		dst, src := append([]byte(nil), a[:n]...), b[:n]
		want := append([]byte(nil), dst...)
		xorSliceScalar(want, src)
		XORSlice(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("mismatch for len %d", n)
		}
	})
}

func FuzzMulAddSlice(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, byte(0x1d))
	f.Fuzz(func(t *testing.T, a, b []byte, c byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		dst, src := append([]byte(nil), a[:n]...), b[:n]
		want := append([]byte(nil), dst...)
		mulAddSliceScalar(want, src, c)
		MulAddSlice(dst, src, c)
		if !bytes.Equal(dst, want) {
			t.Fatalf("mismatch for len %d c %d", n, c)
		}
	})
}

func FuzzSyndromePQ(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(3))
	f.Fuzz(func(t *testing.T, flat []byte, k uint8) {
		chunks := int(k%8) + 1
		n := len(flat) / chunks
		data := make([][]byte, chunks)
		for i := range data {
			data[i] = flat[i*n : (i+1)*n]
		}
		p, q := make([]byte, n), make([]byte, n)
		wantP, wantQ := make([]byte, n), make([]byte, n)
		syndromePQScalar(wantP, wantQ, data)
		SyndromePQ(p, q, data)
		if !bytes.Equal(p, wantP) || !bytes.Equal(q, wantQ) {
			t.Fatalf("mismatch for %d chunks of %d bytes", chunks, n)
		}
	})
}

// --- microbenchmarks ---------------------------------------------------------

var benchSizes = []int{4 << 10, 64 << 10, 512 << 10}

func sizeName(n int) string {
	return fmt.Sprintf("%dKB", n>>10)
}

func benchPair(n int) (dst, src []byte) {
	dst, src = make([]byte, n), make([]byte, n)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	return dst, src
}

func BenchmarkXORSlice(b *testing.B) {
	for _, n := range benchSizes {
		dst, src := benchPair(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				XORSlice(dst, src)
			}
		})
		b.Run(sizeName(n)+"-scalar", func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				xorSliceScalar(dst, src)
			}
		})
	}
}

func BenchmarkMulSlice(b *testing.B) {
	for _, n := range benchSizes {
		dst, src := benchPair(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulSlice(dst, src, 0x1d)
			}
		})
		b.Run(sizeName(n)+"-scalar", func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				mulSliceScalar(dst, src, 0x1d)
			}
		})
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	for _, n := range benchSizes {
		dst, src := benchPair(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulAddSlice(dst, src, 0x1d)
			}
		})
		b.Run(sizeName(n)+"-scalar", func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				mulAddSliceScalar(dst, src, 0x1d)
			}
		})
	}
}

func BenchmarkSyndromePQ(b *testing.B) {
	const k = 6
	for _, n := range benchSizes {
		data := make([][]byte, k)
		for i := range data {
			_, data[i] = benchPair(n)
		}
		p, q := make([]byte, n), make([]byte, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(n * k))
			for i := 0; i < b.N; i++ {
				SyndromePQ(p, q, data)
			}
		})
		b.Run(sizeName(n)+"-scalar", func(b *testing.B) {
			b.SetBytes(int64(n * k))
			for i := 0; i < b.N; i++ {
				syndromePQScalar(p, q, data)
			}
		})
	}
}
