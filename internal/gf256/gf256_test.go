package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpLogRoundTrip(t *testing.T) {
	for x := 1; x < 256; x++ {
		if got := Exp(Log(byte(x))); got != byte(x) {
			t.Fatalf("Exp(Log(%d)) = %d", x, got)
		}
	}
}

func TestExpIsGeneratorWithFullOrder(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if seen[v] {
			t.Fatalf("g^%d = %d repeats before order 255", i, v)
		}
		seen[v] = true
	}
	if Exp(255) != 1 || Exp(0) != 1 {
		t.Fatalf("g^255 = %d, g^0 = %d; want 1,1", Exp(255), Exp(0))
	}
}

func TestExpNegativeIndex(t *testing.T) {
	if Exp(-1) != Exp(254) {
		t.Fatalf("Exp(-1) = %d, want Exp(254) = %d", Exp(-1), Exp(254))
	}
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestMulAgainstSlowMultiply(t *testing.T) {
	slow := func(a, b byte) byte {
		var r byte
		for b != 0 {
			if b&1 != 0 {
				r ^= a
			}
			carry := a&0x80 != 0
			a <<= 1
			if carry {
				a ^= Poly
			}
			b >>= 1
		}
		return r
	}
	for a := 0; a < 256; a += 3 {
		for b := 0; b < 256; b += 5 {
			if got, want := Mul(byte(a), byte(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	f := func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// distributivity
		if Mul(a, Add(b, c)) != Add(Mul(a, b), Mul(a, c)) {
			return false
		}
		// identity
		return Mul(a, 1) == a && Add(a, 0) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivInvConsistency(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a·a^-1 != 1 for a=%d", a)
		}
		for b := 1; b < 256; b += 7 {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%d,%d)·%d != %d", a, b, b, a)
			}
		}
	}
	if Div(0, 5) != 0 {
		t.Fatal("0/x != 0")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestPow(t *testing.T) {
	for _, tc := range []struct {
		a    byte
		n    int
		want byte
	}{
		{2, 0, 1}, {2, 1, 2}, {2, 8, Poly ^ 0 /* x^8 = poly */}, {0, 0, 1}, {0, 5, 0}, {3, 255, 1},
	} {
		if got := Pow(tc.a, tc.n); got != tc.want {
			t.Errorf("Pow(%d,%d) = %d, want %d", tc.a, tc.n, got, tc.want)
		}
	}
	// a^n == repeated multiplication
	for a := 1; a < 256; a += 11 {
		acc := byte(1)
		for n := 0; n < 20; n++ {
			if got := Pow(byte(a), n); got != acc {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func randChunks(rng *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	return data
}

func TestSyndromeAndRecoverOneData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randChunks(rng, 6, 128)
	p := make([]byte, 128)
	q := make([]byte, 128)
	SyndromePQ(p, q, data)

	for lost := 0; lost < 6; lost++ {
		var survivors [][]byte
		for i, d := range data {
			if i != lost {
				survivors = append(survivors, d)
			}
		}
		got := make([]byte, 128)
		RecoverOneData(got, p, survivors)
		if !bytes.Equal(got, data[lost]) {
			t.Fatalf("RecoverOneData failed for lost=%d", lost)
		}
	}
}

func TestRecoverOneDataFromQ(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randChunks(rng, 7, 64)
	q := make([]byte, 64)
	SyndromePQ(nil, q, data)

	for lost := 0; lost < 7; lost++ {
		var survivors [][]byte
		var idx []int
		for i, d := range data {
			if i != lost {
				survivors = append(survivors, d)
				idx = append(idx, i)
			}
		}
		got := make([]byte, 64)
		RecoverOneDataFromQ(got, q, survivors, idx, lost)
		if !bytes.Equal(got, data[lost]) {
			t.Fatalf("RecoverOneDataFromQ failed for lost=%d", lost)
		}
	}
}

func TestRecoverTwoDataAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k = 8
	data := randChunks(rng, k, 96)
	p := make([]byte, 96)
	q := make([]byte, 96)
	SyndromePQ(p, q, data)

	for x := 0; x < k; x++ {
		for y := x + 1; y < k; y++ {
			var survivors [][]byte
			var idx []int
			for i, d := range data {
				if i != x && i != y {
					survivors = append(survivors, d)
					idx = append(idx, i)
				}
			}
			dx := make([]byte, 96)
			dy := make([]byte, 96)
			RecoverTwoData(dx, dy, p, q, survivors, idx, x, y)
			if !bytes.Equal(dx, data[x]) || !bytes.Equal(dy, data[y]) {
				t.Fatalf("RecoverTwoData failed for pair (%d,%d)", x, y)
			}
		}
	}
}

func TestRecoverTwoDataSwappedArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randChunks(rng, 5, 32)
	p := make([]byte, 32)
	q := make([]byte, 32)
	SyndromePQ(p, q, data)
	var survivors [][]byte
	var idx []int
	for i, d := range data {
		if i != 1 && i != 3 {
			survivors = append(survivors, d)
			idx = append(idx, i)
		}
	}
	// Pass y before x: the function must normalize.
	d3 := make([]byte, 32)
	d1 := make([]byte, 32)
	RecoverTwoData(d3, d1, p, q, survivors, idx, 3, 1)
	if !bytes.Equal(d3, data[3]) || !bytes.Equal(d1, data[1]) {
		t.Fatal("RecoverTwoData with swapped indices failed")
	}
}

func TestMulSliceVariants(t *testing.T) {
	src := []byte{1, 2, 3, 255, 0, 128}
	dst := make([]byte, len(src))

	MulSlice(dst, src, 0)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("MulSlice by 0 should zero dst")
		}
	}
	MulSlice(dst, src, 1)
	if !bytes.Equal(dst, src) {
		t.Fatal("MulSlice by 1 should copy")
	}
	MulSlice(dst, src, 7)
	for i := range src {
		if dst[i] != Mul(src[i], 7) {
			t.Fatal("MulSlice by 7 mismatch with scalar Mul")
		}
	}
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	f := func(seed int64, c byte) bool {
		rng := rand.New(rand.NewSource(seed))
		src := make([]byte, 40)
		dst := make([]byte, 40)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, 40)
		for i := range want {
			want[i] = dst[i] ^ Mul(src[i], c)
		}
		MulAddSlice(dst, src, c)
		return bytes.Equal(dst, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(make([]byte, 2), make([]byte, 3), 5) },
		"MulAddSlice": func() { MulAddSlice(make([]byte, 2), make([]byte, 3), 5) },
		"XORSlice":    func() { XORSlice(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: the RAID-6 equations hold after updating a single data chunk via
// delta updates: P' = P ⊕ ΔD, Q' = Q ⊕ g^i·ΔD.
func TestPropertyDeltaParityUpdate(t *testing.T) {
	f := func(seed int64, chunkIdxRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const k, n = 5, 48
		data := randChunks(rng, k, n)
		p := make([]byte, n)
		q := make([]byte, n)
		SyndromePQ(p, q, data)

		i := int(chunkIdxRaw) % k
		newChunk := make([]byte, n)
		rng.Read(newChunk)
		delta := make([]byte, n)
		copy(delta, data[i])
		XORSlice(delta, newChunk)

		XORSlice(p, delta)            // P update
		MulAddSlice(q, delta, Exp(i)) // Q update
		data[i] = newChunk

		wantP := make([]byte, n)
		wantQ := make([]byte, n)
		SyndromePQ(wantP, wantQ, data)
		return bytes.Equal(p, wantP) && bytes.Equal(q, wantQ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXORSlice128K(b *testing.B) {
	dst := make([]byte, 128<<10)
	src := make([]byte, 128<<10)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XORSlice(dst, src)
	}
}

func BenchmarkMulAddSlice128K(b *testing.B) {
	dst := make([]byte, 128<<10)
	src := make([]byte, 128<<10)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulAddSlice(dst, src, 29)
	}
}
