// Package gf256 implements arithmetic over GF(2^8) with the polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by Linux MD and the
// canonical RAID-6 construction (Anvin, "The mathematics of RAID-6").
//
// RAID-6 computes two syndromes over the data chunks D_0..D_{k-1}:
//
//	P = D_0 ⊕ D_1 ⊕ ... ⊕ D_{k-1}
//	Q = g^0·D_0 ⊕ g^1·D_1 ⊕ ... ⊕ g^{k-1}·D_{k-1}
//
// where g = 2 is a generator of the field. This package provides the scalar
// and vector arithmetic plus the recovery solves for every one- and
// two-chunk failure combination.
package gf256

import "encoding/binary"

// Poly is the field's reduction polynomial (without the x^8 term).
const Poly = 0x1D

var (
	expTable [512]byte // exp[i] = g^i, doubled to avoid mod 255 in mul
	logTable [256]byte // log[x] = i such that g^i = x, undefined for 0

	// Nibble product tables (Anvin's split-table scheme, as used by the
	// pure-Go paths of klauspost/reedsolomon and the kernel's RAID-6 SIMD):
	// c·b = mulTableLow[c][b&0xf] ⊕ mulTableHigh[c][b>>4]. Two 16-entry rows
	// per coefficient stay resident in L1 across a whole slice operation,
	// and the lookups are independent (no log→exp dependent chain, no
	// zero-operand branch).
	mulTableLow  [256][16]byte
	mulTableHigh [256][16]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// x *= 2 in GF(2^8)
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for c := 1; c < 256; c++ {
		logC := int(logTable[c])
		for n := 1; n < 16; n++ {
			mulTableLow[c][n] = expTable[logC+int(logTable[n])]
			mulTableHigh[c][n] = expTable[logC+int(logTable[n<<4])]
		}
	}
}

// SWAR helpers: eight field elements packed in a uint64.
const lsbMask = 0x0101010101010101

// mul2x8 multiplies each of the eight packed bytes by g=2: shift every byte
// left within its lane, then fold the reduction polynomial into lanes whose
// high bit was set. (hi>>7)*Poly cannot carry across lanes since Poly < 256.
func mul2x8(v uint64) uint64 {
	hi := v & (lsbMask << 7)
	return ((v ^ hi) << 1) ^ ((hi >> 7) * Poly)
}

// Exp returns g^i for the generator g=2 (i taken mod 255).
func Exp(i int) byte {
	i %= 255
	if i < 0 {
		i += 255
	}
	return expTable[i]
}

// Log returns log_g(x). It panics for x = 0, which has no logarithm.
func Log(x byte) int {
	if x == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[x])
}

// Add returns a + b (= a - b = a XOR b).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a·b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b. It panics if b is 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Pow returns a^n.
func Pow(a byte, n int) byte {
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	e := (int(logTable[a]) * n) % 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// MulSlice computes dst[i] = c·src[i]. dst and src must have equal length.
// Eight source bytes are loaded and stored per iteration; the products come
// from the per-coefficient nibble tables.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	low, high := &mulTableLow[c], &mulTableHigh[c]
	i := archMul(dst, src, c)
	n := len(src) &^ 7
	for ; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		r := uint64(low[s&15] ^ high[s>>4&15])
		r |= uint64(low[s>>8&15]^high[s>>12&15]) << 8
		r |= uint64(low[s>>16&15]^high[s>>20&15]) << 16
		r |= uint64(low[s>>24&15]^high[s>>28&15]) << 24
		r |= uint64(low[s>>32&15]^high[s>>36&15]) << 32
		r |= uint64(low[s>>40&15]^high[s>>44&15]) << 40
		r |= uint64(low[s>>48&15]^high[s>>52&15]) << 48
		r |= uint64(low[s>>56&15]^high[s>>60]) << 56
		binary.LittleEndian.PutUint64(dst[i:], r)
	}
	for ; i < len(src); i++ {
		s := src[i]
		dst[i] = low[s&15] ^ high[s>>4]
	}
}

// MulAddSlice computes dst[i] ^= c·src[i] (accumulate a scaled vector), with
// the same eight-bytes-per-iteration nibble-table scheme as MulSlice.
func MulAddSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		XORSlice(dst, src)
		return
	}
	low, high := &mulTableLow[c], &mulTableHigh[c]
	i := archMulAdd(dst, src, c)
	n := len(src) &^ 7
	for ; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		r := uint64(low[s&15] ^ high[s>>4&15])
		r |= uint64(low[s>>8&15]^high[s>>12&15]) << 8
		r |= uint64(low[s>>16&15]^high[s>>20&15]) << 16
		r |= uint64(low[s>>24&15]^high[s>>28&15]) << 24
		r |= uint64(low[s>>32&15]^high[s>>36&15]) << 32
		r |= uint64(low[s>>40&15]^high[s>>44&15]) << 40
		r |= uint64(low[s>>48&15]^high[s>>52&15]) << 48
		r |= uint64(low[s>>56&15]^high[s>>60]) << 56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^r)
	}
	for ; i < len(src); i++ {
		s := src[i]
		dst[i] ^= low[s&15] ^ high[s>>4]
	}
}

// XORSlice computes dst[i] ^= src[i], one uint64 word at a time with a
// byte-wise remainder.
func XORSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: length mismatch")
	}
	i := archXOR(dst, src)
	n := len(src) &^ 7
	for ; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// SyndromePQ computes P and Q over data chunks. data[i] is chunk D_i; all
// chunks and p, q must share one length. Pass nil p or q to skip it.
//
// Both syndromes are produced in one fused pass: per uint64 word, P is a
// running XOR and Q is evaluated by Horner's rule over the chunk index
// (q = q·g ⊕ D_i from high index to low), so the only multiplication needed
// is the packed ×g of mul2x8 — the same scheme as the Linux kernel's
// generated int.uc RAID-6 kernels. Each chunk is read exactly once.
func SyndromePQ(p, q []byte, data [][]byte) {
	length := 0
	if p != nil {
		length = len(p)
	} else if q != nil {
		length = len(q)
	} else {
		return
	}
	if p != nil && q != nil && len(p) != len(q) {
		panic("gf256: length mismatch")
	}
	for _, d := range data {
		if len(d) != length {
			panic("gf256: length mismatch")
		}
	}
	if q == nil {
		// P only: a plain XOR reduction.
		for i := range p {
			p[i] = 0
		}
		for _, d := range data {
			XORSlice(p, d)
		}
		return
	}
	n := length &^ 7
	for off := archSyndromePQ(p, q, data); off < n; off += 8 {
		var pw, qw uint64
		for i := len(data) - 1; i >= 0; i-- {
			dw := binary.LittleEndian.Uint64(data[i][off:])
			pw ^= dw
			qw = mul2x8(qw) ^ dw
		}
		if p != nil {
			binary.LittleEndian.PutUint64(p[off:], pw)
		}
		binary.LittleEndian.PutUint64(q[off:], qw)
	}
	for off := n; off < length; off++ {
		var pb, qb byte
		for i := len(data) - 1; i >= 0; i-- {
			db := data[i][off]
			pb ^= db
			qb = mul2(qb) ^ db
		}
		if p != nil {
			p[off] = pb
		}
		q[off] = qb
	}
}

// mul2 multiplies one field element by g=2.
func mul2(v byte) byte {
	if v&0x80 != 0 {
		return v<<1 ^ Poly
	}
	return v << 1
}

// RecoverOneData reconstructs data chunk `lost` from the surviving data
// chunks and P: D_lost = P ⊕ ⊕_{i≠lost} D_i. survivors must contain every
// data chunk except the lost one. The result is written to dst.
func RecoverOneData(dst []byte, p []byte, survivors [][]byte) {
	copy(dst, p)
	for _, d := range survivors {
		XORSlice(dst, d)
	}
}

// RecoverOneDataFromQ reconstructs data chunk at index `lost` using Q when P
// is unavailable (RAID-6, data+P failed):
//
//	D_lost = (Q ⊕ Q') / g^lost   where Q' is the syndrome of survivors.
//
// survivorIdx[i] gives the data-chunk index of survivors[i].
func RecoverOneDataFromQ(dst []byte, q []byte, survivors [][]byte, survivorIdx []int, lost int) {
	if len(survivors) != len(survivorIdx) {
		panic("gf256: survivors/survivorIdx mismatch")
	}
	qp := make([]byte, len(q))
	for i, d := range survivors {
		MulAddSlice(qp, d, Exp(survivorIdx[i]))
	}
	XORSlice(qp, q)
	MulSlice(dst, qp, Inv(Exp(lost)))
}

// RecoverTwoData reconstructs two lost data chunks x < y (indices into the
// data-chunk array) from P, Q, and the surviving data chunks, using the
// standard two-failure solve:
//
//	A = g^{y-x} / (g^{y-x} ⊕ 1)
//	B = g^{-x}  / (g^{y-x} ⊕ 1)
//	D_x = A·(P ⊕ P') ⊕ B·(Q ⊕ Q')
//	D_y = (P ⊕ P') ⊕ D_x
//
// where P', Q' are the syndromes computed over the survivors only.
func RecoverTwoData(dx, dy []byte, p, q []byte, survivors [][]byte, survivorIdx []int, x, y int) {
	if x == y {
		panic("gf256: x == y")
	}
	if x > y {
		x, y = y, x
		dx, dy = dy, dx
	}
	n := len(p)
	pp := make([]byte, n)
	qp := make([]byte, n)
	for i, d := range survivors {
		XORSlice(pp, d)
		MulAddSlice(qp, d, Exp(survivorIdx[i]))
	}
	XORSlice(pp, p) // pp = P ⊕ P'
	XORSlice(qp, q) // qp = Q ⊕ Q'

	gyx := Exp(y - x)
	denom := Add(gyx, 1)
	a := Div(gyx, denom)
	b := Div(Inv(Exp(x)), denom)

	MulSlice(dx, pp, a)
	MulAddSlice(dx, qp, b)
	copy(dy, pp)
	XORSlice(dy, dx)
}
