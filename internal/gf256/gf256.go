// Package gf256 implements arithmetic over GF(2^8) with the polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by Linux MD and the
// canonical RAID-6 construction (Anvin, "The mathematics of RAID-6").
//
// RAID-6 computes two syndromes over the data chunks D_0..D_{k-1}:
//
//	P = D_0 ⊕ D_1 ⊕ ... ⊕ D_{k-1}
//	Q = g^0·D_0 ⊕ g^1·D_1 ⊕ ... ⊕ g^{k-1}·D_{k-1}
//
// where g = 2 is a generator of the field. This package provides the scalar
// and vector arithmetic plus the recovery solves for every one- and
// two-chunk failure combination.
package gf256

// Poly is the field's reduction polynomial (without the x^8 term).
const Poly = 0x1D

var (
	expTable [512]byte // exp[i] = g^i, doubled to avoid mod 255 in mul
	logTable [256]byte // log[x] = i such that g^i = x, undefined for 0
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// x *= 2 in GF(2^8)
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Exp returns g^i for the generator g=2 (i taken mod 255).
func Exp(i int) byte {
	i %= 255
	if i < 0 {
		i += 255
	}
	return expTable[i]
}

// Log returns log_g(x). It panics for x = 0, which has no logarithm.
func Log(x byte) int {
	if x == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[x])
}

// Add returns a + b (= a - b = a XOR b).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a·b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b. It panics if b is 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Pow returns a^n.
func Pow(a byte, n int) byte {
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	e := (int(logTable[a]) * n) % 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// MulSlice computes dst[i] = c·src[i]. dst and src must have equal length.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		logC := int(logTable[c])
		for i, s := range src {
			if s == 0 {
				dst[i] = 0
			} else {
				dst[i] = expTable[logC+int(logTable[s])]
			}
		}
	}
}

// MulAddSlice computes dst[i] ^= c·src[i] (accumulate a scaled vector).
func MulAddSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// XORSlice computes dst[i] ^= src[i].
func XORSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: length mismatch")
	}
	// Process word-at-a-time via the compiler's bounds-check-friendly form.
	for i, s := range src {
		dst[i] ^= s
	}
}

// SyndromePQ computes P and Q over data chunks. data[i] is chunk D_i; all
// chunks and p, q must share one length. Pass nil p or q to skip it.
func SyndromePQ(p, q []byte, data [][]byte) {
	if p != nil {
		for i := range p {
			p[i] = 0
		}
		for _, d := range data {
			XORSlice(p, d)
		}
	}
	if q != nil {
		for i := range q {
			q[i] = 0
		}
		for idx, d := range data {
			MulAddSlice(q, d, Exp(idx))
		}
	}
}

// RecoverOneData reconstructs data chunk `lost` from the surviving data
// chunks and P: D_lost = P ⊕ ⊕_{i≠lost} D_i. survivors must contain every
// data chunk except the lost one. The result is written to dst.
func RecoverOneData(dst []byte, p []byte, survivors [][]byte) {
	copy(dst, p)
	for _, d := range survivors {
		XORSlice(dst, d)
	}
}

// RecoverOneDataFromQ reconstructs data chunk at index `lost` using Q when P
// is unavailable (RAID-6, data+P failed):
//
//	D_lost = (Q ⊕ Q') / g^lost   where Q' is the syndrome of survivors.
//
// survivorIdx[i] gives the data-chunk index of survivors[i].
func RecoverOneDataFromQ(dst []byte, q []byte, survivors [][]byte, survivorIdx []int, lost int) {
	if len(survivors) != len(survivorIdx) {
		panic("gf256: survivors/survivorIdx mismatch")
	}
	qp := make([]byte, len(q))
	for i, d := range survivors {
		MulAddSlice(qp, d, Exp(survivorIdx[i]))
	}
	XORSlice(qp, q)
	MulSlice(dst, qp, Inv(Exp(lost)))
}

// RecoverTwoData reconstructs two lost data chunks x < y (indices into the
// data-chunk array) from P, Q, and the surviving data chunks, using the
// standard two-failure solve:
//
//	A = g^{y-x} / (g^{y-x} ⊕ 1)
//	B = g^{-x}  / (g^{y-x} ⊕ 1)
//	D_x = A·(P ⊕ P') ⊕ B·(Q ⊕ Q')
//	D_y = (P ⊕ P') ⊕ D_x
//
// where P', Q' are the syndromes computed over the survivors only.
func RecoverTwoData(dx, dy []byte, p, q []byte, survivors [][]byte, survivorIdx []int, x, y int) {
	if x == y {
		panic("gf256: x == y")
	}
	if x > y {
		x, y = y, x
		dx, dy = dy, dx
	}
	n := len(p)
	pp := make([]byte, n)
	qp := make([]byte, n)
	for i, d := range survivors {
		XORSlice(pp, d)
		MulAddSlice(qp, d, Exp(survivorIdx[i]))
	}
	XORSlice(pp, p) // pp = P ⊕ P'
	XORSlice(qp, q) // qp = Q ⊕ Q'

	gyx := Exp(y - x)
	denom := Add(gyx, 1)
	a := Div(gyx, denom)
	b := Div(Inv(Exp(x)), denom)

	MulSlice(dx, pp, a)
	MulAddSlice(dx, qp, b)
	copy(dy, pp)
	XORSlice(dy, dx)
}
