package gf256

// Scalar reference kernels. These are the obviously-correct byte-at-a-time
// implementations of the vector operations in gf256.go; the optimized
// word-wide kernels are property- and fuzz-tested against them (see
// kernels_test.go). They are also the remainder loops for buffer tails
// shorter than a machine word.

// xorSliceScalar computes dst[i] ^= src[i], one byte at a time.
func xorSliceScalar(dst, src []byte) {
	for i, s := range src {
		dst[i] ^= s
	}
}

// mulSliceScalar computes dst[i] = c·src[i] via the log/exp tables.
func mulSliceScalar(dst, src []byte, c byte) {
	switch c {
	case 0:
		for i := range dst[:len(src)] {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		logC := int(logTable[c])
		for i, s := range src {
			if s == 0 {
				dst[i] = 0
			} else {
				dst[i] = expTable[logC+int(logTable[s])]
			}
		}
	}
}

// mulAddSliceScalar computes dst[i] ^= c·src[i] via the log/exp tables.
func mulAddSliceScalar(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		xorSliceScalar(dst, src)
	default:
		logC := int(logTable[c])
		for i, s := range src {
			if s != 0 {
				dst[i] ^= expTable[logC+int(logTable[s])]
			}
		}
	}
}

// syndromePQScalar computes the P and Q syndromes chunk-by-chunk with the
// scalar kernels: P as a running XOR, Q as Σ g^i·D_i.
func syndromePQScalar(p, q []byte, data [][]byte) {
	if p != nil {
		for i := range p {
			p[i] = 0
		}
		for _, d := range data {
			xorSliceScalar(p, d)
		}
	}
	if q != nil {
		for i := range q {
			q[i] = 0
		}
		for idx, d := range data {
			mulAddSliceScalar(q, d, Exp(idx))
		}
	}
}
