//go:build amd64 && !purego

package gf256

// useAVX2 gates the assembly kernels; detection is done once at init. The
// portable word-wide Go kernels remain as both the fallback and the
// remainder path.
var useAVX2 = x86HasAVX2()

// Implemented in gf256_amd64.s.
func x86HasAVX2() bool

//go:noescape
func xorVecAVX2(dst, src *byte, n int)

//go:noescape
func mulVecAVX2(dst, src *byte, n int, low, high *[16]byte)

//go:noescape
func mulAddVecAVX2(dst, src *byte, n int, low, high *[16]byte)

//go:noescape
func syndromeStepAVX2(p, q, d *byte, n int)

// archXOR runs dst ^= src over a 32-byte-multiple prefix, returning the
// number of bytes handled (0 when the vector unit is unavailable).
func archXOR(dst, src []byte) int {
	n := len(src) &^ 31
	if !useAVX2 || n == 0 {
		return 0
	}
	xorVecAVX2(&dst[0], &src[0], n)
	return n
}

// archMul runs dst = c·src over a 32-byte-multiple prefix (c ∉ {0, 1}).
func archMul(dst, src []byte, c byte) int {
	n := len(src) &^ 31
	if !useAVX2 || n == 0 {
		return 0
	}
	mulVecAVX2(&dst[0], &src[0], n, &mulTableLow[c], &mulTableHigh[c])
	return n
}

// archMulAdd runs dst ^= c·src over a 32-byte-multiple prefix (c ∉ {0, 1}).
func archMulAdd(dst, src []byte, c byte) int {
	n := len(src) &^ 31
	if !useAVX2 || n == 0 {
		return 0
	}
	mulAddVecAVX2(&dst[0], &src[0], n, &mulTableLow[c], &mulTableHigh[c])
	return n
}

// synTile is the column-tile width for the AVX2 syndrome: P and Q tiles stay
// cache-resident while every data chunk streams through once per tile.
const synTile = 32 << 10

// archSyndromePQ computes the P+Q syndromes over a 32-byte-multiple prefix
// with one Horner step per chunk per tile, returning the prefix length.
func archSyndromePQ(p, q []byte, data [][]byte) int {
	if !useAVX2 || p == nil || q == nil {
		return 0
	}
	n := len(q) &^ 31
	if n == 0 {
		return 0
	}
	for off := 0; off < n; off += synTile {
		t := n - off
		if t > synTile {
			t = synTile
		}
		clear(p[off : off+t])
		clear(q[off : off+t])
		for i := len(data) - 1; i >= 0; i-- {
			syndromeStepAVX2(&p[off], &q[off], &data[i][off], t)
		}
	}
	return n
}
