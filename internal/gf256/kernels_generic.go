//go:build !amd64 || purego

package gf256

// Non-amd64 (or purego) builds run entirely on the portable word-wide Go
// kernels; the arch hooks report zero bytes handled.

func archXOR(dst, src []byte) int             { return 0 }
func archMul(dst, src []byte, c byte) int     { return 0 }
func archMulAdd(dst, src []byte, c byte) int  { return 0 }
func archSyndromePQ(p, q []byte, data [][]byte) int { return 0 }
