//go:build amd64 && !purego

// AVX2 kernels for the GF(2^8) vector operations: XOR, constant multiply
// (Anvin's split nibble-table scheme via VPSHUFB — the same construction as
// the Linux RAID-6 SIMD kernels and klauspost/reedsolomon's amd64 path), and
// the fused P/Q syndrome step. All byte counts are multiples of 32 and ≥ 32;
// the Go wrappers handle remainders.

#include "textflag.h"

DATA nibMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $16

DATA polyMask<>+0(SB)/8, $0x1d1d1d1d1d1d1d1d
DATA polyMask<>+8(SB)/8, $0x1d1d1d1d1d1d1d1d
GLOBL polyMask<>(SB), RODATA|NOPTR, $16

// func x86HasAVX2() bool
TEXT ·x86HasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   nope
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	// Require OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  nope
	// Require the OS to have enabled XMM+YMM state (XCR0 bits 1 and 2).
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  nope
	// AVX2 is CPUID.(EAX=7,ECX=0):EBX bit 5.
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1 << 5), BX
	JZ   nope
	MOVB $1, ret+0(FP)
	RET
nope:
	MOVB $0, ret+0(FP)
	RET

// func xorVecAVX2(dst, src *byte, n int)
TEXT ·xorVecAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

xorLoop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     xorLoop
	VZEROUPPER
	RET

// func mulVecAVX2(dst, src *byte, n int, low, high *[16]byte)
// dst[i] = c·src[i], products via the two 16-entry nibble tables for c.
TEXT ·mulVecAVX2(SB), NOSPLIT, $0-40
	MOVQ           dst+0(FP), DI
	MOVQ           src+8(FP), SI
	MOVQ           n+16(FP), CX
	MOVQ           low+24(FP), AX
	MOVQ           high+32(FP), BX
	VBROADCASTI128 (AX), Y0            // low-nibble products in both lanes
	VBROADCASTI128 (BX), Y1            // high-nibble products
	VBROADCASTI128 nibMask<>(SB), Y7

mulLoop:
	VMOVDQU (SI), Y2
	VPSRLW  $4, Y2, Y3
	VPAND   Y7, Y2, Y2
	VPAND   Y7, Y3, Y3
	VPSHUFB Y2, Y0, Y4  // low-nibble partial products
	VPSHUFB Y3, Y1, Y5  // high-nibble partial products
	VPXOR   Y5, Y4, Y4
	VMOVDQU Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulLoop
	VZEROUPPER
	RET

// func mulAddVecAVX2(dst, src *byte, n int, low, high *[16]byte)
// dst[i] ^= c·src[i].
TEXT ·mulAddVecAVX2(SB), NOSPLIT, $0-40
	MOVQ           dst+0(FP), DI
	MOVQ           src+8(FP), SI
	MOVQ           n+16(FP), CX
	MOVQ           low+24(FP), AX
	MOVQ           high+32(FP), BX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1
	VBROADCASTI128 nibMask<>(SB), Y7

mulAddLoop:
	VMOVDQU (SI), Y2
	VPSRLW  $4, Y2, Y3
	VPAND   Y7, Y2, Y2
	VPAND   Y7, Y3, Y3
	VPSHUFB Y2, Y0, Y4
	VPSHUFB Y3, Y1, Y5
	VPXOR   Y5, Y4, Y4
	VPXOR   (DI), Y4, Y4
	VMOVDQU Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulAddLoop
	VZEROUPPER
	RET

// func syndromeStepAVX2(p, q, d *byte, n int)
// One Horner step of the RAID-6 syndrome over a block:
//
//	p ^= d;  q = q·g ⊕ d
//
// with the packed ×g as add-byte-to-itself (shift left within lanes) plus a
// conditional fold of the reduction polynomial into lanes whose high bit was
// set (VPCMPGTB against zero extracts those lanes).
TEXT ·syndromeStepAVX2(SB), NOSPLIT, $0-32
	MOVQ           p+0(FP), DI
	MOVQ           q+8(FP), BX
	MOVQ           d+16(FP), SI
	MOVQ           n+24(FP), CX
	VBROADCASTI128 polyMask<>(SB), Y7
	VPXOR          Y6, Y6, Y6           // zero, for the sign extract

synLoop:
	VMOVDQU (SI), Y0      // d
	VMOVDQU (BX), Y2      // q
	VPCMPGTB Y2, Y6, Y3   // 0xff in lanes where q's high bit is set
	VPADDB  Y2, Y2, Y2    // q <<= 1 within each lane
	VPAND   Y7, Y3, Y3    // poly where the high bit overflowed
	VPXOR   Y3, Y2, Y2
	VPXOR   Y0, Y2, Y2    // q = q·g ⊕ d
	VMOVDQU Y2, (BX)
	VPXOR   (DI), Y0, Y4  // p ⊕ d
	VMOVDQU Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, BX
	SUBQ    $32, CX
	JNZ     synLoop
	VZEROUPPER
	RET
