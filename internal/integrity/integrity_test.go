package integrity

import (
	"bytes"
	"testing"
)

func TestStoreVerifyCatchesRot(t *testing.T) {
	const cap = 16 << 10
	disk := make([]byte, cap)
	load := func(off, n int64) []byte { return disk[off : off+n] }
	s := NewStore(4096)

	// Unwritten disk verifies clean against the zero checksum.
	if _, _, ok := s.Verify(0, cap, cap, load); !ok {
		t.Fatal("pristine zero disk should verify")
	}

	// Write a pattern, update, verify clean.
	for i := 1000; i < 9000; i++ {
		disk[i] = byte(i)
	}
	s.Update(1000, 8000, cap, load)
	if _, _, ok := s.Verify(0, cap, cap, load); !ok {
		t.Fatal("disk should verify after update")
	}

	// Flip one bit: the covering block must fail, others stay clean.
	disk[5000] ^= 0x40
	badOff, badLen, ok := s.Verify(0, cap, cap, load)
	if ok {
		t.Fatal("bit flip not detected")
	}
	if badOff != 4096 || badLen != 4096 {
		t.Fatalf("bad range = [%d,+%d), want block [4096,+4096)", badOff, badLen)
	}
	if _, _, ok := s.Verify(0, 4096, cap, load); !ok {
		t.Fatal("untouched block reported bad")
	}

	// A partial read overlapping the bad block reports the intersection.
	badOff, badLen, ok = s.Verify(5000, 100, cap, load)
	if ok || badOff != 5000 || badLen != 100 {
		t.Fatalf("partial verify = [%d,+%d) ok=%v, want [5000,+100) false", badOff, badLen, ok)
	}

	// Rot in a never-written block is caught via the zero checksum.
	disk[12288] = 0xFF
	if _, _, ok := s.Verify(12288, 4096, cap, load); ok {
		t.Fatal("rot in unwritten block not detected")
	}
}

func TestStorePartialTailBlock(t *testing.T) {
	const cap = 10000 // not a multiple of the block size
	disk := make([]byte, cap)
	load := func(off, n int64) []byte { return disk[off : off+n] }
	s := NewStore(4096)
	if _, _, ok := s.Verify(8192, cap-8192, cap, load); !ok {
		t.Fatal("zero tail block should verify")
	}
	disk[9999] = 1
	if _, _, ok := s.Verify(8192, cap-8192, cap, load); ok {
		t.Fatal("tail rot not detected")
	}
	s.Update(9000, 1000, cap, load)
	if _, _, ok := s.Verify(0, cap, cap, load); !ok {
		t.Fatal("tail should verify after update")
	}
}

func TestChecksumMatchesKnownValue(t *testing.T) {
	// CRC32C("123456789") is the classic check value 0xE3069283.
	if got := Checksum([]byte("123456789")); got != 0xE3069283 {
		t.Fatalf("CRC32C check value = %#x, want 0xE3069283", got)
	}
	if !bytes.Equal([]byte{}, []byte{}) { // keep bytes import honest
		t.Fatal("unreachable")
	}
}

func TestRangeSet(t *testing.T) {
	var r RangeSet
	if !r.Empty() {
		t.Fatal("new set not empty")
	}
	r.Add(100, 50)
	r.Add(200, 50)
	if got := r.Spans(); len(got) != 2 {
		t.Fatalf("spans = %v, want 2 disjoint", got)
	}
	// Bridging add merges all three.
	r.Add(140, 70)
	if got := r.Spans(); len(got) != 1 || got[0] != (Span{Off: 100, Len: 150}) {
		t.Fatalf("merged spans = %v, want [{100 150}]", got)
	}
	// Intersect clips to the query window.
	if s, ok := r.Intersect(90, 20); !ok || s != (Span{Off: 100, Len: 10}) {
		t.Fatalf("intersect = %v %v", s, ok)
	}
	if _, ok := r.Intersect(0, 100); ok {
		t.Fatal("intersect before range should miss (half-open bounds)")
	}
	// Remove splits.
	r.Remove(120, 10)
	got := r.Spans()
	if len(got) != 2 || got[0] != (Span{100, 20}) || got[1] != (Span{130, 120}) {
		t.Fatalf("after remove: %v", got)
	}
	r.Remove(0, 1000)
	if !r.Empty() {
		t.Fatalf("after full remove: %v", r.Spans())
	}
}
