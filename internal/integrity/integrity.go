// Package integrity provides the building blocks of the end-to-end data
// integrity layer: CRC32C block checksums kept by servers alongside their
// drive (the software stand-in for T10 DIF / NVMe end-to-end protection),
// and a byte-range set used for media-error maps and lost-region tracking.
//
// The checksum store is bookkeeping, not simulation: real arrays compute
// these CRCs in hardware on the DMA path, so maintaining and verifying them
// costs no virtual time. That is what keeps integrity-enabled runs
// byte-identical to integrity-disabled runs until a fault is injected.
package integrity

import "hash/crc32"

// castagnoli is the CRC32C polynomial table, the checksum NVMe end-to-end
// protection and iSCSI use (hardware CRC32 instruction on x86/ARM).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// DefaultBlockSize is the protection-information granularity: one checksum
// per 4 KiB, the common DIF sector-guard grouping.
const DefaultBlockSize = 4096

// Store holds one CRC32C per fixed-size block of a drive, keyed by the
// block's starting byte offset. Blocks never written carry no entry and
// verify against the all-zeroes checksum, so bit rot in untouched ranges is
// still caught.
type Store struct {
	block int64
	sums  map[int64]uint32
	// zeroFull is the checksum of one full block of zeroes, precomputed;
	// partial tail blocks fall back to computing it on demand.
	zeroFull uint32
}

// NewStore builds a store with the given block size (0 → DefaultBlockSize).
func NewStore(blockSize int64) *Store {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Store{
		block:    blockSize,
		sums:     make(map[int64]uint32),
		zeroFull: Checksum(make([]byte, blockSize)),
	}
}

// BlockSize returns the protection granularity.
func (s *Store) BlockSize() int64 { return s.block }

// blockSpan returns the first block start and the end bound covering
// [off, off+n), clipped to capacity.
func (s *Store) blockSpan(off, n, capacity int64) (lo, hi int64) {
	lo = off - off%s.block
	hi = off + n
	if hi > capacity {
		hi = capacity
	}
	return lo, hi
}

// Update recomputes the checksums of every block overlapping [off, off+n).
// load must return the current stored bytes for an exact block range; it is
// called once per covered block.
func (s *Store) Update(off, n, capacity int64, load func(off, n int64) []byte) {
	lo, hi := s.blockSpan(off, n, capacity)
	for b := lo; b < hi; b += s.block {
		bLen := s.block
		if b+bLen > capacity {
			bLen = capacity - b
		}
		s.sums[b] = Checksum(load(b, bLen))
	}
}

// Invalidate poisons the recorded checksum of the block starting at b, so
// verification keeps failing until the block's content is refreshed by a
// later Update. Writers use it when a partial-block write lands over slack
// bytes that no longer verify: recomputing the checksum from the stored
// bytes would silently launder the corruption into "valid" data.
func (s *Store) Invalidate(b int64) { s.sums[b] ^= 0x5a5a5a5a }

// Verify checks every block overlapping [off, off+n) against its recorded
// checksum (or the zero checksum when the block was never written). On the
// first mismatch it returns the intersection of that block with the
// requested range and ok=false.
func (s *Store) Verify(off, n, capacity int64, load func(off, n int64) []byte) (badOff, badLen int64, ok bool) {
	lo, hi := s.blockSpan(off, n, capacity)
	for b := lo; b < hi; b += s.block {
		bLen := s.block
		if b+bLen > capacity {
			bLen = capacity - b
		}
		want, recorded := s.sums[b]
		if !recorded {
			if bLen == s.block {
				want = s.zeroFull
			} else {
				want = Checksum(make([]byte, bLen))
			}
		}
		if Checksum(load(b, bLen)) != want {
			iLo, iHi := b, b+bLen
			if iLo < off {
				iLo = off
			}
			if iHi > off+n {
				iHi = off + n
			}
			return iLo, iHi - iLo, false
		}
	}
	return 0, 0, true
}

// Span is one half-open byte range [Off, Off+Len).
type Span struct{ Off, Len int64 }

// End returns the exclusive end offset.
func (s Span) End() int64 { return s.Off + s.Len }

// RangeSet is an ordered set of non-overlapping, non-adjacent byte ranges.
// It backs the drive media-error map (which sectors are unreadable) and the
// host lost-region list (which virtual ranges exceeded the parity budget).
type RangeSet struct {
	spans []Span
}

// Empty reports whether the set holds no bytes.
func (r *RangeSet) Empty() bool { return len(r.spans) == 0 }

// Spans returns a copy of the ranges in ascending order.
func (r *RangeSet) Spans() []Span { return append([]Span(nil), r.spans...) }

// Add inserts [off, off+n), merging with overlapping or adjacent ranges.
func (r *RangeSet) Add(off, n int64) {
	if n <= 0 {
		return
	}
	lo, hi := off, off+n
	out := r.spans[:0:0]
	for _, s := range r.spans {
		switch {
		case s.End() < lo || s.Off > hi: // disjoint, not even adjacent
			out = append(out, s)
		default: // overlaps or touches: absorb into [lo, hi)
			if s.Off < lo {
				lo = s.Off
			}
			if s.End() > hi {
				hi = s.End()
			}
		}
	}
	out = append(out, Span{Off: lo, Len: hi - lo})
	r.spans = out
	r.sort()
}

// Remove deletes [off, off+n), splitting ranges that straddle the bounds.
func (r *RangeSet) Remove(off, n int64) {
	if n <= 0 {
		return
	}
	lo, hi := off, off+n
	out := r.spans[:0:0]
	for _, s := range r.spans {
		if s.End() <= lo || s.Off >= hi {
			out = append(out, s)
			continue
		}
		if s.Off < lo {
			out = append(out, Span{Off: s.Off, Len: lo - s.Off})
		}
		if s.End() > hi {
			out = append(out, Span{Off: hi, Len: s.End() - hi})
		}
	}
	r.spans = out
}

// Intersect returns the first intersection of the set with [off, off+n).
func (r *RangeSet) Intersect(off, n int64) (Span, bool) {
	lo, hi := off, off+n
	for _, s := range r.spans {
		if s.End() <= lo || s.Off >= hi {
			continue
		}
		iLo, iHi := s.Off, s.End()
		if iLo < lo {
			iLo = lo
		}
		if iHi > hi {
			iHi = hi
		}
		return Span{Off: iLo, Len: iHi - iLo}, true
	}
	return Span{}, false
}

func (r *RangeSet) sort() {
	for i := 1; i < len(r.spans); i++ {
		for j := i; j > 0 && r.spans[j].Off < r.spans[j-1].Off; j-- {
			r.spans[j], r.spans[j-1] = r.spans[j-1], r.spans[j]
		}
	}
}
