package recon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"draid/internal/sim"
	"draid/internal/simnet"
)

func TestMaxMinUniformWhenHomogeneous(t *testing.T) {
	p := MaxMinProbabilities([]float64{10, 10, 10, 10}, 5)
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-9 {
			t.Fatalf("probs = %v, want uniform 0.25", p)
		}
	}
}

func TestMaxMinZeroLoadUniform(t *testing.T) {
	p := MaxMinProbabilities([]float64{1, 100, 7}, 0)
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("probs = %v, want uniform", p)
		}
	}
}

func TestMaxMinFavorsHighBandwidth(t *testing.T) {
	// One 100G-class and three 25G-class candidates under heavy load.
	p := MaxMinProbabilities([]float64{100, 25, 25, 25}, 60)
	if p[0] <= p[1] {
		t.Fatalf("probs = %v, high-bandwidth candidate should dominate", p)
	}
	for i := 1; i < 4; i++ {
		if math.Abs(p[i]-p[1]) > 1e-6 {
			t.Fatalf("equal-bandwidth candidates got unequal probs: %v", p)
		}
	}
}

func TestMaxMinStarvesOverloadedNode(t *testing.T) {
	// A node with no available bandwidth should get (near) zero probability
	// when the others can absorb the load.
	p := MaxMinProbabilities([]float64{0, 50, 50}, 40)
	if p[0] > 0.01 {
		t.Fatalf("probs = %v, exhausted node should get ~0", p)
	}
}

func TestMaxMinEmpty(t *testing.T) {
	if MaxMinProbabilities(nil, 5) != nil {
		t.Fatal("empty input should return nil")
	}
}

// Property: output is a probability distribution, and the realized min
// remaining bandwidth is no worse than under the uniform distribution.
func TestPropertyMaxMinValidAndNoWorseThanUniform(t *testing.T) {
	f := func(raw []uint8, loadRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		bw := make([]float64, len(raw))
		for i, r := range raw {
			bw[i] = float64(r)
		}
		load := float64(loadRaw) + 1
		p := MaxMinProbabilities(bw, load)
		var sum float64
		for _, v := range p {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		minRem := func(probs []float64) float64 {
			m := math.Inf(1)
			for i := range bw {
				r := bw[i] - probs[i]*load
				if r < m {
					m = r
				}
			}
			return m
		}
		uniform := make([]float64, len(bw))
		for i := range uniform {
			uniform[i] = 1 / float64(len(bw))
		}
		return minRem(p) >= minRem(uniform)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Value() != 0 {
		t.Fatal("initial value should be 0")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Fatal("first sample should seed the average")
	}
	e.Update(20)
	if math.Abs(e.Value()-15) > 1e-9 {
		t.Fatalf("value = %v, want 15", e.Value())
	}
}

func TestRandomSelectorUniform(t *testing.T) {
	s := &RandomSelector{Rng: rand.New(rand.NewSource(1))}
	counts := make(map[int]int)
	cands := []int{3, 5, 9}
	for i := 0; i < 3000; i++ {
		counts[s.Pick(cands, 1000)]++
	}
	for _, c := range cands {
		if counts[c] < 800 || counts[c] > 1200 {
			t.Fatalf("counts = %v, want ~1000 each", counts)
		}
	}
}

func TestFixedSelector(t *testing.T) {
	if (FixedSelector{}).Pick([]int{7, 8}, 0) != 7 {
		t.Fatal("fixed selector should pick first")
	}
}

func buildTrackerNet(t *testing.T) (*sim.Engine, *simnet.Network, []*simnet.NIC, []*simnet.Conn) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.Config{Goodput: 1.0})
	sink := net.NewNode("sink")
	sink.AddNIC("nic0", 800)
	var nics []*simnet.NIC
	var conns []*simnet.Conn
	for i := 0; i < 2; i++ {
		nd := net.NewNode(string(rune('a' + i)))
		nics = append(nics, nd.AddNIC("nic0", 8)) // 1 B/ns
		conns = append(conns, net.Connect(nd, sink))
	}
	return eng, net, nics, conns
}

func TestBandwidthTrackerEstimatesLoad(t *testing.T) {
	eng, net, nics, conns := buildTrackerNet(t)
	_ = net
	tr := NewBandwidthTracker(eng, nics, sim.Millisecond)
	// Node 0 sends ~0.5 B/ns for 10ms; node 1 idle.
	nodeA := conns[0]
	var pump func()
	sent := int64(0)
	pump = func() {
		if eng.Now() > sim.Time(10*sim.Millisecond) {
			return
		}
		nodeA.Send(nodeA.Peer(net.Node("sink")), 500_000, func() {})
		sent += 500_000
		eng.After(sim.Millisecond, pump)
	}
	pump()
	eng.RunUntil(sim.Time(12 * sim.Millisecond))

	availBusy := tr.Available(0)
	availIdle := tr.Available(1)
	if availIdle <= availBusy {
		t.Fatalf("idle node available %v should exceed busy node %v", availIdle, availBusy)
	}
	// Idle node: full 1 B/ns = 1e9 B/s.
	if math.Abs(availIdle-1e9) > 1e6 {
		t.Fatalf("idle available = %v, want ~1e9", availIdle)
	}
	// Busy node: ~0.5e9 used.
	if availBusy > 0.7e9 || availBusy < 0.3e9 {
		t.Fatalf("busy available = %v, want ~0.5e9", availBusy)
	}
}

func TestBandwidthTrackerLoadEWMA(t *testing.T) {
	eng, _, nics, _ := buildTrackerNet(t)
	tr := NewBandwidthTracker(eng, nics, sim.Millisecond)
	for i := 0; i < 10; i++ {
		eng.After(sim.Duration(i)*sim.Millisecond, func() {
			tr.RecordReconstruction(1_000_000) // 1 MB per ms = 1 GB/s
		})
	}
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	l := tr.Load()
	if l < 0.5e9 || l > 1.5e9 {
		t.Fatalf("load estimate = %v B/s, want ~1e9", l)
	}
	// After reconstruction stops the estimate decays toward zero.
	eng.RunUntil(sim.Time(25 * sim.Millisecond))
	if tr.Load() >= l/2 {
		t.Fatalf("load estimate %v did not decay from %v", tr.Load(), l)
	}
}

func TestBWAwareSelectorPrefersIdleFastNode(t *testing.T) {
	eng, net, nics, conns := buildTrackerNet(t)
	tr := NewBandwidthTracker(eng, nics, sim.Millisecond)
	sel := &BWAwareSelector{Rng: rand.New(rand.NewSource(2)), Tracker: tr, Fanout: 3}
	// Saturate node 0 half-way; leave node 1 idle.
	sink := net.Node("sink")
	var pump func()
	pump = func() {
		if eng.Now() > sim.Time(20*sim.Millisecond) {
			return
		}
		conns[0].Send(conns[0].Peer(sink), 500_000, func() {})
		eng.After(sim.Millisecond, pump)
	}
	pump()
	// Record steady reconstruction load so the solver has a nonzero L.
	var loadPump func()
	loadPump = func() {
		if eng.Now() > sim.Time(20*sim.Millisecond) {
			return
		}
		tr.RecordReconstruction(300_000)
		eng.After(sim.Millisecond, loadPump)
	}
	loadPump()
	counts := [2]int{}
	eng.At(sim.Time(15*sim.Millisecond), func() {
		for i := 0; i < 1000; i++ {
			counts[sel.Pick([]int{0, 1}, 100_000)]++
		}
	})
	eng.RunUntil(sim.Time(21 * sim.Millisecond))
	if counts[1] <= counts[0] {
		t.Fatalf("picks = %v, idle node should be preferred", counts)
	}
}
