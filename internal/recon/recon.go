// Package recon implements reducer selection for disaggregated data
// reconstruction (paper §6): the randomized single-reducer baseline (optimal
// under homogeneous networks, Theorem 1) and the bandwidth-aware policy of
// §6.2 — a max-min solve for the selection probabilities P_i that maximize
// the smallest expected remaining bandwidth
//
//	R_i = B_i − P_i·(n−1)·L,   ΣP_i = 1,  0 ≤ P_i ≤ 1,
//
// with L tracked as an EWMA of the observed reconstruction load.
package recon

import (
	"math/rand"

	"draid/internal/sim"
	"draid/internal/simnet"
)

// MaxMinProbabilities solves the §6.2 program. bandwidth[i] is the available
// bandwidth B_i on candidate i (any consistent unit); load is (n−1)·L in the
// same unit — the traffic a reducer absorbs per selection. It returns the
// probability vector; uniform when load is zero or all bandwidths equal.
//
// The optimum is a water-fill: choose the level λ with
// Σ_i clamp((B_i−λ)/load, 0, 1) = 1 and set P_i to the clamped terms; λ is
// found by bisection (the sum is monotonically decreasing in λ).
func MaxMinProbabilities(bandwidth []float64, load float64) []float64 {
	return maxMinInto(nil, bandwidth, load)
}

// maxMinInto is MaxMinProbabilities writing into scratch (grown as needed),
// so per-Pick callers can reuse one slice instead of allocating each call.
func maxMinInto(scratch []float64, bandwidth []float64, load float64) []float64 {
	n := len(bandwidth)
	if n == 0 {
		return nil
	}
	if cap(scratch) < n {
		scratch = make([]float64, n)
	}
	out := scratch[:n] // every element is assigned below
	if load <= 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	sumAt := func(lambda float64) float64 {
		var s float64
		for _, b := range bandwidth {
			p := (b - lambda) / load
			if p < 0 {
				p = 0
			} else if p > 1 {
				p = 1
			}
			s += p
		}
		return s
	}
	lo, hi := bandwidth[0], bandwidth[0]
	for _, b := range bandwidth[1:] {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	lo -= load // sum(lo) ≥ n ≥ 1
	// Bisect: sumAt(lo) ≥ 1, sumAt(hi) ≤ ... ensure bracketing.
	for sumAt(hi) > 1 {
		hi += load
	}
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if sumAt(mid) > 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	lambda := (lo + hi) / 2
	var total float64
	for i, b := range bandwidth {
		p := (b - lambda) / load
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		out[i] = p
		total += p
	}
	// Normalize residual bisection error.
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	} else {
		for i := range out {
			out[i] = 1 / float64(n)
		}
	}
	return out
}

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	Alpha float64 // weight of the newest sample, in (0,1]
	value float64
	init  bool
}

// Update folds in a sample and returns the new average.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value, e.init = x, true
		return x
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Selector picks a reducer among candidate indices.
type Selector interface {
	// Pick chooses one of candidates (never empty). size is the
	// reconstruction transfer size in bytes, used for load tracking.
	Pick(candidates []int, size int64) int
}

// RandomSelector implements the paper's randomized baseline.
type RandomSelector struct {
	Rng *rand.Rand
}

// Pick implements Selector.
func (s *RandomSelector) Pick(candidates []int, _ int64) int {
	return candidates[s.Rng.Intn(len(candidates))]
}

// FixedSelector always picks the first candidate (the parity drive, in the
// core's candidate ordering) — an ablation point.
type FixedSelector struct{}

// Pick implements Selector.
func (FixedSelector) Pick(candidates []int, _ int64) int { return candidates[0] }

// BandwidthTracker samples a set of NICs and maintains, per target, an EWMA
// of its recent outbound throughput; available bandwidth is line rate minus
// that. Sampling is lazy: estimates are refreshed on access once at least
// one period has elapsed, so the tracker adds no standing events to the
// simulation (an idle engine stays idle).
type BandwidthTracker struct {
	eng      *sim.Engine
	nics     []*simnet.NIC
	period   sim.Duration
	lastTick sim.Time
	lastOut  []int64
	outRate  []EWMA // bytes/sec
	loadRate EWMA   // reconstruction load L, bytes/sec
	loadAcc  int64
	measured []float64 // refresh scratch, one slot per NIC
}

// NewBandwidthTracker creates a tracker over the given NICs with the given
// sampling period.
func NewBandwidthTracker(eng *sim.Engine, nics []*simnet.NIC, period sim.Duration) *BandwidthTracker {
	t := &BandwidthTracker{
		eng: eng, nics: nics, period: period,
		lastTick: eng.Now(),
		lastOut:  make([]int64, len(nics)),
		outRate:  make([]EWMA, len(nics)),
		measured: make([]float64, len(nics)),
	}
	for i := range t.outRate {
		t.outRate[i].Alpha = 0.3
	}
	t.loadRate.Alpha = 0.3
	for i, nic := range nics {
		t.lastOut[i] = nic.BytesOut()
	}
	return t
}

// refresh folds elapsed windows into the EWMAs. Long idle gaps count as
// multiple zero-traffic windows so stale load estimates decay.
func (t *BandwidthTracker) refresh() {
	elapsed := t.eng.Now() - t.lastTick
	if sim.Duration(elapsed) < t.period {
		return
	}
	windows := int64(elapsed) / t.period
	secs := sim.Seconds(sim.Duration(elapsed))
	measured := t.measured
	for i, nic := range t.nics {
		cur := nic.BytesOut()
		measured[i] = float64(cur-t.lastOut[i]) / secs
		t.lastOut[i] = cur
	}
	measuredLoad := float64(t.loadAcc) / secs
	t.loadAcc = 0
	// Fold the gap's average rate once per elapsed window (capped), so the
	// EWMAs converge toward it at the same pace as periodic sampling would.
	if windows > 8 {
		windows = 8
	}
	for w := int64(0); w < windows; w++ {
		for i := range t.outRate {
			t.outRate[i].Update(measured[i])
		}
		t.loadRate.Update(measuredLoad)
	}
	t.lastTick = t.eng.Now()
}

// Available returns the estimated available outbound bandwidth (bytes/sec)
// of target i.
func (t *BandwidthTracker) Available(i int) float64 {
	t.refresh()
	avail := t.nics[i].GoodputBytesPerSec() - t.outRate[i].Value()
	if avail < 0 {
		avail = 0
	}
	return avail
}

// RecordReconstruction accounts size bytes of reconstruction traffic toward
// the load estimate L.
func (t *BandwidthTracker) RecordReconstruction(size int64) {
	t.refresh()
	t.loadAcc += size
}

// Load returns the EWMA reconstruction load in bytes/sec.
func (t *BandwidthTracker) Load() float64 {
	t.refresh()
	return t.loadRate.Value()
}

// BWAwareSelector implements §6.2 using a BandwidthTracker.
type BWAwareSelector struct {
	Rng     *rand.Rand
	Tracker *BandwidthTracker
	// Fanout is (n−1): how many peer transfers the reducer absorbs per
	// reconstruction relative to L.
	Fanout int

	// Per-Pick scratch, reused across calls (a Selector is single-threaded
	// within its engine).
	bw, probs []float64
}

// Pick implements Selector: it recomputes the max-min probabilities from
// current bandwidth estimates and draws from them.
func (s *BWAwareSelector) Pick(candidates []int, size int64) int {
	s.Tracker.RecordReconstruction(size)
	if cap(s.bw) < len(candidates) {
		s.bw = make([]float64, len(candidates))
	}
	bw := s.bw[:len(candidates)]
	for i, c := range candidates {
		bw[i] = s.Tracker.Available(c)
	}
	load := s.Tracker.Load() * float64(s.Fanout)
	probs := maxMinInto(s.probs, bw, load)
	s.probs = probs
	x := s.Rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if x < cum {
			return candidates[i]
		}
	}
	return candidates[len(candidates)-1]
}
