package experiments

import (
	"testing"

	"draid/internal/ycsb"
)

// TestApplicationShapes checks the §9.6 qualitative results: dRAID beats the
// host-centric baseline on write-heavy mixes, roughly ties on read-heavy
// mixes in normal state, and widens its lead in degraded state.
func TestApplicationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("application runs load real datasets")
	}
	o := Options{Ramp: 20e6, Measure: 60e6}

	ratio := func(run func(System) AppResult) float64 {
		s := run(SPDK)
		d := run(DRAID)
		t.Logf("%s: SPDK=%.1f KIOPS dRAID=%.1f KIOPS (%.2fx)", d.Workload, s.KIOPS, d.KIOPS, d.KIOPS/s.KIOPS)
		return d.KIOPS / s.KIOPS
	}

	// Object store, normal state: A (write-heavy) gains; C (read-only) ties.
	objA := ratio(func(s System) AppResult { return YCSBObjectStore(s, ycsb.WorkloadA, nil, o) })
	objC := ratio(func(s System) AppResult { return YCSBObjectStore(s, ycsb.WorkloadC, nil, o) })
	if objA < 1.10 {
		t.Errorf("object store YCSB-A gain = %.2fx, want > 1.1x (paper 1.7x)", objA)
	}
	if objC < 0.95 || objC > 1.1 {
		t.Errorf("object store YCSB-C gain = %.2fx, want ~1x (read-only)", objC)
	}

	// Object store, degraded: read-heavy B now gains too.
	objBdeg := ratio(func(s System) AppResult { return YCSBObjectStore(s, ycsb.WorkloadB, []int{0}, o) })
	if objBdeg < 1.2 {
		t.Errorf("degraded object store YCSB-B gain = %.2fx, want > 1.2x (paper ~2.35x)", objBdeg)
	}

	// KV store: read-heavy C roughly ties (CPU/cache-bound, like RocksDB);
	// write-heavy A must not regress; degraded A widens.
	kvC := ratio(func(s System) AppResult { return YCSBKVStore(s, ycsb.WorkloadC, nil, o) })
	kvA := ratio(func(s System) AppResult { return YCSBKVStore(s, ycsb.WorkloadA, nil, o) })
	kvAdeg := ratio(func(s System) AppResult { return YCSBKVStore(s, ycsb.WorkloadA, []int{0}, o) })
	if kvC < 0.95 || kvC > 1.4 {
		t.Errorf("KV YCSB-C gain = %.2fx, want near 1x", kvC)
	}
	if kvA < 1.0 {
		t.Errorf("KV YCSB-A gain = %.2fx, dRAID must not lose on write-heavy", kvA)
	}
	if kvAdeg < kvA {
		t.Errorf("degraded KV YCSB-A gain (%.2fx) should exceed normal state (%.2fx)", kvAdeg, kvA)
	}
}

func TestAppFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("application figures load real datasets")
	}
	o := Options{Quick: true, Ramp: 10e6, Measure: 30e6}
	for _, id := range []string{"fig19a", "fig19b", "fig20", "fig21"} {
		fig, err := RunFigure(id, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) != 2 || len(fig.Series[0].Points) == 0 {
			t.Fatalf("%s: malformed figure", id)
		}
		for _, s := range fig.Series {
			for _, p := range s.Points {
				if p.BW <= 0 {
					t.Errorf("%s/%s: nonpositive KIOPS at %s", id, s.System, p.Label)
				}
			}
		}
		t.Logf("\n%s", fig.String())
	}
}

func TestRegistryRunsEveryID(t *testing.T) {
	ids := IDs()
	if len(ids) < 30 {
		t.Fatalf("only %d experiment ids registered", len(ids))
	}
	if ids[0] != "table1" {
		t.Fatal("table1 missing from IDs")
	}
	if _, err := Run("nonsense", Options{}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := RunFigure("table1", Options{}); err == nil {
		t.Fatal("RunFigure should reject table1")
	}
	// One representative full Run through the string path.
	out, err := Run("ablation-barrier", Options{Quick: true, Ramp: 5e6, Measure: 15e6})
	if err != nil || out == "" {
		t.Fatalf("Run failed: %v", err)
	}
}

// TestPaperClaims runs the machine-checkable paper expectations with
// shortened windows. cmd/draid-report runs the same checks at full windows.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates many figures")
	}
	o := Options{Ramp: 15e6, Measure: 50e6}
	figs := map[string]Figure{}
	for _, e := range Expectations() {
		fig, ok := figs[e.FigureID]
		if !ok {
			var err error
			fig, err = RunFigure(e.FigureID, o)
			if err != nil {
				t.Fatal(err)
			}
			figs[e.FigureID] = fig
		}
		if err := e.Check(fig); err != nil {
			t.Errorf("%s: %s: %v", e.FigureID, e.Claim, err)
		}
	}
}

// TestDeterminism: identical seeds produce bit-identical experiment results
// end to end — the property that makes every figure in EXPERIMENTS.md
// reproducible on any machine.
func TestDeterminism(t *testing.T) {
	run := func() Figure {
		return Fig10(Options{Quick: true, Ramp: 10e6, Measure: 30e6, Seed: 42})
	}
	a, b := run(), run()
	for i := range a.Series {
		for j := range a.Series[i].Points {
			pa, pb := a.Series[i].Points[j], b.Series[i].Points[j]
			if pa.BW != pb.BW || pa.Lat != pb.Lat {
				t.Fatalf("non-deterministic: %s/%s %v vs %v",
					a.Series[i].System, pa.Label, pa, pb)
			}
		}
	}
}
