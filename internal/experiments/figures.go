package experiments

import (
	"fmt"

	"draid/internal/core"
	"draid/internal/fio"
	"draid/internal/hist"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

// Queue depths used throughout: the paper compares systems "under similar
// latency"; these depths put dRAID just past drive saturation on writes and
// keep reads at NIC goodput, mirroring that methodology.
const (
	readQD  = 32
	writeQD = 12
)

func sizesKB(quick bool, all ...int64) []int64 {
	if quick && len(all) > 2 {
		return []int64{all[0], all[len(all)-1]}
	}
	return all
}

// sweepIOSize runs a size sweep for all systems.
func sweepIOSize(o Options, base Setup, sizes []int64, readRatio float64, qd int) []Series {
	return runGrid(o, systemNames(AllSystems), len(sizes), func(si, pi int) Point {
		s := base
		s.System = AllSystems[si]
		kb := sizes[pi]
		r := measure(s, o, kb<<10, readRatio, qd)
		return toPoint(float64(kb), fmt.Sprintf("%dKB", kb), r)
	})
}

// Fig09 — RAID-5 normal-state read vs I/O size (6 targets).
func Fig09(o Options) Figure {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128)
	return Figure{
		ID: "fig09", Title: "RAID-5 normal-state read vs I/O size (6 targets)",
		XLabel: "io-size",
		Series: sweepIOSize(o, Setup{Targets: 6, Seed: o.Seed}, sizes, 1.0, readQD),
		Notes:  []string{"all systems reach NIC goodput (~11500 MB/s) at ≥64KB; dRAID leads at small sizes (lock-free reads)"},
	}
}

// Fig10 — RAID-5 write vs I/O size (8 targets): RMW below 1536 KB,
// reconstruct-write to 3584 KB, full-stripe at 3584 KB.
func Fig10(o Options) Figure {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3584)
	return Figure{
		ID: "fig10", Title: "RAID-5 write vs I/O size (8 targets)",
		XLabel: "io-size",
		Series: sweepIOSize(o, Setup{Targets: 8, Seed: o.Seed}, sizes, 0, writeQD),
		Notes:  []string{"dRAID leads on partial-stripe writes; parity at 3584KB (full stripe handled identically)"},
	}
}

// Fig11 — RAID-5 write vs chunk size (128 KB I/O, 8 targets).
func Fig11(o Options) Figure {
	o = o.withDefaults()
	chunks := sizesKB(o.Quick, 32, 64, 128, 256, 512, 1024)
	series := runGrid(o, systemNames(AllSystems), len(chunks), func(si, pi int) Point {
		kb := chunks[pi]
		s := Setup{System: AllSystems[si], Targets: 8, ChunkSize: kb << 10, Seed: o.Seed}
		r := measure(s, o, 128<<10, 0, writeQD)
		return toPoint(float64(kb), fmt.Sprintf("%dKB", kb), r)
	})
	return Figure{
		ID: "fig11", Title: "RAID-5 write vs chunk size (128 KB I/O, 8 targets)",
		XLabel: "chunk-size", Series: series,
	}
}

// widths returns the paper's stripe-width sweep.
func widths(quick bool) []int {
	if quick {
		return []int{4, 18}
	}
	return []int{4, 6, 8, 10, 12, 14, 16, 18}
}

// Fig12 — RAID-5 write scalability vs stripe width (128 KB I/O).
func Fig12(o Options) Figure {
	o = o.withDefaults()
	ws := widths(o.Quick)
	series := runGrid(o, systemNames(AllSystems), len(ws), func(si, pi int) Point {
		w := ws[pi]
		s := Setup{System: AllSystems[si], Targets: w, Seed: o.Seed}
		r := measure(s, o, 128<<10, 0, 64)
		return toPoint(float64(w), fmt.Sprintf("%d", w), r)
	})
	return Figure{
		ID: "fig12", Title: "RAID-5 write vs stripe width (128 KB I/O, QD 64)",
		XLabel: "width", Series: series,
		Notes: []string{"NIC goodput is ~11500 MB/s; SPDK caps at half (2x outbound write traffic)"},
	}
}

// Fig13 — RAID-5 mixed read/write ratio (128 KB, 8 targets).
func Fig13(o Options) Figure {
	o = o.withDefaults()
	ratios := []float64{0, 0.25, 0.5, 0.75, 1.0}
	if o.Quick {
		ratios = []float64{0, 1.0}
	}
	series := runGrid(o, systemNames(AllSystems), len(ratios), func(si, pi int) Point {
		ratio := ratios[pi]
		qd := 16
		if ratio == 1.0 {
			qd = readQD
		}
		s := Setup{System: AllSystems[si], Targets: 8, Seed: o.Seed}
		r := measure(s, o, 128<<10, ratio, qd)
		return toPoint(100*ratio, fmt.Sprintf("%.0f%%", 100*ratio), r)
	})
	return Figure{
		ID: "fig13", Title: "RAID-5 write vs read/write ratio (128 KB, 8 targets)",
		XLabel: "read-ratio", Series: series,
	}
}

// Fig14 — latency vs bandwidth under increasing load (18 targets).
// variant "wo" = write-only (Fig 14a); "rw" = 50/50 (Fig 14b).
func Fig14(o Options, variant string) Figure {
	o = o.withDefaults()
	ratio := 0.0
	title := "write-only"
	if variant == "rw" {
		ratio = 0.5
		title = "50% read + 50% write"
	}
	qds := []int{2, 4, 8, 16, 32, 64, 128, 192}
	if o.Quick {
		qds = []int{4, 64}
	}
	series := runGrid(o, systemNames(AllSystems), len(qds), func(si, pi int) Point {
		qd := qds[pi]
		s := Setup{System: AllSystems[si], Targets: 18, Seed: o.Seed}
		r := measure(s, o, 128<<10, ratio, qd)
		return Point{X: r.BandwidthMBps(), Label: fmt.Sprintf("qd%d", qd), BW: r.BandwidthMBps(), Lat: r.AvgLatency()}
	})
	return Figure{
		ID: "fig14" + variant, Title: "RAID-5 latency vs bandwidth, " + title + " (18 targets)",
		XLabel: "load(qd)", Series: series,
	}
}

// Fig15 — RAID-5 degraded read vs I/O size (8 targets, 1 failed).
func Fig15(o Options) Figure {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128)
	return Figure{
		ID: "fig15", Title: "RAID-5 degraded read vs I/O size (8 targets, 1 failed)",
		XLabel: "io-size",
		Series: sweepIOSize(o, Setup{Targets: 8, FailedMembers: []int{0}, Seed: o.Seed}, sizes, 1.0, readQD),
		Notes:  []string{"1 of 8 reads triggers reconstruction; dRAID ~95% of normal-state read"},
	}
}

// Fig16 — RAID-5 degraded read vs stripe width (128 KB).
func Fig16(o Options) Figure {
	o = o.withDefaults()
	ws := widths(o.Quick)
	series := runGrid(o, systemNames(AllSystems), len(ws), func(si, pi int) Point {
		w := ws[pi]
		s := Setup{System: AllSystems[si], Targets: w, FailedMembers: []int{0}, Seed: o.Seed}
		r := measure(s, o, 128<<10, 1.0, readQD)
		return toPoint(float64(w), fmt.Sprintf("%d", w), r)
	})
	return Figure{
		ID: "fig16", Title: "RAID-5 degraded read vs stripe width (128 KB)",
		XLabel: "width", Series: series,
	}
}

// rebuildRate measures full-drive reconstruction throughput: qd rebuild
// operations in flight, each reconstructing one chunk of the failed member.
func rebuildRate(sys System, targets int, o Options, selector string, gbpsList []float64, seed int64, qd int) fio.Result {
	s := Setup{System: sys, Targets: targets, FailedMembers: []int{0}, Selector: selector, TargetGbpsList: gbpsList, Seed: seed}
	dev, cl := Build(s)
	geo := raid.Geometry{Level: raid.Raid5, Width: targets, ChunkSize: 512 << 10}

	end := sim.Time(o.Ramp + o.Measure)
	measureStart := sim.Time(o.Ramp)
	res := fio.Result{Name: string(sys), Elapsed: o.Measure}
	var stripe int64
	if qd <= 0 {
		qd = 8
	}
	lat := hist.New()

	record := func(issued sim.Time) {
		now := cl.Eng.Now()
		if now > measureStart && now <= end {
			res.ReadBytes += geo.ChunkSize
			res.ReadOps++
			lat.Record(int64(now - issued))
		}
	}

	switch h := dev.(type) {
	case *core.HostController:
		var issue func()
		issue = func() {
			if cl.Eng.Now() >= end {
				return
			}
			s := stripe
			stripe++
			issued := cl.Eng.Now()
			h.ReconstructStripeChunk(s, 0, func(_ parity.Buffer, err error) {
				if err == nil {
					record(issued)
				}
				issue()
			})
		}
		for i := 0; i < qd; i++ {
			issue()
		}
	default:
		// Host-centric rebuild: degraded reads of every chunk of the
		// failed member (the host gathers survivors and XORs).
		var issue func()
		issue = func() {
			if cl.Eng.Now() >= end {
				return
			}
			s := stripe
			stripe++
			issued := cl.Eng.Now()
			// Read the virtual range that maps to the failed member's
			// chunk in stripe s, if it holds data there.
			kind, idx := geo.Role(s, 0)
			if kind != raid.KindData {
				issue()
				return
			}
			vOff := s*geo.StripeDataSize() + int64(idx)*geo.ChunkSize
			dev.Read(vOff, geo.ChunkSize, func(_ parity.Buffer, err error) {
				if err == nil {
					record(issued)
				}
				issue()
			})
		}
		for i := 0; i < qd; i++ {
			issue()
		}
	}
	cl.Eng.RunUntil(end)
	res.ReadLat = lat.Summarize()
	return res
}

// Fig17a — reconstruction scalability vs stripe width.
func Fig17a(o Options) Figure {
	o = o.withDefaults()
	systems := []System{SPDK, DRAID}
	ws := widths(o.Quick)
	series := runGrid(o, systemNames(systems), len(ws), func(si, pi int) Point {
		w := ws[pi]
		r := rebuildRate(systems[si], w, o, "", nil, o.Seed, 8)
		return Point{X: float64(w), Label: fmt.Sprintf("%d", w), BW: r.ReadBandwidthMBps(), Lat: r.ReadLat.Mean / 1e3}
	})
	return Figure{
		ID: "fig17a", Title: "Drive reconstruction throughput vs stripe width",
		XLabel: "width", Series: series,
	}
}

// Fig17b — random vs bandwidth-aware reducer selection with heterogeneous
// NICs (mix of 25 and 100 Gbps targets) under reconstruction load, latency
// vs bandwidth. The reducer absorbs (n−2) chunk-sized contributions per
// reconstruction, so an overloaded 25G reducer dominates latency — the
// effect the §6.2 max-min policy removes.
func Fig17b(o Options) Figure {
	o = o.withDefaults()
	gbps := []float64{100, 25, 100, 25, 100, 25, 100, 25}
	qds := []int{1, 2, 4, 8, 12, 16, 24}
	if o.Quick {
		qds = []int{2, 12}
	}
	selectors := []string{"random", "bwaware"}
	series := runGrid(o, []string{"Random", "BW-Aware"}, len(qds), func(si, pi int) Point {
		qd := qds[pi]
		r := rebuildRate(DRAID, 8, o, selectors[si], gbps, o.Seed, qd)
		return Point{X: r.ReadBandwidthMBps(), Label: fmt.Sprintf("qd%d", qd), BW: r.ReadBandwidthMBps(), Lat: r.ReadLat.Mean / 1e3}
	})
	return Figure{
		ID: "fig17b", Title: "Reconstruction with heterogeneous NICs (25/100G mix): reducer policies",
		XLabel: "load(qd)", Series: series,
	}
}

// Fig18 — RAID-5 degraded write vs I/O size (8 targets, 1 failed).
func Fig18(o Options) Figure {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128)
	return Figure{
		ID: "fig18", Title: "RAID-5 degraded write vs I/O size (8 targets, 1 failed)",
		XLabel: "io-size",
		Series: sweepIOSize(o, Setup{Targets: 8, FailedMembers: []int{0}, Seed: o.Seed}, sizes, 0, writeQD),
	}
}

// --- RAID-6 appendix ----------------------------------------------------------

func raid6Base(targets int, failed []int, seed int64) Setup {
	return Setup{Targets: targets, Level: raid.Raid6, FailedMembers: failed, Seed: seed}
}

// Fig22 — RAID-6 normal read vs I/O size.
func Fig22(o Options) Figure {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128)
	return Figure{
		ID: "fig22", Title: "RAID-6 normal-state read vs I/O size (6 targets)",
		XLabel: "io-size",
		Series: sweepIOSize(o, raid6Base(6, nil, o.Seed), sizes, 1.0, readQD),
	}
}

// Fig23 — RAID-6 write vs I/O size (stripe is 3072 KB at 8 targets).
func Fig23(o Options) Figure {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3072)
	return Figure{
		ID: "fig23", Title: "RAID-6 write vs I/O size (8 targets)",
		XLabel: "io-size",
		Series: sweepIOSize(o, raid6Base(8, nil, o.Seed), sizes, 0, writeQD),
	}
}

// Fig24 — RAID-6 write vs chunk size.
func Fig24(o Options) Figure {
	o = o.withDefaults()
	chunks := sizesKB(o.Quick, 32, 64, 128, 256, 512, 1024)
	series := runGrid(o, systemNames(AllSystems), len(chunks), func(si, pi int) Point {
		kb := chunks[pi]
		s := raid6Base(8, nil, o.Seed)
		s.System = AllSystems[si]
		s.ChunkSize = kb << 10
		r := measure(s, o, 128<<10, 0, writeQD)
		return toPoint(float64(kb), fmt.Sprintf("%dKB", kb), r)
	})
	return Figure{ID: "fig24", Title: "RAID-6 write vs chunk size (128 KB I/O)", XLabel: "chunk-size", Series: series}
}

// Fig25 — RAID-6 write vs stripe width.
func Fig25(o Options) Figure {
	o = o.withDefaults()
	ws := widths(o.Quick)
	series := runGrid(o, systemNames(AllSystems), len(ws), func(si, pi int) Point {
		s := raid6Base(ws[pi], nil, o.Seed)
		s.System = AllSystems[si]
		r := measure(s, o, 128<<10, 0, 64)
		return toPoint(float64(ws[pi]), fmt.Sprintf("%d", ws[pi]), r)
	})
	return Figure{ID: "fig25", Title: "RAID-6 write vs stripe width (128 KB, QD 64)", XLabel: "width", Series: series}
}

// Fig26 — RAID-6 read/write ratio sweep.
func Fig26(o Options) Figure {
	o = o.withDefaults()
	ratios := []float64{0, 0.25, 0.5, 0.75, 1.0}
	if o.Quick {
		ratios = []float64{0, 1.0}
	}
	series := runGrid(o, systemNames(AllSystems), len(ratios), func(si, pi int) Point {
		ratio := ratios[pi]
		qd := 16
		if ratio == 1.0 {
			qd = readQD
		}
		s := raid6Base(8, nil, o.Seed)
		s.System = AllSystems[si]
		r := measure(s, o, 128<<10, ratio, qd)
		return toPoint(100*ratio, fmt.Sprintf("%.0f%%", 100*ratio), r)
	})
	return Figure{ID: "fig26", Title: "RAID-6 write vs read/write ratio (128 KB)", XLabel: "read-ratio", Series: series}
}

// Fig27 — RAID-6 latency vs bandwidth (write-only "wo" and 50/50 "rw").
func Fig27(o Options, variant string) Figure {
	o = o.withDefaults()
	ratio := 0.0
	title := "write-only"
	if variant == "rw" {
		ratio, title = 0.5, "50% read + 50% write"
	}
	qds := []int{2, 4, 8, 16, 32, 64, 128, 192}
	if o.Quick {
		qds = []int{4, 64}
	}
	series := runGrid(o, systemNames(AllSystems), len(qds), func(si, pi int) Point {
		qd := qds[pi]
		s := raid6Base(18, nil, o.Seed)
		s.System = AllSystems[si]
		r := measure(s, o, 128<<10, ratio, qd)
		return Point{X: r.BandwidthMBps(), Label: fmt.Sprintf("qd%d", qd), BW: r.BandwidthMBps(), Lat: r.AvgLatency()}
	})
	return Figure{ID: "fig27" + variant, Title: "RAID-6 latency vs bandwidth, " + title + " (18 targets)", XLabel: "load(qd)", Series: series}
}

// Fig28 — RAID-6 degraded read vs I/O size.
func Fig28(o Options) Figure {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128)
	return Figure{
		ID: "fig28", Title: "RAID-6 degraded read vs I/O size (8 targets, 1 failed)",
		XLabel: "io-size",
		Series: sweepIOSize(o, raid6Base(8, []int{0}, o.Seed), sizes, 1.0, readQD),
	}
}

// Fig29 — RAID-6 degraded read vs stripe width.
func Fig29(o Options) Figure {
	o = o.withDefaults()
	ws := widths(o.Quick)
	series := runGrid(o, systemNames(AllSystems), len(ws), func(si, pi int) Point {
		s := raid6Base(ws[pi], []int{0}, o.Seed)
		s.System = AllSystems[si]
		r := measure(s, o, 128<<10, 1.0, readQD)
		return toPoint(float64(ws[pi]), fmt.Sprintf("%d", ws[pi]), r)
	})
	return Figure{ID: "fig29", Title: "RAID-6 degraded read vs stripe width (128 KB)", XLabel: "width", Series: series}
}

// Fig30 — RAID-6 degraded write vs I/O size.
func Fig30(o Options) Figure {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128)
	return Figure{
		ID: "fig30", Title: "RAID-6 degraded write vs I/O size (8 targets, 1 failed)",
		XLabel: "io-size",
		Series: sweepIOSize(o, raid6Base(8, []int{0}, o.Seed), sizes, 0, writeQD),
	}
}
