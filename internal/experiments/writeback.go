package experiments

import (
	"fmt"

	"draid"
	"draid/internal/parity"
	"draid/internal/sim"
)

// Writeback is the write-back staging experiment: a sequential small-write
// stream (the RMW worst case fig10 sweeps) runs with and without the host
// stage on an 8-wide RAID-5 array with 64 KB chunks, and each point reports
// the DRIVE-BYTE AMPLIFICATION — total bytes the member drives wrote divided
// by user bytes written, measured after a final Flush so every staged byte is
// on the drives. Unstaged sub-chunk writes pay the RMW penalty (data +
// parity, ~2x); staged writes coalesce into full-stripe destages and pay
// (k+parity)/k = 8/7 ~ 1.14x. The full-stripe point (448 KB) is the control:
// both paths write full stripes and meet at ~1.14x. Extra carries the
// amplification; BW is user goodput over the run.
func Writeback(o Options) Figure {
	o = o.withDefaults()
	sizesKB := []int{16, 64, 448}
	if o.Quick {
		sizesKB = []int{64}
	}
	modes := []struct {
		label  string
		staged bool
	}{{"unstaged", false}, {"staged", true}}

	grid := parMap(o.parallel(), len(modes)*len(sizesKB), func(idx int) Point {
		mode := modes[idx/len(sizesKB)]
		kb := sizesKB[idx%len(sizesKB)]
		return writebackPoint(o, int64(kb)<<10, mode.staged)
	})

	fig := Figure{
		ID:     "writeback",
		Title:  "Write-back staging: small-write drive-byte amplification (8-wide RAID-5, 64 KB chunks, sequential writes + flush)",
		XLabel: "write size",
		Notes: []string{
			"Extra column is drive-byte amplification (drive write bytes / user bytes, post-flush)",
			"unstaged sub-chunk writes pay RMW (~2x); staged destage full stripes ((k+1)/k ~ 1.14x)",
		},
	}
	for mi, mode := range modes {
		s := Series{System: mode.label}
		for si := range sizesKB {
			s.Points = append(s.Points, grid[mi*len(sizesKB)+si])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// writebackPoint writes a fixed sequential byte budget in `size` chunks at
// queue depth 8 on a fresh array, flushes, and measures amplification from
// the member drives' write counters.
func writebackPoint(o Options, size int64, staged bool) Point {
	cfg := draid.Config{
		Drives: 8, ChunkSize: 64 << 10, SizeOnly: true, Seed: o.Seed,
		DriveCapacity: 1 << 30,
	}
	if staged {
		cfg.WriteBack = true
	}
	arr, err := draid.New(cfg)
	if err != nil {
		panic(err)
	}
	bw, amp := writebackMeasure(arr, size, 48, false)
	return Point{
		X: float64(size >> 10), Label: fmt.Sprintf("%dKB", size>>10),
		BW: bw, Extra: amp,
	}
}

// writebackMeasure streams stripes*StripeDataSize() sequential bytes in
// `size`-sized writes (QD 8), flushes the stage, and returns (user goodput
// MB/s, drive-byte amplification). Shared with the realtime counterpart
// (which must wait on completions instead of draining a virtual clock).
func writebackMeasure(arr *draid.Array, size int64, stripes int64, realtime bool) (bw, amp float64) {
	const qd = 8
	total := stripes * arr.Controller().Geometry().StripeDataSize()
	count := (total + size - 1) / size
	dev := arr.Controller()
	start := arr.Now()

	allDone := make(chan struct{})
	var next, completed int64
	inflight := 0
	var issue func()
	issue = func() {
		for inflight < qd && next < total {
			off := next
			next += size
			n := size
			if off+n > total {
				n = total - off
			}
			inflight++
			dev.Write(off, parity.Sized(int(n)), func(err error) {
				if err != nil {
					panic(fmt.Sprintf("writeback: write at %d: %v", off, err))
				}
				inflight--
				if completed++; completed == count && realtime {
					close(allDone)
				}
				issue()
			})
		}
	}
	arr.Cluster().Rt.Call(issue)
	if realtime {
		<-allDone
	} else {
		arr.Run()
	}
	if err := arr.Flush(); err != nil {
		panic(fmt.Sprintf("writeback: flush: %v", err))
	}
	elapsed := arr.Now() - start

	var driveBytes int64
	for _, d := range arr.Cluster().Drives {
		driveBytes += d.Stats().WriteBytes
	}
	st := arr.Stats()
	if st.UserBytesWritten > 0 {
		amp = float64(driveBytes) / float64(st.UserBytesWritten)
	}
	if elapsed > 0 {
		bw = float64(total) / 1e6 / sim.Seconds(sim.Duration(elapsed))
	}
	return bw, amp
}

// RealtimeWriteback is the realtime counterpart: the same sequential
// small-write stream against the realtime backend's memory (or file) drives,
// staged vs unstaged at one sub-chunk size. Amplification is a byte count,
// not a timing, so it transfers exactly; the BW column is wall clock.
func RealtimeWriteback(o Options, ro draid.RealtimeOptions) (Figure, error) {
	o = o.withDefaults()
	var series []Series
	for _, mode := range []struct {
		label  string
		staged bool
	}{{"unstaged", false}, {"staged", true}} {
		arr, err := draid.New(draid.Config{
			Backend: draid.BackendRealtime, Realtime: ro,
			Drives: 8, ChunkSize: 64 << 10, DriveCapacity: 256 << 20,
			SizeOnly: ro.Dir == "", Seed: o.Seed,
			WriteBack: mode.staged,
		})
		if err != nil {
			return Figure{}, err
		}
		bw, amp := writebackMeasure(arr, 64<<10, 16, true)
		arr.Close()
		series = append(series, Series{System: mode.label, Points: []Point{
			{X: 64, Label: "64KB", BW: bw, Extra: amp},
		}})
	}
	return Figure{
		ID:     "writeback",
		Title:  "Write-back staging: 64 KB write amplification (8-wide RAID-5, realtime backend)",
		XLabel: "write size",
		Series: series,
		Notes:  []string{"Extra column is drive-byte amplification (drive write bytes / user bytes, post-flush)"},
	}, nil
}
