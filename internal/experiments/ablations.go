package experiments

import "fmt"

// AblationPipeline isolates the §5.3 parallel I/O pipeline: dRAID with
// overlapped bdev stages vs serial stage execution, partial-stripe writes.
func AblationPipeline(o Options) Figure {
	o = o.withDefaults()
	names := []string{"dRAID (pipelined)", "dRAID (serial stages)"}
	pipelined := []bool{true, false}
	qds := []int{4, 8, 12, 16}
	series := runGrid(o, names, len(qds), func(si, pi int) Point {
		qd := qds[pi]
		s := Setup{System: DRAID, Targets: 8, Pipelined: pipelined[si], PipelineSet: true, Seed: o.Seed}
		r := measure(s, o, 128<<10, 0, qd)
		return Point{X: float64(qd), Label: fmt.Sprintf("qd%d", qd), BW: r.BandwidthMBps(), Lat: r.AvgLatency()}
	})
	return Figure{
		ID: "ablation-pipeline", Title: "Ablation: §5.3 I/O pipeline on 128 KB writes",
		XLabel: "queue-depth", Series: series,
	}
}

// AblationHostParity isolates peer-to-peer parity disaggregation: normal
// dRAID vs the same controller computing partial-write parity on the host.
func AblationHostParity(o Options) Figure {
	o = o.withDefaults()
	names := []string{"dRAID (peer-to-peer parity)", "dRAID (host parity)"}
	hostParity := []bool{false, true}
	sizes := sizesKB(o.Quick, 32, 64, 128)
	series := runGrid(o, names, len(sizes), func(si, pi int) Point {
		kb := sizes[pi]
		s := Setup{System: DRAID, Targets: 8, HostParityOnly: hostParity[si], Seed: o.Seed}
		r := measure(s, o, kb<<10, 0, writeQD)
		return toPoint(float64(kb), fmt.Sprintf("%dKB", kb), r)
	})
	return Figure{
		ID: "ablation-hostparity", Title: "Ablation: peer-to-peer vs host-side partial-write parity",
		XLabel: "io-size", Series: series,
	}
}

// AblationBarrier isolates the §5.2 non-blocking reduce: normal dRAID vs a
// barrier between the Broadcast and Reduce phases.
func AblationBarrier(o Options) Figure {
	o = o.withDefaults()
	names := []string{"dRAID (non-blocking reduce)", "dRAID (barrier)"}
	barrier := []bool{false, true}
	qds := []int{4, 12, 24}
	series := runGrid(o, names, len(qds), func(si, pi int) Point {
		qd := qds[pi]
		s := Setup{System: DRAID, Targets: 8, BarrierReduce: barrier[si], Seed: o.Seed}
		r := measure(s, o, 128<<10, 0, qd)
		return Point{X: float64(qd), Label: fmt.Sprintf("qd%d", qd), BW: r.BandwidthMBps(), Lat: r.AvgLatency()}
	})
	return Figure{
		ID: "ablation-barrier", Title: "Ablation: §5.2 non-blocking reduce vs phase barrier (128 KB writes)",
		XLabel: "queue-depth", Series: series,
	}
}

// AblationColocate measures §5.5 resource sharing: the same 8-wide array
// spread over 8 servers vs packed 2-per-server (4 servers). Peer parity
// traffic between co-located members stays off the NIC, but the shared NIC
// and controller core carry twice the members.
func AblationColocate(o Options) Figure {
	o = o.withDefaults()
	names := []string{"8 servers (1 bdev each)", "4 servers (2 bdevs each)"}
	perServer := []int{1, 2}
	sizes := sizesKB(o.Quick, 32, 128)
	series := runGrid(o, names, len(sizes), func(si, pi int) Point {
		kb := sizes[pi]
		s := Setup{System: DRAID, Targets: 8, BdevsPerServer: perServer[si], Seed: o.Seed}
		r := measure(s, o, kb<<10, 0, writeQD)
		return toPoint(float64(kb), fmt.Sprintf("%dKB", kb), r)
	})
	return Figure{
		ID: "ablation-colocate", Title: "Ablation: §5.5 bdev co-location on 128 KB writes",
		XLabel: "io-size", Series: series,
	}
}

// AblationReducer compares reducer-selection policies on degraded reads over
// heterogeneous NICs (random vs bandwidth-aware vs fixed).
func AblationReducer(o Options) Figure {
	o = o.withDefaults()
	gbps := []float64{100, 25, 100, 25, 100, 25, 100, 25}
	selectors := []string{"random", "bwaware", "fixed"}
	qds := []int{8, 16, 32}
	series := runGrid(o, selectors, len(qds), func(si, pi int) Point {
		qd := qds[pi]
		s := Setup{System: DRAID, Targets: 8, FailedMembers: []int{1}, Selector: selectors[si], TargetGbpsList: gbps, Seed: o.Seed}
		r := measure(s, o, 128<<10, 1.0, qd)
		return Point{X: float64(qd), Label: fmt.Sprintf("qd%d", qd), BW: r.BandwidthMBps(), Lat: r.AvgLatency()}
	})
	return Figure{
		ID: "ablation-reducer", Title: "Ablation: reducer selection policy, degraded reads on 25/100G mix",
		XLabel: "queue-depth", Series: series,
	}
}
