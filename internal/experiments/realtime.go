package experiments

import (
	"fmt"
	"sort"
	"time"

	"draid"
	"draid/internal/fio"
)

// Realtime counterparts of the figure sweeps: the same fio workloads driven
// through draid.Config{Backend: BackendRealtime}, so each point measures the
// real protocol on goroutine event loops and wall-clock timers instead of
// the calibrated simulation. Only the dRAID system exists here — the Linux
// and SPDK baselines, NIC line rates, and CPU cost models are simulation
// artifacts — so these figures carry a single series and their absolute
// numbers reflect the host machine, not the paper's testbed. Use them to
// sanity-check shapes (RMW knees, width scaling), not magnitudes.

// realtimeRegistry maps the experiment IDs that have a realtime counterpart.
var realtimeRegistry = map[string]func(Options, draid.RealtimeOptions) (Figure, error){
	"fig09":     RealtimeFig09,
	"fig10":     RealtimeFig10,
	"fig12":     RealtimeFig12,
	"fig13":     RealtimeFig13,
	"decluster": RealtimeDecluster,
	"greyfail":  RealtimeGreyfail,
	"writeback": RealtimeWriteback,
}

// RealtimeIDs returns the experiment IDs runnable on the realtime backend.
func RealtimeIDs() []string {
	var out []string
	for id := range realtimeRegistry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// measureRealtime runs one fio point against a realtime-backed array.
func measureRealtime(o Options, ro draid.RealtimeOptions, targets int, ioSize int64, readRatio float64, qd int) (fio.Result, error) {
	a, err := draid.New(draid.Config{
		Backend:       draid.BackendRealtime,
		Realtime:      ro,
		Drives:        targets,
		DriveCapacity: 1 << 30,
		SizeOnly:      ro.Dir == "", // file media need real bytes
		Seed:          o.Seed,
	})
	if err != nil {
		return fio.Result{}, err
	}
	defer a.Close()
	r := fio.Run(fio.Job{
		Name: "dRAID", Dev: a.Controller(), Eng: a.Cluster().Rt,
		IOSize: ioSize, ReadRatio: readRatio, QueueDepth: qd,
		Ramp: o.Ramp, Measure: o.Measure, Seed: o.Seed,
	})
	return r, nil
}

// realtimeSweep runs one single-series sweep point by point, serially: each
// point is a wall-clock measurement and must not share the CPU with another.
func realtimeSweep(n int, point func(i int) (Point, error)) ([]Series, error) {
	s := Series{System: "dRAID (realtime)"}
	for i := 0; i < n; i++ {
		p, err := point(i)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, p)
	}
	return []Series{s}, nil
}

// RealtimeFig09 — RAID-5 normal-state read vs I/O size (6 targets).
func RealtimeFig09(o Options, ro draid.RealtimeOptions) (Figure, error) {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128)
	series, err := realtimeSweep(len(sizes), func(i int) (Point, error) {
		kb := sizes[i]
		r, err := measureRealtime(o, ro, 6, kb<<10, 1.0, readQD)
		if err != nil {
			return Point{}, err
		}
		return toPoint(float64(kb), fmt.Sprintf("%dKB", kb), r), nil
	})
	return Figure{
		ID: "fig09", Title: "RAID-5 read vs I/O size (6 targets, realtime backend)",
		XLabel: "io-size", Series: series,
	}, err
}

// RealtimeFig10 — RAID-5 write vs I/O size (8 targets).
func RealtimeFig10(o Options, ro draid.RealtimeOptions) (Figure, error) {
	o = o.withDefaults()
	sizes := sizesKB(o.Quick, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3584)
	series, err := realtimeSweep(len(sizes), func(i int) (Point, error) {
		kb := sizes[i]
		r, err := measureRealtime(o, ro, 8, kb<<10, 0, writeQD)
		if err != nil {
			return Point{}, err
		}
		return toPoint(float64(kb), fmt.Sprintf("%dKB", kb), r), nil
	})
	return Figure{
		ID: "fig10", Title: "RAID-5 write vs I/O size (8 targets, realtime backend)",
		XLabel: "io-size", Series: series,
	}, err
}

// RealtimeFig12 — RAID-5 write scalability vs stripe width (128 KB I/O).
func RealtimeFig12(o Options, ro draid.RealtimeOptions) (Figure, error) {
	o = o.withDefaults()
	ws := widths(o.Quick)
	series, err := realtimeSweep(len(ws), func(i int) (Point, error) {
		r, err := measureRealtime(o, ro, ws[i], 128<<10, 0, 64)
		if err != nil {
			return Point{}, err
		}
		return toPoint(float64(ws[i]), fmt.Sprintf("%d", ws[i]), r), nil
	})
	return Figure{
		ID: "fig12", Title: "RAID-5 write vs stripe width (128 KB I/O, QD 64, realtime backend)",
		XLabel: "width", Series: series,
	}, err
}

// RealtimeFig13 — RAID-5 mixed read/write ratio (128 KB, 8 targets).
func RealtimeFig13(o Options, ro draid.RealtimeOptions) (Figure, error) {
	o = o.withDefaults()
	ratios := []float64{0, 0.25, 0.5, 0.75, 1.0}
	if o.Quick {
		ratios = []float64{0, 1.0}
	}
	series, err := realtimeSweep(len(ratios), func(i int) (Point, error) {
		ratio := ratios[i]
		qd := 16
		if ratio == 1.0 {
			qd = readQD
		}
		r, err := measureRealtime(o, ro, 8, 128<<10, ratio, qd)
		if err != nil {
			return Point{}, err
		}
		return toPoint(100*ratio, fmt.Sprintf("%.0f%%", 100*ratio), r), nil
	})
	return Figure{
		ID: "fig13", Title: "RAID-5 write vs read/write ratio (128 KB, 8 targets, realtime backend)",
		XLabel: "read-ratio", Series: series,
	}, err
}

// RunAllRealtime executes the given experiment IDs on the realtime backend
// and returns their reports in input order. Unknown or simulation-only IDs
// are rejected up front. Experiments run strictly serially: every point is a
// wall-clock measurement, so concurrent runs would contend for the CPU they
// are measuring.
func RunAllRealtime(ids []string, o Options, ro draid.RealtimeOptions) ([]Report, error) {
	for _, id := range ids {
		if _, ok := realtimeRegistry[id]; !ok {
			return nil, fmt.Errorf("experiments: %q has no realtime counterpart (available: %v)", id, RealtimeIDs())
		}
	}
	out := make([]Report, len(ids))
	for i, id := range ids {
		start := time.Now()
		fig, err := realtimeRegistry[id](o, ro)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (realtime): %w", id, err)
		}
		out[i] = Report{ID: id, Text: fig.String(), Elapsed: time.Since(start)}
	}
	return out, nil
}
