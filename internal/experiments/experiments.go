// Package experiments encodes every table and figure of the paper's
// evaluation (§9 and Appendix A) as a runnable experiment: workload,
// parameter sweep, systems under test, and the series the paper plots.
// cmd/draid-bench and the repository's top-level benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"strings"

	"draid/internal/baseline"
	"draid/internal/blockdev"
	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/fio"
	"draid/internal/raid"
	"draid/internal/recon"
	"draid/internal/sim"
	"draid/internal/simnet"
)

// System identifies a system under test.
type System string

// The paper's comparison systems.
const (
	Linux System = "Linux"
	SPDK  System = "SPDK"
	DRAID System = "dRAID"
)

// AllSystems lists the systems in the paper's plotting order.
var AllSystems = []System{Linux, SPDK, DRAID}

// Options tune experiment execution.
type Options struct {
	// Ramp and Measure are the per-point warm-up and measurement windows
	// (defaults 30ms / 100ms of virtual time).
	Ramp    sim.Duration
	Measure sim.Duration
	// QueueDepth is the default closed-loop depth (default 32).
	QueueDepth int
	// Quick shrinks sweeps to their endpoints for smoke runs.
	Quick bool
	// Seed drives all randomness (default 1).
	Seed int64
	// Parallel is the maximum number of concurrently running simulations
	// (≤ 1 means serial). Each measurement point owns an independent engine,
	// and results are collected in input order, so any value produces output
	// byte-identical to a serial run.
	Parallel int
}

// parallel returns the effective worker count.
func (o Options) parallel() int {
	if o.Parallel <= 1 {
		return 1
	}
	return o.Parallel
}

func (o Options) withDefaults() Options {
	if o.Ramp == 0 {
		o.Ramp = 30 * sim.Millisecond
	}
	if o.Measure == 0 {
		o.Measure = 100 * sim.Millisecond
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Point is one measurement.
type Point struct {
	X     float64 // sweep coordinate (KB, width, ratio, ...)
	Label string
	BW    float64 // MB/s
	Lat   float64 // mean latency, microseconds
	Extra float64 // figure-specific (e.g. KIOPS)
}

// Series is one line on a figure.
type Series struct {
	System string
	Points []Point
}

// Figure is a reproduced table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
	Notes  []string
}

// String renders the figure as an aligned text table (one row per X, one
// BW/Lat column pair per system) — the same rows the paper plots.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %14s MB/s %9s us", s.System, "")
	}
	b.WriteString("\n")
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			p0 := f.Series[0].Points[i]
			label := p0.Label
			if label == "" {
				label = fmt.Sprintf("%g", p0.X)
			}
			fmt.Fprintf(&b, "%-12s", label)
			for _, s := range f.Series {
				if i < len(s.Points) {
					fmt.Fprintf(&b, " | %14.1f      %9.1f   ", s.Points[i].BW, s.Points[i].Lat)
				}
			}
			b.WriteString("\n")
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Setup describes a testbed + array for one measurement run.
type Setup struct {
	System    System
	Targets   int
	Level     raid.Level
	ChunkSize int64
	// TargetGbpsList enables heterogeneous NICs (Figure 17b).
	TargetGbpsList []float64
	// FailedMembers are pre-failed (degraded-state experiments).
	FailedMembers []int
	// Selector overrides the dRAID reducer policy ("random", "bwaware",
	// "fixed"; empty = random).
	Selector string
	// Pipelined disables the §5.3 pipeline when false+PipelineSet.
	Pipelined   bool
	PipelineSet bool
	// BarrierReduce enables the §5.2 barrier ablation.
	BarrierReduce bool
	// BdevsPerServer co-locates members on shared servers (§5.5).
	BdevsPerServer int
	// HostParityOnly enables the host-parity ablation for dRAID.
	HostParityOnly bool
	Seed           int64
}

// Build assembles the cluster and device for a setup. Every run gets a
// fresh, independent simulation.
func Build(s Setup) (blockdev.Device, *cluster.Cluster) {
	if s.ChunkSize == 0 {
		s.ChunkSize = 512 << 10
	}
	if s.Level == 0 {
		s.Level = raid.Raid5
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	spec := cluster.DefaultSpec()
	spec.Targets = s.Targets
	spec.Elide = true
	spec.Seed = s.Seed
	spec.TargetGbpsList = s.TargetGbpsList
	if s.PipelineSet {
		spec.Pipelined = s.Pipelined
	}
	spec.BarrierReduce = s.BarrierReduce
	spec.BdevsPerServer = s.BdevsPerServer
	cl := cluster.New(spec)
	geo := raid.Geometry{Level: s.Level, Width: s.Targets, ChunkSize: s.ChunkSize}

	var dev blockdev.Device
	switch s.System {
	case DRAID:
		cfg := core.Config{Geometry: geo, HostParityOnly: s.HostParityOnly}
		switch s.Selector {
		case "", "random":
			// default
		case "fixed":
			cfg.Selector = recon.FixedSelector{}
		case "bwaware":
			tr := recon.NewBandwidthTracker(cl.Eng, firstNICs(cl), 2*sim.Millisecond)
			cfg.Selector = &recon.BWAwareSelector{Rng: cl.Eng.Rand(), Tracker: tr, Fanout: s.Targets - 2}
		default:
			panic("experiments: unknown selector " + s.Selector)
		}
		h := cl.NewDRAID(cfg)
		for _, m := range s.FailedMembers {
			cl.FailTarget(m)
			h.SetFailed(m, true)
		}
		dev = h
	case SPDK, Linux:
		style := baseline.SPDKStyle()
		if s.System == Linux {
			style = baseline.LinuxStyle()
		}
		h := baseline.NewHost(cl.Eng, cl.Fabric, cl.DriveCapacity(), baseline.Config{
			Geometry: geo, Costs: cl.Costs, Style: style,
		})
		for _, m := range s.FailedMembers {
			cl.FailTarget(m)
			h.SetFailed(m, true)
		}
		dev = h
	default:
		panic("experiments: unknown system " + string(s.System))
	}
	return dev, cl
}

// firstNICs returns the first NIC of each target, in member order.
func firstNICs(cl *cluster.Cluster) []*simnet.NIC {
	out := make([]*simnet.NIC, len(cl.Targets))
	for i, t := range cl.Targets {
		out[i] = t.NICs()[0]
	}
	return out
}

// measure runs one fio point against a fresh setup.
func measure(s Setup, o Options, ioSize int64, readRatio float64, qd int) fio.Result {
	dev, cl := Build(s)
	if qd == 0 {
		qd = o.QueueDepth
	}
	return fio.Run(fio.Job{
		Name: string(s.System), Dev: dev, Eng: cl.Eng,
		IOSize: ioSize, ReadRatio: readRatio, QueueDepth: qd,
		Ramp: o.Ramp, Measure: o.Measure, Seed: o.Seed,
	})
}

func toPoint(x float64, label string, r fio.Result) Point {
	return Point{X: x, Label: label, BW: r.BandwidthMBps(), Lat: r.AvgLatency()}
}
