package experiments

import "fmt"

// Expectation encodes one of the paper's claims as a machine-checkable
// predicate over a regenerated figure — the artifact-evaluation view of the
// reproduction. Bounds are deliberately looser than the measured values in
// EXPERIMENTS.md: they assert the SHAPE (who wins, rough factor, crossover),
// not the calibration.
type Expectation struct {
	FigureID string
	Claim    string
	Check    func(Figure) error
}

// series returns the named series of f.
func series(f Figure, name string) (Series, error) {
	for _, s := range f.Series {
		if s.System == name {
			return s, nil
		}
	}
	return Series{}, fmt.Errorf("series %q missing from %s", name, f.ID)
}

// at returns the point with the given label.
func at(s Series, label string) (Point, error) {
	for _, p := range s.Points {
		if p.Label == label {
			return p, nil
		}
	}
	return Point{}, fmt.Errorf("point %q missing from series %s", label, s.System)
}

// bwAt returns the bandwidth of system sys at point label.
func bwAt(f Figure, sys, label string) (float64, error) {
	s, err := series(f, sys)
	if err != nil {
		return 0, err
	}
	p, err := at(s, label)
	if err != nil {
		return 0, err
	}
	return p.BW, nil
}

// maxBW returns the best bandwidth a system reaches anywhere on the figure.
func maxBW(f Figure, sys string) (float64, error) {
	s, err := series(f, sys)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, p := range s.Points {
		if p.BW > best {
			best = p.BW
		}
	}
	return best, nil
}

// ratioCheck asserts dRAID/SPDK (or any pair) at one point is within
// [lo, hi].
func ratioCheck(num, den, label string, lo, hi float64) func(Figure) error {
	return func(f Figure) error {
		a, err := bwAt(f, num, label)
		if err != nil {
			return err
		}
		b, err := bwAt(f, den, label)
		if err != nil {
			return err
		}
		r := a / b
		if r < lo || r > hi {
			return fmt.Errorf("%s/%s at %s = %.2fx, want [%.2f, %.2f]", num, den, label, r, lo, hi)
		}
		return nil
	}
}

const goodputMBps = 11485 // ~92 Gbps on the 100 Gbps NIC

// Expectations lists the paper's checkable claims. Run with RunFigure and
// non-Quick options.
func Expectations() []Expectation {
	return []Expectation{
		{"fig09", "all systems reach NIC goodput on 128 KB reads (§9.2)", func(f Figure) error {
			for _, sys := range []string{"Linux", "SPDK", "dRAID"} {
				bw, err := bwAt(f, sys, "128KB")
				if err != nil {
					return err
				}
				if bw < 0.9*goodputMBps {
					return fmt.Errorf("%s 128KB read = %.0f, want ≥ 90%% of goodput", sys, bw)
				}
			}
			return nil
		}},
		{"fig10", "dRAID beats SPDK on 128 KB RMW writes (paper 1.7x; ≥1.3x required)",
			ratioCheck("dRAID", "SPDK", "128KB", 1.3, 2.5)},
		{"fig10", "full-stripe writes (3584 KB) are handled identically (§9.3)",
			ratioCheck("dRAID", "SPDK", "3584KB", 0.97, 1.03)},
		{"fig10", "Linux writes are far behind SPDK (§9.3)",
			ratioCheck("Linux", "SPDK", "128KB", 0, 0.55)},
		{"fig11", "dRAID write advantage holds across chunk sizes (§9.3)",
			ratioCheck("dRAID", "SPDK", "512KB", 1.25, 3.0)},
		{"fig12", "SPDK write ceiling is ~half the NIC goodput at width 18 (§9.3)", func(f Figure) error {
			bw, err := bwAt(f, "SPDK", "18")
			if err != nil {
				return err
			}
			if bw < 0.40*goodputMBps || bw > 0.60*goodputMBps {
				return fmt.Errorf("SPDK width-18 write = %.0f, want ~50%% of goodput", bw)
			}
			return nil
		}},
		{"fig12", "dRAID scales near-linearly to ~the goodput at width 18 (paper 84 Gbps)", func(f Figure) error {
			bw, err := bwAt(f, "dRAID", "18")
			if err != nil {
				return err
			}
			if bw < 0.85*goodputMBps {
				return fmt.Errorf("dRAID width-18 write = %.0f, want >= 85%% of goodput", bw)
			}
			return nil
		}},
		{"fig12", "Linux throughput declines with stripe width (§9.3)", func(f Figure) error {
			s, err := series(f, "Linux")
			if err != nil {
				return err
			}
			if s.Points[len(s.Points)-1].BW >= s.Points[0].BW {
				return fmt.Errorf("Linux does not decline: %.0f → %.0f",
					s.Points[0].BW, s.Points[len(s.Points)-1].BW)
			}
			return nil
		}},
		{"fig13", "dRAID gains at every mixed ratio, parity on read-only (§9.3)", func(f Figure) error {
			for _, label := range []string{"0%", "25%", "50%", "75%"} {
				if err := ratioCheck("dRAID", "SPDK", label, 1.15, 2.5)(f); err != nil {
					return err
				}
			}
			return ratioCheck("dRAID", "SPDK", "100%", 0.97, 1.03)(f)
		}},
		{"fig14a", "write-only load sweep: dRAID's ceiling ~2x SPDK's (§9.3)", func(f Figure) error {
			d, err := maxBW(f, "dRAID")
			if err != nil {
				return err
			}
			s, err := maxBW(f, "SPDK")
			if err != nil {
				return err
			}
			if d < 1.8*s {
				return fmt.Errorf("dRAID max %.0f vs SPDK max %.0f = %.2fx, want ≥ 1.8x", d, s, d/s)
			}
			return nil
		}},
		{"fig14b", "50/50 load sweep: up to ~3x improvement (§9.3)", func(f Figure) error {
			d, err := maxBW(f, "dRAID")
			if err != nil {
				return err
			}
			s, err := maxBW(f, "SPDK")
			if err != nil {
				return err
			}
			if d < 2.2*s {
				return fmt.Errorf("dRAID max %.0f vs SPDK max %.0f = %.2fx, want ≥ 2.2x", d, s, d/s)
			}
			return nil
		}},
		{"fig15", "dRAID degraded reads reach ≥90%% of normal-state read (paper 95%)", func(f Figure) error {
			bw, err := bwAt(f, "dRAID", "128KB")
			if err != nil {
				return err
			}
			if bw < 0.90*goodputMBps {
				return fmt.Errorf("dRAID degraded 128KB read = %.0f, want ≥ 90%% of goodput", bw)
			}
			return nil
		}},
		{"fig15", "SPDK degraded reads drop to ~57% of normal (§9.4)", func(f Figure) error {
			bw, err := bwAt(f, "SPDK", "128KB")
			if err != nil {
				return err
			}
			frac := bw / goodputMBps
			if frac < 0.45 || frac > 0.70 {
				return fmt.Errorf("SPDK degraded fraction = %.2f, want ~0.57", frac)
			}
			return nil
		}},
		{"fig15", "Linux degraded reads collapse to ~834 MB/s (§9.4)", func(f Figure) error {
			bw, err := bwAt(f, "Linux", "128KB")
			if err != nil {
				return err
			}
			if bw > 1500 {
				return fmt.Errorf("Linux degraded read = %.0f, want ≤ 1500", bw)
			}
			return nil
		}},
		{"fig16", "degraded-read scaling: dRAID up to 2.4x SPDK (≥1.5x required)", func(f Figure) error {
			return ratioCheck("dRAID", "SPDK", "18", 1.5, 3.0)(f)
		}},
		{"fig17a", "rebuild scales with width for dRAID, collapses for SPDK (§9.4)",
			ratioCheck("dRAID", "SPDK", "18", 2.0, 8.0)},
		{"fig17b", "bandwidth-aware reconstruction gains ~53% at light load (§6.2)", func(f Figure) error {
			r, err := series(f, "Random")
			if err != nil {
				return err
			}
			a, err := series(f, "BW-Aware")
			if err != nil {
				return err
			}
			gain := a.Points[0].BW / r.Points[0].BW
			if gain < 1.25 {
				return fmt.Errorf("BW-aware gain at light load = %.2fx, want ≥ 1.25x", gain)
			}
			return nil
		}},
		{"fig18", "degraded writes: dRAID keeps its lead (paper 1.7x; ≥1.3x required)",
			ratioCheck("dRAID", "SPDK", "128KB", 1.3, 2.5)},
		{"fig23", "RAID-6 128 KB writes: dRAID leads (paper 2.3x; ≥1.3x required)",
			ratioCheck("dRAID", "SPDK", "128KB", 1.3, 3.0)},
		{"fig23", "RAID-6 full stripe (3072 KB) identical",
			ratioCheck("dRAID", "SPDK", "3072KB", 0.97, 1.03)},
		{"fig25", "RAID-6 width scaling: SPDK can hardly scale, dRAID near-linear (§A.2)",
			ratioCheck("dRAID", "SPDK", "18", 1.8, 4.0)},
		{"fig28", "RAID-6 degraded reads: SPDK at ~61% of dRAID (§A.3)", func(f Figure) error {
			s, err := bwAt(f, "SPDK", "128KB")
			if err != nil {
				return err
			}
			d, err := bwAt(f, "dRAID", "128KB")
			if err != nil {
				return err
			}
			frac := s / d
			if frac < 0.50 || frac > 0.75 {
				return fmt.Errorf("SPDK/dRAID degraded = %.2f, want ~0.61", frac)
			}
			return nil
		}},
		{"ablation-hostparity", "peer-to-peer parity is the load-bearing design choice (≥2x host-side)",
			ratioCheck("dRAID (peer-to-peer parity)", "dRAID (host parity)", "128KB", 2.0, 5.0)},
		{"decluster", "declustered rebuild at 3x the drives completes in ≤0.6x the time (many-to-many)", func(f Figure) error {
			s, err := series(f, "declustered")
			if err != nil {
				return err
			}
			small, err := at(s, "6")
			if err != nil {
				return err
			}
			big, err := at(s, "18")
			if err != nil {
				return err
			}
			if small.Lat <= 0 || big.Lat > 0.6*small.Lat {
				return fmt.Errorf("declustered rebuild: 18 drives %.0fus vs 6 drives %.0fus = %.2fx, want ≤ 0.6x",
					big.Lat, small.Lat, big.Lat/small.Lat)
			}
			return nil
		}},
		{"decluster", "fixed-layout rebuild time stays flat as the cluster grows (±10%)", func(f Figure) error {
			s, err := series(f, "fixed")
			if err != nil {
				return err
			}
			lo, hi := 0.0, 0.0
			for i, p := range s.Points {
				if p.Lat <= 0 {
					return fmt.Errorf("fixed rebuild at %s took no time", p.Label)
				}
				if i == 0 || p.Lat < lo {
					lo = p.Lat
				}
				if i == 0 || p.Lat > hi {
					hi = p.Lat
				}
			}
			if hi > 1.1*lo {
				return fmt.Errorf("fixed rebuild spread = %.2fx across cluster sizes, want ≤ 1.1x", hi/lo)
			}
			return nil
		}},
		{"greyfail", "adaptive hedging cuts read p99 ≥2x under a 10x-slow member (qd=16)", func(f Figure) error {
			off, err := series(f, "off")
			if err != nil {
				return err
			}
			ad, err := series(f, "adaptive-p95")
			if err != nil {
				return err
			}
			po, err := at(off, "qd=16")
			if err != nil {
				return err
			}
			pa, err := at(ad, "qd=16")
			if err != nil {
				return err
			}
			if pa.Lat*2 > po.Lat {
				return fmt.Errorf("read p99: off %.0fus vs adaptive-p95 %.0fus = %.2fx cut, want ≥ 2x",
					po.Lat, pa.Lat, po.Lat/pa.Lat)
			}
			return nil
		}},
		{"multivol-noisy", "per-volume QoS keeps the victim's write p99 within 1.5x of isolated", func(f Figure) error {
			shared, err := series(f, "victim rnd-wr")
			if err != nil {
				return err
			}
			qos, err := series(f, "victim (QoS)")
			if err != nil {
				return err
			}
			iso, err := at(shared, "qd=0")
			if err != nil {
				return err
			}
			hurt, err := at(shared, "qd=32")
			if err != nil {
				return err
			}
			kept, err := at(qos, "qd=32")
			if err != nil {
				return err
			}
			// Extra carries the victim's write p99 in us. The unprotected
			// series must show real interference, else the claim is vacuous.
			if hurt.Extra < 3*iso.Extra {
				return fmt.Errorf("aggressor barely hurts: shared p99 %.0fus vs isolated %.0fus", hurt.Extra, iso.Extra)
			}
			if kept.Extra > 1.5*iso.Extra {
				return fmt.Errorf("QoS victim p99 %.0fus = %.2fx isolated %.0fus, want ≤ 1.5x",
					kept.Extra, kept.Extra/iso.Extra, iso.Extra)
			}
			return nil
		}},
		{"writeback", "staging cuts sub-chunk write amplification to ≤1.3x where unstaged pays ≥2x", func(f Figure) error {
			staged, err := series(f, "staged")
			if err != nil {
				return err
			}
			unstaged, err := series(f, "unstaged")
			if err != nil {
				return err
			}
			ps, err := at(staged, "64KB")
			if err != nil {
				return err
			}
			pu, err := at(unstaged, "64KB")
			if err != nil {
				return err
			}
			// Extra carries drive-byte amplification at equal data written.
			if pu.Extra < 2.0 {
				return fmt.Errorf("unstaged 64KB amplification = %.2fx, want ≥ 2x (RMW pays data+parity)", pu.Extra)
			}
			if ps.Extra > 1.3 {
				return fmt.Errorf("staged 64KB amplification = %.2fx, want ≤ 1.3x (full-stripe destage)", ps.Extra)
			}
			if ps.Extra < 1.0 {
				return fmt.Errorf("staged 64KB amplification = %.2fx < 1x: drives missing bytes after flush", ps.Extra)
			}
			return nil
		}},
		{"writeback", "full-stripe writes are unaffected by staging (both ~(k+1)/k)", func(f Figure) error {
			for _, sys := range []string{"staged", "unstaged"} {
				s, err := series(f, sys)
				if err != nil {
					return err
				}
				pt, err := at(s, "448KB")
				if err != nil {
					return err
				}
				if pt.Extra < 1.0 || pt.Extra > 1.3 {
					return fmt.Errorf("%s 448KB amplification = %.2fx, want ~1.14x", sys, pt.Extra)
				}
			}
			return nil
		}},
	}
}
