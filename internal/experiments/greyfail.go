package experiments

import (
	"fmt"
	"time"

	"draid"
	"draid/internal/fio"
)

// Greyfail is the grey-failure experiment: one member of an 8-wide RAID-5
// array is made deterministically slow (10× service-time inflation — it
// answers correctly, just late) and a full-stripe random-read workload sweeps
// queue depth under each hedging policy. The figure reports read p99 (Lat)
// and p999 (Extra) per policy: without hedging every read that touches the
// grey member waits out its straggler; with hedging the host solves the
// straggler's chunk through parity from the k completions it already holds.
// The adaptive series also feeds the failure detector's slow-strike lattice,
// so the grey member is eventually evicted and reads continue degraded at
// zero extra cost — the "adaptive/no-evict" series isolates what eviction
// buys. Notes carry the drive-read amplification each policy paid.
func Greyfail(o Options) Figure {
	o = o.withDefaults()
	qds := []int{8, 16, 32}
	policies := []greyfailPolicy{
		{label: "off", policy: draid.HedgeOff},
		{label: "fixed-delay", policy: draid.HedgeFixedDelay},
		{label: "adaptive-p95", policy: draid.HedgeAdaptiveP95},
		{label: "adaptive/no-evict", policy: draid.HedgeAdaptiveP95, noEvict: true},
		{label: "eager-parity", policy: draid.HedgeEagerParity},
	}
	if o.Quick {
		qds = []int{16}
		policies = policies[:3]
	}

	type cell struct {
		p    Point
		note string
	}
	grid := parMap(o.parallel(), len(policies)*len(qds), func(idx int) cell {
		pol := policies[idx/len(qds)]
		qd := qds[idx%len(qds)]
		r, note := greyfailPoint(o, pol, qd)
		return cell{
			p: Point{
				X: float64(qd), Label: fmt.Sprintf("qd=%d", qd),
				BW:  r.BandwidthMBps(),
				Lat: r.ReadLat.P99 / 1e3, Extra: r.ReadLat.P999 / 1e3,
			},
			note: note,
		}
	})

	fig := Figure{
		ID:     "greyfail",
		Title:  "Grey failure: read p99 vs hedging policy (8-wide RAID-5, full-stripe reads, member 2 at 10x latency)",
		XLabel: "queue depth",
		Notes: []string{
			"Lat column is read p99 in us; Extra (per-point) is p999",
			"slow member injected via SlowProfile{const,10x}; hedge solves k-of-n through parity",
		},
	}
	for pi, pol := range policies {
		s := Series{System: pol.label}
		for qi := range qds {
			c := grid[pi*len(qds)+qi]
			s.Points = append(s.Points, c.p)
			if qi == len(qds)-1 {
				fig.Notes = append(fig.Notes, c.note)
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

type greyfailPolicy struct {
	label   string
	policy  draid.HedgePolicy
	noEvict bool
}

// greyfailPoint measures one (policy, queue depth) cell on a fresh array and
// returns the fio result plus a note summarizing what the policy cost:
// drive-read amplification over the user bytes, hedge counts, and whether
// the detector evicted the grey member.
func greyfailPoint(o Options, pol greyfailPolicy, qd int) (fio.Result, string) {
	evictAfter := 0 // default (64)
	if pol.noEvict {
		evictAfter = -1
	}
	arr, err := draid.New(draid.Config{
		Drives: 8, ChunkSize: 64 << 10, SizeOnly: true, Seed: o.Seed,
		Hedge: draid.HedgeConfig{Policy: pol.policy},
		Health: draid.HealthConfig{
			// The detector here consumes only slow strikes from the hedger;
			// park the heartbeat prober far beyond the run so fault evidence
			// cannot contribute.
			Detect: true, HeartbeatEvery: time.Hour, EvictAfter: evictAfter,
		},
	})
	if err != nil {
		panic(err)
	}
	if err := arr.Inject().SlowDrive(2, draid.SlowProfile{Kind: draid.SlowConstant, Factor: 10}); err != nil {
		panic(err)
	}
	geo := arr.Controller().Geometry()
	r := fio.Run(fio.Job{
		Name: pol.label, Dev: arr.Controller(), Eng: arr.Cluster().Rt,
		IOSize: geo.StripeDataSize(), ReadRatio: 1, QueueDepth: qd,
		Ramp: o.Ramp, Measure: o.Measure, Seed: o.Seed,
	})

	var driveBytes int64
	for _, d := range arr.Cluster().Drives {
		driveBytes += d.Stats().ReadBytes
	}
	st := arr.Stats()
	amp := 0.0
	if st.UserBytesRead > 0 {
		amp = 100 * (float64(driveBytes)/float64(st.UserBytesRead) - 1)
	}
	evicted := "grey member still in service"
	if h := arr.MemberHealth(); h[2] == draid.Failed {
		evicted = "grey member evicted"
	} else if h[2] == draid.Degraded || h[2] == draid.Suspect {
		evicted = "grey member " + h[2].String()
	}
	note := fmt.Sprintf("%s @qd=%d: %+.1f%% drive-read amplification, %d hedged / %d wins, %s",
		pol.label, qd, amp, st.HedgedReads, st.HedgeWins, evicted)
	return r, note
}

// RealtimeGreyfail is the realtime counterpart: the same grey-failure
// scenario driven through the realtime backend's memory drives, whose slow
// profile inflates a synthetic per-op latency instead of a modeled service
// rate. One point per policy (off vs adaptive-p95) at a fixed queue depth —
// wall-clock quantiles, so shapes matter, not magnitudes.
func RealtimeGreyfail(o Options, ro draid.RealtimeOptions) (Figure, error) {
	o = o.withDefaults()
	if ro.Dir != "" {
		return Figure{}, fmt.Errorf("experiments: greyfail needs slow-drive injection, unsupported on file-backed drives: %w", draid.ErrUnsupported)
	}
	policies := []draid.HedgeConfig{
		{Policy: draid.HedgeOff},
		{Policy: draid.HedgeFixedDelay, Delay: 2 * time.Millisecond},
		{Policy: draid.HedgeAdaptiveP95},
	}
	s := Series{System: "dRAID (realtime)"}
	for _, hc := range policies {
		pol := hc.Policy
		arr, err := draid.New(draid.Config{
			Backend: draid.BackendRealtime, Realtime: ro,
			Drives: 8, ChunkSize: 64 << 10, DriveCapacity: 256 << 20,
			SizeOnly: true, Seed: o.Seed,
			Hedge: hc,
		})
		if err != nil {
			return Figure{}, err
		}
		// The realtime drives' slow profile inflates a synthetic latency, so
		// the penalty must clear wall-clock scheduling noise: 20x on a 500us
		// base pins the straggler ~9.5ms late, far above any hedge path.
		if err := arr.Inject().SlowDrive(2, draid.SlowProfile{
			Kind: draid.SlowConstant, Factor: 20, Base: 500 * time.Microsecond,
		}); err != nil {
			arr.Close()
			return Figure{}, err
		}
		geo := arr.Controller().Geometry()
		r := fio.Run(fio.Job{
			Name: pol.String(), Dev: arr.Controller(), Eng: arr.Cluster().Rt,
			IOSize: geo.StripeDataSize(), ReadRatio: 1, QueueDepth: 16,
			Ramp: o.Ramp, Measure: o.Measure, Seed: o.Seed,
		})
		arr.Close()
		s.Points = append(s.Points, Point{
			X: float64(len(s.Points)), Label: pol.String(),
			BW: r.BandwidthMBps(), Lat: r.ReadLat.P99 / 1e3, Extra: r.ReadLat.P999 / 1e3,
		})
	}
	return Figure{
		ID:     "greyfail",
		Title:  "Grey failure: read p99 by hedging policy (8-wide RAID-5, member 2 at 20x, realtime backend)",
		XLabel: "policy",
		Series: []Series{s},
		Notes:  []string{"Lat column is read p99 in us; Extra is p999 (wall clock)"},
	}, nil
}
