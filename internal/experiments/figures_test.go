package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Ramp: 10e6, Measure: 30e6} // 10ms/30ms windows
}

func TestAllFiguresRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke runs take a few seconds")
	}
	o := quickOpts()
	figs := []Figure{
		Fig09(o), Fig10(o), Fig11(o), Fig12(o), Fig13(o),
		Fig14(o, "wo"), Fig14(o, "rw"),
		Fig15(o), Fig16(o), Fig17a(o), Fig17b(o), Fig18(o),
		Fig22(o), Fig23(o), Fig24(o), Fig25(o), Fig26(o),
		Fig27(o, "wo"), Fig27(o, "rw"), Fig28(o), Fig29(o), Fig30(o),
		Decluster(o),
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || len(f.Series) == 0 {
			t.Fatalf("figure %q empty", f.Title)
		}
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s: series %s has no points", f.ID, s.System)
			}
			for _, p := range s.Points {
				if p.BW <= 0 {
					t.Errorf("%s/%s: nonpositive bandwidth at %v", f.ID, s.System, p.Label)
				}
			}
		}
		if !strings.Contains(f.String(), f.ID) {
			t.Errorf("%s: String() missing id", f.ID)
		}
		t.Logf("\n%s", f.String())
	}
}

func TestTable1Overheads(t *testing.T) {
	rows := Table1(Options{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	sm, dist, dr := rows[0], rows[1], rows[2]
	// Paper's Table 1: single-machine 1x/1x, distributed 1-4x write and Nx
	// degraded read, dRAID 1x/1x.
	if sm.WriteOverhead > 1.1 || sm.DReadOverhead > 1.1 {
		t.Errorf("single-machine overheads = %.2f/%.2f, want ~1x", sm.WriteOverhead, sm.DReadOverhead)
	}
	if dist.WriteOverhead < 1.8 {
		t.Errorf("distributed write overhead = %.2f, want ~2x", dist.WriteOverhead)
	}
	if dist.DReadOverhead < 3.0 {
		t.Errorf("distributed degraded-read overhead = %.2f, want ~(n-1)x", dist.DReadOverhead)
	}
	if dr.WriteOverhead > 1.1 || dr.DReadOverhead > 1.1 {
		t.Errorf("dRAID overheads = %.2f/%.2f, want ~1x", dr.WriteOverhead, dr.DReadOverhead)
	}
	out := FormatTable1(rows)
	for _, want := range []string{"dRAID", "Single-Machine", "Storage pool"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
	t.Logf("\n%s", out)
}

func TestSizesKBQuick(t *testing.T) {
	got := sizesKB(true, 4, 8, 16, 128)
	if len(got) != 2 || got[0] != 4 || got[1] != 128 {
		t.Fatalf("quick sizes = %v", got)
	}
	if len(sizesKB(false, 4, 8)) != 2 {
		t.Fatal("non-quick should keep all")
	}
}

func TestBuildUnknownSelectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(Setup{System: DRAID, Targets: 4, Selector: "bogus"})
}
