package experiments

import (
	"testing"

	"draid/internal/raid"
)

// TestCalibrationSnapshot logs the key operating points the paper reports,
// so calibration drift is visible in -v output. The assertions encode only
// the SHAPE requirements (who wins, roughly by how much); EXPERIMENTS.md
// records the absolute numbers.
func TestCalibrationSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs several simulated seconds")
	}
	o := Options{}.withDefaults()

	run := func(sys System, targets int, level raid.Level, failed []int, ratio float64, ioKB int64, qd int) (bw, lat float64) {
		s := Setup{System: sys, Targets: targets, Level: level, FailedMembers: failed}
		r := measure(s, o, ioKB<<10, ratio, qd)
		t.Logf("%-6s t=%2d %v fail=%v ratio=%.2f io=%5dKB qd=%3d → bw=%8.1f MB/s lat=%8.1f us",
			sys, targets, level, failed, ratio, ioKB, qd, r.BandwidthMBps(), r.AvgLatency())
		return r.BandwidthMBps(), r.AvgLatency()
	}

	// Fig 9 anchor: 128 KB normal reads, 6 targets — everyone ~NIC goodput.
	for _, sys := range AllSystems {
		bw, _ := run(sys, 6, raid.Raid5, nil, 1, 128, 32)
		if bw < 9000 {
			t.Errorf("%s 128KB read = %.0f MB/s, want ~11500 (NIC goodput)", sys, bw)
		}
	}

	// Fig 10 anchor: 128 KB RMW writes, 8 targets — dRAID ~1.7× SPDK,
	// Linux far behind.
	dBW, _ := run(DRAID, 8, raid.Raid5, nil, 0, 128, 12)
	sBW, _ := run(SPDK, 8, raid.Raid5, nil, 0, 128, 12)
	lBW, _ := run(Linux, 8, raid.Raid5, nil, 0, 128, 12)
	if dBW < 1.3*sBW {
		t.Errorf("dRAID/SPDK 128KB write = %.2f×, want ≥1.3 (paper 1.7×)", dBW/sBW)
	}
	if lBW > 0.8*sBW {
		t.Errorf("Linux (%.0f) should trail SPDK (%.0f) on writes", lBW, sBW)
	}

	// Fig 12 anchor: 18 targets, 128 KB writes — SPDK caps ~½ goodput,
	// dRAID approaches goodput.
	dBW18, _ := run(DRAID, 18, raid.Raid5, nil, 0, 128, 64)
	sBW18, _ := run(SPDK, 18, raid.Raid5, nil, 0, 128, 64)
	if sBW18 > 6500 {
		t.Errorf("SPDK 18-target write = %.0f MB/s, should cap near half goodput (~5750)", sBW18)
	}
	if dBW18 < 8500 {
		t.Errorf("dRAID 18-target write = %.0f MB/s, want near goodput (~10500)", dBW18)
	}

	// Fig 15 anchor: degraded 128 KB reads, 8 targets — dRAID ≈ 95% of
	// normal read; SPDK ≈ 57%; Linux collapses.
	dN, _ := run(DRAID, 8, raid.Raid5, nil, 1, 128, 32)
	dD, _ := run(DRAID, 8, raid.Raid5, []int{0}, 1, 128, 32)
	sD, _ := run(SPDK, 8, raid.Raid5, []int{0}, 1, 128, 32)
	lD, _ := run(Linux, 8, raid.Raid5, []int{0}, 1, 128, 32)
	if dD < 0.80*dN {
		t.Errorf("dRAID degraded read = %.0f%% of normal, want ≥80%% (paper 95%%)", 100*dD/dN)
	}
	if sD > 0.80*dD {
		t.Errorf("SPDK degraded (%.0f) should clearly trail dRAID (%.0f)", sD, dD)
	}
	if lD > 0.6*sD {
		t.Errorf("Linux degraded read (%.0f) should collapse well below SPDK (%.0f)", lD, sD)
	}
}
