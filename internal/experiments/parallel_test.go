package experiments

import (
	"sync/atomic"
	"testing"
)

// TestParallelRunsAreByteIdentical is the determinism regression guard for
// the parallel harness: every figure must render byte-for-byte the same under
// Parallel: 8 as under Parallel: 1. fig10 covers the plain measure() grid,
// fig16 the degraded-read grid, and table1 the non-figure path.
func TestParallelRunsAreByteIdentical(t *testing.T) {
	for _, id := range []string{"fig10", "fig16", "table1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := quickOpts()
			serial.Parallel = 1
			par := quickOpts()
			par.Parallel = 8

			want, err := Run(id, serial)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			got, err := Run(id, par)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if got != want {
				t.Errorf("%s differs between Parallel:1 and Parallel:8\nserial:\n%s\nparallel:\n%s", id, want, got)
			}
		})
	}
}

// TestRunAllMatchesRun checks the batch API: input-order reports, identical
// text to figure-at-a-time execution, and up-front ID validation.
func TestRunAllMatchesRun(t *testing.T) {
	o := quickOpts()
	o.Parallel = 4
	ids := []string{"table1", "fig10"}

	reports, err := RunAll(ids, o)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(reports) != len(ids) {
		t.Fatalf("got %d reports, want %d", len(reports), len(ids))
	}
	for i, r := range reports {
		if r.ID != ids[i] {
			t.Fatalf("report %d is %q, want %q (input order)", i, r.ID, ids[i])
		}
		want, err := Run(ids[i], quickOpts())
		if err != nil {
			t.Fatalf("Run(%s): %v", ids[i], err)
		}
		if r.Text != want {
			t.Errorf("RunAll output for %s differs from serial Run", ids[i])
		}
	}

	if _, err := RunAll([]string{"fig10", "no-such-figure"}, o); err == nil {
		t.Fatal("RunAll should reject unknown ids before running anything")
	}
}

// TestParMap checks ordering, bounded concurrency, and the serial fallback.
func TestParMap(t *testing.T) {
	var live, peak atomic.Int32
	out := parMap(3, 64, func(i int) int {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer live.Add(-1)
		return i * i
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent calls, cap is 3", p)
	}

	if got := parMap(1, 3, func(i int) int { return i }); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("serial parMap misordered: %v", got)
	}
	if got := parMap(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("empty parMap returned %v", got)
	}
}
