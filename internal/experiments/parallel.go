package experiments

import (
	"fmt"
	"sync"
	"time"
)

// Parallel execution of experiment grids.
//
// Every measurement point runs against its own freshly built sim.Engine and
// cluster, and no package in the simulation stack keeps mutable global state,
// so points are independent and can run on separate goroutines. Virtual-time
// results depend only on (Setup, Options), never on wall-clock interleaving:
// results are collected into their input-order slots, so output is
// byte-identical to serial execution for any worker count.

// parMap evaluates fn(0..n-1) with at most par concurrent calls and returns
// the results in input order. par ≤ 1 degrades to a plain loop.
func parMap[T any](par, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if par <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{} // bounds live goroutines, not just running ones
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			out[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return out
}

// runGrid evaluates a series × point measurement grid — the shape of every
// figure sweep — flattened into one parMap so a slow series cannot idle the
// workers, then reassembles the series in declaration order.
func runGrid(o Options, names []string, points int, eval func(series, point int) Point) []Series {
	flat := parMap(o.parallel(), len(names)*points, func(i int) Point {
		return eval(i/points, i%points)
	})
	out := make([]Series, len(names))
	for si, name := range names {
		out[si] = Series{System: name, Points: flat[si*points : (si+1)*points : (si+1)*points]}
	}
	return out
}

// systemNames converts a system list to series names.
func systemNames(systems []System) []string {
	out := make([]string, len(systems))
	for i, s := range systems {
		out[i] = string(s)
	}
	return out
}

// Report is one experiment's rendered output.
type Report struct {
	ID      string
	Text    string
	Elapsed time.Duration // wall clock spent generating this report
}

// RunAll executes the given experiment IDs (figure IDs or "table1") and
// returns their printable reports in input order. Unknown IDs are rejected
// up front, before any experiment runs. With o.Parallel > 1 and several IDs,
// whole experiments run concurrently, each internally serial, so at most
// o.Parallel simulations are in flight either way; a single ID keeps its
// inner point-level parallelism. On failure the first error by input order
// is returned.
func RunAll(ids []string, o Options) ([]Report, error) {
	for _, id := range ids {
		if id == "table1" {
			continue
		}
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
		}
	}
	inner := o
	if len(ids) > 1 {
		inner.Parallel = 1
	}
	type result struct {
		report Report
		err    error
	}
	results := parMap(o.parallel(), len(ids), func(i int) result {
		start := time.Now()
		text, err := Run(ids[i], inner)
		return result{Report{ID: ids[i], Text: text, Elapsed: time.Since(start)}, err}
	})
	out := make([]Report, len(ids))
	for i, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out[i] = r.report
	}
	return out, nil
}
