package experiments

import (
	"fmt"
	"sort"
)

// registry maps experiment IDs to runners.
var registry = map[string]func(Options) Figure{
	"fig09":               Fig09,
	"fig10":               Fig10,
	"fig11":               Fig11,
	"fig12":               Fig12,
	"fig13":               Fig13,
	"fig14a":              func(o Options) Figure { return Fig14(o, "wo") },
	"fig14b":              func(o Options) Figure { return Fig14(o, "rw") },
	"fig15":               Fig15,
	"fig16":               Fig16,
	"fig17a":              Fig17a,
	"fig17b":              Fig17b,
	"fig18":               Fig18,
	"fig19a":              func(o Options) Figure { return Fig19(o, "normal") },
	"fig19b":              func(o Options) Figure { return Fig19(o, "degraded") },
	"fig20":               Fig20,
	"fig21":               Fig21,
	"fig22":               Fig22,
	"fig23":               Fig23,
	"fig24":               Fig24,
	"fig25":               Fig25,
	"fig26":               Fig26,
	"fig27a":              func(o Options) Figure { return Fig27(o, "wo") },
	"fig27b":              func(o Options) Figure { return Fig27(o, "rw") },
	"fig28":               Fig28,
	"fig29":               Fig29,
	"fig30":               Fig30,
	"decluster":           Decluster,
	"greyfail":            Greyfail,
	"multivol-noisy":      MultivolNoisy,
	"writeback":           Writeback,
	"ablation-pipeline":   AblationPipeline,
	"ablation-hostparity": AblationHostParity,
	"ablation-barrier":    AblationBarrier,
	"ablation-colocate":   AblationColocate,
	"ablation-reducer":    AblationReducer,
}

// IDs returns all experiment IDs in sorted order ("table1" first).
func IDs() []string {
	out := []string{"table1"}
	var figs []string
	for id := range registry {
		figs = append(figs, id)
	}
	sort.Strings(figs)
	return append(out, figs...)
}

// Run executes one experiment by ID and returns its printable report.
func Run(id string, o Options) (string, error) {
	if id == "table1" {
		return FormatTable1(Table1(o)), nil
	}
	fn, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return fn(o).String(), nil
}

// RunFigure executes one figure by ID (not table1) and returns the data.
func RunFigure(id string, o Options) (Figure, error) {
	fn, ok := registry[id]
	if !ok {
		return Figure{}, fmt.Errorf("experiments: unknown figure %q", id)
	}
	return fn(o), nil
}
