package experiments

import (
	"fmt"

	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/fio"
	"draid/internal/raid"
)

// MultivolNoisy is the noisy-neighbor experiment over the volume layer: two
// dRAID volumes carved out of one cluster — same drives, same host NIC —
// with a streaming sequential-write tenant (the aggressor) ramping up
// against a small-random-write tenant (the victim). The sweep raises the
// aggressor's queue depth from absent to saturating and reports both
// tenants' bandwidth and latency, showing the interference a shared
// substrate admits (the multi-app sharing question of §2/§7).
func MultivolNoisy(o Options) Figure {
	o = o.withDefaults()
	qds := []int{0, 4, 16, 32}
	if o.Quick {
		qds = []int{0, 32}
	}
	victim := Series{System: "victim rnd-wr"}
	aggr := Series{System: "aggressor seq"}
	victimQ := Series{System: "victim (QoS)"}
	aggrQ := Series{System: "aggressor (QoS)"}
	var notes []string
	var isoP99 float64
	for _, qd := range qds {
		vr, ar := noisyPoint(o, qd, false)
		label := fmt.Sprintf("qd=%d", qd)
		vp := toPoint(float64(qd), label, vr)
		vp.Extra = vr.WriteLat.P99 / 1e3 // victim tail is the story here
		victim.Points = append(victim.Points, vp)
		aggr.Points = append(aggr.Points, toPoint(float64(qd), label, ar))
		vq, aq := noisyPoint(o, qd, true)
		vqp := toPoint(float64(qd), label, vq)
		vqp.Extra = vq.WriteLat.P99 / 1e3
		victimQ.Points = append(victimQ.Points, vqp)
		aggrQ.Points = append(aggrQ.Points, toPoint(float64(qd), label, aq))
		if qd == 0 {
			isoP99 = vr.WriteLat.P99
		} else if qd == qds[len(qds)-1] {
			notes = append(notes,
				fmt.Sprintf("victim write p99 @qd=%d: isolated %.0fus, shared %.0fus (%.1fx), QoS %.0fus (%.1fx)",
					qd, isoP99/1e3, vr.WriteLat.P99/1e3, vr.WriteLat.P99/isoP99,
					vq.WriteLat.P99/1e3, vq.WriteLat.P99/isoP99))
		}
	}
	return Figure{
		ID:     "multivol-noisy",
		Title:  "Noisy neighbor: two volumes sharing one cluster (victim 16K random write vs. aggressor full-stripe sequential write)",
		XLabel: "aggr qd",
		Series: []Series{victim, aggr, victimQ, aggrQ},
		Notes: append([]string{
			"both volumes are RAID-5 over the same 8 drives and share the host NIC",
			"victim holds qd=" + fmt.Sprint(o.QueueDepth) + " 16K random writes throughout",
			"QoS series admit both volumes through the shared weighted-fair scheduler (1.5 MiB window) with the aggressor's token bucket provisioned at 200 MB/s",
			"victim series carry write p99 (us) in the per-point Extra column",
		}, notes...),
	}
}

// noisyPoint runs one measurement: the victim's closed loop plus, when
// aggrQD > 0, the aggressor's, concurrently on one shared cluster. With qos
// set, both volumes are admitted through the cluster's weighted-fair
// scheduler: the window bounds the bytes the aggressor can keep in flight,
// so the victim's small writes stop queueing behind full-stripe bursts, and
// the aggressor's token bucket caps its provisioned throughput — the fair
// window alone is work-conserving, which keeps one full-stripe op in the
// device FIFOs at all times and holds the victim's p99 near 1.8× isolated;
// only the rate cap's forced idle gaps recover the isolated tail.
func noisyPoint(o Options, aggrQD int, qos bool) (victim, aggr fio.Result) {
	spec := cluster.DefaultSpec()
	spec.Targets = 8
	spec.Elide = true
	spec.Seed = o.Seed
	cl := cluster.New(spec)
	geo := raid.Geometry{Level: raid.Raid5, Width: 8, ChunkSize: 128 << 10}
	aggrCfg := core.Config{Geometry: geo}
	if qos {
		cl.EnableQoS(3 << 19)
		aggrCfg.QoSRate = 200e6
	}

	half := cl.DriveCapacity() / 2
	vAggr, err := cl.AddVolume("seq-tenant", half, aggrCfg)
	if err != nil {
		panic(err)
	}
	vVictim, err := cl.AddVolume("rand-tenant", 0, core.Config{Geometry: geo})
	if err != nil {
		panic(err)
	}

	victimRun := fio.Start(fio.Job{
		Name: "victim", Dev: vVictim.Host, Eng: cl.Eng,
		IOSize: 16 << 10, QueueDepth: o.QueueDepth,
		Ramp: o.Ramp, Measure: o.Measure, Seed: o.Seed,
	})
	var aggrRun *fio.Running
	if aggrQD > 0 {
		aggrRun = fio.Start(fio.Job{
			Name: "aggressor", Dev: vAggr.Host, Eng: cl.Eng,
			IOSize: geo.StripeDataSize(), QueueDepth: aggrQD, Sequential: true,
			Ramp: o.Ramp, Measure: o.Measure, Seed: o.Seed + 1,
		})
	}
	end := victimRun.End
	if aggrRun != nil && aggrRun.End > end {
		end = aggrRun.End
	}
	cl.Eng.RunUntil(end)
	victim = victimRun.Result()
	if aggrRun != nil {
		aggr = aggrRun.Result()
	} else {
		aggr = fio.Result{Name: "aggressor"}
	}
	return victim, aggr
}
