package experiments

import (
	"fmt"

	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/fio"
	"draid/internal/raid"
)

// MultivolNoisy is the noisy-neighbor experiment over the volume layer: two
// dRAID volumes carved out of one cluster — same drives, same host NIC —
// with a streaming sequential-write tenant (the aggressor) ramping up
// against a small-random-write tenant (the victim). The sweep raises the
// aggressor's queue depth from absent to saturating and reports both
// tenants' bandwidth and latency, showing the interference a shared
// substrate admits (the multi-app sharing question of §2/§7).
func MultivolNoisy(o Options) Figure {
	o = o.withDefaults()
	qds := []int{0, 4, 16, 32}
	if o.Quick {
		qds = []int{0, 32}
	}
	victim := Series{System: "victim rnd-wr"}
	aggr := Series{System: "aggressor seq"}
	for _, qd := range qds {
		vr, ar := noisyPoint(o, qd)
		label := fmt.Sprintf("qd=%d", qd)
		victim.Points = append(victim.Points, toPoint(float64(qd), label, vr))
		aggr.Points = append(aggr.Points, toPoint(float64(qd), label, ar))
	}
	return Figure{
		ID:     "multivol-noisy",
		Title:  "Noisy neighbor: two volumes sharing one cluster (victim 16K random write vs. aggressor full-stripe sequential write)",
		XLabel: "aggr qd",
		Series: []Series{victim, aggr},
		Notes: []string{
			"both volumes are RAID-5 over the same 8 drives and share the host NIC",
			"victim holds qd=" + fmt.Sprint(o.QueueDepth) + " 16K random writes throughout",
		},
	}
}

// noisyPoint runs one measurement: the victim's closed loop plus, when
// aggrQD > 0, the aggressor's, concurrently on one shared cluster.
func noisyPoint(o Options, aggrQD int) (victim, aggr fio.Result) {
	spec := cluster.DefaultSpec()
	spec.Targets = 8
	spec.Elide = true
	spec.Seed = o.Seed
	cl := cluster.New(spec)
	geo := raid.Geometry{Level: raid.Raid5, Width: 8, ChunkSize: 128 << 10}

	half := cl.DriveCapacity() / 2
	vAggr, err := cl.AddVolume("seq-tenant", half, core.Config{Geometry: geo})
	if err != nil {
		panic(err)
	}
	vVictim, err := cl.AddVolume("rand-tenant", 0, core.Config{Geometry: geo})
	if err != nil {
		panic(err)
	}

	victimRun := fio.Start(fio.Job{
		Name: "victim", Dev: vVictim.Host, Eng: cl.Eng,
		IOSize: 16 << 10, QueueDepth: o.QueueDepth,
		Ramp: o.Ramp, Measure: o.Measure, Seed: o.Seed,
	})
	var aggrRun *fio.Running
	if aggrQD > 0 {
		aggrRun = fio.Start(fio.Job{
			Name: "aggressor", Dev: vAggr.Host, Eng: cl.Eng,
			IOSize: geo.StripeDataSize(), QueueDepth: aggrQD, Sequential: true,
			Ramp: o.Ramp, Measure: o.Measure, Seed: o.Seed + 1,
		})
	}
	end := victimRun.End
	if aggrRun != nil && aggrRun.End > end {
		end = aggrRun.End
	}
	cl.Eng.RunUntil(end)
	victim = victimRun.Result()
	if aggrRun != nil {
		aggr = aggrRun.Result()
	} else {
		aggr = fio.Result{Name: "aggressor"}
	}
	return victim, aggr
}
