package experiments

import (
	"fmt"

	"draid"
	"draid/internal/sim"
)

// Decluster is the declustered-placement rebuild experiment: a width-4
// RAID-5 volume holding a constant 64 stripes of data lives on clusters of
// 6, 12, and 18 drives, once with the classic fixed layout (the volume
// welded to a contiguous 4-drive window) and once with seeded parity
// declustering spread over every drive. One drive fails and is rebuilt;
// each point reports the rebuild rate (MB of relocated chunk data per
// second of virtual time) and the rebuild duration. Declustered rebuild is
// many-to-many — the failed drive holds only ~stripes*W/D chunks and the
// reconstruction fans out over all survivors — so its time shrinks as the
// cluster grows, while the fixed layout cannot use drives outside its
// window and stays flat.
func Decluster(o Options) Figure {
	o = o.withDefaults()
	clusters := []int{6, 12, 18}
	if o.Quick {
		clusters = []int{6, 18}
	}
	layouts := []string{"fixed", "declustered"}

	grid := parMap(o.parallel(), len(layouts)*len(clusters), func(idx int) Point {
		declustered := idx >= len(clusters)
		return declusterPoint(o, clusters[idx%len(clusters)], declustered)
	})

	fig := Figure{
		ID:     "decluster",
		Title:  "Declustered placement: rebuild rate vs cluster size (width-4 RAID-5, 64 stripes, one drive failed)",
		XLabel: "cluster drives",
		Notes: []string{
			"BW is relocated chunk MB per second of rebuild; Lat is the rebuild duration in us",
			"declustered rebuild is many-to-many: time shrinks ~1/drives as the cluster grows",
			"fixed volumes are welded to their 4-drive window: extra drives cannot help",
		},
	}
	for li := range layouts {
		s := Series{System: layouts[li]}
		for ci := range clusters {
			s.Points = append(s.Points, grid[li*len(clusters)+ci])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// declusterPoint builds a D-drive pool carrying one width-4 volume (fixed
// window or declustered over all D drives), fills it, fails one drive the
// volume occupies, rebuilds, and measures the rebuild from the member
// drives' write counters: every byte written during the rebuild is a
// relocated or reconstructed chunk.
func declusterPoint(o Options, drives int, declustered bool) Point {
	const width, stripes = 4, 64
	chunk := int64(64 << 10)
	extent := stripes * chunk // fixed: one chunk per member per stripe
	if declustered {
		// Rows pack spr = (D-1)/W stripes each; keep stripes constant so the
		// protected data volume is identical at every cluster size.
		spr := (drives - 1) / width
		extent = int64((stripes+spr-1)/spr) * chunk
	}
	p, err := draid.NewPool(draid.PoolConfig{
		Drives: drives, DriveCapacity: extent, Seed: o.Seed,
	})
	if err != nil {
		panic(err)
	}
	arr, err := p.OpenVolume(draid.VolumeConfig{
		Name: "vol", Drives: width, ChunkSize: chunk, Declustered: declustered,
	})
	if err != nil {
		panic(err)
	}
	if err := arr.WriteSync(0, patternBytes(o.Seed, int(arr.Size()))); err != nil {
		panic(fmt.Sprintf("decluster: fill: %v", err))
	}

	driveWrites := func() int64 {
		var total int64
		for _, d := range p.Cluster().Drives {
			total += d.Stats().WriteBytes
		}
		return total
	}
	const victim = 1 // inside the fixed window and always populated
	before := driveWrites()
	start := arr.Now()
	arr.FailDrive(victim)
	if err := arr.RebuildDrive(victim, 0); err != nil {
		panic(fmt.Sprintf("decluster: rebuild d=%d declustered=%v: %v", drives, declustered, err))
	}
	elapsed := sim.Duration(arr.Now() - start)
	moved := driveWrites() - before

	pt := Point{
		X:     float64(drives),
		Label: fmt.Sprintf("%d", drives),
		Lat:   float64(elapsed) / 1e3, // us
	}
	if secs := sim.Seconds(elapsed); secs > 0 {
		pt.BW = float64(moved) / 1e6 / secs
	}
	return pt
}

// patternBytes is a cheap deterministic fill (the rebuild moves bytes; their
// values only need to exist).
func patternBytes(seed int64, n int) []byte {
	out := make([]byte, n)
	x := uint64(seed)*0x9e3779b97f4a7c15 + 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// RealtimeDecluster is the realtime counterpart: the same constant-data
// rebuild at the sweep's endpoints against the realtime backend, timed on
// the wall clock. The byte accounting (chunks relocated) transfers exactly;
// the durations are hardware-dependent.
func RealtimeDecluster(o Options, ro draid.RealtimeOptions) (Figure, error) {
	o = o.withDefaults()
	const width, stripes = 4, 16
	chunk := int64(16 << 10)
	var fig Figure
	for _, declustered := range []bool{false, true} {
		name := "fixed"
		if declustered {
			name = "declustered"
		}
		s := Series{System: name}
		for _, drives := range []int{6, 18} {
			extent := stripes * chunk
			cfg := draid.Config{
				Backend: draid.BackendRealtime, Realtime: ro,
				Drives: width, ChunkSize: chunk, Seed: o.Seed,
			}
			if declustered {
				spr := (drives - 1) / width
				extent = int64((stripes+spr-1)/spr) * chunk
				cfg.Declustered = true
				cfg.ClusterDrives = drives
			}
			cfg.DriveCapacity = extent
			arr, err := draid.New(cfg)
			if err != nil {
				return Figure{}, err
			}
			if err := arr.WriteSync(0, patternBytes(o.Seed, int(arr.Size()))); err != nil {
				return Figure{}, err
			}
			driveWrites := func() int64 {
				var total int64
				for _, d := range arr.Cluster().Drives {
					total += d.Stats().WriteBytes
				}
				return total
			}
			before := driveWrites()
			start := arr.Now()
			arr.FailDrive(1)
			if err := arr.RebuildDrive(1, 0); err != nil {
				return Figure{}, err
			}
			elapsed := sim.Duration(arr.Now() - start)
			moved := driveWrites() - before
			arr.Close()
			pt := Point{X: float64(drives), Label: fmt.Sprintf("%d", drives),
				Lat: float64(elapsed) / 1e3}
			if secs := sim.Seconds(elapsed); secs > 0 {
				pt.BW = float64(moved) / 1e6 / secs
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	fig.ID = "decluster"
	fig.Title = "Declustered placement: rebuild vs cluster size (width-4 RAID-5, realtime backend)"
	fig.XLabel = "cluster drives"
	fig.Notes = []string{"BW is relocated chunk MB per wall-clock second of rebuild; Lat is the rebuild duration in us"}
	return fig, nil
}
