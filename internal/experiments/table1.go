package experiments

import (
	"errors"
	"fmt"
	"strings"

	"draid/internal/baseline"
	"draid/internal/blockdev"
	"draid/internal/cluster"
	"draid/internal/cpu"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
	"draid/internal/simnet"
	"draid/internal/ssd"
)

// Table1Row is one architecture's measured and qualitative properties.
type Table1Row struct {
	Architecture   string
	FaultTolerance string
	HotSpare       string
	Scaling        string
	WriteOverhead  float64 // client/host outbound bytes per user byte written
	DReadOverhead  float64 // client/host inbound bytes per user byte on degraded read
}

// Table1 reproduces the paper's Table 1: the network overheads are measured
// on the simulated fabric (single-chunk writes and degraded reads of one
// chunk); the qualitative rows are architectural facts.
func Table1(o Options) []Table1Row {
	o = o.withDefaults()
	const chunk = 512 << 10
	geo := raid.Geometry{Level: raid.Raid5, Width: 8, ChunkSize: chunk}

	rows := []Table1Row{
		{
			Architecture: "Single-Machine", FaultTolerance: "Disk",
			HotSpare: "Dedicated", Scaling: "Pre-provisioning",
		},
		{
			Architecture: "Distributed", FaultTolerance: "Disk & Server",
			HotSpare: "Storage pool", Scaling: "On demand",
		},
		{
			Architecture: "dRAID", FaultTolerance: "Disk & Server",
			HotSpare: "Storage pool", Scaling: "On demand",
		},
	}

	// The three architectures are independent simulations; measure them with
	// the same bounded fan-out as figure grids.
	measurers := []func() (float64, float64){
		func() (float64, float64) { // single-machine
			eng := sim.NewEngine(o.Seed)
			net := simnet.New(eng, simnet.DefaultConfig())
			drv := ssd.DefaultSpec()
			drv.Capacity = 256 << 20
			sm := baseline.NewSingleMachine(eng, net, geo, drv, cpu.DefaultCosts(), 100)
			return measureOverheads(eng, sm, chunk, func(m int) { sm.SetFailed(m, true) },
				func() (int64, int64) { return sm.Client().BytesOut(), sm.Client().BytesIn() },
				func() { sm.Client().ResetCounters() }, geo)
		},
		func() (float64, float64) { // distributed host-centric (SPDK-style)
			dev, cl := buildSmall(SPDK, geo, o.Seed)
			return measureOverheads(cl.Eng, dev, chunk, func(m int) {
				dev.(*baseline.Host).SetFailed(m, true)
			}, func() (int64, int64) { return cl.HostNode.BytesOut(), cl.HostNode.BytesIn() },
				cl.ResetTraffic, geo)
		},
		func() (float64, float64) { // dRAID
			dev, cl := buildSmall(DRAID, geo, o.Seed)
			return measureOverheads(cl.Eng, dev, chunk, func(m int) {
				type failer interface{ SetFailed(int, bool) }
				dev.(failer).SetFailed(m, true)
				cl.FailTarget(m)
			}, func() (int64, int64) { return cl.HostNode.BytesOut(), cl.HostNode.BytesIn() },
				cl.ResetTraffic, geo)
		},
	}
	type overheads struct{ w, r float64 }
	measured := parMap(o.parallel(), len(measurers), func(i int) overheads {
		w, r := measurers[i]()
		return overheads{w, r}
	})
	for i, m := range measured {
		rows[i].WriteOverhead, rows[i].DReadOverhead = m.w, m.r
	}
	return rows
}

func buildSmall(sys System, geo raid.Geometry, seed int64) (blockdev.Device, *cluster.Cluster) {
	return Build(Setup{System: sys, Targets: geo.Width, Level: geo.Level, ChunkSize: geo.ChunkSize, Seed: seed})
}

// measureOverheads performs one single-chunk RMW write and one degraded
// single-chunk read and reports client-side traffic per user byte.
func measureOverheads(eng *sim.Engine, dev blockdev.Device, chunk int64,
	fail func(member int), traffic func() (out, in int64), reset func(), geo raid.Geometry) (wOver, rOver float64) {

	// Seed the stripe so RMW has old content, then measure one write.
	werr := errors.New("pending")
	dev.Write(0, parity.Sized(int(chunk)), func(e error) { werr = e })
	eng.Run()
	reset()
	dev.Write(0, parity.Sized(int(chunk)), func(e error) { werr = e })
	eng.Run()
	if werr != nil {
		panic(fmt.Sprintf("experiments: table1 write failed: %v", werr))
	}
	out, _ := traffic()
	wOver = float64(out) / float64(chunk)

	// Fail the member holding chunk 0 of stripe 0 and read it back.
	fail(geo.DataDrive(0, 0))
	reset()
	rerr := errors.New("pending")
	dev.Read(0, chunk, func(_ parity.Buffer, e error) { rerr = e })
	eng.Run()
	if rerr != nil {
		panic(fmt.Sprintf("experiments: table1 degraded read failed: %v", rerr))
	}
	_, in := traffic()
	rOver = float64(in) / float64(chunk)
	return wOver, rOver
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 1: Comparison of 3 remote RAID architectures ==\n")
	fmt.Fprintf(&b, "%-16s %-15s %-14s %-18s %-14s %-14s\n",
		"", "Fault tolerance", "Hot spare", "Scaling", "Write overhead", "D-Read overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-15s %-14s %-18s %13.2fx %13.2fx\n",
			r.Architecture, r.FaultTolerance, r.HotSpare, r.Scaling, r.WriteOverhead, r.DReadOverhead)
	}
	return b.String()
}
