package experiments

import (
	"fmt"

	"draid/internal/blobfs"
	"draid/internal/hist"
	"draid/internal/kvstore"
	"draid/internal/objstore"
	"draid/internal/parity"
	"draid/internal/sim"
	"draid/internal/ycsb"
)

// AppResult is one application benchmark measurement.
type AppResult struct {
	System   string
	Workload string
	KIOPS    float64
	AvgLatUs float64
}

// appWorkloads are the paper's §9.6 selection (A, B, C, D, F).
var appWorkloads = []ycsb.Workload{
	ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadF,
}

// ycsbLoop drives a closed-loop YCSB run against get/put closures and
// returns KIOPS plus mean latency over the measurement window.
func ycsbLoop(eng *sim.Engine, gen *ycsb.Generator, o Options, qd int,
	get func(key uint64, cb func(error)),
	put func(key uint64, cb func(error)),
	scan func(key uint64, n int, cb func(error))) (float64, float64) {

	start := eng.Now()
	measureStart := start + sim.Time(o.Ramp)
	end := measureStart + sim.Time(o.Measure)
	ops := int64(0)
	lat := hist.New()

	var issue func()
	issue = func() {
		if eng.Now() >= end {
			return
		}
		op := gen.Next()
		issued := eng.Now()
		record := func(err error) {
			now := eng.Now()
			if err == nil && now > measureStart && now <= end {
				ops++
				lat.Record(int64(now - issued))
			}
			issue()
		}
		switch op.Kind {
		case ycsb.OpScan:
			if scan != nil {
				scan(op.Key, op.ScanLen, record)
			} else {
				get(op.Key, record)
			}
		case ycsb.OpRead:
			get(op.Key, record)
		case ycsb.OpUpdate, ycsb.OpInsert:
			put(op.Key, record)
		case ycsb.OpReadModifyWrite:
			get(op.Key, func(err error) {
				if err != nil {
					record(err)
					return
				}
				put(op.Key, record)
			})
		}
	}
	for i := 0; i < qd; i++ {
		issue()
	}
	eng.RunUntil(end)
	kiops := float64(ops) / sim.Seconds(o.Measure) / 1e3
	return kiops, lat.Summarize().Mean / 1e3
}

// YCSBObjectStore reproduces the §9.6 object-store runs: 128 KB objects in
// a hash store directly on the block layer, uniform key distribution.
func YCSBObjectStore(sys System, wl ycsb.Workload, failed []int, o Options) AppResult {
	o = o.withDefaults()
	const objSize = 128 << 10
	const objects = 20000 // scaled from the paper's 200K to keep load fast

	// Load in a healthy array, then fail members (matching the paper:
	// degrade after load).
	dev, cl := Build(Setup{System: sys, Targets: 8, Seed: o.Seed})
	store := objstore.New(cl.Eng, dev, objSize)
	loadStore(cl.Eng, store, objects)
	for _, m := range failed {
		cl.FailTarget(m)
		type failer interface{ SetFailed(int, bool) }
		dev.(failer).SetFailed(m, true)
	}

	gen := ycsb.NewGenerator(wl.Uniform(), objects, o.Seed)
	kiops, lat := ycsbLoop(cl.Eng, gen, o, 16,
		func(key uint64, cb func(error)) {
			store.Get(key, func(_ parity.Buffer, err error) { cb(err) })
		},
		func(key uint64, cb func(error)) {
			store.Put(key, parity.Sized(objSize), cb)
		},
		nil)
	return AppResult{System: string(sys), Workload: wl.Name, KIOPS: kiops, AvgLatUs: lat}
}

func loadStore(eng *sim.Engine, store *objstore.Store, objects uint64) {
	pending := uint64(0)
	for k := uint64(0); k < objects; k++ {
		pending++
		store.Put(k, parity.Sized(int(store.ObjectSize())), func(err error) {
			if err != nil {
				panic("experiments: object load failed: " + err.Error())
			}
			pending--
		})
		if pending >= 64 {
			eng.Run()
		}
	}
	eng.Run()
}

// YCSBKVStore reproduces the §9.6 RocksDB runs with the LSM stand-in on
// BlobFS: 1 KB records, zipfian/latest distributions as each workload
// specifies.
func YCSBKVStore(sys System, wl ycsb.Workload, failed []int, o Options) AppResult {
	o = o.withDefaults()
	const records = 50000

	dev, cl := Build(Setup{System: sys, Targets: 8, Seed: o.Seed})
	fs := blobfs.New(cl.Eng, dev)
	db, err := kvstore.Open(cl.Eng, fs, kvstore.Config{})
	if err != nil {
		panic(err)
	}
	loadKV(cl.Eng, db, records)
	for _, m := range failed {
		cl.FailTarget(m)
		type failer interface{ SetFailed(int, bool) }
		dev.(failer).SetFailed(m, true)
	}

	gen := ycsb.NewGenerator(wl, records, o.Seed)
	kiops, lat := ycsbLoop(cl.Eng, gen, o, 16,
		func(key uint64, cb func(error)) {
			db.Get(key, func(_ parity.Buffer, err error) {
				if err == kvstore.ErrNotFound {
					err = nil // unloaded insert-range key; count the probe
				}
				cb(err)
			})
		},
		func(key uint64, cb func(error)) {
			db.Put(key, parity.Sized(1000), cb)
		},
		func(key uint64, n int, cb func(error)) {
			db.Scan(key, n, func(_ int, err error) { cb(err) })
		})
	return AppResult{System: string(sys), Workload: wl.Name, KIOPS: kiops, AvgLatUs: lat}
}

func loadKV(eng *sim.Engine, db *kvstore.DB, records uint64) {
	pending := uint64(0)
	for k := uint64(0); k < records; k++ {
		pending++
		db.Put(k, parity.Sized(1000), func(err error) {
			if err != nil {
				panic("experiments: kv load failed: " + err.Error())
			}
			pending--
		})
		if pending >= 256 {
			eng.Run()
		}
	}
	db.Flush()
	eng.Run()
}

// appFigure runs a workload sweep for SPDK and dRAID (the paper's §9.6
// comparison pair).
func appFigure(id, title string, o Options, failed []int, run func(System, ycsb.Workload, []int, Options) AppResult) Figure {
	o = o.withDefaults()
	wls := appWorkloads
	if o.Quick {
		wls = []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC}
	}
	systems := []System{SPDK, DRAID}
	series := runGrid(o, systemNames(systems), len(wls), func(si, pi int) Point {
		wl := wls[pi]
		r := run(systems[si], wl, failed, o)
		return Point{
			X: float64(pi), Label: wl.Name,
			BW: r.KIOPS, Lat: r.AvgLatUs, Extra: r.KIOPS,
		}
	})
	return Figure{
		ID: id, Title: title, XLabel: "workload", Series: series,
		Notes: []string{"BW column is KIOPS for application figures"},
	}
}

// Fig19 — LSM KV store (RocksDB stand-in) on BlobFS, YCSB A-F.
// variant: "normal" (Fig 19a) or "degraded" (Fig 19b).
func Fig19(o Options, variant string) Figure {
	var failed []int
	if variant == "degraded" {
		failed = []int{0}
	}
	return appFigure("fig19"+suffix(variant),
		fmt.Sprintf("KV store (LSM on BlobFS) YCSB throughput, %s state", variant),
		o, failed, YCSBKVStore)
}

// Fig20 — object store on the block layer, normal state.
func Fig20(o Options) Figure {
	return appFigure("fig20", "Object store YCSB throughput, normal state", o, nil, YCSBObjectStore)
}

// Fig21 — object store, degraded state.
func Fig21(o Options) Figure {
	return appFigure("fig21", "Object store YCSB throughput, degraded state", o, []int{0}, YCSBObjectStore)
}

func suffix(variant string) string {
	if variant == "degraded" {
		return "b"
	}
	return "a"
}
