package raid

import (
	"testing"
	"testing/quick"
)

func geo5() Geometry { return Geometry{Level: Raid5, Width: 8, ChunkSize: 512 << 10} }
func geo6() Geometry { return Geometry{Level: Raid6, Width: 8, ChunkSize: 512 << 10} }

func TestValidate(t *testing.T) {
	if err := geo5().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Geometry{Level: Raid5, Width: 2, ChunkSize: 4096}).Validate(); err == nil {
		t.Fatal("width 2 RAID-5 should be invalid")
	}
	if err := (Geometry{Level: Raid6, Width: 3, ChunkSize: 4096}).Validate(); err == nil {
		t.Fatal("width 3 RAID-6 should be invalid")
	}
	if err := (Geometry{Level: Raid5, Width: 4, ChunkSize: 0}).Validate(); err == nil {
		t.Fatal("zero chunk size should be invalid")
	}
}

func TestCounts(t *testing.T) {
	if geo5().DataChunks() != 7 || geo6().DataChunks() != 6 {
		t.Fatal("data chunk counts wrong")
	}
	if geo5().StripeDataSize() != 7*512<<10 {
		t.Fatal("stripe data size wrong")
	}
	if Raid5.ParityCount() != 1 || Raid6.ParityCount() != 2 {
		t.Fatal("parity counts wrong")
	}
}

func TestParityRotates(t *testing.T) {
	g := geo5()
	seen := make(map[int]int)
	for s := int64(0); s < 16; s++ {
		seen[g.PDrive(s)]++
	}
	for d := 0; d < 8; d++ {
		if seen[d] != 2 {
			t.Fatalf("parity visits drive %d %d times over 16 stripes, want 2", d, seen[d])
		}
	}
}

func TestQFollowsP(t *testing.T) {
	g := geo6()
	for s := int64(0); s < 20; s++ {
		p, q := g.PDrive(s), g.QDrive(s)
		if q != (p+1)%8 {
			t.Fatalf("stripe %d: q=%d not adjacent to p=%d", s, q, p)
		}
	}
}

func TestQDriveOnRaid5Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	geo5().QDrive(0)
}

func TestDataDriveAvoidsParityAndCoversAll(t *testing.T) {
	for _, g := range []Geometry{geo5(), geo6()} {
		for s := int64(0); s < 10; s++ {
			used := map[int]bool{g.PDrive(s): true}
			if g.Level == Raid6 {
				used[g.QDrive(s)] = true
			}
			for c := 0; c < g.DataChunks(); c++ {
				d := g.DataDrive(s, c)
				if used[d] {
					t.Fatalf("%v stripe %d chunk %d collides on drive %d", g.Level, s, c, d)
				}
				used[d] = true
			}
			if len(used) != g.Width {
				t.Fatalf("stripe %d does not cover all drives", s)
			}
		}
	}
}

func TestRoleInvertsPlacement(t *testing.T) {
	for _, g := range []Geometry{geo5(), geo6()} {
		for s := int64(0); s < 10; s++ {
			if k, _ := g.Role(s, g.PDrive(s)); k != KindP {
				t.Fatalf("Role of P drive = %v", k)
			}
			if g.Level == Raid6 {
				if k, _ := g.Role(s, g.QDrive(s)); k != KindQ {
					t.Fatalf("Role of Q drive = %v", k)
				}
			}
			for c := 0; c < g.DataChunks(); c++ {
				k, idx := g.Role(s, g.DataDrive(s, c))
				if k != KindData || idx != c {
					t.Fatalf("Role(stripe %d, DataDrive(%d)) = %v,%d", s, c, k, idx)
				}
			}
		}
	}
}

func TestDataChunkOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	geo5().DataDrive(0, 7)
}

func TestSplitSingleChunk(t *testing.T) {
	g := geo5()
	exts := g.Split(0, 1000)
	if len(exts) != 1 {
		t.Fatalf("%d extents, want 1", len(exts))
	}
	e := exts[0]
	if e.Stripe != 0 || e.Chunk != 0 || e.Off != 0 || e.Len != 1000 || e.VOff != 0 {
		t.Fatalf("extent = %+v", e)
	}
}

func TestSplitCrossesChunkAndStripe(t *testing.T) {
	g := Geometry{Level: Raid5, Width: 4, ChunkSize: 100} // k=3, stripe=300
	exts := g.Split(250, 200)                             // covers [250,450): chunks s0c2(50), s1c0(100), s1c1(50)
	want := []Extent{
		{Stripe: 0, Chunk: 2, Off: 50, Len: 50, VOff: 0},
		{Stripe: 1, Chunk: 0, Off: 0, Len: 100, VOff: 50},
		{Stripe: 1, Chunk: 1, Off: 0, Len: 50, VOff: 150},
	}
	if len(exts) != len(want) {
		t.Fatalf("exts = %+v", exts)
	}
	for i := range want {
		if exts[i] != want[i] {
			t.Fatalf("ext[%d] = %+v, want %+v", i, exts[i], want[i])
		}
	}
}

func TestSplitZeroLength(t *testing.T) {
	if exts := geo5().Split(100, 0); len(exts) != 0 {
		t.Fatalf("zero-length split produced %v", exts)
	}
}

// Property: Split covers the requested range exactly, in order, with no
// overlap, and each extent stays within one chunk.
func TestPropertySplitPartitionsRange(t *testing.T) {
	g := Geometry{Level: Raid6, Width: 6, ChunkSize: 64}
	f := func(offRaw, lenRaw uint16) bool {
		off, length := int64(offRaw), int64(lenRaw)
		exts := g.Split(off, length)
		var total int64
		nextV := int64(0)
		for _, e := range exts {
			if e.VOff != nextV {
				return false
			}
			if e.Off < 0 || e.Off+e.Len > g.ChunkSize || e.Len <= 0 {
				return false
			}
			if e.Chunk < 0 || e.Chunk >= g.DataChunks() {
				return false
			}
			// Extent's virtual position must equal its geometric position.
			vpos := e.Stripe*g.StripeDataSize() + int64(e.Chunk)*g.ChunkSize + e.Off
			if vpos != off+e.VOff {
				return false
			}
			nextV += e.Len
			total += e.Len
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeExtentsGroups(t *testing.T) {
	g := Geometry{Level: Raid5, Width: 4, ChunkSize: 100}
	m := StripeExtents(g.Split(250, 200))
	if len(m) != 2 || len(m[0]) != 1 || len(m[1]) != 2 {
		t.Fatalf("groups = %v", m)
	}
}

// The paper's mode boundaries for k=7, 512 KB chunks (§9.3): RMW strictly
// below 1536 KB; reconstruct write in [1536 KB, 3584 KB); full at 3584 KB.
func TestWriteModeBoundariesMatchPaper(t *testing.T) {
	g := geo5()
	cases := []struct {
		size int64
		want WriteMode
	}{
		{4 << 10, ModeRMW},
		{128 << 10, ModeRMW},
		{1024 << 10, ModeRMW},
		{1535 << 10, ModeRMW},
		{1536 << 10, ModeRCW},
		{2048 << 10, ModeRCW},
		{3583 << 10, ModeRCW},
		{3584 << 10, ModeFull},
	}
	for _, tc := range cases {
		exts := g.Split(0, tc.size)
		if got := g.DecideWriteMode(exts); got != tc.want {
			t.Errorf("size %dKB: mode = %v, want %v", tc.size>>10, got, tc.want)
		}
	}
}

// RAID-6 stripe is 6·512 KB = 3072 KB; RMW needs w+2 ≤ reads of RCW.
func TestWriteModeBoundariesRaid6(t *testing.T) {
	g := geo6()
	if got := g.DecideWriteMode(g.Split(0, 512<<10)); got != ModeRMW {
		t.Fatalf("RAID-6 1-chunk write = %v, want RMW", got)
	}
	// w=2: rmw reads 4, rcw reads 4 ⇒ RCW on tie.
	if got := g.DecideWriteMode(g.Split(0, 1024<<10)); got != ModeRCW {
		t.Fatalf("RAID-6 2-chunk write = %v, want RCW", got)
	}
	if got := g.DecideWriteMode(g.Split(0, 3072<<10)); got != ModeFull {
		t.Fatalf("RAID-6 full-stripe write = %v, want Full", got)
	}
}

func TestWriteModeUnalignedPartialCoverage(t *testing.T) {
	g := Geometry{Level: Raid5, Width: 4, ChunkSize: 100} // k=3
	// Touch all 3 chunks but not fully: cannot be full-stripe.
	exts := g.Split(50, 200)
	if got := g.DecideWriteMode(exts); got == ModeFull {
		t.Fatal("partial coverage must not be full-stripe")
	}
}

func TestWriteModeCrossStripePanics(t *testing.T) {
	g := Geometry{Level: Raid5, Width: 4, ChunkSize: 100}
	exts := g.Split(250, 200) // spans stripes 0 and 1
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g.DecideWriteMode(exts)
}

func TestVirtualSize(t *testing.T) {
	g := Geometry{Level: Raid5, Width: 4, ChunkSize: 100}
	// 1000-byte drives: 10 stripes × 300 data bytes.
	if got := g.VirtualSize(1000); got != 3000 {
		t.Fatalf("virtual size = %d, want 3000", got)
	}
}

func TestDriveOffset(t *testing.T) {
	g := geo5()
	if g.DriveOffset(3) != 3*512<<10 {
		t.Fatal("drive offset wrong")
	}
}

func TestModeAndLevelStrings(t *testing.T) {
	if Raid5.String() != "RAID-5" || Raid6.String() != "RAID-6" {
		t.Fatal("level strings wrong")
	}
	for _, m := range []WriteMode{ModeRMW, ModeRCW, ModeFull, WriteMode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}
