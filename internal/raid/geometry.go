// Package raid implements parity-RAID stripe geometry: rotating layouts for
// RAID-5 (left-symmetric, the Linux MD default) and RAID-6 (P followed by
// Q), request-to-stripe splitting, and the write-mode decision
// (read-modify-write vs reconstruct-write vs full-stripe write).
//
// Terminology follows the paper: an array of Width drives stores, per
// stripe, k = Width-ParityCount data chunks plus one parity chunk P (and Q
// for RAID-6), each ChunkSize bytes. Chunk placement rotates per stripe so
// parity I/O spreads evenly across drives.
package raid

import (
	"fmt"
	"sort"
)

// Level selects the RAID level.
type Level int

// Supported parity-RAID levels.
const (
	Raid5 Level = 5
	Raid6 Level = 6
)

// String returns "RAID-5" or "RAID-6".
func (l Level) String() string { return fmt.Sprintf("RAID-%d", int(l)) }

// ParityCount returns the number of parity chunks per stripe.
func (l Level) ParityCount() int {
	switch l {
	case Raid5:
		return 1
	case Raid6:
		return 2
	}
	panic(fmt.Sprintf("raid: unsupported level %d", int(l)))
}

// Geometry fixes an array's shape.
type Geometry struct {
	Level     Level
	Width     int   // total member drives (data + parity)
	ChunkSize int64 // bytes per chunk
}

// Validate checks the geometry and returns a descriptive error.
func (g Geometry) Validate() error {
	pc := g.Level.ParityCount()
	if g.Width < pc+2 {
		return fmt.Errorf("raid: width %d too small for %v (need ≥ %d)", g.Width, g.Level, pc+2)
	}
	if g.ChunkSize <= 0 {
		return fmt.Errorf("raid: chunk size %d must be positive", g.ChunkSize)
	}
	return nil
}

// DataChunks returns k, the data chunks per stripe.
func (g Geometry) DataChunks() int { return g.Width - g.Level.ParityCount() }

// StripeDataSize returns k·ChunkSize, the user bytes per stripe.
func (g Geometry) StripeDataSize() int64 { return int64(g.DataChunks()) * g.ChunkSize }

// PDrive returns the member-drive index holding stripe's P chunk. Parity
// rotates right-to-left per stripe (left-symmetric).
func (g Geometry) PDrive(stripe int64) int {
	return (g.Width - 1) - int(stripe%int64(g.Width))
}

// QDrive returns the drive holding stripe's Q chunk (RAID-6 only).
func (g Geometry) QDrive(stripe int64) int {
	if g.Level != Raid6 {
		panic("raid: QDrive on " + g.Level.String())
	}
	return (g.PDrive(stripe) + 1) % g.Width
}

// DataDrive returns the drive holding data chunk `chunk` (0..k-1) of stripe.
// Data chunks follow the parity chunk(s) and wrap (left-symmetric).
func (g Geometry) DataDrive(stripe int64, chunk int) int {
	if chunk < 0 || chunk >= g.DataChunks() {
		panic(fmt.Sprintf("raid: data chunk %d out of range [0,%d)", chunk, g.DataChunks()))
	}
	return (g.PDrive(stripe) + g.Level.ParityCount() + chunk) % g.Width
}

// ChunkKind classifies a drive's role within one stripe.
type ChunkKind int

// Roles of a member drive within a stripe.
const (
	KindData ChunkKind = iota
	KindP
	KindQ
)

// Role returns drive's role in stripe and, for data, the data-chunk index.
func (g Geometry) Role(stripe int64, drive int) (ChunkKind, int) {
	if drive < 0 || drive >= g.Width {
		panic(fmt.Sprintf("raid: drive %d out of range [0,%d)", drive, g.Width))
	}
	p := g.PDrive(stripe)
	if drive == p {
		return KindP, -1
	}
	if g.Level == Raid6 && drive == (p+1)%g.Width {
		return KindQ, -1
	}
	idx := (drive - p - g.Level.ParityCount() + 2*g.Width) % g.Width
	return KindData, idx
}

// DriveOffset returns the byte offset within each member drive at which
// stripe's chunks live.
func (g Geometry) DriveOffset(stripe int64) int64 { return stripe * g.ChunkSize }

// VirtualSize returns the virtual device size for a given per-drive capacity.
func (g Geometry) VirtualSize(driveCapacity int64) int64 {
	stripes := driveCapacity / g.ChunkSize
	return stripes * g.StripeDataSize()
}

// Extent is the intersection of a user request with one data chunk.
type Extent struct {
	Stripe int64 // stripe number
	Chunk  int   // data-chunk index within the stripe (0..k-1)
	Off    int64 // offset within the chunk
	Len    int64 // bytes
	VOff   int64 // offset within the user's virtual request space
}

// Split decomposes the virtual-device range [off, off+length) into per-chunk
// extents, ordered by virtual offset.
func (g Geometry) Split(off, length int64) []Extent {
	if off < 0 || length < 0 {
		panic(fmt.Sprintf("raid: negative range (%d,%d)", off, length))
	}
	var out []Extent
	sds := g.StripeDataSize()
	pos := off
	end := off + length
	for pos < end {
		stripe := pos / sds
		inStripe := pos % sds
		chunk := int(inStripe / g.ChunkSize)
		chunkOff := inStripe % g.ChunkSize
		n := g.ChunkSize - chunkOff
		if n > end-pos {
			n = end - pos
		}
		out = append(out, Extent{
			Stripe: stripe, Chunk: chunk, Off: chunkOff, Len: n, VOff: pos - off,
		})
		pos += n
	}
	return out
}

// StripeExtents groups extents by stripe, preserving order.
func StripeExtents(exts []Extent) map[int64][]Extent {
	m := make(map[int64][]Extent)
	for _, e := range exts {
		m[e.Stripe] = append(m[e.Stripe], e)
	}
	return m
}

// StripeOrder returns the grouped stripes in ascending order. Issuing stripe
// operations in map-iteration order would leak runtime randomness into NIC
// FIFO reservations and trace span order, breaking same-seed determinism.
func StripeOrder(byStripe map[int64][]Extent) []int64 {
	stripes := make([]int64, 0, len(byStripe))
	for s := range byStripe {
		stripes = append(stripes, s)
	}
	sort.Slice(stripes, func(i, j int) bool { return stripes[i] < stripes[j] })
	return stripes
}

// WriteMode selects how a partial-or-full stripe write is executed.
type WriteMode int

// Write modes, in increasing stripe coverage.
const (
	// ModeRMW reads the old contents of the written chunks and parity, and
	// applies the delta (Figure 2 of the paper).
	ModeRMW WriteMode = iota
	// ModeRCW (reconstruct write) reads the chunks NOT being written and
	// recomputes parity from the full stripe.
	ModeRCW
	// ModeFull writes every data chunk; parity is computed from the new
	// data with no reads at all.
	ModeFull
)

// String names the mode.
func (m WriteMode) String() string {
	switch m {
	case ModeRMW:
		return "read-modify-write"
	case ModeRCW:
		return "reconstruct-write"
	case ModeFull:
		return "full-stripe-write"
	}
	return fmt.Sprintf("WriteMode(%d)", int(m))
}

// DecideWriteMode picks the cheapest mode for a write touching the given
// extents of ONE stripe, minimizing pre-reads: RMW pre-reads each written
// chunk plus each parity chunk; RCW pre-reads each untouched chunk (plus
// nothing for partially covered chunks beyond their untouched remainder,
// which rides along in the same drive I/O). Ties go to RCW, which matches
// the paper's reported mode boundaries (k=7: RMW strictly below 1536 KB).
func (g Geometry) DecideWriteMode(exts []Extent) WriteMode {
	if len(exts) == 0 {
		panic("raid: DecideWriteMode of no extents")
	}
	stripe := exts[0].Stripe
	touched := make(map[int]bool)
	covered := int64(0)
	for _, e := range exts {
		if e.Stripe != stripe {
			panic("raid: DecideWriteMode across stripes")
		}
		touched[e.Chunk] = true
		covered += e.Len
	}
	k := g.DataChunks()
	if covered == g.StripeDataSize() {
		return ModeFull
	}
	w := len(touched)
	rmwReads := w + g.Level.ParityCount()
	rcwReads := k - fullyCoveredChunks(g, exts)
	if rmwReads < rcwReads {
		return ModeRMW
	}
	return ModeRCW
}

func fullyCoveredChunks(g Geometry, exts []Extent) int {
	perChunk := make(map[int]int64)
	for _, e := range exts {
		perChunk[e.Chunk] += e.Len
	}
	full := 0
	for _, n := range perChunk {
		if n == g.ChunkSize {
			full++
		}
	}
	return full
}
