package parity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"draid/internal/gf256"
)

func randBuf(rng *rand.Rand, n int) Buffer {
	b := make([]byte, n)
	rng.Read(b)
	return FromBytes(b)
}

func TestBufferBasics(t *testing.T) {
	b := FromBytes([]byte{1, 2, 3})
	if b.Len() != 3 || b.Elided() {
		t.Fatal("FromBytes broken")
	}
	e := Sized(10)
	if e.Len() != 10 || !e.Elided() || e.Data() != nil {
		t.Fatal("Sized broken")
	}
	z := Alloc(4)
	if z.Len() != 4 || z.Elided() {
		t.Fatal("Alloc broken")
	}
	for _, v := range z.Data() {
		if v != 0 {
			t.Fatal("Alloc not zeroed")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	b := FromBytes([]byte{1, 2, 3})
	c := b.Clone()
	c.Data()[0] = 99
	if b.Data()[0] != 1 {
		t.Fatal("Clone aliases original")
	}
	e := Sized(5).Clone()
	if !e.Elided() || e.Len() != 5 {
		t.Fatal("Clone of elided buffer broken")
	}
}

func TestSlice(t *testing.T) {
	b := FromBytes([]byte{0, 1, 2, 3, 4})
	s := b.Slice(1, 3)
	if s.Len() != 3 || s.Data()[0] != 1 || s.Data()[2] != 3 {
		t.Fatalf("slice = %v", s.Data())
	}
	// Aliased: writing through the slice is visible in the parent.
	s.Data()[0] = 77
	if b.Data()[1] != 77 {
		t.Fatal("Slice should alias")
	}
	es := Sized(5).Slice(2, 2)
	if !es.Elided() || es.Len() != 2 {
		t.Fatal("Slice of elided buffer broken")
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromBytes([]byte{1, 2}).Slice(1, 5)
}

func TestCopyAt(t *testing.T) {
	dst := Alloc(6)
	dst.CopyAt(2, FromBytes([]byte{9, 8}))
	want := []byte{0, 0, 9, 8, 0, 0}
	for i, v := range want {
		if dst.Data()[i] != v {
			t.Fatalf("dst = %v, want %v", dst.Data(), want)
		}
	}
	// Elided src must not panic and must leave dst usable.
	dst.CopyAt(0, Sized(3))
	if dst.Len() != 6 {
		t.Fatal("CopyAt with elided src corrupted dst")
	}
}

func TestCopyAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Alloc(2).CopyAt(1, FromBytes([]byte{1, 2}))
}

func TestEqual(t *testing.T) {
	a := FromBytes([]byte{1, 2})
	b := FromBytes([]byte{1, 2})
	c := FromBytes([]byte{1, 3})
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal on materialized buffers broken")
	}
	if a.Equal(FromBytes([]byte{1})) {
		t.Fatal("Equal ignores size")
	}
	if !Sized(2).Equal(Sized(2)) {
		t.Fatal("two elided buffers of same size should be equal")
	}
	if a.Equal(Sized(2)) {
		t.Fatal("materialized != elided")
	}
}

func TestXORIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randBuf(rng, 64)
	b := randBuf(rng, 64)
	aCopy := a.Clone()
	got := XORInto(a, b)
	for i := 0; i < 64; i++ {
		if got.Data()[i] != aCopy.Data()[i]^b.Data()[i] {
			t.Fatal("XORInto mismatch")
		}
	}
}

func TestXORIntoElidedPropagates(t *testing.T) {
	got := XORInto(Alloc(8), Sized(8))
	if !got.Elided() || got.Len() != 8 {
		t.Fatal("xor with elided operand should be elided")
	}
	got = XORInto(Sized(8), Alloc(8))
	if !got.Elided() {
		t.Fatal("xor into elided dst should be elided")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"XORInto":    func() { XORInto(Alloc(2), Alloc(3)) },
		"MulAddInto": func() { MulAddInto(Alloc(2), Alloc(3), 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestComputePMatchesGF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	chunks := []Buffer{randBuf(rng, 32), randBuf(rng, 32), randBuf(rng, 32)}
	p := ComputeP(chunks)
	want := make([]byte, 32)
	for _, c := range chunks {
		gf256.XORSlice(want, c.Data())
	}
	if !p.Equal(FromBytes(want)) {
		t.Fatal("ComputeP mismatch")
	}
}

func TestComputeQMatchesSyndrome(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	raw := [][]byte{make([]byte, 16), make([]byte, 16), make([]byte, 16), make([]byte, 16)}
	chunks := make([]Buffer, len(raw))
	for i := range raw {
		rng.Read(raw[i])
		chunks[i] = FromBytes(raw[i])
	}
	q := ComputeQ(chunks, nil)
	want := make([]byte, 16)
	gf256.SyndromePQ(nil, want, raw)
	if !q.Equal(FromBytes(want)) {
		t.Fatal("ComputeQ mismatch with SyndromePQ")
	}
}

func TestComputeQWithExplicitIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randBuf(rng, 8), randBuf(rng, 8)
	// Q over chunks at data indices 2 and 5.
	q := ComputeQ([]Buffer{a, b}, []int{2, 5})
	want := Alloc(8)
	want = MulAddInto(want, a, QCoeff(2))
	want = MulAddInto(want, b, QCoeff(5))
	if !q.Equal(want) {
		t.Fatal("ComputeQ with indices mismatch")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	oldB, newB := randBuf(rng, 24), randBuf(rng, 24)
	d := Delta(oldB, newB)
	// old ⊕ delta == new
	back := XORInto(oldB.Clone(), d)
	if !back.Equal(newB) {
		t.Fatal("Delta is not old⊕new")
	}
}

// Property: RMW parity update via Delta equals recomputing P from scratch.
func TestPropertyRMWEqualsRecompute(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const k, n = 6, 20
		chunks := make([]Buffer, k)
		for i := range chunks {
			chunks[i] = randBuf(rng, n)
		}
		p := ComputeP(chunks)

		i := int(which) % k
		newChunk := randBuf(rng, n)
		delta := Delta(chunks[i], newChunk)
		pRMW := XORInto(p.Clone(), delta)

		chunks[i] = newChunk
		pFull := ComputeP(chunks)
		return pRMW.Equal(pFull)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reduction order does not matter (XOR is commutative/associative),
// which is the mathematical foundation of dRAID's non-blocking reduce (§5).
func TestPropertyReductionOrderIrrelevant(t *testing.T) {
	f := func(seed int64, perm []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const k, n = 5, 16
		parts := make([]Buffer, k)
		for i := range parts {
			parts[i] = randBuf(rng, n)
		}
		forward := Alloc(n)
		for _, p := range parts {
			forward = XORInto(forward, p)
		}
		// Reduce in a permuted order derived from perm.
		order := rng.Perm(k)
		shuffled := Alloc(n)
		for _, j := range order {
			shuffled = XORInto(shuffled, parts[j])
		}
		return forward.Equal(shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestComputePEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ComputeP(nil)
}

func TestMulInto(t *testing.T) {
	src := FromBytes([]byte{1, 2, 4})
	out := MulInto(src, 2)
	for i, s := range src.Data() {
		if out.Data()[i] != gf256.Mul(s, 2) {
			t.Fatal("MulInto mismatch")
		}
	}
	if !MulInto(Sized(3), 2).Elided() {
		t.Fatal("MulInto of elided should be elided")
	}
}
