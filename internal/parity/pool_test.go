package parity

import "testing"

func TestPoolGetReturnsZeroedReuse(t *testing.T) {
	p := NewPool()
	a := p.Get(16)
	for i := range a.Data() {
		a.Data()[i] = 0xAB
	}
	p.Put(a)

	b := p.Get(16)
	if &b.Data()[0] != &a.Data()[0] {
		t.Fatal("Get after Put should reuse the recycled storage")
	}
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %#x", i, v)
		}
	}
	if p.Gets != 2 || p.Hits != 1 {
		t.Fatalf("stats = %d gets / %d hits, want 2/1", p.Gets, p.Hits)
	}
}

func TestPoolSizesAreSegregated(t *testing.T) {
	p := NewPool()
	a := p.Get(8)
	p.Put(a)
	if b := p.Get(16); len(b.Data()) != 16 {
		t.Fatalf("got %d-byte buffer, want 16", len(b.Data()))
	}
	if p.Hits != 0 {
		t.Fatal("a different size must not hit the free list")
	}
	if c := p.Get(8); &c.Data()[0] != &a.Data()[0] {
		t.Fatal("the 8-byte buffer should still be reusable")
	}
}

func TestPoolClone(t *testing.T) {
	p := NewPool()
	src := FromBytes([]byte{1, 2, 3, 4})
	c := p.Clone(src)
	if !c.Equal(src) {
		t.Fatal("pooled clone differs from source")
	}
	c.Data()[0] = 9
	if src.Data()[0] != 1 {
		t.Fatal("pooled clone aliases its source")
	}
	p.Put(c)
	d := p.Clone(src)
	if &d.Data()[0] != &c.Data()[0] || !d.Equal(src) {
		t.Fatal("Clone should reuse recycled storage and copy the bytes")
	}

	if !p.Clone(Sized(5)).Elided() {
		t.Fatal("clone of elided should stay elided")
	}
}

func TestPoolNilSafe(t *testing.T) {
	var p *Pool
	b := p.Get(4)
	if b.Elided() || b.Len() != 4 {
		t.Fatal("nil pool Get should allocate")
	}
	p.Put(b) // must not panic
	if !p.Clone(b).Equal(b) {
		t.Fatal("nil pool Clone should copy")
	}
}

func TestPoolIgnoresElidedPut(t *testing.T) {
	p := NewPool()
	p.Put(Sized(8))
	if b := p.Get(8); b.Elided() {
		t.Fatal("elided Put must not poison the free list")
	}
	if p.Hits != 0 {
		t.Fatal("elided Put must not be reusable")
	}
}

func TestScaleInPlace(t *testing.T) {
	b := FromBytes([]byte{1, 2, 3})
	want := MulInto(b, 7)
	got := Scale(b, 7)
	if !got.Equal(want) {
		t.Fatal("Scale disagrees with MulInto")
	}
	if &got.Data()[0] != &b.Data()[0] {
		t.Fatal("Scale should operate in place")
	}
	if !Scale(Sized(3), 7).Elided() {
		t.Fatal("Scale of elided should stay elided")
	}
}

// BenchmarkAccumulatorAllocVsPool measures the allocation behaviour the
// server reduce path cares about: grab an accumulator, fold a contribution
// in, release it. The pooled variant amortises to zero allocations per
// stripe once the free list is warm.
func BenchmarkAccumulatorAllocVsPool(b *testing.B) {
	const n = 64 << 10
	contrib := Alloc(n)
	for i := range contrib.Data() {
		contrib.Data()[i] = byte(i)
	}
	b.Run("alloc", func(b *testing.B) {
		b.SetBytes(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := Alloc(n)
			MulAddInto(acc, contrib, 3)
		}
	})
	b.Run("pool", func(b *testing.B) {
		p := NewPool()
		b.SetBytes(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := p.Get(n)
			MulAddInto(acc, contrib, 3)
			p.Put(acc)
		}
	})
}

func TestComputePQMatchesSeparate(t *testing.T) {
	chunks := []Buffer{
		FromBytes([]byte{1, 2, 3, 4}),
		FromBytes([]byte{5, 6, 7, 8}),
		FromBytes([]byte{9, 10, 11, 12}),
	}
	p, q := ComputePQ(chunks)
	if !p.Equal(ComputeP(chunks)) {
		t.Fatal("fused P differs from ComputeP")
	}
	if !q.Equal(ComputeQ(chunks, nil)) {
		t.Fatal("fused Q differs from ComputeQ")
	}

	pE, qE := ComputePQ([]Buffer{FromBytes([]byte{1, 2}), Sized(2)})
	if !pE.Elided() || !qE.Elided() {
		t.Fatal("any elided input should elide both results")
	}
}
