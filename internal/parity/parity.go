// Package parity provides the data-plane payload abstraction and the parity
// kernels (XOR for RAID-5 P, GF(2^8) multiply-accumulate for RAID-6 Q) used
// by every RAID implementation in this repository.
//
// A Buffer carries either real bytes or only a size ("elided" mode). Unit and
// property tests always run with real bytes, so parity invariants are checked
// with real arithmetic; long bandwidth benchmarks may run elided to keep
// memory flat. Any operation mixing an elided operand yields an elided
// result of the correct size — timing and accounting are unaffected.
package parity

import (
	"bytes"
	"fmt"

	"draid/internal/gf256"
)

// Buffer is a payload of known size whose bytes may be elided.
type Buffer struct {
	size int
	data []byte // nil ⇒ elided
}

// FromBytes wraps b (no copy) as a Buffer.
func FromBytes(b []byte) Buffer { return Buffer{size: len(b), data: b} }

// Alloc returns a zeroed materialized buffer of n bytes.
func Alloc(n int) Buffer { return Buffer{size: n, data: make([]byte, n)} }

// Sized returns an elided buffer of n bytes.
func Sized(n int) Buffer { return Buffer{size: n} }

// Len returns the payload size in bytes.
func (b Buffer) Len() int { return b.size }

// Elided reports whether the buffer carries no real bytes.
func (b Buffer) Elided() bool { return b.data == nil }

// Data returns the underlying bytes, or nil if elided.
func (b Buffer) Data() []byte { return b.data }

// Clone returns an independent copy (elided stays elided).
func (b Buffer) Clone() Buffer {
	if b.data == nil {
		return Buffer{size: b.size}
	}
	cp := make([]byte, b.size)
	copy(cp, b.data)
	return Buffer{size: b.size, data: cp}
}

// Slice returns the sub-buffer [off, off+n). It panics on out-of-range
// arguments. The result aliases b's storage when materialized.
func (b Buffer) Slice(off, n int) Buffer {
	if off < 0 || n < 0 || off+n > b.size {
		panic(fmt.Sprintf("parity: slice [%d,%d) of %d-byte buffer", off, off+n, b.size))
	}
	if b.data == nil {
		return Buffer{size: n}
	}
	return Buffer{size: n, data: b.data[off : off+n]}
}

// CopyAt copies src into b starting at off. If either side is elided the
// destination range becomes undefined but the destination stays usable, so
// elided workloads can exercise the same code paths.
func (b Buffer) CopyAt(off int, src Buffer) {
	if off < 0 || off+src.size > b.size {
		panic(fmt.Sprintf("parity: copy of %d bytes at %d into %d-byte buffer", src.size, off, b.size))
	}
	if b.data == nil || src.data == nil {
		return
	}
	copy(b.data[off:off+src.size], src.data)
}

// Equal reports whether both buffers are materialized with identical bytes.
// Two elided buffers of the same size are also considered equal.
func (b Buffer) Equal(other Buffer) bool {
	if b.size != other.size {
		return false
	}
	if b.data == nil || other.data == nil {
		return b.data == nil && other.data == nil
	}
	return bytes.Equal(b.data, other.data)
}

// XORInto computes dst ^= src, in place on dst's storage. Sizes must match.
// If either side is elided, dst becomes elided. It returns the (possibly
// re-headered) destination.
func XORInto(dst, src Buffer) Buffer {
	if dst.size != src.size {
		panic(fmt.Sprintf("parity: xor of %d and %d byte buffers", dst.size, src.size))
	}
	if dst.data == nil || src.data == nil {
		return Buffer{size: dst.size}
	}
	gf256.XORSlice(dst.data, src.data)
	return dst
}

// MulAddInto computes dst ^= c·src over GF(2^8), in place. Sizes must match.
func MulAddInto(dst, src Buffer, c byte) Buffer {
	if dst.size != src.size {
		panic(fmt.Sprintf("parity: muladd of %d and %d byte buffers", dst.size, src.size))
	}
	if dst.data == nil || src.data == nil {
		return Buffer{size: dst.size}
	}
	gf256.MulAddSlice(dst.data, src.data, c)
	return dst
}

// MulInto computes dst = c·src over GF(2^8) into a fresh buffer shaped like
// src (elided if src is elided).
func MulInto(src Buffer, c byte) Buffer {
	if src.data == nil {
		return Buffer{size: src.size}
	}
	out := make([]byte, src.size)
	gf256.MulSlice(out, src.data, c)
	return Buffer{size: src.size, data: out}
}

// Scale computes b = c·b in place on b's storage (no-op when elided) and
// returns b. Use instead of MulInto when the source buffer is dead after the
// call — it saves the fresh allocation.
func Scale(b Buffer, c byte) Buffer {
	if b.data == nil {
		return b
	}
	gf256.MulSlice(b.data, b.data, c)
	return b
}

// QCoeff returns the RAID-6 Q coefficient g^i for data-chunk index i.
func QCoeff(i int) byte { return gf256.Exp(i) }

// ComputeP returns the RAID-5/6 P chunk: XOR of all data chunks. All chunks
// must share one size; the result is elided if any input is.
func ComputeP(chunks []Buffer) Buffer {
	if len(chunks) == 0 {
		panic("parity: ComputeP of no chunks")
	}
	acc := chunks[0].Clone()
	for _, c := range chunks[1:] {
		acc = XORInto(acc, c)
	}
	return acc
}

// ComputeQ returns the RAID-6 Q chunk: ⊕ g^i·D_i, where idx[i] is the
// data-chunk index of chunks[i]. idx may be nil, meaning 0..len-1.
func ComputeQ(chunks []Buffer, idx []int) Buffer {
	if len(chunks) == 0 {
		panic("parity: ComputeQ of no chunks")
	}
	if idx != nil && len(idx) != len(chunks) {
		panic("parity: ComputeQ idx length mismatch")
	}
	acc := Alloc(chunks[0].Len())
	for i, c := range chunks {
		j := i
		if idx != nil {
			j = idx[i]
		}
		acc = MulAddInto(acc, c, QCoeff(j))
	}
	return acc
}

// ComputePQ returns both RAID-6 parity chunks of a full stripe in one fused
// pass over the data (gf256.SyndromePQ reads every chunk exactly once, versus
// one sweep per syndrome for ComputeP + ComputeQ). Chunk i carries data-chunk
// index i. Results are elided if any input is.
func ComputePQ(chunks []Buffer) (p, q Buffer) {
	if len(chunks) == 0 {
		panic("parity: ComputePQ of no chunks")
	}
	n := chunks[0].Len()
	data := make([][]byte, len(chunks))
	for i, c := range chunks {
		if c.Len() != n {
			panic(fmt.Sprintf("parity: ComputePQ chunk %d is %d bytes, want %d", i, c.Len(), n))
		}
		if c.data == nil {
			return Buffer{size: n}, Buffer{size: n}
		}
		data[i] = c.data
	}
	p, q = Alloc(n), Alloc(n)
	gf256.SyndromePQ(p.data, q.data, data)
	return p, q
}

// Delta returns old ⊕ new — the RMW partial-parity seed for P. (For Q the
// caller scales the delta by QCoeff of the chunk index.)
func Delta(oldB, newB Buffer) Buffer {
	return XORInto(oldB.Clone(), newB)
}
