package parity

// Pool is a deterministic free list of materialized buffers, keyed by size.
// Each sim.Engine owns its pools (one per node that recycles buffers), so
// there is no cross-engine sharing and no locking — unlike sync.Pool, reuse
// does not depend on GC timing or scheduling, which keeps simulation results
// reproducible run to run and under `-parallel N`.
//
// Ownership rule: only Put buffers whose storage the caller exclusively owns.
// Buffers that were sent over the fabric, sliced from a caller's payload, or
// returned to user code must not be recycled — the pool would hand their
// bytes to an unrelated stripe.
//
// A nil *Pool is valid and degrades to plain allocation.
type Pool struct {
	free map[int][][]byte

	// Gets counts all Get/Clone calls, Hits the subset served from the free
	// list (observability for the pooling tests and stats dumps).
	Gets, Hits int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{free: make(map[int][][]byte)} }

// Get returns a zeroed materialized buffer of n bytes, reusing a recycled
// buffer of the same size when one is available.
func (p *Pool) Get(n int) Buffer {
	if p == nil {
		return Alloc(n)
	}
	p.Gets++
	if list := p.free[n]; len(list) > 0 {
		b := list[len(list)-1]
		p.free[n] = list[:len(list)-1]
		clear(b)
		p.Hits++
		return FromBytes(b)
	}
	return Alloc(n)
}

// Clone returns a pooled copy of src (elided stays elided, without touching
// the pool).
func (p *Pool) Clone(src Buffer) Buffer {
	if p == nil || src.data == nil {
		return src.Clone()
	}
	p.Gets++
	if list := p.free[src.size]; len(list) > 0 {
		b := list[len(list)-1]
		p.free[src.size] = list[:len(list)-1]
		copy(b, src.data)
		p.Hits++
		return FromBytes(b)
	}
	return src.Clone()
}

// Put recycles b's storage for a future Get/Clone of the same size. Elided
// buffers and puts on a nil pool are no-ops. The caller must not use b after.
func (p *Pool) Put(b Buffer) {
	if p == nil || b.data == nil || b.size == 0 || len(b.data) != b.size {
		return
	}
	p.free[b.size] = append(p.free[b.size], b.data)
}
