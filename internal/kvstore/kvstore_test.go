package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"draid/internal/blobfs"
	"draid/internal/blockdev"
	"draid/internal/parity"
	"draid/internal/sim"
)

func newDB(t *testing.T, cfg Config) (*sim.Engine, *DB) {
	t.Helper()
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 256<<20, 5*sim.Microsecond)
	fs := blobfs.New(eng, dev)
	db, err := Open(eng, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, db
}

func put(t *testing.T, eng *sim.Engine, db *DB, key uint64, val []byte) {
	t.Helper()
	err := errors.New("pending")
	db.Put(key, parity.FromBytes(val), func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("put %d: %v", key, err)
	}
}

func get(t *testing.T, eng *sim.Engine, db *DB, key uint64) ([]byte, error) {
	t.Helper()
	var out []byte
	err := errors.New("pending")
	db.Get(key, func(b parity.Buffer, e error) { err, out = e, b.Data() })
	eng.Run()
	return out, err
}

func val(key uint64) []byte { return []byte(fmt.Sprintf("value-%d", key)) }

func TestPutGetMemtable(t *testing.T) {
	eng, db := newDB(t, Config{})
	put(t, eng, db, 7, val(7))
	got, err := get(t, eng, db, 7)
	if err != nil || !bytes.HasPrefix(got, val(7)) {
		t.Fatalf("got %q err %v", got, err)
	}
	if db.Stats().MemHits != 1 {
		t.Fatalf("stats = %+v", db.Stats())
	}
}

func TestGetMissing(t *testing.T) {
	eng, db := newDB(t, Config{})
	_, err := get(t, eng, db, 123)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestFlushToSSTableAndReadBack(t *testing.T) {
	eng, db := newDB(t, Config{MemtableLimit: 16 << 10, ValueSlot: 1 << 10})
	// 32 KB of puts forces at least one rotation.
	for k := uint64(0); k < 32; k++ {
		put(t, eng, db, k, val(k))
	}
	db.Flush()
	eng.Run()
	if db.Stats().Flushes == 0 {
		t.Fatalf("stats = %+v, expected flushes", db.Stats())
	}
	for k := uint64(0); k < 32; k++ {
		got, err := get(t, eng, db, k)
		if err != nil || !bytes.HasPrefix(got, val(k)) {
			t.Fatalf("key %d: got %q err %v", k, got, err)
		}
	}
	if db.Stats().TableReads == 0 {
		t.Fatal("reads should have hit SSTables after flush")
	}
}

func TestUpdatesShadowOlderVersions(t *testing.T) {
	eng, db := newDB(t, Config{MemtableLimit: 8 << 10, ValueSlot: 1 << 10})
	put(t, eng, db, 5, []byte("old"))
	for k := uint64(100); k < 120; k++ { // force flush of the old value
		put(t, eng, db, k, val(k))
	}
	db.Flush()
	eng.Run()
	put(t, eng, db, 5, []byte("new"))
	got, err := get(t, eng, db, 5)
	if err != nil || !bytes.HasPrefix(got, []byte("new")) {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestCompactionMergesAndDedupes(t *testing.T) {
	eng, db := newDB(t, Config{MemtableLimit: 4 << 10, ValueSlot: 1 << 10, L0CompactTrigger: 3})
	// Write the same small key range repeatedly to build duplicate L0
	// tables and trigger compaction.
	for round := 0; round < 6; round++ {
		for k := uint64(0); k < 8; k++ {
			put(t, eng, db, k, []byte(fmt.Sprintf("r%d-k%d", round, k)))
		}
		db.Flush()
		eng.Run()
	}
	eng.Run()
	if db.Stats().Compactions == 0 {
		t.Fatalf("stats = %+v, expected compactions", db.Stats())
	}
	_, l0, l1 := db.Levels()
	if l0 >= 3 || l1 != 1 {
		t.Fatalf("levels l0=%d l1=%d after compaction", l0, l1)
	}
	// Latest round's values must win.
	for k := uint64(0); k < 8; k++ {
		got, err := get(t, eng, db, k)
		if err != nil || !bytes.HasPrefix(got, []byte(fmt.Sprintf("r5-k%d", k))) {
			t.Fatalf("key %d: got %q err %v", k, got, err)
		}
	}
}

func TestGroupCommitBatchesWAL(t *testing.T) {
	eng, db := newDB(t, Config{GroupCommitBytes: 1 << 20, GroupCommitDelay: sim.Millisecond, SyncWAL: true})
	acked := 0
	for i := uint64(0); i < 10; i++ {
		db.Put(i, parity.FromBytes(val(i)), func(err error) {
			if err != nil {
				t.Errorf("put: %v", err)
			}
			acked++
		})
	}
	// Before the group-commit delay elapses, nothing is durable.
	eng.RunUntil(sim.Time(500 * sim.Microsecond))
	if acked != 0 {
		t.Fatalf("acked = %d before group commit", acked)
	}
	eng.Run()
	if acked != 10 {
		t.Fatalf("acked = %d after group commit", acked)
	}
}

func TestWriteStallsUnderL0Pressure(t *testing.T) {
	// Compaction is effectively disabled (trigger 100), so L0 only grows.
	eng, db := newDB(t, Config{MemtableLimit: 2 << 10, ValueSlot: 1 << 10, L0CompactTrigger: 100, StallL0: 3})
	key := uint64(0)
	for {
		_, l0, _ := db.Levels()
		if l0 >= 3 {
			break
		}
		put(t, eng, db, key, val(key))
		key++
		db.Flush()
		eng.Run()
	}
	acked := false
	db.Put(999, parity.FromBytes(val(999)), func(error) { acked = true })
	eng.Run()
	if acked {
		t.Fatal("put acknowledged despite L0 stall")
	}
	if db.Stats().Stalls == 0 {
		t.Fatalf("stats = %+v, expected a stall", db.Stats())
	}
}

func TestOversizeValueRejected(t *testing.T) {
	eng, db := newDB(t, Config{ValueSlot: 64})
	var err error
	db.Put(1, parity.Sized(128), func(e error) { err = e })
	eng.Run()
	if err == nil {
		t.Fatal("oversize value accepted")
	}
}

func TestElidedValuesFlowThrough(t *testing.T) {
	eng, db := newDB(t, Config{MemtableLimit: 4 << 10, ValueSlot: 1 << 10})
	for k := uint64(0); k < 16; k++ {
		db.Put(k, parity.Sized(1000), func(err error) {
			if err != nil {
				t.Errorf("put: %v", err)
			}
		})
	}
	db.Flush()
	eng.Run()
	var n int
	db.Get(3, func(b parity.Buffer, err error) {
		if err != nil {
			t.Errorf("get: %v", err)
		}
		n = b.Len()
	})
	eng.Run()
	if n == 0 {
		t.Fatal("no value returned")
	}
}

func TestStatsProgression(t *testing.T) {
	eng, db := newDB(t, Config{})
	put(t, eng, db, 1, val(1))
	if _, err := get(t, eng, db, 1); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Puts != 1 || s.Gets != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestScanAcrossLevels(t *testing.T) {
	eng, db := newDB(t, Config{MemtableLimit: 8 << 10, ValueSlot: 1 << 10})
	// Spread keys across SSTables and the memtable.
	for k := uint64(0); k < 40; k += 2 {
		put(t, eng, db, k, val(k))
	}
	db.Flush()
	eng.Run()
	for k := uint64(1); k < 40; k += 2 {
		put(t, eng, db, k, val(k))
	}
	var n int
	err := errors.New("pending")
	db.Scan(10, 12, func(count int, e error) { n, err = count, e })
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("scanned %d records, want 12", n)
	}
}

func TestScanPastEnd(t *testing.T) {
	eng, db := newDB(t, Config{})
	for k := uint64(0); k < 5; k++ {
		put(t, eng, db, k, val(k))
	}
	var n int
	db.Scan(3, 100, func(count int, err error) {
		if err != nil {
			t.Errorf("scan: %v", err)
		}
		n = count
	})
	eng.Run()
	if n != 2 {
		t.Fatalf("scanned %d, want 2 (keys 3,4)", n)
	}
	db.Scan(0, 0, func(count int, err error) { n = count })
	eng.Run()
	if n != 0 {
		t.Fatal("zero-count scan should visit nothing")
	}
}

func TestYCSBEWorkloadRuns(t *testing.T) {
	eng, db := newDB(t, Config{MemtableLimit: 16 << 10})
	for k := uint64(0); k < 200; k++ {
		put(t, eng, db, k, val(k))
	}
	db.Flush()
	eng.Run()
	done := 0
	for i := 0; i < 20; i++ {
		db.Scan(uint64(i*7), 10, func(n int, err error) {
			if err != nil {
				t.Errorf("scan: %v", err)
			}
			done++
		})
	}
	eng.Run()
	if done != 20 {
		t.Fatalf("done = %d", done)
	}
}
