// Package kvstore is a log-structured merge-tree key-value store — the
// RocksDB stand-in for the paper's §9.6 application evaluation. It has the
// structural features whose I/O couples a KV store to the array: a
// write-ahead log with group commit, an in-memory memtable rotated to
// immutable tables, SSTable flushes, L0→L1 compaction with write
// amplification, write stalls when flush/compaction falls behind, and a
// single-instance CPU cost per operation (the paper notes RocksDB's complex
// data structures and locks bound a single instance's throughput).
package kvstore

import (
	"errors"
	"fmt"
	"sort"

	"draid/internal/blobfs"
	"draid/internal/cpu"
	"draid/internal/parity"
	"draid/internal/sim"
)

// ErrNotFound is returned for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// Config tunes the store.
type Config struct {
	// ValueSlot is the fixed on-disk slot per value (values may be
	// shorter). Default 1 KB, the YCSB record size.
	ValueSlot int64
	// MemtableLimit rotates the memtable when its payload exceeds this
	// (default 4 MB).
	MemtableLimit int64
	// L0CompactTrigger starts L0→L1 compaction at this many L0 tables
	// (default 4); StallL0 stalls writers (default 8).
	L0CompactTrigger int
	StallL0          int
	// Group commit: the WAL is flushed when pending bytes reach
	// GroupCommitBytes (default 96 KB — BlobFS buffers log writes) or
	// after GroupCommitDelay (default 500 µs).
	GroupCommitBytes int64
	GroupCommitDelay sim.Duration
	// PerOpCPU is single-instance compute per operation (default 2 µs).
	PerOpCPU sim.Duration
	// SyncWAL makes Put wait for its WAL group commit to hit the device.
	// Off by default, matching RocksDB/YCSB's sync=false: the WAL is still
	// written on the same schedule, but writers are acknowledged after the
	// memtable insert.
	SyncWAL bool
	// BlockCacheBytes caps the in-memory block cache (default 32 MB);
	// cached table blocks serve reads without device I/O, as RocksDB's
	// block cache does.
	BlockCacheBytes int64
	// CacheBlock is the cache granularity (default 64 KB).
	CacheBlock int64
	// FlushChunk is the sequential I/O unit for flush/compaction
	// (default 1 MB).
	FlushChunk int64
}

func (c Config) withDefaults() Config {
	if c.ValueSlot == 0 {
		c.ValueSlot = 1 << 10
	}
	if c.MemtableLimit == 0 {
		c.MemtableLimit = 4 << 20
	}
	if c.L0CompactTrigger == 0 {
		c.L0CompactTrigger = 4
	}
	if c.StallL0 == 0 {
		c.StallL0 = 8
	}
	if c.GroupCommitBytes == 0 {
		c.GroupCommitBytes = 96 << 10
	}
	if c.GroupCommitDelay == 0 {
		c.GroupCommitDelay = 500 * sim.Microsecond
	}
	if c.PerOpCPU == 0 {
		c.PerOpCPU = 2 * sim.Microsecond
	}
	if c.FlushChunk == 0 {
		c.FlushChunk = 1 << 20
	}
	if c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = 32 << 20
	}
	if c.CacheBlock == 0 {
		c.CacheBlock = 64 << 10
	}
	return c
}

// Stats counts store activity.
type Stats struct {
	Gets, Puts          int64
	MemHits, TableReads int64
	CacheHits           int64
	Flushes             int64
	Compactions         int64
	Stalls              int64
	BytesFlushed        int64
	BytesCompacted      int64
}

type memtable struct {
	data  map[uint64]parity.Buffer
	bytes int64
}

func newMemtable() *memtable { return &memtable{data: make(map[uint64]parity.Buffer)} }

// sstable is one sorted on-disk table; its key index lives in memory (the
// index/fence blocks real LSMs pin in RAM).
type sstable struct {
	file *blobfs.File
	keys []uint64
	slot int64
	vals []parity.Buffer // retained value images for merge correctness
}

func (t *sstable) find(key uint64) int {
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= key })
	if i < len(t.keys) && t.keys[i] == key {
		return i
	}
	return -1
}

// DB is the store.
type DB struct {
	eng  *sim.Engine
	fs   *blobfs.FS
	core *cpu.Core
	cfg  Config

	mem    *memtable
	imm    []*memtable
	l0     []*sstable // newest first
	l1     []*sstable
	nextID int64

	wal        *blobfs.File
	walPending []func(error)
	walBytes   int64
	walTimer   *sim.Timer

	compacting bool
	stalledPut []func()

	cache      map[cacheKey]bool
	cacheOrder []cacheKey

	stats Stats
}

type cacheKey struct {
	table *sstable
	block int64
}

// cacheLookup reports whether the block holding byte off of t is cached,
// inserting it (FIFO eviction) if not.
func (db *DB) cacheLookup(t *sstable, off int64) bool {
	k := cacheKey{table: t, block: off / db.cfg.CacheBlock}
	if db.cache[k] {
		return true
	}
	db.cache[k] = true
	db.cacheOrder = append(db.cacheOrder, k)
	maxBlocks := int(db.cfg.BlockCacheBytes / db.cfg.CacheBlock)
	for len(db.cacheOrder) > maxBlocks {
		old := db.cacheOrder[0]
		db.cacheOrder = db.cacheOrder[1:]
		delete(db.cache, old)
	}
	return false
}

// dropFromCache evicts all of t's blocks (table deleted by compaction).
func (db *DB) dropFromCache(t *sstable) {
	for k := range db.cache {
		if k.table == t {
			delete(db.cache, k)
		}
	}
}

// Open creates a store on the filesystem.
func Open(eng *sim.Engine, fs *blobfs.FS, cfg Config) (*DB, error) {
	db := &DB{eng: eng, fs: fs, core: cpu.NewCore(eng), cfg: cfg.withDefaults(), mem: newMemtable(), cache: make(map[cacheKey]bool)}
	var err error
	done := false
	fs.Create("wal-0", func(f *blobfs.File, e error) {
		db.wal, err = f, e
		done = true
	})
	eng.Run()
	if !done || err != nil {
		return nil, fmt.Errorf("kvstore: creating wal: %w", err)
	}
	return db, nil
}

// Stats returns a snapshot of counters.
func (db *DB) Stats() Stats { return db.stats }

// Get looks up a key: memtable → immutables → L0 (newest first) → L1.
func (db *DB) Get(key uint64, cb func(parity.Buffer, error)) {
	db.core.Exec(db.cfg.PerOpCPU, func() {
		db.stats.Gets++
		if v, ok := db.mem.data[key]; ok {
			db.stats.MemHits++
			cb(v, nil)
			return
		}
		for i := len(db.imm) - 1; i >= 0; i-- {
			if v, ok := db.imm[i].data[key]; ok {
				db.stats.MemHits++
				cb(v, nil)
				return
			}
		}
		for _, t := range append(append([]*sstable{}, db.l0...), db.l1...) {
			if i := t.find(key); i >= 0 {
				val := t.vals[i]
				off := int64(i) * t.slot
				if db.cacheLookup(t, off) {
					db.stats.CacheHits++
					cb(val, nil)
					return
				}
				db.stats.TableReads++
				t.file.ReadAt(off, t.slot, func(b parity.Buffer, err error) {
					if err != nil {
						cb(parity.Buffer{}, err)
						return
					}
					if b.Elided() {
						cb(b, nil) // size-only data plane
						return
					}
					cb(val, nil)
				})
				return
			}
		}
		cb(parity.Buffer{}, ErrNotFound)
	})
}

// Put inserts or updates a key. The callback fires once the write-ahead log
// entry is durable (group commit).
func (db *DB) Put(key uint64, val parity.Buffer, cb func(error)) {
	if int64(val.Len()) > db.cfg.ValueSlot {
		db.eng.Defer(func() { cb(fmt.Errorf("kvstore: value %d exceeds slot %d", val.Len(), db.cfg.ValueSlot)) })
		return
	}
	if len(db.imm) > 2 || len(db.l0) >= db.cfg.StallL0 {
		db.stats.Stalls++
		db.stalledPut = append(db.stalledPut, func() { db.Put(key, val, cb) })
		return
	}
	db.core.Exec(db.cfg.PerOpCPU, func() {
		db.stats.Puts++
		db.mem.data[key] = val.Clone()
		db.mem.bytes += db.cfg.ValueSlot
		db.walBytes += db.cfg.ValueSlot + 16
		if db.cfg.SyncWAL {
			db.walPending = append(db.walPending, cb)
		}
		if db.walBytes >= db.cfg.GroupCommitBytes {
			db.flushWAL()
		} else if db.walTimer == nil {
			db.walTimer = db.eng.After(db.cfg.GroupCommitDelay, db.flushWAL)
		}
		if db.mem.bytes >= db.cfg.MemtableLimit {
			db.rotate()
		}
		if !db.cfg.SyncWAL {
			cb(nil)
		}
	})
}

// flushWAL appends the pending batch to the log and, in SyncWAL mode,
// acknowledges the batched writers.
func (db *DB) flushWAL() {
	if db.walTimer != nil {
		db.walTimer.Stop()
		db.walTimer = nil
	}
	if db.walBytes == 0 {
		return
	}
	batch := db.walPending
	n := db.walBytes
	db.walPending = nil
	db.walBytes = 0
	db.wal.Append(parity.Sized(int(n)), func(err error) {
		for _, cb := range batch {
			cb(err)
		}
	})
}

// rotate freezes the memtable and flushes it to an L0 table.
func (db *DB) rotate() {
	mt := db.mem
	db.mem = newMemtable()
	db.imm = append(db.imm, mt)
	db.flushWAL()
	db.flushMemtable(mt)
}

// flushMemtable writes one immutable memtable as a sorted L0 SSTable.
func (db *DB) flushMemtable(mt *memtable) {
	keys := make([]uint64, 0, len(mt.data))
	for k := range mt.data {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]parity.Buffer, len(keys))
	for i, k := range keys {
		vals[i] = mt.data[k]
	}
	db.nextID++
	name := fmt.Sprintf("sst-%d", db.nextID)
	db.fs.Create(name, func(f *blobfs.File, err error) {
		if err != nil {
			panic("kvstore: flush create: " + err.Error())
		}
		total := int64(len(keys)) * db.cfg.ValueSlot
		db.stats.BytesFlushed += total
		db.writeSequential(f, total, func(err error) {
			if err != nil {
				panic("kvstore: flush write: " + err.Error())
			}
			db.stats.Flushes++
			t := &sstable{file: f, keys: keys, slot: db.cfg.ValueSlot, vals: vals}
			db.l0 = append([]*sstable{t}, db.l0...)
			// Retire the flushed immutable.
			for i, im := range db.imm {
				if im == mt {
					db.imm = append(db.imm[:i], db.imm[i+1:]...)
					break
				}
			}
			db.maybeCompact()
			db.unstall()
		})
	})
}

// writeSequential appends total bytes in FlushChunk units.
func (db *DB) writeSequential(f *blobfs.File, total int64, cb func(error)) {
	if total == 0 {
		db.eng.Defer(func() { cb(nil) })
		return
	}
	n := min64(db.cfg.FlushChunk, total)
	f.Append(parity.Sized(int(n)), func(err error) {
		if err != nil {
			cb(err)
			return
		}
		db.writeSequential(f, total-n, cb)
	})
}

// readSequential reads a whole table in FlushChunk units (compaction input).
func (db *DB) readSequential(f *blobfs.File, cb func(error)) {
	var step func(off int64)
	step = func(off int64) {
		if off >= f.Size() {
			cb(nil)
			return
		}
		n := min64(db.cfg.FlushChunk, f.Size()-off)
		f.ReadAt(off, n, func(_ parity.Buffer, err error) {
			if err != nil {
				cb(err)
				return
			}
			step(off + n)
		})
	}
	step(0)
}

// maybeCompact merges all of L0 plus L1 into a fresh L1 table when L0 grows
// past the trigger.
func (db *DB) maybeCompact() {
	if db.compacting || len(db.l0) < db.cfg.L0CompactTrigger {
		return
	}
	db.compacting = true
	inputs := append(append([]*sstable{}, db.l0...), db.l1...)

	// Merge: newest occurrence of each key wins (l0 is newest-first).
	merged := make(map[uint64]parity.Buffer)
	for _, t := range inputs {
		for i, k := range t.keys {
			if _, seen := merged[k]; !seen {
				merged[k] = t.vals[i]
			}
		}
	}
	keys := make([]uint64, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]parity.Buffer, len(keys))
	for i, k := range keys {
		vals[i] = merged[k]
	}

	// Read every input sequentially, then write the merged output.
	pending := len(inputs)
	for _, t := range inputs {
		db.readSequential(t.file, func(err error) {
			if err != nil {
				panic("kvstore: compaction read: " + err.Error())
			}
			pending--
			if pending > 0 {
				return
			}
			db.nextID++
			name := fmt.Sprintf("sst-%d", db.nextID)
			db.fs.Create(name, func(f *blobfs.File, err error) {
				if err != nil {
					panic("kvstore: compaction create: " + err.Error())
				}
				total := int64(len(keys)) * db.cfg.ValueSlot
				db.stats.BytesCompacted += total
				db.writeSequential(f, total, func(err error) {
					if err != nil {
						panic("kvstore: compaction write: " + err.Error())
					}
					out := &sstable{file: f, keys: keys, slot: db.cfg.ValueSlot, vals: vals}
					for _, in := range inputs {
						db.dropFromCache(in)
						db.fs.Delete(in.file.Name(), func(error) {})
					}
					db.l0 = nil
					db.l1 = []*sstable{out}
					db.stats.Compactions++
					db.compacting = false
					db.unstall()
					db.maybeCompact()
				})
			})
		})
	}
}

// unstall re-admits writers queued behind flush/compaction pressure.
func (db *DB) unstall() {
	if len(db.imm) > 2 || len(db.l0) >= db.cfg.StallL0 {
		return
	}
	waiting := db.stalledPut
	db.stalledPut = nil
	for _, fn := range waiting {
		db.eng.Defer(fn)
	}
}

// Scan visits up to count keys ≥ start in ascending order, fetching each
// value through the same cache/table path as Get (YCSB-E's operation). cb
// receives the number of records visited.
func (db *DB) Scan(start uint64, count int, cb func(int, error)) {
	if count <= 0 {
		db.eng.Defer(func() { cb(0, nil) })
		return
	}
	db.core.Exec(db.cfg.PerOpCPU, func() {
		// Merge candidate keys from every level (indexes are in memory).
		seen := make(map[uint64]bool)
		add := func(k uint64) {
			if k >= start {
				seen[k] = true
			}
		}
		for k := range db.mem.data {
			add(k)
		}
		for _, mt := range db.imm {
			for k := range mt.data {
				add(k)
			}
		}
		for _, t := range append(append([]*sstable{}, db.l0...), db.l1...) {
			i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= start })
			for ; i < len(t.keys) && len(seen) < count*4; i++ {
				seen[t.keys[i]] = true
			}
		}
		keys := make([]uint64, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if len(keys) > count {
			keys = keys[:count]
		}
		visited := 0
		var step func(i int)
		step = func(i int) {
			if i >= len(keys) {
				cb(visited, nil)
				return
			}
			db.Get(keys[i], func(_ parity.Buffer, err error) {
				if err != nil {
					cb(visited, err)
					return
				}
				visited++
				step(i + 1)
			})
		}
		step(0)
	})
}

// Flush forces the memtable and WAL down (used to settle load phases).
func (db *DB) Flush() {
	db.flushWAL()
	if db.mem.bytes > 0 {
		db.rotate()
	}
}

// Levels reports (immutables, L0 tables, L1 tables) for tests.
func (db *DB) Levels() (imm, l0, l1 int) { return len(db.imm), len(db.l0), len(db.l1) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
