// Package nvmeof defines the command capsules exchanged between the dRAID
// host and the server-side controllers: standard NVMe-oF Read/Write plus the
// four dRAID extension opcodes of the paper's §4 (Figure 5) — PartialWrite,
// Parity, Reconstruction, and Peer — with the extended command parameters
// (subtype, fwd-offset/fwd-length, next-dest, wait-num, scatter-gather list)
// and the RAID-6 "other command data" (second destination, data index).
//
// Capsules have a binary wire format (Encode/Decode) used for size
// accounting on the simulated fabric and validated by round-trip tests;
// within the simulation, decoded structs are passed by value.
package nvmeof

import (
	"encoding/binary"
	"fmt"

	"draid/internal/integrity"
)

// Opcode identifies the operation in a capsule.
type Opcode uint8

// Standard NVMe-oF opcodes plus dRAID extensions (§4).
const (
	OpRead  Opcode = 0x02
	OpWrite Opcode = 0x01
	// OpPartialWrite instructs a data bdev to execute its share of a
	// partial stripe write and forward a partial parity (Algorithm 1).
	OpPartialWrite Opcode = 0x81
	// OpParity instructs the parity bdev to run the Reduce phase
	// (Algorithm 2).
	OpParity Opcode = 0x82
	// OpReconstruction instructs a bdev to take part in degraded-read
	// reconstruction (§6.1).
	OpReconstruction Opcode = 0x83
	// OpPeer carries a partial result between bdevs without host
	// involvement.
	OpPeer Opcode = 0x84
	// OpHeartbeat is a liveness probe: a healthy bdev completes it
	// immediately, a failed drive reports error status, and a down node
	// never answers — the probe deadline is the detector's evidence.
	OpHeartbeat Opcode = 0x85
	// OpFence severs a dead controller session (§5.4 failover): the bdev
	// discards every reduction and drops every later-arriving command of
	// the fence's namespace with an ID below the fence's own, and completes
	// once the drive writes in flight at its arrival have landed. A
	// replacement controller fences all bdevs before resyncing, so no
	// straggler write from the crashed controller can land after the resync
	// read what it took to be the final data.
	OpFence Opcode = 0x86
	// OpCompletion reports a final state back to the host.
	OpCompletion Opcode = 0x8F
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpRead:
		return "Read"
	case OpWrite:
		return "Write"
	case OpPartialWrite:
		return "PartialWrite"
	case OpParity:
		return "Parity"
	case OpReconstruction:
		return "Reconstruction"
	case OpPeer:
		return "Peer"
	case OpHeartbeat:
		return "Heartbeat"
	case OpFence:
		return "Fence"
	case OpCompletion:
		return "Completion"
	}
	return fmt.Sprintf("Opcode(%#x)", uint8(o))
}

// Subtype refines an opcode's behaviour (§5.1, §6.1).
type Subtype uint8

// Subtypes used by the dRAID opcodes.
const (
	SubNone Subtype = iota
	// SubRMW: read-modify-write — read old data, xor with new.
	SubRMW
	// SubRWWrite: reconstruct-write at a written chunk — partial parity is
	// the new data (plus any unwritten remainder read from the drive).
	SubRWWrite
	// SubRWRead: reconstruct-write at an untouched chunk — partial parity
	// is the stored data.
	SubRWRead
	// SubAlsoRead: reconstruction participant whose chunk is also being
	// read normally by the user request.
	SubAlsoRead
	// SubNoRead: reconstruction participant contributing only to the
	// rebuild.
	SubNoRead
)

// String names the subtype.
func (s Subtype) String() string {
	switch s {
	case SubNone:
		return "None"
	case SubRMW:
		return "RMW"
	case SubRWWrite:
		return "RW_WRITE"
	case SubRWRead:
		return "RW_READ"
	case SubAlsoRead:
		return "AlsoRead"
	case SubNoRead:
		return "NoRead"
	}
	return fmt.Sprintf("Subtype(%d)", uint8(s))
}

// Status is a completion code.
type Status uint8

// Completion statuses (§5.4: success / failed / timed-out are the final
// states an operation must reach before the host may retry).
const (
	StatusSuccess Status = iota
	StatusError
	StatusTimeout
	// StatusMediaError reports a per-chunk erasure: the bdev is alive but a
	// byte range of the addressed chunk is unreadable (drive URE) or failed
	// its end-to-end checksum (bit rot). The completion echoes the bad range
	// in Offset/Length so the host can reconstruct exactly what is missing.
	StatusMediaError
	// StatusStaleEpoch rejects a command whose Epoch is below the bdev's
	// current epoch for the namespace: the sender is a superseded host — it
	// lost the volume to a takeover (possibly while partitioned) — and its
	// command was discarded without touching the drive. The sender must stand
	// down, not retry.
	StatusStaleEpoch
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusError:
		return "error"
	case StatusTimeout:
		return "timeout"
	case StatusMediaError:
		return "media-error"
	case StatusStaleEpoch:
		return "stale-epoch"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// SGE is one scatter-gather element: a byte range relative to the chunk.
type SGE struct {
	Off int64
	Len int64
}

// Command is a dRAID command capsule.
type Command struct {
	ID     uint64 // host-assigned command identifier
	Opcode Opcode
	NSID   uint32 // namespace: the target bdev's ID on its server
	Offset int64  // drive-relative byte offset of the primary segment
	Length int64  // length of the primary segment

	// dRAID command parameters (§4).
	Subtype   Subtype
	FwdOffset int64  // chunk-relative offset of the forwarded segment
	FwdLength int64  // length of the forwarded segment
	NextDest  uint16 // node index of the forwarding destination (reducer)
	WaitNum   uint16 // how many partial results the reducer must expect
	SGL       []SGE  // additional segments (sg-list)

	// RAID-6 "other command data": the Q reducer and the GF coefficient
	// index for this chunk's contribution.
	NextDest2 uint16
	DataIdx   uint16
	SGL2      []SGE

	// Completion-only fields.
	Status Status

	// Epoch is the sender's host epoch for the namespace (membership
	// fencing): bdevs reject commands below their current epoch with
	// StatusStaleEpoch, and completions echo the command's epoch so a host
	// can discard answers addressed to a predecessor. Zero means epoch
	// fencing is off for this capsule; it is encoded as a trailing extension
	// only when set, so legacy capsules are byte-identical.
	Epoch uint64
}

const fixedEncodedSize = 8 + 1 + 4 + 8 + 8 + 1 + 8 + 8 + 2 + 2 + 2 + 2 + 1 + 2 + 2 // see Encode

// EncodedSize returns the wire size of the capsule in bytes.
func (c *Command) EncodedSize() int {
	n := fixedEncodedSize + 16*(len(c.SGL)+len(c.SGL2))
	if c.Epoch != 0 {
		n += 8
	}
	return n
}

// Encode serializes the capsule.
func (c *Command) Encode() []byte {
	out := make([]byte, 0, c.EncodedSize())
	le := binary.LittleEndian
	out = le.AppendUint64(out, c.ID)
	out = append(out, byte(c.Opcode))
	out = le.AppendUint32(out, c.NSID)
	out = le.AppendUint64(out, uint64(c.Offset))
	out = le.AppendUint64(out, uint64(c.Length))
	out = append(out, byte(c.Subtype))
	out = le.AppendUint64(out, uint64(c.FwdOffset))
	out = le.AppendUint64(out, uint64(c.FwdLength))
	out = le.AppendUint16(out, c.NextDest)
	out = le.AppendUint16(out, c.WaitNum)
	out = le.AppendUint16(out, c.NextDest2)
	out = le.AppendUint16(out, c.DataIdx)
	out = append(out, byte(c.Status))
	out = le.AppendUint16(out, uint16(len(c.SGL)))
	out = le.AppendUint16(out, uint16(len(c.SGL2)))
	for _, s := range append(append([]SGE(nil), c.SGL...), c.SGL2...) {
		out = le.AppendUint64(out, uint64(s.Off))
		out = le.AppendUint64(out, uint64(s.Len))
	}
	if c.Epoch != 0 {
		out = le.AppendUint64(out, c.Epoch)
	}
	return out
}

// Checksum returns the CRC32C of the encoded capsule — the command-level
// integrity check a receiving NIC runs before accepting a capsule. The
// fabric layer uses it to model in-flight corruption: a capsule whose
// checksum fails verification is discarded at the receiver, and the sender's
// §5.4 timeout/retry machinery takes over.
func (c *Command) Checksum() uint32 { return integrity.Checksum(c.Encode()) }

// Decode parses a capsule, returning an error on truncation.
func Decode(b []byte) (Command, error) {
	var c Command
	if len(b) < fixedEncodedSize {
		return c, fmt.Errorf("nvmeof: capsule truncated at %d bytes", len(b))
	}
	le := binary.LittleEndian
	c.ID = le.Uint64(b[0:])
	c.Opcode = Opcode(b[8])
	c.NSID = le.Uint32(b[9:])
	c.Offset = int64(le.Uint64(b[13:]))
	c.Length = int64(le.Uint64(b[21:]))
	c.Subtype = Subtype(b[29])
	c.FwdOffset = int64(le.Uint64(b[30:]))
	c.FwdLength = int64(le.Uint64(b[38:]))
	c.NextDest = le.Uint16(b[46:])
	c.WaitNum = le.Uint16(b[48:])
	c.NextDest2 = le.Uint16(b[50:])
	c.DataIdx = le.Uint16(b[52:])
	c.Status = Status(b[54])
	n1 := int(le.Uint16(b[55:]))
	n2 := int(le.Uint16(b[57:]))
	rest := b[fixedEncodedSize:]
	if len(rest) < 16*(n1+n2) {
		return c, fmt.Errorf("nvmeof: sg-list truncated: have %d bytes, need %d", len(rest), 16*(n1+n2))
	}
	read := func(n int) []SGE {
		if n == 0 {
			return nil
		}
		out := make([]SGE, n)
		for i := range out {
			out[i] = SGE{Off: int64(le.Uint64(rest[0:])), Len: int64(le.Uint64(rest[8:]))}
			rest = rest[16:]
		}
		return out
	}
	c.SGL = read(n1)
	c.SGL2 = read(n2)
	if len(rest) >= 8 {
		c.Epoch = le.Uint64(rest)
	}
	return c, nil
}

// SpanName returns the short label used for trace spans: the opcode, plus
// the subtype when it refines behaviour ("PartialWrite/RMW").
func (c *Command) SpanName() string {
	if c.Subtype != SubNone {
		return c.Opcode.String() + "/" + c.Subtype.String()
	}
	return c.Opcode.String()
}

// String renders a compact human-readable capsule summary for traces.
func (c *Command) String() string {
	s := fmt.Sprintf("%v id=%d ns=%d off=%d len=%d", c.Opcode, c.ID, c.NSID, c.Offset, c.Length)
	if c.Subtype != SubNone {
		s += " sub=" + c.Subtype.String()
	}
	if c.Opcode == OpParity || c.Opcode == OpPartialWrite || c.Opcode == OpReconstruction {
		s += fmt.Sprintf(" fwd=[%d,%d) dest=%d wait=%d", c.FwdOffset, c.FwdOffset+c.FwdLength, c.NextDest, c.WaitNum)
	}
	if c.Opcode == OpCompletion {
		s += " status=" + c.Status.String()
	}
	if c.Epoch != 0 {
		s += fmt.Sprintf(" epoch=%d", c.Epoch)
	}
	return s
}
