package nvmeof

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cmd := Command{
		ID: 42, Opcode: OpPartialWrite, NSID: 3,
		Offset: 1 << 30, Length: 128 << 10,
		Subtype: SubRMW, FwdOffset: 4096, FwdLength: 64 << 10,
		NextDest: 7, WaitNum: 3, NextDest2: 2, DataIdx: 5,
		SGL:  []SGE{{Off: 0, Len: 100}, {Off: 500, Len: 200}},
		SGL2: []SGE{{Off: 9, Len: 9}},
	}
	b := cmd.Encode()
	if len(b) != cmd.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(b), cmd.EncodedSize())
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cmd) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cmd)
	}
}

func TestDecodeTruncated(t *testing.T) {
	cmd := Command{ID: 1, Opcode: OpRead}
	b := cmd.Encode()
	if _, err := Decode(b[:10]); err == nil {
		t.Fatal("decoding truncated capsule should fail")
	}
	cmd.SGL = []SGE{{1, 2}}
	b = cmd.Encode()
	if _, err := Decode(b[:len(b)-4]); err == nil {
		t.Fatal("decoding truncated sg-list should fail")
	}
}

// Property: every capsule round-trips bit-exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(id uint64, op, sub uint8, nsid uint32, off, length, fo, fl int64,
		nd, wn, nd2, di uint16, st uint8, sglRaw []uint32) bool {
		cmd := Command{
			ID: id, Opcode: Opcode(op), NSID: nsid,
			Offset: abs64(off), Length: abs64(length),
			Subtype: Subtype(sub), FwdOffset: abs64(fo), FwdLength: abs64(fl),
			NextDest: nd, WaitNum: wn, NextDest2: nd2, DataIdx: di,
			Status: Status(st),
		}
		for i := 0; i+1 < len(sglRaw) && i < 8; i += 2 {
			cmd.SGL = append(cmd.SGL, SGE{Off: int64(sglRaw[i]), Len: int64(sglRaw[i+1])})
		}
		got, err := Decode(cmd.Encode())
		return err == nil && reflect.DeepEqual(got, cmd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestEncodedSizeSmall(t *testing.T) {
	// The paper argues a few extra header bytes are immaterial for block
	// storage; still, the capsule must stay O(100) bytes.
	cmd := Command{Opcode: OpReconstruction, SGL: []SGE{{0, 1}, {2, 3}}}
	if cmd.EncodedSize() > 256 {
		t.Fatalf("capsule size %d bytes, want ≤ 256", cmd.EncodedSize())
	}
}

func TestOpcodeStrings(t *testing.T) {
	ops := map[Opcode]string{
		OpRead: "Read", OpWrite: "Write", OpPartialWrite: "PartialWrite",
		OpParity: "Parity", OpReconstruction: "Reconstruction", OpPeer: "Peer",
		OpCompletion: "Completion", Opcode(0x55): "Opcode(0x55)",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(op), op.String(), want)
		}
	}
}

func TestSubtypeAndStatusStrings(t *testing.T) {
	for _, s := range []Subtype{SubNone, SubRMW, SubRWWrite, SubRWRead, SubAlsoRead, SubNoRead, Subtype(99)} {
		if s.String() == "" {
			t.Fatal("empty subtype string")
		}
	}
	for _, s := range []Status{StatusSuccess, StatusError, StatusTimeout, Status(9)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

func TestCommandString(t *testing.T) {
	c := Command{ID: 7, Opcode: OpPartialWrite, Subtype: SubRMW, NextDest: 3, WaitNum: 2}
	s := c.String()
	for _, want := range []string{"PartialWrite", "RMW", "dest=3", "wait=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("capsule string %q missing %q", s, want)
		}
	}
	comp := Command{Opcode: OpCompletion, Status: StatusTimeout}
	if !strings.Contains(comp.String(), "timeout") {
		t.Error("completion string missing status")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cmd := Command{ID: rng.Uint64(), Opcode: OpPeer, Offset: 123, Length: 456}
	a, b := cmd.Encode(), cmd.Encode()
	if len(a) != len(b) {
		t.Fatal("non-deterministic encoding")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic encoding")
		}
	}
}

func TestMediaErrorStatusRoundTrip(t *testing.T) {
	c := Command{ID: 9, Opcode: OpCompletion, NSID: 2, Offset: 4096, Length: 512, Status: StatusMediaError}
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusMediaError || got.Offset != 4096 || got.Length != 512 {
		t.Fatalf("round trip = %+v", got)
	}
	if StatusMediaError.String() != "media-error" {
		t.Fatalf("String() = %q", StatusMediaError.String())
	}
}

func TestCommandChecksumDetectsFieldChange(t *testing.T) {
	c := Command{ID: 1, Opcode: OpWrite, Offset: 100, Length: 200}
	sum := c.Checksum()
	if c.Checksum() != sum {
		t.Fatal("checksum not stable")
	}
	c.Offset++
	if c.Checksum() == sum {
		t.Fatal("checksum blind to a field change")
	}
}
