package nvmeof

import (
	"bytes"
	"reflect"
	"testing"
)

func TestEpochRoundTrip(t *testing.T) {
	cmd := Command{
		ID: 9, Opcode: OpWrite, NSID: 2, Offset: 4096, Length: 512,
		Epoch: 7,
	}
	b := cmd.Encode()
	if len(b) != cmd.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(b), cmd.EncodedSize())
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cmd) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cmd)
	}
}

func TestEpochRoundTripWithSGL(t *testing.T) {
	// The epoch extension trails the sg-lists; both must survive together.
	cmd := Command{
		ID: 11, Opcode: OpPartialWrite, NSID: 1,
		Subtype: SubRMW, SGL: []SGE{{Off: 0, Len: 64}, {Off: 128, Len: 64}},
		SGL2:  []SGE{{Off: 256, Len: 32}},
		Epoch: 1 << 40,
	}
	got, err := Decode(cmd.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cmd) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cmd)
	}
}

// A zero epoch encodes as no extension at all: capsules from hosts without
// epoch fencing are byte-identical to the pre-epoch wire format.
func TestZeroEpochLegacyByteIdentity(t *testing.T) {
	cmd := Command{ID: 5, Opcode: OpRead, NSID: 4, Offset: 8192, Length: 4096}
	plain := cmd.Encode()
	if len(plain) != fixedEncodedSize {
		t.Fatalf("zero-epoch capsule is %d bytes, want fixed size %d", len(plain), fixedEncodedSize)
	}
	withEpoch := cmd
	withEpoch.Epoch = 3
	b := withEpoch.Encode()
	if len(b) != fixedEncodedSize+8 {
		t.Fatalf("epoch capsule is %d bytes, want %d", len(b), fixedEncodedSize+8)
	}
	if !bytes.Equal(b[:fixedEncodedSize], plain) {
		t.Fatal("epoch extension must not disturb the fixed prefix")
	}
}

// Completions echo the command's epoch through the same extension.
func TestEpochCompletionEcho(t *testing.T) {
	cpl := Command{ID: 5, Opcode: OpCompletion, Status: StatusStaleEpoch, Epoch: 2}
	got, err := Decode(cpl.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusStaleEpoch || got.Epoch != 2 {
		t.Fatalf("completion round trip: %+v", got)
	}
}

func TestEpochChecksumCoversExtension(t *testing.T) {
	cmd := Command{ID: 1, Opcode: OpWrite, Epoch: 1}
	before := cmd.Checksum()
	cmd.Epoch = 2
	if cmd.Checksum() == before {
		t.Fatal("checksum must cover the epoch extension")
	}
}
