// Package chaos explores protocol fault schedules deterministically: for a
// seeded workload it places one fault — partition, host crash, grey slowness,
// capsule duplication — at every step of the workload in turn, lets the
// schedule play out, heals, and then checks the membership invariants the
// epoch layer promises:
//
//   - no acknowledged write is ever lost,
//   - nothing a superseded (stale-epoch) host attempted becomes visible,
//   - the array converges: post-heal scrub runs clean and a second pass
//     repairs nothing.
//
// Every trial is reproducible from (mode, seed, fault, step): the simulation
// backend replays bit-identically, and the realtime backends replay the same
// schedule against wall clocks. Teeth mode (Mode.Teeth) disables the
// servers' epoch enforcement via Injector.SetEpochChecks — the same sweep
// must then CATCH the stale-destage corruption, proving the harness can see
// the failure the membership layer exists to prevent.
package chaos

import (
	"fmt"
	"strings"

	"draid"
)

// Fault enumerates the injectable fault kinds. Each trial places exactly one
// fault at one workload step.
type Fault int

const (
	// FaultIsolateSeize cuts the host off from every member mid-workload,
	// leaves acknowledged staged writes and an in-flight write-through
	// behind, heals, and has a replacement seize the volume at a higher
	// epoch — the partitioned-zombie takeover the epoch layer fences.
	FaultIsolateSeize Fault = iota
	// FaultPartitionMember cuts one host↔member pair symmetrically.
	FaultPartitionMember
	// FaultPartitionMemberTx cuts only host→member traffic: the member
	// keeps answering a host it can no longer hear.
	FaultPartitionMemberTx
	// FaultPartitionPeers cuts one member↔member pair — the peer-to-peer
	// parity/reconstruction path — while both keep talking to the host.
	FaultPartitionPeers
	// FaultCrashFailover crashes the host and adopts the volume on a
	// replacement at a higher epoch (§5.4 write-intent resync).
	FaultCrashFailover
	// FaultDelay turns one member grey: constant service-time inflation,
	// restored at heal time.
	FaultDelay
	// FaultDuplicate replays the next capsule in each direction between the
	// host and one member — a late fabric retransmission.
	FaultDuplicate

	numFaults
)

// AllFaults lists every fault kind, in enumeration order.
func AllFaults() []Fault {
	out := make([]Fault, numFaults)
	for i := range out {
		out[i] = Fault(i)
	}
	return out
}

// PartitionFaults lists only the partition-shaped faults — the acceptance
// sweep ("partition at every protocol step") and the teeth sweep use these.
func PartitionFaults() []Fault {
	return []Fault{FaultIsolateSeize, FaultPartitionMember, FaultPartitionMemberTx, FaultPartitionPeers}
}

// String names the fault for reports.
func (f Fault) String() string {
	switch f {
	case FaultIsolateSeize:
		return "isolate+seize"
	case FaultPartitionMember:
		return "partition-member"
	case FaultPartitionMemberTx:
		return "partition-member-tx"
	case FaultPartitionPeers:
		return "partition-peers"
	case FaultCrashFailover:
		return "crash-failover"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// Mode pins the substrate a sweep runs against.
type Mode struct {
	// Backend selects sim or realtime; TCP selects the socket transport on
	// realtime.
	Backend draid.BackendKind
	TCP     bool
	// Declustered runs the workload on a declustered layout (parity groups
	// rotating over a wider drive set) instead of the fixed geometry.
	Declustered bool
	// WriteBack stages sub-stripe writes host-side; off means every write
	// goes write-through.
	WriteBack bool
	// Teeth disables server-side epoch enforcement: the sweep must then
	// DETECT stale-write corruption instead of reporting clean.
	Teeth bool
}

// String names the mode for reports ("sim/fixed/wt", "realtime-tcp/decl/wb").
func (m Mode) String() string {
	var b strings.Builder
	if m.Backend == draid.BackendRealtime {
		b.WriteString("realtime")
		if m.TCP {
			b.WriteString("-tcp")
		}
	} else {
		b.WriteString("sim")
	}
	if m.Declustered {
		b.WriteString("/decl")
	} else {
		b.WriteString("/fixed")
	}
	if m.WriteBack {
		b.WriteString("/wb")
	} else {
		b.WriteString("/wt")
	}
	if m.Teeth {
		b.WriteString("/teeth")
	}
	return b.String()
}

// Options parameterizes one sweep.
type Options struct {
	Mode Mode
	// Seeds drive the per-trial workload shape; default 1..8.
	Seeds []int64
	// Faults to place; default AllFaults().
	Faults []Fault
	// Steps is the workload length; each fault is placed before step
	// 0..Steps-1 in turn. Default 6.
	Steps int
}

// Violation is one invariant breach, addressable enough to replay:
// rerun the same (mode, seed, fault, step) trial.
type Violation struct {
	Mode   Mode
	Seed   int64
	Fault  Fault
	Step   int
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s seed=%d fault=%s step=%d: %s", v.Mode, v.Seed, v.Fault, v.Step, v.Detail)
}

// Report aggregates a sweep.
type Report struct {
	// Trials ran to completion; Skipped hit an unsupported injection on
	// this backend and prove nothing.
	Trials  int
	Skipped int
	// AckedWrites counts writes acknowledged to the workload across all
	// trials — each one was later verified present.
	AckedWrites int
	// StaleRejects counts commands the bdevs rejected for carrying a
	// superseded epoch: evidence the fence actually engaged.
	StaleRejects int64
	// Violations lists every invariant breach (empty on a clean sweep).
	Violations []Violation
}

// Clean reports whether the sweep found no invariant violations.
func (r Report) Clean() bool { return len(r.Violations) == 0 }

// Summary renders a one-line outcome.
func (r Report) Summary() string {
	return fmt.Sprintf("%d trials (%d skipped), %d acked writes verified, %d stale rejects, %d violations",
		r.Trials, r.Skipped, r.AckedWrites, r.StaleRejects, len(r.Violations))
}

// Run executes the sweep: every (seed, fault, step) triple in turn. The
// returned error covers harness malfunctions (an array that cannot even be
// built); invariant breaches go in Report.Violations.
func Run(opts Options) (Report, error) {
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	}
	faults := opts.Faults
	if len(faults) == 0 {
		faults = AllFaults()
	}
	steps := opts.Steps
	if steps <= 0 {
		steps = 6
	}
	var rep Report
	for _, seed := range seeds {
		for _, f := range faults {
			for at := 0; at < steps; at++ {
				tr, err := runTrial(opts.Mode, seed, f, at, steps)
				if err != nil {
					return rep, fmt.Errorf("chaos: trial %s seed=%d fault=%s step=%d: %w",
						opts.Mode, seed, f, at, err)
				}
				if tr.skipped {
					rep.Skipped++
					continue
				}
				rep.Trials++
				rep.AckedWrites += tr.acked
				rep.StaleRejects += tr.staleRejects
				rep.Violations = append(rep.Violations, tr.vio...)
			}
		}
	}
	return rep, nil
}
