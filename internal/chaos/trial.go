package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"draid"
)

const (
	chunkSize     = 16 << 10
	regionStripes = 3
	opDeadline    = 40 * time.Millisecond
	// destageTick is the write-back idle-destage interval for trials. It must
	// exceed a worst-case failing destage (backfill read + write, each
	// OpDeadline × retries) or retries of stripes stranded by a partition
	// overlap and the sim engine never quiesces.
	destageTick = 500 * time.Millisecond
)

// span is a half-open byte range [off, off+n) of the work region.
type span struct{ off, n int64 }

// trialResult is what one trial reports back to the sweep.
type trialResult struct {
	skipped      bool
	acked        int
	staleRejects int64
	vio          []Violation
}

// trialState carries one trial: the array under test, the byte-accurate
// model of every acknowledged write, and the ranges left ambiguous by
// failed writes (a torn write-through may have landed on any subset of
// members — those bytes are undefined until rewritten).
type trialState struct {
	trialResult
	mode  Mode
	seed  int64
	fault Fault
	at    int

	a          *draid.Array
	rng        *rand.Rand
	model      []byte
	region     int64
	stripeData int64
	ambiguous  []span
	member       int
	member2      int
	zombieDone   chan error
	zombieStripe int64
	skipRest     bool
	wseq         int
}

// trialConfig builds the array configuration for one (mode, seed) pair. The
// geometry is deliberately small — three workload stripes over 16 KiB
// chunks — so a full sweep stays cheap while every protocol path (staging,
// destage, parity reduce, degraded read, rebuild) still engages.
func trialConfig(mode Mode, seed int64) draid.Config {
	cfg := draid.Config{
		Level:         draid.Raid5,
		ChunkSize:     chunkSize,
		DriveCapacity: 1 << 20,
		Seed:          seed,
		EpochFencing:  true,
		MaxRetries:    2,
		OpDeadline:    opDeadline,
	}
	if mode.Backend == draid.BackendRealtime {
		cfg.Backend = draid.BackendRealtime
		cfg.Realtime.TCP = mode.TCP
	}
	if mode.Declustered {
		cfg.Drives, cfg.Declustered, cfg.ClusterDrives = 4, true, 6
	} else {
		cfg.Drives = 5
	}
	if mode.WriteBack {
		cfg.WriteBack, cfg.StageMB = true, 1
		cfg.DestageIntervalMs = int(destageTick / time.Millisecond)
	}
	if !mode.Teeth {
		// The zombie's lease is long enough to survive the takeover window:
		// stand-down must come from the epoch rejection, not the watchdog.
		// Teeth mode drops the lease entirely — a lease expiry would fence
		// the zombie and mask the corruption the sweep must catch.
		cfg.HostLease = 8 * opDeadline
	}
	return cfg
}

// stripeDataBytes is the virtual bytes one stripe carries under cfg.
func stripeDataBytes(cfg draid.Config) int64 {
	data := int64(cfg.Drives - 1) // Raid5
	if cfg.Level == draid.Raid6 {
		data = int64(cfg.Drives - 2)
	}
	return data * cfg.ChunkSize
}

// runTrial plays one complete schedule: prime, workload with the fault
// placed before step `at`, heal, verify.
func runTrial(mode Mode, seed int64, fault Fault, at, steps int) (trialResult, error) {
	cfg := trialConfig(mode, seed)
	a, err := draid.New(cfg)
	if err != nil {
		return trialResult{}, err
	}
	defer a.Close()
	if mode.Teeth {
		a.Inject().SetEpochChecks(false)
	}
	t := &trialState{
		mode: mode, seed: seed, fault: fault, at: at,
		a:          a,
		stripeData: stripeDataBytes(cfg),
	}
	t.region = regionStripes * t.stripeData
	t.model = make([]byte, t.region)
	t.rng = rand.New(rand.NewSource(seed<<16 ^ int64(fault)<<8 ^ int64(at)))

	// Prime the whole region so the model covers every byte from the start.
	base := t.fill(t.region)
	if err := a.WriteSync(0, base); err != nil {
		return t.trialResult, fmt.Errorf("priming write: %w", err)
	}
	copy(t.model, base)
	t.acked++

	for i := 0; i < steps; i++ {
		if i == at {
			if err := t.inject(); err != nil {
				if errors.Is(err, draid.ErrUnsupported) {
					t.skipped = true
					return t.trialResult, nil
				}
				return t.trialResult, err
			}
		}
		if t.skipRest {
			continue
		}
		t.execStep(i)
	}
	t.heal()
	t.verify()
	return t.trialResult, nil
}

func (t *trialState) violate(format string, args ...any) {
	t.vio = append(t.vio, Violation{
		Mode: t.mode, Seed: t.seed, Fault: t.fault, Step: t.at,
		Detail: fmt.Sprintf(format, args...),
	})
}

// fill returns a deterministic, position-dependent pattern unique to this
// write — a misplaced or stale application never matches the model.
func (t *trialState) fill(n int64) []byte {
	t.wseq++
	b := make([]byte, n)
	x := byte(t.seed)*31 + byte(t.wseq)*17
	for i := range b {
		b[i] = x + byte(i)*7
	}
	return b
}

// markAmbiguous records a failed write's range: a torn write-through may
// have landed on any subset of members, so those bytes are undefined until
// the post-heal repair rewrites them.
func (t *trialState) markAmbiguous(off, n int64) {
	t.ambiguous = append(t.ambiguous, span{off, n})
}

func (t *trialState) inAmbiguous(p int64) bool {
	for _, s := range t.ambiguous {
		if p >= s.off && p < s.off+s.n {
			return true
		}
	}
	return false
}

// ambiguousStripes lists the stripes any ambiguous span touches.
func (t *trialState) ambiguousStripes() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, s := range t.ambiguous {
		for st := s.off / t.stripeData; st*t.stripeData < s.off+s.n; st++ {
			if !seen[st] {
				seen[st] = true
				out = append(out, st)
			}
		}
	}
	return out
}

// write runs one synchronous write and folds the outcome into the model:
// acknowledged writes must survive everything that follows; failed writes
// leave their range ambiguous.
func (t *trialState) write(off int64, data []byte) {
	if err := t.a.WriteSync(off, data); err == nil {
		copy(t.model[off:], data)
		t.acked++
	} else {
		t.markAmbiguous(off, int64(len(data)))
	}
}

// compare checks read bytes against the model, skipping ambiguous ranges.
func (t *trialState) compare(off int64, got []byte, what string) {
	for i := range got {
		p := off + int64(i)
		if t.inAmbiguous(p) {
			continue
		}
		if got[i] != t.model[p] {
			t.violate("%s: byte %d = %#x, model %#x (acked write lost or stale write applied)",
				what, p, got[i], t.model[p])
			return
		}
	}
}

// execStep runs one workload step. The cycle mixes sub-stripe writes (the
// staged path under write-back), full-stripe writes (always write-through),
// reads, and flushes.
func (t *trialState) execStep(i int) {
	switch i % 4 {
	case 0: // sub-stripe write
		n := int64(2+t.rng.Intn(11)) << 10
		off := t.rng.Int63n(t.region - n + 1)
		t.write(off, t.fill(n))
	case 1: // full-stripe write
		st := int64(t.rng.Intn(regionStripes))
		t.write(st*t.stripeData, t.fill(t.stripeData))
	case 2: // read
		n := int64(4+t.rng.Intn(29)) << 10
		if n > t.region {
			n = t.region
		}
		off := t.rng.Int63n(t.region - n + 1)
		if got, err := t.a.ReadSync(off, n); err == nil {
			// Mid-fault reads may fail (degraded past budget); only the
			// post-heal read must succeed. A read that does answer must
			// still answer correctly.
			t.compare(off, got, "mid-workload read")
		}
	case 3: // flush (a read when nothing stages)
		if t.mode.WriteBack {
			_ = t.a.Flush() // may fail mid-fault; acked data stays staged
		} else if _, err := t.a.ReadSync(0, t.stripeData); err == nil {
		}
	}
}

// inject places the trial's fault. Returns draid.ErrUnsupported-wrapped
// errors for the sweep to skip; invariant problems go through violate.
func (t *trialState) inject() error {
	inj := t.a.Inject()
	n := t.a.DriveCount()
	t.member = t.rng.Intn(n)
	t.member2 = (t.member + 1 + t.rng.Intn(n-1)) % n
	switch t.fault {
	case FaultIsolateSeize:
		if err := inj.IsolateHost(); err != nil {
			return err
		}
		if t.mode.WriteBack {
			// A sub-stripe write acknowledged from the stage while the
			// fabric is cut: once acked it must survive the takeover.
			n := int64(6) << 10
			off := t.rng.Int63n(t.region - n + 1)
			t.write(off, t.fill(n))
			// Fully cover a stripe through the staged path: two half-stripe
			// writes ack from the stage, the coverage triggers an immediate
			// destage that fails against the cut fabric, and the data stays
			// staged in the zombie. After the takeover the zombie's destage
			// tick replays it as pure full-stripe writes (no backfill reads
			// to starve) at the old epoch — the stale-destage capsule the
			// fence must bounce. verify overwrites this stripe at the new
			// epoch and then lets the tick fire.
			t.zombieStripe = regionStripes - 1
			half := t.stripeData / 2
			t.write(t.zombieStripe*t.stripeData, t.fill(half))
			t.write(t.zombieStripe*t.stripeData+half, t.fill(half))
		}
		// An in-flight write-through the zombie keeps retrying on its old
		// epoch after the replacement seizes the volume — the capsule the
		// membership layer exists to reject.
		off := t.stripeData
		data := t.fill(t.stripeData)
		t.markAmbiguous(off, t.stripeData)
		done := make(chan error, 1)
		t.zombieDone = done
		t.a.Write(off, data, func(err error) { done <- err })
		t.skipRest = true
	case FaultPartitionMember:
		return inj.PartitionHost(t.member, draid.PartitionBoth)
	case FaultPartitionMemberTx:
		return inj.PartitionHost(t.member, draid.PartitionAToB)
	case FaultPartitionPeers:
		return inj.PartitionPeers(t.member, t.member2, draid.PartitionBoth)
	case FaultCrashFailover:
		before := t.a.HostEpoch()
		if _, err := t.a.FailoverHost(); err != nil {
			t.violate("crash failover: %v", err)
			return nil
		}
		if got := t.a.HostEpoch(); got <= before {
			t.violate("failover did not advance the epoch: %d -> %d", before, got)
		}
	case FaultDelay:
		return inj.SlowDrive(t.member, draid.SlowProfile{Kind: draid.SlowConstant, Factor: 8})
	case FaultDuplicate:
		return inj.DuplicateNext(t.member)
	}
	return nil
}

// heal reverses the fault and, for the isolation schedule, performs the
// takeover: a replacement seizes the volume at a higher epoch while the
// predecessor is still live.
func (t *trialState) heal() {
	inj := t.a.Inject()
	switch t.fault {
	case FaultIsolateSeize:
		if err := inj.HealHostIsolation(); err != nil {
			t.violate("heal isolation: %v", err)
			return
		}
		before := t.a.HostEpoch()
		if _, err := t.a.SeizeHost(); err != nil {
			t.violate("seize after heal: %v", err)
			return
		}
		if got := t.a.HostEpoch(); got <= before {
			t.violate("seize did not advance the epoch: %d -> %d", before, got)
		}
	case FaultPartitionMember:
		if err := inj.HealHostPartition(t.member, draid.PartitionBoth); err != nil {
			t.violate("heal member partition: %v", err)
		}
	case FaultPartitionMemberTx:
		if err := inj.HealHostPartition(t.member, draid.PartitionAToB); err != nil {
			t.violate("heal member partition: %v", err)
		}
	case FaultPartitionPeers:
		if err := inj.HealPeerPartition(t.member, t.member2, draid.PartitionBoth); err != nil {
			t.violate("heal peer partition: %v", err)
		}
	case FaultDelay:
		if err := inj.SlowDrive(t.member, draid.SlowProfile{}); err != nil {
			t.violate("restore slow member: %v", err)
		}
	}
}

// verify restores redundancy, repairs ambiguous ranges, lets stale retries
// land or exhaust, and then checks the invariants: every acked byte present,
// scrub clean, second scrub repairs nothing.
func (t *trialState) verify() {
	// Members struck out by op timeouts during the fault: within the parity
	// budget their chunks may hold writes they missed (applied degraded), so
	// rebuild them from the survivors. Past the budget nothing can have been
	// acknowledged degraded during the cut — the drives return as they were.
	failed := t.a.FailedDrives()
	budget := 1 // Raid5
	if len(failed) > 0 && len(failed) <= budget {
		for _, d := range failed {
			if err := t.a.RebuildDrive(d, 0); err != nil {
				t.violate("post-heal rebuild of member %d: %v", d, err)
				return
			}
		}
	} else {
		for _, d := range failed {
			t.a.RecoverDrive(d)
		}
	}
	// Repair: rewrite every stripe an ambiguous (failed-write) range touches
	// as a fresh full stripe — data and parity both become defined again.
	for _, st := range t.ambiguousStripes() {
		data := t.fill(t.stripeData)
		if err := t.a.WriteSync(st*t.stripeData, data); err != nil {
			t.violate("post-heal repair write at stripe %d: %v", st, err)
			return
		}
		copy(t.model[st*t.stripeData:], data)
		t.acked++
	}
	t.ambiguous = nil
	if t.fault == FaultIsolateSeize && t.mode.WriteBack {
		// The zombie's stage still holds the fully covered stripe from the
		// isolation window. Overwrite it with fresh data at the new epoch,
		// then give the zombie's destage tick time to replay its stale copy:
		// with enforcement on the replay bounces off the servers; in teeth
		// mode it lands — and the read below must catch the corruption.
		data := t.fill(t.stripeData)
		if err := t.a.WriteSync(t.zombieStripe*t.stripeData, data); err != nil {
			t.violate("overwrite of zombie-staged stripe: %v", err)
			return
		}
		copy(t.model[t.zombieStripe*t.stripeData:], data)
		t.acked++
		t.a.RunFor(2*destageTick + opDeadline)
	}
	// Settle: the zombie's stale-epoch retries fire inside this window and
	// must bounce off the servers (or, in teeth mode, corrupt — which the
	// checks below then catch).
	t.a.RunFor(5 * opDeadline)
	if t.zombieDone != nil {
		select {
		case <-t.zombieDone: // resolved (rejection or timeout); either way ambiguous-then-repaired
		default:
		}
	}
	if t.mode.WriteBack {
		if err := t.a.Flush(); err != nil {
			t.violate("post-heal flush: %v", err)
			return
		}
	}
	s1, err := t.a.ScrubNow()
	if err != nil {
		t.violate("post-heal scrub: %v", err)
		return
	}
	if s1.Errors > 0 {
		t.violate("post-heal scrub could not verify %d stripes", s1.Errors)
	}
	got, err := t.a.ReadSync(0, t.region)
	if err != nil {
		t.violate("post-heal read: %v", err)
		return
	}
	t.compare(0, got, "post-heal read")
	s2, err := t.a.ScrubNow()
	if err != nil {
		t.violate("second scrub: %v", err)
		return
	}
	if d := s2.Errors - s1.Errors; d > 0 {
		t.violate("scrub errors persist after repair: %d", d)
	}
	if d := s2.ParityRepairs - s1.ParityRepairs; d > 0 {
		t.violate("parity still diverging on second scrub: %d repairs", d)
	}
	t.staleRejects = t.a.StaleRejects()
}
