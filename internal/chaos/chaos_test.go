package chaos

import (
	"testing"

	"draid"
)

// TestSimPartitionSweep is the acceptance sweep: eight seeds, every
// partition-shaped fault placed before every workload step, across fixed and
// declustered layouts with write-back on and off. Every trial must verify
// every acknowledged write, scrub clean, and converge; the isolate+seize
// schedules must show the fence actually engaging (stale rejects).
func TestSimPartitionSweep(t *testing.T) {
	for _, mode := range []Mode{
		{},
		{WriteBack: true},
		{Declustered: true},
		{Declustered: true, WriteBack: true},
	} {
		t.Run(mode.String(), func(t *testing.T) {
			rep, err := Run(Options{Mode: mode, Faults: PartitionFaults()})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep.Summary())
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			if rep.Skipped > 0 {
				t.Errorf("%d trials skipped on the sim backend; all injections should be supported", rep.Skipped)
			}
			if rep.AckedWrites == 0 {
				t.Error("sweep acknowledged no writes; the workload never engaged")
			}
			if rep.StaleRejects == 0 {
				t.Error("no stale-epoch rejects recorded; the zombie schedules never exercised the fence")
			}
		})
	}
}

// TestSimAllFaults covers the remaining fault kinds — crash+failover, grey
// delay, capsule duplication — on a smaller seed set.
func TestSimAllFaults(t *testing.T) {
	for _, mode := range []Mode{{}, {WriteBack: true}} {
		t.Run(mode.String(), func(t *testing.T) {
			rep, err := Run(Options{Mode: mode, Seeds: []int64{1, 2, 3}})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep.Summary())
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestTeethCatchStaleDestage proves the harness has teeth: with the servers'
// epoch enforcement injected away (and no lease to fence the zombie), the
// superseded controller's destage tick replays its staged stripe over data
// the new controller wrote — and every trial must detect the corruption. The
// enforcement-on twin of the same schedule must be clean: the only
// difference is the fence.
func TestTeethCatchStaleDestage(t *testing.T) {
	opts := Options{
		Mode:   Mode{WriteBack: true, Teeth: true},
		Faults: []Fault{FaultIsolateSeize},
	}
	teeth, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("teeth: %s", teeth.Summary())
	if teeth.Clean() {
		t.Fatal("epoch enforcement disabled but the sweep reported clean: the harness cannot see stale-destage corruption")
	}
	if len(teeth.Violations) < teeth.Trials {
		t.Errorf("only %d/%d teeth trials caught the stale destage", len(teeth.Violations), teeth.Trials)
	}
	opts.Mode.Teeth = false
	fenced, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fenced: %s", fenced.Summary())
	for _, v := range fenced.Violations {
		t.Errorf("violation with enforcement on: %s", v)
	}
	if fenced.StaleRejects == 0 {
		t.Error("enforcement on but no stale rejects: the zombie never hit the fence")
	}
}

// TestRealtimeChanSweep replays a bounded schedule set against the realtime
// event-loop backend: same protocol stack, wall clocks instead of virtual
// time.
func TestRealtimeChanSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("realtime sweep sleeps on wall clocks")
	}
	rep, err := Run(Options{
		Mode:  Mode{Backend: draid.BackendRealtime, WriteBack: true},
		Seeds: []int64{1, 2},
		Steps: 3, Faults: PartitionFaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.StaleRejects == 0 {
		t.Error("no stale rejects on the realtime backend")
	}
}

// TestRealtimeTCPSweep runs a tiny schedule set over real loopback sockets.
func TestRealtimeTCPSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("realtime sweep sleeps on wall clocks")
	}
	rep, err := Run(Options{
		Mode:  Mode{Backend: draid.BackendRealtime, TCP: true},
		Seeds: []int64{1},
		Steps: 2, Faults: []Fault{FaultIsolateSeize, FaultPartitionMember},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}
