package ycsb

import (
	"testing"
)

func TestWorkloadMixes(t *testing.T) {
	for name, w := range Workloads {
		g := NewGenerator(w, 10000, 1)
		counts := map[OpKind]int{}
		for i := 0; i < 20000; i++ {
			counts[g.Next().Kind]++
		}
		frac := func(k OpKind) float64 { return float64(counts[k]) / 20000 }
		check := func(k OpKind, want float64) {
			if got := frac(k); got < want-0.02 || got > want+0.02 {
				t.Errorf("%s: %v fraction = %.3f, want %.2f", name, k, got, want)
			}
		}
		check(OpRead, w.ReadProp)
		check(OpUpdate, w.UpdateProp)
		check(OpInsert, w.InsertProp)
		check(OpScan, w.ScanProp)
		check(OpReadModifyWrite, w.RMWProp)
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	g := NewGenerator(WorkloadC, 100000, 2)
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		counts[g.Next().Key]++
	}
	// Hottest key should take far more than uniform share (0.5 per key).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 500 {
		t.Fatalf("hottest key count = %d, zipfian should be heavily skewed", max)
	}
	// But hot keys must be scrambled across the keyspace, not clustered at 0.
	lowRange := 0
	for k, c := range counts {
		if k < 1000 {
			lowRange += c
		}
	}
	if float64(lowRange)/50000 > 0.5 {
		t.Fatalf("scrambling failed: %.2f of traffic in first 1%% of keyspace", float64(lowRange)/50000)
	}
}

func TestUniformIsFlat(t *testing.T) {
	g := NewGenerator(WorkloadC.Uniform(), 1000, 3)
	counts := map[uint64]int{}
	for i := 0; i < 100000; i++ {
		counts[g.Next().Key]++
	}
	for k, c := range counts {
		if c > 400 {
			t.Fatalf("key %d drawn %d times; uniform should average 100", k, c)
		}
	}
}

func TestLatestFavorsRecentKeys(t *testing.T) {
	g := NewGenerator(WorkloadD, 10000, 4)
	recent := 0
	total := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		total++
		if op.Key >= g.Records()-100 {
			recent++
		}
	}
	if float64(recent)/float64(total) < 0.3 {
		t.Fatalf("only %.2f of reads hit the 100 newest records", float64(recent)/float64(total))
	}
}

func TestInsertsGrowKeyspace(t *testing.T) {
	g := NewGenerator(WorkloadD, 1000, 5)
	before := g.Records()
	inserts := uint64(0)
	for i := 0; i < 10000; i++ {
		if op := g.Next(); op.Kind == OpInsert {
			if op.Key != before+inserts {
				t.Fatalf("insert key %d not sequential (want %d)", op.Key, before+inserts)
			}
			inserts++
		}
	}
	if g.Records() != before+inserts {
		t.Fatalf("records = %d, want %d", g.Records(), before+inserts)
	}
	if inserts == 0 {
		t.Fatal("no inserts generated for workload D")
	}
}

func TestKeysInRange(t *testing.T) {
	for _, w := range []Workload{WorkloadA, WorkloadC.Uniform(), WorkloadD} {
		g := NewGenerator(w, 5000, 6)
		for i := 0; i < 10000; i++ {
			op := g.Next()
			if op.Key >= g.Records() {
				t.Fatalf("%s: key %d out of range %d", w.Name, op.Key, g.Records())
			}
		}
	}
}

func TestScanLens(t *testing.T) {
	g := NewGenerator(WorkloadE, 1000, 7)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > 100) {
			t.Fatalf("scan len %d out of [1,100]", op.ScanLen)
		}
	}
}

func TestBadWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGenerator(Workload{Name: "bad", ReadProp: 0.5}, 100, 1)
}

func TestEmptyKeyspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGenerator(WorkloadA, 0, 1)
}

func TestOpKindStrings(t *testing.T) {
	for _, k := range []OpKind{OpRead, OpUpdate, OpInsert, OpScan, OpReadModifyWrite, OpKind(99)} {
		if k.String() == "" {
			t.Fatal("empty op kind string")
		}
	}
}
