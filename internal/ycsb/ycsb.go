// Package ycsb implements the YCSB core-workload generators used by the
// paper's application evaluation (§9.6): workloads A-F with zipfian,
// uniform, and latest request distributions over a keyspace of records.
package ycsb

import (
	"fmt"
	"math/rand"
)

// OpKind is a YCSB operation type.
type OpKind int

// YCSB operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String names the op.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Workload is a YCSB operation mix.
type Workload struct {
	Name         string
	ReadProp     float64
	UpdateProp   float64
	InsertProp   float64
	ScanProp     float64
	RMWProp      float64
	Distribution string // "zipfian", "uniform", "latest"
}

// The standard core workloads.
var (
	WorkloadA = Workload{Name: "YCSB-A", ReadProp: 0.5, UpdateProp: 0.5, Distribution: "zipfian"}
	WorkloadB = Workload{Name: "YCSB-B", ReadProp: 0.95, UpdateProp: 0.05, Distribution: "zipfian"}
	WorkloadC = Workload{Name: "YCSB-C", ReadProp: 1.0, Distribution: "zipfian"}
	WorkloadD = Workload{Name: "YCSB-D", ReadProp: 0.95, InsertProp: 0.05, Distribution: "latest"}
	WorkloadE = Workload{Name: "YCSB-E", ScanProp: 0.95, InsertProp: 0.05, Distribution: "zipfian"}
	WorkloadF = Workload{Name: "YCSB-F", ReadProp: 0.5, RMWProp: 0.5, Distribution: "zipfian"}
)

// Workloads maps short names to workloads.
var Workloads = map[string]Workload{
	"a": WorkloadA, "b": WorkloadB, "c": WorkloadC,
	"d": WorkloadD, "e": WorkloadE, "f": WorkloadF,
}

// Uniform makes a copy of w with a uniform request distribution (the paper
// tunes the object-store runs to uniform, §9.6).
func (w Workload) Uniform() Workload {
	w.Distribution = "uniform"
	return w
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
	// ScanLen is the number of records for OpScan.
	ScanLen int
}

// Generator produces operations for a workload.
type Generator struct {
	w       Workload
	rng     *rand.Rand
	zipf    *rand.Zipf
	records uint64 // current record count (grows with inserts)
}

// NewGenerator creates a generator over an initial keyspace of records.
func NewGenerator(w Workload, records uint64, seed int64) *Generator {
	if records == 0 {
		panic("ycsb: empty keyspace")
	}
	total := w.ReadProp + w.UpdateProp + w.InsertProp + w.ScanProp + w.RMWProp
	if total < 0.999 || total > 1.001 {
		panic(fmt.Sprintf("ycsb: %s proportions sum to %v", w.Name, total))
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{w: w, rng: rng, records: records}
	// s=1.01 approximates YCSB's 0.99 zipfian constant within rand.Zipf's
	// s>1 constraint.
	g.zipf = rand.NewZipf(rng, 1.01, 1, records-1)
	return g
}

// Records returns the current record count.
func (g *Generator) Records() uint64 { return g.records }

// nextKey draws a key per the request distribution.
func (g *Generator) nextKey() uint64 {
	switch g.w.Distribution {
	case "uniform":
		return uint64(g.rng.Int63n(int64(g.records)))
	case "latest":
		// Most recent records are hottest: offset a zipfian draw from the
		// tail of the keyspace.
		d := g.zipf.Uint64()
		if d >= g.records {
			d = g.records - 1
		}
		return g.records - 1 - d
	default: // zipfian over the whole keyspace (scrambled)
		raw := g.zipf.Uint64()
		// FNV-style scramble spreads hot keys across the keyspace, as
		// YCSB's scrambled-zipfian does.
		h := raw*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
		return h % g.records
	}
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	x := g.rng.Float64()
	w := g.w
	switch {
	case x < w.ReadProp:
		return Op{Kind: OpRead, Key: g.nextKey()}
	case x < w.ReadProp+w.UpdateProp:
		return Op{Kind: OpUpdate, Key: g.nextKey()}
	case x < w.ReadProp+w.UpdateProp+w.InsertProp:
		key := g.records
		g.records++
		return Op{Kind: OpInsert, Key: key}
	case x < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
		return Op{Kind: OpScan, Key: g.nextKey(), ScanLen: 1 + g.rng.Intn(100)}
	default:
		return Op{Kind: OpReadModifyWrite, Key: g.nextKey()}
	}
}
