// Package blobfs is a minimal user-space extent filesystem over a block
// device — the stand-in for SPDK's BlobFS that the paper runs RocksDB on
// (§9.6). Files are append-only sequences of extents; file metadata lives in
// memory and is made durable through a small journal region at the head of
// the device (the "super-block" traffic the paper observes BlobFS
// generating).
package blobfs

import (
	"errors"
	"fmt"
	"sort"

	"draid/internal/blockdev"
	"draid/internal/parity"
	"draid/internal/sim"
)

// Errors returned by the filesystem.
var (
	ErrExists   = errors.New("blobfs: file exists")
	ErrNotFound = errors.New("blobfs: file not found")
	ErrNoSpace  = errors.New("blobfs: out of space")
)

const (
	journalSlot  = 4 << 10 // one journal write
	journalSlots = 255     // journal region = 1 MB minus superblock
	dataStart    = 1 << 20 // data region starts after the journal
)

type extent struct {
	off int64 // device offset
	len int64
}

// File is an append-only file.
type File struct {
	fs      *FS
	name    string
	extents []extent
	size    int64
}

// FS is the filesystem.
type FS struct {
	eng     *sim.Engine
	dev     blockdev.Device
	files   map[string]*File
	next    int64 // bump allocator
	free    []extent
	jSlot   int64
	jWrites int64
}

// New formats a filesystem over the device.
func New(eng *sim.Engine, dev blockdev.Device) *FS {
	if dev.Size() <= dataStart {
		panic(fmt.Sprintf("blobfs: device %d bytes too small", dev.Size()))
	}
	return &FS{eng: eng, dev: dev, files: make(map[string]*File), next: dataStart}
}

// journal persists a metadata mutation: one 4 KB write into the round-robin
// journal region. All metadata-changing operations pay this I/O.
func (fs *FS) journal(cb func(error)) {
	off := journalSlot * (1 + fs.jSlot%journalSlots)
	fs.jSlot++
	fs.jWrites++
	fs.dev.Write(off, parity.Sized(journalSlot), cb)
}

// JournalWrites reports metadata journal I/O count (superblock traffic).
func (fs *FS) JournalWrites() int64 { return fs.jWrites }

// Create makes an empty file.
func (fs *FS) Create(name string, cb func(*File, error)) {
	if _, dup := fs.files[name]; dup {
		fs.eng.Defer(func() { cb(nil, ErrExists) })
		return
	}
	f := &File{fs: fs, name: name}
	fs.files[name] = f
	fs.journal(func(err error) { cb(f, err) })
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return f, nil
}

// Delete removes a file and frees its extents.
func (fs *FS) Delete(name string, cb func(error)) {
	f, ok := fs.files[name]
	if !ok {
		fs.eng.Defer(func() { cb(ErrNotFound) })
		return
	}
	delete(fs.files, name)
	fs.free = append(fs.free, f.extents...)
	fs.coalesce()
	fs.journal(cb)
}

// List returns the file names, sorted.
func (fs *FS) List() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (fs *FS) coalesce() {
	if len(fs.free) < 2 {
		return
	}
	sort.Slice(fs.free, func(i, j int) bool { return fs.free[i].off < fs.free[j].off })
	out := fs.free[:1]
	for _, e := range fs.free[1:] {
		last := &out[len(out)-1]
		if last.off+last.len == e.off {
			last.len += e.len
		} else {
			out = append(out, e)
		}
	}
	fs.free = out
}

// allocate finds space for n bytes: first-fit from the free list, else bump.
func (fs *FS) allocate(n int64) (extent, error) {
	for i, e := range fs.free {
		if e.len >= n {
			got := extent{off: e.off, len: n}
			if e.len == n {
				fs.free = append(fs.free[:i], fs.free[i+1:]...)
			} else {
				fs.free[i] = extent{off: e.off + n, len: e.len - n}
			}
			return got, nil
		}
	}
	if fs.next+n > fs.dev.Size() {
		return extent{}, ErrNoSpace
	}
	got := extent{off: fs.next, len: n}
	fs.next += n
	return got, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file length in bytes.
func (f *File) Size() int64 { return f.size }

// Append writes data at the end of the file: allocate an extent, write the
// payload, journal the metadata.
func (f *File) Append(data parity.Buffer, cb func(error)) {
	n := int64(data.Len())
	if n == 0 {
		f.fs.eng.Defer(func() { cb(nil) })
		return
	}
	ext, err := f.fs.allocate(n)
	if err != nil {
		f.fs.eng.Defer(func() { cb(err) })
		return
	}
	f.fs.dev.Write(ext.off, data, func(err error) {
		if err != nil {
			f.fs.free = append(f.fs.free, ext)
			cb(err)
			return
		}
		f.extents = append(f.extents, ext)
		f.size += n
		f.fs.journal(cb)
	})
}

// ReadAt reads n bytes at file offset off, spanning extents as needed.
func (f *File) ReadAt(off, n int64, cb func(parity.Buffer, error)) {
	if err := blockdev.CheckRange(off, n, f.size); err != nil {
		f.fs.eng.Defer(func() { cb(parity.Buffer{}, err) })
		return
	}
	if n == 0 {
		f.fs.eng.Defer(func() { cb(parity.Alloc(0), nil) })
		return
	}
	type span struct {
		devOff, len, outOff int64
	}
	var spans []span
	pos := int64(0)
	for _, e := range f.extents {
		if off+n <= pos {
			break
		}
		if pos+e.len <= off {
			pos += e.len
			continue
		}
		lo := max64(off, pos)
		hi := min64(off+n, pos+e.len)
		spans = append(spans, span{devOff: e.off + (lo - pos), len: hi - lo, outOff: lo - off})
		pos += e.len
	}
	out := parity.Alloc(int(n))
	elided := false
	pending := len(spans)
	var firstErr error
	for _, sp := range spans {
		sp := sp
		f.fs.dev.Read(sp.devOff, sp.len, func(b parity.Buffer, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if b.Elided() {
				elided = true
			} else if err == nil {
				out.CopyAt(int(sp.outOff), b)
			}
			pending--
			if pending == 0 {
				switch {
				case firstErr != nil:
					cb(parity.Buffer{}, firstErr)
				case elided:
					cb(parity.Sized(int(n)), nil)
				default:
					cb(out, nil)
				}
			}
		})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
