package blobfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"draid/internal/blockdev"
	"draid/internal/parity"
	"draid/internal/sim"
)

// Property: an arbitrary interleaving of creates, appends, deletes, and
// reads over several files behaves exactly like an in-memory shadow model.
func TestPropertyShadowModel(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		if len(opsRaw) > 80 {
			opsRaw = opsRaw[:80]
		}
		eng := sim.NewEngine(seed)
		dev := blockdev.NewMem(eng, 16<<20, sim.Microsecond)
		fs := New(eng, dev)
		rng := rand.New(rand.NewSource(seed))

		shadow := map[string][]byte{}
		ok := true
		for _, op := range opsRaw {
			name := fmt.Sprintf("f%d", rng.Intn(4))
			switch op % 4 {
			case 0: // create
				fs.Create(name, func(_ *File, err error) {
					_, exists := shadow[name]
					if (err == nil) == exists {
						ok = false
					}
					if err == nil {
						shadow[name] = []byte{}
					}
				})
			case 1: // append
				if _, exists := shadow[name]; !exists {
					continue
				}
				data := make([]byte, 1+rng.Intn(5000))
				rng.Read(data)
				file, err := fs.Open(name)
				if err != nil {
					ok = false
					continue
				}
				file.Append(parity.FromBytes(data), func(err error) {
					if err != nil {
						ok = false
						return
					}
					shadow[name] = append(shadow[name], data...)
				})
			case 2: // read a random range
				content, exists := shadow[name]
				if !exists {
					continue
				}
				file, err := fs.Open(name)
				if err != nil {
					ok = false
					continue
				}
				eng.Run() // settle pending appends so sizes agree
				content = shadow[name]
				if len(content) == 0 {
					continue
				}
				off := rng.Intn(len(content))
				n := 1 + rng.Intn(len(content)-off)
				file.ReadAt(int64(off), int64(n), func(b parity.Buffer, err error) {
					if err != nil || !bytes.Equal(b.Data(), content[off:off+n]) {
						ok = false
					}
				})
			case 3: // delete
				fs.Delete(name, func(err error) {
					_, exists := shadow[name]
					if (err == nil) != exists {
						ok = false
					}
					delete(shadow, name)
				})
			}
			eng.Run()
		}
		eng.Run()
		// Final verification of every live file.
		for name, content := range shadow {
			file, err := fs.Open(name)
			if err != nil || file.Size() != int64(len(content)) {
				return false
			}
			if len(content) == 0 {
				continue
			}
			file.ReadAt(0, int64(len(content)), func(b parity.Buffer, err error) {
				if err != nil || !bytes.Equal(b.Data(), content) {
					ok = false
				}
			})
			eng.Run()
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
