package blobfs

import (
	"bytes"
	"errors"
	"testing"

	"draid/internal/blockdev"
	"draid/internal/parity"
	"draid/internal/sim"
)

func newFS(t *testing.T) (*sim.Engine, *FS) {
	t.Helper()
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 8<<20, 5*sim.Microsecond)
	return eng, New(eng, dev)
}

func create(t *testing.T, eng *sim.Engine, fs *FS, name string) *File {
	t.Helper()
	var f *File
	fs.Create(name, func(file *File, err error) {
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		f = file
	})
	eng.Run()
	return f
}

func appendData(t *testing.T, eng *sim.Engine, f *File, data []byte) {
	t.Helper()
	err := errors.New("pending")
	f.Append(parity.FromBytes(data), func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("append: %v", err)
	}
}

func readAt(t *testing.T, eng *sim.Engine, f *File, off, n int64) []byte {
	t.Helper()
	var out []byte
	err := errors.New("pending")
	f.ReadAt(off, n, func(b parity.Buffer, e error) { err, out = e, b.Data() })
	eng.Run()
	if err != nil {
		t.Fatalf("readAt(%d,%d): %v", off, n, err)
	}
	return out
}

func TestCreateAppendRead(t *testing.T) {
	eng, fs := newFS(t)
	f := create(t, eng, fs, "wal")
	appendData(t, eng, f, []byte("hello "))
	appendData(t, eng, f, []byte("world"))
	if f.Size() != 11 {
		t.Fatalf("size = %d", f.Size())
	}
	if got := readAt(t, eng, f, 0, 11); string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	// Read spanning the extent boundary.
	if got := readAt(t, eng, f, 4, 4); string(got) != "o wo" {
		t.Fatalf("cross-extent read = %q", got)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	eng, fs := newFS(t)
	create(t, eng, fs, "a")
	var err error
	fs.Create("a", func(_ *File, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenAndList(t *testing.T) {
	eng, fs := newFS(t)
	create(t, eng, fs, "b")
	create(t, eng, fs, "a")
	if _, err := fs.Open("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("zz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	names := fs.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("list = %v", names)
	}
}

func TestDeleteFreesAndReuses(t *testing.T) {
	eng, fs := newFS(t)
	f := create(t, eng, fs, "big")
	appendData(t, eng, f, make([]byte, 1<<20))
	usedBefore := fs.next

	var err error
	fs.Delete("big", func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("big"); !errors.Is(err, ErrNotFound) {
		t.Fatal("file still present")
	}
	// A new allocation should reuse the freed extent, not bump further.
	g := create(t, eng, fs, "new")
	appendData(t, eng, g, make([]byte, 1<<20))
	if fs.next != usedBefore {
		t.Fatalf("allocator bumped to %d; should have reused freed extent", fs.next)
	}
}

func TestOutOfSpace(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, dataStart+4096, 0)
	fs := New(eng, dev)
	var f *File
	fs.Create("f", func(file *File, err error) { f = file })
	eng.Run()
	var err error
	f.Append(parity.Sized(8192), func(e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	eng, fs := newFS(t)
	f := create(t, eng, fs, "f")
	appendData(t, eng, f, []byte("abc"))
	var err error
	f.ReadAt(2, 5, func(_ parity.Buffer, e error) { err = e })
	eng.Run()
	if !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalWritesCounted(t *testing.T) {
	eng, fs := newFS(t)
	f := create(t, eng, fs, "f")
	before := fs.JournalWrites()
	appendData(t, eng, f, []byte("x"))
	if fs.JournalWrites() != before+1 {
		t.Fatalf("journal writes = %d, want %d", fs.JournalWrites(), before+1)
	}
}

func TestManyExtentsRead(t *testing.T) {
	eng, fs := newFS(t)
	f := create(t, eng, fs, "f")
	var whole []byte
	for i := 0; i < 10; i++ {
		part := bytes.Repeat([]byte{byte('a' + i)}, 100)
		appendData(t, eng, f, part)
		whole = append(whole, part...)
	}
	got := readAt(t, eng, f, 150, 700)
	if !bytes.Equal(got, whole[150:850]) {
		t.Fatal("multi-extent read mismatch")
	}
}

func TestCoalesceAdjacentFreeExtents(t *testing.T) {
	eng, fs := newFS(t)
	a := create(t, eng, fs, "a")
	b := create(t, eng, fs, "b")
	appendData(t, eng, a, make([]byte, 1000))
	appendData(t, eng, b, make([]byte, 1000))
	fs.Delete("a", func(error) {})
	eng.Run()
	fs.Delete("b", func(error) {})
	eng.Run()
	// Freed neighbours must coalesce so a 2000-byte allocation fits.
	c := create(t, eng, fs, "c")
	appendData(t, eng, c, make([]byte, 2000))
	if len(c.extents) != 1 || c.extents[0].off != dataStart {
		t.Fatalf("extents = %+v, want single reused extent at data start", c.extents)
	}
}
