package cluster

import (
	"testing"

	"draid/internal/core"
	"draid/internal/raid"
	"draid/internal/ssd"
)

func TestNewWiresEverything(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 5
	cl := New(spec)
	if len(cl.Targets) != 5 || len(cl.Drives) != 5 || len(cl.Cores) != 5 || len(cl.Servers) != 5 {
		t.Fatal("component counts wrong")
	}
	if cl.Fabric.Width() != 5 {
		t.Fatal("fabric width wrong")
	}
	if cl.HostNode.Name() != "host" {
		t.Fatal("host node missing")
	}
	if cl.DriveCapacity() != ssd.DefaultSpec().Capacity {
		t.Fatal("drive capacity wrong")
	}
}

func TestHeterogeneousNICs(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 4
	spec.TargetGbpsList = []float64{100, 25}
	cl := New(spec)
	rates := []int64{
		cl.Targets[0].NICs()[0].RateBps(),
		cl.Targets[1].NICs()[0].RateBps(),
		cl.Targets[2].NICs()[0].RateBps(),
		cl.Targets[3].NICs()[0].RateBps(),
	}
	want := []int64{100e9, 25e9, 100e9, 25e9}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("rates = %v, want alternating %v", rates, want)
		}
	}
}

func TestNewDRAIDDefaultsGeometry(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 6
	cl := New(spec)
	h := cl.NewDRAID(core.Config{})
	g := h.Geometry()
	if g.Level != raid.Raid5 || g.Width != 6 || g.ChunkSize != 512<<10 {
		t.Fatalf("geometry = %+v", g)
	}
	if h.Size() <= 0 {
		t.Fatal("size not derived from drives")
	}
}

func TestFailRecoverTarget(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 4
	cl := New(spec)
	cl.FailTarget(2)
	if !cl.Targets[2].Down() || !cl.Drives[2].Failed() {
		t.Fatal("FailTarget incomplete")
	}
	cl.RecoverTarget(2)
	if cl.Targets[2].Down() || cl.Drives[2].Failed() {
		t.Fatal("RecoverTarget incomplete")
	}
}

func TestElideFlowsToDrives(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 4
	spec.Elide = true
	cl := New(spec)
	if cl.Drives[0].StoresData() {
		t.Fatal("elide did not disable drive data storage")
	}
}

func TestTooFewTargetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Spec{Targets: 2})
}

func TestSpecValidateZeroDrives(t *testing.T) {
	if err := (Spec{Targets: 0}).Validate(); err == nil {
		t.Fatal("zero-target spec validated")
	}
	if err := (Spec{Targets: 8, Spares: -1}).Validate(); err == nil {
		t.Fatal("negative spare count validated")
	}
	if err := (Spec{Targets: 8}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// A hand-built cluster with no drives must refuse capacity queries with
	// a clear message instead of an index panic.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if s, ok := r.(string); !ok || s == "" {
			t.Fatalf("panic value %v is not a message", r)
		}
	}()
	(&Cluster{}).DriveCapacity()
}

func TestAddVolumeCarvesDisjointExtents(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 5
	cl := New(spec)
	geo := core.Config{Geometry: raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: 64 << 10}}
	half := cl.DriveCapacity() / 2
	v0, err := cl.AddVolume("a", half, geo)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := cl.AddVolume("b", 0, geo)
	if err != nil {
		t.Fatal(err)
	}
	if v0.ID != 0 || v1.ID != 1 {
		t.Fatalf("volume ids %d, %d", v0.ID, v1.ID)
	}
	if v0.Base != 0 || v0.Extent != half || v1.Base != half || v1.Extent != cl.DriveCapacity()-half {
		t.Fatalf("extents: v0=[%d,%d) v1=[%d,%d)", v0.Base, v0.Base+v0.Extent, v1.Base, v1.Base+v1.Extent)
	}
	if _, err := cl.AddVolume("c", 1<<20, geo); err == nil {
		t.Fatal("overcommitted volume accepted")
	}
	if got := cl.Volumes(); len(got) != 2 || cl.VolumeByID(0) != v0 || cl.VolumeByID(1) != v1 {
		t.Fatal("registry lookup broken")
	}
	if cl.VolumeByID(7) != nil {
		t.Fatal("unknown volume id should be nil")
	}
}
