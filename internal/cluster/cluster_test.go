package cluster

import (
	"testing"

	"draid/internal/core"
	"draid/internal/raid"
	"draid/internal/ssd"
)

func TestNewWiresEverything(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 5
	cl := New(spec)
	if len(cl.Targets) != 5 || len(cl.Drives) != 5 || len(cl.Cores) != 5 || len(cl.Servers) != 5 {
		t.Fatal("component counts wrong")
	}
	if cl.Fabric.Width() != 5 {
		t.Fatal("fabric width wrong")
	}
	if cl.HostNode.Name() != "host" {
		t.Fatal("host node missing")
	}
	if cl.DriveCapacity() != ssd.DefaultSpec().Capacity {
		t.Fatal("drive capacity wrong")
	}
}

func TestHeterogeneousNICs(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 4
	spec.TargetGbpsList = []float64{100, 25}
	cl := New(spec)
	rates := []int64{
		cl.Targets[0].NICs()[0].RateBps(),
		cl.Targets[1].NICs()[0].RateBps(),
		cl.Targets[2].NICs()[0].RateBps(),
		cl.Targets[3].NICs()[0].RateBps(),
	}
	want := []int64{100e9, 25e9, 100e9, 25e9}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("rates = %v, want alternating %v", rates, want)
		}
	}
}

func TestNewDRAIDDefaultsGeometry(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 6
	cl := New(spec)
	h := cl.NewDRAID(core.Config{})
	g := h.Geometry()
	if g.Level != raid.Raid5 || g.Width != 6 || g.ChunkSize != 512<<10 {
		t.Fatalf("geometry = %+v", g)
	}
	if h.Size() <= 0 {
		t.Fatal("size not derived from drives")
	}
}

func TestFailRecoverTarget(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 4
	cl := New(spec)
	cl.FailTarget(2)
	if !cl.Targets[2].Down() || !cl.Drives[2].Failed() {
		t.Fatal("FailTarget incomplete")
	}
	cl.RecoverTarget(2)
	if cl.Targets[2].Down() || cl.Drives[2].Failed() {
		t.Fatal("RecoverTarget incomplete")
	}
}

func TestElideFlowsToDrives(t *testing.T) {
	spec := DefaultSpec()
	spec.Targets = 4
	spec.Elide = true
	cl := New(spec)
	if cl.Drives[0].Spec().StoreData {
		t.Fatal("elide did not disable drive data storage")
	}
}

func TestTooFewTargetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Spec{Targets: 2})
}
