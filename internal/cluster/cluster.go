// Package cluster assembles simulated testbeds: a host plus N storage
// servers with NICs, drives, and per-server controller cores, wired through
// a Fabric — the software equivalent of the paper's CloudLab profile
// (c6525-100g: 100 Gbps ConnectX-5 NICs, enterprise NVMe SSDs, one
// controller core per drive).
package cluster

import (
	"errors"
	"fmt"

	"draid/internal/backend"
	"draid/internal/core"
	"draid/internal/cpu"
	"draid/internal/raid"
	"draid/internal/sim"
	"draid/internal/simnet"
	"draid/internal/ssd"
	"draid/internal/trace"
)

// ErrNoCapacity reports a volume allocation that exceeds the drives'
// remaining capacity: the per-drive allocation cursor has no room for the
// requested extent. Callers match it with errors.Is.
var ErrNoCapacity = errors.New("cluster: insufficient drive capacity")

// Spec describes a testbed.
type Spec struct {
	// Targets is the number of member bdevs (= array width).
	Targets int
	// BdevsPerServer co-locates this many member bdevs per physical
	// storage server, sharing one controller core and NIC (§5.5 resource
	// sharing). Default 1 (one drive per server, the paper's main setup).
	BdevsPerServer int
	// Spares adds this many hot-spare bdevs beyond Targets, each on its own
	// server with its own NIC, core, and drive. Spares are idle until a
	// rebuild manager (internal/repair) promotes one to replace a failed
	// member; they are not part of the array geometry.
	Spares int
	// HostGbps is the host NIC line rate (default 100).
	HostGbps float64
	// TargetGbps is the per-target NIC line rate (default 100). Use
	// TargetGbpsList for heterogeneous setups (Figure 17b).
	TargetGbps     float64
	TargetGbpsList []float64
	// Drive overrides the per-target drive model (default ssd.DefaultSpec).
	Drive *ssd.Spec
	// Net overrides fabric parameters (default simnet.DefaultConfig).
	Net *simnet.Config
	// Costs overrides the CPU cost model (default cpu.DefaultCosts).
	Costs *cpu.Costs
	// Pipelined controls the §5.3 server-side I/O pipeline (dRAID default
	// true; the ablation sets it false).
	Pipelined bool
	// Integrity enables per-chunk CRC32C checksums with verify-on-read on
	// every server (the T10 DIF stand-in). Requires data-storing drives, so
	// it cannot be combined with Elide.
	Integrity bool
	// BarrierReduce enables the §5.2 barrier ablation on the servers.
	BarrierReduce bool
	// Seed drives all randomness (default 1).
	Seed int64
	// Elide runs the data plane size-only (benchmark mode).
	Elide bool
	// Trace receives protocol events from all controllers when non-nil.
	Trace func(format string, args ...any)
	// Observe enables the structured virtual-time tracing subsystem: spans
	// from NICs, drives, and controllers plus periodic gauge samples.
	Observe bool
	// SampleEvery sets the gauge ticker period (default 50µs; needs Observe).
	SampleEvery sim.Duration
}

// DefaultSpec returns the paper's default testbed shape: 8 targets, 100 Gbps
// everywhere, the calibrated drive model.
func DefaultSpec() Spec {
	return Spec{Targets: 8, HostGbps: 100, TargetGbps: 100, Pipelined: true, Seed: 1}
}

// Cluster is an assembled testbed. Rt, Fab, Drives, and Servers are set on
// every backend; Eng, Net, Fabric, HostNode, Targets, and Cores are the
// concrete simulation parts and are nil on the real-time backend — code that
// needs them is simulation-only by construction.
type Cluster struct {
	Eng      *sim.Engine
	Net      *simnet.Network
	Fabric   *core.Fabric
	HostNode *simnet.Node
	Targets  []*simnet.Node
	Drives   []backend.Drive
	Cores    []*cpu.Core
	Servers  []*core.ServerController
	Costs    cpu.Costs
	// Rt is the backend runner the controllers are scheduled on; Fab is the
	// transport they exchange capsules over. On the simulation these wrap
	// Eng and Fabric.
	Rt  backend.Runner
	Fab backend.Transport
	// Spares arbitrates the cluster's hot spares among its volumes'
	// rebuild supervisors (first claim wins).
	Spares *core.SparePool
	// Tracer is the structured trace collector (nil unless Spec.Observe).
	Tracer *trace.Collector
	spec   Spec

	// volumes registers the virtual arrays sharing this cluster's drives,
	// indexed by VolumeID. nextBase is the per-drive allocation cursor:
	// volume extents are carved off each drive front to back.
	volumes  []*Volume
	nextBase int64
	// qos is the shared per-volume fair scheduler (nil until EnableQoS);
	// volumes registered afterwards are admitted through it.
	qos *core.QoS

	// epochs is the membership registry: the highest host epoch granted per
	// volume. The cluster is the (modelled) membership authority — grants
	// are serial and monotone, so a replacement host always outranks every
	// predecessor at the bdevs.
	epochs map[core.VolumeID]uint64

	// close releases backend resources (real-time loops, listeners, files);
	// nil on the simulation, which holds nothing to release.
	close func() error
}

// Volume is one virtual array registered on a shared cluster: its own
// geometry and host controller over an exclusive extent of every drive.
type Volume struct {
	ID   core.VolumeID
	Name string
	Host *core.HostController
	Cfg  core.Config
	// Base and Extent delimit the volume's slice [Base, Base+Extent) of
	// every member drive.
	Base   int64
	Extent int64
}

// Validate reports why a spec cannot be assembled (too few or negative
// targets yield zero-drive clusters whose accessors would otherwise
// index-panic).
func (s Spec) Validate() error {
	if s.Targets < 3 {
		return fmt.Errorf("cluster: need at least 3 targets, got %d", s.Targets)
	}
	if s.Spares < 0 {
		return fmt.Errorf("cluster: negative spare count %d", s.Spares)
	}
	if s.Integrity && s.Elide {
		return fmt.Errorf("cluster: Integrity requires stored data (incompatible with Elide)")
	}
	return nil
}

// New builds a cluster.
func New(spec Spec) *Cluster {
	if err := spec.Validate(); err != nil {
		panic(err.Error())
	}
	if spec.HostGbps == 0 {
		spec.HostGbps = 100
	}
	if spec.TargetGbps == 0 {
		spec.TargetGbps = 100
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	eng := sim.NewEngine(spec.Seed)
	netCfg := simnet.DefaultConfig()
	if spec.Net != nil {
		netCfg = *spec.Net
	}
	net := simnet.New(eng, netCfg)
	var tracer *trace.Collector
	if spec.Observe {
		tracer = trace.New(eng, trace.Options{SampleEvery: spec.SampleEvery})
		eng.SetObserver(tracer)
		net.SetTracer(tracer) // before nodes, so every NIC registers its track
	}
	costs := cpu.DefaultCosts()
	if spec.Costs != nil {
		costs = *spec.Costs
	}
	driveSpec := ssd.DefaultSpec()
	if spec.Drive != nil {
		driveSpec = *spec.Drive
	}
	if spec.Elide {
		driveSpec.StoreData = false
	}

	hostNode := net.NewNode("host")
	hostNode.AddNIC("nic0", spec.HostGbps)

	perServer := spec.BdevsPerServer
	if perServer <= 0 {
		perServer = 1
	}
	c := &Cluster{Eng: eng, Net: net, HostNode: hostNode, Costs: costs, Tracer: tracer, spec: spec,
		Rt: backend.SimRunner(eng)}
	var serverNode *simnet.Node
	var serverCore *cpu.Core
	for i := 0; i < spec.Targets; i++ {
		if i%perServer == 0 {
			serverNode = net.NewNode(fmt.Sprintf("server%d", i/perServer))
			gbps := spec.TargetGbps
			if spec.TargetGbpsList != nil {
				gbps = spec.TargetGbpsList[(i/perServer)%len(spec.TargetGbpsList)]
			}
			serverNode.AddNIC("nic0", gbps)
			serverCore = cpu.NewCore(eng)
			if tracer.Enabled() {
				node, core := serverNode, serverCore
				tracer.AddGauge(tracer.Track(node.Name(), "core"), node.Name()+" core busy",
					trace.UtilizationGauge(eng, core.BusyTotal))
			}
		}
		c.Targets = append(c.Targets, serverNode)
		drive := ssd.New(eng, driveSpec)
		if tracer.Enabled() {
			drive.SetTracer(tracer, tracer.Track(serverNode.Name(), fmt.Sprintf("bdev%d", i)))
		}
		c.Drives = append(c.Drives, drive)
		c.Cores = append(c.Cores, serverCore)
	}
	// Hot spares ride on the same fabric as extra targets past the array
	// width: the server-controller loop below gives each one a full bdev
	// stack, so a promoted spare serves I/O exactly like a member.
	for i := 0; i < spec.Spares; i++ {
		spareNode := net.NewNode(fmt.Sprintf("spare%d", i))
		spareNode.AddNIC("nic0", spec.TargetGbps)
		spareCore := cpu.NewCore(eng)
		if tracer.Enabled() {
			node, core := spareNode, spareCore
			tracer.AddGauge(tracer.Track(node.Name(), "core"), node.Name()+" core busy",
				trace.UtilizationGauge(eng, core.BusyTotal))
		}
		c.Targets = append(c.Targets, spareNode)
		drive := ssd.New(eng, driveSpec)
		if tracer.Enabled() {
			drive.SetTracer(tracer, tracer.Track(spareNode.Name(), fmt.Sprintf("bdev%d", spec.Targets+i)))
		}
		c.Drives = append(c.Drives, drive)
		c.Cores = append(c.Cores, spareCore)
	}
	c.Fabric = core.NewFabric(net, hostNode, c.Targets)
	c.Fab = c.Fabric
	for i := range c.Targets {
		scfg := core.ServerConfig{
			Costs:         costs,
			Pipelined:     spec.Pipelined,
			BarrierReduce: spec.BarrierReduce,
			Integrity:     spec.Integrity,
			Trace:         spec.Trace,
		}
		if tracer.Enabled() {
			scfg.Tracer = tracer
			scfg.TraceTrack = tracer.Track(c.Targets[i].Name(), fmt.Sprintf("bdev%d", i))
		}
		c.Servers = append(c.Servers, core.NewServer(core.NodeID(i), c.Rt, c.Fab, c.Drives[i], c.Cores[i], scfg))
	}
	c.Spares = core.NewSparePool(c.SpareIDs())
	return c
}

// DriveCapacity returns the per-drive capacity.
func (c *Cluster) DriveCapacity() int64 {
	if len(c.Drives) == 0 {
		panic("cluster: no drives configured (zero-target spec?)")
	}
	return c.Drives[0].Capacity()
}

// Close releases backend resources. On the simulation it is a no-op; on the
// real-time backend it stops the node loops, closes transport listeners, and
// removes file-backed media.
func (c *Cluster) Close() error {
	if c.close == nil {
		return nil
	}
	return c.close()
}

// SpareIDs returns the fabric NodeIDs of the hot spares, in pool order.
func (c *Cluster) SpareIDs() []core.NodeID {
	ids := make([]core.NodeID, c.spec.Spares)
	for i := range ids {
		ids[i] = core.NodeID(c.spec.Targets + i)
	}
	return ids
}

// resolveConfig fills zero Config fields with the cluster defaults.
func (c *Cluster) resolveConfig(cfg core.Config) core.Config {
	if cfg.Geometry.Width == 0 {
		cfg.Geometry = raid.Geometry{Level: raid.Raid5, Width: c.spec.Targets, ChunkSize: 512 << 10}
	}
	if cfg.Costs == (cpu.Costs{}) {
		cfg.Costs = c.Costs
	}
	if cfg.Trace == nil {
		cfg.Trace = c.spec.Trace
	}
	if cfg.Tracer == nil {
		cfg.Tracer = c.Tracer
	}
	if cfg.QoS == nil {
		cfg.QoS = c.qos
	}
	return cfg
}

// EnableQoS installs a shared weighted-fair I/O arbiter on the cluster:
// every volume registered afterwards has its user reads and writes admitted
// through start-time fair queuing over a shared in-flight byte window, so a
// noisy neighbor cannot bury a victim volume's tail latency in device
// queues. window <= 0 selects the default (4 MiB). Per-volume weights come
// from core.Config.QoSWeight. Idempotent; returns the arbiter.
func (c *Cluster) EnableQoS(window int64) *core.QoS {
	if c.qos == nil {
		c.qos = core.NewQoS(c.Rt, window)
	}
	return c.qos
}

// QoS returns the shared arbiter, or nil when EnableQoS was never called.
func (c *Cluster) QoS() *core.QoS { return c.qos }

// GrantEpoch advances and returns a volume's host epoch: one grant per
// controller session (volume open, failover, seize). The first grant
// returns 1, so a granted epoch is always distinguishable from the zero
// "fencing off" value.
func (c *Cluster) GrantEpoch(id core.VolumeID) uint64 {
	if c.epochs == nil {
		c.epochs = make(map[core.VolumeID]uint64)
	}
	c.epochs[id]++
	return c.epochs[id]
}

// CurrentEpoch returns the highest epoch granted for a volume (0 when epoch
// fencing was never used). A host whose epoch is below this must not renew
// its lease.
func (c *Cluster) CurrentEpoch(id core.VolumeID) uint64 {
	return c.epochs[id]
}

// AddVolume registers a virtual array on the cluster: a dRAID host
// controller over the next free extent of every drive. extent is the
// per-drive slice length in bytes; 0 claims all remaining capacity. Config
// fields left zero pick up the cluster defaults; Volume and DriveBase are
// assigned by the registry.
func (c *Cluster) AddVolume(name string, extent int64, cfg core.Config) (*Volume, error) {
	remaining := c.DriveCapacity() - c.nextBase
	if extent == 0 {
		extent = remaining
	}
	if extent <= 0 || extent > remaining {
		return nil, fmt.Errorf("cluster: volume %q wants %d bytes/drive, %d remaining: %w",
			name, extent, remaining, ErrNoCapacity)
	}
	cfg = c.resolveConfig(cfg)
	cfg.Volume = core.VolumeID(len(c.volumes))
	cfg.DriveBase = c.nextBase
	if cfg.Layout == nil && cfg.LayoutFor != nil {
		// Materialize the layout here rather than in NewHost, so the stored
		// Volume.Cfg carries the same layout instance a failover replacement
		// must reuse — a declustered layout accumulates relocation overrides
		// that a freshly seeded copy would not have.
		cfg.Layout = cfg.LayoutFor(cfg.DriveBase, extent)
	}
	v := &Volume{
		ID: cfg.Volume, Name: name, Cfg: cfg,
		Base: c.nextBase, Extent: extent,
	}
	v.Host = core.NewHost(c.Rt, c.Fab, extent, cfg)
	c.volumes = append(c.volumes, v)
	c.nextBase += extent
	return v, nil
}

// Volumes returns the registered volumes in creation (= VolumeID) order.
func (c *Cluster) Volumes() []*Volume { return c.volumes }

// VolumeByID returns a registered volume, or nil.
func (c *Cluster) VolumeByID(id core.VolumeID) *Volume {
	if int(id) >= len(c.volumes) {
		return nil
	}
	return c.volumes[id]
}

// NewDRAID attaches a dRAID host controller for the given geometry. Config
// fields left zero pick up the cluster defaults.
//
// This is the single-volume compatibility entry: the first call registers
// volume cfg.Volume (normally 0) over the drives' full remaining capacity;
// a later call naming an already-registered volume builds a replacement
// controller on the same extent and takes over its fabric endpoint (host
// failover). Multi-tenant setups use AddVolume directly.
func (c *Cluster) NewDRAID(cfg core.Config) *core.HostController {
	if int(cfg.Volume) < len(c.volumes) {
		v := c.volumes[cfg.Volume]
		cfg = c.resolveConfig(cfg)
		cfg.Volume = v.ID
		cfg.DriveBase = v.Base
		if cfg.Layout == nil {
			// Failover re-entry: reuse the volume's materialized layout (its
			// relocation overrides included) rather than re-seeding one.
			cfg.Layout = v.Cfg.Layout
		}
		v.Cfg = cfg
		v.Host = core.NewHost(c.Rt, c.Fab, v.Extent, cfg)
		return v.Host
	}
	v, err := c.AddVolume(fmt.Sprintf("vol%d", len(c.volumes)), 0, cfg)
	if err != nil {
		panic(err.Error())
	}
	return v.Host
}

// FailTarget fails a target end to end: the endpoint drops off the transport
// and its drive stops completing I/O. Pair with HostController.SetFailed
// (the host notices either via timeouts or via explicit administrative
// action, as in the paper's evaluation).
func (c *Cluster) FailTarget(i int) {
	c.Fab.SetDown(core.NodeID(i), true)
	c.Drives[i].Fail()
}

// RecoverTarget reverses FailTarget.
func (c *Cluster) RecoverTarget(i int) {
	c.Fab.SetDown(core.NodeID(i), false)
	c.Drives[i].Recover()
}

// TotalHostBytes reports the host NIC traffic (out, in) since the last
// counter reset — the quantity Table 1 accounts, aggregated over all
// volumes sharing the host NIC.
func (c *Cluster) TotalHostBytes() (out, in int64) {
	if c.HostNode != nil {
		return c.HostNode.BytesOut(), c.HostNode.BytesIn()
	}
	if t, ok := c.Fab.(backend.Traffic); ok {
		return t.HostBytes()
	}
	return 0, 0
}

// VolumeHostBytes reports the host NIC traffic (out, in) attributed to one
// volume. Summed over Volumes() it equals TotalHostBytes (offload-client
// traffic excepted, which bypasses the fabric attribution).
func (c *Cluster) VolumeHostBytes(id core.VolumeID) (out, in int64) {
	if c.Fabric != nil {
		return c.Fabric.HostVolumeBytes(id)
	}
	if t, ok := c.Fab.(backend.Traffic); ok {
		return t.HostVolumeBytes(id)
	}
	return 0, 0
}

// ResetTraffic zeroes all NIC counters on the host and targets, and the
// per-volume attribution alongside them.
func (c *Cluster) ResetTraffic() {
	if c.HostNode == nil {
		if t, ok := c.Fab.(backend.Traffic); ok {
			t.ResetTraffic()
		}
		return
	}
	c.HostNode.ResetCounters()
	for _, t := range c.Targets {
		t.ResetCounters()
	}
	c.Fabric.ResetHostVolumeBytes()
}
