package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"draid/internal/backend"
	"draid/internal/backend/realtime"
	"draid/internal/core"
	"draid/internal/cpu"
)

// RealtimeSpec describes a real-time testbed: the same protocol stack as the
// simulation, scheduled on goroutine event loops against wall-clock timers.
type RealtimeSpec struct {
	// Targets is the number of member bdevs (= array width).
	Targets int
	// Spares adds hot-spare bdevs beyond Targets.
	Spares int
	// DriveCapacity is the per-drive byte capacity (default 256 MiB — sized
	// for tests; real media are files, see Dir).
	DriveCapacity int64
	// Seed feeds the per-node random sources.
	Seed int64
	// TCP routes capsules over loopback TCP sockets instead of in-process
	// channels.
	TCP bool
	// Dir stores each drive as a sparse file under this directory; empty
	// keeps media in memory. File-backed drives do not support media-fault
	// injection (backend.ErrUnsupported). Ignored when SizeOnly.
	Dir string
	// SizeOnly elides payload bytes (benchmark mode).
	SizeOnly bool
	// Integrity enables per-chunk checksums on the servers.
	Integrity bool
	// Pipelined controls the §5.3 server-side pipeline.
	Pipelined bool
	// Trace receives protocol events from all controllers when non-nil.
	Trace func(format string, args ...any)
}

// NewRealtime assembles a real-time cluster: a Bed of node loops, a channel
// or TCP transport, and memory- or file-backed drives. The returned Cluster
// exposes only the backend-neutral surface (Rt, Fab, Drives, Servers,
// Spares); the simulation-only fields stay nil. Callers must Close it.
func NewRealtime(spec RealtimeSpec) (*Cluster, error) {
	if spec.Targets < 3 {
		return nil, fmt.Errorf("cluster: need at least 3 targets, got %d", spec.Targets)
	}
	if spec.Spares < 0 {
		return nil, fmt.Errorf("cluster: negative spare count %d", spec.Spares)
	}
	if spec.Integrity && spec.SizeOnly {
		return nil, fmt.Errorf("cluster: Integrity requires stored data (incompatible with Elide)")
	}
	if spec.DriveCapacity <= 0 {
		spec.DriveCapacity = 256 << 20
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	width := spec.Targets + spec.Spares
	bed := realtime.NewBed(spec.Seed, width)

	var fab backend.Transport
	var closeTransport func() error
	if spec.TCP {
		t, err := realtime.NewTCPTransport(bed, width)
		if err != nil {
			bed.Close()
			return nil, err
		}
		fab, closeTransport = t, t.Close
	} else {
		fab = realtime.NewChanTransport(bed, width)
	}

	costs := cpu.DefaultCosts()
	c := &Cluster{
		Costs: costs, Rt: bed, Fab: fab,
		spec: Spec{
			Targets: spec.Targets, Spares: spec.Spares, Seed: spec.Seed,
			Pipelined: spec.Pipelined, Integrity: spec.Integrity,
			Elide: spec.SizeOnly, Trace: spec.Trace,
		},
	}

	var files []*realtime.FileDrive
	cleanup := func() {
		if closeTransport != nil {
			closeTransport()
		}
		bed.Close()
		for _, fd := range files {
			fd.Close()
			os.Remove(fd.Path())
		}
	}
	for i := 0; i < width; i++ {
		rt := bed.NodeRuntime(backend.NodeID(i))
		var drive backend.Drive
		if spec.Dir != "" && !spec.SizeOnly {
			fd, err := realtime.NewFileDrive(rt, filepath.Join(spec.Dir, fmt.Sprintf("drive%d.img", i)), spec.DriveCapacity)
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("cluster: file drive %d: %w", i, err)
			}
			files = append(files, fd)
			drive = fd
		} else {
			drive = realtime.NewMemDrive(rt, spec.DriveCapacity, !spec.SizeOnly)
		}
		c.Drives = append(c.Drives, drive)
		scfg := core.ServerConfig{
			Costs: costs, Pipelined: spec.Pipelined,
			Integrity: spec.Integrity, Trace: spec.Trace,
		}
		c.Servers = append(c.Servers, core.NewServer(core.NodeID(i), rt, fab, drive, rt, scfg))
	}
	c.Spares = core.NewSparePool(c.SpareIDs())
	c.close = func() error {
		cleanup()
		return nil
	}
	return c, nil
}
