// Chrome trace_event and flame-summary exporters. Both are hand-rendered
// rather than reflection-marshalled so that key order, number formatting, and
// therefore the exact output bytes are deterministic: two same-seed runs must
// produce byte-identical files.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"draid/internal/sim"
)

// WriteChrome emits the collected events as Chrome trace_event JSON
// (loadable in Perfetto / chrome://tracing). One event per line.
func (c *Collector) WriteChrome(w io.Writer) error {
	if c == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}

	// Metadata: name every process and thread so Perfetto shows the topology.
	for pi, name := range c.processes {
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
			pi, strconv.Quote(name)))
		emit(fmt.Sprintf(`{"ph":"M","name":"process_sort_index","pid":%d,"tid":0,"args":{"sort_index":%d}}`,
			pi, pi))
	}
	for ti, tr := range c.tracks {
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
			tr.process, ti, strconv.Quote(tr.thread)))
	}

	for i := range c.events {
		ev := &c.events[i]
		pid := c.tracks[ev.track].process
		tid := int(ev.track)
		switch ev.kind {
		case evComplete:
			emit(fmt.Sprintf(`{"ph":"X","name":%s,"cat":%s,"ts":%s,"dur":%s,"pid":%d,"tid":%d%s}`,
				strconv.Quote(ev.name), strconv.Quote(ev.cat),
				usec(int64(ev.ts)), usec(ev.dur), pid, tid, chromeArgs(ev.args)))
		case evBegin:
			emit(fmt.Sprintf(`{"ph":"b","id":"0x%x","name":%s,"cat":%s,"ts":%s,"pid":%d,"tid":%d%s}`,
				ev.id, strconv.Quote(ev.name), strconv.Quote(ev.cat),
				usec(int64(ev.ts)), pid, tid, chromeArgs(ev.args)))
		case evEnd:
			emit(fmt.Sprintf(`{"ph":"e","id":"0x%x","name":%s,"cat":%s,"ts":%s,"pid":%d,"tid":%d%s}`,
				ev.id, strconv.Quote(ev.name), strconv.Quote(ev.cat),
				usec(int64(ev.ts)), pid, tid, chromeArgs(ev.args)))
		case evInstant:
			emit(fmt.Sprintf(`{"ph":"i","s":"t","name":%s,"cat":%s,"ts":%s,"pid":%d,"tid":%d%s}`,
				strconv.Quote(ev.name), strconv.Quote(ev.cat),
				usec(int64(ev.ts)), pid, tid, chromeArgs(ev.args)))
		case evCounter:
			emit(fmt.Sprintf(`{"ph":"C","name":%s,"ts":%s,"pid":%d,"tid":%d,"args":{"value":%s}}`,
				strconv.Quote(ev.name), usec(int64(ev.ts)), pid, tid,
				strconv.FormatFloat(ev.value, 'g', -1, 64)))
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// usec renders virtual nanoseconds as the microsecond decimal Chrome's "ts"
// field expects, with fixed millimicrosecond precision (pure integer math —
// no float rounding nondeterminism).
func usec(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// chromeArgs renders an args object (leading comma included) or nothing.
func chromeArgs(args []Arg) string {
	if len(args) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(`,"args":{`)
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(a.Key))
		b.WriteByte(':')
		s, q := formatArgVal(a.Val)
		if q {
			s = strconv.Quote(s)
		}
		b.WriteString(s)
	}
	b.WriteByte('}')
	return b.String()
}

// flameRow aggregates spans sharing a (track, name) cell.
type flameRow struct {
	track Track
	name  string
	count int64
	total sim.Duration
	max   sim.Duration
}

// WriteFlame emits the plain-text flame summary: per track, virtual time
// spent under each span name — the "where do the nanoseconds go" view.
func (c *Collector) WriteFlame(w io.Writer) error {
	if c == nil {
		_, err := io.WriteString(w, "trace disabled\n")
		return err
	}
	rows := make(map[[2]string]*flameRow) // key: track index (as string), name
	var last sim.Time
	add := func(tr Track, name string, d sim.Duration) {
		key := [2]string{strconv.Itoa(int(tr)), name}
		r, ok := rows[key]
		if !ok {
			r = &flameRow{track: tr, name: name}
			rows[key] = r
		}
		r.count++
		r.total += d
		if d > r.max {
			r.max = d
		}
	}
	open := make(map[uint64]sim.Time)
	for i := range c.events {
		ev := &c.events[i]
		if ev.ts > last {
			last = ev.ts
		}
		switch ev.kind {
		case evComplete:
			add(ev.track, ev.name, ev.dur)
			if end := ev.ts + sim.Time(ev.dur); end > last {
				last = end
			}
		case evBegin:
			open[ev.id] = ev.ts
		case evEnd:
			if start, ok := open[ev.id]; ok {
				delete(open, ev.id)
				add(ev.track, ev.name, sim.Duration(ev.ts-start))
			}
		}
	}

	sorted := make([]*flameRow, 0, len(rows))
	for _, r := range rows {
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.track != b.track {
			return a.track < b.track
		}
		if a.total != b.total {
			return a.total > b.total
		}
		return a.name < b.name
	})

	var b strings.Builder
	fmt.Fprintf(&b, "flame summary: %s of virtual time, %d events\n",
		time.Duration(last), len(c.events))
	prev := Track(-1)
	for _, r := range sorted {
		if r.track != prev {
			prev = r.track
			ti := c.tracks[r.track]
			fmt.Fprintf(&b, "\n%s/%s\n", c.processes[ti.process], ti.thread)
		}
		mean := sim.Duration(0)
		if r.count > 0 {
			mean = r.total / r.count
		}
		fmt.Fprintf(&b, "  %-28s count=%-6d total=%-12v mean=%-10v max=%v\n",
			r.name, r.count, time.Duration(r.total), time.Duration(mean), time.Duration(r.max))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
