// Package trace is the deterministic, virtual-time tracing and metrics
// subsystem threaded through the whole stack: hierarchical spans (stripe op →
// per-member RPC → NIC serialization → drive service), periodic gauge
// sampling on a virtual-time ticker, and exporters (Chrome trace_event JSON
// for Perfetto, plain-text flame summary).
//
// Timestamps are VIRTUAL time, never wall time: the simulation's claims are
// claims about virtual nanoseconds, and wall-clock stamps would destroy the
// byte-for-byte reproducibility that makes traces diffable across runs. Two
// runs with the same seed emit identical event streams.
//
// A nil *Collector is the disabled tracer: every method is nil-safe and
// returns immediately, so instrumented hot paths pay only a pointer test.
package trace

import (
	"strconv"

	"draid/internal/sim"
)

// Track identifies one timeline (a NIC pipe, a drive, a controller's op
// stream) inside a process group. The zero value is safe to pass to a nil
// Collector.
type Track int

// Arg is one key/value annotation on an event. Values are rendered
// deterministically at export time; supported types are string, bool, int,
// int64, uint64, float64, sim.Time, and sim.Duration.
type Arg struct {
	Key string
	Val any
}

// Str, I64, and F64 build Args without the caller spelling the struct out.
func Str(k, v string) Arg      { return Arg{Key: k, Val: v} }
func I64(k string, v int64) Arg { return Arg{Key: k, Val: v} }
func F64(k string, v float64) Arg { return Arg{Key: k, Val: v} }

// Options tune a Collector.
type Options struct {
	// SampleEvery is the virtual-time period of the gauge ticker
	// (default 50µs).
	SampleEvery sim.Duration
}

type eventKind uint8

const (
	evComplete eventKind = iota
	evBegin
	evEnd
	evInstant
	evCounter
)

type event struct {
	kind  eventKind
	track Track
	cat   string
	name  string
	ts    sim.Time
	dur   sim.Duration // evComplete only
	id    uint64       // evBegin/evEnd pairing
	value float64      // evCounter only
	args  []Arg
}

type trackInfo struct {
	process int // index into Collector.processes
	thread  string
}

type gauge struct {
	track Track
	name  string
	fn    func() float64
}

// Collector gathers events. Create one per simulation engine; a nil
// *Collector is the disabled tracer.
type Collector struct {
	eng *sim.Engine
	opt Options

	processes []string
	procIdx   map[string]int
	tracks    []trackInfo
	trackIdx  map[trackKey]Track

	events    []event
	gauges    []gauge
	nextAsync uint64

	samplerArmed bool
	lastSample   sim.Time

	engineTrack       Track
	runStart          sim.Time
	runStartProcessed uint64
}

type trackKey struct{ process, thread string }

// New creates a Collector bound to eng. Install it with eng.SetObserver to
// activate the gauge ticker and per-Run spans.
func New(eng *sim.Engine, opt Options) *Collector {
	if opt.SampleEvery <= 0 {
		opt.SampleEvery = 50 * sim.Microsecond
	}
	c := &Collector{
		eng: eng, opt: opt,
		procIdx:  make(map[string]int),
		trackIdx: make(map[trackKey]Track),
	}
	c.engineTrack = c.Track("sim", "engine")
	return c
}

// Enabled reports whether tracing is on — the near-zero-cost disabled check.
func (c *Collector) Enabled() bool { return c != nil }

// Track registers (or finds) the timeline named thread inside process.
// Registration order is deterministic because simulation construction is.
func (c *Collector) Track(process, thread string) Track {
	if c == nil {
		return 0
	}
	key := trackKey{process, thread}
	if tr, ok := c.trackIdx[key]; ok {
		return tr
	}
	pi, ok := c.procIdx[process]
	if !ok {
		pi = len(c.processes)
		c.procIdx[process] = pi
		c.processes = append(c.processes, process)
	}
	tr := Track(len(c.tracks))
	c.tracks = append(c.tracks, trackInfo{process: pi, thread: thread})
	c.trackIdx[key] = tr
	return tr
}

// Span records a complete span [start, end) on a track — the shape for FIFO
// resources (NIC pipes, drive service) whose duration is known at emission.
func (c *Collector) Span(tr Track, cat, name string, start, end sim.Time, args ...Arg) {
	if c == nil {
		return
	}
	if end < start {
		end = start
	}
	c.events = append(c.events, event{
		kind: evComplete, track: tr, cat: cat, name: name,
		ts: start, dur: sim.Duration(end - start), args: args,
	})
}

// Op is an in-flight async span (a stripe operation, a per-member RPC).
// Overlapping Ops on one track render as an async group in Perfetto.
// A nil *Op (from a disabled Collector) ignores End.
type Op struct {
	c     *Collector
	track Track
	cat   string
	name  string
	id    uint64
}

// Begin opens an async span at the current virtual time.
func (c *Collector) Begin(tr Track, cat, name string, args ...Arg) *Op {
	if c == nil {
		return nil
	}
	c.nextAsync++
	id := c.nextAsync
	c.events = append(c.events, event{
		kind: evBegin, track: tr, cat: cat, name: name,
		ts: c.eng.Now(), id: id, args: args,
	})
	return &Op{c: c, track: tr, cat: cat, name: name, id: id}
}

// End closes the span at the current virtual time. Multiple Ends are no-ops.
func (o *Op) End(args ...Arg) {
	if o == nil || o.c == nil {
		return
	}
	c := o.c
	o.c = nil
	c.events = append(c.events, event{
		kind: evEnd, track: o.track, cat: o.cat, name: o.name,
		ts: c.eng.Now(), id: o.id, args: args,
	})
}

// Instant records a point event at the current virtual time.
func (c *Collector) Instant(tr Track, cat, name string, args ...Arg) {
	if c == nil {
		return
	}
	c.events = append(c.events, event{
		kind: evInstant, track: tr, cat: cat, name: name,
		ts: c.eng.Now(), args: args,
	})
}

// counter records one gauge sample.
func (c *Collector) counter(tr Track, name string, value float64) {
	c.events = append(c.events, event{
		kind: evCounter, track: tr, name: name, ts: c.eng.Now(), value: value,
	})
}

// AddGauge registers a sampled metric. fn runs on every ticker fire and must
// derive its value purely from simulation state (determinism is load-bearing).
func (c *Collector) AddGauge(tr Track, name string, fn func() float64) {
	if c == nil {
		return
	}
	c.gauges = append(c.gauges, gauge{track: tr, name: name, fn: fn})
}

// UtilizationGauge adapts a monotonically increasing busy-time total (NIC
// pipe, CPU core) into a busy-fraction-since-last-sample gauge.
func UtilizationGauge(eng *sim.Engine, busyTotal func() sim.Duration) func() float64 {
	return PoolUtilizationGauge(eng, 1, busyTotal)
}

// PoolUtilizationGauge is UtilizationGauge over n units sharing one busy
// total (a core pool): busy fraction of the pool's aggregate capacity.
func PoolUtilizationGauge(eng *sim.Engine, n int, busyTotal func() sim.Duration) func() float64 {
	if n <= 0 {
		n = 1
	}
	var prevBusy sim.Duration
	var prevAt sim.Time
	return func() float64 {
		now := eng.Now()
		busy := busyTotal()
		elapsed := sim.Duration(now - prevAt)
		dBusy := busy - prevBusy
		prevAt, prevBusy = now, busy
		if elapsed <= 0 {
			return 0
		}
		f := float64(dBusy) / (float64(elapsed) * float64(n))
		if f > 1 {
			f = 1
		}
		return f
	}
}

// RunStart implements sim.Observer: arm the gauge ticker for this run.
func (c *Collector) RunStart(now sim.Time) {
	if c == nil {
		return
	}
	c.runStart = now
	c.runStartProcessed = c.eng.Processed()
	c.armSampler()
}

// RunEnd implements sim.Observer: close the run with an engine-track span.
func (c *Collector) RunEnd(now sim.Time, processed uint64) {
	if c == nil {
		return
	}
	if d := processed - c.runStartProcessed; d > 0 {
		c.Span(c.engineTrack, "engine", "run", c.runStart, now,
			I64("events", int64(d)))
	}
}

// armSampler starts the virtual-time ticker if gauges exist and it is idle.
// The ticker re-arms itself only while live events remain, so it never keeps
// Run from returning.
func (c *Collector) armSampler() {
	if c.samplerArmed || len(c.gauges) == 0 {
		return
	}
	c.samplerArmed = true
	c.scheduleSample()
}

func (c *Collector) scheduleSample() {
	next := c.lastSample + sim.Time(c.opt.SampleEvery)
	if next <= c.eng.Now() {
		next = c.eng.Now() + sim.Time(c.opt.SampleEvery)
	}
	c.eng.At(next, c.sample)
}

func (c *Collector) sample() {
	c.lastSample = c.eng.Now()
	for _, g := range c.gauges {
		c.counter(g.track, g.name, g.fn())
	}
	if c.eng.LiveFG() > 0 {
		c.scheduleSample()
		return
	}
	c.samplerArmed = false
}

// Events reports how many events have been collected.
func (c *Collector) Events() int {
	if c == nil {
		return 0
	}
	return len(c.events)
}

// Reset discards collected events (not tracks or gauges).
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.events = c.events[:0]
}

// formatArgVal renders an Arg value deterministically for both exporters.
func formatArgVal(v any) (s string, quoted bool) {
	switch x := v.(type) {
	case string:
		return x, true
	case bool:
		return strconv.FormatBool(x), false
	case int:
		return strconv.FormatInt(int64(x), 10), false
	case int64:
		return strconv.FormatInt(x, 10), false
	case uint64:
		return strconv.FormatUint(x, 10), false
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), false
	case sim.Time:
		return x.String(), true
	default:
		return "?", true
	}
}
