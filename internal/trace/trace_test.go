package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"draid/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleTrace builds a small deterministic scenario exercising every event
// kind: complete spans, async begin/end, instants, and gauge samples.
func sampleTrace() *Collector {
	eng := sim.NewEngine(1)
	c := New(eng, Options{SampleEvery: 10 * sim.Microsecond})
	eng.SetObserver(c)

	nic := c.Track("node0", "nic0.tx")
	drv := c.Track("server0", "bdev0")
	var busy sim.Duration
	c.AddGauge(nic, "tx util", UtilizationGauge(eng, func() sim.Duration { return busy }))

	eng.At(0, func() {
		op := c.Begin(drv, "op", "write", I64("stripe", 3))
		c.Span(nic, "net", "tx→server0", eng.Now(), eng.Now()+sim.Time(5*sim.Microsecond),
			I64("bytes", 4096))
		busy += 5 * sim.Microsecond
		eng.At(sim.Time(25*sim.Microsecond), func() {
			c.Instant(drv, "rpc", "recv Write", F64("q", 0.5))
			op.End(Str("result", "ok"))
		})
	})
	eng.Run()
	return c
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	tr := c.Track("p", "t")
	c.Span(tr, "a", "b", 0, 1)
	c.Instant(tr, "a", "b")
	c.AddGauge(tr, "g", func() float64 { return 0 })
	c.Begin(tr, "a", "b").End()
	c.RunStart(0)
	c.RunEnd(0, 0)
	c.Reset()
	if c.Events() != 0 {
		t.Fatal("nil collector has events")
	}
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("nil WriteChrome = %q", buf.String())
	}
	buf.Reset()
	if err := c.WriteFlame(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden (rerun with -update if intended)\ngot:\n%s", buf.String())
	}
	// The export must also be well-formed JSON with the Chrome schema.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
}

func TestDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTrace().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTrace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical runs produced different traces")
	}
}

func TestFlameSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteFlame(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"flame summary:", "node0/nic0.tx", "server0/bdev0", "write", "tx→server0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flame summary missing %q:\n%s", want, out)
		}
	}
}

// TestSamplerReleasesRun guards the subtle liveness property: the gauge
// ticker must stop re-arming once no live events remain, or Run would never
// return. Reaching this line at all proves it; the counter check proves the
// ticker actually ran.
func TestSamplerReleasesRun(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Options{SampleEvery: 10 * sim.Microsecond})
	eng.SetObserver(c)
	tr := c.Track("p", "t")
	c.AddGauge(tr, "g", func() float64 { return 1 })
	// A long-dead deadline timer must not keep the ticker alive.
	deadline := eng.At(sim.Time(sim.Second), func() {})
	eng.At(sim.Time(100*sim.Microsecond), func() { deadline.Stop() })
	end := eng.Run()
	if end >= sim.Time(sim.Second) {
		t.Fatalf("sampler ticked to the dead deadline timer (end=%v)", end)
	}
	counters := 0
	for _, ev := range c.events {
		if ev.kind == evCounter {
			counters++
		}
	}
	if counters == 0 {
		t.Fatal("gauge never sampled")
	}
}

func TestUtilizationGauge(t *testing.T) {
	eng := sim.NewEngine(1)
	var busy sim.Duration
	g := UtilizationGauge(eng, func() sim.Duration { return busy })
	eng.At(sim.Time(100), func() { busy = 50 })
	eng.Run()
	if got := g(); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	p := PoolUtilizationGauge(eng, 2, func() sim.Duration { return busy })
	if got := p(); got != 0.25 {
		t.Fatalf("pool utilization = %v, want 0.25", got)
	}
}
