// Package core implements dRAID itself: the host-side controller (a virtual
// block device that orchestrates disaggregated RAID I/O) and the server-side
// controller (the dRAID bdev that executes PartialWrite/Parity/
// Reconstruction/Peer commands, Algorithms 1 and 2 of the paper).
//
// The same Fabric and ServerController are reused by the host-centric
// baselines in internal/baseline, which speak only the standard NVMe-oF
// subset (Read/Write) — exactly the paper's comparison setup.
package core

import (
	"fmt"

	"draid/internal/backend"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/simnet"
)

// The wire-level vocabulary (endpoint IDs, volume IDs, messages, handlers)
// is defined by the backend package, shared by every transport
// implementation. The names here are aliases kept for existing callers.

// NodeID identifies an endpoint on the fabric: HostID for the host, 0..n-1
// for storage targets.
type NodeID = backend.NodeID

// HostID is the host's NodeID.
const HostID = backend.HostID

// VolumeID identifies one virtual array (an NVMe namespace) among the many
// that may share a cluster.
type VolumeID = backend.VolumeID

// NoDest marks an unused next-dest field.
const NoDest uint16 = 0xFFFF

// fromName renders a NodeID as a short trace label ("host" or "tN").
func fromName(id NodeID) string {
	if id == HostID {
		return "host"
	}
	return fmt.Sprintf("t%d", int(id))
}

// NoScale in Command.DataIdx marks a Peer contribution that is XORed raw
// (P-style); any other value i means the reducer scales it by g^i (Q-style).
const NoScale uint16 = 0xFFFF

// Message is a capsule plus its (possibly elided) payload. Payload bytes are
// pushed with the capsule; the transfer consumes sender and receiver NIC
// bandwidth but no receiver CPU beyond per-message processing, modelling
// one-sided RDMA data movement.
type Message = backend.Message

// Handler consumes messages delivered to a fabric endpoint.
type Handler = backend.Handler

// Fabric wires the host and targets with reliable connections: host↔target
// stars plus a full target↔target mesh (created pairwise by the server-side
// controllers in the paper, §3). Several member bdevs may share one
// physical server node (§5.5 resource sharing); transfers between
// co-located bdevs stay local and consume no NIC bandwidth, and only one
// connection exists per server pair (the §5.5 connection-sharing rule).
type Fabric struct {
	net      *simnet.Network
	hostNode *simnet.Node
	targets  []*simnet.Node
	hostConn []*simnet.Conn          // host ↔ target i (shared per node)
	mesh     map[[2]int]*simnet.Conn // target i ↔ j, i < j (nil = co-located)
	handlers map[NodeID]Handler
	// volHandlers demultiplexes the shared host endpoint by volume: every
	// capsule carries its VolumeID in NSID, so N host controllers can share
	// one fabric endpoint without seeing each other's completions. Servers
	// stay volume-agnostic and register in handlers.
	volHandlers map[volKey]Handler
	// volBytes attributes host-NIC wire bytes (capsule + payload + header)
	// to the volume named in each capsule — the per-tenant half of the
	// Table 1 traffic accounting. Mirrors NIC counter semantics: out counts
	// at send (even if the message is later dropped), in counts at delivery.
	volBytes map[VolumeID]*volTraffic
	// corruptDrops counts capsules discarded at the receiving NIC because
	// their command-level CRC32C (nvmeof.Command.Checksum) failed after
	// injected wire corruption. The sender sees a timeout and retries.
	corruptDrops int64
}

// volKey addresses a volume-scoped handler on one endpoint.
type volKey struct {
	node NodeID
	vol  VolumeID
}

// volTraffic counts one volume's host-NIC bytes.
type volTraffic struct{ out, in int64 }

// NewFabric connects hostNode to every target server and servers pairwise.
// Entries of targets may repeat (co-located bdevs): each distinct node pair
// gets exactly one connection, and same-node pairs get none.
func NewFabric(net *simnet.Network, hostNode *simnet.Node, targets []*simnet.Node) *Fabric {
	f := &Fabric{
		net: net, hostNode: hostNode, targets: targets,
		mesh:        make(map[[2]int]*simnet.Conn),
		handlers:    make(map[NodeID]Handler),
		volHandlers: make(map[volKey]Handler),
		volBytes:    make(map[VolumeID]*volTraffic),
	}
	hostByNode := make(map[*simnet.Node]*simnet.Conn)
	for _, t := range targets {
		c, ok := hostByNode[t]
		if !ok {
			c = net.Connect(hostNode, t)
			hostByNode[t] = c
		}
		f.hostConn = append(f.hostConn, c)
	}
	meshByNodes := make(map[[2]*simnet.Node]*simnet.Conn)
	for i := range targets {
		for j := i + 1; j < len(targets); j++ {
			if targets[i] == targets[j] {
				continue // co-located: local transfers
			}
			key := [2]*simnet.Node{targets[i], targets[j]}
			c, ok := meshByNodes[key]
			if !ok {
				key2 := [2]*simnet.Node{targets[j], targets[i]}
				if c2, ok2 := meshByNodes[key2]; ok2 {
					c, ok = c2, true
				}
			}
			if !ok {
				c = net.Connect(targets[i], targets[j])
				meshByNodes[key] = c
			}
			f.mesh[[2]int{i, j}] = c
		}
	}
	return f
}

// Register installs the endpoint-wide message handler for an endpoint: the
// fallback when no volume-scoped handler matches a capsule's NSID. Servers
// (volume-agnostic bdevs) register here.
func (f *Fabric) Register(id NodeID, h Handler) { f.handlers[id] = h }

// RegisterVolume installs a volume-scoped handler on an endpoint: capsules
// whose NSID names vol are delivered to h, others fall back to the
// endpoint-wide handler. Host controllers register here so many volumes can
// share the host endpoint. Re-registering (host failover) replaces the
// handler.
func (f *Fabric) RegisterVolume(id NodeID, vol VolumeID, h Handler) {
	f.volHandlers[volKey{node: id, vol: vol}] = h
}

// deliver routes a message to the endpoint's volume handler when one is
// registered for the capsule's namespace, else to the endpoint-wide handler.
func (f *Fabric) deliver(to NodeID, m Message) {
	if h, ok := f.volHandlers[volKey{node: to, vol: VolumeID(m.Cmd.NSID)}]; ok {
		h(m)
		return
	}
	if h := f.handlers[to]; h != nil {
		h(m)
	}
}

// vol returns (creating on demand) the traffic record for a volume.
func (f *Fabric) vol(id VolumeID) *volTraffic {
	t, ok := f.volBytes[id]
	if !ok {
		t = &volTraffic{}
		f.volBytes[id] = t
	}
	return t
}

// HostVolumeBytes reports the host-NIC wire bytes (out, in) attributed to
// one volume since the last ResetHostVolumeBytes. Summed over a cluster's
// volumes it equals the host node's NIC counters (sans offload-client
// traffic, which bypasses the fabric).
func (f *Fabric) HostVolumeBytes(vol VolumeID) (out, in int64) {
	if t, ok := f.volBytes[vol]; ok {
		return t.out, t.in
	}
	return 0, 0
}

// ResetHostVolumeBytes zeroes the per-volume host traffic attribution.
func (f *Fabric) ResetHostVolumeBytes() {
	for _, t := range f.volBytes {
		t.out, t.in = 0, 0
	}
}

// Width returns the number of targets.
func (f *Fabric) Width() int { return len(f.targets) }

// Down reports whether an endpoint's node is unreachable.
func (f *Fabric) Down(id NodeID) bool { return f.Node(id).Down() }

// SetDown makes an endpoint's node unreachable (true) or reachable (false).
// Note that co-located bdevs share a node, so taking one down takes down its
// neighbours — exactly the blast radius of a server failure (§5.5).
func (f *Fabric) SetDown(id NodeID, down bool) { f.Node(id).SetDown(down) }

// Node returns the simnet node behind an endpoint.
func (f *Fabric) Node(id NodeID) *simnet.Node {
	if id == HostID {
		return f.hostNode
	}
	return f.targets[id]
}

// HostNode returns the host's simnet node.
func (f *Fabric) HostNode() *simnet.Node { return f.hostNode }

// Targets returns the target nodes.
func (f *Fabric) Targets() []*simnet.Node { return f.targets }

// Connection exposes the underlying connection between two endpoints, for
// fault injection in tests and experiments.
func (f *Fabric) Connection(a, b NodeID) *simnet.Conn { return f.conn(a, b) }

// conn returns the connection between two endpoints.
func (f *Fabric) conn(a, b NodeID) *simnet.Conn {
	switch {
	case a == HostID:
		return f.hostConn[b]
	case b == HostID:
		return f.hostConn[a]
	default:
		i, j := int(a), int(b)
		if i > j {
			i, j = j, i
		}
		return f.mesh[[2]int{i, j}]
	}
}

// InjectPartition cuts the fabric between two endpoints in the given
// direction(s): messages crossing the cut vanish after consuming sender
// bandwidth, exactly like messages to a down node — only the sender's §5.4
// deadline notices. Endpoints sharing a server node share a connection, so
// partitioning one bdev pair partitions the whole node pair (the same blast
// radius as SetDown, §5.5); co-located bdevs exchange local memcpys and
// cannot be partitioned from each other (the cut is a silent no-op there).
func (f *Fabric) InjectPartition(a, b NodeID, dir backend.PartitionDir) {
	f.setPartition(a, b, dir, true)
}

// HealPartition restores the fabric between two endpoints in the given
// direction(s).
func (f *Fabric) HealPartition(a, b NodeID, dir backend.PartitionDir) {
	f.setPartition(a, b, dir, false)
}

func (f *Fabric) setPartition(a, b NodeID, dir backend.PartitionDir, cut bool) {
	c := f.conn(a, b)
	if c == nil {
		return // co-located bdevs: local transfers bypass the network
	}
	apply := func(from *simnet.Node) {
		if cut {
			c.InjectPartitionDirection(from)
		} else {
			c.HealPartitionDirection(from)
		}
	}
	if dir == backend.PartitionBoth || dir == backend.PartitionAToB {
		apply(f.Node(a))
	}
	if dir == backend.PartitionBoth || dir == backend.PartitionBToA {
		apply(f.Node(b))
	}
}

// Partitioned reports whether messages from 'from' to 'to' are cut.
func (f *Fabric) Partitioned(from, to NodeID) bool {
	c := f.conn(from, to)
	if c == nil {
		return false
	}
	return c.PartitionedFrom(f.Node(from))
}

// DuplicateNext arms a one-shot duplication of the next message from 'from'
// to 'to' (a late fabric retransmission — backend.DuplicateInjector).
// Co-located bdevs exchange local memcpys: the arm is a silent no-op there.
func (f *Fabric) DuplicateNext(from, to NodeID) {
	c := f.conn(from, to)
	if c == nil {
		return
	}
	c.InjectDuplicateOnceDirection(f.Node(from))
}

// Send transmits a capsule (and payload) from one endpoint to another. Wire
// size is the encoded capsule plus payload length. Delivery invokes the
// destination's handler; messages to failed nodes vanish (sender times
// out). Transfers between bdevs sharing one server node bypass the network
// entirely (a local memcpy, §5.5).
func (f *Fabric) Send(from, to NodeID, cmd nvmeof.Command, payload parity.Buffer) {
	if from == to {
		panic(fmt.Sprintf("core: send from %d to itself", from))
	}
	srcNode, dstNode := f.Node(from), f.Node(to)
	if srcNode == dstNode {
		if srcNode.Down() {
			return
		}
		f.net.Eng.Defer(func() {
			if dstNode.Down() {
				return
			}
			f.deliver(to, Message{Cmd: cmd, Payload: payload, From: from})
		})
		return
	}
	c := f.conn(from, to)
	if c == nil {
		panic(fmt.Sprintf("core: no connection %d→%d", from, to))
	}
	size := int64(cmd.EncodedSize()) + int64(payload.Len())
	wire := size + f.net.Config().HeaderBytes
	if from == HostID {
		// Outbound bytes count at send, like the NIC's counter: a message
		// dropped downstream still consumed host NIC bandwidth.
		f.vol(VolumeID(cmd.NSID)).out += wire
	}
	c.SendChecked(srcNode, size, func(corrupted bool) {
		if to == HostID {
			f.vol(VolumeID(cmd.NSID)).in += wire
		}
		if corrupted {
			// The receiving NIC validates the capsule's CRC32C before
			// accepting it; a corrupted capsule (or one guarding a corrupted
			// payload) is discarded here, and the sender's §5.4 deadline
			// fires as if the message had been lost.
			f.corruptDrops++
			return
		}
		f.deliver(to, Message{Cmd: cmd, Payload: payload, From: from})
	})
}

// CorruptDrops reports how many capsules were discarded after failing the
// receiver-side command checksum (injected wire corruption).
func (f *Fabric) CorruptDrops() int64 { return f.corruptDrops }

// The simulated fabric is the deterministic backend.Transport, with
// pairwise partition and duplication injection.
var (
	_ backend.Transport         = (*Fabric)(nil)
	_ backend.PartitionInjector = (*Fabric)(nil)
	_ backend.DuplicateInjector = (*Fabric)(nil)
)
