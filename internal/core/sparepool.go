package core

// SparePool arbitrates a cluster's hot spares among the volumes sharing it.
// Each spare is a full storage server (node, NIC, core, drive) past the
// widest volume's member range; any volume's rebuild supervisor may claim
// one. Arbitration is first-claim: Claim hands out the lowest-numbered free
// spare to whichever supervisor asks first, so two volumes degraded by the
// same drive failure race for the pool in deterministic engine order.
//
// The pool is not goroutine-safe; like the rest of the simulation it runs on
// the single-threaded engine.
type SparePool struct {
	free    []NodeID
	claimed map[NodeID]bool
}

// NewSparePool builds a pool over the given spare endpoints, claimable in
// slice order.
func NewSparePool(ids []NodeID) *SparePool {
	return &SparePool{free: append([]NodeID(nil), ids...), claimed: make(map[NodeID]bool)}
}

// Claim removes and returns the next free spare; ok is false when the pool
// is exhausted.
func (p *SparePool) Claim() (id NodeID, ok bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	id = p.free[0]
	p.free = p.free[1:]
	p.claimed[id] = true
	return id, true
}

// Release returns a previously claimed spare to the back of the pool — only
// valid when its contents were never written (an aborted claim), since a
// partially rebuilt spare holds one volume's data.
func (p *SparePool) Release(id NodeID) {
	if !p.claimed[id] {
		return
	}
	delete(p.claimed, id)
	p.free = append(p.free, id)
}

// Available returns how many spares remain claimable.
func (p *SparePool) Available() int { return len(p.free) }

// IDs returns the free spares in claim order.
func (p *SparePool) IDs() []NodeID { return append([]NodeID(nil), p.free...) }
