package core

import (
	"fmt"
	"sort"

	"draid/internal/blockdev"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
)

// §5.4 host-failure handling: like Linux MD, the controller keeps a
// write-intent bitmap of stripes with writes in flight. After a host crash,
// a replacement controller needs to resync only those stripes — never a
// full-array scan. In this simulation the bitmap is exposed directly
// (DirtyStripes) where a production system would persist it.

func (h *HostController) markDirty(stripe int64) {
	if h.dirty == nil {
		h.dirty = make(map[int64]int)
	}
	h.dirty[stripe]++
}

func (h *HostController) clearDirty(stripe int64) {
	h.dirty[stripe]--
	if h.dirty[stripe] <= 0 {
		delete(h.dirty, stripe)
	}
}

// DirtyStripes returns the stripes with writes currently in flight — the
// write-intent bitmap a replacement controller must resync after a host
// crash.
func (h *HostController) DirtyStripes() []int64 {
	out := make([]int64, 0, len(h.dirty))
	for s := range h.dirty {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResyncStripe restores the parity invariant of one stripe, exactly as MD's
// resync does: read every healthy data chunk in full, recompute P (and Q),
// write the parity chunk(s) back. Data content is taken as found — resync
// repairs consistency, not the write hole. The whole read-compute-write runs
// under the stripe write lock: a destage (or user write) landing between the
// resync's reads and its parity write would otherwise have its fresh parity
// overwritten by a recomputation from stale data.
func (h *HostController) ResyncStripe(stripe int64, cb func(error)) {
	h.acquireStripe(stripe, func() {
		h.resyncStripeLocked(stripe, func(err error) {
			h.releaseStripe(stripe)
			cb(err)
		})
	})
}

func (h *HostController) resyncStripeLocked(stripe int64, cb func(error)) {
	h.stats.Resyncs++
	base := h.driveOff(stripe)
	cs := h.geo.ChunkSize
	k := h.geo.DataChunks()

	pDrive := h.geo.PDrive(stripe)
	pAlive := !h.memberFailed(stripe, pDrive)
	qDrive, qAlive := -1, false
	if h.geo.Level == raid.Raid6 {
		qDrive = h.geo.QDrive(stripe)
		qAlive = !h.memberFailed(stripe, qDrive)
	}
	if !pAlive && !qAlive {
		h.rt.Defer(func() { cb(nil) }) // nothing to resync
		return
	}

	chunks := make([]parity.Buffer, k)
	var watch []NodeID
	reads := 0
	for c := 0; c < k; c++ {
		m := h.geo.DataDrive(stripe, c)
		if h.memberFailed(stripe, m) {
			// A missing data chunk makes its old content undefined; treat
			// as zero for the recomputation (MD resyncs degraded arrays
			// only after the member is replaced and rebuilt).
			chunks[c] = parity.Alloc(int(cs))
			continue
		}
		reads++
		watch = append(watch, h.nodeAt(stripe, m))
	}
	if reads == 0 {
		h.rt.Defer(func() { cb(blockdev.ErrIO) })
		return
	}

	rOp := h.newStripeOp("resync-read", stripe, reads, watch,
		func() {
			work := h.cfg.Costs.Xor(int(cs) * k)
			if qAlive {
				work += h.cfg.Costs.Gf(int(cs) * k)
			}
			h.cores.Exec(work, func() {
				writes := 0
				var wWatch []NodeID
				if pAlive {
					writes++
					wWatch = append(wWatch, h.nodeAt(stripe, pDrive))
				}
				if qAlive {
					writes++
					wWatch = append(wWatch, h.nodeAt(stripe, qDrive))
				}
				wOp := h.newStripeOp("resync-write", stripe, writes, wWatch,
					func() { cb(nil) },
					func([]NodeID) {
						cb(fmt.Errorf("core: stripe %d resync write: %w", stripe, blockdev.ErrTimeout))
					})
				if pAlive {
					h.send(wOp, h.nodeAt(stripe, pDrive), nvmeof.Command{
						Opcode: nvmeof.OpWrite, Offset: base, Length: cs,
					}, parity.ComputeP(chunks))
				}
				if qAlive {
					h.send(wOp, h.nodeAt(stripe, qDrive), nvmeof.Command{
						Opcode: nvmeof.OpWrite, Offset: base, Length: cs,
					}, parity.ComputeQ(chunks, nil))
				}
			})
		},
		func([]NodeID) {
			cb(fmt.Errorf("core: stripe %d resync read: %w", stripe, blockdev.ErrTimeout))
		})
	rOp.onPayload = func(from NodeID, _ nvmeof.Command, b parity.Buffer) {
		_, idx := h.geo.Role(stripe, h.memberOfAt(stripe, from))
		chunks[idx] = b
	}
	for c := 0; c < k; c++ {
		m := h.geo.DataDrive(stripe, c)
		if h.memberFailed(stripe, m) {
			continue
		}
		h.send(rOp, h.nodeAt(stripe, m), nvmeof.Command{
			Opcode: nvmeof.OpRead, Offset: base, Length: cs,
		}, parity.Buffer{})
	}
}
