package core

import (
	"draid/internal/blockdev"
	"draid/internal/cpu"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/sim"
	"draid/internal/simnet"
)

// This file implements the §7 discussion point: "the host-side controller
// can also be offloaded to a storage server." The dRAID controller keeps
// running on the fabric's coordinator node (now a storage-class server);
// a thin client reaches it through one more NVMe-oF hop. The client's NIC
// then carries exactly 1× the user bytes in every state — at the price of
// the extra hop's latency and a new single point of failure, the trade-off
// the paper calls out.

// OffloadGateway terminates client block I/O on the controller's node and
// drives the local HostController.
type OffloadGateway struct {
	eng   *sim.Engine
	host  *HostController
	conn  *simnet.Conn
	node  *simnet.Node
	core  *cpu.Core
	costs cpu.Costs
}

// OffloadClient is the thin initiator: a blockdev.Device whose operations
// are forwarded to the remote controller.
type OffloadClient struct {
	eng  *sim.Engine
	node *simnet.Node
	conn *simnet.Conn
	gw   *OffloadGateway
	size int64
}

// NewOffload splits the array's entry point: clientNode gains a
// blockdev.Device whose I/O crosses one NVMe-oF hop to host's node, where
// the gateway executes it. host must live on the fabric's coordinator node
// (the storage server now carrying the controller).
func NewOffload(eng *sim.Engine, net *simnet.Network, clientNode *simnet.Node, host *HostController, costs cpu.Costs) *OffloadClient {
	// Offload is a simulation-only experiment (§7): it reaches through to
	// the concrete simulated fabric for its client↔coordinator hop.
	fab := host.fab.(*Fabric)
	conn := net.Connect(clientNode, fab.HostNode())
	gw := &OffloadGateway{
		eng: eng, host: host, conn: conn, node: fab.HostNode(),
		core: cpu.NewCore(eng), costs: costs,
	}
	return &OffloadClient{eng: eng, node: clientNode, conn: conn, gw: gw, size: host.Size()}
}

// Size implements blockdev.Device.
func (c *OffloadClient) Size() int64 { return c.size }

// Node returns the client's network node (for traffic accounting).
func (c *OffloadClient) Node() *simnet.Node { return c.node }

// Read implements blockdev.Device: request capsule over, payload back.
func (c *OffloadClient) Read(off, n int64, cb func(parity.Buffer, error)) {
	if err := blockdev.CheckRange(off, n, c.size); err != nil {
		c.eng.Defer(func() { cb(parity.Buffer{}, err) })
		return
	}
	req := nvmeof.Command{Opcode: nvmeof.OpRead, Offset: off, Length: n}
	c.conn.Send(c.node, int64(req.EncodedSize()), func() {
		c.gw.core.Exec(c.gw.costs.PerUser, func() {
			c.gw.host.Read(off, n, func(b parity.Buffer, err error) {
				c.gw.core.Exec(c.gw.costs.PerMsg, func() {
					c.conn.Send(c.gw.node, int64(b.Len())+64, func() {
						cb(b, err)
					})
				})
			})
		})
	})
}

// Write implements blockdev.Device: payload travels with the request.
func (c *OffloadClient) Write(off int64, data parity.Buffer, cb func(error)) {
	if err := blockdev.CheckRange(off, int64(data.Len()), c.size); err != nil {
		c.eng.Defer(func() { cb(err) })
		return
	}
	req := nvmeof.Command{Opcode: nvmeof.OpWrite, Offset: off, Length: int64(data.Len())}
	c.conn.Send(c.node, int64(req.EncodedSize())+int64(data.Len()), func() {
		c.gw.core.Exec(c.gw.costs.PerUser, func() {
			c.gw.host.Write(off, data, func(err error) {
				c.gw.core.Exec(c.gw.costs.PerMsg, func() {
					c.conn.Send(c.gw.node, 64, func() {
						cb(err)
					})
				})
			})
		})
	})
}

var _ blockdev.Device = (*OffloadClient)(nil)
