package core_test

import (
	"bytes"
	"testing"

	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
	"draid/internal/ssd"
)

// colocatedCluster builds an array whose members share physical servers
// (§5.5 resource sharing): width 6 over 3 servers, 2 bdevs each.
func colocatedCluster(t *testing.T, width, perServer int) (*cluster.Cluster, *core.HostController) {
	t.Helper()
	spec := cluster.DefaultSpec()
	spec.Targets = width
	spec.BdevsPerServer = perServer
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	spec.Drive = &drv
	cl := cluster.New(spec)
	h := cl.NewDRAID(core.Config{
		Geometry: raid.Geometry{Level: raid.Raid5, Width: width, ChunkSize: chunkSize},
		Deadline: 50 * sim.Millisecond,
	})
	return cl, h
}

func TestColocatedBdevsShareServers(t *testing.T) {
	cl, _ := colocatedCluster(t, 6, 2)
	if cl.Targets[0] != cl.Targets[1] || cl.Targets[0] == cl.Targets[2] {
		t.Fatal("bdev-to-server mapping wrong")
	}
	if cl.Cores[0] != cl.Cores[1] || cl.Cores[0] == cl.Cores[2] {
		t.Fatal("core sharing wrong")
	}
	if cl.Drives[0] == cl.Drives[1] {
		t.Fatal("drives must stay distinct")
	}
}

func TestColocatedRoundTripAndParity(t *testing.T) {
	cl, h := colocatedCluster(t, 6, 2)
	data := randBytes(70, 3*chunkSize)
	mustWrite(t, cl, h, 0, data)
	if !bytes.Equal(mustRead(t, cl, h, 0, int64(len(data))), data) {
		t.Fatal("co-located round-trip mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestColocatedDegradedRead(t *testing.T) {
	cl, h := colocatedCluster(t, 6, 2)
	data := randBytes(71, 16<<10)
	mustWrite(t, cl, h, 0, data)
	m := h.Geometry().DataDrive(0, 0)
	// A SERVER failure takes down the co-located sibling too, so fail only
	// the drive here and mark the member degraded (disk failure, not
	// server failure).
	cl.Drives[m].Fail()
	h.SetFailed(m, true)
	if !bytes.Equal(mustRead(t, cl, h, 0, int64(len(data))), data) {
		t.Fatal("co-located degraded read mismatch")
	}
}

// Peer transfers between co-located bdevs must bypass the NIC: an RMW whose
// data chunk and parity chunk live on the same server moves its partial
// parity with zero network bytes.
func TestColocatedPeerTransferIsLocal(t *testing.T) {
	cl, h := colocatedCluster(t, 6, 2)
	g := h.Geometry()
	// Find a stripe whose P member is co-located with some data chunk's
	// member, then write that chunk.
	for stripe := int64(0); stripe < 6; stripe++ {
		p := g.PDrive(stripe)
		for c := 0; c < g.DataChunks(); c++ {
			d := g.DataDrive(stripe, c)
			if cl.Targets[d] != cl.Targets[p] {
				continue
			}
			off := stripe*g.StripeDataSize() + int64(c)*g.ChunkSize
			mustWrite(t, cl, h, off, randBytes(72, int(g.ChunkSize))) // seed
			cl.ResetTraffic()
			mustWrite(t, cl, h, off, randBytes(73, int(g.ChunkSize)))
			// Server NIC inbound across all servers: only the host's data
			// push (1 chunk + capsules) — no peer traffic.
			var in int64
			seen := map[string]bool{}
			for _, nd := range cl.Targets {
				if !seen[nd.Name()] {
					seen[nd.Name()] = true
					in += nd.BytesIn()
				}
			}
			if ratio := float64(in) / float64(g.ChunkSize); ratio > 1.05 {
				t.Fatalf("server inbound = %.2fx with co-located parity, want ~1x (local peer transfer)", ratio)
			}
			verifyStripeParity(t, cl, h, stripe)
			return
		}
	}
	t.Fatal("no co-located data/parity pair found in 6 stripes")
}

// Server failure takes out every co-located bdev at once — the availability
// trade-off of packing members.
func TestColocatedServerFailureDegradesSiblings(t *testing.T) {
	cl, h := colocatedCluster(t, 6, 2)
	data := randBytes(74, 4*chunkSize)
	mustWrite(t, cl, h, 0, data)
	cl.FailTarget(0) // takes down members 0 AND 1 (shared node)
	h.SetFailed(0, true)
	h.SetFailed(1, true)
	// RAID-5 cannot survive two lost members: reads of their chunks fail.
	g := h.Geometry()
	lostChunks := 0
	for c := 0; c < g.DataChunks(); c++ {
		d := g.DataDrive(0, c)
		if d == 0 || d == 1 {
			lostChunks++
		}
	}
	if lostChunks == 0 {
		t.Skip("stripe 0 has no data on server 0")
	}
	errSeen := false
	h.Read(0, g.StripeDataSize(), func(_ parity.Buffer, err error) { errSeen = err != nil })
	cl.Eng.Run()
	if !errSeen {
		t.Fatal("double member loss on RAID-5 should fail reads")
	}
}
