package core

import (
	"fmt"

	"draid/internal/blockdev"
	"draid/internal/gf256"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

// This file holds the host-side fallback paths used for the rare cases the
// disaggregated machinery does not cover: RAID-6 dual-failure reads (which
// need a GF solve over P and Q) and the full-stripe retry after a timeout
// (§5.4). Both fetch survivor chunks to the host and compute locally —
// expensive in host NIC bandwidth, which is exactly why they are reserved
// for rare paths.

// fbPiece is one survivor segment gathered to the host.
type fbPiece struct {
	member  int
	kind    raid.ChunkKind
	dataIdx int
	buf     parity.Buffer
}

// hostFallbackRead reconstructs failedExt on the host for a RAID-6 stripe
// with two failed members: fetch every survivor's segment (data, P, Q as
// available) and solve with GF arithmetic.
func (h *HostController) hostFallbackRead(stripe int64, failedExt raid.Extent, normal []raid.Extent, asm *assembler, fail *error, done func()) {
	h.stats.HostFallbackReads++
	rOff := h.driveOff(stripe) + failedExt.Off
	rLen := failedExt.Len

	// The op below covers the survivor fetch; normal extents outside the
	// failed extent's range need their own reads, all folded into one
	// completion for the caller.
	var nonOverlap []raid.Extent
	for _, e := range normal {
		if !(e.Off >= failedExt.Off && e.Off+e.Len <= failedExt.Off+failedExt.Len) {
			nonOverlap = append(nonOverlap, e)
		}
	}
	pending := 1 + len(nonOverlap)
	part := func() {
		pending--
		if pending == 0 {
			done()
		}
	}

	// Recoverability: total losses within the stripe must fit the parity
	// budget, and two lost data chunks need Q (RAID-6). The classification is
	// captured NOW: by the time the survivor fetch completes, a concurrent
	// rebuild may have advanced its frontier past this stripe and shrunk the
	// failed set, but the solve must match the pieces actually fetched.
	var lost lostSet
	lostData, lostPar := 0, 0
	for m := 0; m < h.geo.Width; m++ {
		if !h.memberFailed(stripe, m) {
			continue
		}
		switch k, idx := h.geo.Role(stripe, m); k {
		case raid.KindP:
			lost.p = true
			lostPar++
		case raid.KindQ:
			lost.q = true
			lostPar++
		default:
			lost.data = append(lost.data, idx)
			lostData++
		}
	}
	if lostData+lostPar > h.geo.Level.ParityCount() ||
		(lostData >= 2 && h.geo.Level != raid.Raid6) {
		h.rt.Defer(func() {
			*fail = fmt.Errorf("core: stripe %d fallback read: %w", stripe, blockdev.ErrDoubleFault)
			done()
		})
		return
	}

	var pieces []*fbPiece
	byMember := make(map[NodeID]*fbPiece)
	for m := 0; m < h.geo.Width; m++ {
		if h.memberFailed(stripe, m) {
			continue
		}
		kind, idx := h.geo.Role(stripe, m)
		pc := &fbPiece{member: m, kind: kind, dataIdx: idx}
		pieces = append(pieces, pc)
		byMember[h.nodeAt(stripe, m)] = pc
	}
	watch := make([]NodeID, 0, len(pieces))
	for _, pc := range pieces {
		watch = append(watch, h.nodeAt(stripe, pc.member))
	}
	op := h.newStripeOp("fallback-read", stripe, len(pieces), watch,
		func() {
			h.cores.Exec(h.cfg.Costs.Gf(int(rLen))*sim.Duration(len(pieces)), func() {
				out := h.solveDualFailure(failedExt, pieces, lost)
				asm.put(failedExt.VOff, out)
				// Normal extents of this stripe rode along inside the
				// survivor segments.
				for _, e := range normal {
					for _, pc := range pieces {
						if pc.kind == raid.KindData && pc.dataIdx == e.Chunk {
							if pc.buf.Elided() {
								asm.put(e.VOff, parity.Sized(int(e.Len)))
							} else if e.Off >= failedExt.Off && e.Off+e.Len <= failedExt.Off+failedExt.Len {
								asm.put(e.VOff, pc.buf.Slice(int(e.Off-failedExt.Off), int(e.Len)))
							}
						}
					}
				}
				part()
			})
		},
		func(missing []NodeID) {
			*fail = fmt.Errorf("core: stripe %d: members %v lost during fallback read: %w",
				stripe, missing, blockdev.ErrDegraded)
			part()
		},
	)
	op.onPayload = func(from NodeID, _ nvmeof.Command, b parity.Buffer) {
		if pc := byMember[from]; pc != nil {
			pc.buf = b
		}
	}
	op.onMediaErr = func(member int, _ nvmeof.Command) {
		// A survivor's segment is unreadable: re-drive this extent (and the
		// overlapping normal extents it was carrying) through the generic
		// media gather, which excludes the bad member from the solve.
		var overlap []raid.Extent
		for _, e := range normal {
			if e.Off >= failedExt.Off && e.Off+e.Len <= failedExt.Off+failedExt.Len {
				overlap = append(overlap, e)
			}
		}
		h.mediaFallbackGroup(stripe, []raid.Extent{failedExt}, overlap, member, asm, fail, part)
	}
	for _, pc := range pieces {
		// Fetch each survivor segment over the union of the failed extent
		// and any normal extent on that member, so normal reads need no
		// extra round trip. For simplicity the fallback fetches the failed
		// extent's range, which covers the aligned benchmark workloads;
		// non-overlapping normal extents are re-read below.
		h.send(op, h.nodeAt(stripe, pc.member), nvmeof.Command{
			Opcode: nvmeof.OpRead, Offset: rOff, Length: rLen,
		}, parity.Buffer{})
	}
	for _, e := range nonOverlap {
		h.normalReadExtent(e, asm, fail, part)
	}
}

// lostSet is the failed-member classification of one stripe, frozen at the
// instant a fallback read was issued.
type lostSet struct {
	p, q bool
	data []int
}

// solveDualFailure recovers failedExt's data chunk from survivor pieces.
// lost is the issue-time classification matching how pieces were gathered.
func (h *HostController) solveDualFailure(failedExt raid.Extent, pieces []*fbPiece, lost lostSet) parity.Buffer {
	rLen := int(failedExt.Len)
	pLost, qLost, lostData := lost.p, lost.q, lost.data
	var pBuf, qBuf parity.Buffer
	var dataBufs []parity.Buffer
	var dataIdx []int
	for _, pc := range pieces {
		if pc.buf.Elided() {
			return parity.Sized(rLen)
		}
		switch pc.kind {
		case raid.KindP:
			pBuf = pc.buf
		case raid.KindQ:
			qBuf = pc.buf
		default:
			dataBufs = append(dataBufs, pc.buf)
			dataIdx = append(dataIdx, pc.dataIdx)
		}
	}
	switch {
	case pLost && qLost:
		panic("core: dual-parity failure routed to data reconstruction")
	case qLost:
		// Data + Q lost ⇒ plain P-XOR recovery.
		acc := pBuf.Clone()
		for _, d := range dataBufs {
			acc = parity.XORInto(acc, d)
		}
		return acc
	case pLost:
		// Data + P lost ⇒ recover from Q.
		survivors := make([][]byte, len(dataBufs))
		for i, d := range dataBufs {
			survivors[i] = d.Data()
		}
		out := make([]byte, rLen)
		gf256.RecoverOneDataFromQ(out, qBuf.Data(), survivors, dataIdx, failedExt.Chunk)
		return parity.FromBytes(out)
	default:
		// Two data chunks lost ⇒ full P+Q solve. RecoverTwoData keeps the
		// association dx↔x, dy↔y regardless of argument order.
		survivors := make([][]byte, len(dataBufs))
		for i, d := range dataBufs {
			survivors[i] = d.Data()
		}
		dx := make([]byte, rLen)
		dy := make([]byte, rLen)
		gf256.RecoverTwoData(dx, dy, pBuf.Data(), qBuf.Data(), survivors, dataIdx, lostData[0], lostData[1])
		if failedExt.Chunk == lostData[0] {
			return parity.FromBytes(dx)
		}
		return parity.FromBytes(dy)
	}
}
