package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"draid/internal/backend"
	"draid/internal/cpu"
	"draid/internal/integrity"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/trace"
)

// ServerConfig parameterizes a server-side controller.
type ServerConfig struct {
	Costs cpu.Costs
	// Pipelined enables the §5.3 parallel I/O pipeline: the drive write and
	// the partial-parity generation/forwarding proceed concurrently after
	// the drive read, and the bdev reports its completion to the host
	// independently. When false, stages run serially (the ablation).
	Pipelined bool
	// BarrierReduce disables the §5.2 non-blocking reduce: peer
	// contributions arriving before the anchoring Parity/Reconstruction
	// command are buffered instead of reduced immediately (the "barrier
	// between phases" design the paper rejects — an ablation knob).
	BarrierReduce bool
	// Integrity enables per-block CRC32C protection information alongside
	// the drive (the software stand-in for T10 DIF): every write updates the
	// covering checksums and every read verifies them, so silent bit rot is
	// detected at the server and reported to the host as a per-chunk erasure
	// (StatusMediaError), same as a drive URE. The CRCs are modeled as
	// hardware-offloaded (zero virtual-time cost), so enabling integrity
	// does not perturb timing until a fault is actually caught. Requires a
	// data-storing drive.
	Integrity bool
	// Trace, when non-nil, receives protocol events.
	Trace func(format string, args ...any)
	// Tracer, when enabled, records capsule-arrival instants on TraceTrack
	// (registered by the cluster wiring). Nil disables.
	Tracer     *trace.Collector
	TraceTrack trace.Track
}

// ServerController is a dRAID bdev: the server-side controller managing one
// drive. It is RAID-unaware — every command carries absolute drive offsets
// and explicit forwarding destinations (§3: "A dRAID bdev is unaware of
// being in a RAID").
type ServerController struct {
	id    NodeID
	rt    backend.Runtime
	fab   backend.Transport
	drive backend.Drive
	core  backend.Executor
	cfg   ServerConfig

	// pool recycles reduce accumulators. Safe because the accumulator is
	// private to this controller until it is either persisted (the drive
	// snapshots the payload at submission) or handed to the host (in which
	// case it is not recycled).
	pool *parity.Pool

	// Reduce-phase state (Algorithm 2), keyed by (volume, command ID). The
	// paper keys by offset, relying on single-writer-per-stripe admission;
	// command IDs are equivalent under that invariant and carry it
	// explicitly. The volume qualifier keeps co-tenant hosts — which assign
	// op IDs independently — from colliding in one bdev's reduce table.
	reduces map[reduceKey]*reduceState

	// integ holds the per-block protection information when cfg.Integrity
	// is set; checksumErrors counts reads it failed (detected bit rot).
	integ          *integrity.Store
	checksumErrors int64

	// fenced records, per volume, the highest command ID severed by an
	// OpFence: commands of that volume at or below the boundary belong to a
	// dead controller session and are discarded on arrival, and their
	// not-yet-submitted drive writes are dropped (§5.4 failover fencing).
	fenced map[uint32]uint64
	// wseq/wpending track drive writes in flight through writeDrive;
	// fences barrier on the writes pending at their arrival.
	wseq     uint64
	wpending map[uint64]struct{}
	barriers []*fenceBarrier

	// epochs records, per volume, the highest host epoch seen on a capsule:
	// the consensus-free membership fence. Commands below it are rejected
	// with StatusStaleEpoch — a partitioned predecessor can never corrupt
	// state after a takeover, whether or not the replacement got an explicit
	// OpFence through. Volumes absent from the map (epoch 0 on the wire) run
	// with fencing off, byte-identical to previous releases.
	epochs map[uint32]uint64
	// epochHold queues a volume's commands while an epoch bump waits out the
	// predecessor epoch's in-flight drive writes — the implicit barrier that
	// demotes the explicit Fence verb to a latency optimization. Presence of
	// the key marks the hold; messages drain FIFO when the barrier fires.
	epochHold map[uint32][]Message
	// staleRejects counts stale-epoch rejections. Atomic: status surfaces
	// read it from outside the controller's event loop on the realtime
	// backend.
	staleRejects int64
	// epochChecksOff disables admitEpoch entirely — every capsule is
	// dispatched regardless of its epoch, as if this bdev predated the
	// membership layer. Exists for the chaos harness's "teeth" mode, which
	// must reproduce the stale-destage corruption that epoch fencing
	// prevents. Atomic: injected from outside the event loop.
	epochChecksOff atomic.Bool
}

// fenceBarrier waits for the drive writes that were in flight when a fence
// arrived (those numbered at or below seq) to land, then fires.
type fenceBarrier struct {
	seq       uint64
	remaining int
	fire      func()
}

// reduceKey names one reduction: the issuing volume plus its op ID.
type reduceKey struct {
	vol uint32
	id  uint64
}

// reduceState accumulates partial results for one reduction (parity update
// or data reconstruction) over the union segment [absOff, absOff+length).
type reduceState struct {
	absOff int64
	length int64
	acc    parity.Buffer
	// counter implements the paper's wait_num trick: each Peer contribution
	// decrements it; the anchoring Parity/Reconstruction command adds its
	// WaitNum. The reduction completes when the anchor has arrived, any
	// preload finished, and counter is zero.
	counter        int
	anchorArrived  bool
	preloadPending bool
	// writeBack: parity reductions persist the result to the drive;
	// reconstructions return it to the host instead (§6.1 decoupled paths).
	writeBack bool
	replyTo   NodeID
	vol       uint32
	id        uint64
	// epoch is the host epoch the reduction was opened under; an epoch bump
	// kills reductions of superseded epochs exactly as a fence does.
	epoch uint64
	// dead marks a reduction severed by a fence or an epoch bump: in-flight
	// closures that still hold the state (a parity preload, a deferred
	// contribution) must never complete it.
	dead bool
	// deferred holds contributions buffered by the BarrierReduce ablation.
	deferred []func()
}

// NewServer creates a server-side controller and registers it on the
// transport. It is backend-agnostic: rt, fab, drive, and core may belong to
// the deterministic simulation or to the real-time backend.
func NewServer(id NodeID, rt backend.Runtime, fab backend.Transport, drive backend.Drive, core backend.Executor, cfg ServerConfig) *ServerController {
	s := &ServerController{
		id: id, rt: rt, fab: fab, drive: drive, core: core, cfg: cfg,
		reduces:   make(map[reduceKey]*reduceState),
		pool:      parity.NewPool(),
		fenced:    make(map[uint32]uint64),
		wpending:  make(map[uint64]struct{}),
		epochs:    make(map[uint32]uint64),
		epochHold: make(map[uint32][]Message),
	}
	if cfg.Integrity {
		if !drive.StoresData() {
			panic("core: integrity requires a data-storing drive (StoreData)")
		}
		s.integ = integrity.NewStore(integrity.DefaultBlockSize)
	}
	fab.Register(id, s.handle)
	return s
}

// Drive returns the controller's drive (for tests and rebuild tooling).
func (s *ServerController) Drive() backend.Drive { return s.drive }

// ChecksumErrors reports how many reads failed end-to-end verification.
func (s *ServerController) ChecksumErrors() int64 { return s.checksumErrors }

// StaleRejects reports how many commands this bdev rejected for carrying a
// superseded host epoch. Safe to call from any goroutine.
func (s *ServerController) StaleRejects() int64 { return atomic.LoadInt64(&s.staleRejects) }

// VolumeEpoch reports the highest host epoch seen for a volume (0 when the
// volume has never sent an epoch-stamped capsule). Test/status surface; call
// from the controller's loop.
func (s *ServerController) VolumeEpoch(vol uint32) uint64 { return s.epochs[vol] }

// SetEpochChecks enables or disables this bdev's epoch enforcement. Disabling
// it is a deliberate fault injection (chaos "teeth" mode): stale hosts' writes
// are applied instead of rejected, reproducing the corruption the membership
// layer exists to prevent. Safe to call from any goroutine.
func (s *ServerController) SetEpochChecks(on bool) { s.epochChecksOff.Store(!on) }

// peek adapts the drive's synchronous byte access for the checksum store.
func (s *ServerController) peek(off, n int64) []byte { return s.drive.PeekSync(off, n) }

// readVerified reads [off, off+n) and, when integrity is on, verifies the
// covering block checksums before handing the payload up: detected bit rot
// surfaces as a *backend.MediaError, indistinguishable from a drive URE, so
// one host-side recovery path serves both.
func (s *ServerController) readVerified(off, n int64, cb func(parity.Buffer, error)) {
	s.drive.Read(off, n, func(b parity.Buffer, err error) {
		if err == nil && s.integ != nil {
			if badOff, badLen, ok := s.integ.Verify(off, n, s.drive.Capacity(), s.peek); !ok {
				s.checksumErrors++
				s.trace("checksum mismatch at [%d,+%d)", badOff, badLen)
				cb(parity.Buffer{}, &backend.MediaError{Off: badOff, N: badLen})
				return
			}
		}
		cb(b, err)
	})
}

// writeDrive writes and, when integrity is on, refreshes the covering block
// checksums from the stored bytes once the write lands.
//
// Edge blocks only partially covered by the write keep slack bytes the
// writer never saw. Recomputing their checksum blindly would absorb any
// corruption sitting in that slack into a "valid" checksum — laundering bit
// rot into data every later read trusts. So those blocks are verified
// against their pre-write content first, and a block that fails stays
// poisoned after the write: reads keep reporting it, and the host's
// block-aligned repair path rewrites it whole with reconstructed bytes.
func (s *ServerController) writeDrive(off int64, b parity.Buffer, cb func(error)) {
	n := int64(b.Len())
	var stale []int64
	if s.integ != nil && n > 0 {
		capacity := s.drive.Capacity()
		bs := s.integ.BlockSize()
		check := func(blk int64) {
			bEnd := blk + bs
			if bEnd > capacity {
				bEnd = capacity
			}
			if blk >= off && bEnd <= off+n {
				return // fully covered: the write defines the whole block
			}
			if _, _, ok := s.integ.Verify(blk, bEnd-blk, capacity, s.peek); !ok {
				stale = append(stale, blk)
			}
		}
		head := off - off%bs
		tail := (off + n - 1) - (off+n-1)%bs
		check(head)
		if tail != head {
			check(tail)
		}
	}
	s.wseq++
	seq := s.wseq
	s.wpending[seq] = struct{}{}
	s.drive.Write(off, b, func(err error) {
		if err == nil && s.integ != nil {
			s.integ.Update(off, n, s.drive.Capacity(), s.peek)
			for _, blk := range stale {
				s.integ.Invalidate(blk)
			}
		}
		s.writeLanded(seq)
		cb(err)
	})
}

// writeLanded retires one drive write and releases any fence or epoch
// barrier whose pre-barrier writes have all landed. Barriers are detached
// before firing: an epoch barrier's fire dispatches queued commands, which
// may install new barriers of their own.
func (s *ServerController) writeLanded(seq uint64) {
	delete(s.wpending, seq)
	current := s.barriers
	s.barriers = nil
	var fires []*fenceBarrier
	for _, b := range current {
		if seq <= b.seq {
			b.remaining--
		}
		if b.remaining <= 0 {
			fires = append(fires, b)
		} else {
			s.barriers = append(s.barriers, b)
		}
	}
	for _, b := range fires {
		b.fire()
	}
}

// releaseBarriers fires every pending barrier: the drive has failed, so the
// writes they were waiting out are swallowed (their callbacks never run) and
// can never take effect.
func (s *ServerController) releaseBarriers() {
	s.wpending = make(map[uint64]struct{})
	pending := s.barriers
	s.barriers = nil
	for _, b := range pending {
		b.fire()
	}
}

// fencedOut reports whether a command belongs to a controller session a
// fence has severed: its effects must be dropped, not executed.
func (s *ServerController) fencedOut(vol uint32, id uint64) bool {
	bound, ok := s.fenced[vol]
	return ok && id <= bound
}

// superseded reports whether a command admitted at epoch e has been
// overtaken by a takeover: the volume's epoch moved past it while its drive
// I/O was still in flight. Mirrors the mid-command fencedOut checks.
func (s *ServerController) superseded(vol uint32, e uint64) bool {
	return e != 0 && e < s.epochs[vol]
}

// mediaStatus classifies a drive/verify error for a completion capsule:
// media errors map to StatusMediaError echoing the precise unreadable range
// (falling back to the whole accessed range), everything else to
// StatusError over the accessed range.
func mediaStatus(err error, off, length int64) (nvmeof.Status, int64, int64) {
	var me *backend.MediaError
	if errors.As(err, &me) {
		return nvmeof.StatusMediaError, me.Off, me.N
	}
	if errors.Is(err, backend.ErrMediaError) {
		return nvmeof.StatusMediaError, off, length
	}
	return nvmeof.StatusError, off, length
}

func (s *ServerController) trace(format string, args ...any) {
	if s.cfg.Trace != nil {
		s.cfg.Trace("[t%d %8s] "+format, append([]any{int(s.id), s.rt.Now()}, args...)...)
	}
}

// handle dispatches an incoming capsule after per-message CPU processing.
func (s *ServerController) handle(m Message) {
	s.core.Exec(s.cfg.Costs.PerMsg, func() {
		s.trace("recv %v from %d", m.Cmd.String(), int(m.From))
		if t := s.cfg.Tracer; t.Enabled() {
			t.Instant(s.cfg.TraceTrack, "rpc", m.Cmd.SpanName()+"←"+fromName(m.From),
				trace.I64("id", int64(m.Cmd.ID)))
		}
		if m.Cmd.Opcode != nvmeof.OpFence && s.fencedOut(m.Cmd.NSID, m.Cmd.ID) {
			// A straggler from a fenced (dead) controller session — a
			// command still in the fabric when the fence arrived, or a peer
			// contribution triggered by one. Drop it; its issuer is gone.
			s.trace("drop fenced %v", m.Cmd.String())
			return
		}
		if !s.admitEpoch(m) {
			return
		}
		s.dispatch(m)
	})
}

// admitEpoch enforces the per-volume host epoch on an arriving command.
// It returns false when the command must not be dispatched now: rejected as
// stale, or queued behind an epoch-bump barrier.
func (s *ServerController) admitEpoch(m Message) bool {
	e := m.Cmd.Epoch
	if e == 0 {
		return true // epoch fencing off for this capsule: legacy behavior
	}
	if s.epochChecksOff.Load() {
		return true // teeth mode: enforcement injected away (SetEpochChecks)
	}
	vol := m.Cmd.NSID
	cur := s.epochs[vol]
	if e < cur {
		// A superseded host (partitioned through a takeover) is still
		// talking. Reject with a typed status so it learns to stand down;
		// peer contributions are dropped silently — their originator is
		// another bdev relaying the stale host's work, and the stale host's
		// own anchor command earns the typed answer.
		atomic.AddInt64(&s.staleRejects, 1)
		s.trace("reject stale epoch %d (current %d): %v", e, cur, m.Cmd.String())
		if m.Cmd.Opcode != nvmeof.OpPeer {
			s.complete(m.From, vol, m.Cmd.ID, e, nvmeof.StatusStaleEpoch, 0, 0, parity.Buffer{})
		}
		return false
	}
	if hold, holding := s.epochHold[vol]; holding {
		// An epoch bump is still waiting out the predecessor's in-flight
		// drive writes; everything behind it queues FIFO.
		s.epochHold[vol] = append(hold, m)
		return false
	}
	if e > cur {
		s.bumpEpoch(vol, e)
		if _, holding := s.epochHold[vol]; holding {
			s.epochHold[vol] = append(s.epochHold[vol], m)
			return false
		}
	}
	return true
}

// bumpEpoch installs a higher host epoch for a volume: first contact from a
// replacement host implicitly fences every predecessor. Reductions opened
// under lower epochs are killed, and when predecessor drive writes are still
// in flight, a barrier holds the volume's traffic until they land — the same
// guarantee an explicit OpFence gives, without requiring one to arrive.
func (s *ServerController) bumpEpoch(vol uint32, e uint64) {
	s.trace("epoch bump vol %d: %d -> %d", vol, s.epochs[vol], e)
	s.epochs[vol] = e
	for key, st := range s.reduces {
		if key.vol == vol && st.epoch < e {
			st.dead = true
			delete(s.reduces, key)
		}
	}
	if s.drive.Failed() {
		// Swallowed writes never land; waiting on them would hang forever.
		s.releaseBarriers()
		return
	}
	if len(s.wpending) == 0 {
		return
	}
	s.epochHold[vol] = nil // presence marks the hold
	s.barriers = append(s.barriers, &fenceBarrier{seq: s.wseq, remaining: len(s.wpending), fire: func() {
		pending := s.epochHold[vol]
		delete(s.epochHold, vol)
		for _, qm := range pending {
			// Re-admit: the queue may hold a yet-newer epoch's first
			// command, or stragglers an interleaved bump made stale.
			if s.admitEpoch(qm) {
				s.dispatch(qm)
			}
		}
	}})
}

// dispatch routes an admitted command to its opcode handler.
func (s *ServerController) dispatch(m Message) {
	switch m.Cmd.Opcode {
	case nvmeof.OpRead:
		s.handleRead(m)
	case nvmeof.OpWrite:
		s.handleWrite(m)
	case nvmeof.OpPartialWrite:
		s.handlePartialWrite(m)
	case nvmeof.OpParity:
		s.handleParity(m)
	case nvmeof.OpReconstruction:
		s.handleReconstruction(m)
	case nvmeof.OpPeer:
		s.handlePeer(m)
	case nvmeof.OpHeartbeat:
		s.handleHeartbeat(m)
	case nvmeof.OpFence:
		s.handleFence(m)
	default:
		panic(fmt.Sprintf("core: server %d: unexpected opcode %v", s.id, m.Cmd.Opcode))
	}
}

// complete sends a completion capsule (optionally with payload) to dst. The
// subtype disambiguates the two §6.1 return paths at the host: SubAlsoRead
// marks a direct normal-read return, SubNoRead a reconstructed segment. The
// namespace and epoch are echoed from the triggering command so the host
// endpoint's demux can route the completion to the owning volume's
// controller — and so a replacement host can discard completions addressed
// to the predecessor epoch it seized.
func (s *ServerController) complete(dst NodeID, ns uint32, id, epoch uint64, st nvmeof.Status, off, length int64, payload parity.Buffer) {
	s.completeSub(dst, ns, id, epoch, st, nvmeof.SubNone, off, length, payload)
}

func (s *ServerController) completeSub(dst NodeID, ns uint32, id, epoch uint64, st nvmeof.Status, sub nvmeof.Subtype, off, length int64, payload parity.Buffer) {
	cmd := nvmeof.Command{ID: id, Opcode: nvmeof.OpCompletion, NSID: ns, Status: st, Subtype: sub, Offset: off, Length: length, Epoch: epoch}
	s.fab.Send(s.id, dst, cmd, payload)
}

// handleHeartbeat answers a liveness probe. A healthy bdev completes with
// success, a failed drive with error status; a down node never gets here
// (the fabric drops its messages) and the probe times out at the host.
func (s *ServerController) handleHeartbeat(m Message) {
	st := nvmeof.StatusSuccess
	if s.drive.Failed() {
		st = nvmeof.StatusError
	}
	s.complete(m.From, m.Cmd.NSID, m.Cmd.ID, m.Cmd.Epoch, st, 0, 0, parity.Buffer{})
}

// handleFence severs a dead controller session (§5.4): every command of the
// fence's namespace with an ID below the fence's own — the fabric delivers
// in order, so anything the crashed controller sent has already arrived or
// carries a lower ID — is discarded from now on, its open reductions are
// killed, and the fence completes only after the drive writes in flight at
// its arrival have landed. The replacement controller fences every bdev
// before resyncing dirty stripes, so no straggler write can land after the
// resync read the data it recomputed parity from.
func (s *ServerController) handleFence(m Message) {
	vol, bound := m.Cmd.NSID, m.Cmd.ID-1
	if cur, ok := s.fenced[vol]; !ok || bound > cur {
		s.fenced[vol] = bound
	}
	for key, st := range s.reduces {
		if key.vol == vol && key.id <= bound {
			st.dead = true
			delete(s.reduces, key)
		}
	}
	done := func() {
		s.complete(m.From, m.Cmd.NSID, m.Cmd.ID, m.Cmd.Epoch, nvmeof.StatusSuccess, 0, 0, parity.Buffer{})
	}
	if s.drive.Failed() {
		// A failed drive swallows writes (and their completions) instead of
		// landing them: nothing pending can take effect, so the barrier is
		// moot. Forget the swallowed writes — their callbacks never run —
		// and release any barriers (epoch holds) waiting on them.
		s.releaseBarriers()
		done()
		return
	}
	if len(s.wpending) == 0 {
		done()
		return
	}
	s.barriers = append(s.barriers, &fenceBarrier{seq: s.wseq, remaining: len(s.wpending), fire: done})
}

// handleRead serves a standard NVMe-oF read.
func (s *ServerController) handleRead(m Message) {
	s.readVerified(m.Cmd.Offset, m.Cmd.Length, func(b parity.Buffer, err error) {
		s.core.Exec(s.cfg.Costs.PerIO, func() {
			st, off, length := nvmeof.StatusSuccess, m.Cmd.Offset, m.Cmd.Length
			if err != nil {
				st, off, length = mediaStatus(err, m.Cmd.Offset, m.Cmd.Length)
			}
			s.complete(m.From, m.Cmd.NSID, m.Cmd.ID, m.Cmd.Epoch, st, off, length, b)
		})
	})
}

// handleWrite serves a standard NVMe-oF write.
func (s *ServerController) handleWrite(m Message) {
	s.writeDrive(m.Cmd.Offset, m.Payload, func(err error) {
		s.core.Exec(s.cfg.Costs.PerIO, func() {
			st := nvmeof.StatusSuccess
			if err != nil {
				st = nvmeof.StatusError
			}
			s.complete(m.From, m.Cmd.NSID, m.Cmd.ID, m.Cmd.Epoch, st, m.Cmd.Offset, int64(m.Payload.Len()), parity.Buffer{})
		})
	})
}

// sendContribution forwards a partial result to the P reducer and, for
// RAID-6, the Q reducer named in the command. The contribution covers
// [fo, fo+fl) absolute; union is quoted so a late-arriving anchor command
// finds consistent state (§5.2).
func (s *ServerController) sendContribution(cmd nvmeof.Command, contrib parity.Buffer, fo, fl int64, unionOff, unionLen int64) {
	peer := nvmeof.Command{
		ID: cmd.ID, Opcode: nvmeof.OpPeer, NSID: cmd.NSID, Epoch: cmd.Epoch,
		Offset: unionOff, Length: unionLen,
		FwdOffset: fo, FwdLength: fl,
		DataIdx: NoScale,
	}
	if cmd.NextDest != NoDest {
		s.trace("fwd contribution [%d,%d) to t%d", fo, fo+fl, cmd.NextDest)
		s.fab.Send(s.id, NodeID(cmd.NextDest), peer, contrib)
	}
	if cmd.NextDest2 != NoDest {
		qPeer := peer
		qPeer.DataIdx = cmd.DataIdx // reducer scales by g^DataIdx
		s.trace("fwd Q contribution [%d,%d) to t%d", fo, fo+fl, cmd.NextDest2)
		s.fab.Send(s.id, NodeID(cmd.NextDest2), qPeer, contrib.Clone())
	}
}

// handlePartialWrite implements Algorithm 1 (HandleDataChunk).
//
// Capsule conventions (all offsets absolute drive offsets):
//   - Offset/Length + Payload: the write segment (Length 0 for RW_READ)
//   - FwdOffset/FwdLength: this bdev's contribution segment
//     (== write segment for RMW; == union for RW_WRITE/RW_READ)
//   - SGL[0]: the union segment, quoted in Peer messages
//   - NextDest / NextDest2 / DataIdx: reducer routing
func (s *ServerController) handlePartialWrite(m Message) {
	cmd := m.Cmd
	if len(cmd.SGL) != 1 {
		panic("core: PartialWrite without union SGL")
	}
	union := cmd.SGL[0]

	writeDone := func() {
		s.core.Exec(s.cfg.Costs.PerIO, func() {
			// §5.3: the data bdev reports its own completion so the drive
			// write need not gate parity forwarding.
			s.complete(m.From, cmd.NSID, cmd.ID, cmd.Epoch, nvmeof.StatusSuccess, cmd.Offset, cmd.Length, parity.Buffer{})
		})
	}

	switch cmd.Subtype {
	case nvmeof.SubRMW:
		// Read old data over the write segment; delta = old ⊕ new.
		s.readVerified(cmd.Offset, cmd.Length, func(oldB parity.Buffer, err error) {
			if err != nil {
				st, off, length := mediaStatus(err, cmd.Offset, cmd.Length)
				s.complete(m.From, cmd.NSID, cmd.ID, cmd.Epoch, st, off, length, parity.Buffer{})
				return
			}
			forward := func(next func()) {
				s.core.Exec(s.cfg.Costs.Xor(int(cmd.Length)), func() {
					// oldB is a private drive-read copy with no other reader;
					// fold the new data in place instead of cloning.
					delta := parity.XORInto(oldB, m.Payload)
					s.sendContribution(cmd, delta, cmd.FwdOffset, cmd.FwdLength, union.Off, union.Len)
					if next != nil {
						next()
					}
				})
			}
			write := func(next func()) {
				if s.fencedOut(cmd.NSID, cmd.ID) || s.superseded(cmd.NSID, cmd.Epoch) {
					return // fenced or superseded mid-command: the write must not land
				}
				s.writeDrive(cmd.Offset, m.Payload, func(werr error) {
					if werr != nil {
						s.complete(m.From, cmd.NSID, cmd.ID, cmd.Epoch, nvmeof.StatusError, cmd.Offset, cmd.Length, parity.Buffer{})
						return
					}
					writeDone()
					if next != nil {
						next()
					}
				})
			}
			if s.cfg.Pipelined {
				// Drive write and parity generation/forwarding overlap.
				forward(nil)
				write(nil)
			} else {
				forward(func() { write(nil) })
			}
		})

	case nvmeof.SubRWWrite:
		// Contribution = stored data over the union, overlaid with the new
		// write segment. Skip the drive read when the write covers the
		// whole union.
		buildAndGo := func(contrib parity.Buffer) {
			s.core.Exec(s.cfg.Costs.Xor(int(union.Len)), func() {
				s.sendContribution(cmd, contrib, cmd.FwdOffset, cmd.FwdLength, union.Off, union.Len)
			})
		}
		if cmd.Offset == union.Off && cmd.Length == union.Len {
			buildAndGo(m.Payload.Clone())
			s.writeDrive(cmd.Offset, m.Payload, func(err error) {
				if err != nil {
					s.complete(m.From, cmd.NSID, cmd.ID, cmd.Epoch, nvmeof.StatusError, cmd.Offset, cmd.Length, parity.Buffer{})
					return
				}
				writeDone()
			})
			return
		}
		s.readVerified(union.Off, union.Len, func(oldB parity.Buffer, err error) {
			if err != nil {
				st, off, length := mediaStatus(err, union.Off, union.Len)
				s.complete(m.From, cmd.NSID, cmd.ID, cmd.Epoch, st, off, length, parity.Buffer{})
				return
			}
			contrib := oldB // private drive-read copy; overlay in place
			contrib.CopyAt(int(cmd.Offset-union.Off), m.Payload)
			if m.Payload.Elided() {
				contrib = parity.Sized(contrib.Len())
			}
			write := func() {
				if s.fencedOut(cmd.NSID, cmd.ID) || s.superseded(cmd.NSID, cmd.Epoch) {
					return // fenced or superseded mid-command: the write must not land
				}
				s.writeDrive(cmd.Offset, m.Payload, func(werr error) {
					if werr != nil {
						s.complete(m.From, cmd.NSID, cmd.ID, cmd.Epoch, nvmeof.StatusError, cmd.Offset, cmd.Length, parity.Buffer{})
						return
					}
					writeDone()
				})
			}
			if s.cfg.Pipelined {
				buildAndGo(contrib)
				write()
			} else {
				s.core.Exec(s.cfg.Costs.Xor(int(union.Len)), func() {
					s.sendContribution(cmd, contrib, cmd.FwdOffset, cmd.FwdLength, union.Off, union.Len)
					write()
				})
			}
		})

	case nvmeof.SubRWRead:
		// Contribution = stored data over the union; nothing written, no
		// host callback (the reducer's completion covers this bdev).
		s.readVerified(union.Off, union.Len, func(oldB parity.Buffer, err error) {
			if err != nil {
				st, off, length := mediaStatus(err, union.Off, union.Len)
				s.complete(m.From, cmd.NSID, cmd.ID, cmd.Epoch, st, off, length, parity.Buffer{})
				return
			}
			s.core.Exec(s.cfg.Costs.PerIO, func() {
				s.sendContribution(cmd, oldB, cmd.FwdOffset, cmd.FwdLength, union.Off, union.Len)
			})
		})

	default:
		panic(fmt.Sprintf("core: PartialWrite subtype %v", cmd.Subtype))
	}
}

// stateFor finds or creates the reduce state for a command's (volume, ID).
func (s *ServerController) stateFor(cmd nvmeof.Command, absOff, length int64) *reduceState {
	key := reduceKey{vol: cmd.NSID, id: cmd.ID}
	st, ok := s.reduces[key]
	if !ok {
		st = &reduceState{vol: cmd.NSID, id: cmd.ID, epoch: cmd.Epoch, absOff: absOff, length: length, acc: s.pool.Get(int(length)), replyTo: HostID}
		s.reduces[key] = st
	}
	return st
}

// reduceInto folds a contribution at [fo, fo+fl) into the accumulator,
// scaled by g^dataIdx unless dataIdx is NoScale (Algorithm 2,
// reduce_new_buffer — generalized to sub-ranges and RAID-6 Q).
func (s *ServerController) reduceInto(st *reduceState, contrib parity.Buffer, fo, fl int64, dataIdx uint16) {
	if fo < st.absOff || fo+fl > st.absOff+st.length {
		panic(fmt.Sprintf("core: contribution [%d,%d) outside union [%d,%d)", fo, fo+fl, st.absOff, st.absOff+st.length))
	}
	dst := st.acc.Slice(int(fo-st.absOff), int(fl))
	var merged parity.Buffer
	if dataIdx == NoScale {
		merged = parity.XORInto(dst, contrib)
	} else {
		merged = parity.MulAddInto(dst, contrib, parity.QCoeff(int(dataIdx)))
	}
	if merged.Elided() && !st.acc.Elided() {
		// An elided contribution poisons the whole accumulator.
		st.acc = parity.Sized(int(st.length))
	}
}

// handlePeer implements the Peer-arrival half of Algorithm 2
// (handle_peer_partial_parity). Peers may arrive before the anchoring
// Parity/Reconstruction command; state is created on demand.
func (s *ServerController) handlePeer(m Message) {
	cmd := m.Cmd
	st := s.stateFor(cmd, cmd.Offset, cmd.Length)
	apply := func() {
		cost := s.cfg.Costs.Xor(int(cmd.FwdLength))
		if cmd.DataIdx != NoScale {
			cost = s.cfg.Costs.Gf(int(cmd.FwdLength))
		}
		s.core.Exec(cost, func() {
			s.reduceInto(st, m.Payload, cmd.FwdOffset, cmd.FwdLength, cmd.DataIdx)
			st.counter--
			s.finish(st)
		})
	}
	if s.cfg.BarrierReduce && !st.anchorArrived {
		st.deferred = append(st.deferred, apply)
		return
	}
	apply()
}

// handleParity implements the host-command half of Algorithm 2
// (handle_host_parity). RMW preloads the stored parity chunk; reconstruct
// writes skip the preload. A payload on the Parity command is the host's own
// contribution (degraded writes where the host supplies the failed chunk's
// new data).
func (s *ServerController) handleParity(m Message) {
	cmd := m.Cmd
	st := s.stateFor(cmd, cmd.Offset, cmd.Length)
	st.writeBack = true
	st.replyTo = m.From

	hostContrib := func() {
		if m.Payload.Len() > 0 {
			s.reduceInto(st, m.Payload, cmd.FwdOffset, cmd.FwdLength, cmd.DataIdx)
		}
	}

	if cmd.Subtype == nvmeof.SubRMW {
		st.preloadPending = true
		s.readVerified(cmd.Offset, cmd.Length, func(oldB parity.Buffer, err error) {
			if err != nil {
				cst, off, length := mediaStatus(err, st.absOff, st.length)
				s.complete(st.replyTo, st.vol, st.id, st.epoch, cst, off, length, parity.Buffer{})
				delete(s.reduces, reduceKey{vol: st.vol, id: st.id})
				return
			}
			s.core.Exec(s.cfg.Costs.Xor(int(cmd.Length)), func() {
				s.reduceInto(st, oldB, cmd.Offset, cmd.Length, NoScale)
				hostContrib()
				st.preloadPending = false
				st.counter += int(cmd.WaitNum)
				st.anchorArrived = true
				s.drainDeferred(st)
				s.finish(st)
			})
		})
		return
	}
	s.core.Exec(s.cfg.Costs.Xor(int(cmd.FwdLength)), func() {
		hostContrib()
		st.counter += int(cmd.WaitNum)
		st.anchorArrived = true
		s.drainDeferred(st)
		s.finish(st)
	})
}

// drainDeferred releases contributions buffered by the BarrierReduce
// ablation once the anchor command has arrived.
func (s *ServerController) drainDeferred(st *reduceState) {
	pending := st.deferred
	st.deferred = nil
	for _, fn := range pending {
		fn()
	}
}

// finish implements Algorithm 2's finish(): when every expected partial
// result has been folded in (counter back to zero after the anchor's
// WaitNum), persist or return the result.
func (s *ServerController) finish(st *reduceState) {
	if st.dead || s.fencedOut(st.vol, st.id) || s.superseded(st.vol, st.epoch) {
		return // reduction severed by a fence or epoch bump: never persist or reply
	}
	if !st.anchorArrived || st.preloadPending || st.counter != 0 {
		return
	}
	delete(s.reduces, reduceKey{vol: st.vol, id: st.id})
	if st.writeBack {
		s.writeDrive(st.absOff, st.acc, func(err error) {
			st2 := nvmeof.StatusSuccess
			if err != nil {
				st2 = nvmeof.StatusError
			}
			s.core.Exec(s.cfg.Costs.PerIO, func() {
				s.complete(st.replyTo, st.vol, st.id, st.epoch, st2, st.absOff, st.length, parity.Buffer{})
			})
		})
		// The drive snapshotted the accumulator at submission; recycle it.
		s.pool.Put(st.acc)
		return
	}
	// Reconstruction: return the rebuilt segment to the host directly.
	s.core.Exec(s.cfg.Costs.PerIO, func() {
		s.completeSub(st.replyTo, st.vol, st.id, st.epoch, nvmeof.StatusSuccess, nvmeof.SubNoRead, st.absOff, st.length, st.acc)
	})
}

// handleReconstruction implements the §6.1 degraded-read participant logic.
//
// Capsule conventions (absolute offsets):
//   - Offset/Length: this bdev's combined drive read (union of its own
//     normal-read segment and the reconstruction segment, plus any gap)
//   - FwdOffset/FwdLength: the reconstruction segment R
//   - SGL[0] (AlsoRead only): this bdev's own normal-read segment, returned
//     directly to the host on the decoupled path
//   - NextDest: the reducer; WaitNum (reducer only): expected contributions
//     including the reducer's own
//   - DataIdx: GF scale for this bdev's contribution (NoScale for XOR)
func (s *ServerController) handleReconstruction(m Message) {
	cmd := m.Cmd
	isReducer := NodeID(cmd.NextDest) == s.id
	if isReducer {
		st := s.stateFor(cmd, cmd.FwdOffset, cmd.FwdLength)
		st.writeBack = false
		st.replyTo = m.From
		st.counter += int(cmd.WaitNum)
		st.anchorArrived = true
		s.drainDeferred(st)
	}
	s.readVerified(cmd.Offset, cmd.Length, func(b parity.Buffer, err error) {
		if err != nil {
			st, off, length := mediaStatus(err, cmd.Offset, cmd.Length)
			s.complete(m.From, cmd.NSID, cmd.ID, cmd.Epoch, st, off, length, parity.Buffer{})
			return
		}
		// Decoupled return path: normal-read data goes straight home.
		if cmd.Subtype == nvmeof.SubAlsoRead {
			own := cmd.SGL[0]
			s.core.Exec(s.cfg.Costs.PerIO, func() {
				s.completeSub(m.From, cmd.NSID, cmd.ID, cmd.Epoch, nvmeof.StatusSuccess, nvmeof.SubAlsoRead, own.Off, own.Len,
					b.Slice(int(own.Off-cmd.Offset), int(own.Len)).Clone())
			})
		}
		rPart := b.Slice(int(cmd.FwdOffset-cmd.Offset), int(cmd.FwdLength))
		if isReducer {
			st := s.stateFor(cmd, cmd.FwdOffset, cmd.FwdLength)
			cost := s.cfg.Costs.Xor(int(cmd.FwdLength))
			if cmd.DataIdx != NoScale {
				cost = s.cfg.Costs.Gf(int(cmd.FwdLength))
			}
			s.core.Exec(cost, func() {
				s.reduceInto(st, rPart, cmd.FwdOffset, cmd.FwdLength, cmd.DataIdx)
				st.counter--
				s.finish(st)
			})
			return
		}
		peer := nvmeof.Command{
			ID: cmd.ID, Opcode: nvmeof.OpPeer, NSID: cmd.NSID, Epoch: cmd.Epoch,
			Offset: cmd.FwdOffset, Length: cmd.FwdLength,
			FwdOffset: cmd.FwdOffset, FwdLength: cmd.FwdLength,
			DataIdx: cmd.DataIdx,
		}
		s.trace("recon contribution [%d,%d) to t%d", cmd.FwdOffset, cmd.FwdOffset+cmd.FwdLength, cmd.NextDest)
		s.fab.Send(s.id, NodeID(cmd.NextDest), peer, rPart.Clone())
	})
}
