package core

import (
	"sort"

	"draid/internal/backend"
	"draid/internal/sim"
)

// QoS is a per-volume fair scheduler for the user I/O of one cluster:
// weighted fair queuing (start-time fair queuing over byte cost, keyed by
// NSID) on top of a shared in-flight byte window, with optional per-volume
// token buckets. Bounding the aggregate bytes in flight bounds the queueing
// every drive and NIC can build up, so a noisy neighbor streaming huge
// sequential ops cannot bury a victim volume's small reads at the back of
// the device FIFOs; the weighted virtual-time ordering then splits the
// window fairly whenever volumes actually contend. The window scheduler is
// work-conserving: an idle victim cedes its share, and a lone volume gets
// the whole window. That work conservation has a tail cost — capacity a
// latency-sensitive tenant is not using right now still goes to the
// aggressor, which keeps one large op in the device FIFOs at all times — so
// a volume can additionally be given a token bucket (SetRate): a hard
// provisioned throughput cap that forces idle gaps into its stream and is
// the only way to buy back the victim's near-isolated tail.
//
// All methods must be called from the owning Runtime's callbacks (the same
// single-threaded discipline as the host controllers that share it).
type QoS struct {
	rt       backend.Runtime
	window   int64
	inflight int64
	queued   int     // total requests waiting across all volumes
	vt       float64 // virtual time, in byte/weight units
	vols     map[VolumeID]*qosVol
	order    []VolumeID // sorted, for deterministic dispatch tie-breaks
	armed    bool       // a pacing timer is pending
	stats    QoSStats
}

// QoSStats counts arbiter decisions.
type QoSStats struct {
	Admitted   int64 // ran immediately, window had room
	Queued     int64 // had to wait for the window or their turn
	Dispatched int64 // dequeued after a completion freed the window
}

type qosVol struct {
	weight     float64
	lastFinish float64
	queue      []qosReq
	// Token bucket (rate == 0 means uncapped). Tokens are bytes, refilled
	// continuously at rate bytes/sec up to burst, spent when a request
	// starts; a request needs min(cost, burst) tokens to be eligible.
	rate   float64
	burst  int64
	tokens float64
	filled sim.Time
}

type qosReq struct {
	bytes           int64
	vstart, vfinish float64
	run             func()
}

// NewQoS builds an arbiter over a shared in-flight byte window. window <= 0
// selects the 4 MiB default.
func NewQoS(rt backend.Runtime, window int64) *QoS {
	if window <= 0 {
		window = 4 << 20
	}
	return &QoS{rt: rt, window: window, vols: make(map[VolumeID]*qosVol)}
}

// Window returns the shared in-flight byte budget.
func (q *QoS) Window() int64 { return q.window }

// Stats returns a snapshot of arbiter counters.
func (q *QoS) Stats() QoSStats { return q.stats }

// SetWeight sets a volume's share weight (default 1; larger is more).
func (q *QoS) SetWeight(vol VolumeID, w float64) {
	v := q.volState(vol)
	if w > 0 {
		v.weight = w
	}
}

// SetRate installs a token bucket on a volume: a hard cap of rate bytes/sec
// with the given burst allowance in bytes (burst <= 0 selects the window
// size). rate <= 0 removes the cap. The bucket starts full.
func (q *QoS) SetRate(vol VolumeID, rate float64, burst int64) {
	v := q.volState(vol)
	if rate <= 0 {
		v.rate = 0
		return
	}
	if burst <= 0 {
		burst = q.window
	}
	v.rate = rate
	v.burst = burst
	v.tokens = float64(burst)
	v.filled = q.rt.Now()
}

// refill accrues a capped volume's tokens up to now.
func (v *qosVol) refill(now sim.Time) {
	if v.rate == 0 || now <= v.filled {
		return
	}
	v.tokens += v.rate * float64(now-v.filled) / 1e9
	if max := float64(v.burst); v.tokens > max {
		v.tokens = max
	}
	v.filled = now
}

// need is the token balance a request of this cost must reach before it may
// start; clamped to the burst so an op larger than the bucket still drains
// through (its overdraft is paid back by later refills).
func (v *qosVol) need(bytes int64) float64 {
	if bytes > v.burst {
		bytes = v.burst
	}
	return float64(bytes)
}

// eligible reports whether a request of this cost may start now under the
// volume's token bucket (always true when uncapped).
func (v *qosVol) eligible(now sim.Time, bytes int64) bool {
	if v.rate == 0 {
		return true
	}
	v.refill(now)
	return v.tokens >= v.need(bytes)
}

// spend deducts a starting request's cost from the bucket.
func (v *qosVol) spend(bytes int64) {
	if v.rate != 0 {
		v.tokens -= float64(bytes)
	}
}

func (q *QoS) volState(id VolumeID) *qosVol {
	v, ok := q.vols[id]
	if !ok {
		v = &qosVol{weight: 1}
		q.vols[id] = v
		q.order = append(q.order, id)
		sort.Slice(q.order, func(i, j int) bool { return q.order[i] < q.order[j] })
	}
	return v
}

// Admit runs fn now if the window has room and nothing is queued anywhere;
// otherwise fn is queued and dispatched in weighted virtual-finish order as
// completions free the window. The no-bypass rule (any queued request, even
// another volume's, forces newcomers to queue) is what prevents starvation:
// without it a stream of small ops could slip through the window's headroom
// forever while a large op waits for room that never accumulates. Every
// admitted request must eventually call Done with the same byte cost.
func (q *QoS) Admit(vol VolumeID, bytes int64, fn func()) {
	v := q.volState(vol)
	if q.queued == 0 && (q.inflight == 0 || q.inflight+bytes <= q.window) &&
		v.eligible(q.rt.Now(), bytes) {
		v.spend(bytes)
		q.charge(v, bytes)
		q.stats.Admitted++
		fn()
		return
	}
	vstart := q.vt
	if v.lastFinish > vstart {
		vstart = v.lastFinish
	}
	vf := vstart + float64(bytes)/v.weight
	v.lastFinish = vf
	v.queue = append(v.queue, qosReq{bytes: bytes, vstart: vstart, vfinish: vf, run: fn})
	q.queued++
	q.stats.Queued++
	// A rate-blocked queue may have nothing in flight to trigger dispatch
	// from Done, and an eligible newcomer may be the fair next pick even
	// while others wait on tokens — re-evaluate now.
	q.dispatch()
}

// charge accounts an immediately-admitted request against the window and
// the volume's virtual clock, so later contention remembers who used what.
func (q *QoS) charge(v *qosVol, bytes int64) {
	q.inflight += bytes
	vstart := q.vt
	if v.lastFinish > vstart {
		vstart = v.lastFinish
	}
	v.lastFinish = vstart + float64(bytes)/v.weight
	if vstart > q.vt {
		q.vt = vstart
	}
}

// Done releases a completed request's bytes and dispatches queued work.
func (q *QoS) Done(vol VolumeID, bytes int64) {
	q.inflight -= bytes
	if q.inflight < 0 {
		q.inflight = 0
	}
	q.dispatch()
}

// dispatch drains queued requests in virtual-finish order (ties broken by
// volume ID — q.order is sorted) while the window has room. When the
// globally next request does not fit, dispatch stops — later (larger
// virtual-finish) requests may not overtake it, or it would starve.
// Rate-blocked heads are the exception: a volume waiting on its own token
// bucket is not contending for the window, so it is skipped rather than
// allowed to hold everyone else hostage, and a pacing timer re-runs
// dispatch when its tokens accrue. Runs are deferred through the runtime
// so a completion's stack unwinds before the next request issues.
func (q *QoS) dispatch() {
	now := q.rt.Now()
	for {
		var bv *qosVol
		rateBlocked := false
		for _, id := range q.order {
			v := q.vols[id]
			if len(v.queue) == 0 {
				continue
			}
			if !v.eligible(now, v.queue[0].bytes) {
				rateBlocked = true
				continue
			}
			if bv == nil || v.queue[0].vfinish < bv.queue[0].vfinish {
				bv = v
			}
		}
		if bv == nil {
			if rateBlocked {
				q.pace()
			}
			return
		}
		head := bv.queue[0]
		if q.inflight > 0 && q.inflight+head.bytes > q.window {
			return
		}
		bv.queue = bv.queue[1:]
		q.queued--
		q.inflight += head.bytes
		bv.spend(head.bytes)
		if head.vstart > q.vt {
			q.vt = head.vstart
		}
		q.stats.Dispatched++
		q.rt.Defer(head.run)
	}
}

// pace arms a timer for the earliest instant a rate-blocked head becomes
// eligible, so capped volumes make progress even when no completion is due
// (a lone capped volume has nothing in flight to trigger dispatch).
func (q *QoS) pace() {
	if q.armed {
		return
	}
	wait := sim.Duration(-1)
	for _, id := range q.order {
		v := q.vols[id]
		if len(v.queue) == 0 || v.rate == 0 {
			continue
		}
		deficit := v.need(v.queue[0].bytes) - v.tokens
		if deficit <= 0 {
			continue
		}
		d := sim.Duration(deficit/v.rate*1e9) + 1
		if wait < 0 || d < wait {
			wait = d
		}
	}
	if wait < 0 {
		return
	}
	q.armed = true
	q.rt.After(wait, func() {
		q.armed = false
		q.dispatch()
	})
}

// qosCost is the byte cost a request charges against the shared window; a
// floor keeps metadata-sized ops from being free.
func qosCost(n int64) int64 {
	if n < 4096 {
		return 4096
	}
	return n
}
