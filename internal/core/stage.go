package core

import (
	"sort"

	"draid/internal/integrity"
	"draid/internal/parity"
	"draid/internal/raid"
)

// Host-side write-back staging (the ZIL / MD-PPL lineage): sub-stripe writes
// are copied into per-stripe staging buffers backed by an intent log,
// acknowledged immediately, coalesced, and destaged as full-stripe writes —
// closing the RMW write hole by construction for staged writes and bending
// the small-write amplification curve from ~2× (data + parity) toward
// (k+parity)/k. Full-stripe-covering writes bypass the stage (nothing to
// coalesce) and supersede any staged data for their stripe.
//
// Crash model: like the §5.4 write-intent bitmap, the in-memory intent log +
// staging buffers stand for the persistent structures a production host
// would keep in NVRAM or a log device. Crash() preserves them, and a
// replacement controller replays them via Adopt — acknowledged staged writes
// survive host failover.

// intentRecord is one acknowledged-but-not-destaged write. Payload bytes
// live in the staging buffer, which doubles as the log's data area (as in
// logs that serve reads from the log buffer).
type intentRecord struct {
	seq int64
	off int64 // stripe-relative user byte offset
	len int64
}

// intentLog is the crash-recoverable record of staged writes, per stripe.
// Records are appended at stage time and truncated only after the covering
// destage completes, so a crash mid-destage replays the stripe.
type intentLog struct {
	seq  int64
	recs map[int64][]intentRecord // stripe → open records, in seq order
}

func (l *intentLog) append(stripe, off, n int64) int64 {
	l.seq++
	if l.recs == nil {
		l.recs = make(map[int64][]intentRecord)
	}
	l.recs[stripe] = append(l.recs[stripe], intentRecord{seq: l.seq, off: off, len: n})
	return l.seq
}

// truncate drops a stripe's records with seq <= upTo.
func (l *intentLog) truncate(stripe, upTo int64) {
	recs := l.recs[stripe]
	keep := recs[:0:0]
	for _, r := range recs {
		if r.seq > upTo {
			keep = append(keep, r)
		}
	}
	if len(keep) == 0 {
		delete(l.recs, stripe)
		return
	}
	l.recs[stripe] = keep
}

// stagedStripe is one stripe's live staged state: which stripe-relative
// ranges hold newer-than-drive data, and the buffer carrying them.
type stagedStripe struct {
	set    integrity.RangeSet
	data   parity.Buffer // full-stripe buffer, allocated on first write
	elided bool
	touch  int64 // stage clock of the last write (cold-first destage order)
	// snap is the in-flight destage snapshot: non-nil exactly while a
	// destage of this stripe holds the stripe write lock. New writes land in
	// the live set meanwhile; reads overlay snap first, then live.
	snap *destageSnap
}

// destageSnap owns the ranges and buffer a running destage is writing out.
type destageSnap struct {
	set    integrity.RangeSet
	data   parity.Buffer
	elided bool
	logSeq int64 // intent records up to here truncate on completion
}

// stage is the write-back staging layer of one host controller. All state is
// loop-confined like the rest of the controller.
type stage struct {
	h        *HostController
	limit    int64 // bound on allocated staging bytes (live + snapshots)
	bytes    int64
	stripes  map[int64]*stagedStripe
	log      intentLog
	clock    int64
	tickMark int64    // clock at the last destage tick (idle detection)
	waiters  []func() // writes blocked on staging memory pressure
	flushErr error    // first destage failure since the last Flush
}

func newStage(h *HostController, limit int64) *stage {
	return &stage{h: h, limit: limit, stripes: make(map[int64]*stagedStripe)}
}

// stripeBase returns the virtual byte offset of a stripe's user data.
func (st *stage) stripeBase(stripe int64) int64 {
	return stripe * st.h.geo.StripeDataSize()
}

// stripeRel converts an extent to its stripe-relative user byte offset.
func stripeRel(g raid.Geometry, e raid.Extent) int64 {
	return int64(e.Chunk)*g.ChunkSize + e.Off
}

// write absorbs one user write: full-stripe-covering groups write through
// (and supersede staged data); everything else is copied into the stage,
// logged, and acknowledged without drive I/O.
func (st *stage) write(off int64, data parity.Buffer, cb func(error)) {
	byStripe := raid.StripeExtents(st.h.geo.Split(off, int64(data.Len())))
	pending := len(byStripe)
	var firstErr error
	part := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		pending--
		if pending == 0 {
			cb(firstErr)
		}
	}
	for _, stripe := range raid.StripeOrder(byStripe) {
		stripe, group := stripe, byStripe[stripe]
		if st.h.geo.DecideWriteMode(group) == raid.ModeFull || st.limit < st.h.geo.StripeDataSize() {
			// Nothing to coalesce (or the stage cannot hold even one
			// stripe): write through the normal path.
			st.h.writeStripeGroup(off, stripe, group, data, part)
			continue
		}
		st.stageGroup(stripe, group, data, part)
	}
}

// stageGroup copies one stripe's extents into the staging buffer, appends
// intent records, and acknowledges. Under memory pressure it kicks cold
// destages and retries once bytes free up.
func (st *stage) stageGroup(stripe int64, group []raid.Extent, data parity.Buffer, done func(error)) {
	s := st.stripes[stripe]
	if s == nil && st.bytes+st.h.geo.StripeDataSize() > st.limit {
		// Admitting this stripe needs a new full-stripe buffer. Destage the
		// coldest staged stripes and queue the write behind the freed bytes.
		st.destageCold()
		st.waiters = append(st.waiters, func() {
			st.stageGroup(stripe, group, data, done)
		})
		return
	}
	sds := st.h.geo.StripeDataSize()
	if s == nil {
		s = &stagedStripe{}
		st.stripes[stripe] = s
		st.bytes += sds
	}
	if s.data.Len() == 0 {
		if data.Elided() {
			s.data, s.elided = parity.Sized(int(sds)), true
		} else {
			s.data = parity.Alloc(int(sds))
		}
	}
	st.clock++
	s.touch = st.clock
	for _, e := range group {
		rel := stripeRel(st.h.geo, e)
		if !s.elided && !data.Elided() {
			s.data.CopyAt(int(rel), data.Slice(int(e.VOff), int(e.Len)))
		}
		s.set.Add(rel, e.Len)
		st.log.append(stripe, rel, e.Len)
	}
	st.h.stats.StagedWrites++
	// Acknowledge now: the write is durable in the (modelled-persistent)
	// intent log. A fully covered stripe destages immediately — optimal
	// amplification and the fastest path out of the stage.
	st.h.rt.Defer(func() { done(nil) })
	if st.covered(s) == sds {
		st.destageStripe(stripe, nil)
	}
}

// covered returns how many bytes of the stripe the live set stages.
func (st *stage) covered(s *stagedStripe) int64 {
	var n int64
	for _, sp := range s.set.Spans() {
		n += sp.Len
	}
	return n
}

// drop removes staged live ranges superseded by a write-through group. Runs
// inside the stripe's write lock, so it cannot race a destage snapshot (a
// snapshot only exists while its destage holds the same lock).
func (st *stage) drop(stripe int64, group []raid.Extent) {
	s := st.stripes[stripe]
	if s == nil {
		return
	}
	for _, e := range group {
		s.set.Remove(stripeRel(st.h.geo, e), e.Len)
	}
	if s.set.Empty() {
		st.log.truncate(stripe, st.log.seq)
		st.freeLive(stripe, s)
	}
}

// freeLive releases a stripe's live buffer (the snapshot, if any, stays
// accounted until its destage completes).
func (st *stage) freeLive(stripe int64, s *stagedStripe) {
	if s.data.Len() > 0 || !s.set.Empty() {
		s.set = integrity.RangeSet{}
		s.data = parity.Buffer{}
		s.elided = false
		st.bytes -= st.h.geo.StripeDataSize()
	}
	if s.snap == nil {
		delete(st.stripes, stripe)
	}
	st.wake()
}

// wake retries writes parked on memory pressure.
func (st *stage) wake() {
	if len(st.waiters) == 0 {
		return
	}
	w := st.waiters
	st.waiters = nil
	for _, fn := range w {
		st.h.rt.Defer(fn)
	}
}

// stagedStripes returns the staged stripe numbers in ascending order
// (deterministic iteration for the simulation).
func (st *stage) stagedStripes() []int64 {
	out := make([]int64, 0, len(st.stripes))
	for s := range st.stripes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------------
// Read-side: read-your-writes overlay and staged coverage queries. Every read
// path (normal, hedged, degraded, host-fallback) assembles drive-state bytes
// and then overlays the stage, so staged-but-not-destaged stripes are seen
// correctly everywhere.

// overlaySpan copies staged bytes from one span set into buf (which covers
// virtual range [off, off+n)).
func overlaySpan(set *integrity.RangeSet, data parity.Buffer, elided bool, base, off, n int64, buf parity.Buffer) {
	for _, sp := range set.Spans() {
		lo, hi := base+sp.Off, base+sp.End()
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		if lo >= hi || elided || data.Elided() {
			continue
		}
		buf.CopyAt(int(lo-off), data.Slice(int(lo-base), int(hi-lo)))
	}
}

// ovSpan is one staged range captured at read issue time: its virtual offset
// plus an aliased (zero-copy) view of the staged bytes.
type ovSpan struct {
	off int64
	buf parity.Buffer
}

// captureOverlay snapshots the staged ranges overlapping [off, off+n) as of
// read issue. A read must reflect every write acknowledged before it was
// issued, but the completion-time overlay alone cannot guarantee that: a
// destage can complete (and drop its snapshot) while the read's drive I/O is
// still in flight, and a drive may have served the read's fetch before the
// destage's write landed — leaving the pre-image in the assembled result with
// nothing left to overlay it. The capture pins the issue-time staged bytes so
// completion lays them over whatever the drives returned; the live overlay
// still runs afterwards, so anything staged meanwhile wins on top. Spans are
// appended snapshot-before-live, matching overlayInto's newer-wins order.
func (st *stage) captureOverlay(off, n int64) []ovSpan {
	var out []ovSpan
	collect := func(set *integrity.RangeSet, data parity.Buffer, elided bool, base int64) {
		for _, sp := range set.Spans() {
			lo, hi := base+sp.Off, base+sp.End()
			if lo < off {
				lo = off
			}
			if hi > off+n {
				hi = off + n
			}
			if lo >= hi || elided || data.Elided() {
				continue
			}
			out = append(out, ovSpan{off: lo, buf: data.Slice(int(lo-base), int(hi-lo))})
		}
	}
	lo := off / st.h.geo.StripeDataSize()
	hi := (off + n - 1) / st.h.geo.StripeDataSize()
	for stripe := lo; stripe <= hi; stripe++ {
		s := st.stripes[stripe]
		if s == nil {
			continue
		}
		base := st.stripeBase(stripe)
		if s.snap != nil {
			collect(&s.snap.set, s.snap.data, s.snap.elided, base)
		}
		collect(&s.set, s.data, s.elided, base)
	}
	return out
}

// overlayInto copies every staged byte overlapping [off, off+n) over buf:
// destage snapshots first, live ranges second (newer wins).
func (st *stage) overlayInto(off, n int64, buf parity.Buffer) {
	if buf.Elided() {
		return
	}
	lo := off / st.h.geo.StripeDataSize()
	hi := (off + n - 1) / st.h.geo.StripeDataSize()
	for stripe := lo; stripe <= hi; stripe++ {
		s := st.stripes[stripe]
		if s == nil {
			continue
		}
		base := st.stripeBase(stripe)
		if s.snap != nil {
			overlaySpan(&s.snap.set, s.snap.data, s.snap.elided, base, off, n, buf)
		}
		overlaySpan(&s.set, s.data, s.elided, base, off, n, buf)
	}
}

// uncovered returns [off, off+n) minus the staged ranges (snapshots and
// live), as virtual-offset spans.
func (st *stage) uncovered(off, n int64) []integrity.Span {
	var covered integrity.RangeSet
	sds := st.h.geo.StripeDataSize()
	for stripe := off / sds; stripe <= (off+n-1)/sds; stripe++ {
		s := st.stripes[stripe]
		if s == nil {
			continue
		}
		base := st.stripeBase(stripe)
		if s.snap != nil {
			for _, sp := range s.snap.set.Spans() {
				covered.Add(base+sp.Off, sp.Len)
			}
		}
		for _, sp := range s.set.Spans() {
			covered.Add(base+sp.Off, sp.Len)
		}
	}
	gap := integrity.RangeSet{}
	gap.Add(off, n)
	for _, sp := range covered.Spans() {
		gap.Remove(sp.Off, sp.Len)
	}
	return gap.Spans()
}

// stageElided reports whether any staged range overlapping [off, off+n)
// carries size-only data.
func (st *stage) stageElided(off, n int64) bool {
	sds := st.h.geo.StripeDataSize()
	for stripe := off / sds; stripe <= (off+n-1)/sds; stripe++ {
		s := st.stripes[stripe]
		if s == nil {
			continue
		}
		base := st.stripeBase(stripe)
		if s.elided {
			if _, hit := s.set.Intersect(off-base, n); hit {
				return true
			}
		}
		if s.snap != nil && s.snap.elided {
			if _, hit := s.snap.set.Intersect(off-base, n); hit {
				return true
			}
		}
	}
	return false
}

// adopt replays a crashed predecessor's intent log into this stage: live
// ranges and any mid-destage snapshot merge (snapshot first, live over it)
// into fresh staged stripes. Returns the adopted stripe numbers.
func (st *stage) adopt(prev *stage) []int64 {
	var out []int64
	for _, stripe := range prev.stagedStripes() {
		ps := prev.stripes[stripe]
		sds := st.h.geo.StripeDataSize()
		s := &stagedStripe{}
		merge := func(set *integrity.RangeSet, data parity.Buffer, elided bool) {
			for _, sp := range set.Spans() {
				if elided || data.Elided() {
					s.elided = true
				} else {
					if s.data.Len() == 0 {
						s.data = parity.Alloc(int(sds))
					}
					s.data.CopyAt(int(sp.Off), data.Slice(int(sp.Off), int(sp.Len)))
				}
				s.set.Add(sp.Off, sp.Len)
				st.log.append(stripe, sp.Off, sp.Len)
			}
		}
		if ps.snap != nil {
			merge(&ps.snap.set, ps.snap.data, ps.snap.elided)
		}
		merge(&ps.set, ps.data, ps.elided)
		if s.set.Empty() {
			continue
		}
		if s.elided && s.data.Len() == 0 {
			s.data = parity.Sized(int(sds))
		}
		st.clock++
		s.touch = st.clock
		st.stripes[stripe] = s
		st.bytes += sds
		out = append(out, stripe)
	}
	return out
}

// tryMemRead serves [off, off+n) entirely from host memory when the stage
// plus the clean-read cache cover it: the cache fills the unstaged gaps, the
// stage overlays its (newer) bytes on top. Reports whether it served.
func (h *HostController) tryMemRead(off, n int64, cb func(parity.Buffer, error)) bool {
	if h.stage == nil && h.cache == nil {
		return false
	}
	var gaps []integrity.Span
	if h.stage != nil {
		gaps = h.stage.uncovered(off, n)
	} else {
		gaps = []integrity.Span{{Off: off, Len: n}}
	}
	if len(gaps) > 0 && h.cache == nil {
		return false
	}
	for _, g := range gaps {
		if !h.cache.covers(g.Off, g.Len) {
			return false
		}
	}
	buf := parity.Alloc(int(n))
	elided := false
	for _, g := range gaps {
		if h.cache.readInto(g.Off, g.Len, buf, g.Off-off) {
			elided = true
		}
	}
	if h.stage != nil {
		h.stage.overlayInto(off, n, buf)
		if h.stage.stageElided(off, n) {
			elided = true
		}
	}
	out := buf
	if elided {
		out = parity.Sized(int(n))
	}
	h.stats.CacheHits++
	h.rt.Defer(func() { cb(out, nil) })
	return true
}

// lostUncovered returns the first lost span in [off, off+n) not covered by
// staged data. Staged writes over lost bytes are readable (the overlay
// supplies them) and bring the bytes back once destaged.
func (h *HostController) lostUncovered(off, n int64) (integrity.Span, bool) {
	if h.lost.Empty() {
		return integrity.Span{}, false
	}
	if h.stage == nil {
		return h.lost.Intersect(off, n)
	}
	for _, g := range h.stage.uncovered(off, n) {
		if s, hit := h.lost.Intersect(g.Off, g.Len); hit {
			return s, true
		}
	}
	return integrity.Span{}, false
}

// ---------------------------------------------------------------------------
// Clean read cache: a small, per-volume-accounted block cache fed by read
// completions and destages. Together with the stage it lets repeated reads
// (and reads of recently staged/destaged data) complete with no drive I/O.

// cacheBlockSize is the cache granularity: 4 KiB, the integrity-block size.
const cacheBlockSize = 4 << 10

type cacheBlock struct {
	idx        int64
	data       []byte // nil for size-only payloads
	prev, next *cacheBlock
}

// readCache is an LRU over aligned cacheBlockSize blocks of the virtual
// device. Occupancy is mirrored into Stats.CacheBytes.
type readCache struct {
	h      *HostController
	limit  int64
	bytes  int64
	blocks map[int64]*cacheBlock
	head   *cacheBlock // most recently used
	tail   *cacheBlock
}

func newReadCache(h *HostController, limit int64) *readCache {
	return &readCache{h: h, limit: limit, blocks: make(map[int64]*cacheBlock)}
}

func (c *readCache) unlink(b *cacheBlock) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		c.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		c.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (c *readCache) pushFront(b *cacheBlock) {
	b.next = c.head
	if c.head != nil {
		c.head.prev = b
	}
	c.head = b
	if c.tail == nil {
		c.tail = b
	}
}

func (c *readCache) touch(b *cacheBlock) {
	if c.head == b {
		return
	}
	c.unlink(b)
	c.pushFront(b)
}

func (c *readCache) remove(b *cacheBlock) {
	c.unlink(b)
	delete(c.blocks, b.idx)
	c.bytes -= cacheBlockSize
	c.h.stats.CacheBytes = c.bytes
}

// insert caches every aligned block fully inside [off, off+n), copying bytes
// out of buf (whose first byte is virtual offset base).
func (c *readCache) insert(off, n int64, buf parity.Buffer, base int64) {
	first := (off + cacheBlockSize - 1) / cacheBlockSize
	last := (off + n) / cacheBlockSize // exclusive
	for idx := first; idx < last; idx++ {
		b := c.blocks[idx]
		if b == nil {
			b = &cacheBlock{idx: idx}
			c.blocks[idx] = b
			c.pushFront(b)
			c.bytes += cacheBlockSize
		} else {
			c.touch(b)
		}
		if buf.Elided() {
			b.data = nil
		} else {
			if b.data == nil {
				b.data = make([]byte, cacheBlockSize)
			}
			copy(b.data, buf.Data()[idx*cacheBlockSize-base:])
		}
	}
	for c.bytes > c.limit && c.tail != nil {
		c.remove(c.tail)
	}
	c.h.stats.CacheBytes = c.bytes
}

// invalidate drops every block overlapping [off, off+n).
func (c *readCache) invalidate(off, n int64) {
	for idx := off / cacheBlockSize; idx*cacheBlockSize < off+n; idx++ {
		if b := c.blocks[idx]; b != nil {
			c.remove(b)
		}
	}
}

// covers reports whether the cache holds every block overlapping
// [off, off+n), touching them for LRU on success.
func (c *readCache) covers(off, n int64) bool {
	for idx := off / cacheBlockSize; idx*cacheBlockSize < off+n; idx++ {
		if c.blocks[idx] == nil {
			return false
		}
	}
	for idx := off / cacheBlockSize; idx*cacheBlockSize < off+n; idx++ {
		c.touch(c.blocks[idx])
	}
	return true
}

// readInto copies [off, off+n) from the cache into buf at bufOff, reporting
// whether any source block was size-only.
func (c *readCache) readInto(off, n int64, buf parity.Buffer, bufOff int64) (elided bool) {
	for idx := off / cacheBlockSize; idx*cacheBlockSize < off+n; idx++ {
		b := c.blocks[idx]
		lo, hi := idx*cacheBlockSize, (idx+1)*cacheBlockSize
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		if b.data == nil {
			elided = true
			continue
		}
		if !buf.Elided() {
			buf.CopyAt(int(bufOff+lo-off), parity.FromBytes(b.data[lo-idx*cacheBlockSize:hi-idx*cacheBlockSize]))
		}
	}
	return elided
}
