package core_test

import (
	"testing"

	"draid/internal/core"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/simnet"
)

func TestFabricSelfSendPanics(t *testing.T) {
	cl, _ := testCluster(t, 4, raid.Raid5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cl.Fabric.Send(1, 1, nvmeof.Command{}, parity.Buffer{})
}

func TestFabricNodeLookup(t *testing.T) {
	cl, _ := testCluster(t, 4, raid.Raid5)
	if cl.Fabric.Node(core.HostID) != cl.HostNode {
		t.Fatal("host node lookup wrong")
	}
	if cl.Fabric.Node(2) != cl.Targets[2] {
		t.Fatal("target node lookup wrong")
	}
	if cl.Fabric.HostNode() != cl.HostNode {
		t.Fatal("HostNode wrong")
	}
	if len(cl.Fabric.Targets()) != 4 {
		t.Fatal("Targets wrong")
	}
}

func TestFabricColocatedDeliveryIsLocal(t *testing.T) {
	cl, _ := colocatedCluster(t, 6, 2)
	// Members 0 and 1 share a node: a direct send between them must not
	// touch the NIC.
	before := cl.Targets[0].BytesOut() + cl.Targets[0].BytesIn()
	delivered := false
	cl.Fabric.Register(core.NodeID(1), func(m core.Message) { delivered = true })
	defer func() {
		// Restore the server controller's handler for other tests.
	}()
	cl.Fabric.Send(0, 1, nvmeof.Command{Opcode: nvmeof.OpPeer}, parity.Sized(1<<20))
	cl.Eng.Run()
	if !delivered {
		t.Fatal("co-located message not delivered")
	}
	after := cl.Targets[0].BytesOut() + cl.Targets[0].BytesIn()
	if after != before {
		t.Fatalf("co-located send consumed %d NIC bytes", after-before)
	}
}

func TestFabricColocatedDeliveryRespectsDownNode(t *testing.T) {
	cl, _ := colocatedCluster(t, 6, 2)
	delivered := false
	cl.Fabric.Register(core.NodeID(1), func(m core.Message) { delivered = true })
	cl.Targets[0].SetDown(true)
	cl.Fabric.Send(0, 1, nvmeof.Command{Opcode: nvmeof.OpPeer}, parity.Buffer{})
	cl.Eng.Run()
	if delivered {
		t.Fatal("message delivered on a down server")
	}
}

func TestFabricSharesConnectionsPerServerPair(t *testing.T) {
	cl, _ := colocatedCluster(t, 6, 2)
	// Members {0,1},{2,3},{4,5} live on 3 servers. Connections between any
	// member of server A and any member of server B must be the same
	// object (§5.5: one shared connection per destination).
	c02 := cl.Fabric.Connection(0, 2)
	c13 := cl.Fabric.Connection(1, 3)
	c03 := cl.Fabric.Connection(0, 3)
	if c02 == nil || c02 != c13 || c02 != c03 {
		t.Fatal("server-pair connections not shared")
	}
	if cl.Fabric.Connection(0, 1) != nil {
		t.Fatal("co-located members should have no connection")
	}
	// Host connections shared per server as well.
	if cl.Fabric.Connection(core.HostID, 0) != cl.Fabric.Connection(core.HostID, 1) {
		t.Fatal("host connection not shared for co-located members")
	}
}

func TestServerRejectsUnknownOpcode(t *testing.T) {
	cl, _ := testCluster(t, 4, raid.Raid5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cl.Fabric.Send(core.HostID, 0, nvmeof.Command{Opcode: nvmeof.Opcode(0x55)}, parity.Buffer{})
	cl.Eng.Run()
}

func TestServerReturnsErrorCompletionOnBadRange(t *testing.T) {
	cl, h := testCluster(t, 4, raid.Raid5)
	_ = h
	var status nvmeof.Status = 200
	cl.Fabric.RegisterVolume(core.HostID, 0, func(m core.Message) { status = m.Cmd.Status })
	cl.Fabric.Send(core.HostID, 0, nvmeof.Command{
		Opcode: nvmeof.OpRead, Offset: 1 << 60, Length: 4096,
	}, parity.Buffer{})
	cl.Eng.Run()
	if status != nvmeof.StatusError {
		t.Fatalf("status = %v, want error", status)
	}
}

func TestConnectionLookupSymmetry(t *testing.T) {
	cl, _ := testCluster(t, 5, raid.Raid5)
	var c1, c2 *simnet.Conn = cl.Fabric.Connection(2, 4), cl.Fabric.Connection(4, 2)
	if c1 == nil || c1 != c2 {
		t.Fatal("mesh connection lookup not symmetric")
	}
}
