package core_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"draid/internal/blockdev"
	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/gf256"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
	"draid/internal/ssd"
)

const chunkSize = 64 << 10

// testCluster builds a small array: 64 KB chunks, 64 MB drives, fast fabric.
func testCluster(t *testing.T, targets int, level raid.Level) (*cluster.Cluster, *core.HostController) {
	t.Helper()
	spec := cluster.DefaultSpec()
	spec.Targets = targets
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	spec.Drive = &drv
	cl := cluster.New(spec)
	h := cl.NewDRAID(core.Config{
		Geometry: raid.Geometry{Level: level, Width: targets, ChunkSize: chunkSize},
		Deadline: 50 * sim.Millisecond,
	})
	return cl, h
}

func mustWrite(t *testing.T, cl *cluster.Cluster, h *core.HostController, off int64, data []byte) {
	t.Helper()
	doneErr := errors.New("not done")
	h.Write(off, parity.FromBytes(data), func(err error) { doneErr = err })
	cl.Eng.Run()
	if doneErr != nil {
		t.Fatalf("write at %d (%d bytes): %v", off, len(data), doneErr)
	}
}

func mustRead(t *testing.T, cl *cluster.Cluster, h *core.HostController, off, n int64) []byte {
	t.Helper()
	var out []byte
	doneErr := errors.New("not done")
	h.Read(off, n, func(b parity.Buffer, err error) {
		doneErr = err
		out = b.Data()
	})
	cl.Eng.Run()
	if doneErr != nil {
		t.Fatalf("read at %d (%d bytes): %v", off, n, doneErr)
	}
	return out
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// verifyStripeParity checks P (and Q) on the raw drives for a stripe.
func verifyStripeParity(t *testing.T, cl *cluster.Cluster, h *core.HostController, stripe int64) {
	t.Helper()
	g := h.Geometry()
	base := g.DriveOffset(stripe)
	data := make([][]byte, g.DataChunks())
	for c := 0; c < g.DataChunks(); c++ {
		data[c] = cl.Drives[g.DataDrive(stripe, c)].PeekSync(base, g.ChunkSize)
	}
	wantP := make([]byte, g.ChunkSize)
	wantQ := make([]byte, g.ChunkSize)
	gf256.SyndromePQ(wantP, wantQ, data)
	gotP := cl.Drives[g.PDrive(stripe)].PeekSync(base, g.ChunkSize)
	if !bytes.Equal(gotP, wantP) {
		t.Fatalf("stripe %d: P chunk inconsistent with data", stripe)
	}
	if g.Level == raid.Raid6 {
		gotQ := cl.Drives[g.QDrive(stripe)].PeekSync(base, g.ChunkSize)
		if !bytes.Equal(gotQ, wantQ) {
			t.Fatalf("stripe %d: Q chunk inconsistent with data", stripe)
		}
	}
}

func TestSizeAndBounds(t *testing.T) {
	cl, h := testCluster(t, 4, raid.Raid5)
	want := (int64(64<<20) / chunkSize) * 3 * chunkSize
	if h.Size() != want {
		t.Fatalf("size = %d, want %d", h.Size(), want)
	}
	var rErr, wErr error
	h.Read(h.Size()-10, 20, func(_ parity.Buffer, err error) { rErr = err })
	h.Write(-1, parity.Sized(4), func(err error) { wErr = err })
	cl.Eng.Run()
	if !errors.Is(rErr, blockdev.ErrOutOfRange) || !errors.Is(wErr, blockdev.ErrOutOfRange) {
		t.Fatalf("rErr=%v wErr=%v", rErr, wErr)
	}
}

func TestRMWWriteReadRoundTrip(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	data := randBytes(1, 8<<10)
	mustWrite(t, cl, h, 4<<10, data)
	if h.Stats().RMWWrites != 1 {
		t.Fatalf("stats = %+v, want 1 RMW write", h.Stats())
	}
	got := mustRead(t, cl, h, 4<<10, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestRMWUpdatesParityIncrementally(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	// Two successive writes to the same chunk range must leave parity
	// consistent (delta applied on top of delta).
	mustWrite(t, cl, h, 0, randBytes(2, 16<<10))
	mustWrite(t, cl, h, 0, randBytes(3, 16<<10))
	verifyStripeParity(t, cl, h, 0)
}

func TestMultiChunkRMWSameStripe(t *testing.T) {
	cl, h := testCluster(t, 8, raid.Raid5) // k=7
	// Write spanning chunks 1..2 with different in-chunk ranges.
	off := int64(chunkSize + chunkSize/2)
	data := randBytes(4, chunkSize)
	mustWrite(t, cl, h, off, data)
	got := mustRead(t, cl, h, off, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestFullStripeWrite(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5) // k=4, stripe 256 KB
	stripeData := randBytes(5, 4*chunkSize)
	mustWrite(t, cl, h, 0, stripeData)
	if h.Stats().FullStripeWrites != 1 {
		t.Fatalf("stats = %+v, want 1 full-stripe write", h.Stats())
	}
	got := mustRead(t, cl, h, 0, int64(len(stripeData)))
	if !bytes.Equal(got, stripeData) {
		t.Fatal("read-back mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestRCWWrite(t *testing.T) {
	cl, h := testCluster(t, 8, raid.Raid5) // k=7
	// 3 full chunks (of 7): RMW needs 4 pre-reads, RCW needs 4 ⇒ RCW on tie.
	data := randBytes(6, 3*chunkSize)
	mustWrite(t, cl, h, chunkSize, data)
	if h.Stats().RCWWrites != 1 {
		t.Fatalf("stats = %+v, want 1 RCW write", h.Stats())
	}
	got := mustRead(t, cl, h, chunkSize, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestMultiStripeWrite(t *testing.T) {
	cl, h := testCluster(t, 4, raid.Raid5) // k=3, stripe 192 KB
	data := randBytes(7, 5*chunkSize)      // crosses stripe boundary
	off := int64(2 * chunkSize)
	mustWrite(t, cl, h, off, data)
	got := mustRead(t, cl, h, off, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
	verifyStripeParity(t, cl, h, 1)
	verifyStripeParity(t, cl, h, 2)
}

func TestWritesToDistinctRangesOfAStripeSerialize(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	a := randBytes(8, 8<<10)
	b := randBytes(9, 8<<10)
	done := 0
	h.Write(0, parity.FromBytes(a), func(err error) {
		if err != nil {
			t.Errorf("write a: %v", err)
		}
		done++
	})
	h.Write(16<<10, parity.FromBytes(b), func(err error) {
		if err != nil {
			t.Errorf("write b: %v", err)
		}
		done++
	})
	cl.Eng.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if h.Stats().QueuedStripeWaits != 1 {
		t.Fatalf("stats = %+v, want 1 queued stripe wait", h.Stats())
	}
	if !bytes.Equal(mustRead(t, cl, h, 0, 8<<10), a) || !bytes.Equal(mustRead(t, cl, h, 16<<10, 8<<10), b) {
		t.Fatal("read-back mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestOverlappingWritesSerializeLastWins(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	a := randBytes(10, 8<<10)
	b := randBytes(11, 8<<10)
	h.Write(0, parity.FromBytes(a), func(err error) {})
	h.Write(0, parity.FromBytes(b), func(err error) {})
	cl.Eng.Run()
	if !bytes.Equal(mustRead(t, cl, h, 0, 8<<10), b) {
		t.Fatal("second write should win")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestReadUnwrittenReturnsZeros(t *testing.T) {
	cl, h := testCluster(t, 4, raid.Raid5)
	got := mustRead(t, cl, h, 1<<20, 4096)
	for _, v := range got {
		if v != 0 {
			t.Fatal("unwritten data not zero")
		}
	}
}

// --- Degraded operation -----------------------------------------------------

func failMember(cl *cluster.Cluster, h *core.HostController, m int) {
	cl.FailTarget(m)
	h.SetFailed(m, true)
}

func TestDegradedReadReconstructsData(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	data := randBytes(12, 16<<10)
	mustWrite(t, cl, h, 0, data) // chunk 0 of stripe 0 → member DataDrive(0,0)
	m := h.Geometry().DataDrive(0, 0)
	failMember(cl, h, m)
	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read returned wrong data")
	}
	if h.Stats().DegradedReads == 0 || h.Stats().Reconstructions == 0 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestDegradedReadMixedNormalAndReconstructed(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5) // k=4
	data := randBytes(13, 3*chunkSize)     // chunks 0,1,2 of stripe 0
	mustWrite(t, cl, h, 0, data)
	m := h.Geometry().DataDrive(0, 1) // fail the middle chunk
	failMember(cl, h, m)
	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("mixed degraded read mismatch")
	}
}

func TestDegradedReadOfParityMemberIsNormal(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	data := randBytes(14, 8<<10)
	mustWrite(t, cl, h, 0, data)
	failMember(cl, h, h.Geometry().PDrive(0))
	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("read with failed parity member mismatch")
	}
	if h.Stats().DegradedReads != 0 {
		t.Fatal("parity failure should not degrade reads of this stripe")
	}
}

func TestDegradedWriteUntouchedFailedChunkUsesRMW(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5) // k=4
	// Seed the whole stripe, then fail the member holding chunk 2.
	seed := randBytes(15, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	m := h.Geometry().DataDrive(0, 2)
	failMember(cl, h, m)

	// Overwrite chunk 0; chunk 2 (failed) is untouched.
	newData := randBytes(16, chunkSize)
	mustWrite(t, cl, h, 0, newData)

	// The failed chunk must still reconstruct to its original content.
	got := mustRead(t, cl, h, 2*chunkSize, chunkSize)
	if !bytes.Equal(got, seed[2*chunkSize:3*chunkSize]) {
		t.Fatal("degraded RMW corrupted the failed chunk's parity encoding")
	}
	if !bytes.Equal(mustRead(t, cl, h, 0, chunkSize), newData) {
		t.Fatal("written chunk mismatch")
	}
}

func TestDegradedWriteToFailedChunkReflectsInParity(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	seed := randBytes(17, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	m := h.Geometry().DataDrive(0, 1)
	failMember(cl, h, m)

	// Write the failed chunk: data can't be persisted there, but parity
	// must absorb it so reads reconstruct the new content.
	newData := randBytes(18, chunkSize)
	mustWrite(t, cl, h, chunkSize, newData)
	got := mustRead(t, cl, h, chunkSize, chunkSize)
	if !bytes.Equal(got, newData) {
		t.Fatal("write to failed chunk not reflected in parity")
	}
	// Neighbours unaffected.
	if !bytes.Equal(mustRead(t, cl, h, 0, chunkSize), seed[:chunkSize]) {
		t.Fatal("neighbour chunk corrupted")
	}
}

func TestDegradedPartialWriteToFailedChunkFallsBack(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	seed := randBytes(19, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	m := h.Geometry().DataDrive(0, 1)
	failMember(cl, h, m)

	// Multi-chunk write partially covering the failed chunk: union is
	// bigger than the failed chunk's written range ⇒ host fallback.
	off := int64(chunkSize / 2)
	data := randBytes(20, chunkSize) // covers half of chunk 0 and half of chunk 1
	mustWrite(t, cl, h, off, data)
	if h.Stats().HostFallbackWrites == 0 {
		t.Fatalf("stats = %+v, expected host fallback", h.Stats())
	}
	got := mustRead(t, cl, h, off, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("fallback write round-trip mismatch")
	}
	// Untouched tail of the failed chunk preserved.
	tail := mustRead(t, cl, h, chunkSize+chunkSize/2, chunkSize/2)
	if !bytes.Equal(tail, seed[chunkSize+chunkSize/2:2*chunkSize]) {
		t.Fatal("fallback corrupted untouched range of failed chunk")
	}
}

func TestWriteTimeoutMarksFailedAndRetries(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	seed := randBytes(21, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)

	// Fail a data member WITHOUT telling the host.
	m := h.Geometry().DataDrive(0, 0)
	cl.FailTarget(m)

	var werr error = errors.New("pending")
	newData := randBytes(22, chunkSize)
	h.Write(0, parity.FromBytes(newData), func(err error) { werr = err })
	cl.Eng.Run()
	if werr != nil {
		t.Fatalf("retried write failed: %v", werr)
	}
	st := h.Stats()
	if st.Timeouts == 0 || st.Retries == 0 {
		t.Fatalf("stats = %+v, want timeout+retry", st)
	}
	if len(h.FailedMembers()) != 1 || h.FailedMembers()[0] != m {
		t.Fatalf("failed members = %v, want [%d]", h.FailedMembers(), m)
	}
	// The write took effect (reconstructable through parity).
	got := mustRead(t, cl, h, 0, chunkSize)
	if !bytes.Equal(got, newData) {
		t.Fatal("post-retry content mismatch")
	}
}

func TestReadTimeoutDegradesAndRetries(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	data := randBytes(23, 16<<10)
	mustWrite(t, cl, h, 0, data)
	m := h.Geometry().DataDrive(0, 0)
	cl.FailTarget(m) // host not informed

	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("read after transparent failure mismatch")
	}
	if h.Stats().Timeouts == 0 {
		t.Fatalf("stats = %+v, want a timeout", h.Stats())
	}
}

func TestLateParityCommandStillReduces(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	seed := randBytes(24, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	// Delay host→P delivery so Peer contributions beat the Parity command.
	p := h.Geometry().PDrive(0)
	cl.Fabric.Connection(core.HostID, core.NodeID(p)).InjectDelay(5 * sim.Millisecond)
	data := randBytes(25, 8<<10)
	mustWrite(t, cl, h, 0, data)
	cl.Fabric.Connection(core.HostID, core.NodeID(p)).InjectDelay(0)
	verifyStripeParity(t, cl, h, 0)
}

// --- RAID-6 -----------------------------------------------------------------

func TestRaid6WriteReadAndParity(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6) // k=4
	data := randBytes(26, 24<<10)
	mustWrite(t, cl, h, 8<<10, data)
	got := mustRead(t, cl, h, 8<<10, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestRaid6FullStripeParity(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6)
	data := randBytes(27, 4*chunkSize)
	mustWrite(t, cl, h, 0, data)
	verifyStripeParity(t, cl, h, 0)
}

func TestRaid6RCWParity(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6) // k=4; 2 chunks ⇒ tie ⇒ RCW
	data := randBytes(28, 2*chunkSize)
	mustWrite(t, cl, h, 0, data)
	if h.Stats().RCWWrites != 1 {
		t.Fatalf("stats = %+v", h.Stats())
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestRaid6SingleFailureDegradedRead(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6)
	data := randBytes(29, 16<<10)
	mustWrite(t, cl, h, 0, data)
	failMember(cl, h, h.Geometry().DataDrive(0, 0))
	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("RAID-6 single-failure degraded read mismatch")
	}
}

func TestRaid6DualDataFailureRead(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6)
	data := randBytes(30, 4*chunkSize) // full stripe
	mustWrite(t, cl, h, 0, data)
	failMember(cl, h, h.Geometry().DataDrive(0, 0))
	failMember(cl, h, h.Geometry().DataDrive(0, 2))
	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("RAID-6 dual-data-failure read mismatch")
	}
	if h.Stats().HostFallbackReads == 0 {
		t.Fatalf("stats = %+v, want host fallback reads", h.Stats())
	}
}

func TestRaid6DataPlusPFailureRead(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6)
	data := randBytes(31, 4*chunkSize)
	mustWrite(t, cl, h, 0, data)
	failMember(cl, h, h.Geometry().DataDrive(0, 1))
	failMember(cl, h, h.Geometry().PDrive(0))
	got := mustRead(t, cl, h, chunkSize, chunkSize)
	if !bytes.Equal(got, data[chunkSize:2*chunkSize]) {
		t.Fatal("RAID-6 data+P failure read mismatch (Q recovery)")
	}
}

func TestRaid6DegradedWriteWithQOnly(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6)
	seed := randBytes(32, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	// Fail P: writes should keep maintaining Q.
	failMember(cl, h, h.Geometry().PDrive(0))
	newData := randBytes(33, chunkSize)
	mustWrite(t, cl, h, 0, newData)
	// Now also fail the member we just wrote; content must reconstruct
	// through Q.
	failMember(cl, h, h.Geometry().DataDrive(0, 0))
	got := mustRead(t, cl, h, 0, chunkSize)
	if !bytes.Equal(got, newData) {
		t.Fatal("Q-only degraded write not reconstructable")
	}
}

// --- Rebuild ----------------------------------------------------------------

func TestReconstructStripeChunkDataPQ(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6)
	data := randBytes(34, 4*chunkSize)
	mustWrite(t, cl, h, 0, data)

	g := h.Geometry()
	base := g.DriveOffset(0)
	for _, m := range []int{g.DataDrive(0, 1), g.PDrive(0), g.QDrive(0)} {
		want := cl.Drives[m].PeekSync(base, chunkSize)
		failMember(cl, h, m)
		var got parity.Buffer
		var rerr error = errors.New("pending")
		h.ReconstructStripeChunk(0, m, func(b parity.Buffer, err error) { got, rerr = b, err })
		cl.Eng.Run()
		if rerr != nil {
			t.Fatalf("reconstruct member %d: %v", m, rerr)
		}
		if !bytes.Equal(got.Data(), want) {
			t.Fatalf("reconstructed chunk for member %d mismatches", m)
		}
		cl.RecoverTarget(m)
		h.SetFailed(m, false)
	}
}

func TestReconstructNotFailedErrors(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	var rerr error
	h.ReconstructStripeChunk(0, 0, func(_ parity.Buffer, err error) { rerr = err })
	cl.Eng.Run()
	if rerr == nil {
		t.Fatal("reconstructing a healthy member should error")
	}
}

// --- Configuration variants ---------------------------------------------------

func TestSerialPipelineStillCorrect(t *testing.T) {
	spec := cluster.DefaultSpec()
	spec.Targets = 5
	spec.Pipelined = false
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	spec.Drive = &drv
	cl := cluster.New(spec)
	h := cl.NewDRAID(core.Config{
		Geometry: raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: chunkSize},
	})
	data := randBytes(35, 16<<10)
	mustWrite(t, cl, h, 0, data)
	if !bytes.Equal(mustRead(t, cl, h, 0, int64(len(data))), data) {
		t.Fatal("serial pipeline round-trip mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestHostParityOnlyAblationCorrect(t *testing.T) {
	spec := cluster.DefaultSpec()
	spec.Targets = 5
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	spec.Drive = &drv
	cl := cluster.New(spec)
	h := cl.NewDRAID(core.Config{
		Geometry:       raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: chunkSize},
		HostParityOnly: true,
	})
	data := randBytes(36, 8<<10)
	mustWrite(t, cl, h, 0, data)
	if h.Stats().HostFallbackWrites == 0 {
		t.Fatal("ablation should route through host fallback")
	}
	if !bytes.Equal(mustRead(t, cl, h, 0, int64(len(data))), data) {
		t.Fatal("ablation round-trip mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestElidedModeFlowsSizes(t *testing.T) {
	spec := cluster.DefaultSpec()
	spec.Targets = 5
	spec.Elide = true
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	drv.StoreData = false
	spec.Drive = &drv
	cl := cluster.New(spec)
	h := cl.NewDRAID(core.Config{Geometry: raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: chunkSize}})
	var werr error = errors.New("pending")
	h.Write(0, parity.Sized(16<<10), func(err error) { werr = err })
	cl.Eng.Run()
	if werr != nil {
		t.Fatalf("elided write: %v", werr)
	}
	var got parity.Buffer
	h.Read(0, 16<<10, func(b parity.Buffer, err error) {
		if err != nil {
			t.Errorf("elided read: %v", err)
		}
		got = b
	})
	cl.Eng.Run()
	if !got.Elided() || got.Len() != 16<<10 {
		t.Fatalf("elided read returned %d bytes (elided=%v)", got.Len(), got.Elided())
	}
}

// --- Traffic accounting (the paper's headline property) ----------------------

// dRAID partial-stripe writes must cost ~1× user bytes of host outbound
// traffic (Table 1): the host sends only the new data plus small capsules.
func TestRMWHostTrafficIsOnex(t *testing.T) {
	cl, h := testCluster(t, 8, raid.Raid5)
	warm := randBytes(37, 128<<10)
	mustWrite(t, cl, h, 0, warm)
	cl.ResetTraffic()

	const userBytes = 128 << 10
	data := randBytes(38, userBytes)
	mustWrite(t, cl, h, 4*chunkSize, data) // chunks 4,5 of stripe 0 (RMW)
	out, in := cl.TotalHostBytes()
	if ratio := float64(out) / userBytes; ratio > 1.1 {
		t.Fatalf("host outbound = %.2f× user bytes, want ~1×", ratio)
	}
	// Host inbound: only completion capsules, no data.
	if in > 16<<10 {
		t.Fatalf("host inbound = %d bytes, want only capsules", in)
	}
}

// Degraded reads must cost ~1× on host inbound: reconstruction happens
// peer-to-peer, and only the requested bytes reach the host.
func TestDegradedReadHostTrafficIsOnex(t *testing.T) {
	cl, h := testCluster(t, 8, raid.Raid5)
	data := randBytes(39, 128<<10)
	mustWrite(t, cl, h, 0, data)
	m := h.Geometry().DataDrive(0, 0)
	failMember(cl, h, m)
	cl.ResetTraffic()

	const n = 32 << 10
	got := mustRead(t, cl, h, 0, n)
	if !bytes.Equal(got, data[:n]) {
		t.Fatal("degraded read mismatch")
	}
	_, in := cl.TotalHostBytes()
	if ratio := float64(in) / n; ratio > 1.2 {
		t.Fatalf("host inbound = %.2f× requested bytes, want ~1×", ratio)
	}
}

func TestFabricConnectionLookup(t *testing.T) {
	cl, _ := testCluster(t, 4, raid.Raid5)
	if cl.Fabric.Connection(core.HostID, 2) == nil {
		t.Fatal("host-target connection missing")
	}
	if cl.Fabric.Connection(1, 3) == nil || cl.Fabric.Connection(3, 1) == nil {
		t.Fatal("mesh connection missing")
	}
}

func TestBarrierReduceAblationCorrect(t *testing.T) {
	spec := cluster.DefaultSpec()
	spec.Targets = 5
	spec.BarrierReduce = true
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	spec.Drive = &drv
	cl := cluster.New(spec)
	h := cl.NewDRAID(core.Config{
		Geometry: raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: chunkSize},
	})
	seed := randBytes(40, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	// Delay the Parity command so contributions arrive first and must be
	// buffered by the barrier.
	p := h.Geometry().PDrive(0)
	cl.Fabric.Connection(core.HostID, core.NodeID(p)).InjectDelay(2 * sim.Millisecond)
	data := randBytes(41, 8<<10)
	mustWrite(t, cl, h, 0, data)
	cl.Fabric.Connection(core.HostID, core.NodeID(p)).InjectDelay(0)
	verifyStripeParity(t, cl, h, 0)
	if !bytes.Equal(mustRead(t, cl, h, 0, 8<<10), data) {
		t.Fatal("barrier-mode round-trip mismatch")
	}
}

// The §5.2 design point: with the non-blocking reduce, a delayed Parity
// command costs no more than the delay itself; with the barrier ablation,
// peer reduction work also queues behind it. Both must stay correct; the
// non-blocking path must not be slower.
func TestNonBlockingReduceNoSlowerThanBarrier(t *testing.T) {
	elapsed := func(barrier bool) sim.Time {
		spec := cluster.DefaultSpec()
		spec.Targets = 8
		spec.BarrierReduce = barrier
		drv := ssd.DefaultSpec()
		drv.Capacity = 64 << 20
		spec.Drive = &drv
		cl := cluster.New(spec)
		h := cl.NewDRAID(core.Config{
			Geometry: raid.Geometry{Level: raid.Raid5, Width: 8, ChunkSize: chunkSize},
		})
		// Delay every host→parity-capable link slightly so Parity commands
		// trail the data-path contributions.
		for i := 0; i < 8; i++ {
			cl.Fabric.Connection(core.HostID, core.NodeID(i)).InjectDelay(50 * sim.Microsecond)
		}
		pending := 0
		for i := 0; i < 20; i++ {
			pending++
			off := int64(i) * 7 * chunkSize
			h.Write(off, parity.FromBytes(randBytes(int64(i), 32<<10)), func(err error) {
				if err != nil {
					t.Errorf("write: %v", err)
				}
				pending--
			})
		}
		end := cl.Eng.Run()
		if pending != 0 {
			t.Fatal("writes did not drain")
		}
		return end
	}
	nb, barrier := elapsed(false), elapsed(true)
	if nb > barrier {
		t.Fatalf("non-blocking reduce (%v) slower than barrier (%v)", nb, barrier)
	}
}
