package core_test

import (
	"bytes"
	"errors"
	"testing"

	"draid/internal/blockdev"
	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

// epochCluster builds a testbed whose controllers carry explicit host epochs.
func epochCluster(t *testing.T, targets int) *cluster.Cluster {
	t.Helper()
	spec := cluster.DefaultSpec()
	spec.Targets = targets
	return cluster.New(spec)
}

func epochConfig(targets int, epoch uint64) core.Config {
	return core.Config{
		Geometry: raid.Geometry{Level: raid.Raid5, Width: targets, ChunkSize: chunkSize},
		Deadline: 50 * sim.Millisecond,
		Epoch:    epoch,
	}
}

// A controller holding a superseded epoch gets its commands rejected with
// StatusStaleEpoch, counts the rejection, reports the typed error, and
// stands down — one rejection is positive confirmation of the takeover.
func TestStaleEpochRejectionStandsDown(t *testing.T) {
	cl := epochCluster(t, 5)
	h1 := cl.NewDRAID(epochConfig(5, 1))
	data := randBytes(1, 2*chunkSize)
	mustWrite(t, cl, h1, 0, data)

	// A successor at a higher epoch makes first contact: the servers learn
	// epoch 2 and will reject everything below it from now on.
	h2 := cl.NewDRAID(epochConfig(5, 2))
	mustWrite(t, cl, h2, 0, data)
	for i, s := range cl.Servers {
		if got := s.VolumeEpoch(0); got != 2 {
			t.Fatalf("server %d at epoch %d after successor contact, want 2", i, got)
		}
	}

	// A latecomer re-registers the endpoint with the stale epoch: its first
	// write bounces off every bdev, and the echoed rejection fences it.
	stale := cl.NewDRAID(epochConfig(5, 1))
	errDone := errors.New("not done")
	stale.Write(0, parity.FromBytes(data), func(err error) { errDone = err })
	cl.Eng.Run()
	if errDone == nil {
		t.Fatal("stale-epoch write succeeded")
	}
	if !errors.Is(errDone, blockdev.ErrStaleEpoch) || !errors.Is(errDone, blockdev.ErrFenced) {
		t.Fatalf("stale-epoch write error = %v, want ErrStaleEpoch (and ErrFenced)", errDone)
	}
	if !stale.Fenced() {
		t.Fatal("controller should stand down after a stale-epoch rejection")
	}
	if got := stale.Stats().StaleEpochRejects; got == 0 {
		t.Fatal("StaleEpochRejects never counted")
	}
	var serverRejects int64
	for _, s := range cl.Servers {
		serverRejects += s.StaleRejects()
	}
	if serverRejects == 0 {
		t.Fatal("no server counted a stale reject")
	}

	// Once fenced, I/O fails fast with the typed error — no fabric traffic.
	errDone = errors.New("not done")
	stale.Write(0, parity.FromBytes(data), func(err error) { errDone = err })
	cl.Eng.Run()
	if !errors.Is(errDone, blockdev.ErrStaleEpoch) {
		t.Fatalf("post-fence write error = %v, want ErrStaleEpoch", errDone)
	}
}

// Seize adopts a live predecessor: the successor reads everything the
// predecessor wrote, and the predecessor's late completions are discarded by
// the foreign-epoch check rather than settling the successor's ops.
func TestSeizeAdoptsLivePredecessor(t *testing.T) {
	cl := epochCluster(t, 5)
	h1 := cl.NewDRAID(epochConfig(5, 1))
	data := randBytes(2, 4*chunkSize)
	mustWrite(t, cl, h1, 0, data)

	h2 := cl.NewDRAID(epochConfig(5, 2))
	h2.Seize(h1)
	got := mustRead(t, cl, h2, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("successor does not read the predecessor's data after seize")
	}

	// The zombie keeps writing on its old epoch. The servers reject it; the
	// completions route to the successor (which now owns the endpoint) and
	// carry the zombie's epoch, so the successor must drop them.
	errDone := errors.New("not done")
	h1.Write(0, parity.FromBytes(randBytes(3, 2*chunkSize)), func(err error) { errDone = err })
	cl.Eng.Run()
	if errDone == nil {
		t.Fatal("zombie write succeeded after seize")
	}
	if h2.Stats().ForeignCompletions == 0 {
		t.Fatal("successor never dropped a foreign-epoch completion")
	}
	// The rejected bytes must not have landed.
	if got := mustRead(t, cl, h2, 0, int64(len(data))); !bytes.Equal(got, data) {
		t.Fatal("zombie write mutated data after seize")
	}
}

// Seizing a live controller without a strictly higher nonzero epoch is a
// programming error: nothing would fence the predecessor, and shared command
// IDs would corrupt both sessions.
func TestSeizeRequiresHigherEpoch(t *testing.T) {
	cl := epochCluster(t, 5)
	h1 := cl.NewDRAID(epochConfig(5, 1))
	for _, bad := range []uint64{0, 1} {
		h2 := cl.NewDRAID(epochConfig(5, bad))
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Seize with epoch %d should panic", bad)
				}
			}()
			h2.Seize(h1)
		}()
	}
}

// The lease watchdog stands the controller down within one lease of losing
// the ability to renew — proactive fencing, before any server rejects it.
func TestLeaseExpiryStandsDown(t *testing.T) {
	cl := epochCluster(t, 5)
	renew := true
	cfg := epochConfig(5, 1)
	cfg.Lease = 10 * sim.Millisecond
	cfg.RenewLease = func() bool { return renew }
	h := cl.NewDRAID(cfg)
	data := randBytes(4, 2*chunkSize)
	mustWrite(t, cl, h, 0, data)

	cl.Eng.RunFor(50 * sim.Millisecond)
	if h.Fenced() {
		t.Fatal("controller fenced while renewals succeed")
	}
	renew = false
	cl.Eng.RunFor(50 * sim.Millisecond)
	if !h.Fenced() {
		t.Fatal("controller should stand down after a full lease without renewal")
	}
	if h.Stats().LeaseExpiries == 0 {
		t.Fatal("LeaseExpiries never counted")
	}
	errDone := errors.New("not done")
	h.Write(0, parity.FromBytes(data), func(err error) { errDone = err })
	cl.Eng.Run()
	if !errors.Is(errDone, blockdev.ErrFenced) {
		t.Fatalf("post-expiry write error = %v, want ErrFenced", errDone)
	}
	if errors.Is(errDone, blockdev.ErrStaleEpoch) {
		t.Fatal("watchdog stand-down should report the generic fence, not a stale epoch")
	}
}

// With enforcement injected away (the chaos harness's teeth mode), stale
// commands are admitted — the knob must actually disable the fence, or teeth
// sweeps would prove nothing.
func TestSetEpochChecksDisablesFence(t *testing.T) {
	cl := epochCluster(t, 5)
	h1 := cl.NewDRAID(epochConfig(5, 1))
	data := randBytes(5, 2*chunkSize)
	mustWrite(t, cl, h1, 0, data)
	h2 := cl.NewDRAID(epochConfig(5, 2))
	mustWrite(t, cl, h2, 0, data)
	for _, s := range cl.Servers {
		s.SetEpochChecks(false)
	}
	stale := cl.NewDRAID(epochConfig(5, 1))
	errDone := errors.New("not done")
	stale.Write(0, parity.FromBytes(data), func(err error) { errDone = err })
	cl.Eng.Run()
	if errDone != nil {
		t.Fatalf("with checks off the stale write should land: %v", errDone)
	}
	var rejects int64
	for _, s := range cl.Servers {
		rejects += s.StaleRejects()
	}
	if rejects != 0 {
		t.Fatalf("%d stale rejects counted with enforcement off", rejects)
	}
}
