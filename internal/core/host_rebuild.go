package core

import (
	"fmt"

	"draid/internal/backend"
	"draid/internal/blockdev"
	"draid/internal/gf256"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/placement"
	"draid/internal/raid"
)

// WriteMemberChunk writes a full chunk image directly to the drive holding
// stripe member m — the delivery half of rebuilding onto a replacement
// drive.
func (h *HostController) WriteMemberChunk(stripe int64, member int, b parity.Buffer, cb func(error)) {
	h.writeChunkToNode(stripe, h.nodeOf(h.layout.Drive(stripe, member)), b, cb)
}

// writeChunkToNode writes a full chunk image for stripe to an arbitrary
// endpoint — a member's drive or a hot spare being rebuilt onto.
func (h *HostController) writeChunkToNode(stripe int64, to NodeID, b parity.Buffer, cb func(error)) {
	if int64(b.Len()) != h.geo.ChunkSize {
		h.rt.Defer(func() { cb(fmt.Errorf("core: chunk image is %d bytes, want %d", b.Len(), h.geo.ChunkSize)) })
		return
	}
	op := h.newStripeOp("rebuild-write", stripe, 1, []NodeID{to},
		func() { cb(nil) },
		func([]NodeID) { cb(fmt.Errorf("core: stripe %d rebuild write: %w", stripe, blockdev.ErrTimeout)) },
	)
	h.send(op, to, nvmeof.Command{
		Opcode: nvmeof.OpWrite,
		Offset: h.driveOff(stripe), Length: h.geo.ChunkSize,
	}, b)
}

// ---------------------------------------------------------------------------
// Hot-spare rebuild bookkeeping. The rebuild manager (internal/repair) drives
// stripes through RebuildStripe in order; the controller routes foreground
// I/O below the advancing frontier to the spare, so the array sheds the
// degraded path incrementally instead of all at once.

// StartRebuild registers an in-progress rebuild of a drive onto endpoint
// dest (a hot spare). The drive must currently be failed.
func (h *HostController) StartRebuild(member int, dest NodeID) {
	if !h.failed[member] {
		panic(fmt.Sprintf("core: rebuilding healthy member %d", member))
	}
	if _, dup := h.rebuilds[member]; dup {
		panic(fmt.Sprintf("core: member %d already rebuilding", member))
	}
	h.rebuilds[member] = &rebuildState{dest: dest}
}

// Rebuilding returns the rebuild destination and frontier for member; ok is
// false when no rebuild is in progress.
func (h *HostController) Rebuilding(member int) (dest NodeID, frontier int64, ok bool) {
	r, ok := h.rebuilds[member]
	if !ok {
		return 0, 0, false
	}
	return r.dest, r.frontier, true
}

// RebuildStripe reconstructs member's chunk of one stripe and writes it to
// the rebuild destination, then advances the frontier. The stripe write lock
// is held across reconstruct+write, so no foreground write can interleave
// and leave the rebuilt chunk stale.
func (h *HostController) RebuildStripe(stripe int64, member int, cb func(error)) {
	r, ok := h.rebuilds[member]
	if !ok {
		h.rt.Defer(func() { cb(fmt.Errorf("core: member %d has no rebuild in progress", member)) })
		return
	}
	mem := h.layout.Member(stripe, member)
	if mem < 0 {
		// The stripe holds no chunk on this drive (declustered layouts only)
		// — nothing to rebuild; just advance the frontier.
		h.rt.Defer(func() {
			if r.frontier == stripe {
				r.frontier = stripe + 1
			}
			cb(nil)
		})
		return
	}
	h.acquireStripe(stripe, func() {
		h.ReconstructStripeChunk(stripe, mem, func(b parity.Buffer, err error) {
			if err != nil {
				h.releaseStripe(stripe)
				cb(err)
				return
			}
			h.writeChunkToNode(stripe, r.dest, b, func(err error) {
				if err == nil {
					h.stats.RebuiltStripes++
					if r.frontier == stripe {
						r.frontier = stripe + 1
					}
				}
				h.releaseStripe(stripe)
				cb(err)
			})
		})
	})
}

// FinishRebuild completes member's rebuild: the spare becomes the member's
// endpoint and the member returns to full service.
func (h *HostController) FinishRebuild(member int) {
	r, ok := h.rebuilds[member]
	if !ok {
		panic(fmt.Sprintf("core: member %d has no rebuild to finish", member))
	}
	h.memberNode[member] = r.dest
	delete(h.rebuilds, member)
	delete(h.failed, member)
}

// AbortRebuild abandons member's rebuild; the member stays failed and the
// partially written spare content is discarded.
func (h *HostController) AbortRebuild(member int) { delete(h.rebuilds, member) }

// ReconstructStripeChunk rebuilds the full chunk held by `member` in
// `stripe` using the disaggregated reconstruction machinery (§6) and returns
// it to the host — the unit of work for drive rebuild (Figure 17a). The
// member must currently be marked failed. Works for data, P, and Q chunks:
//
//   - data chunk: XOR-reduce the surviving data chunks and P; if P is also
//     lost (RAID-6), GF-reduce the survivors and Q and unscale on the host;
//   - P chunk:    XOR-reduce all data chunks;
//   - Q chunk:    GF-reduce all data chunks with their g^i coefficients.
func (h *HostController) ReconstructStripeChunk(stripe int64, member int, cb func(parity.Buffer, error)) {
	if !h.memberFailed(stripe, member) {
		h.rt.Defer(func() { cb(parity.Buffer{}, fmt.Errorf("core: member %d is not failed", member)) })
		return
	}
	h.stats.Reconstructions++
	kind, lostIdx := h.geo.Role(stripe, member)
	base := h.driveOff(stripe)
	cs := h.geo.ChunkSize

	type part struct {
		target  NodeID
		dataIdx uint16 // GF coefficient for this contribution
	}
	var parts []part
	addData := func(scale bool) {
		for c := 0; c < h.geo.DataChunks(); c++ {
			d := h.geo.DataDrive(stripe, c)
			if d == member || h.memberFailed(stripe, d) {
				continue
			}
			idx := NoScale
			if scale {
				idx = uint16(c)
			}
			parts = append(parts, part{target: h.nodeAt(stripe, d), dataIdx: idx})
		}
	}
	// unscale post-processes the reducer's result on the host (the Q-based
	// single-data recovery needs a division by g^lost).
	unscale := byte(1)
	switch kind {
	case raid.KindData:
		pDrive := h.geo.PDrive(stripe)
		switch {
		case !h.memberFailed(stripe, pDrive):
			parts = append(parts, part{target: h.nodeAt(stripe, pDrive), dataIdx: NoScale})
			addData(false)
		case h.geo.Level == raid.Raid6 && !h.memberFailed(stripe, h.geo.QDrive(stripe)):
			// P lost too: D_lost = (Q ⊕ Σ g^i·D_i) / g^lost.
			parts = append(parts, part{target: h.nodeAt(stripe, h.geo.QDrive(stripe)), dataIdx: NoScale})
			addData(true)
			unscale = gf256.Inv(parity.QCoeff(lostIdx))
		default:
			h.rt.Defer(func() { cb(parity.Buffer{}, blockdev.ErrIO) })
			return
		}
	case raid.KindP:
		addData(false)
	case raid.KindQ:
		addData(true)
	}
	if len(parts) < h.geo.DataChunks() {
		// A second member of this stripe is failed alongside the one being
		// rebuilt (RAID-6 double fault). The single reduce tree cannot express
		// that solve — it needs P and Q together with per-survivor
		// coefficients outside the g^i form — so gather the survivors to the
		// host and solve both erasures there: rebuild-through-Q. Stripes past
		// the parity budget fail inside the recovery.
		if h.geo.Level == raid.Raid6 {
			h.rebuildRecoverChunk(stripe, member, cb)
			return
		}
		h.rt.Defer(func() { cb(parity.Buffer{}, blockdev.ErrIO) })
		return
	}

	candidates := make([]int, len(parts))
	for i, p := range parts {
		candidates[i] = int(p.target)
	}
	reducer := NodeID(h.cfg.Selector.Pick(candidates, cs*int64(len(parts))))

	var result parity.Buffer
	watch := make([]NodeID, len(parts))
	for i, p := range parts {
		watch[i] = p.target
	}
	op := h.newStripeOp("rebuild-reconstruct", stripe, 1, watch,
		func() {
			if unscale != 1 {
				h.cores.Exec(h.cfg.Costs.Gf(result.Len()), func() {
					// result is the reducer's accumulator, owned by us now;
					// unscale it in place rather than into a fresh buffer.
					cb(parity.Scale(result, unscale), nil)
				})
				return
			}
			cb(result, nil)
		},
		func(missing []NodeID) {
			cb(parity.Buffer{}, fmt.Errorf("core: stripe %d reconstruction: %w", stripe, blockdev.ErrTimeout))
		},
	)
	op.onPayload = func(from NodeID, _ nvmeof.Command, b parity.Buffer) { result = b }
	op.onMediaErr = func(_ int, _ nvmeof.Command) {
		// A survivor hit unreadable sectors mid-rebuild: switch to the
		// media-hardened recovery, which solves through remaining redundancy
		// and degrades to lost-region accounting only past the parity budget.
		h.rebuildRecoverChunk(stripe, member, cb)
	}

	for _, p := range parts {
		cmd := nvmeof.Command{
			Opcode:  nvmeof.OpReconstruction,
			Subtype: nvmeof.SubNoRead,
			Offset:  base, Length: cs,
			FwdOffset: base, FwdLength: cs,
			NextDest: uint16(reducer),
			DataIdx:  p.dataIdx,
		}
		if p.target == reducer {
			cmd.WaitNum = uint16(len(parts))
		}
		h.send(op, p.target, cmd, parity.Buffer{})
	}
}

// ---------------------------------------------------------------------------
// Declustered (many-to-many) rebuild and chunk migration. A declustered
// layout has no single spare endpoint: each chunk of the failed drive is
// reconstructed and relocated into an idle slot of its own row —
// distributed spare space — and the new placement is committed to the
// layout. Once committed, the layout no longer maps the stripe's member
// to the failed drive, so foreground I/O sheds the degraded path chunk by
// chunk, and both the reads and the writes of the rebuild spread over the
// whole cluster.

// PlacementSlots lists the chunks currently placed on a drive, in stripe
// order — the work list for a declustered rebuild or drive removal. Nil
// for non-declustered layouts.
func (h *HostController) PlacementSlots(drive int) []placement.Slot {
	if h.dyn == nil {
		return nil
	}
	return h.dyn.Slots(drive)
}

// readChunk reads the full current chunk image of stripe member m from its
// healthy drive.
func (h *HostController) readChunk(stripe int64, member int, cb func(parity.Buffer, error)) {
	target := h.nodeAt(stripe, member)
	var result parity.Buffer
	op := h.newStripeOp("migrate-read", stripe, 1, []NodeID{target},
		func() { cb(result, nil) },
		func([]NodeID) {
			cb(parity.Buffer{}, fmt.Errorf("core: stripe %d migrate read: %w", stripe, blockdev.ErrTimeout))
		},
	)
	op.onPayload = func(_ NodeID, _ nvmeof.Command, b parity.Buffer) { result = b }
	h.send(op, target, nvmeof.Command{
		Opcode: nvmeof.OpRead,
		Offset: h.driveOff(stripe), Length: h.geo.ChunkSize,
	}, parity.Buffer{})
}

// MigrateStripeChunk relocates stripe member m to physical drive `to`,
// which must already be reserved in the layout (ClaimSpare/ClaimDrive or a
// PlanAdd move). The whole relocation runs under the stripe write lock, so
// no foreground write can interleave between the chunk read (or
// reconstruction, when the source drive is failed) and the write+commit —
// the same discipline destage and frontier rebuild use. On success the new
// placement is committed; on failure the reservation is released and the
// chunk stays where it was.
func (h *HostController) MigrateStripeChunk(stripe int64, member, to int, cb func(error)) {
	if h.dyn == nil {
		h.rt.Defer(func() { cb(fmt.Errorf("core: layout does not support migration: %w", backend.ErrUnsupported)) })
		return
	}
	h.acquireStripe(stripe, func() {
		done := func(err error) {
			if err != nil {
				h.dyn.Release(stripe, to)
			}
			h.releaseStripe(stripe)
			cb(err)
		}
		deliver := func(b parity.Buffer, err error) {
			if err != nil {
				done(err)
				return
			}
			h.writeChunkToNode(stripe, h.nodeOf(to), b, func(err error) {
				if err == nil {
					h.dyn.Commit(stripe, member, to)
					h.stats.RebuiltStripes++
				}
				done(err)
			})
		}
		if h.memberFailed(stripe, member) {
			h.ReconstructStripeChunk(stripe, member, deliver)
		} else {
			h.readChunk(stripe, member, deliver)
		}
	})
}

// RebuildSlot rebuilds one chunk of a failed drive into an idle slot of
// its row: the declustered unit of rebuild work. A stripe whose chunk was
// already relocated (by a racing rebalance) completes immediately.
func (h *HostController) RebuildSlot(stripe int64, drive int, cb func(error)) {
	if h.dyn == nil {
		h.rt.Defer(func() { cb(fmt.Errorf("core: layout does not support slot rebuild: %w", backend.ErrUnsupported)) })
		return
	}
	member := h.dyn.Member(stripe, drive)
	if member < 0 {
		h.rt.Defer(func() { cb(nil) })
		return
	}
	to, ok := h.dyn.ClaimSpare(stripe, func(d int) bool { return h.failed[d] })
	if !ok {
		h.rt.Defer(func() { cb(fmt.Errorf("core: stripe %d: no spare slot for drive %d: %w", stripe, drive, blockdev.ErrIO)) })
		return
	}
	h.MigrateStripeChunk(stripe, member, to, cb)
}

// EvictSlot migrates one chunk off a drive being removed, into an idle
// slot of its row on the remaining drives.
func (h *HostController) EvictSlot(stripe int64, drive int, cb func(error)) {
	if h.dyn == nil {
		h.rt.Defer(func() { cb(fmt.Errorf("core: layout does not support eviction: %w", backend.ErrUnsupported)) })
		return
	}
	member := h.dyn.Member(stripe, drive)
	if member < 0 {
		h.rt.Defer(func() { cb(nil) })
		return
	}
	to, ok := h.dyn.ClaimSpare(stripe, func(d int) bool { return d == drive || h.failed[d] })
	if !ok {
		h.rt.Defer(func() { cb(fmt.Errorf("core: stripe %d: no slot to evict drive %d into: %w", stripe, drive, blockdev.ErrIO)) })
		return
	}
	h.MigrateStripeChunk(stripe, member, to, cb)
}

// AddDrive grows a declustered volume's drive set by one: the layout gains
// an (initially empty) drive and the controller maps it to fabric endpoint
// node. Returns the new drive index. The caller rebalances existing chunks
// onto it via the layout's PlanAdd and MigrateStripeChunk.
func (h *HostController) AddDrive(node NodeID) (int, error) {
	if h.dyn == nil {
		return 0, fmt.Errorf("core: layout does not support drive add: %w", backend.ErrUnsupported)
	}
	idx := h.dyn.AddDrive()
	if idx != len(h.memberNode) {
		// Several controllers can share one Dynamic layout only if they grow
		// it in lockstep; today each volume owns its layout.
		panic(fmt.Sprintf("core: layout drive %d != controller drive %d", idx, len(h.memberNode)))
	}
	h.memberNode = append(h.memberNode, node)
	return idx, nil
}

// RetireDrive marks a drive removed in the layout: ClaimSpare and future
// rebalances never target it again. Chunks must already be migrated off
// (EvictSlot) or rebuilt elsewhere (RebuildSlot).
func (h *HostController) RetireDrive(drive int) {
	if h.dyn != nil {
		h.dyn.SetRemoved(drive, true)
	}
}
