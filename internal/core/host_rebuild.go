package core

import (
	"fmt"

	"draid/internal/blockdev"
	"draid/internal/gf256"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
)

// WriteMemberChunk writes a full chunk image directly to a member's drive —
// the delivery half of rebuilding onto a replacement drive.
func (h *HostController) WriteMemberChunk(stripe int64, member int, b parity.Buffer, cb func(error)) {
	if int64(b.Len()) != h.geo.ChunkSize {
		h.eng.Defer(func() { cb(fmt.Errorf("core: chunk image is %d bytes, want %d", b.Len(), h.geo.ChunkSize)) })
		return
	}
	op := h.newStripeOp("rebuild-write", stripe, 1, []NodeID{NodeID(member)},
		func() { cb(nil) },
		func([]NodeID) { cb(blockdev.ErrTimeout) },
	)
	h.send(op, NodeID(member), nvmeof.Command{
		Opcode: nvmeof.OpWrite,
		Offset: h.geo.DriveOffset(stripe), Length: h.geo.ChunkSize,
	}, b)
}

// ReconstructStripeChunk rebuilds the full chunk held by `member` in
// `stripe` using the disaggregated reconstruction machinery (§6) and returns
// it to the host — the unit of work for drive rebuild (Figure 17a). The
// member must currently be marked failed. Works for data, P, and Q chunks:
//
//   - data chunk: XOR-reduce the surviving data chunks and P; if P is also
//     lost (RAID-6), GF-reduce the survivors and Q and unscale on the host;
//   - P chunk:    XOR-reduce all data chunks;
//   - Q chunk:    GF-reduce all data chunks with their g^i coefficients.
func (h *HostController) ReconstructStripeChunk(stripe int64, member int, cb func(parity.Buffer, error)) {
	if !h.failed[member] {
		h.eng.Defer(func() { cb(parity.Buffer{}, fmt.Errorf("core: member %d is not failed", member)) })
		return
	}
	h.stats.Reconstructions++
	kind, lostIdx := h.geo.Role(stripe, member)
	base := h.geo.DriveOffset(stripe)
	cs := h.geo.ChunkSize

	type part struct {
		target  NodeID
		dataIdx uint16 // GF coefficient for this contribution
	}
	var parts []part
	addData := func(scale bool) {
		for c := 0; c < h.geo.DataChunks(); c++ {
			d := h.geo.DataDrive(stripe, c)
			if h.failed[d] {
				continue
			}
			idx := NoScale
			if scale {
				idx = uint16(c)
			}
			parts = append(parts, part{target: NodeID(d), dataIdx: idx})
		}
	}
	// unscale post-processes the reducer's result on the host (the Q-based
	// single-data recovery needs a division by g^lost).
	unscale := byte(1)
	switch kind {
	case raid.KindData:
		pDrive := h.geo.PDrive(stripe)
		switch {
		case !h.failed[pDrive]:
			parts = append(parts, part{target: NodeID(pDrive), dataIdx: NoScale})
			addData(false)
		case h.geo.Level == raid.Raid6 && !h.failed[h.geo.QDrive(stripe)]:
			// P lost too: D_lost = (Q ⊕ Σ g^i·D_i) / g^lost.
			parts = append(parts, part{target: NodeID(h.geo.QDrive(stripe)), dataIdx: NoScale})
			addData(true)
			unscale = gf256.Inv(parity.QCoeff(lostIdx))
		default:
			h.eng.Defer(func() { cb(parity.Buffer{}, blockdev.ErrIO) })
			return
		}
	case raid.KindP:
		addData(false)
	case raid.KindQ:
		addData(true)
	}
	if len(parts) < h.geo.DataChunks() {
		h.eng.Defer(func() { cb(parity.Buffer{}, blockdev.ErrIO) })
		return
	}

	candidates := make([]int, len(parts))
	for i, p := range parts {
		candidates[i] = int(p.target)
	}
	reducer := NodeID(h.cfg.Selector.Pick(candidates, cs*int64(len(parts))))

	var result parity.Buffer
	watch := make([]NodeID, len(parts))
	for i, p := range parts {
		watch[i] = p.target
	}
	op := h.newStripeOp("rebuild-reconstruct", stripe, 1, watch,
		func() {
			if unscale != 1 {
				h.cores.Exec(h.cfg.Costs.Gf(result.Len()), func() {
					cb(parity.MulInto(result, unscale), nil)
				})
				return
			}
			cb(result, nil)
		},
		func(missing []NodeID) { cb(parity.Buffer{}, blockdev.ErrTimeout) },
	)
	op.onPayload = func(from NodeID, _ nvmeof.Command, b parity.Buffer) { result = b }

	for _, p := range parts {
		cmd := nvmeof.Command{
			Opcode:  nvmeof.OpReconstruction,
			Subtype: nvmeof.SubNoRead,
			Offset:  base, Length: cs,
			FwdOffset: base, FwdLength: cs,
			NextDest: uint16(reducer),
			DataIdx:  p.dataIdx,
		}
		if p.target == reducer {
			cmd.WaitNum = uint16(len(parts))
		}
		h.send(op, p.target, cmd, parity.Buffer{})
	}
}
