package core

import (
	"fmt"

	"draid/internal/blockdev"
	"draid/internal/sim"
)

// Host-side membership: the lease watchdog and stand-down machinery pairing
// the server-side epoch checks (server.go). Epoch fencing makes a stale
// host's writes inert at the bdevs; the lease makes the stale host notice
// *proactively* — it parks its own I/O within one lease of losing the
// volume instead of discovering the takeover through rejected writes.

// startLeaseWatchdog arms the membership lease: every half-lease the
// controller re-validates ownership through Config.RenewLease, and once a
// full lease elapses without a successful renewal it stands down. Ticks run
// as background work so a pending watchdog never keeps Run from returning.
func (h *HostController) startLeaseWatchdog() {
	d := h.cfg.Lease
	expiry := h.rt.Now() + sim.Time(d)
	var tick func()
	tick = func() {
		if h.crashed || h.fenced {
			return
		}
		if h.cfg.RenewLease == nil || h.cfg.RenewLease() {
			expiry = h.rt.Now() + sim.Time(d)
		} else if h.rt.Now() >= expiry {
			h.stats.LeaseExpiries++
			h.trace("lease expired; standing down")
			h.standDown(blockdev.ErrFenced)
			return
		}
		h.rt.AfterBG(d/2, tick)
	}
	h.rt.AfterBG(d/2, tick)
}

// standDown parks the controller: it no longer owns the volume. Foreground
// I/O fails fast with cause (wrapped through fenceError), destage stops
// retrying, and the lease watchdog winds down. In-flight operations are left
// to resolve through their completions or deadlines — their failure paths
// observe the fenced flag and report the typed error. Unlike Crash, every
// pending callback still fires: the issuer deserves an answer.
func (h *HostController) standDown(cause error) {
	if h.fenced || h.crashed {
		return
	}
	h.fenced = true
	h.fenceErr = cause
	h.trace("stood down: %v", cause)
}

// fenceError wraps the stand-down cause for one refused operation.
func (h *HostController) fenceError(what string) error {
	cause := h.fenceErr
	if cause == nil {
		cause = blockdev.ErrFenced
	}
	return fmt.Errorf("core: %s refused: %w", what, cause)
}

// Fenced reports whether the controller has stood down from its volume.
func (h *HostController) Fenced() bool { return h.fenced }

// Epoch returns the host epoch this controller stamps on its capsules
// (zero when epoch fencing is off).
func (h *HostController) Epoch() uint64 { return h.cfg.Epoch }

// Seize adopts a predecessor that may still be alive — the partitioned-host
// takeover. Unlike Adopt it does not require the predecessor to have
// crashed: the caller has been granted a higher epoch, so everything the
// zombie keeps issuing is rejected at the bdevs (StatusStaleEpoch) and its
// first rejection makes it stand down. Registration already repointed the
// host endpoint's volume demux here, so completions addressed to the zombie
// arrive at this controller — and are discarded by the foreign-epoch check,
// since both sessions continue the same command-ID sequence.
//
// Requires epoch fencing (a nonzero Config.Epoch above the predecessor's):
// without it nothing stops the zombie's writes, and ID collisions would
// corrupt both sessions' op state.
func (h *HostController) Seize(prev *HostController) []int64 {
	if h.cfg.Epoch == 0 || h.cfg.Epoch <= prev.cfg.Epoch {
		panic("core: seizing a live controller requires a higher host epoch")
	}
	return h.takeover(prev)
}

// takeover copies a predecessor's array state — the op-ID sequence, failed
// members, member→endpoint mapping, rebuilds in progress, and staged
// write-back data — and returns its dirty stripes (the §5.4 resync set).
func (h *HostController) takeover(prev *HostController) []int64 {
	// Continue the predecessor's op-ID sequence: server-side state (reduce
	// sessions, fencing boundaries) is keyed by (volume, op ID), so a
	// replacement reusing IDs would collide with the crashed session's
	// leftovers. Monotone IDs also let a fence name the dead session as
	// "every ID below mine".
	h.nextID = prev.nextID
	for m := range prev.failed {
		h.failed[m] = true
	}
	// Replace rather than copy: the predecessor may have grown its drive
	// set (AddDrive) past what this controller's layout reported at
	// construction.
	h.memberNode = append([]NodeID(nil), prev.memberNode...)
	for m, r := range prev.rebuilds {
		h.rebuilds[m] = &rebuildState{dest: r.dest, frontier: r.frontier}
	}
	if h.stage != nil && prev.stage != nil {
		// Replay the predecessor's intent log: acknowledged staged writes
		// (including any mid-destage snapshot) become live staged data here
		// and destage normally — zero acknowledged writes lost.
		h.stage.adopt(prev.stage)
	}
	return prev.DirtyStripes()
}
