package core

import (
	"fmt"
	"sort"

	"draid/internal/backend"
	"draid/internal/blockdev"
	"draid/internal/cpu"
	"draid/internal/integrity"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/placement"
	"draid/internal/raid"
	"draid/internal/recon"
	"draid/internal/sim"
	"draid/internal/trace"
)

// Config parameterizes a dRAID host controller.
type Config struct {
	Geometry raid.Geometry
	Costs    cpu.Costs
	// Volume names the virtual array this controller serves. Every capsule
	// it issues carries the ID in NSID, so N controllers can share the host
	// fabric endpoint and the servers' reduce state stays per-volume.
	// Volume 0 is the single-volume default.
	Volume VolumeID
	// DriveBase is the byte offset on every member drive at which this
	// volume's extent starts. A controller owns [DriveBase,
	// DriveBase+driveCapacity) of each drive rather than assuming the drive
	// from offset 0 — the indirection that lets volumes share drives.
	DriveBase int64
	// Layout maps (stripe, member) to (physical drive, offset). Nil selects
	// the classic contiguous placement.Fixed over DriveBase, which is
	// byte-identical to the pre-layout address arithmetic. A
	// placement.Dynamic layout (declustered) spreads the volume over more
	// drives than the stripe width and enables chunk-level relocation
	// (many-to-many rebuild, online drive add/remove).
	Layout placement.Layout
	// LayoutFor, when non-nil and Layout is nil, builds the layout once the
	// volume registry has assigned the extent window — the allocator calls
	// it with the final (DriveBase, extent) pair. This keeps layout
	// construction out of callers that don't know their base yet.
	LayoutFor func(base, extent int64) placement.Layout
	// HostCores sizes the host's reactor pool (default 4).
	HostCores int
	// Deadline bounds each stripe operation (§5.4). Zero means 1s.
	Deadline sim.Duration
	// Selector picks degraded-read reducers; nil means random.
	Selector recon.Selector
	// HostParityOnly disables peer-to-peer disaggregation: partial writes
	// fall back to host-side RMW like the SPDK baseline (an ablation knob;
	// normal dRAID leaves this false).
	HostParityOnly bool
	// MaxRetries bounds the §5.4 retry chain per operation (default 1: one
	// timeout-driven retry, then the error surfaces).
	MaxRetries int
	// RetryBackoff spaces retries deterministically: attempt k waits
	// k*RetryBackoff before reissuing (default 0: immediate retry).
	RetryBackoff sim.Duration
	// Health, when non-nil, receives per-member evidence from the data path
	// (see HealthSink). Also settable after construction via SetHealth.
	Health HealthSink
	// Hedge configures straggler hedging on the read path (see hedge.go).
	// The zero value (HedgeOff) leaves the read path byte-identical to the
	// unhedged implementation.
	Hedge HedgeConfig
	// WriteBack enables host-side write-back staging: sub-stripe writes are
	// absorbed into an intent-logged staging buffer, acknowledged
	// immediately, coalesced by stripe, and destaged as full-stripe writes
	// (stage.go / destage.go). Off (the default) leaves the write path
	// byte-identical to the unstaged implementation.
	WriteBack bool
	// StageBytes bounds the staging buffer (default 16 MiB). A limit smaller
	// than one stripe's data size degenerates to write-through.
	StageBytes int64
	// CacheBytes sizes the clean-read cache (0 disables it; staged-data
	// read hits work regardless).
	CacheBytes int64
	// DestageInterval is the idle-destage tick period (default 2ms): stripes
	// with no new writes for a full interval are flushed to the drives.
	DestageInterval sim.Duration
	// QoS, when non-nil, admits this controller's user reads and writes
	// through a shared weighted-fair arbiter keyed by volume (NSID), so a
	// noisy neighbor volume cannot monopolize the cluster's in-flight byte
	// window. Several controllers share one arbiter (cluster wiring).
	QoS *QoS
	// QoSWeight is this volume's weight in the shared arbiter (default 1).
	QoSWeight float64
	// QoSRate, when positive, caps this volume's admitted throughput with a
	// token bucket of QoSRate bytes/sec and QoSBurst bytes of burst
	// (QoSBurst <= 0 selects the arbiter's window size).
	QoSRate  float64
	QoSBurst int64
	// Epoch is the host epoch the cluster granted this controller for its
	// volume (membership fencing, §5.4 extended). Every capsule the
	// controller issues carries it; bdevs reject anything below their
	// current epoch with StatusStaleEpoch, so a partitioned predecessor can
	// never apply a write after a takeover. Zero disables epoch stamping
	// and leaves the wire format and protocol byte-identical to the
	// pre-epoch implementation.
	Epoch uint64
	// Lease, when positive, arms the membership lease watchdog: the
	// controller re-validates ownership (via RenewLease) every half-lease
	// and proactively stands down — parking foreground I/O and destage with
	// ErrFenced — once a full lease elapses without a successful renewal,
	// rather than discovering the takeover through rejected writes.
	Lease sim.Duration
	// RenewLease is polled by the lease watchdog; returning false means the
	// grantor has moved the volume's epoch past this controller's and the
	// lease must not be extended. Nil self-renews (the watchdog only fires
	// on explicit revocation then).
	RenewLease func() bool
	// Trace, when non-nil, receives protocol events.
	Trace func(format string, args ...any)
	// Tracer, when enabled, records structured stripe-op and per-member RPC
	// spans plus a host-core utilization gauge. Nil disables.
	Tracer *trace.Collector
}

// HealthSink receives per-member evidence from the host's data path: missed
// deadlines and error completions (faults) and successful completions (oks).
// confirmed marks definitive evidence — the member's node observed down, or
// a drive-reported error — as opposed to a silent timeout that may be
// network jitter. Implementations must not re-enter the controller
// synchronously with blocking work; defer through the engine instead.
type HealthSink interface {
	ObserveFault(member int, confirmed bool)
	ObserveOK(member int)
}

// Stats counts host-level events.
type Stats struct {
	Reads, Writes        int64
	RMWWrites, RCWWrites int64
	FullStripeWrites     int64
	DegradedReads        int64
	Reconstructions      int64
	Timeouts, Retries    int64
	UserBytesRead        int64
	UserBytesWritten     int64
	HostFallbackWrites   int64
	HostFallbackReads    int64
	QueuedStripeWaits    int64
	Probes               int64
	RebuiltStripes       int64
	Resyncs              int64
	// Integrity-path counters: per-chunk erasure reports received
	// (StatusMediaError completions), successful in-place repairs
	// (repair-on-read and scrub), and scrub progress.
	MediaErrors     int64
	RepairedRanges  int64
	ScrubbedStripes int64
	// Grey-failure counters: HedgedReads counts stripe groups that issued
	// a hedge (parity + cover reads); HedgeWins counts hedges that beat
	// the straggler and settled the extent through the XOR solve.
	HedgedReads int64
	HedgeWins   int64
	// Write-back staging counters: StagedWrites counts stripe groups
	// absorbed by the stage (acknowledged without drive I/O);
	// DestageFullStripe / DestageRCW count destages by mode; CacheHits
	// counts reads served entirely from host memory (stage + read cache);
	// CacheBytes is the read cache's current occupancy (a gauge).
	StagedWrites      int64
	DestageFullStripe int64
	DestageRCW        int64
	CacheHits         int64
	CacheBytes        int64
	// Membership-fencing counters: StaleEpochRejects counts completions
	// reporting this controller's epoch superseded (each one triggers
	// stand-down); ForeignCompletions counts completions discarded because
	// they echoed a different epoch (answers addressed to a predecessor
	// whose command IDs collide with ours after a seize); LeaseExpiries
	// counts watchdog-driven stand-downs.
	StaleEpochRejects  int64
	ForeignCompletions int64
	LeaseExpiries      int64
}

// HostController is the dRAID host: a virtual block device whose I/O is
// disaggregated across the storage targets.
type HostController struct {
	rt    backend.Runtime
	fab   backend.Transport
	geo   raid.Geometry
	cfg   Config
	cores backend.Executor

	// layout places every (stripe, member) chunk on a physical drive;
	// dyn is non-nil when the layout supports relocation (declustered).
	layout placement.Layout
	dyn    placement.Dynamic

	size   int64
	nextID uint64

	// stripeQ admits one write per stripe at a time (§3); reads are
	// lock-free (§8 optimization over the SPDK POC).
	stripeQ map[int64]*stripeQueue

	// inflight maps command IDs to their parent operation.
	inflight map[uint64]*subOp

	failed map[int]bool // physical drive index → failed

	// memberNode maps physical drive index → the fabric endpoint currently
	// serving it. Identity at construction; spare promotion repoints
	// entries; AddDrive appends. With the fixed layout drive index and
	// stripe member index coincide.
	memberNode []NodeID
	// rebuilds tracks in-progress spare rebuilds by drive: stripes below
	// the frontier already live on the spare and are routed there.
	rebuilds map[int]*rebuildState

	// dirty is the §5.4 write-intent bitmap: stripe → in-flight writes.
	dirty map[int64]int

	// crashed simulates controller death: no new I/O is accepted, no
	// completions are processed, and pending callbacks never fire.
	crashed bool

	// fenced marks a controller that has stood down from its volume: its
	// lease expired or a bdev reported its epoch superseded. Foreground I/O
	// fails fast with fenceErr (ErrFenced or ErrStaleEpoch) and destage
	// parks; unlike crashed, callbacks still fire — the issuer deserves the
	// typed error, not silence.
	fenced   bool
	fenceErr error

	health HealthSink

	// stage is the write-back staging layer (stage.go); nil whenever
	// Config.WriteBack is false, so the default path pays nothing. cache is
	// the clean-read cache; nil when disabled.
	stage *stage
	cache *readCache

	// hedge is the per-member latency model driving hedged reads; nil
	// whenever Config.Hedge.Policy is HedgeOff, so the default path pays
	// nothing.
	hedge *hedger

	// lost tracks virtual byte ranges whose data exceeded the parity budget
	// (RAID-5 double faults involving media errors): reads overlapping them
	// fail fast with blockdev.ErrMediaError instead of returning garbage,
	// and writes covering them bring the bytes back. lostEver counts every
	// range ever recorded (monotonic), for progress deltas.
	lost     integrity.RangeSet
	lostEver int64

	stats Stats

	// Tracing timelines (meaningful only when cfg.Tracer is enabled).
	opsTrack trace.Track // async stripe-op spans
	rpcTrack trace.Track // async per-member capsule exchanges
}

type stripeQueue struct {
	busy    bool
	waiters []func()
}

// rebuildState is one member's in-progress rebuild onto a spare endpoint.
type rebuildState struct {
	dest     NodeID
	frontier int64 // stripes < frontier are already on dest
}

// subOp tracks one outstanding capsule exchange.
type subOp struct {
	op *stripeOp
}

// stripeOp is one stripe-granularity operation (a stripe write or a
// degraded-read reconstruction group).
type stripeOp struct {
	id        uint64
	stripe    int64
	remaining int
	failedFn  func(missing []NodeID)
	doneFn    func()
	timer     backend.Timer
	// read assembly: completions carrying payloads are routed here.
	onPayload func(from NodeID, cmd nvmeof.Command, b parity.Buffer)
	// onMediaErr, when set, takes over after a StatusMediaError completion:
	// the op is cancelled (no doneFn/failedFn) and the hook drives its own
	// recovery continuation. The completion's Offset/Length carry the
	// precise unreadable drive range. When nil, the op fails blaming no
	// member (media errors are not node-failure evidence).
	onMediaErr func(member int, cmd nvmeof.Command)
	done       bool
	// responded records endpoints that completed (any status), so a timeout
	// implicates only the silent participants.
	responded map[NodeID]bool
	// span covers the whole operation; rpcs cover each capsule exchange, in
	// send order (a slice, not a map, so close-out order is deterministic).
	span *trace.Op
	rpcs []rpcSpan
}

// rpcSpan is one in-flight capsule exchange's trace span.
type rpcSpan struct {
	target NodeID
	span   *trace.Op
}

// endRPC closes the oldest open RPC span addressed to target.
func (op *stripeOp) endRPC(target NodeID) {
	for i := range op.rpcs {
		if r := &op.rpcs[i]; r.target == target && r.span != nil {
			r.span.End()
			r.span = nil
			return
		}
	}
}

// closeSpans ends the op span and any RPC spans still open (participants that
// never send a completion, e.g. SubRWRead readers, or a timed-out exchange).
func (op *stripeOp) closeSpans(result string) {
	if op.span != nil {
		if result == "" {
			op.span.End()
		} else {
			op.span.End(trace.Str("result", result))
		}
		op.span = nil
	}
	for i := range op.rpcs {
		if s := op.rpcs[i].span; s != nil {
			s.End()
			op.rpcs[i].span = nil
		}
	}
}

// NewHost creates the dRAID host controller on the transport's host
// endpoint. It is backend-agnostic: on a simulation runtime the reactor pool
// models CPU cost in virtual time; on any other runtime CPU work executes
// immediately in submission order (real cores cost real time already).
func NewHost(rt backend.Runtime, fab backend.Transport, driveCapacity int64, cfg Config) *HostController {
	if err := cfg.Geometry.Validate(); err != nil {
		panic(err)
	}
	if cfg.Layout == nil && cfg.LayoutFor != nil {
		cfg.Layout = cfg.LayoutFor(cfg.DriveBase, driveCapacity)
	}
	if cfg.Layout == nil {
		cfg.Layout = placement.NewFixed(cfg.DriveBase, cfg.Geometry.ChunkSize, cfg.Geometry.Width, driveCapacity)
	}
	if cfg.Layout.Width() != cfg.Geometry.Width {
		panic(fmt.Sprintf("core: layout width %d != geometry width %d", cfg.Layout.Width(), cfg.Geometry.Width))
	}
	if cfg.Layout.Drives() > fab.Width() {
		panic(fmt.Sprintf("core: layout drives %d > fabric targets %d", cfg.Layout.Drives(), fab.Width()))
	}
	if cfg.HostCores <= 0 {
		cfg.HostCores = 4
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = sim.Second
	}
	if cfg.Selector == nil {
		cfg.Selector = &recon.RandomSelector{Rng: rt.Rand()}
	}
	var pool *cpu.Pool
	var eng *sim.Engine
	var exec backend.Executor
	if ep, ok := rt.(backend.EngineProvider); ok {
		eng = ep.SimEngine()
		pool = cpu.NewPool(eng, cfg.HostCores)
		exec = pool
	} else if ex, ok := rt.(backend.Executor); ok {
		exec = ex
	} else {
		panic("core: runtime provides neither a sim engine nor an executor")
	}
	h := &HostController{
		rt: rt, fab: fab, geo: cfg.Geometry, cfg: cfg,
		cores:      exec,
		layout:     cfg.Layout,
		size:       cfg.Layout.Stripes() * cfg.Geometry.StripeDataSize(),
		stripeQ:    make(map[int64]*stripeQueue),
		inflight:   make(map[uint64]*subOp),
		failed:     make(map[int]bool),
		memberNode: make([]NodeID, cfg.Layout.Drives()),
		rebuilds:   make(map[int]*rebuildState),
		health:     cfg.Health,
	}
	h.dyn, _ = cfg.Layout.(placement.Dynamic)
	for m := range h.memberNode {
		h.memberNode[m] = NodeID(m)
	}
	if cfg.Hedge.Policy != HedgeOff {
		h.hedge = newHedger(cfg.Hedge, len(h.memberNode))
	}
	if cfg.WriteBack {
		limit := cfg.StageBytes
		if limit <= 0 {
			limit = 16 << 20
		}
		h.stage = newStage(h, limit)
		if cfg.CacheBytes > 0 {
			h.cache = newReadCache(h, cfg.CacheBytes)
		}
		h.stage.startDestageTimer()
	}
	if cfg.QoS != nil {
		w := cfg.QoSWeight
		if w <= 0 {
			w = 1
		}
		cfg.QoS.SetWeight(cfg.Volume, w)
		if cfg.QoSRate > 0 {
			cfg.QoS.SetRate(cfg.Volume, cfg.QoSRate, cfg.QoSBurst)
		}
	}
	if t := cfg.Tracer; t.Enabled() && pool != nil {
		// Volume 0 keeps the historical bare "host" track names so
		// single-volume traces stay byte-identical; further volumes get
		// their own timelines.
		proc := "host"
		if cfg.Volume != 0 {
			proc = fmt.Sprintf("host/v%d", cfg.Volume)
		}
		h.opsTrack = t.Track(proc, "ops")
		h.rpcTrack = t.Track(proc, "rpc")
		t.AddGauge(h.opsTrack, proc+" cores busy",
			trace.PoolUtilizationGauge(eng, cfg.HostCores, pool.BusyTotal))
	}
	fab.RegisterVolume(HostID, cfg.Volume, h.handle)
	if cfg.Lease > 0 {
		h.startLeaseWatchdog()
	}
	return h
}

// Volume returns the controller's volume ID.
func (h *HostController) Volume() VolumeID { return h.cfg.Volume }

// driveOff translates a stripe number to the absolute per-drive byte offset
// shared by all its chunks. Every capsule the controller issues addresses
// drives through this mapping; both layouts place a stripe's chunks at one
// common offset, which is what lets server-side reduce key its
// accumulators by absolute offset.
func (h *HostController) driveOff(stripe int64) int64 {
	return h.layout.StripeBase(stripe)
}

// Layout exposes the volume's placement map.
func (h *HostController) Layout() placement.Layout { return h.layout }

// Declustered reports whether the layout supports chunk-level relocation
// (distributed-spare rebuild, online drive add/remove).
func (h *HostController) Declustered() bool { return h.dyn != nil }

// Drives returns the number of physical drives the layout may address —
// the stripe width for the fixed layout, the whole cluster for a
// declustered one.
func (h *HostController) Drives() int { return len(h.memberNode) }

// Size implements blockdev.Device.
func (h *HostController) Size() int64 { return h.size }

// Stats returns a snapshot of host counters.
func (h *HostController) Stats() Stats { return h.stats }

// Geometry returns the array geometry.
func (h *HostController) Geometry() raid.Geometry { return h.geo }

// SetFailed marks a drive failed (true) or restored (false); the array
// serves degraded I/O for stripes whose chunks live on failed drives.
func (h *HostController) SetFailed(member int, failed bool) {
	if member < 0 || member >= len(h.memberNode) {
		panic(fmt.Sprintf("core: member %d out of range", member))
	}
	if failed {
		h.failed[member] = true
	} else {
		delete(h.failed, member)
	}
}

// FailedMembers returns the sorted failed drive indices.
func (h *HostController) FailedMembers() []int {
	var out []int
	for m := range h.failed {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// SetHealth installs (or clears) the sink receiving data-path evidence.
func (h *HostController) SetHealth(s HealthSink) { h.health = s }

// ---------------------------------------------------------------------------
// Member → drive → endpoint indirection. RAID math lives in member-index
// space (which role of the stripe); the layout maps members to physical
// drives; the fabric speaks NodeIDs. All three coincide under the fixed
// layout until a spare is promoted or a rebuild routes early stripes to
// its destination; a declustered layout rotates the member→drive map per
// stripe.

// nodeOf returns the fabric endpoint currently serving a physical drive.
func (h *HostController) nodeOf(drive int) NodeID { return h.memberNode[drive] }

// MemberNode returns the fabric endpoint currently serving a drive — after
// a spare rebuild the drive's chunks live on a spare node, not the
// original one. Fault-injection helpers use it to find the right physical
// drive.
func (h *HostController) MemberNode(drive int) NodeID { return h.memberNode[drive] }

// nodeAt resolves stripe member m to its endpoint: the layout names the
// drive; during a frontier rebuild, stripes below the frontier already
// live on the spare and are served from there.
func (h *HostController) nodeAt(stripe int64, member int) NodeID {
	d := h.layout.Drive(stripe, member)
	if r, ok := h.rebuilds[d]; ok && stripe >= 0 && stripe < r.frontier {
		return r.dest
	}
	return h.memberNode[d]
}

// memberOf is the reverse mapping to DRIVE space: which drive does
// endpoint n serve? Returns -1 for endpoints serving no drive (an idle
// spare). Health evidence is attributed in this space.
func (h *HostController) memberOf(n NodeID) int {
	for m, nd := range h.memberNode {
		if nd == n {
			return m
		}
	}
	for m, r := range h.rebuilds {
		if r.dest == n {
			return m
		}
	}
	return -1
}

// memberOfAt is the reverse mapping to MEMBER space for one stripe: which
// member of the stripe does endpoint n serve? Role math (geo.Role and
// friends) must go through this, not memberOf, because a declustered
// layout permutes drives per stripe.
func (h *HostController) memberOfAt(stripe int64, n NodeID) int {
	for m := 0; m < h.geo.Width; m++ {
		if h.nodeAt(stripe, m) == n {
			return m
		}
	}
	return -1
}

// memberFailed reports whether stripe member m is unavailable for I/O. A
// drive under frontier rebuild is healthy again for stripes already
// copied to the spare; a declustered rebuild instead relocates chunks and
// commits the new placement, after which the layout no longer maps the
// member to the failed drive at all — either way foreground I/O sheds the
// degraded path as the rebuild advances.
func (h *HostController) memberFailed(stripe int64, member int) bool {
	d := h.layout.Drive(stripe, member)
	if !h.failed[d] {
		return false
	}
	if r, ok := h.rebuilds[d]; ok && stripe >= 0 && stripe < r.frontier {
		return false
	}
	return true
}

// failNode marks the drive served by endpoint n failed, if any.
func (h *HostController) failNode(n NodeID) {
	if m := h.memberOf(n); m >= 0 {
		h.SetFailed(m, true)
	}
}

// maxRetries returns the per-op retry budget (§5.4), default 1.
func (h *HostController) maxRetries() int {
	if h.cfg.MaxRetries > 0 {
		return h.cfg.MaxRetries
	}
	return 1
}

// retryAfter spaces retry attempt k by (k+1)*RetryBackoff. With no backoff
// configured the retry runs inline, preserving historical event ordering.
func (h *HostController) retryAfter(attempt int, fn func()) {
	if h.cfg.RetryBackoff <= 0 {
		fn()
		return
	}
	h.rt.After(h.cfg.RetryBackoff*sim.Duration(attempt+1), fn)
}

func (h *HostController) reportFault(member int, confirmed bool) {
	if h.health != nil && member >= 0 && member < len(h.memberNode) {
		h.health.ObserveFault(member, confirmed)
	}
}

func (h *HostController) reportOK(member int) {
	if h.health != nil && member >= 0 && member < len(h.memberNode) {
		h.health.ObserveOK(member)
	}
}

func (h *HostController) trace(format string, args ...any) {
	if h.cfg.Trace != nil {
		h.cfg.Trace("[host %8s] "+format, append([]any{h.rt.Now()}, args...)...)
	}
}

// handle processes completions arriving from targets.
func (h *HostController) handle(m Message) {
	if h.crashed {
		return
	}
	h.cores.Exec(h.cfg.Costs.PerMsg, func() {
		if h.crashed {
			return
		}
		if m.Cmd.Opcode != nvmeof.OpCompletion {
			panic(fmt.Sprintf("core: host received %v", m.Cmd.Opcode))
		}
		if m.Cmd.Epoch != h.cfg.Epoch {
			// A completion echoing someone else's epoch: the answer to a
			// command a predecessor issued. After a seize both sessions share
			// the ID sequence, so without this check a zombie's completion
			// could settle (or fail) the replacement's op of the same ID.
			h.stats.ForeignCompletions++
			h.trace("drop foreign-epoch completion id=%d epoch=%d (ours %d)",
				m.Cmd.ID, m.Cmd.Epoch, h.cfg.Epoch)
			return
		}
		sub, ok := h.inflight[m.Cmd.ID]
		if !ok || sub.op.done {
			return // late completion after timeout handling
		}
		op := sub.op
		if op.responded == nil {
			op.responded = make(map[NodeID]bool)
		}
		op.responded[m.From] = true
		op.endRPC(m.From)
		if m.Cmd.Status == nvmeof.StatusMediaError {
			// Per-chunk erasure: the member is alive and answering, it just
			// cannot read some sectors. That is OK-evidence for the health
			// machinery (not a node fault), and the op either hands off to
			// its media-recovery hook or fails blaming no member so write
			// paths fall back and re-drive the stripe.
			h.stats.MediaErrors++
			member := h.memberOf(m.From)
			h.trace("completion id=%d from t%d media-error [%d,+%d)",
				m.Cmd.ID, int(m.From), m.Cmd.Offset, m.Cmd.Length)
			h.reportOK(member)
			if op.onMediaErr != nil {
				hook := op.onMediaErr
				h.cancelOp(op, "media-error")
				hook(member, m.Cmd)
				return
			}
			h.failOp(op, nil)
			return
		}
		if m.Cmd.Status == nvmeof.StatusStaleEpoch {
			// Positive confirmation of a takeover: the bdev is healthy, WE
			// are the problem. Stand down (before failing the op, so its
			// failure path reports the typed error) and never charge the
			// bdev fault evidence for doing its job.
			h.stats.StaleEpochRejects++
			h.trace("completion id=%d from t%d stale-epoch: standing down", m.Cmd.ID, int(m.From))
			h.reportOK(h.memberOf(m.From))
			h.standDown(blockdev.ErrStaleEpoch)
			h.failOp(op, nil)
			return
		}
		if m.Cmd.Status != nvmeof.StatusSuccess {
			h.trace("completion id=%d from t%d status=%v", m.Cmd.ID, int(m.From), m.Cmd.Status)
			h.reportFault(h.memberOf(m.From), true)
			h.failOp(op, []NodeID{m.From})
			return
		}
		h.reportOK(h.memberOf(m.From))
		if m.Payload.Len() > 0 && op.onPayload != nil {
			op.onPayload(m.From, m.Cmd, m.Payload)
		}
		op.remaining--
		h.trace("completion id=%d from t%d remaining=%d", m.Cmd.ID, int(m.From), op.remaining)
		if op.remaining == 0 {
			h.finishOp(op)
		}
	})
}

func (h *HostController) finishOp(op *stripeOp) {
	if op.done {
		return
	}
	op.done = true
	if op.timer != nil {
		op.timer.Stop()
	}
	delete(h.inflight, op.id)
	op.closeSpans("")
	op.doneFn()
}

// cancelOp retires an operation without firing doneFn or failedFn: used when
// a media-error hook takes over the continuation.
func (h *HostController) cancelOp(op *stripeOp, result string) {
	if op.done {
		return
	}
	op.done = true
	if op.timer != nil {
		op.timer.Stop()
	}
	delete(h.inflight, op.id)
	op.closeSpans(result)
}

func (h *HostController) failOp(op *stripeOp, missing []NodeID) {
	if op.done {
		return
	}
	op.done = true
	if op.timer != nil {
		op.timer.Stop()
	}
	delete(h.inflight, op.id)
	op.closeSpans("failed")
	op.failedFn(missing)
}

// newStripeOp allocates an operation with the configured deadline. kind
// names the operation on the trace ("rmw-write", "degraded-read", …);
// targets listed in watch are the ones whose absence on timeout implicates
// them.
func (h *HostController) newStripeOp(kind string, stripe int64, expect int, watch []NodeID, done func(), failed func([]NodeID)) *stripeOp {
	return h.newStripeOpDeadline(kind, stripe, expect, watch, h.cfg.Deadline, done, failed)
}

// newStripeOpDeadline is newStripeOp with an explicit deadline (heartbeat
// probes run much tighter than data ops). On timeout every watched endpoint
// that never completed is reported to the health sink — confirmed when its
// node is observably down, suspect otherwise — before failedFn runs with the
// down set.
func (h *HostController) newStripeOpDeadline(kind string, stripe int64, expect int, watch []NodeID, deadline sim.Duration, done func(), failed func([]NodeID)) *stripeOp {
	h.nextID++
	op := &stripeOp{id: h.nextID, stripe: stripe, remaining: expect, doneFn: done, failedFn: failed}
	h.inflight[op.id] = &subOp{op: op}
	if t := h.cfg.Tracer; t.Enabled() {
		op.span = t.Begin(h.opsTrack, "op", kind,
			trace.I64("stripe", stripe), trace.I64("id", int64(op.id)))
	}
	op.timer = h.rt.After(deadline, func() {
		if op.done {
			return
		}
		h.stats.Timeouts++
		h.trace("op id=%d timed out; suspects=%v", op.id, watch)
		var down, silent []NodeID
		for _, t := range watch {
			if op.responded[t] {
				continue
			}
			if h.fab.Down(t) {
				down = append(down, t)
			} else {
				silent = append(silent, t)
			}
		}
		// Evidence attribution: a confirmed-down participant explains the
		// whole stall (peer chains run through it), so silent peers are NOT
		// blamed — charging them unconfirmed strikes would let one dead node
		// fail innocent members by collateral evidence.
		for _, t := range down {
			h.reportFault(h.memberOf(t), true)
		}
		if len(down) == 0 {
			for _, t := range silent {
				h.reportFault(h.memberOf(t), false)
			}
		}
		h.failOp(op, down)
	})
	return op
}

// Probe sends a heartbeat capsule to the endpoint currently serving member.
// Evidence reaches the health sink through the normal completion/deadline
// paths; cb only observes the outcome (for rescheduling the next probe).
func (h *HostController) Probe(member int, timeout sim.Duration, cb func(ok bool)) {
	if h.crashed {
		return
	}
	h.stats.Probes++
	target := h.nodeOf(member)
	op := h.newStripeOpDeadline("heartbeat", -1, 1, []NodeID{target}, timeout,
		func() { cb(true) },
		func([]NodeID) { cb(false) },
	)
	h.send(op, target, nvmeof.Command{Opcode: nvmeof.OpHeartbeat}, parity.Buffer{})
}

// Crash simulates host-controller death: every in-flight operation is
// abandoned with its callbacks never firing, and future I/O and completions
// are ignored. The write-intent bitmap is left intact — it is exactly what a
// replacement controller consumes to resync (§5.4).
func (h *HostController) Crash() {
	h.crashed = true
	ids := make([]uint64, 0, len(h.inflight))
	for id := range h.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		op := h.inflight[id].op
		op.done = true
		if op.timer != nil {
			op.timer.Stop()
		}
		op.closeSpans("crashed")
		delete(h.inflight, id)
	}
}

// Crashed reports whether Crash was called.
func (h *HostController) Crashed() bool { return h.crashed }

// Adopt takes over a crashed predecessor's array state — failed members, the
// member→endpoint mapping, and any rebuild in progress — and returns the
// predecessor's dirty stripes: the exact set the replacement must resync
// before parity is trustworthy again.
func (h *HostController) Adopt(prev *HostController) []int64 {
	if !prev.crashed {
		panic("core: adopting a live controller")
	}
	return h.takeover(prev)
}

// Fence severs the crashed predecessor's controller session at every
// reachable bdev (§5.4): each bdev discards the dead session's open
// reductions, drops its straggler commands, and acks only after the drive
// writes in flight at the fence's arrival have landed. Only after every
// fence completes may the replacement resync dirty stripes — otherwise a
// straggler write could land after the resync read the data it recomputed
// parity from, silently invalidating the fresh parity. Unreachable nodes
// are skipped (nothing can land on them) and a fence timeout is treated the
// same way.
func (h *HostController) Fence(cb func(error)) {
	seen := make(map[NodeID]bool)
	var targets []NodeID
	add := func(n NodeID) {
		if !seen[n] && !h.fab.Down(n) {
			seen[n] = true
			targets = append(targets, n)
		}
	}
	for _, n := range h.memberNode {
		add(n)
	}
	for _, r := range h.rebuilds {
		add(r.dest)
	}
	if len(targets) == 0 {
		h.rt.Defer(func() { cb(nil) })
		return
	}
	op := h.newStripeOp("fence", -1, len(targets), targets,
		func() { cb(nil) },
		func([]NodeID) { cb(nil) })
	for _, n := range targets {
		h.send(op, n, nvmeof.Command{Opcode: nvmeof.OpFence}, parity.Buffer{})
	}
}

// send issues a capsule for an operation, stamped with the op ID, the
// controller's volume, and its host epoch so servers and the fabric demux
// can attribute (and, for the epoch, fence) it.
func (h *HostController) send(op *stripeOp, to NodeID, cmd nvmeof.Command, payload parity.Buffer) {
	cmd.ID = op.id
	cmd.NSID = uint32(h.cfg.Volume)
	cmd.Epoch = h.cfg.Epoch
	if t := h.cfg.Tracer; t.Enabled() {
		op.rpcs = append(op.rpcs, rpcSpan{target: to, span: t.Begin(h.rpcTrack, "rpc",
			fmt.Sprintf("%s→t%d", cmd.SpanName(), int(to)), trace.I64("id", int64(op.id)))})
	}
	h.fab.Send(HostID, to, cmd, payload)
}

// ---------------------------------------------------------------------------
// Stripe write admission (§3: one write per stripe; reads are lock-free).

func (h *HostController) acquireStripe(stripe int64, fn func()) {
	q, ok := h.stripeQ[stripe]
	if !ok {
		q = &stripeQueue{}
		h.stripeQ[stripe] = q
	}
	if !q.busy {
		q.busy = true
		fn()
		return
	}
	h.stats.QueuedStripeWaits++
	q.waiters = append(q.waiters, fn)
}

func (h *HostController) releaseStripe(stripe int64) {
	q := h.stripeQ[stripe]
	if q == nil {
		return
	}
	if len(q.waiters) == 0 {
		delete(h.stripeQ, stripe)
		return
	}
	next := q.waiters[0]
	q.waiters = q.waiters[1:]
	// Defer so the releasing op's stack unwinds first.
	h.rt.Defer(next)
}

// ---------------------------------------------------------------------------
// Reads.

// Read implements blockdev.Device: per-volume QoS admission when a shared
// arbiter is configured, then the real read.
func (h *HostController) Read(off, n int64, cb func(parity.Buffer, error)) {
	if q := h.cfg.QoS; q != nil && !h.crashed {
		cost := qosCost(n)
		q.Admit(h.cfg.Volume, cost, func() {
			h.readIO(off, n, func(b parity.Buffer, err error) {
				q.Done(h.cfg.Volume, cost)
				cb(b, err)
			})
		})
		return
	}
	h.readIO(off, n, cb)
}

// readIO is the read path proper. Extents on healthy members are plain
// NVMe-oF reads; extents on a failed member trigger the §6.1 disaggregated
// reconstruction, co-designed with the normal reads of the same stripe.
func (h *HostController) readIO(off, n int64, cb func(parity.Buffer, error)) {
	if h.crashed {
		return
	}
	if h.fenced {
		h.rt.Defer(func() { cb(parity.Buffer{}, h.fenceError("read")) })
		return
	}
	if err := blockdev.CheckRange(off, n, h.size); err != nil {
		h.rt.Defer(func() { cb(parity.Buffer{}, err) })
		return
	}
	h.stats.Reads++
	h.stats.UserBytesRead += n
	if n == 0 {
		h.rt.Defer(func() { cb(parity.Alloc(0), nil) })
		return
	}
	if h.tryMemRead(off, n, cb) {
		// Read-your-writes fast path: staged data plus the clean cache cover
		// the whole range — served from host memory, no drive I/O.
		h.cores.Exec(h.cfg.Costs.PerUser, func() {})
		return
	}
	if s, hit := h.lostUncovered(off, n); hit {
		// Bytes in a lost region were sacrificed to a media double fault;
		// fail fast with the typed error rather than serving garbage. Lost
		// bytes covered by staged writes are fine — the stage overlay
		// supplies them.
		h.rt.Defer(func() {
			cb(parity.Buffer{}, fmt.Errorf("core: read [%d,+%d) overlaps lost region [%d,+%d): %w",
				off, n, s.Off, s.Len, blockdev.ErrMediaError))
		})
		return
	}
	if h.stage != nil || h.cache != nil {
		// Overlay staged bytes over every assembled result (newer than the
		// drives) and feed completed reads into the clean cache. The capture
		// pins the issue-time staged bytes: a destage completing mid-read
		// drops its snapshot, so the completion-time overlay alone could miss
		// acknowledged bytes the drives served stale.
		var pinned []ovSpan
		if h.stage != nil {
			pinned = h.stage.captureOverlay(off, n)
		}
		user := cb
		cb = func(b parity.Buffer, err error) {
			if err == nil {
				if !b.Elided() {
					for _, sp := range pinned {
						b.CopyAt(int(sp.off-off), sp.buf)
					}
				}
				if h.stage != nil {
					h.stage.overlayInto(off, n, b)
				}
				if h.cache != nil {
					h.cache.insert(off, n, b, off)
				}
			}
			user(b, err)
		}
	}
	exts := h.geo.Split(off, n)

	asm := newAssembler(n)
	pending := 0
	var fail error
	maybeDone := func() {
		pending--
		if pending == 0 {
			if fail != nil {
				cb(parity.Buffer{}, fail)
				return
			}
			cb(asm.result(), nil)
		}
	}

	byStripe := raid.StripeExtents(exts)
	for _, stripe := range raid.StripeOrder(byStripe) {
		group := byStripe[stripe]
		var failedExts []raid.Extent
		var normal []raid.Extent
		for _, e := range group {
			if h.memberFailed(stripe, h.geo.DataDrive(stripe, e.Chunk)) {
				failedExts = append(failedExts, e)
			} else {
				normal = append(normal, e)
			}
		}
		switch {
		case len(failedExts) == 0:
			if h.hedge != nil {
				pending++
				h.hedgedReadStripe(stripe, normal, asm, &fail, maybeDone)
				continue
			}
			for _, e := range normal {
				pending++
				h.normalReadExtent(e, asm, &fail, maybeDone)
			}
		case len(failedExts) == 1:
			pending++
			h.degradedReadStripe(stripe, failedExts[0], normal, asm, &fail, maybeDone)
		default:
			// Multiple failed data chunks in one stripe (RAID-6 dual
			// failure): host-side GF solve per failed extent.
			for i, fe := range failedExts {
				pending++
				n := normal
				if i > 0 {
					n = nil
				}
				h.hostFallbackRead(stripe, fe, n, asm, &fail, maybeDone)
			}
		}
	}
	h.cores.Exec(h.cfg.Costs.PerUser, func() {})
}

// assembler collects read pieces into the user buffer.
type assembler struct {
	n      int64
	buf    parity.Buffer
	elided bool
}

func newAssembler(n int64) *assembler {
	return &assembler{n: n, buf: parity.Alloc(int(n))}
}

func (a *assembler) put(vOff int64, b parity.Buffer) {
	if b.Elided() {
		a.elided = true
		return
	}
	a.buf.CopyAt(int(vOff), b)
}

func (a *assembler) result() parity.Buffer {
	if a.elided {
		return parity.Sized(int(a.n))
	}
	return a.buf
}

func (h *HostController) normalReadExtent(e raid.Extent, asm *assembler, fail *error, done func()) {
	h.normalReadExtentAttempt(e, asm, fail, done, 0)
}

func (h *HostController) normalReadExtentAttempt(e raid.Extent, asm *assembler, fail *error, done func(), attempt int) {
	target := h.nodeAt(e.Stripe, h.geo.DataDrive(e.Stripe, e.Chunk))
	absOff := h.driveOff(e.Stripe) + e.Off
	op := h.newStripeOp("read", e.Stripe, 1, []NodeID{target},
		func() { done() },
		func(missing []NodeID) { h.readFailurePath(e, missing, asm, fail, done, attempt) },
	)
	op.onPayload = func(_ NodeID, _ nvmeof.Command, b parity.Buffer) { asm.put(e.VOff, b) }
	op.onMediaErr = func(member int, _ nvmeof.Command) {
		h.mediaRecoverExtent(e, member, asm, fail, done)
	}
	h.send(op, target, nvmeof.Command{Opcode: nvmeof.OpRead, Offset: absOff, Length: e.Len}, parity.Buffer{})
}

// readFailurePath handles a normal read that timed out (§5.4): mark
// truly-down members failed and take the degraded path; a transient timeout
// (nothing down) retries the plain read, with deterministic backoff, until
// the retry budget runs out.
func (h *HostController) readFailurePath(e raid.Extent, missing []NodeID, asm *assembler, fail *error, done func(), attempt int) {
	if h.fenced {
		*fail = h.fenceError(fmt.Sprintf("stripe %d read", e.Stripe))
		done()
		return
	}
	if attempt >= h.maxRetries() {
		*fail = fmt.Errorf("core: stripe %d read: retries exhausted: %w", e.Stripe, blockdev.ErrTimeout)
		done()
		return
	}
	h.stats.Retries++
	if len(missing) == 0 {
		h.retryAfter(attempt, func() {
			h.normalReadExtentAttempt(e, asm, fail, done, attempt+1)
		})
		return
	}
	for _, m := range missing {
		h.failNode(m)
	}
	h.degradedReadStripe(e.Stripe, e, nil, asm, fail, done)
}

// degradedReadStripe reconstructs failedExt while serving the stripe's
// normal extents, per §6.1: one Reconstruction broadcast, a reducer
// aggregating XOR contributions, and decoupled direct return of normal data.
func (h *HostController) degradedReadStripe(stripe int64, failedExt raid.Extent, normal []raid.Extent, asm *assembler, fail *error, done func()) {
	// The chunk may have come back between the timeout and this retry — the
	// rebuild frontier passed the stripe, so reads now route to the spare.
	// Plain reads suffice; no reconstruction needed.
	if !h.memberFailed(stripe, h.geo.DataDrive(stripe, failedExt.Chunk)) {
		exts := append([]raid.Extent{failedExt}, normal...)
		pending := len(exts)
		part := func() {
			pending--
			if pending == 0 {
				done()
			}
		}
		for _, e := range exts {
			h.normalReadExtent(e, asm, fail, part)
		}
		return
	}
	h.stats.DegradedReads++
	h.stats.Reconstructions++

	// The peer-to-peer XOR reduction needs P plus every other data chunk of
	// this stripe healthy; anything else goes through the host GF solve.
	failedData := 0
	for c := 0; c < h.geo.DataChunks(); c++ {
		if h.memberFailed(stripe, h.geo.DataDrive(stripe, c)) {
			failedData++
		}
	}
	if failedData+lostParityCount(h, stripe) > h.geo.Level.ParityCount() {
		h.rt.Defer(func() {
			*fail = fmt.Errorf("core: stripe %d: %w", stripe, blockdev.ErrDoubleFault)
			done()
		})
		return
	}
	if failedData != 1 || h.memberFailed(stripe, h.geo.PDrive(stripe)) {
		h.hostFallbackRead(stripe, failedExt, normal, asm, fail, done)
		return
	}

	rOff := h.driveOff(stripe) + failedExt.Off
	rLen := failedExt.Len

	// Participants: every healthy member holding a data chunk of this
	// stripe except the failed one, plus the P member. (Q is not needed for
	// a single failure.)
	type part struct {
		target NodeID
		own    *raid.Extent // normal-read extent served by this member
	}
	var parts []part
	pDrive := h.geo.PDrive(stripe)
	if !h.memberFailed(stripe, pDrive) {
		parts = append(parts, part{target: h.nodeAt(stripe, pDrive)})
	}
	for c := 0; c < h.geo.DataChunks(); c++ {
		d := h.geo.DataDrive(stripe, c)
		if h.memberFailed(stripe, d) || c == failedExt.Chunk {
			continue
		}
		p := part{target: h.nodeAt(stripe, d)}
		for i := range normal {
			if normal[i].Chunk == c {
				p.own = &normal[i]
			}
		}
		parts = append(parts, p)
	}

	candidates := make([]int, len(parts))
	for i, p := range parts {
		candidates[i] = int(p.target)
	}
	reducer := NodeID(h.cfg.Selector.Pick(candidates, rLen*int64(len(parts))))

	// Expected host completions: reducer's reconstructed segment + one per
	// AlsoRead direct return.
	expect := 1
	for _, p := range parts {
		if p.own != nil {
			expect++
		}
	}
	watch := make([]NodeID, len(parts))
	for i, p := range parts {
		watch[i] = p.target
	}
	op := h.newStripeOp("degraded-read", stripe, expect, watch,
		func() { done() },
		func(missing []NodeID) {
			if len(missing) == 0 {
				*fail = fmt.Errorf("core: stripe %d reconstruction: %w", stripe, blockdev.ErrTimeout)
			} else {
				*fail = fmt.Errorf("core: stripe %d: members %v lost during reconstruction: %w",
					stripe, missing, blockdev.ErrDegraded)
			}
			done()
		},
	)
	op.onMediaErr = func(member int, _ nvmeof.Command) {
		h.mediaFallbackGroup(stripe, []raid.Extent{failedExt}, normal, member, asm, fail, done)
	}
	reconVOff := failedExt.VOff
	op.onPayload = func(from NodeID, cmd nvmeof.Command, b parity.Buffer) {
		// The completion subtype disambiguates the two §6.1 return paths.
		if cmd.Subtype == nvmeof.SubNoRead && from == reducer {
			asm.put(reconVOff, b)
			return
		}
		if cmd.Subtype != nvmeof.SubAlsoRead {
			return
		}
		for _, p := range parts {
			if p.own != nil && p.target == from {
				asm.put(p.own.VOff, b)
				return
			}
		}
	}

	for _, p := range parts {
		cmd := nvmeof.Command{
			Opcode:    nvmeof.OpReconstruction,
			Subtype:   nvmeof.SubNoRead,
			FwdOffset: rOff, FwdLength: rLen,
			NextDest: uint16(reducer),
			DataIdx:  NoScale,
		}
		// Combined drive read: union of own segment and R (§6.1 — also
		// reads the gap between them to stay a single I/O).
		readOff, readLen := rOff, rLen
		if p.own != nil {
			cmd.Subtype = nvmeof.SubAlsoRead
			ownOff := h.driveOff(stripe) + p.own.Off
			cmd.SGL = []nvmeof.SGE{{Off: ownOff, Len: p.own.Len}}
			lo, hi := readOff, readOff+readLen
			if ownOff < lo {
				lo = ownOff
			}
			if ownOff+p.own.Len > hi {
				hi = ownOff + p.own.Len
			}
			readOff, readLen = lo, hi-lo
		}
		cmd.Offset, cmd.Length = readOff, readLen
		if p.target == reducer {
			cmd.WaitNum = uint16(len(parts))
		}
		h.send(op, p.target, cmd, parity.Buffer{})
	}
}

// lostParityCount counts failed parity members of a stripe.
func lostParityCount(h *HostController, stripe int64) int {
	n := 0
	if h.memberFailed(stripe, h.geo.PDrive(stripe)) {
		n++
	}
	if h.geo.Level == raid.Raid6 && h.memberFailed(stripe, h.geo.QDrive(stripe)) {
		n++
	}
	return n
}
