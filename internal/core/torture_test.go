package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"draid/internal/baseline"
	"draid/internal/blockdev"
	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/repair"
	"draid/internal/sim"
	"draid/internal/ssd"
)

// tortureDevice is the subset shared by dRAID and the baselines.
type tortureDevice interface {
	blockdev.Device
	SetFailed(member int, failed bool)
	FailedMembers() []int
}

// runTorture drives a randomized mixed workload — concurrent reads, writes,
// and mid-run single-member failure/recovery — against an array, checking
// every completed read against an in-memory reference model and the final
// state stripe-by-stripe. The reference is updated at write COMPLETION and
// reads are only checked when no write overlapping their range was in
// flight during their lifetime (RAID gives no ordering promises otherwise).
// tortureRecovery switches the mid-run failure to the paper's fail-stop
// scenario: the victim node simply dies — nobody calls SetFailed — and the
// supervision stack must detect the failure via heartbeats and rebuild onto a
// hot spare while the workload keeps running. After the run, write-hole
// stripes are rewritten (the resync a real deployment would do from the
// write-intent bitmap) and the final sweep excludes NOTHING.
type tortureRecovery struct {
	sup *repair.Supervisor
}

func runTorture(t *testing.T, seed int64, level raid.Level, targets int, dev tortureDevice, cl *cluster.Cluster, failDrive bool, rec *tortureRecovery) {
	t.Helper()
	const chunk = 16 << 10
	geo := raid.Geometry{Level: level, Width: targets, ChunkSize: chunk}
	size := geo.VirtualSize(2 << 20) // small working set → heavy stripe reuse
	rng := rand.New(rand.NewSource(seed))

	ref := make([]byte, size)
	type inflightWrite struct {
		off, n int64
	}
	writes := map[int]inflightWrite{}
	nextWID := 0
	checked, skipped := 0, 0

	// A read is comparable against the reference only if no overlapping
	// write existed at ANY point of its lifetime: writes issued after the
	// read but completing before it may legally be missed by the read.
	type inflightRead struct {
		off, n  int64
		tainted bool
	}
	reads := map[int]*inflightRead{}
	nextRID := 0

	// Stripes with a write in flight at the instant of member failure are
	// RAID's classic write hole: the failed chunk's untouched bytes are
	// unrecoverable without a journal (the paper provides no transactional
	// semantics, §5.4 — the retry restores parity CONSISTENCY, not old
	// data). Those stripes are excluded from content validation, exactly
	// the set a real post-failure resync would flag via the write-intent
	// bitmap.
	damaged := map[int64]bool{}
	stripesOf := func(off, n int64) (lo, hi int64) {
		return off / geo.StripeDataSize(), (off + n - 1) / geo.StripeDataSize()
	}
	rangeDamaged := func(off, n int64) bool {
		lo, hi := stripesOf(off, n)
		for st := lo; st <= hi; st++ {
			if damaged[st] {
				return true
			}
		}
		return false
	}

	overlapsInflight := func(off, n int64) bool {
		for _, w := range writes {
			if off < w.off+w.n && w.off < off+n {
				return true
			}
		}
		return false
	}

	pending := 0
	victimDown := false
	var issue func()
	ops := 200
	issue = func() {
		if ops == 0 {
			return
		}
		ops--
		pending++
		off := rng.Int63n(size - 64<<10)
		n := int64(1 + rng.Intn(48<<10))
		if off+n > size {
			n = size - off
		}
		if rng.Float64() < 0.5 {
			// Write: random payload; reference updated at completion.
			data := make([]byte, n)
			rng.Read(data)
			wid := nextWID
			nextWID++
			writes[wid] = inflightWrite{off, n}
			// In detection mode there is a window where the victim is dead
			// but the controller does not know yet: writes started in it can
			// partially apply (data to the dead member vanishes while parity
			// deltas land), the same write hole as a failure mid-flight.
			if victimDown && rec != nil && rec.sup.Detector().FailTransitions == 0 {
				lo, hi := stripesOf(off, n)
				for st := lo; st <= hi; st++ {
					damaged[st] = true
				}
			}
			for _, r := range reads {
				if off < r.off+r.n && r.off < off+n {
					r.tainted = true
				}
			}
			dev.Write(off, parity.FromBytes(data), func(err error) {
				if err != nil {
					t.Errorf("torture write at %d+%d: %v", off, n, err)
				}
				copy(ref[off:off+n], data)
				delete(writes, wid)
				pending--
				issue()
			})
			return
		}
		// Read: validate only if no overlapping write was in flight at
		// issue or completes before the read returns (conservative check:
		// re-test at completion).
		cleanAtIssue := !overlapsInflight(off, n)
		rid := nextRID
		nextRID++
		rstate := &inflightRead{off: off, n: n}
		reads[rid] = rstate
		dev.Read(off, n, func(b parity.Buffer, err error) {
			delete(reads, rid)
			if err != nil {
				t.Errorf("torture read at %d+%d: %v", off, n, err)
			} else if cleanAtIssue && !rstate.tainted && !rangeDamaged(off, n) {
				checked++
				if !bytes.Equal(b.Data(), ref[off:off+n]) {
					t.Errorf("torture read at %d+%d: data mismatch", off, n)
				}
			} else {
				skipped++
			}
			pending--
			issue()
		})
	}
	for i := 0; i < 8; i++ {
		issue()
	}
	// Mid-run failure and (optionally) recovery of a random member.
	victim := rng.Intn(targets)
	if failDrive {
		cl.Eng.After(2*sim.Millisecond, func() {
			cl.FailTarget(victim)
			victimDown = true
			if rec == nil {
				dev.SetFailed(victim, true)
			}
			// With rec set, NOBODY tells the controller: the failure
			// detector must notice on its own.
			for _, w := range writes {
				lo, hi := stripesOf(w.off, w.n)
				for st := lo; st <= hi; st++ {
					damaged[st] = true
				}
			}
		})
	}
	cl.Eng.Run()
	if pending != 0 {
		t.Fatalf("torture deadlock: %d ops pending", pending)
	}
	if checked == 0 {
		t.Fatal("torture validated no reads")
	}

	if rec != nil && failDrive {
		// Detection and rebuild must both have completed during the run.
		if got := rec.sup.Detector().FailTransitions; got != 1 {
			t.Fatalf("fail transitions = %d, want 1 (automatic detection of victim %d)", got, victim)
		}
		if st := rec.sup.Rebuilder().Status(); st.Active {
			t.Fatalf("rebuild still active after drain: %+v", st)
		}
		rebuildDone := false
		for _, e := range rec.sup.Events() {
			if e.Kind == "rebuild-done" && e.Member == victim {
				rebuildDone = true
			}
		}
		if !rebuildDone {
			t.Fatalf("no rebuild-done event for victim %d; events:\n%v", victim, rec.sup.Events())
		}
		if got := dev.FailedMembers(); len(got) != 0 {
			t.Fatalf("failed members after rebuild = %v, want none (spare promoted)", got)
		}
		// Resync the write hole: rewrite every damaged stripe with fresh
		// payload (full-stripe writes regenerate data, parity, and the
		// rebuilt chunk together), then validate with zero exclusions.
		for st := range damaged {
			off := st * geo.StripeDataSize()
			data := make([]byte, geo.StripeDataSize())
			rng.Read(data)
			wErr := fmt.Errorf("not done")
			dev.Write(off, parity.FromBytes(data), func(err error) { wErr = err })
			cl.Eng.Run()
			if wErr != nil {
				t.Fatalf("resync rewrite of stripe %d: %v", st, wErr)
			}
			copy(ref[off:off+geo.StripeDataSize()], data)
		}
		damaged = map[int64]bool{}
	}

	// Final sweep: every byte must read back per the reference (degraded
	// reads reconstruct the victim's chunks).
	step := int64(64 << 10)
	for off := int64(0); off < size; off += step {
		n := step
		if off+n > size {
			n = size - off
		}
		var got []byte
		ok := false
		dev.Read(off, n, func(b parity.Buffer, err error) {
			if err != nil {
				t.Fatalf("final read at %d: %v", off, err)
			}
			got, ok = b.Data(), true
		})
		cl.Eng.Run()
		if !ok {
			t.Fatalf("final read at %d stalled", off)
		}
		if !rangeDamaged(off, n) && !bytes.Equal(got, ref[off:off+n]) {
			t.Fatalf("final state mismatch at %d (victim=%d failed=%v)", off, victim, failDrive)
		}
	}
	t.Logf("torture(seed=%d): %d reads validated, %d skipped, %d write-hole stripes excluded, victimFailed=%v",
		seed, checked, skipped, len(damaged), failDrive)
}

func tortureCluster(t *testing.T, targets int, seed int64, spares int) *cluster.Cluster {
	t.Helper()
	spec := cluster.DefaultSpec()
	spec.Targets = targets
	spec.Seed = seed
	spec.Spares = spares
	drv := ssd.DefaultSpec()
	drv.Capacity = 2 << 20
	spec.Drive = &drv
	return cluster.New(spec)
}

func TestTortureDRAID(t *testing.T) {
	for _, tc := range []struct {
		level   raid.Level
		targets int
		fail    bool
	}{
		{raid.Raid5, 5, false},
		{raid.Raid5, 5, true},
		{raid.Raid5, 8, true},
		{raid.Raid6, 6, false},
		{raid.Raid6, 6, true},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%v-w%d-fail%v-seed%d", tc.level, tc.targets, tc.fail, seed)
			t.Run(name, func(t *testing.T) {
				cl := tortureCluster(t, tc.targets, seed, 0)
				h := cl.NewDRAID(core.Config{
					Geometry: raid.Geometry{Level: tc.level, Width: tc.targets, ChunkSize: 16 << 10},
					Deadline: 50 * sim.Millisecond,
				})
				runTorture(t, seed, tc.level, tc.targets, h, cl, tc.fail, nil)
			})
		}
	}
}

// TestTortureRebuild is the end-to-end recovery torture: a member crashes
// mid-workload with NO SetFailed call, the heartbeat detector escalates it to
// failed, the supervisor rebuilds it onto a hot spare (throttled, under
// continued live traffic), and — after the write-hole stripes are resynced —
// the full array reads back byte-exact with zero exclusions.
func TestTortureRebuild(t *testing.T) {
	for _, tc := range []struct {
		level   raid.Level
		targets int
	}{
		{raid.Raid5, 5},
		{raid.Raid6, 6},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%v-w%d-seed%d", tc.level, tc.targets, seed)
			t.Run(name, func(t *testing.T) {
				cl := tortureCluster(t, tc.targets, seed, 1)
				h := cl.NewDRAID(core.Config{
					Geometry: raid.Geometry{Level: tc.level, Width: tc.targets, ChunkSize: 16 << 10},
					Deadline: 10 * sim.Millisecond,
				})
				sup := repair.NewSupervisor(cl.Rt, h, repair.Config{
					Detector: repair.DetectorConfig{
						HeartbeatEvery:   sim.Millisecond,
						HeartbeatTimeout: 500 * sim.Microsecond,
					},
					Rebuild: repair.RebuilderConfig{RateMBps: 400},
					Spares:  cl.SpareIDs(),
				}, nil)
				sup.Start()
				defer sup.Stop()
				runTorture(t, seed, tc.level, tc.targets, h, cl, true, &tortureRecovery{sup: sup})
			})
		}
	}
}

// TestTortureHostFailover crashes the CONTROLLER (not a drive) mid-write:
// the replacement adopts the array, resyncs exactly the write-intent-dirty
// stripes, and the array then passes a full parity audit plus a live
// write/read roundtrip.
func TestTortureHostFailover(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cl := tortureCluster(t, 5, seed, 0)
			geo := raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: 16 << 10}
			h := cl.NewDRAID(core.Config{Geometry: geo, Deadline: 10 * sim.Millisecond})

			// Settle a base image, then start a burst of writes and crash
			// partway through them.
			rng := rand.New(rand.NewSource(seed))
			base := make([]byte, geo.StripeDataSize()*8)
			rng.Read(base)
			mustWrite(t, cl, h, 0, base)

			for i := 0; i < 6; i++ {
				off := int64(rng.Intn(8)) * geo.StripeDataSize()
				data := make([]byte, geo.StripeDataSize()/2)
				rng.Read(data)
				h.Write(off, parity.FromBytes(data), func(error) {})
			}
			cl.Eng.RunFor(30 * sim.Microsecond)
			dirty := h.DirtyStripes()
			if len(dirty) == 0 {
				t.Fatal("test setup: nothing in flight at crash time")
			}
			h.Crash()
			cl.Eng.Run()

			h2 := cl.NewDRAID(core.Config{Geometry: geo, Deadline: 10 * sim.Millisecond})
			adopted := h2.Adopt(h)
			if len(adopted) != len(dirty) {
				t.Fatalf("adopted %d dirty stripes, want %d", len(adopted), len(dirty))
			}
			ferr := fmt.Errorf("not done")
			repair.Failover(cl.Rt, h2, adopted, func(err error) { ferr = err })
			cl.Eng.Run()
			if ferr != nil {
				t.Fatalf("failover resync: %v", ferr)
			}
			if got := h2.Stats().Resyncs; got != int64(len(adopted)) {
				t.Fatalf("resyncs = %d, want exactly %d (only write-intent stripes)", got, len(adopted))
			}
			for _, st := range adopted {
				verifyStripeParity(t, cl, h2, st)
			}
			// Service resumes on the replacement.
			fresh := make([]byte, geo.StripeDataSize())
			rng.Read(fresh)
			mustWrite(t, cl, h2, 0, fresh)
			if got := mustRead(t, cl, h2, 0, geo.StripeDataSize()); !bytes.Equal(got, fresh) {
				t.Fatal("post-failover roundtrip returned wrong bytes")
			}
		})
	}
}

func TestTortureBaselines(t *testing.T) {
	for name, style := range map[string]baseline.Style{
		"spdk":  baseline.SPDKStyle(),
		"linux": baseline.LinuxStyle(),
	} {
		for _, fail := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s-fail%v", name, fail), func(t *testing.T) {
				cl := tortureCluster(t, 5, 7, 0)
				h := baseline.NewHost(cl.Eng, cl.Fabric, cl.DriveCapacity(), baseline.Config{
					Geometry: raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: 16 << 10},
					Costs:    cl.Costs,
					Style:    style,
					Deadline: 50 * sim.Millisecond,
				})
				runTorture(t, 7, raid.Raid5, 5, h, cl, fail, nil)
			})
		}
	}
}
