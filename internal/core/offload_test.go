package core_test

import (
	"bytes"
	"errors"
	"testing"

	"draid/internal/core"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

func TestOffloadRoundTrip(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	clientNode := cl.Net.NewNode("client")
	clientNode.AddNIC("nic0", 100)
	client := core.NewOffload(cl.Eng, cl.Net, clientNode, h, cl.Costs)

	data := randBytes(50, 48<<10)
	var werr error = errors.New("pending")
	client.Write(8<<10, parity.FromBytes(data), func(e error) { werr = e })
	cl.Eng.Run()
	if werr != nil {
		t.Fatalf("offloaded write: %v", werr)
	}
	var got []byte
	var rerr error = errors.New("pending")
	client.Read(8<<10, int64(len(data)), func(b parity.Buffer, e error) { rerr, got = e, b.Data() })
	cl.Eng.Run()
	if rerr != nil || !bytes.Equal(got, data) {
		t.Fatalf("offloaded read err=%v match=%v", rerr, bytes.Equal(got, data))
	}
	if client.Size() != h.Size() {
		t.Fatal("size mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestOffloadClientTrafficIsOnexEvenOnRMW(t *testing.T) {
	cl, h := testCluster(t, 8, raid.Raid5)
	clientNode := cl.Net.NewNode("client")
	clientNode.AddNIC("nic0", 100)
	client := core.NewOffload(cl.Eng, cl.Net, clientNode, h, cl.Costs)

	seed := randBytes(51, chunkSize)
	var werr error = errors.New("pending")
	client.Write(0, parity.FromBytes(seed), func(e error) { werr = e })
	cl.Eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	clientNode.ResetCounters()
	client.Write(0, parity.FromBytes(randBytes(52, chunkSize)), func(e error) { werr = e })
	cl.Eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	out := clientNode.BytesOut()
	if ratio := float64(out) / chunkSize; ratio > 1.05 {
		t.Fatalf("offloaded client outbound = %.2fx user bytes, want ~1x", ratio)
	}
}

func TestOffloadDegradedRead(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	clientNode := cl.Net.NewNode("client")
	clientNode.AddNIC("nic0", 100)
	client := core.NewOffload(cl.Eng, cl.Net, clientNode, h, cl.Costs)

	data := randBytes(53, 32<<10)
	var werr error = errors.New("pending")
	client.Write(0, parity.FromBytes(data), func(e error) { werr = e })
	cl.Eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	failMember(cl, h, h.Geometry().DataDrive(0, 0))
	var got []byte
	var rerr error = errors.New("pending")
	client.Read(0, int64(len(data)), func(b parity.Buffer, e error) { rerr, got = e, b.Data() })
	cl.Eng.Run()
	if rerr != nil || !bytes.Equal(got, data) {
		t.Fatalf("offloaded degraded read err=%v", rerr)
	}
}

// The paper's trade-off: the extra hop adds latency versus the direct
// controller.
func TestOffloadAddsLatency(t *testing.T) {
	direct := func() sim.Time {
		cl, h := testCluster(t, 5, raid.Raid5)
		var done sim.Time
		h.Write(0, parity.FromBytes(randBytes(54, 16<<10)), func(error) { done = cl.Eng.Now() })
		cl.Eng.Run()
		return done
	}()
	offloaded := func() sim.Time {
		cl, h := testCluster(t, 5, raid.Raid5)
		clientNode := cl.Net.NewNode("client")
		clientNode.AddNIC("nic0", 100)
		client := core.NewOffload(cl.Eng, cl.Net, clientNode, h, cl.Costs)
		var done sim.Time
		client.Write(0, parity.FromBytes(randBytes(54, 16<<10)), func(error) { done = cl.Eng.Now() })
		cl.Eng.Run()
		return done
	}()
	if offloaded <= direct {
		t.Fatalf("offloaded write (%v) should cost more than direct (%v)", offloaded, direct)
	}
	if offloaded > direct+sim.Time(100*sim.Microsecond) {
		t.Fatalf("offload overhead %v implausibly high", offloaded-direct)
	}
}

func TestOffloadBoundsChecked(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	clientNode := cl.Net.NewNode("client")
	clientNode.AddNIC("nic0", 100)
	client := core.NewOffload(cl.Eng, cl.Net, clientNode, h, cl.Costs)
	var rerr, werr error
	client.Read(client.Size(), 10, func(_ parity.Buffer, e error) { rerr = e })
	client.Write(-5, parity.Sized(1), func(e error) { werr = e })
	cl.Eng.Run()
	if rerr == nil || werr == nil {
		t.Fatal("out-of-range accepted")
	}
}
