package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"draid/internal/blockdev"
	"draid/internal/gf256"
	"draid/internal/integrity"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

// This file holds the host's media-error recovery machinery: when a server
// answers a read with StatusMediaError (a drive URE, or a per-chunk checksum
// mismatch caught by verify-on-read), the affected sectors are treated as a
// per-chunk ERASURE — reconstructed through the stripe's surviving redundancy
// like a failed member, but without marking the (perfectly healthy) node
// failed. Recovered sectors are written back in place (repair-on-read), and
// ranges that exceed the parity budget are recorded as lost regions instead
// of being served as garbage.

// ---------------------------------------------------------------------------
// Lost regions.

// LostRegion is a virtual byte range sacrificed to a media double fault:
// unreadable sectors exceeded the stripe's parity budget, so the bytes are
// unrecoverable until something overwrites them. Reads overlapping a lost
// region fail with blockdev.ErrMediaError.
type LostRegion struct {
	Off, Len int64
}

// LostRegions returns the current lost regions in ascending virtual order.
func (h *HostController) LostRegions() []LostRegion {
	spans := h.lost.Spans()
	out := make([]LostRegion, len(spans))
	for i, s := range spans {
		out[i] = LostRegion{Off: s.Off, Len: s.Len}
	}
	return out
}

// LostRegionsEver counts every lost range ever recorded, monotonically: the
// delta across an operation tells its observer (the rebuilder, a scrubber
// pass) whether data was sacrificed on its watch, even if a later write
// already cleared the region.
func (h *HostController) LostRegionsEver() int64 { return h.lostEver }

// recordLost marks member's chunk-relative [lo,hi) of stripe as lost, if the
// member holds user data there (parity sectors carry no addressable bytes).
func (h *HostController) recordLost(stripe int64, member int, lo, hi int64) {
	if member < 0 || member >= h.geo.Width {
		return
	}
	kind, idx := h.geo.Role(stripe, member)
	if kind != raid.KindData {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi > h.geo.ChunkSize {
		hi = h.geo.ChunkSize
	}
	if hi <= lo {
		return
	}
	v := stripe*h.geo.StripeDataSize() + int64(idx)*h.geo.ChunkSize + lo
	h.lost.Add(v, hi-lo)
	h.lostEver++
	h.trace("lost region: stripe %d member %d [%d,+%d)", stripe, member, lo, hi-lo)
}

// recordShortfall records the lost region named by a mediaShortfall error,
// if the error is one and identifies a specific member range.
func (h *HostController) recordShortfall(err error) {
	var sf *mediaShortfall
	if errors.As(err, &sf) && sf.member >= 0 {
		h.recordLost(sf.stripe, sf.member, sf.off, sf.off+sf.n)
	}
}

// mediaShortfall reports that reconstructing a chunk range failed because
// unreadable sectors exceeded the stripe's parity budget. It matches both
// blockdev.ErrMediaError and blockdev.ErrDoubleFault under errors.Is.
type mediaShortfall struct {
	stripe int64
	member int   // member whose unreadable range broke the budget; -1 if none specific
	off, n int64 // chunk-relative unreadable range, valid when member >= 0
}

func (e *mediaShortfall) Error() string {
	if e.member < 0 {
		return fmt.Sprintf("core: stripe %d: media errors exceed parity budget", e.stripe)
	}
	return fmt.Sprintf("core: stripe %d: media errors exceed parity budget (member %d, [%d,+%d))",
		e.stripe, e.member, e.off, e.n)
}

func (e *mediaShortfall) Unwrap() []error {
	return []error{blockdev.ErrMediaError, blockdev.ErrDoubleFault}
}

// ---------------------------------------------------------------------------
// Gather-and-solve: the generic erasure decoder behind every media path.

// gatherSolveRange reads the chunk-relative range [lo,hi) of stripe from
// every member that is neither failed nor in skip, then solves the content of
// the unread members through the surviving redundancy. On success cb receives
// got (member → read buffer) and solved (member → reconstructed buffer, one
// entry per failed/skipped member, parity included). A member whose read
// reports a media error is added to skip and the gather restarts — each
// restart shrinks the reader set, so the recursion is bounded by Width. When
// the erasures exceed the parity budget, cb receives a *mediaShortfall
// carrying the budget-breaking member range.
func (h *HostController) gatherSolveRange(stripe, lo, hi int64, skip map[int]bool, cb func(got, solved map[int]parity.Buffer, err error)) {
	sk := make(map[int]bool, len(skip)+1)
	for m, v := range skip {
		if v {
			sk[m] = true
		}
	}
	g := &gatherState{h: h, stripe: stripe, lo: lo, hi: hi, skip: sk, cb: cb}
	g.attempt()
}

// gatherState is one gather-solve across its media-error restarts.
type gatherState struct {
	h       *HostController
	stripe  int64
	lo, hi  int64
	skip    map[int]bool
	lastBad *mediaShortfall // most recent media report, for shortfall errors
	cb      func(got, solved map[int]parity.Buffer, err error)
}

func (g *gatherState) attempt() {
	h := g.h
	n := g.hi - g.lo
	base := h.driveOff(g.stripe)

	var erased, readers []int
	erasedData, availPar := 0, 0
	for m := 0; m < h.geo.Width; m++ {
		kind, _ := h.geo.Role(g.stripe, m)
		if h.memberFailed(g.stripe, m) || g.skip[m] {
			erased = append(erased, m)
			if kind == raid.KindData {
				erasedData++
			}
			continue
		}
		readers = append(readers, m)
		if kind != raid.KindData {
			availPar++
		}
	}
	if erasedData > availPar {
		sf := g.lastBad
		if sf == nil {
			sf = &mediaShortfall{stripe: g.stripe, member: -1}
		}
		h.rt.Defer(func() { g.cb(nil, nil, sf) })
		return
	}

	got := make(map[int]parity.Buffer, len(readers))
	watch := make([]NodeID, len(readers))
	for i, m := range readers {
		watch[i] = h.nodeAt(g.stripe, m)
	}
	op := h.newStripeOp("media-gather", g.stripe, len(readers), watch,
		func() {
			cost := h.cfg.Costs.Gf(int(n)) * sim.Duration(len(erased)+1)
			h.cores.Exec(cost, func() {
				solved, err := h.solveLost(g.stripe, n, erased, got)
				if err != nil {
					g.cb(nil, nil, err)
					return
				}
				g.cb(got, solved, nil)
			})
		},
		func(missing []NodeID) {
			// A reader vanished mid-gather (crashed but not yet detected):
			// escalate it exactly like the normal read path and re-solve with
			// it erased — the budget check above decides between remaining
			// redundancy and a typed loss. Each escalation permanently
			// shrinks the reader set, so the restarts are bounded by Width.
			if len(missing) == 0 {
				g.cb(nil, nil, fmt.Errorf("core: stripe %d media gather: %w", g.stripe, blockdev.ErrTimeout))
				return
			}
			for _, m := range missing {
				h.failNode(m)
			}
			g.attempt()
		},
	)
	op.onPayload = func(from NodeID, _ nvmeof.Command, b parity.Buffer) {
		if m := h.memberOfAt(g.stripe, from); m >= 0 {
			got[m] = b
		}
	}
	op.onMediaErr = func(member int, cmd nvmeof.Command) {
		// A latent error on another member: exclude it too and re-gather.
		g.lastBad = &mediaShortfall{
			stripe: g.stripe, member: member,
			off: cmd.Offset - base, n: cmd.Length,
		}
		g.skip[member] = true
		g.attempt()
	}
	for _, m := range readers {
		h.send(op, h.nodeAt(g.stripe, m), nvmeof.Command{
			Opcode: nvmeof.OpRead, Offset: base + g.lo, Length: n,
		}, parity.Buffer{})
	}
}

// solveLost reconstructs each erased member's content over an n-byte
// chunk-relative range from the gathered survivor pieces: lost data chunks
// through P and/or Q, lost parity chunks by recomputation from the (then
// complete) data. The caller's budget check guarantees solvability.
func (h *HostController) solveLost(stripe, n int64, erased []int, got map[int]parity.Buffer) (map[int]parity.Buffer, error) {
	solved := make(map[int]parity.Buffer, len(erased))
	if len(erased) == 0 {
		return solved, nil
	}
	var lostData []int // lost data-chunk indices
	memberByIdx := make(map[int]int)
	lostP, lostQ := false, false
	pMember, qMember := -1, -1
	for _, m := range erased {
		switch kind, idx := h.geo.Role(stripe, m); kind {
		case raid.KindP:
			lostP, pMember = true, m
		case raid.KindQ:
			lostQ, qMember = true, m
		default:
			lostData = append(lostData, idx)
			memberByIdx[idx] = m
		}
	}

	k := h.geo.DataChunks()
	data := make([]parity.Buffer, k)
	var pBuf, qBuf parity.Buffer
	var sBufs [][]byte
	var sIdx []int
	for m := 0; m < h.geo.Width; m++ {
		b, ok := got[m]
		if !ok {
			continue
		}
		if b.Elided() {
			// Size-only payloads carry no content to decode; propagate.
			for _, em := range erased {
				solved[em] = parity.Sized(int(n))
			}
			return solved, nil
		}
		switch kind, idx := h.geo.Role(stripe, m); kind {
		case raid.KindP:
			pBuf = b
		case raid.KindQ:
			qBuf = b
		default:
			data[idx] = b
			sBufs = append(sBufs, b.Data())
			sIdx = append(sIdx, idx)
		}
	}

	switch len(lostData) {
	case 0:
	case 1:
		x := lostData[0]
		var out parity.Buffer
		switch {
		case !lostP && pBuf.Len() > 0:
			acc := pBuf.Clone()
			for c := 0; c < k; c++ {
				if c != x {
					acc = parity.XORInto(acc, data[c])
				}
			}
			out = acc
		case !lostQ && qBuf.Len() > 0:
			o := make([]byte, n)
			gf256.RecoverOneDataFromQ(o, qBuf.Data(), sBufs, sIdx, x)
			out = parity.FromBytes(o)
		default:
			return nil, fmt.Errorf("core: stripe %d: no surviving parity for chunk %d: %w",
				stripe, x, blockdev.ErrDoubleFault)
		}
		data[x] = out
		solved[memberByIdx[x]] = out
	case 2:
		if lostP || lostQ || pBuf.Len() == 0 || qBuf.Len() == 0 {
			return nil, fmt.Errorf("core: stripe %d: dual data loss needs P and Q: %w",
				stripe, blockdev.ErrDoubleFault)
		}
		dx := make([]byte, n)
		dy := make([]byte, n)
		gf256.RecoverTwoData(dx, dy, pBuf.Data(), qBuf.Data(), sBufs, sIdx, lostData[0], lostData[1])
		data[lostData[0]] = parity.FromBytes(dx)
		data[lostData[1]] = parity.FromBytes(dy)
		solved[memberByIdx[lostData[0]]] = data[lostData[0]]
		solved[memberByIdx[lostData[1]]] = data[lostData[1]]
	default:
		return nil, fmt.Errorf("core: stripe %d: %d data chunks erased: %w",
			stripe, len(lostData), blockdev.ErrDoubleFault)
	}

	switch {
	case lostP && lostQ:
		p, q := parity.ComputePQ(data)
		solved[pMember], solved[qMember] = p, q
	case lostP:
		solved[pMember] = parity.ComputeP(data)
	case lostQ:
		solved[qMember] = parity.ComputeQ(data, nil)
	}
	return solved, nil
}

// ---------------------------------------------------------------------------
// Read-path recovery continuations (installed as stripeOp.onMediaErr hooks).

// mediaRecoverExtent serves a normal read whose target reported unreadable
// sectors: reconstruct the extent through the stripe's redundancy, hand the
// bytes to the assembler, and schedule an in-place repair of the bad sectors
// decoupled from the user read.
func (h *HostController) mediaRecoverExtent(e raid.Extent, member int, asm *assembler, fail *error, done func()) {
	h.gatherSolveRange(e.Stripe, e.Off, e.Off+e.Len, map[int]bool{member: true},
		func(got, solved map[int]parity.Buffer, err error) {
			if err != nil {
				h.recordLost(e.Stripe, member, e.Off, e.Off+e.Len)
				h.recordShortfall(err)
				*fail = fmt.Errorf("core: stripe %d read: %w", e.Stripe, err)
				done()
				return
			}
			asm.put(e.VOff, solved[member])
			h.repairChunkRange(e.Stripe, member, e.Off, e.Off+e.Len, nil)
			done()
		})
}

// mediaFallbackGroup serves a reconstruction-group read (degraded read or
// host fallback read) after one of its survivors reported unreadable
// sectors: gather the union range of every extent in the group, solving both
// the originally failed chunks and the media-erased survivor, then schedule
// the survivor's repair.
func (h *HostController) mediaFallbackGroup(stripe int64, failedExts, normal []raid.Extent, member int, asm *assembler, fail *error, done func()) {
	all := append(append([]raid.Extent(nil), failedExts...), normal...)
	uLo, uHi := unionRange(all)
	h.gatherSolveRange(stripe, uLo, uHi, map[int]bool{member: true},
		func(got, solved map[int]parity.Buffer, err error) {
			if err != nil {
				for _, fe := range failedExts {
					h.recordLost(stripe, h.geo.DataDrive(stripe, fe.Chunk), fe.Off, fe.Off+fe.Len)
				}
				h.recordShortfall(err)
				*fail = fmt.Errorf("core: stripe %d read: %w", stripe, err)
				done()
				return
			}
			for _, e := range all {
				d := h.geo.DataDrive(stripe, e.Chunk)
				b, ok := solved[d]
				if !ok {
					b = got[d]
				}
				if b.Elided() {
					asm.put(e.VOff, parity.Sized(int(e.Len)))
					continue
				}
				asm.put(e.VOff, b.Slice(int(e.Off-uLo), int(e.Len)))
			}
			h.repairChunkRange(stripe, member, uLo, uHi, nil)
			done()
		})
}

// ---------------------------------------------------------------------------
// Fallback-write recovery: reconstructing pre-operation content through the
// write hole.

// fallbackRecoverOld rebuilds every data chunk's pre-operation content of
// stripe over the chunk-relative range [uLo, uHi) for the host fallback
// writer, after one of its phase-1 reads reported unreadable sectors. On
// success cb receives one buffer per data-chunk index; ranges past the
// parity budget come back zero-filled and recorded as lost regions, never
// guessed.
//
// The subtlety is the write hole. The fallback runs after an aborted
// partial write, whose data bdevs may already have committed their new
// content — while parity provably has not moved (the reducer never
// collected every contribution, so it never wrote back). Solving the bad
// member through parity with the writers' stored bytes in the survivor set
// would mix old parity with new data and fabricate garbage — and worse,
// repair-on-read would then persist that garbage under valid checksums. So
// within each segment, every writer extent overlapping it is treated as one
// more erasure: the solver only ever sees provably pre-operation content
// (clean chunks and parity), and returns the writers' old bytes alongside
// the bad member's. A writer's solved old content equals its stored bytes
// outside its extent, and inside the extent the caller overlays the new
// data anyway, so the answer is correct whether or not the aborted write
// landed.
func (h *HostController) fallbackRecoverOld(stripe int64, exts []raid.Extent, uLo, uHi int64, bad map[int]bool, cb func(old []parity.Buffer, err error)) {
	k := h.geo.DataChunks()
	n := uHi - uLo
	out := make([]parity.Buffer, k)
	for c := range out {
		out[c] = parity.Alloc(int(n))
	}

	// Segment [uLo, uHi) at writer-extent boundaries: within one segment the
	// erasure set is uniform.
	bounds := []int64{uLo, uHi}
	for _, e := range exts {
		for _, b := range []int64{e.Off, e.Off + e.Len} {
			if b > uLo && b < uHi {
				bounds = append(bounds, b)
			}
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	seg := 0
	var step func()
	step = func() {
		for seg < len(bounds)-1 && bounds[seg] == bounds[seg+1] {
			seg++
		}
		if seg >= len(bounds)-1 {
			cb(out, nil)
			return
		}
		sLo, sHi := bounds[seg], bounds[seg+1]
		seg++
		skip := make(map[int]bool, len(bad)+len(exts))
		for m := range bad {
			skip[m] = true
		}
		for _, e := range exts {
			if e.Off < sHi && e.Off+e.Len > sLo {
				skip[h.geo.DataDrive(stripe, e.Chunk)] = true
			}
		}
		h.gatherSolveRange(stripe, sLo, sHi, skip, func(got, solved map[int]parity.Buffer, err error) {
			if err != nil {
				var sf *mediaShortfall
				if !errors.As(err, &sf) {
					cb(nil, err)
					return
				}
				// Erasures exceed the parity budget in this segment — the
				// write-hole × URE corner. Salvage what is still readable and
				// record the rest lost instead of wedging the write.
				h.salvageSegment(stripe, sLo, sHi, out, uLo, 0, step, cb)
				return
			}
			for c := 0; c < k; c++ {
				d := h.geo.DataDrive(stripe, c)
				b, ok := got[d]
				if !ok {
					b, ok = solved[d]
				}
				if ok && !b.Elided() {
					out[c].CopyAt(int(sLo-uLo), b)
				}
			}
			step()
		})
	}
	step()
}

// salvageSegment handles a fallbackRecoverOld segment whose erasures exceed
// the parity budget: each data member's stored bytes are read directly —
// whatever is on the drive is, by definition, the content the recomputed
// parity must encode — degrading to protection-block granularity around
// unreadable sectors, which are zero-filled and recorded as lost regions.
func (h *HostController) salvageSegment(stripe, sLo, sHi int64, out []parity.Buffer, uLo int64, c int, next func(), cb func([]parity.Buffer, error)) {
	if c >= h.geo.DataChunks() {
		next()
		return
	}
	member := h.geo.DataDrive(stripe, c)
	if h.memberFailed(stripe, member) {
		// No drive and no trustworthy parity: the bytes are gone.
		h.recordLost(stripe, member, sLo, sHi)
		h.salvageSegment(stripe, sLo, sHi, out, uLo, c+1, next, cb)
		return
	}
	h.salvageBlocks(stripe, member, sLo, sHi, out[c], uLo, func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		h.salvageSegment(stripe, sLo, sHi, out, uLo, c+1, next, cb)
	})
}

// salvageBlocks copies member's readable stored bytes over [sLo, sHi) into
// dst (whose origin is chunk-relative uLo), one protection block at a time;
// unreadable blocks stay zero and are recorded lost.
func (h *HostController) salvageBlocks(stripe int64, member int, sLo, sHi int64, dst parity.Buffer, uLo int64, cbDone func(error)) {
	base := h.driveOff(stripe)
	target := h.nodeAt(stripe, member)
	pos := sLo
	var step func()
	step = func() {
		if pos >= sHi {
			cbDone(nil)
			return
		}
		pLo := pos
		pHi := pLo - pLo%integrity.DefaultBlockSize + integrity.DefaultBlockSize
		if pHi > sHi {
			pHi = sHi
		}
		pos = pHi
		op := h.newStripeOp("salvage-read", stripe, 1, []NodeID{target}, func() { step() },
			func([]NodeID) {
				cbDone(fmt.Errorf("core: stripe %d salvage read: %w", stripe, blockdev.ErrTimeout))
			})
		op.onPayload = func(_ NodeID, _ nvmeof.Command, b parity.Buffer) {
			dst.CopyAt(int(pLo-uLo), b)
		}
		op.onMediaErr = func(_ int, _ nvmeof.Command) {
			h.recordLost(stripe, member, pLo, pHi)
			step()
		}
		h.send(op, target, nvmeof.Command{
			Opcode: nvmeof.OpRead, Offset: base + pLo, Length: pHi - pLo,
		}, parity.Buffer{})
	}
	step()
}

// repairChunkRange repairs member's chunk-relative [lo,hi) of stripe in
// place: under the stripe write lock it re-reads the range (a racing
// foreground write may already have replaced the bad sectors — writes clear
// media errors), and only if the media error persists reconstructs the
// content from the stripe's redundancy and writes it back. cb (optional)
// observes the outcome; callers on the read path fire-and-forget with nil.
func (h *HostController) repairChunkRange(stripe int64, member int, lo, hi int64, cb func(error)) {
	if cb == nil {
		cb = func(error) {}
	}
	// Align outward to protection-block boundaries: a sub-block repair write
	// could not refresh its edge blocks' checksums (the server refuses to
	// absorb slack bytes it cannot verify), so rewrite whole blocks with
	// reconstructed content and heal them for good.
	lo -= lo % integrity.DefaultBlockSize
	if rem := hi % integrity.DefaultBlockSize; rem != 0 {
		hi += integrity.DefaultBlockSize - rem
	}
	if hi > h.geo.ChunkSize {
		hi = h.geo.ChunkSize
	}
	h.acquireStripe(stripe, func() {
		release := func(err error) {
			h.releaseStripe(stripe)
			cb(err)
		}
		base := h.driveOff(stripe)
		target := h.nodeAt(stripe, member)
		op := h.newStripeOp("repair-verify", stripe, 1, []NodeID{target},
			func() { release(nil) }, // reads clean now; nothing to repair
			func([]NodeID) { release(fmt.Errorf("core: stripe %d repair verify: %w", stripe, blockdev.ErrTimeout)) },
		)
		op.onMediaErr = func(_ int, _ nvmeof.Command) {
			h.gatherSolveRange(stripe, lo, hi, map[int]bool{member: true},
				func(got, solved map[int]parity.Buffer, err error) {
					if err != nil {
						h.recordShortfall(err)
						release(err)
						return
					}
					buf, ok := solved[member]
					if !ok {
						release(nil)
						return
					}
					wOp := h.newStripeOp("repair-write", stripe, 1, []NodeID{target},
						func() {
							h.stats.RepairedRanges++
							h.trace("repaired stripe %d member %d [%d,+%d)", stripe, member, lo, hi-lo)
							release(nil)
						},
						func([]NodeID) {
							release(fmt.Errorf("core: stripe %d repair write: %w", stripe, blockdev.ErrTimeout))
						},
					)
					h.send(wOp, target, nvmeof.Command{
						Opcode: nvmeof.OpWrite, Offset: base + lo, Length: hi - lo,
					}, buf)
				})
		}
		h.send(op, target, nvmeof.Command{
			Opcode: nvmeof.OpRead, Offset: base + lo, Length: hi - lo,
		}, parity.Buffer{})
	})
}

// ---------------------------------------------------------------------------
// Rebuild hardening.

// rebuildRecoverChunk re-derives member's whole chunk of stripe after a
// rebuild reconstruction read hit unreadable sectors on a survivor — the
// URE-during-rebuild hazard. The gather machinery reconstructs through
// whatever redundancy survives (on RAID-6 a URE during a single-failure
// rebuild is absorbed by Q); where the parity budget is truly exceeded
// (RAID-5), the unreadable hole is zero-filled in the rebuilt chunk, the
// affected user bytes are recorded as lost regions, and recovery continues
// around the hole so the rebuild never wedges or writes garbage silently.
func (h *HostController) rebuildRecoverChunk(stripe int64, member int, cb func(parity.Buffer, error)) {
	cs := h.geo.ChunkSize
	out := parity.Alloc(int(cs))
	elided := false
	type rng struct{ lo, hi int64 }
	work := []rng{{0, cs}}
	var step func()
	step = func() {
		if len(work) == 0 {
			if elided {
				cb(parity.Sized(int(cs)), nil)
				return
			}
			cb(out, nil)
			return
		}
		r := work[0]
		work = work[1:]
		h.gatherSolveRange(stripe, r.lo, r.hi, nil, func(got, solved map[int]parity.Buffer, err error) {
			if err != nil {
				var sf *mediaShortfall
				if !errors.As(err, &sf) || sf.member < 0 {
					cb(parity.Buffer{}, err)
					return
				}
				// Unrecoverable hole: both the rebuilt chunk's bytes and the
				// reporting survivor's own bytes there are gone. Record them,
				// zero-fill, and keep recovering around the hole.
				badLo, badHi := sf.off, sf.off+sf.n
				if badLo < r.lo {
					badLo = r.lo
				}
				if badHi > r.hi {
					badHi = r.hi
				}
				if badHi <= badLo {
					badLo, badHi = r.lo, r.hi
				}
				h.recordLost(stripe, member, badLo, badHi)
				h.recordLost(stripe, sf.member, sf.off, sf.off+sf.n)
				if badLo > r.lo {
					work = append(work, rng{r.lo, badLo})
				}
				if badHi < r.hi {
					work = append(work, rng{badHi, r.hi})
				}
				step()
				return
			}
			b, ok := solved[member]
			if !ok {
				b = got[member]
			}
			switch {
			case b.Elided():
				elided = true
			case b.Len() > 0:
				out.CopyAt(int(r.lo), b)
			}
			step()
		})
	}
	step()
}

// ---------------------------------------------------------------------------
// Scrubbing.

// ScrubResult reports one stripe's scrub outcome.
type ScrubResult struct {
	Stripe int64
	// Skipped marks a stripe with a failed member: redundancy is already
	// spoken for, so coherence cannot be judged until the rebuild completes.
	Skipped bool
	// MediaRepairs counts chunks rewritten after their reads reported media
	// errors or checksum mismatches (the latent errors scrub exists to find).
	MediaRepairs int
	// ParityRepairs counts parity chunks rewritten because they disagreed
	// with parity recomputed from the stripe's data.
	ParityRepairs int
}

// ScrubStripe verifies one stripe end to end under the stripe write lock:
// every chunk is read (passing through server-side verify-on-read), chunks
// with latent media errors are reconstructed and rewritten in place, and
// parity is recomputed from the data and compared against what is stored,
// rewriting any incoherent parity chunk.
func (h *HostController) ScrubStripe(stripe int64, cb func(ScrubResult, error)) {
	res := ScrubResult{Stripe: stripe}
	if h.crashed {
		return
	}
	for m := 0; m < h.geo.Width; m++ {
		if h.memberFailed(stripe, m) {
			res.Skipped = true
			h.rt.Defer(func() { cb(res, nil) })
			return
		}
	}
	h.acquireStripe(stripe, func() {
		finish := func(err error) {
			h.releaseStripe(stripe)
			cb(res, err)
		}
		cs := h.geo.ChunkSize
		base := h.driveOff(stripe)
		h.gatherSolveRange(stripe, 0, cs, nil, func(got, solved map[int]parity.Buffer, err error) {
			if err != nil {
				h.recordShortfall(err)
				finish(err)
				return
			}
			// Chunks the gather had to solve are exactly the latent errors:
			// rewrite them. Then check parity coherence over the full data.
			type fix struct {
				member int
				buf    parity.Buffer
				media  bool
			}
			var fixes []fix
			for m := 0; m < h.geo.Width; m++ {
				if b, ok := solved[m]; ok {
					fixes = append(fixes, fix{member: m, buf: b, media: true})
				}
			}
			k := h.geo.DataChunks()
			data := make([]parity.Buffer, k)
			elided := false
			for c := 0; c < k; c++ {
				d := h.geo.DataDrive(stripe, c)
				b, ok := got[d]
				if !ok {
					b = solved[d]
				}
				if b.Elided() {
					elided = true
				}
				data[c] = b
			}
			work := h.cfg.Costs.Xor(int(cs) * k)
			if h.geo.Level == raid.Raid6 {
				work += h.cfg.Costs.Gf(int(cs) * k)
			}
			h.cores.Exec(work, func() {
				if !elided {
					pd := h.geo.PDrive(stripe)
					qd := -1
					var pWant, qWant parity.Buffer
					if h.geo.Level == raid.Raid6 {
						qd = h.geo.QDrive(stripe)
						pWant, qWant = parity.ComputePQ(data)
					} else {
						pWant = parity.ComputeP(data)
					}
					if b, ok := got[pd]; ok && !b.Elided() && !bytes.Equal(b.Data(), pWant.Data()) {
						fixes = append(fixes, fix{member: pd, buf: pWant})
					}
					if qd >= 0 {
						if b, ok := got[qd]; ok && !b.Elided() && !bytes.Equal(b.Data(), qWant.Data()) {
							fixes = append(fixes, fix{member: qd, buf: qWant})
						}
					}
				}
				h.stats.ScrubbedStripes++
				if len(fixes) == 0 {
					finish(nil)
					return
				}
				watch := make([]NodeID, len(fixes))
				for i, f := range fixes {
					watch[i] = h.nodeAt(stripe, f.member)
				}
				op := h.newStripeOp("scrub-repair", stripe, len(fixes), watch,
					func() {
						for _, f := range fixes {
							if f.media {
								res.MediaRepairs++
							} else {
								res.ParityRepairs++
							}
							h.stats.RepairedRanges++
						}
						finish(nil)
					},
					func(missing []NodeID) {
						finish(fmt.Errorf("core: stripe %d scrub repair: %w", stripe, blockdev.ErrTimeout))
					},
				)
				for _, f := range fixes {
					h.send(op, h.nodeAt(stripe, f.member), nvmeof.Command{
						Opcode: nvmeof.OpWrite, Offset: base, Length: cs,
					}, f.buf)
				}
			})
		})
	})
}
