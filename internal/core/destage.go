package core

import (
	"draid/internal/integrity"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

// Destage: staged stripes drain back to the drives as full-stripe writes
// when coalescing completed, as reconstruct-style writes for cold partial
// stripes (periodic idle flush, memory pressure, explicit Flush). Every
// destage runs under the stripe's write lock, so it serializes with user
// write-through, rebuild, resync, and scrub exactly as a user write does,
// and marks the §5.4 write-intent bitmap while its drive writes are in
// flight.

// startDestageTimer begins the periodic idle-destage tick as background work
// (it must never keep Run from returning).
func (st *stage) startDestageTimer() {
	interval := st.h.cfg.DestageInterval
	if interval <= 0 {
		interval = 2 * sim.Millisecond
	}
	var tick func()
	tick = func() {
		if st.h.crashed || st.h.fenced {
			// A fenced host must stop destaging: its staged data now belongs
			// to the replacement that seized the volume (the bdevs would
			// reject the writes anyway).
			return
		}
		mark := st.tickMark
		st.tickMark = st.clock
		for _, stripe := range st.stagedStripes() {
			s := st.stripes[stripe]
			// Destage stripes idle for a full interval; recently written
			// stripes keep coalescing.
			if s.snap == nil && !s.set.Empty() && s.touch <= mark {
				st.destageStripe(stripe, nil)
			}
		}
		st.h.rt.AfterBG(interval, tick)
	}
	st.h.rt.AfterBG(interval, tick)
}

// destageCold schedules destage of the coldest non-destaging stripes — the
// memory-pressure path. Freed bytes wake parked writes.
func (st *stage) destageCold() {
	var coldest int64 = -1
	var coldTouch int64
	for _, stripe := range st.stagedStripes() {
		s := st.stripes[stripe]
		if s.snap != nil || s.set.Empty() {
			continue
		}
		if coldest < 0 || s.touch < coldTouch {
			coldest, coldTouch = stripe, s.touch
		}
	}
	if coldest >= 0 {
		st.destageStripe(coldest, nil)
	}
}

// destageStripe writes one stripe's staged ranges out under the stripe write
// lock. The snapshot is taken inside the lock, so whatever a queued
// write-through superseded is simply no longer there. done (optional)
// observes the outcome; on failure the snapshot's bytes return to the live
// set and a later destage retries — acknowledged data is never dropped.
func (st *stage) destageStripe(stripe int64, done func(error)) {
	h := st.h
	finish := func(err error) {
		if err != nil && st.flushErr == nil {
			st.flushErr = err
		}
		if done != nil {
			done(err)
		}
	}
	h.acquireStripe(stripe, func() {
		if h.fenced {
			h.releaseStripe(stripe)
			h.rt.Defer(func() { finish(h.fenceError("destage")) })
			return
		}
		s := st.stripes[stripe]
		if s == nil || s.set.Empty() || h.crashed {
			h.releaseStripe(stripe)
			if !h.crashed {
				h.rt.Defer(func() { finish(nil) })
			}
			return
		}
		sds := h.geo.StripeDataSize()
		snap := &destageSnap{set: s.set, data: s.data, elided: s.elided, logSeq: st.log.seq}
		s.set, s.data, s.elided = integrity.RangeSet{}, parity.Buffer{}, false
		s.snap = snap

		var staged int64
		for _, sp := range snap.set.Spans() {
			staged += sp.Len
		}
		exts, gaps := st.destageExtents(stripe, snap)
		if staged == sds {
			h.stats.DestageFullStripe++
		} else {
			h.stats.DestageRCW++
		}
		issue := func() { st.destageIssue(stripe, s, snap, exts, sds, finish) }
		if len(gaps) == 0 {
			issue()
			return
		}
		// Interleaved staged spans left interior gaps inside some chunk's
		// extent hull: backfill them with the chunk's current content (the
		// read path overlays anything newer staged meanwhile) so the write
		// paths see one contiguous extent per chunk. A failed backfill aborts
		// the destage exactly like a failed write — the snapshot returns to
		// the live set and a later destage retries.
		vbase := st.stripeBase(stripe)
		pending := len(gaps)
		var fillErr error
		fillDone := func(err error) {
			if err != nil && fillErr == nil {
				fillErr = err
			}
			if pending--; pending > 0 {
				return
			}
			if fillErr != nil {
				st.restoreSnap(stripe, s, snap)
				s.snap = nil
				st.wake()
				h.releaseStripe(stripe)
				finish(fillErr)
				return
			}
			issue()
		}
		for _, g := range gaps {
			g := g
			h.readIO(vbase+g.Off, g.Len, func(b parity.Buffer, err error) {
				if err == nil && !snap.elided && snap.data.Len() > 0 && b.Len() > 0 {
					snap.data.CopyAt(int(g.Off), b)
				}
				fillDone(err)
			})
			// Backfills are internal traffic, not user I/O.
			h.stats.Reads--
			h.stats.UserBytesRead -= g.Len
		}
	})
}

// destageIssue runs one destage's drive writes and completion bookkeeping.
// Called with the stripe lock held and the snapshot's extents finalized.
func (st *stage) destageIssue(stripe int64, s *stagedStripe, snap *destageSnap, exts []raid.Extent, sds int64, finish func(error)) {
	h := st.h
	h.markDirty(stripe)
	h.destageWrite(stripe, exts, snap.data, func(err error) {
		h.clearDirty(stripe)
		base := st.stripeBase(stripe)
		if err == nil {
			// The staged bytes are on the drives: clear lost regions they
			// rewrote, feed the clean cache, truncate the intent log, and
			// release the snapshot's memory.
			for _, sp := range snap.set.Spans() {
				if !h.lost.Empty() {
					h.lost.Remove(base+sp.Off, sp.Len)
				}
				if h.cache != nil {
					h.cache.insert(base+sp.Off, sp.Len, snap.data, base)
				}
			}
			st.log.truncate(stripe, snap.logSeq)
		} else {
			// Keep acknowledged data: merge the snapshot back under any
			// newer live writes and let a later destage retry.
			st.restoreSnap(stripe, s, snap)
		}
		s.snap = nil
		if err == nil {
			st.bytes -= sds
			if s.set.Empty() && s.data.Len() == 0 {
				delete(st.stripes, stripe)
			}
		}
		st.wake()
		h.releaseStripe(stripe)
		finish(err)
	})
}

// destageExtents builds one destage's drive extents: exactly one extent per
// data chunk, covering the hull of that chunk's staged spans, with VOff
// indexing the stripe-relative snapshot buffer. One extent per chunk is a
// hard requirement of the write paths (they key participants by chunk);
// staged spans from separate small writes can interleave within a chunk, so
// the hull is destaged and its interior gaps returned for backfilling.
func (st *stage) destageExtents(stripe int64, snap *destageSnap) ([]raid.Extent, []integrity.Span) {
	h := st.h
	cs := h.geo.ChunkSize
	spans := snap.set.Spans()
	var exts []raid.Extent
	var gaps []integrity.Span
	for c := 0; c < h.geo.DataChunks(); c++ {
		cLo, cHi := int64(c)*cs, int64(c+1)*cs
		lo, hi := int64(-1), int64(-1)
		covered := integrity.RangeSet{}
		for _, sp := range spans {
			o, e := sp.Off, sp.Off+sp.Len
			if e <= cLo || o >= cHi {
				continue
			}
			if o < cLo {
				o = cLo
			}
			if e > cHi {
				e = cHi
			}
			if lo < 0 || o < lo {
				lo = o
			}
			if e > hi {
				hi = e
			}
			covered.Add(o, e-o)
		}
		if lo < 0 {
			continue
		}
		for _, e := range h.geo.Split(st.stripeBase(stripe)+lo, hi-lo) {
			e.VOff += lo
			exts = append(exts, e)
		}
		gap := integrity.RangeSet{}
		gap.Add(lo, hi-lo)
		for _, sp := range covered.Spans() {
			gap.Remove(sp.Off, sp.Len)
		}
		gaps = append(gaps, gap.Spans()...)
	}
	return exts, gaps
}

// restoreSnap merges a failed destage's snapshot back into the live set:
// snapshot ranges not overwritten by newer live writes are copied under
// them. Runs while the stripe lock is still held.
func (st *stage) restoreSnap(stripe int64, s *stagedStripe, snap *destageSnap) {
	sds := st.h.geo.StripeDataSize()
	if s.set.Empty() && s.data.Len() == 0 {
		// No newer writes: the snapshot simply becomes live again.
		s.set, s.data, s.elided = snap.set, snap.data, snap.elided
		return
	}
	// Both the snapshot and the live set hold a full-stripe buffer; merging
	// frees the snapshot's.
	live := s.set.Spans()
	for _, sp := range snap.set.Spans() {
		gap := integrity.RangeSet{}
		gap.Add(sp.Off, sp.Len)
		for _, l := range live {
			gap.Remove(l.Off, l.Len)
		}
		for _, g := range gap.Spans() {
			if !s.elided && !snap.elided && s.data.Len() > 0 && snap.data.Len() > 0 {
				s.data.CopyAt(int(g.Off), snap.data.Slice(int(g.Off), int(g.Len)))
			}
			s.set.Add(g.Off, g.Len)
		}
	}
	st.bytes -= sds // the snapshot's buffer is released by the merge
}

// destageWrite executes one destage's drive writes. A fully staged stripe
// takes the normal full-stripe path; a healthy partial stripe is forced
// through reconstruct-write (read the unstaged chunks, rewrite data +
// parity — the classic cold-destage mode, leaving no dependence on old
// parity); degraded or corner-case stripes fall back to the general
// stripeWrite dispatch, which already encodes every degraded rule.
func (h *HostController) destageWrite(stripe int64, exts []raid.Extent, data parity.Buffer, done func(error)) {
	mode := h.geo.DecideWriteMode(exts)
	healthy := !h.memberFailed(stripe, h.geo.PDrive(stripe))
	if healthy {
		for c := 0; c < h.geo.DataChunks(); c++ {
			if h.memberFailed(stripe, h.geo.DataDrive(stripe, c)) {
				healthy = false
				break
			}
		}
	}
	qAlive := false
	if h.geo.Level == raid.Raid6 {
		qAlive = !h.memberFailed(stripe, h.geo.QDrive(stripe))
		healthy = healthy && qAlive
	}
	if mode == raid.ModeFull || !healthy || h.cfg.HostParityOnly {
		h.stripeWrite(stripe, exts, data, 0, done)
		return
	}
	h.stats.RCWWrites++
	onTimeout := h.writeTimeoutHandler(stripe, exts, data, 0, done)
	h.rcwWrite(stripe, exts, data, nil, true, qAlive, onTimeout, done)
}

// flush destages every staged stripe and reports when all the kicked
// destages complete (including any in flight when flush was called). The
// error is the first destage failure observed since the last flush; failed
// stripes stay staged for retry.
func (st *stage) flush(cb func(error)) {
	stripes := st.stagedStripes()
	pending := len(stripes)
	if pending == 0 {
		err := st.flushErr
		st.flushErr = nil
		st.h.rt.Defer(func() { cb(err) })
		return
	}
	part := func(error) {
		pending--
		if pending == 0 {
			err := st.flushErr
			st.flushErr = nil
			cb(err)
		}
	}
	for _, stripe := range stripes {
		st.destageStripe(stripe, part)
	}
}

// FlushStage destages every staged write and invokes cb when the stage has
// drained (first destage error reported; failed stripes stay staged). With
// write-back staging disabled it completes immediately.
func (h *HostController) FlushStage(cb func(error)) {
	if h.crashed {
		return
	}
	if h.stage == nil {
		h.rt.Defer(func() { cb(nil) })
		return
	}
	h.stage.flush(cb)
}

// StagedBytes returns the stage's current allocation (0 without WriteBack).
func (h *HostController) StagedBytes() int64 {
	if h.stage == nil {
		return 0
	}
	return h.stage.bytes
}

// StagedStripes returns the stripes currently holding staged data.
func (h *HostController) StagedStripes() []int64 {
	if h.stage == nil {
		return nil
	}
	return h.stage.stagedStripes()
}
