package core

import (
	"fmt"
	"sort"

	"draid/internal/backend"
	"draid/internal/blockdev"
	"draid/internal/hist"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/recon"
	"draid/internal/sim"
)

// This file implements hedged reads: the grey-failure counterpart of the
// §6.1 degraded read. A drive that is slow — not dead — stalls exactly one
// chunk of an otherwise-complete stripe read. Instead of waiting out the
// straggler (or the §5.4 deadline), the host reads the stripe's P chunk,
// reuses the data completions it already holds, and XOR-solves the
// straggler's range: any k of the n members answer the read. The loser is
// cancelled, and the health detector is told the member was slow so
// persistent laggards are eventually evicted rather than hedged forever.
//
// With HedgeOff (the default) none of this code runs and the read path is
// byte-identical to the pre-hedging implementation.

// HedgePolicy selects when a read hedges its stragglers.
type HedgePolicy int

const (
	// HedgeOff never hedges (default).
	HedgeOff HedgePolicy = iota
	// HedgeFixedDelay hedges a straggler outstanding longer than
	// HedgeConfig.Delay.
	HedgeFixedDelay
	// HedgeAdaptiveP95 hedges a straggler outstanding longer than
	// Multiplier × the median of per-member p95 completion latencies —
	// the threshold tracks the fleet, not the laggard.
	HedgeAdaptiveP95
	// HedgeEagerParity issues the parity read up front with the data
	// reads and solves with whichever k of the n complete first.
	HedgeEagerParity
)

// String returns the policy's canonical spelling.
func (p HedgePolicy) String() string {
	switch p {
	case HedgeOff:
		return "off"
	case HedgeFixedDelay:
		return "fixed-delay"
	case HedgeAdaptiveP95:
		return "adaptive-p95"
	case HedgeEagerParity:
		return "eager-parity"
	}
	return fmt.Sprintf("HedgePolicy(%d)", int(p))
}

// HedgeConfig parameterizes straggler hedging on the read path.
type HedgeConfig struct {
	Policy HedgePolicy
	// Delay is the HedgeFixedDelay trigger (default 500µs).
	Delay sim.Duration
	// Multiplier scales the adaptive threshold (default 3).
	Multiplier float64
	// MinSamples is the per-member warm-up before adaptive hedging trusts
	// its quantiles (default 32).
	MinSamples int
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Delay <= 0 {
		c.Delay = 500 * sim.Microsecond
	}
	if c.Multiplier <= 0 {
		c.Multiplier = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	return c
}

// SlowSink is the optional grey-failure extension of HealthSink: ObserveSlow
// reports that a member was the straggler a hedged read had to solve around.
// Implementations (the repair detector) feed it into degraded→suspect→failed
// transitions so persistently slow members are evicted.
type SlowSink interface {
	ObserveSlow(member int)
}

// hedger holds the host's per-member latency model: an EWMA for cheap
// trend reads plus a full histogram for the adaptive-p95 threshold. It only
// exists when hedging is enabled, so the off path allocates nothing.
type hedger struct {
	cfg  HedgeConfig
	lat  []hist.Histogram
	ewma []recon.EWMA
}

func newHedger(cfg HedgeConfig, width int) *hedger {
	return &hedger{
		cfg:  cfg.withDefaults(),
		lat:  make([]hist.Histogram, width),
		ewma: make([]recon.EWMA, width),
	}
}

// record notes one completed primary read's latency for member.
func (g *hedger) record(member int, d sim.Duration) {
	if member < 0 || member >= len(g.lat) {
		return
	}
	g.lat[member].Record(int64(d))
	g.ewma[member].Update(float64(d))
}

// p95 returns member's observed p95 completion latency (0 with no samples).
func (g *hedger) p95(member int) sim.Duration {
	return sim.Duration(g.lat[member].Quantile(0.95))
}

// triggerDelay returns how long a straggler may stay outstanding before the
// op hedges, or a negative duration when this op must not hedge (adaptive
// policy still warming up).
func (g *hedger) triggerDelay() sim.Duration {
	switch g.cfg.Policy {
	case HedgeFixedDelay:
		return g.cfg.Delay
	case HedgeEagerParity:
		return 0
	case HedgeAdaptiveP95:
		// Median over members of per-member p95: a single slow member
		// inflates its own quantiles enormously, but it cannot move the
		// median of the fleet, so the threshold stays anchored to healthy
		// behavior.
		var p95s []int64
		for m := range g.lat {
			if g.lat[m].Count() >= uint64(g.cfg.MinSamples) {
				p95s = append(p95s, g.lat[m].Quantile(0.95))
			}
		}
		if len(p95s) < (len(g.lat)+1)/2 {
			return -1
		}
		sort.Slice(p95s, func(i, j int) bool { return p95s[i] < p95s[j] })
		return sim.Duration(float64(p95s[len(p95s)/2]) * g.cfg.Multiplier)
	}
	return -1
}

// MemberLatencyP95 exposes the hedger's per-member p95 (0 when hedging is
// off or the member has no samples) — for tests and experiment notes.
func (h *HostController) MemberLatencyP95(member int) sim.Duration {
	if h.hedge == nil || member < 0 || member >= len(h.hedge.lat) {
		return 0
	}
	return h.hedge.p95(member)
}

// MemberLatencyEWMA exposes the per-member latency EWMA in nanoseconds.
func (h *HostController) MemberLatencyEWMA(member int) float64 {
	if h.hedge == nil || member < 0 || member >= len(h.hedge.ewma) {
		return 0
	}
	return h.hedge.ewma[member].Value()
}

// observeSlow forwards straggler evidence to the health sink, if it cares.
// Like all health evidence, slowness is attributed in drive space.
func (h *HostController) observeSlow(drive int) {
	if s, ok := h.health.(SlowSink); ok && drive >= 0 && drive < len(h.memberNode) {
		s.ObserveSlow(drive)
	}
}

// hedgeRead coordinates the extents of one all-healthy stripe group so that
// a single straggler can be solved through parity from the k completions
// already in hand.
type hedgeRead struct {
	h      *HostController
	stripe int64
	exts   []raid.Extent
	asm    *assembler
	fail   *error
	done   func()

	settled []bool
	// recovering marks extents whose primary handed off to media recovery
	// or the degraded path — those paths own the extent's completion and
	// already read parity themselves, so the hedge must stand down.
	recovering  []bool
	ops         []*stripeOp
	outstanding int

	timer     backend.Timer
	triggered bool
	finished  bool
	hedgeDead bool // a hedge attempt failed; primary path owns the op now
	resolving bool

	// Eager-parity prefetch state.
	parityOp    *stripeOp
	parityBuf   parity.Buffer
	parityReady bool
	parityLo    int64 // intra-chunk offset the prefetch covers
}

// hedgedReadStripe issues the group's primary reads and arms the hedge.
// Calls done exactly once when every extent has settled (or failed, with
// *fail set).
func (h *HostController) hedgedReadStripe(stripe int64, exts []raid.Extent, asm *assembler, fail *error, done func()) {
	hr := &hedgeRead{
		h: h, stripe: stripe, exts: exts, asm: asm, fail: fail, done: done,
		settled:     make([]bool, len(exts)),
		recovering:  make([]bool, len(exts)),
		ops:         make([]*stripeOp, len(exts)),
		outstanding: len(exts),
	}
	for i := range exts {
		hr.issuePrimary(i, 0)
	}
	if h.hedge.cfg.Policy == HedgeEagerParity {
		hr.triggered = true
		hr.prefetchParity()
		return
	}
	if d := h.hedge.triggerDelay(); d >= 0 {
		hr.timer = h.rt.After(d, hr.trigger)
	}
}

// issuePrimary sends the plain read for extent i (attempt counts retries).
func (hr *hedgeRead) issuePrimary(i, attempt int) {
	h := hr.h
	e := hr.exts[i]
	member := h.geo.DataDrive(e.Stripe, e.Chunk)
	drive := h.layout.Drive(e.Stripe, member)
	target := h.nodeAt(e.Stripe, member)
	absOff := h.driveOff(e.Stripe) + e.Off
	sent := h.rt.Now()
	op := h.newStripeOp("read", e.Stripe, 1, []NodeID{target},
		func() {
			h.hedge.record(drive, sim.Duration(h.rt.Now()-sent))
			hr.ops[i] = nil
			hr.settle(i)
		},
		func(missing []NodeID) { hr.primaryFailed(i, missing, attempt) },
	)
	hr.ops[i] = op
	op.onPayload = func(_ NodeID, _ nvmeof.Command, b parity.Buffer) {
		if !hr.settled[i] {
			hr.asm.put(e.VOff, b)
		}
	}
	op.onMediaErr = func(m int, _ nvmeof.Command) {
		// Media recovery owns this extent now; the hedge must not race it
		// (it writes the same assembler), and abandoning the straggler here
		// would be wrong anyway — the URE victim's data comes back through
		// the parity gather inside recovery.
		hr.ops[i] = nil
		hr.recovering[i] = true
		h.mediaRecoverExtent(e, m, hr.asm, hr.fail, func() { hr.settle(i) })
	}
	h.send(op, target, nvmeof.Command{Opcode: nvmeof.OpRead, Offset: absOff, Length: e.Len}, parity.Buffer{})
}

// primaryFailed mirrors readFailurePath for a hedged group's extent.
func (hr *hedgeRead) primaryFailed(i int, missing []NodeID, attempt int) {
	h := hr.h
	e := hr.exts[i]
	if hr.settled[i] || hr.finished {
		return
	}
	if attempt >= h.maxRetries() {
		*hr.fail = fmt.Errorf("core: stripe %d read: retries exhausted: %w", e.Stripe, blockdev.ErrTimeout)
		hr.ops[i] = nil
		hr.settle(i)
		return
	}
	h.stats.Retries++
	if len(missing) == 0 {
		h.retryAfter(attempt, func() {
			if !hr.settled[i] && !hr.finished {
				hr.issuePrimary(i, attempt+1)
			}
		})
		return
	}
	for _, m := range missing {
		h.failNode(m)
	}
	hr.ops[i] = nil
	hr.recovering[i] = true
	h.degradedReadStripe(e.Stripe, e, nil, hr.asm, hr.fail, func() { hr.settle(i) })
}

// settle marks extent i complete; the last settle finishes the group.
func (hr *hedgeRead) settle(i int) {
	if hr.settled[i] || hr.finished {
		return
	}
	hr.settled[i] = true
	hr.outstanding--
	if hr.outstanding == 0 {
		hr.finish()
		return
	}
	hr.maybeResolve()
}

// finish retires the group: stop the hedge trigger, cancel any in-flight
// hedge machinery, and report to the caller exactly once.
func (hr *hedgeRead) finish() {
	if hr.finished {
		return
	}
	hr.finished = true
	if hr.timer != nil {
		hr.timer.Stop()
	}
	if hr.parityOp != nil {
		hr.h.cancelOp(hr.parityOp, "hedge-unused")
		hr.parityOp = nil
	}
	hr.done()
}

func (hr *hedgeRead) trigger() {
	hr.triggered = true
	hr.maybeResolve()
}

// maybeResolve hedges when the trigger has fired and exactly one extent is
// still outstanding — the straggler condition. (With two or more stragglers
// RAID-5 parity cannot solve them all; the §5.4 deadline handles genuine
// multi-member trouble.)
func (hr *hedgeRead) maybeResolve() {
	if hr.finished || !hr.triggered || hr.hedgeDead || hr.resolving {
		return
	}
	if hr.outstanding != 1 {
		return
	}
	i := -1
	for j := range hr.settled {
		if !hr.settled[j] {
			i = j
			break
		}
	}
	if i < 0 || hr.recovering[i] {
		return
	}
	h := hr.h
	if h.memberFailed(hr.stripe, h.geo.PDrive(hr.stripe)) {
		return // no parity to solve through
	}
	if h.hedge.cfg.Policy == HedgeEagerParity && hr.parityOp != nil && !hr.parityReady {
		return // parity prefetch still in flight; its completion re-checks
	}
	hr.resolving = true
	h.stats.HedgedReads++
	hr.resolve(i)
}

// prefetchParity issues the eager-parity read covering the union of the
// group's intra-chunk ranges, so any later single straggler can be solved
// without another round trip to the P member.
func (hr *hedgeRead) prefetchParity() {
	h := hr.h
	lo, hi := hr.exts[0].Off, hr.exts[0].Off+hr.exts[0].Len
	for _, e := range hr.exts[1:] {
		if e.Off < lo {
			lo = e.Off
		}
		if e.Off+e.Len > hi {
			hi = e.Off + e.Len
		}
	}
	pDrive := h.geo.PDrive(hr.stripe)
	if h.memberFailed(hr.stripe, pDrive) {
		return
	}
	target := h.nodeAt(hr.stripe, pDrive)
	op := h.newStripeOp("hedge-parity", hr.stripe, 1, []NodeID{target},
		func() {
			hr.parityOp = nil
			hr.parityReady = true
			hr.maybeResolve()
		},
		func([]NodeID) {
			hr.parityOp = nil
			hr.hedgeDead = true
		},
	)
	op.onPayload = func(_ NodeID, _ nvmeof.Command, b parity.Buffer) { hr.parityBuf = b }
	op.onMediaErr = func(int, nvmeof.Command) {
		hr.parityOp = nil
		hr.hedgeDead = true
	}
	hr.parityOp = op
	hr.parityLo = lo
	h.send(op, target, nvmeof.Command{
		Opcode: nvmeof.OpRead, Offset: h.driveOff(hr.stripe) + lo, Length: hi - lo,
	}, parity.Buffer{})
}

// resolve reads whatever the XOR solve still needs — the P chunk (unless
// prefetched) and any data chunk not covered by a settled extent — then
// solves the straggler's range and cancels the loser. For an aligned
// full-stripe read every other data chunk is already in hand, so the hedge
// costs exactly one extra parity read.
func (hr *hedgeRead) resolve(i int) {
	h := hr.h
	e := hr.exts[i]
	stripe := hr.stripe
	rOff, rLen := e.Off, e.Len
	absOff := h.driveOff(stripe) + rOff

	// Classify every other data chunk: covered by a settled extent (slice
	// the assembler) or fetched by the hedge op.
	type cover struct {
		target NodeID
		buf    parity.Buffer
	}
	var settledSrcs []parity.Buffer
	var fetches []*cover
	byNode := make(map[NodeID]*cover)
	for c := 0; c < h.geo.DataChunks(); c++ {
		if c == e.Chunk {
			continue
		}
		d := h.geo.DataDrive(stripe, c)
		if h.memberFailed(stripe, d) {
			// The stripe went degraded under us (rebuild/eviction races);
			// reconstruction through this path needs the full §6.1
			// machinery, not a hedge. Stand down.
			hr.resolving = false
			hr.hedgeDead = true
			return
		}
		var own *raid.Extent
		for j := range hr.exts {
			if hr.settled[j] && hr.exts[j].Chunk == c &&
				hr.exts[j].Off <= rOff && hr.exts[j].Off+hr.exts[j].Len >= rOff+rLen {
				own = &hr.exts[j]
				break
			}
		}
		if own != nil && !hr.asm.elided {
			settledSrcs = append(settledSrcs,
				hr.asm.buf.Slice(int(own.VOff+(rOff-own.Off)), int(rLen)))
			continue
		}
		if own != nil && hr.asm.elided {
			// Size-only mode: the data "exists", no bytes to slice.
			continue
		}
		cv := &cover{target: h.nodeAt(stripe, d)}
		fetches = append(fetches, cv)
		byNode[cv.target] = cv
	}

	needParity := !(hr.parityReady && hr.parityLo <= rOff)
	expect := len(fetches)
	if needParity {
		expect++
	}
	pTarget := h.nodeAt(stripe, h.geo.PDrive(stripe))

	solve := func(pBuf parity.Buffer, elided bool) {
		h.cores.Exec(h.cfg.Costs.Gf(int(rLen)), func() {
			if hr.finished || hr.settled[i] || hr.recovering[i] {
				return
			}
			var out parity.Buffer
			if elided {
				out = parity.Sized(int(rLen))
			} else {
				acc := pBuf.Clone()
				for _, s := range settledSrcs {
					acc = parity.XORInto(acc, s)
				}
				for _, cv := range fetches {
					acc = parity.XORInto(acc, cv.buf)
				}
				out = acc
			}
			if op := hr.ops[i]; op != nil {
				h.cancelOp(op, "hedged")
				hr.ops[i] = nil
			}
			h.stats.HedgeWins++
			h.observeSlow(h.layout.Drive(stripe, h.geo.DataDrive(stripe, e.Chunk)))
			hr.asm.put(e.VOff, out)
			hr.settle(i)
		})
	}

	if expect == 0 {
		// Eager prefetch already delivered the parity and every data chunk
		// is settled: solve straight away.
		pBuf := hr.parityBuf
		elided := hr.asm.elided || pBuf.Elided()
		if !elided {
			pBuf = pBuf.Slice(int(rOff-hr.parityLo), int(rLen))
		}
		solve(pBuf, elided)
		return
	}

	watch := make([]NodeID, 0, expect)
	if needParity {
		watch = append(watch, pTarget)
	}
	for _, cv := range fetches {
		watch = append(watch, cv.target)
	}
	var pPayload parity.Buffer
	op := h.newStripeOp("hedge-read", stripe, expect, watch,
		func() {
			var pBuf parity.Buffer
			if needParity {
				pBuf = pPayload
			} else {
				pBuf = hr.parityBuf
				if !pBuf.Elided() {
					pBuf = pBuf.Slice(int(rOff-hr.parityLo), int(rLen))
				}
			}
			elided := hr.asm.elided || pBuf.Elided()
			if !elided {
				for _, cv := range fetches {
					if cv.buf.Elided() {
						elided = true
						break
					}
				}
			}
			solve(pBuf, elided)
		},
		func([]NodeID) {
			// The hedge lost its own race (timeout, member loss). The
			// primary straggler still owns correctness; just stand down.
			hr.hedgeDead = true
		},
	)
	op.onPayload = func(from NodeID, _ nvmeof.Command, b parity.Buffer) {
		if cv := byNode[from]; cv != nil {
			cv.buf = b
			return
		}
		if from == pTarget {
			pPayload = b
		}
	}
	op.onMediaErr = func(int, nvmeof.Command) {
		// A hedge source hit a URE: never solve from partial sources. The
		// primary path (and repair-on-read, if the straggler itself faults)
		// retains responsibility for this extent.
		hr.hedgeDead = true
	}
	if needParity {
		h.send(op, pTarget, nvmeof.Command{Opcode: nvmeof.OpRead, Offset: absOff, Length: rLen}, parity.Buffer{})
	}
	for _, cv := range fetches {
		h.send(op, cv.target, nvmeof.Command{Opcode: nvmeof.OpRead, Offset: absOff, Length: rLen}, parity.Buffer{})
	}
}
