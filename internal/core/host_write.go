package core

import (
	"fmt"

	"draid/internal/blockdev"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
)

// Write implements blockdev.Device: per-volume QoS admission when a shared
// arbiter is configured, then the real write.
func (h *HostController) Write(off int64, data parity.Buffer, cb func(error)) {
	if q := h.cfg.QoS; q != nil && !h.crashed {
		cost := qosCost(int64(data.Len()))
		q.Admit(h.cfg.Volume, cost, func() {
			h.writeIO(off, data, func(err error) {
				q.Done(h.cfg.Volume, cost)
				cb(err)
			})
		})
		return
	}
	h.writeIO(off, data, cb)
}

// writeIO is the write path proper. Each affected stripe is admitted through
// the per-stripe write queue (§3), then executed in the cheapest mode:
// full-stripe (host-side parity), disaggregated read-modify-write, or
// disaggregated reconstruct-write (§5). Degraded stripes are handled per the
// rules documented on stripeWrite.
func (h *HostController) writeIO(off int64, data parity.Buffer, cb func(error)) {
	if h.crashed {
		return
	}
	if h.fenced {
		h.rt.Defer(func() { cb(h.fenceError("write")) })
		return
	}
	n := int64(data.Len())
	if err := blockdev.CheckRange(off, n, h.size); err != nil {
		h.rt.Defer(func() { cb(err) })
		return
	}
	h.stats.Writes++
	h.stats.UserBytesWritten += n
	if n == 0 {
		h.rt.Defer(func() { cb(nil) })
		return
	}
	if h.stage != nil {
		// Write-back staging: sub-stripe groups are absorbed and acknowledged
		// without drive I/O; full-stripe groups write through (stage.go).
		h.stage.write(off, data, cb)
		h.cores.Exec(h.cfg.Costs.PerUser, func() {})
		return
	}
	byStripe := raid.StripeExtents(h.geo.Split(off, n))
	pending := len(byStripe)
	var firstErr error
	part := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		pending--
		if pending == 0 {
			cb(firstErr)
		}
	}
	for _, stripe := range raid.StripeOrder(byStripe) {
		h.writeStripeGroup(off, stripe, byStripe[stripe], data, part)
	}
	h.cores.Exec(h.cfg.Costs.PerUser, func() {})
}

// writeStripeGroup admits one stripe's extent group through the per-stripe
// write queue and executes it via stripeWrite. With staging enabled it is the
// write-through path: under the stripe lock it supersedes any staged live
// data for the written ranges (a destage snapshot cannot coexist — destages
// hold the same lock), and it invalidates the clean-read cache.
func (h *HostController) writeStripeGroup(off, stripe int64, group []raid.Extent, data parity.Buffer, done func(error)) {
	h.acquireStripe(stripe, func() {
		if h.stage != nil {
			h.stage.drop(stripe, group)
		}
		if h.cache != nil {
			for _, e := range group {
				h.cache.invalidate(off+e.VOff, e.Len)
			}
		}
		h.markDirty(stripe)
		h.stripeWrite(stripe, group, data, 0, func(err error) {
			if err == nil && !h.lost.Empty() {
				// Overwriting lost bytes brings them back: the new data
				// is re-encoded into the stripe's redundancy.
				for _, e := range group {
					h.lost.Remove(off+e.VOff, e.Len)
				}
			}
			h.clearDirty(stripe)
			h.releaseStripe(stripe)
			done(err)
		})
	})
}

// stripeWrite executes the write for one stripe. Degraded rules:
//
//   - no failed member in this stripe's chunk set → normal mode decision;
//   - only parity member(s) failed → same flow minus the failed reducer(s);
//     RAID-5 with P failed degenerates to plain data writes;
//   - a failed DATA chunk untouched by the write → forced RMW (its old value
//     stays encoded in parity; deltas from written chunks suffice);
//   - a failed DATA chunk touched by the write → reconstruct-write with the
//     host supplying the failed chunk's new data to the reducer(s), valid
//     when that chunk's written range covers the whole union; otherwise, or
//     with two failed data chunks touched, the host fallback restores
//     consistency centrally.
//
// attempt counts §5.4 timeout-driven retries; any retry goes through the
// host fallback path, which never depends on the expired operation's partial
// state.
func (h *HostController) stripeWrite(stripe int64, exts []raid.Extent, data parity.Buffer, attempt int, done func(error)) {
	onTimeout := h.writeTimeoutHandler(stripe, exts, data, attempt, done)
	if attempt > 0 {
		h.hostFallbackWrite(stripe, exts, data, onTimeout, done)
		return
	}

	pDrive := h.geo.PDrive(stripe)
	pAlive := !h.memberFailed(stripe, pDrive)
	qDrive, qAlive := -1, false
	if h.geo.Level == raid.Raid6 {
		qDrive = h.geo.QDrive(stripe)
		qAlive = !h.memberFailed(stripe, qDrive)
	}

	var touchedFailed, touchedAlive []raid.Extent
	anyFailedDataUntouched := false
	touchedSet := make(map[int]bool)
	for _, e := range exts {
		touchedSet[e.Chunk] = true
		if h.memberFailed(stripe, h.geo.DataDrive(stripe, e.Chunk)) {
			touchedFailed = append(touchedFailed, e)
		} else {
			touchedAlive = append(touchedAlive, e)
		}
	}
	for c := 0; c < h.geo.DataChunks(); c++ {
		if !touchedSet[c] && h.memberFailed(stripe, h.geo.DataDrive(stripe, c)) {
			anyFailedDataUntouched = true
		}
	}

	mode := h.geo.DecideWriteMode(exts)
	switch {
	case len(touchedFailed) == 0 && !anyFailedDataUntouched:
		// All data chunks of this stripe are healthy.
		switch {
		case mode == raid.ModeFull:
			h.stats.FullStripeWrites++
			h.fullStripeWrite(stripe, data, exts, pAlive, qAlive, onTimeout, done)
		case !pAlive && h.geo.Level == raid.Raid5:
			h.plainWrites(stripe, touchedAlive, data, onTimeout, done)
		case h.cfg.HostParityOnly:
			h.hostFallbackWrite(stripe, exts, data, onTimeout, done)
		case mode == raid.ModeRMW:
			h.stats.RMWWrites++
			h.rmwWrite(stripe, exts, data, pAlive, qAlive, onTimeout, done)
		default:
			h.stats.RCWWrites++
			h.rcwWrite(stripe, exts, data, nil, pAlive, qAlive, onTimeout, done)
		}
	case len(touchedFailed) == 0:
		// A failed data chunk exists but is untouched: RMW only.
		if !pAlive && !qAlive {
			h.plainWrites(stripe, touchedAlive, data, onTimeout, done)
			return
		}
		h.stats.RMWWrites++
		h.rmwWrite(stripe, exts, data, pAlive, qAlive, onTimeout, done)
	case len(touchedFailed) == 1 && !anyFailedDataUntouched && (pAlive || qAlive):
		fe := touchedFailed[0]
		uLo, uHi := unionRange(exts)
		if fe.Off == uLo && fe.Off+fe.Len == uHi && mode != raid.ModeFull {
			h.stats.RCWWrites++
			h.rcwWrite(stripe, exts, data, &fe, pAlive, qAlive, onTimeout, done)
			return
		}
		if mode == raid.ModeFull {
			h.stats.FullStripeWrites++
			h.fullStripeWrite(stripe, data, exts, pAlive, qAlive, onTimeout, done)
			return
		}
		h.hostFallbackWrite(stripe, exts, data, onTimeout, done)
	default:
		h.hostFallbackWrite(stripe, exts, data, onTimeout, done)
	}
}

// writeTimeoutHandler implements §5.4: after a timeout, the host waits for
// terminal states (the op's deadline), marks truly-down targets failed, and
// retries as a full-stripe-consistent host write until the per-op budget
// (Config.MaxRetries) runs out. Transient failures (no node actually down —
// network jitter, dropped messages) take the same retry, which is safe
// because the retry never depends on the expired operation's partial state.
// Faulting members also reach the health sink via the op deadline path.
func (h *HostController) writeTimeoutHandler(stripe int64, exts []raid.Extent, data parity.Buffer, attempt int, done func(error)) func([]NodeID) {
	return func(missing []NodeID) {
		if h.fenced {
			// Stood down mid-operation (a bdev answered StatusStaleEpoch, or
			// the lease ran out): retrying would only collect more
			// rejections. Surface the typed error.
			done(h.fenceError(fmt.Sprintf("stripe %d write", stripe)))
			return
		}
		if attempt >= h.maxRetries() {
			for _, m := range missing {
				h.failNode(m)
			}
			done(fmt.Errorf("core: stripe %d write: retries exhausted: %w", stripe, blockdev.ErrTimeout))
			return
		}
		h.stats.Retries++
		for _, m := range missing {
			h.failNode(m)
		}
		h.trace("stripe %d write retry (down: %v)", stripe, missing)
		h.retryAfter(attempt, func() {
			h.stripeWrite(stripe, exts, data, attempt+1, done)
		})
	}
}

// unionRange returns the chunk-relative union [lo,hi) of the written ranges
// across the stripe's extents — the byte positions where parity changes.
func unionRange(exts []raid.Extent) (lo, hi int64) {
	lo, hi = exts[0].Off, exts[0].Off+exts[0].Len
	for _, e := range exts[1:] {
		if e.Off < lo {
			lo = e.Off
		}
		if e.Off+e.Len > hi {
			hi = e.Off + e.Len
		}
	}
	return lo, hi
}

// fullStripeWrite computes parity on the host (§3: disaggregation gains
// nothing for full-stripe writes) and issues plain writes to every healthy
// member.
func (h *HostController) fullStripeWrite(stripe int64, data parity.Buffer, exts []raid.Extent, pAlive, qAlive bool, onTimeout func([]NodeID), done func(error)) {
	k := h.geo.DataChunks()
	cs := h.geo.ChunkSize
	chunks := make([]parity.Buffer, k)
	for _, e := range exts {
		if e.Off != 0 || e.Len != cs {
			panic("core: full-stripe write with partial extent")
		}
		chunks[e.Chunk] = data.Slice(int(e.VOff), int(cs))
	}
	absOff := h.driveOff(stripe)

	// Carry each target's chunk index forward: the reverse node→role lookup
	// is ambiguous under a declustered layout (one endpoint can serve
	// different members of different stripes), so it must not be re-derived
	// from the completion's origin.
	type dataTarget struct {
		node  NodeID
		chunk int
	}
	var targets []dataTarget
	for c := 0; c < k; c++ {
		d := h.geo.DataDrive(stripe, c)
		if !h.memberFailed(stripe, d) {
			targets = append(targets, dataTarget{node: h.nodeAt(stripe, d), chunk: c})
		}
	}
	parityWork := h.cfg.Costs.Xor(int(cs) * k)
	if h.geo.Level == raid.Raid6 && qAlive {
		parityWork += h.cfg.Costs.Gf(int(cs) * k)
	}
	h.cores.Exec(parityWork, func() {
		var pBuf, qBuf parity.Buffer
		switch {
		case pAlive && qAlive:
			pBuf, qBuf = parity.ComputePQ(chunks)
		case pAlive:
			pBuf = parity.ComputeP(chunks)
		case qAlive:
			qBuf = parity.ComputeQ(chunks, nil)
		}
		expect := len(targets)
		if pAlive {
			expect++
		}
		if qAlive {
			expect++
		}
		watch := make([]NodeID, 0, expect)
		for _, t := range targets {
			watch = append(watch, t.node)
		}
		if pAlive {
			watch = append(watch, h.nodeAt(stripe, h.geo.PDrive(stripe)))
		}
		if qAlive {
			watch = append(watch, h.nodeAt(stripe, h.geo.QDrive(stripe)))
		}
		op := h.newStripeOp("full-stripe-write", stripe, expect, watch, func() { done(nil) }, onTimeout)
		for _, t := range targets {
			h.send(op, t.node, nvmeof.Command{Opcode: nvmeof.OpWrite, Offset: absOff, Length: cs}, chunks[t.chunk])
		}
		if pAlive {
			h.send(op, h.nodeAt(stripe, h.geo.PDrive(stripe)), nvmeof.Command{Opcode: nvmeof.OpWrite, Offset: absOff, Length: cs}, pBuf)
		}
		if qAlive {
			h.send(op, h.nodeAt(stripe, h.geo.QDrive(stripe)), nvmeof.Command{Opcode: nvmeof.OpWrite, Offset: absOff, Length: cs}, qBuf)
		}
	})
}

// plainWrites issues bare data writes with no parity maintenance — the
// degenerate degraded mode when no parity member of the stripe survives.
func (h *HostController) plainWrites(stripe int64, exts []raid.Extent, data parity.Buffer, onTimeout func([]NodeID), done func(error)) {
	if len(exts) == 0 {
		h.rt.Defer(func() { done(nil) })
		return
	}
	watch := make([]NodeID, 0, len(exts))
	for _, e := range exts {
		watch = append(watch, h.nodeAt(stripe, h.geo.DataDrive(stripe, e.Chunk)))
	}
	op := h.newStripeOp("plain-write", stripe, len(exts), watch, func() { done(nil) }, onTimeout)
	for _, e := range exts {
		t := h.nodeAt(stripe, h.geo.DataDrive(stripe, e.Chunk))
		h.send(op, t, nvmeof.Command{
			Opcode: nvmeof.OpWrite,
			Offset: h.driveOff(stripe) + e.Off, Length: e.Len,
		}, data.Slice(int(e.VOff), int(e.Len)))
	}
}

// parityDests returns the NextDest/NextDest2 routing for a stripe. These are
// wire-level node indices, so rebuild indirection applies.
func (h *HostController) parityDests(stripe int64, pAlive, qAlive bool) (pDest, qDest uint16) {
	pDest, qDest = NoDest, NoDest
	if pAlive {
		pDest = uint16(h.nodeAt(stripe, h.geo.PDrive(stripe)))
	}
	if qAlive && h.geo.Level == raid.Raid6 {
		qDest = uint16(h.nodeAt(stripe, h.geo.QDrive(stripe)))
	}
	return pDest, qDest
}

// rmwWrite runs the disaggregated read-modify-write of §5: PartialWrite to
// each written data bdev, Parity to the reducer(s), peer-to-peer delta
// forwarding, non-blocking reduce.
func (h *HostController) rmwWrite(stripe int64, exts []raid.Extent, data parity.Buffer, pAlive, qAlive bool, onTimeout func([]NodeID), done func(error)) {
	base := h.driveOff(stripe)
	uLo, uHi := unionRange(exts)
	union := nvmeof.SGE{Off: base + uLo, Len: uHi - uLo}
	pDest, qDest := h.parityDests(stripe, pAlive, qAlive)

	expect := len(exts) // one bdevD callback per written chunk
	var watch []NodeID
	for _, e := range exts {
		watch = append(watch, h.nodeAt(stripe, h.geo.DataDrive(stripe, e.Chunk)))
	}
	if pDest != NoDest {
		expect++
		watch = append(watch, NodeID(pDest))
	}
	if qDest != NoDest {
		expect++
		watch = append(watch, NodeID(qDest))
	}
	op := h.newStripeOp("rmw-write", stripe, expect, watch, func() { done(nil) }, onTimeout)

	for _, e := range exts {
		t := h.nodeAt(stripe, h.geo.DataDrive(stripe, e.Chunk))
		h.send(op, t, nvmeof.Command{
			Opcode:  nvmeof.OpPartialWrite,
			Subtype: nvmeof.SubRMW,
			Offset:  base + e.Off, Length: e.Len,
			FwdOffset: base + e.Off, FwdLength: e.Len,
			NextDest: pDest, NextDest2: qDest,
			DataIdx: uint16(e.Chunk),
			SGL:     []nvmeof.SGE{union},
		}, data.Slice(int(e.VOff), int(e.Len)))
	}
	parityCmd := nvmeof.Command{
		Opcode:  nvmeof.OpParity,
		Subtype: nvmeof.SubRMW,
		Offset:  union.Off, Length: union.Len,
		WaitNum: uint16(len(exts)),
		DataIdx: NoScale,
	}
	if pDest != NoDest {
		h.send(op, NodeID(pDest), parityCmd, parity.Buffer{})
	}
	if qDest != NoDest {
		h.send(op, NodeID(qDest), parityCmd, parity.Buffer{})
	}
}

// rcwWrite runs the disaggregated reconstruct-write: written chunks
// contribute their new content, untouched chunks their stored content, and
// parity is recomputed over the union with no old-parity preload.
// hostContrib, when non-nil, is the failed chunk whose new data the host
// contributes directly to the reducer(s) (degraded writes).
func (h *HostController) rcwWrite(stripe int64, exts []raid.Extent, data parity.Buffer, hostContrib *raid.Extent, pAlive, qAlive bool, onTimeout func([]NodeID), done func(error)) {
	base := h.driveOff(stripe)
	uLo, uHi := unionRange(exts)
	union := nvmeof.SGE{Off: base + uLo, Len: uHi - uLo}
	pDest, qDest := h.parityDests(stripe, pAlive, qAlive)

	extByChunk := make(map[int]raid.Extent)
	for _, e := range exts {
		extByChunk[e.Chunk] = e
	}

	var written, readers []int // chunk indices of alive participants
	for c := 0; c < h.geo.DataChunks(); c++ {
		d := h.geo.DataDrive(stripe, c)
		if h.memberFailed(stripe, d) {
			continue
		}
		if _, ok := extByChunk[c]; ok {
			written = append(written, c)
		} else {
			readers = append(readers, c)
		}
	}

	expect := len(written)
	var watch []NodeID
	for _, c := range append(append([]int(nil), written...), readers...) {
		watch = append(watch, h.nodeAt(stripe, h.geo.DataDrive(stripe, c)))
	}
	if pDest != NoDest {
		expect++
		watch = append(watch, NodeID(pDest))
	}
	if qDest != NoDest {
		expect++
		watch = append(watch, NodeID(qDest))
	}
	if expect == 0 {
		h.rt.Defer(func() {
			done(fmt.Errorf("core: stripe %d has no healthy participants: %w", stripe, blockdev.ErrDegraded))
		})
		return
	}
	op := h.newStripeOp("rcw-write", stripe, expect, watch, func() { done(nil) }, onTimeout)

	waitNum := len(written) + len(readers)
	for _, c := range written {
		e := extByChunk[c]
		h.send(op, h.nodeAt(stripe, h.geo.DataDrive(stripe, c)), nvmeof.Command{
			Opcode:  nvmeof.OpPartialWrite,
			Subtype: nvmeof.SubRWWrite,
			Offset:  base + e.Off, Length: e.Len,
			FwdOffset: union.Off, FwdLength: union.Len,
			NextDest: pDest, NextDest2: qDest,
			DataIdx: uint16(c),
			SGL:     []nvmeof.SGE{union},
		}, data.Slice(int(e.VOff), int(e.Len)))
	}
	for _, c := range readers {
		h.send(op, h.nodeAt(stripe, h.geo.DataDrive(stripe, c)), nvmeof.Command{
			Opcode:  nvmeof.OpPartialWrite,
			Subtype: nvmeof.SubRWRead,
			Offset:  union.Off, Length: 0,
			FwdOffset: union.Off, FwdLength: union.Len,
			NextDest: pDest, NextDest2: qDest,
			DataIdx: uint16(c),
			SGL:     []nvmeof.SGE{union},
		}, parity.Buffer{})
	}
	parityCmd := nvmeof.Command{
		Opcode:  nvmeof.OpParity,
		Subtype: nvmeof.SubNone,
		Offset:  union.Off, Length: union.Len,
		WaitNum: uint16(waitNum),
		DataIdx: NoScale,
	}
	var contribPayload parity.Buffer
	if hostContrib != nil {
		e := *hostContrib
		parityCmd.FwdOffset = base + e.Off
		parityCmd.FwdLength = e.Len
		contribPayload = data.Slice(int(e.VOff), int(e.Len))
	}
	if pDest != NoDest {
		h.send(op, NodeID(pDest), parityCmd, contribPayload.Clone())
	}
	if qDest != NoDest {
		qCmd := parityCmd
		if hostContrib != nil {
			qCmd.DataIdx = uint16(hostContrib.Chunk)
		}
		h.send(op, NodeID(qDest), qCmd, contribPayload.Clone())
	}
}

// hostFallbackWrite restores full stripe consistency centrally: fetch the
// stripe's survivor state over the union range, compute new data and parity
// on the host, and write everything back. Used for the §5.4 full-stripe
// retry, for degraded corner cases, and for the HostParityOnly ablation.
// Timeouts in either phase route through onTimeout, which owns the retry
// budget.
func (h *HostController) hostFallbackWrite(stripe int64, exts []raid.Extent, data parity.Buffer, onTimeout func([]NodeID), done func(error)) {
	h.stats.HostFallbackWrites++
	base := h.driveOff(stripe)
	uLo, uHi := unionRange(exts)
	uLen := uHi - uLo
	k := h.geo.DataChunks()

	pDrive := h.geo.PDrive(stripe)
	pAlive := !h.memberFailed(stripe, pDrive)
	qDrive, qAlive := -1, false
	if h.geo.Level == raid.Raid6 {
		qDrive = h.geo.QDrive(stripe)
		qAlive = !h.memberFailed(stripe, qDrive)
	}

	// Phase 1: read the union range of every alive data chunk, plus P if we
	// need to reconstruct a lost chunk's old content.
	type slot struct {
		buf parity.Buffer
		ok  bool
	}
	dataOld := make([]slot, k)
	var pOld slot
	var lostIdx []int
	var aliveIdx []int
	for c := 0; c < k; c++ {
		if h.memberFailed(stripe, h.geo.DataDrive(stripe, c)) {
			lostIdx = append(lostIdx, c)
		} else {
			aliveIdx = append(aliveIdx, c)
		}
	}
	if len(lostIdx) > 1 || (len(lostIdx) == 1 && !pAlive) {
		// Two lost data chunks, or a lost chunk whose old content can no
		// longer be recovered through P — reconstructable in principle via
		// Q, but out of scope for the fallback writer.
		h.rt.Defer(func() {
			done(fmt.Errorf("core: stripe %d fallback write: %w", stripe, blockdev.ErrDoubleFault))
		})
		return
	}
	needP := len(lostIdx) == 1 && pAlive

	reads := len(aliveIdx)
	if needP {
		reads++
	}
	var watch []NodeID
	for _, c := range aliveIdx {
		watch = append(watch, h.nodeAt(stripe, h.geo.DataDrive(stripe, c)))
	}
	if needP {
		watch = append(watch, h.nodeAt(stripe, pDrive))
	}

	finishPhase2 := func() {
		// Reconstruct the lost chunk's old content through P if present. The
		// phase-1 read payloads are exclusively ours (fresh drive-read copies)
		// and dead after this closure, so the old-P buffer doubles as the
		// accumulator and the overlay below mutates the reads in place — no
		// per-chunk clones.
		if len(lostIdx) == 1 {
			acc := pOld.buf
			for _, c := range aliveIdx {
				acc = parity.XORInto(acc, dataOld[c].buf)
			}
			dataOld[lostIdx[0]] = slot{buf: acc, ok: true}
		}
		// Overlay the new data.
		newData := make([]parity.Buffer, k)
		for c := 0; c < k; c++ {
			newData[c] = dataOld[c].buf
		}
		elided := data.Elided()
		for _, e := range exts {
			if elided {
				newData[e.Chunk] = parity.Sized(int(uLen))
				continue
			}
			newData[e.Chunk].CopyAt(int(e.Off-uLo), data.Slice(int(e.VOff), int(e.Len)))
		}
		work := h.cfg.Costs.Xor(int(uLen) * k)
		if qAlive {
			work += h.cfg.Costs.Gf(int(uLen) * k)
		}
		h.cores.Exec(work, func() {
			var pNew, qNew parity.Buffer
			switch {
			case pAlive && qAlive:
				pNew, qNew = parity.ComputePQ(newData)
			case pAlive:
				pNew = parity.ComputeP(newData)
			case qAlive:
				qNew = parity.ComputeQ(newData, nil)
			}
			// Phase 3: write back touched alive chunks + parity.
			writes := 0
			var wWatch []NodeID
			for _, e := range exts {
				d := h.geo.DataDrive(stripe, e.Chunk)
				if !h.memberFailed(stripe, d) {
					writes++
					wWatch = append(wWatch, h.nodeAt(stripe, d))
				}
			}
			if pAlive {
				writes++
				wWatch = append(wWatch, h.nodeAt(stripe, pDrive))
			}
			if qAlive {
				writes++
				wWatch = append(wWatch, h.nodeAt(stripe, qDrive))
			}
			if writes == 0 {
				done(nil)
				return
			}
			wOp := h.newStripeOp("fallback-writeback", stripe, writes, wWatch,
				func() { done(nil) }, onTimeout)
			for _, e := range exts {
				d := h.geo.DataDrive(stripe, e.Chunk)
				if h.memberFailed(stripe, d) {
					continue
				}
				h.send(wOp, h.nodeAt(stripe, d), nvmeof.Command{
					Opcode: nvmeof.OpWrite, Offset: base + e.Off, Length: e.Len,
				}, data.Slice(int(e.VOff), int(e.Len)))
			}
			if pAlive {
				h.send(wOp, h.nodeAt(stripe, pDrive), nvmeof.Command{
					Opcode: nvmeof.OpWrite, Offset: base + uLo, Length: uLen,
				}, pNew)
			}
			if qAlive {
				h.send(wOp, h.nodeAt(stripe, qDrive), nvmeof.Command{
					Opcode: nvmeof.OpWrite, Offset: base + uLo, Length: uLen,
				}, qNew)
			}
		})
	}

	if reads == 0 {
		h.rt.Defer(finishPhase2)
		return
	}
	rOp := h.newStripeOp("fallback-read", stripe, reads, watch, finishPhase2, onTimeout)
	rOp.onPayload = func(from NodeID, _ nvmeof.Command, b parity.Buffer) {
		// Per-stripe reverse lookup: under a declustered layout the global
		// node→drive map says nothing about which member of THIS stripe the
		// endpoint served.
		m := h.memberOfAt(stripe, from)
		if m == pDrive {
			pOld = slot{buf: b, ok: true}
			return
		}
		_, idx := h.geo.Role(stripe, m)
		dataOld[idx] = slot{buf: b, ok: true}
	}
	rOp.onMediaErr = func(member int, _ nvmeof.Command) {
		// A phase-1 read hit unreadable sectors. The fallback may be cleaning
		// up after an aborted partial write whose siblings already committed
		// while parity did not, so the bad member cannot simply be solved
		// against the survivors' stored bytes — fallbackRecoverOld re-derives
		// every chunk's pre-operation content through the write hole.
		h.fallbackRecoverOld(stripe, exts, uLo, uHi, map[int]bool{member: true},
			func(old []parity.Buffer, err error) {
				if err != nil {
					h.recordShortfall(err)
					done(fmt.Errorf("core: stripe %d fallback write: %w", stripe, err))
					return
				}
				for c := 0; c < k; c++ {
					dataOld[c] = slot{buf: old[c], ok: true}
				}
				lostIdx = nil // every chunk's old content is now in hand
				h.repairChunkRange(stripe, member, uLo, uHi, nil)
				finishPhase2()
			})
	}
	for _, c := range aliveIdx {
		h.send(rOp, h.nodeAt(stripe, h.geo.DataDrive(stripe, c)), nvmeof.Command{
			Opcode: nvmeof.OpRead, Offset: base + uLo, Length: uLen,
		}, parity.Buffer{})
	}
	if needP {
		h.send(rOp, h.nodeAt(stripe, pDrive), nvmeof.Command{
			Opcode: nvmeof.OpRead, Offset: base + uLo, Length: uLen,
		}, parity.Buffer{})
	}
}
