package core_test

import (
	"bytes"
	"errors"
	"testing"

	"draid/internal/core"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

func TestDirtyBitmapTracksInflightWrites(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	if len(h.DirtyStripes()) != 0 {
		t.Fatal("fresh array should have no dirty stripes")
	}
	h.Write(0, parity.FromBytes(randBytes(60, 8<<10)), func(error) {})
	h.Write(5*4*chunkSize, parity.FromBytes(randBytes(61, 8<<10)), func(error) {})
	// Mid-flight, both stripes are dirty.
	if got := h.DirtyStripes(); len(got) != 2 || got[0] != 0 || got[1] != 5 {
		t.Fatalf("dirty = %v, want [0 5]", got)
	}
	cl.Eng.Run()
	if len(h.DirtyStripes()) != 0 {
		t.Fatalf("dirty after completion = %v", h.DirtyStripes())
	}
}

func TestDirtyBitmapCountsOverlappingWrites(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	h.Write(0, parity.FromBytes(randBytes(62, 4<<10)), func(error) {})
	h.Write(8<<10, parity.FromBytes(randBytes(63, 4<<10)), func(error) {})
	if got := h.DirtyStripes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("dirty = %v, want [0]", got)
	}
	cl.Eng.RunFor(20 * sim.Microsecond)
	// The stripe stays dirty until BOTH writes (the second is queued behind
	// the stripe lock) complete.
	if len(h.DirtyStripes()) != 1 {
		t.Fatalf("dirty mid-queue = %v", h.DirtyStripes())
	}
	cl.Eng.Run()
	if len(h.DirtyStripes()) != 0 {
		t.Fatal("dirty not cleared")
	}
}

// Host crash scenario (§5.4): a write is interrupted mid-flight (the
// controller "dies"), a replacement controller takes over, resyncs only the
// bitmap's stripes, and the parity invariant is restored without a full
// scan.
func TestHostCrashResyncRestoresParity(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	seed := randBytes(64, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)

	// Interrupt an RMW mid-flight: run just far enough for the data bdev to
	// have written new data but (deliberately) not to completion.
	h.Write(0, parity.FromBytes(randBytes(65, chunkSize)), func(error) {})
	cl.Eng.RunFor(80 * sim.Microsecond)
	dirty := h.DirtyStripes()
	if len(dirty) != 1 || dirty[0] != 0 {
		t.Fatalf("dirty at crash = %v, want [0]", dirty)
	}

	// "Crash": a replacement controller registers over the fabric's host
	// endpoint. In-flight completions of the dead controller are dropped.
	h2 := cl.NewDRAID(core.Config{
		Geometry: raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: chunkSize},
		Deadline: 50 * sim.Millisecond,
	})
	cl.Eng.Run() // drain the dead controller's traffic

	for _, s := range dirty {
		err := errors.New("pending")
		h2.ResyncStripe(s, func(e error) { err = e })
		cl.Eng.Run()
		if err != nil {
			t.Fatalf("resync stripe %d: %v", s, err)
		}
	}
	// Parity must be consistent with whatever data landed.
	verifyStripeParity(t, cl, h2, 0)
}

func TestResyncRaid6RecomputesBothParities(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6)
	mustWrite(t, cl, h, 0, randBytes(66, 4*chunkSize))
	// Corrupt both parity chunks directly, then resync.
	g := h.Geometry()
	cl.Drives[g.PDrive(0)].Write(0, parity.FromBytes(randBytes(67, chunkSize)), func(error) {})
	cl.Drives[g.QDrive(0)].Write(0, parity.FromBytes(randBytes(68, chunkSize)), func(error) {})
	cl.Eng.Run()
	err := errors.New("pending")
	h.ResyncStripe(0, func(e error) { err = e })
	cl.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestResyncDegradedStripeNoParityAlive(t *testing.T) {
	cl, h := testCluster(t, 4, raid.Raid5)
	mustWrite(t, cl, h, 0, randBytes(69, 3*chunkSize))
	failMember(cl, h, h.Geometry().PDrive(0))
	err := errors.New("pending")
	h.ResyncStripe(0, func(e error) { err = e })
	cl.Eng.Run()
	if err != nil {
		t.Fatalf("resync with dead parity should no-op cleanly: %v", err)
	}
}

// Rebuilding a data chunk when P is ALSO lost must fall back to the Q-based
// GF reconstruction (RAID-6 dual-failure rebuild).
func TestReconstructDataChunkViaQ(t *testing.T) {
	cl, h := testCluster(t, 6, raid.Raid6)
	data := randBytes(80, 4*chunkSize)
	mustWrite(t, cl, h, 0, data)
	g := h.Geometry()
	m := g.DataDrive(0, 2)
	want := cl.Drives[m].PeekSync(0, chunkSize)
	failMember(cl, h, m)
	failMember(cl, h, g.PDrive(0))
	var got parity.Buffer
	rerr := errors.New("pending")
	h.ReconstructStripeChunk(0, m, func(b parity.Buffer, err error) { got, rerr = b, err })
	cl.Eng.Run()
	if rerr != nil {
		t.Fatalf("Q-based reconstruction: %v", rerr)
	}
	if !bytes.Equal(got.Data(), want) {
		t.Fatal("Q-based reconstruction mismatch")
	}
}

// RAID-5 with P lost cannot rebuild a data member.
func TestReconstructDataChunkNoParityErrors(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	mustWrite(t, cl, h, 0, randBytes(81, 4*chunkSize))
	g := h.Geometry()
	m := g.DataDrive(0, 0)
	failMember(cl, h, m)
	failMember(cl, h, g.PDrive(0))
	rerr := errors.New("pending")
	h.ReconstructStripeChunk(0, m, func(_ parity.Buffer, err error) { rerr = err })
	cl.Eng.Run()
	if rerr == nil {
		t.Fatal("unrecoverable rebuild should error")
	}
}

// §5.4 transient failures: a dropped message (network jitter, no node down)
// must be absorbed by the timeout + retry mechanism, not surfaced.
func TestTransientDropRetriedWrite(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	seed := randBytes(82, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	// Drop every host→target0 message for the first attempt only.
	conn := cl.Fabric.Connection(core.HostID, 0)
	conn.InjectDrop(1.0)
	cl.Eng.After(20*sim.Millisecond, func() { conn.InjectDrop(0) })

	data := randBytes(83, 4*chunkSize) // full stripe touches member 0
	werr := errors.New("pending")
	h.Write(0, parity.FromBytes(data), func(e error) { werr = e })
	cl.Eng.Run()
	if werr != nil {
		t.Fatalf("transient drop not absorbed: %v", werr)
	}
	if h.Stats().Retries == 0 {
		t.Fatalf("stats = %+v, want a retry", h.Stats())
	}
	if len(h.FailedMembers()) != 0 {
		t.Fatalf("transient failure wrongly degraded members: %v", h.FailedMembers())
	}
	if !bytes.Equal(mustRead(t, cl, h, 0, int64(len(data))), data) {
		t.Fatal("post-retry content mismatch")
	}
	verifyStripeParity(t, cl, h, 0)
}

func TestTransientDropRetriedRead(t *testing.T) {
	cl, h := testCluster(t, 5, raid.Raid5)
	data := randBytes(84, 16<<10)
	mustWrite(t, cl, h, 0, data)
	conn := cl.Fabric.Connection(core.HostID, core.NodeID(h.Geometry().DataDrive(0, 0)))
	conn.InjectDrop(1.0)
	cl.Eng.After(20*sim.Millisecond, func() { conn.InjectDrop(0) })
	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("transient-drop read mismatch")
	}
	if len(h.FailedMembers()) != 0 {
		t.Fatalf("read retry wrongly degraded members: %v", h.FailedMembers())
	}
}
