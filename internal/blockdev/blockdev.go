// Package blockdev defines the asynchronous virtual block-device interface
// that every RAID implementation in this repository (dRAID, the SPDK-POC
// baseline, Linux MD baseline) exposes, and that filesystems, object stores,
// and workload generators consume.
package blockdev

import (
	"errors"
	"fmt"

	"draid/internal/parity"
	"draid/internal/sim"
)

// Errors common to all devices.
var (
	ErrOutOfRange = errors.New("blockdev: access beyond device size")
	ErrIO         = errors.New("blockdev: i/o error")
	ErrTimeout    = errors.New("blockdev: operation timed out")
)

// RAID failure-mode errors. They form a chain — ErrDoubleFault wraps
// ErrDegraded wraps ErrIO — so errors.Is matches at any level of specificity
// and callers written against plain ErrIO keep working.
var (
	// ErrDegraded reports that a degraded-mode operation could not complete
	// (for example, a participant was lost mid-reconstruction).
	ErrDegraded = fmt.Errorf("%w: degraded operation failed", ErrIO)
	// ErrDoubleFault reports failures exceeding the geometry's parity budget:
	// the addressed data is unrecoverable until a rebuild or repair.
	ErrDoubleFault = fmt.Errorf("%w: failures exceed parity budget", ErrDegraded)
	// ErrMediaError reports that the addressed range overlaps bytes lost to
	// media faults (drive UREs or detected bit rot) that reconstruction
	// could not cover — the per-chunk-erasure analogue of ErrDoubleFault.
	ErrMediaError = fmt.Errorf("%w: unrecoverable media error", ErrIO)
)

// Membership-fencing errors (host epochs and leases). ErrStaleEpoch wraps
// ErrFenced: a host learning it is superseded is by definition fenced, so
// callers matching the broader condition keep working.
var (
	// ErrFenced reports I/O refused because the issuing controller no longer
	// owns the volume: its lease expired or a replacement seized the epoch.
	// The controller has parked the operation's side effects; nothing was
	// applied.
	ErrFenced = fmt.Errorf("%w: controller fenced from volume", ErrIO)
	// ErrStaleEpoch reports a command a storage server rejected because it
	// carried a superseded host epoch — the positive confirmation that a
	// takeover happened while this controller was partitioned.
	ErrStaleEpoch = fmt.Errorf("%w: command carried stale host epoch", ErrFenced)
)

// Device is an asynchronous block device. Callbacks run on the simulation
// engine; implementations must never invoke a callback synchronously from
// Read/Write (use the engine's Defer), so callers can rely on stack-safe
// completion ordering.
type Device interface {
	// Size returns the device's capacity in bytes.
	Size() int64
	// Read fetches n bytes at off.
	Read(off, n int64, cb func(parity.Buffer, error))
	// Write persists data at off.
	Write(off int64, data parity.Buffer, cb func(error))
}

// CheckRange validates [off, off+n) against size.
func CheckRange(off, n, size int64) error {
	if off < 0 || n < 0 || off+n > size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+n, size)
	}
	return nil
}

// Mem is an in-memory Device with fixed per-op latency — the unit-test
// substrate for the filesystem/object-store/KV layers.
type Mem struct {
	eng     *sim.Engine
	size    int64
	data    []byte
	latency sim.Duration
}

// NewMem creates an in-memory device.
func NewMem(eng *sim.Engine, size int64, latency sim.Duration) *Mem {
	return &Mem{eng: eng, size: size, data: make([]byte, size), latency: latency}
}

// Size implements Device.
func (m *Mem) Size() int64 { return m.size }

// Read implements Device.
func (m *Mem) Read(off, n int64, cb func(parity.Buffer, error)) {
	if err := CheckRange(off, n, m.size); err != nil {
		m.eng.Defer(func() { cb(parity.Buffer{}, err) })
		return
	}
	m.eng.After(m.latency, func() {
		out := make([]byte, n)
		copy(out, m.data[off:off+n])
		cb(parity.FromBytes(out), nil)
	})
}

// Write implements Device.
func (m *Mem) Write(off int64, data parity.Buffer, cb func(error)) {
	if err := CheckRange(off, int64(data.Len()), m.size); err != nil {
		m.eng.Defer(func() { cb(err) })
		return
	}
	var snapshot []byte
	if !data.Elided() {
		snapshot = append([]byte(nil), data.Data()...)
	}
	n := int64(data.Len())
	m.eng.After(m.latency, func() {
		if snapshot != nil {
			copy(m.data[off:off+n], snapshot)
		}
		cb(nil)
	})
}

var _ Device = (*Mem)(nil)
