package blockdev

import (
	"bytes"
	"errors"
	"testing"

	"draid/internal/parity"
	"draid/internal/sim"
)

func TestMemRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewMem(eng, 1024, 10)
	var got []byte
	d.Write(100, parity.FromBytes([]byte{1, 2, 3}), func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
		d.Read(100, 3, func(b parity.Buffer, err error) { got = b.Data() })
	})
	eng.Run()
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestMemLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewMem(eng, 1024, 500)
	var at sim.Time
	d.Read(0, 1, func(parity.Buffer, error) { at = eng.Now() })
	eng.Run()
	if at != 500 {
		t.Fatalf("completed at %d, want 500", at)
	}
}

func TestMemOutOfRange(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewMem(eng, 100, 0)
	var rErr, wErr error
	d.Read(90, 20, func(_ parity.Buffer, err error) { rErr = err })
	d.Write(-5, parity.Sized(1), func(err error) { wErr = err })
	eng.Run()
	if !errors.Is(rErr, ErrOutOfRange) || !errors.Is(wErr, ErrOutOfRange) {
		t.Fatalf("rErr=%v wErr=%v", rErr, wErr)
	}
}

func TestMemCallbacksAreAsync(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewMem(eng, 100, 0)
	sync := true
	d.Read(0, 1, func(parity.Buffer, error) { sync = false })
	if !sync {
		t.Fatal("callback ran synchronously")
	}
	// Even error callbacks must be deferred.
	errSync := true
	d.Read(200, 1, func(parity.Buffer, error) { errSync = false })
	if !errSync {
		t.Fatal("error callback ran synchronously")
	}
	eng.Run()
	if sync || errSync {
		t.Fatal("callbacks never ran")
	}
}

func TestMemSnapshotsWriteBuffer(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewMem(eng, 100, 50)
	buf := []byte{7}
	d.Write(0, parity.FromBytes(buf), func(error) {})
	buf[0] = 9
	eng.Run()
	var got byte
	d.Read(0, 1, func(b parity.Buffer, _ error) { got = b.Data()[0] })
	eng.Run()
	if got != 7 {
		t.Fatalf("got %d, want snapshot value 7", got)
	}
}

func TestMemElidedWriteLeavesDataIntact(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewMem(eng, 100, 0)
	d.Write(0, parity.FromBytes([]byte{5}), func(error) {})
	eng.Run()
	d.Write(0, parity.Sized(1), func(error) {})
	eng.Run()
	var got byte
	d.Read(0, 1, func(b parity.Buffer, _ error) { got = b.Data()[0] })
	eng.Run()
	if got != 5 {
		t.Fatalf("elided write should not clobber; got %d", got)
	}
}

func TestCheckRange(t *testing.T) {
	if CheckRange(0, 10, 10) != nil {
		t.Fatal("exact fit should pass")
	}
	if CheckRange(0, 11, 10) == nil || CheckRange(-1, 1, 10) == nil || CheckRange(5, -1, 10) == nil {
		t.Fatal("out-of-range should fail")
	}
}
