package blockdev

import (
	"errors"
	"fmt"
	"testing"
)

// The fencing sentinels form a chain: ErrStaleEpoch ⊂ ErrFenced ⊂ ErrIO.
// Callers written against plain ErrIO keep working; callers that care can
// match at any level of specificity.
func TestFencingSentinelChain(t *testing.T) {
	if !errors.Is(ErrStaleEpoch, ErrFenced) {
		t.Error("ErrStaleEpoch should match ErrFenced")
	}
	if !errors.Is(ErrStaleEpoch, ErrIO) {
		t.Error("ErrStaleEpoch should match ErrIO")
	}
	if !errors.Is(ErrFenced, ErrIO) {
		t.Error("ErrFenced should match ErrIO")
	}
	if errors.Is(ErrFenced, ErrStaleEpoch) {
		t.Error("ErrFenced must not match the more specific ErrStaleEpoch")
	}
	if errors.Is(ErrTimeout, ErrFenced) || errors.Is(ErrIO, ErrFenced) {
		t.Error("unrelated sentinels must not match ErrFenced")
	}
}

// Wrapped errors keep matching through any number of %w layers — the form
// every layer of the stack uses to add context.
func TestFencingSentinelsSurviveWrapping(t *testing.T) {
	err := fmt.Errorf("core: write refused: %w",
		fmt.Errorf("op 17 rejected by server 3: %w", ErrStaleEpoch))
	for _, target := range []error{ErrStaleEpoch, ErrFenced, ErrIO} {
		if !errors.Is(err, target) {
			t.Errorf("wrapped stale-epoch error should match %v", target)
		}
	}
	fenced := fmt.Errorf("core: destage refused: %w", ErrFenced)
	if errors.Is(fenced, ErrStaleEpoch) {
		t.Error("a plain fence must not match ErrStaleEpoch")
	}
}
