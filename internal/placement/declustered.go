package placement

import "fmt"

// Declustered spreads a width-W volume over D > W cluster drives with a
// row-packed placement:
//
//	The volume's extent on every drive divides into ROWS of ChunkSize.
//	Each row packs spr = (D-1)/W whole stripes side by side: a seeded
//	Fisher–Yates permutation of the D drives assigns stripe k of the row
//	to permutation positions [k·W, (k+1)·W); the ≥1 positions past spr·W
//	are the row's distributed spare slots, idle until a rebuild or
//	rebalance relocates a chunk into them.
//
// Every chunk of a stripe therefore sits at the same absolute offset
// (base + row·ChunkSize) on W distinct drives — the same-offset invariant
// the fixed layout has — while consecutive stripes land on
// pseudo-randomly rotating drive subsets, so a failed drive intersects
// only ~Stripes·W/D stripes and its reconstruction reads and writes
// spread over the whole cluster.
//
// All post-creation relocation (rebuild onto spare slots, rebalance onto
// added drives, eviction off removed drives) is recorded as a committed
// override per (stripe, member); the seeded base placement itself is
// immutable, which keeps the layout reproducible from (seed, geometry)
// plus the override log.
type Declustered struct {
	base  int64
	chunk int64
	width int
	seed  int64

	// init is the drive count at creation: permutations cover [0, init).
	// drives grows past init via AddDrive; added drives receive chunks
	// only through committed overrides.
	init   int
	drives int

	rows    int64 // extent / chunk
	spr     int64 // stripes per row: (init-1)/width
	stripes int64 // rows * spr

	perms     map[int64][]int // row -> cached drive permutation
	overrides map[Slot]int    // committed relocations
	reserved  map[rowDrive]bool
	removed   map[int]bool
	rng       uint64 // seeds row permutations and plan hashes
}

type rowDrive struct {
	row   int64
	drive int
}

// NewDeclustered builds a declustered layout for a volume of the given
// stripe width occupying [base, base+extent) of drives 0..drives-1.
// drives must exceed width so every row keeps at least one spare slot.
func NewDeclustered(base, extent, chunk int64, width, drives int, seed int64) (*Declustered, error) {
	if width < 2 {
		return nil, fmt.Errorf("placement: declustered width %d < 2", width)
	}
	if drives <= width {
		return nil, fmt.Errorf("placement: declustered needs more drives (%d) than the stripe width (%d) for distributed spare slots", drives, width)
	}
	if chunk <= 0 || extent < chunk {
		return nil, fmt.Errorf("placement: extent %d below one chunk (%d)", extent, chunk)
	}
	d := &Declustered{
		base: base, chunk: chunk, width: width, seed: seed,
		init: drives, drives: drives,
		rows:      extent / chunk,
		spr:       int64(drives-1) / int64(width),
		perms:     make(map[int64][]int),
		overrides: make(map[Slot]int),
		reserved:  make(map[rowDrive]bool),
		removed:   make(map[int]bool),
		rng:       uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
	}
	d.stripes = d.rows * d.spr
	return d, nil
}

func (d *Declustered) Width() int     { return d.width }
func (d *Declustered) Drives() int    { return d.drives }
func (d *Declustered) Stripes() int64 { return d.stripes }

func (d *Declustered) StripeBase(stripe int64) int64 {
	return d.base + (stripe/d.spr)*d.chunk
}

// perm returns the row's seeded drive permutation, computing and caching
// it on first use.
func (d *Declustered) perm(row int64) []int {
	if p, ok := d.perms[row]; ok {
		return p
	}
	p := make([]int, d.init)
	for i := range p {
		p[i] = i
	}
	x := d.rng ^ splitmix(uint64(row)+1)
	for i := d.init - 1; i > 0; i-- {
		x = splitmix(x)
		j := int(x % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	d.perms[row] = p
	return p
}

func (d *Declustered) Drive(stripe int64, member int) int {
	if to, ok := d.overrides[Slot{stripe, member}]; ok {
		return to
	}
	row, k := stripe/d.spr, stripe%d.spr
	return d.perm(row)[k*int64(d.width)+int64(member)]
}

func (d *Declustered) Member(stripe int64, drive int) int {
	for m := 0; m < d.width; m++ {
		if d.Drive(stripe, m) == drive {
			return m
		}
	}
	return -1
}

// occupied reports whether the drive holds or is reserved for any chunk
// at the row's offset.
func (d *Declustered) occupied(row int64, drive int) bool {
	if d.reserved[rowDrive{row, drive}] {
		return true
	}
	for s := row * d.spr; s < (row+1)*d.spr; s++ {
		for m := 0; m < d.width; m++ {
			if d.Drive(s, m) == drive {
				return true
			}
		}
	}
	return false
}

func (d *Declustered) ClaimSpare(stripe int64, exclude func(drive int) bool) (int, bool) {
	row := stripe / d.spr
	var idle []int
	for dr := 0; dr < d.drives; dr++ {
		if d.removed[dr] || (exclude != nil && exclude(dr)) || d.occupied(row, dr) {
			continue
		}
		idle = append(idle, dr)
	}
	if len(idle) == 0 {
		return -1, false
	}
	pick := idle[splitmix(d.rng^splitmix(uint64(stripe)+3))%uint64(len(idle))]
	d.reserved[rowDrive{row, pick}] = true
	return pick, true
}

func (d *Declustered) ClaimDrive(stripe int64, to int) bool {
	row := stripe / d.spr
	if to < 0 || to >= d.drives || d.occupied(row, to) {
		return false
	}
	d.reserved[rowDrive{row, to}] = true
	return true
}

func (d *Declustered) Commit(stripe int64, member, drive int) {
	delete(d.reserved, rowDrive{stripe / d.spr, drive})
	if row, k := stripe/d.spr, stripe%d.spr; d.perm(row)[k*int64(d.width)+int64(member)] == drive {
		// Relocating back to the seeded position: the override is the
		// identity, so drop it instead of recording it.
		delete(d.overrides, Slot{stripe, member})
		return
	}
	d.overrides[Slot{stripe, member}] = drive
}

func (d *Declustered) Release(stripe int64, drive int) {
	delete(d.reserved, rowDrive{stripe / d.spr, drive})
}

func (d *Declustered) Slots(drive int) []Slot {
	var out []Slot
	for s := int64(0); s < d.stripes; s++ {
		for m := 0; m < d.width; m++ {
			if d.Drive(s, m) == drive {
				out = append(out, Slot{s, m})
			}
		}
	}
	return out
}

func (d *Declustered) AddDrive() int {
	idx := d.drives
	d.drives++
	delete(d.removed, idx)
	return idx
}

func (d *Declustered) PlanAdd(drive int) []Move {
	used := d.spr * int64(d.width)
	var moves []Move
	for row := int64(0); row < d.rows; row++ {
		// One seeded draw per row over the grown drive count: landing on
		// one of the `used` occupied positions moves that chunk to the new
		// drive, so the new drive converges to rows·used/drives chunks —
		// its fair share.
		r := splitmix(d.rng ^ splitmix(uint64(row)+7) ^ splitmix(uint64(drive)+11)) % uint64(d.drives)
		if int64(r) >= used {
			continue
		}
		stripe := row*d.spr + int64(r)/int64(d.width)
		member := int(int64(r) % int64(d.width))
		if d.Drive(stripe, member) == drive {
			continue
		}
		moves = append(moves, Move{Stripe: stripe, Member: member, To: drive})
	}
	return moves
}

func (d *Declustered) PlanRemove(drive int) []Slot { return d.Slots(drive) }

func (d *Declustered) SetRemoved(drive int, removed bool) {
	if removed {
		d.removed[drive] = true
	} else {
		delete(d.removed, drive)
	}
}

// splitmix is the SplitMix64 output function — the layout's only source
// of pseudo-randomness, so placements are a pure function of the seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
