// Package placement maps a volume's logical stripes onto physical drives.
//
// A Layout answers one question for every (stripe, member) pair of a
// volume: which physical drive holds that chunk, and at which byte offset.
// The geometry (internal/raid) keeps deciding WHICH member of a stripe is
// data, P, or Q — left-symmetric rotation in member space — while the
// layout decides WHERE each member lives in drive space. The two layouts:
//
//   - Fixed: today's contiguous window. Member m of every stripe lives on
//     drive m, at DriveBase + stripe*ChunkSize. Rebuild of a failed drive
//     reads the same width-1 survivors for every stripe.
//   - Declustered: seeded permutation-based parity declustering (à la ZFS
//     dRAID). A volume of width W spreads its stripes over D > W cluster
//     drives; a failed drive holds only ~Stripes·W/D chunks and every
//     surviving drive contributes reads AND receives reconstructed writes
//     (many-to-many), so rebuild time shrinks ~1/D as the cluster grows.
//
// Both layouts place every chunk of one stripe at the SAME drive offset
// (StripeBase). Server-side reduce and reconstruction key their
// accumulators by absolute drive offset, so this invariant is what lets a
// declustered volume reuse the entire wire protocol unchanged.
package placement

// Slot names one chunk of a volume: stripe s, member m (role position in
// the stripe's geometry, 0..Width-1).
type Slot struct {
	Stripe int64
	Member int
}

// Move is a planned chunk migration: Slot's chunk relocates to drive To.
type Move struct {
	Stripe int64
	Member int
	To     int
}

// Layout maps (stripe, member) to (drive, offset).
type Layout interface {
	// Width is the stripe width (geometry members per stripe).
	Width() int
	// Drives is the number of physical drives the layout may address.
	Drives() int
	// Stripes is the volume's stripe count (fixed at creation).
	Stripes() int64
	// StripeBase is the absolute drive offset shared by every member chunk
	// of the stripe.
	StripeBase(stripe int64) int64
	// Drive returns the physical drive holding member m of the stripe.
	Drive(stripe int64, member int) int
	// Member returns which member of the stripe lives on the drive, or -1
	// if the stripe has no chunk there.
	Member(stripe int64, drive int) int
}

// Dynamic is the mutable extension the declustered layout implements:
// chunk-level relocation (rebuild onto distributed spare slots, rebalance
// onto added drives, eviction off removed drives).
type Dynamic interface {
	Layout
	// ClaimSpare picks an idle drive for the stripe's row — one holding no
	// chunk at this stripe's offset — excluding drives the caller rejects
	// (failed ones) and drives already removed. The slot is reserved until
	// Commit or Release, so concurrent migrations in the same row cannot
	// collide. Deterministic given identical layout state.
	ClaimSpare(stripe int64, exclude func(drive int) bool) (int, bool)
	// ClaimDrive reserves a specific drive for the stripe's row, returning
	// false when that drive already holds or is reserved for a chunk at
	// this offset.
	ClaimDrive(stripe int64, to int) bool
	// Commit relocates member m of the stripe to the drive (releasing any
	// reservation for it). All future Drive/Member answers reflect it.
	Commit(stripe int64, member, drive int)
	// Release cancels a reservation made by ClaimSpare/ClaimDrive.
	Release(stripe int64, drive int)
	// Slots lists every chunk currently placed on the drive, in stripe
	// order.
	Slots(drive int) []Slot
	// AddDrive grows the addressable drive set by one and returns the new
	// drive's index. The new drive starts empty; PlanAdd computes its fair
	// share of existing chunks.
	AddDrive() int
	// PlanAdd plans the rebalance onto a newly added drive: at most one
	// chunk per row moves there, chosen by seeded hash so the new drive
	// converges to ~Stripes·Width/Drives chunks.
	PlanAdd(drive int) []Move
	// PlanRemove lists the chunks that must migrate off the drive before
	// it can be retired (its current Slots).
	PlanRemove(drive int) []Slot
	// SetRemoved marks a drive retired: ClaimSpare and PlanAdd never
	// target it again.
	SetRemoved(drive int, removed bool)
}

// Fixed is the classic contiguous-window layout: member m of every stripe
// on drive m, stripes packed front to back from the volume's base. It
// reproduces the pre-layout arithmetic bit for bit: StripeBase(s) =
// base + s*ChunkSize, Drive(s, m) = m.
type Fixed struct {
	base    int64
	chunk   int64
	width   int
	stripes int64
}

// NewFixed builds the contiguous layout for a volume occupying
// [base, base+extent) of drives 0..width-1.
func NewFixed(base, chunk int64, width int, extent int64) *Fixed {
	return &Fixed{base: base, chunk: chunk, width: width, stripes: extent / chunk}
}

func (f *Fixed) Width() int     { return f.width }
func (f *Fixed) Drives() int    { return f.width }
func (f *Fixed) Stripes() int64 { return f.stripes }

func (f *Fixed) StripeBase(stripe int64) int64 { return f.base + stripe*f.chunk }

func (f *Fixed) Drive(stripe int64, member int) int { return member }

func (f *Fixed) Member(stripe int64, drive int) int {
	if drive < 0 || drive >= f.width {
		return -1
	}
	return drive
}
