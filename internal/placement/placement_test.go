package placement

import "testing"

// TestFixedMatchesLegacyArithmetic pins Fixed to the pre-layout address
// math: member m on drive m, stripe s at base + s*chunk, stripes =
// extent/chunk.
func TestFixedMatchesLegacyArithmetic(t *testing.T) {
	const base, chunk, width, extent = 4096, 512, 5, 16 * 512
	f := NewFixed(base, chunk, width, extent)
	if f.Stripes() != 16 {
		t.Fatalf("stripes = %d, want 16", f.Stripes())
	}
	if f.Drives() != width || f.Width() != width {
		t.Fatalf("drives/width = %d/%d, want %d", f.Drives(), f.Width(), width)
	}
	for s := int64(0); s < f.Stripes(); s++ {
		if got, want := f.StripeBase(s), int64(base+s*chunk); got != want {
			t.Fatalf("StripeBase(%d) = %d, want %d", s, got, want)
		}
		for m := 0; m < width; m++ {
			if f.Drive(s, m) != m {
				t.Fatalf("Drive(%d,%d) = %d, want %d", s, m, f.Drive(s, m), m)
			}
			if f.Member(s, m) != m {
				t.Fatalf("Member(%d,%d) = %d, want %d", s, m, f.Member(s, m), m)
			}
		}
	}
	if f.Member(0, width) != -1 || f.Member(0, -1) != -1 {
		t.Fatalf("Member out of range should be -1")
	}
}

func newTestDeclustered(t *testing.T, width, drives int, rows int64, seed int64) *Declustered {
	t.Helper()
	const chunk = 1 << 10
	d, err := NewDeclustered(0, rows*chunk, chunk, width, drives, seed)
	if err != nil {
		t.Fatalf("NewDeclustered: %v", err)
	}
	return d
}

// TestDeclusteredInvariants checks the structural properties every stripe
// placement must satisfy: W distinct drives per stripe, a shared stripe
// base, no two chunks of one row sharing a drive, and Member/Drive
// inverse consistency.
func TestDeclusteredInvariants(t *testing.T) {
	for _, tc := range []struct{ width, drives int }{{3, 5}, {4, 6}, {4, 13}, {5, 11}} {
		d := newTestDeclustered(t, tc.width, tc.drives, 32, 42)
		spr := int64(tc.drives-1) / int64(tc.width)
		if d.Stripes() != 32*spr {
			t.Fatalf("w=%d d=%d: stripes = %d, want %d", tc.width, tc.drives, d.Stripes(), 32*spr)
		}
		for row := int64(0); row < 32; row++ {
			seen := map[int]int64{}
			for s := row * spr; s < (row+1)*spr; s++ {
				if got, want := d.StripeBase(s), row*(1<<10); got != want {
					t.Fatalf("StripeBase(%d) = %d, want %d", s, got, want)
				}
				for m := 0; m < tc.width; m++ {
					dr := d.Drive(s, m)
					if dr < 0 || dr >= tc.drives {
						t.Fatalf("Drive(%d,%d) = %d out of range", s, m, dr)
					}
					if prev, dup := seen[dr]; dup {
						t.Fatalf("row %d: drive %d holds chunks of stripes %d and %d", row, dr, prev, s)
					}
					seen[dr] = s
					if back := d.Member(s, dr); back != m {
						t.Fatalf("Member(%d,%d) = %d, want %d", s, dr, back, m)
					}
				}
			}
			if len(seen) > tc.drives-1 {
				t.Fatalf("row %d: no idle spare slot (%d drives used of %d)", row, len(seen), tc.drives)
			}
		}
	}
}

// TestDeclusteredDeterministicAndSpread verifies that the same seed
// reproduces the same placement, different seeds differ, and chunks
// spread roughly evenly over the drives.
func TestDeclusteredDeterministicAndSpread(t *testing.T) {
	const width, drives, rows = 4, 9, 256
	a := newTestDeclustered(t, width, drives, rows, 7)
	b := newTestDeclustered(t, width, drives, rows, 7)
	c := newTestDeclustered(t, width, drives, rows, 8)
	differ := false
	counts := make([]int, drives)
	for s := int64(0); s < a.Stripes(); s++ {
		for m := 0; m < width; m++ {
			if a.Drive(s, m) != b.Drive(s, m) {
				t.Fatalf("same seed diverged at (%d,%d)", s, m)
			}
			if a.Drive(s, m) != c.Drive(s, m) {
				differ = true
			}
			counts[a.Drive(s, m)]++
		}
	}
	if !differ {
		t.Fatalf("seeds 7 and 8 produced identical placements")
	}
	fair := int(a.Stripes()) * width / drives
	for dr, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("drive %d holds %d chunks, fair share %d", dr, n, fair)
		}
	}
}

// TestDeclusteredFailedDriveShare verifies the declustering payoff: one
// drive intersects only ~Stripes·W/D stripes, so tripling the drive
// count cuts a failed drive's chunk count to roughly a third.
func TestDeclusteredFailedDriveShare(t *testing.T) {
	const width = 4
	small := newTestDeclustered(t, width, 6, 240, 3) // spr 1 -> 240 stripes
	big := newTestDeclustered(t, width, 18, 60, 3)   // spr 4 -> 240 stripes
	ns, nb := len(small.Slots(0)), len(big.Slots(0))
	if ns == 0 || nb == 0 {
		t.Fatalf("drive 0 holds no chunks (%d, %d)", ns, nb)
	}
	if ratio := float64(nb) / float64(ns); ratio > 0.6 {
		t.Fatalf("3x drives left %.2f of the chunks on one drive, want <= 0.6 (%d vs %d)", ratio, nb, ns)
	}
}

// TestDeclusteredCommitAndClaim exercises the relocation machinery:
// ClaimSpare reserves an idle row slot, Commit rewires Drive/Member and
// clears the reservation, Release cancels, and claims in one row never
// collide.
func TestDeclusteredCommitAndClaim(t *testing.T) {
	d := newTestDeclustered(t, 4, 14, 16, 5) // spr 3, 2 idle slots per row
	stripe := int64(4)                       // row 1
	from := d.Drive(stripe, 2)

	sp1, ok := d.ClaimSpare(stripe, nil)
	if !ok {
		t.Fatalf("no spare slot in a 13-drive row")
	}
	if d.occupied(stripe/d.spr, sp1) != true {
		t.Fatalf("claimed drive not reserved")
	}
	// A second claim in the same row must pick a different drive.
	sp2, ok := d.ClaimSpare(stripe+1, nil)
	if !ok || sp2 == sp1 {
		t.Fatalf("second claim returned %d (first %d, ok %v)", sp2, sp1, ok)
	}
	d.Release(stripe+1, sp2)

	d.Commit(stripe, 2, sp1)
	if d.Drive(stripe, 2) != sp1 {
		t.Fatalf("Drive after commit = %d, want %d", d.Drive(stripe, 2), sp1)
	}
	if d.Member(stripe, sp1) != 2 || d.Member(stripe, from) != -1 {
		t.Fatalf("Member not rewired: on new %d, on old %d", d.Member(stripe, sp1), d.Member(stripe, from))
	}
	// Excluded drives are never picked.
	if sp, ok := d.ClaimSpare(stripe, func(int) bool { return true }); ok {
		t.Fatalf("exclude-all still claimed %d", sp)
	}
	// Committing back to the seeded position drops the override.
	d.Commit(stripe, 2, from)
	if len(d.overrides) != 0 {
		t.Fatalf("identity commit left %d overrides", len(d.overrides))
	}
}

// TestDeclusteredAddRemove exercises online expansion planning: AddDrive
// grows the set, PlanAdd moves roughly a fair share onto the new drive
// (at most one chunk per row), and after committing PlanRemove's moves
// the removed drive is empty.
func TestDeclusteredAddRemove(t *testing.T) {
	const width, drives, rows = 4, 6, 128
	d := newTestDeclustered(t, width, drives, rows, 9)
	nd := d.AddDrive()
	if nd != drives || d.Drives() != drives+1 {
		t.Fatalf("AddDrive = %d (drives %d), want %d (%d)", nd, d.Drives(), drives, drives+1)
	}
	moves := d.PlanAdd(nd)
	if len(moves) == 0 {
		t.Fatalf("PlanAdd moved nothing")
	}
	perRow := map[int64]int{}
	for _, mv := range moves {
		if mv.To != nd {
			t.Fatalf("move targets drive %d, want %d", mv.To, nd)
		}
		perRow[mv.Stripe/d.spr]++
		if !d.ClaimDrive(mv.Stripe, mv.To) {
			t.Fatalf("ClaimDrive refused planned move %+v", mv)
		}
		d.Commit(mv.Stripe, mv.Member, mv.To)
	}
	for row, n := range perRow {
		if n > 1 {
			t.Fatalf("row %d received %d chunks in one rebalance", row, n)
		}
	}
	fair := int(d.Stripes()) * width / d.Drives()
	if got := len(d.Slots(nd)); got < fair/2 || got > fair*2 {
		t.Fatalf("new drive holds %d chunks, fair share %d", got, fair)
	}

	// Retire drive 0: migrate everything off it via ClaimSpare.
	victims := d.PlanRemove(0)
	d.SetRemoved(0, true)
	for _, sl := range victims {
		sp, ok := d.ClaimSpare(sl.Stripe, nil)
		if !ok {
			t.Fatalf("no spare for %+v", sl)
		}
		if sp == 0 {
			t.Fatalf("ClaimSpare picked the removed drive")
		}
		d.Commit(sl.Stripe, sl.Member, sp)
	}
	if left := d.Slots(0); len(left) != 0 {
		t.Fatalf("removed drive still holds %d chunks", len(left))
	}
}
