package conformancetest

import (
	"testing"

	"draid"
)

func mustNew(t *testing.T, cfg draid.Config) *draid.Array {
	t.Helper()
	a, err := draid.New(cfg)
	if err != nil {
		t.Fatalf("draid.New: %v", err)
	}
	return a
}

func TestConformanceSim(t *testing.T) {
	Run(t, func(t *testing.T, cfg draid.Config) *draid.Array {
		cfg.Backend = draid.BackendSim
		return mustNew(t, cfg)
	})
}

func TestConformanceRealtimeChan(t *testing.T) {
	Run(t, func(t *testing.T, cfg draid.Config) *draid.Array {
		cfg.Backend = draid.BackendRealtime
		return mustNew(t, cfg)
	})
}

func TestConformanceRealtimeTCP(t *testing.T) {
	Run(t, func(t *testing.T, cfg draid.Config) *draid.Array {
		cfg.Backend = draid.BackendRealtime
		cfg.Realtime.TCP = true
		return mustNew(t, cfg)
	})
}

func TestConformanceRealtimeFile(t *testing.T) {
	Run(t, func(t *testing.T, cfg draid.Config) *draid.Array {
		cfg.Backend = draid.BackendRealtime
		cfg.Realtime.Dir = t.TempDir()
		return mustNew(t, cfg)
	})
}
