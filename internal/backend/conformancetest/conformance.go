// Package conformancetest is the cross-backend contract suite: every
// Transport/Drive backend must expose identical application-visible
// semantics — healthy round trips, degraded reads, rebuild, media errors,
// context cancellation — even though the substrates (virtual time vs.
// goroutines and wall clocks) share no code below the protocol layer.
//
// Backends that cannot support a scenario (for example, media-fault
// injection on file-backed drives) must report draid.ErrUnsupported from the
// injection APIs; the suite then skips that scenario rather than failing it.
package conformancetest

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"draid"
)

// Factory builds an array for one backend under test. The suite passes the
// workload shape (drives, chunk size, capacity, integrity, ...); the factory
// fills in Backend/Realtime and returns the assembled array. The suite
// closes returned arrays itself.
type Factory func(t *testing.T, cfg draid.Config) *draid.Array

// baseConfig is the workload shape every scenario starts from: a small
// RAID-5 array whose extents keep realtime rebuilds fast.
func baseConfig() draid.Config {
	return draid.Config{
		Drives:        5,
		ChunkSize:     16 << 10,
		DriveCapacity: 1 << 20,
		Seed:          7,
	}
}

// pattern fills a deterministic, offset-dependent payload so misdirected
// reads cannot pass.
func pattern(off int64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte((off + int64(i)) * 131 % 251)
	}
	return out
}

// Run executes the full conformance suite against one backend.
func Run(t *testing.T, f Factory) {
	t.Run("HealthyRoundTrip", func(t *testing.T) {
		a := f(t, baseConfig())
		defer a.Close()
		// Full-stripe, partial-stripe, and sub-chunk shapes.
		for _, c := range []struct{ off, n int64 }{
			{0, 64 << 10},        // full stripe
			{64 << 10, 20 << 10}, // stripe-crossing partial
			{200 << 10, 3000},    // sub-chunk, unaligned
		} {
			want := pattern(c.off, int(c.n))
			if err := a.WriteSync(c.off, want); err != nil {
				t.Fatalf("write [%d,%d): %v", c.off, c.off+c.n, err)
			}
			got, err := a.ReadSync(c.off, c.n)
			if err != nil {
				t.Fatalf("read [%d,%d): %v", c.off, c.off+c.n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("read [%d,%d): payload mismatch", c.off, c.off+c.n)
			}
		}
	})

	t.Run("ContextPreCancelled", func(t *testing.T) {
		a := f(t, baseConfig())
		defer a.Close()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := a.WriteContext(ctx, 0, pattern(0, 4096)); !errors.Is(err, context.Canceled) {
			t.Fatalf("write on cancelled context: got %v, want context.Canceled", err)
		}
		if _, err := a.ReadContext(ctx, 0, 4096); !errors.Is(err, context.Canceled) {
			t.Fatalf("read on cancelled context: got %v, want context.Canceled", err)
		}
	})

	t.Run("ContextDeadlineOnCrashedDrive", func(t *testing.T) {
		cfg := baseConfig()
		cfg.OpDeadline = 30 * time.Second // far beyond the context budget
		a := f(t, cfg)
		defer a.Close()
		if err := a.WriteSync(0, pattern(0, 64<<10)); err != nil {
			t.Fatalf("priming write: %v", err)
		}
		// The host does not know the drive is gone; only the context bounds
		// the wait.
		a.CrashDrive(1)
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		if err := a.WriteContext(ctx, 0, pattern(0, 64<<10)); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("write past context deadline: got %v, want context.DeadlineExceeded", err)
		}
	})

	t.Run("DegradedReadAndWrite", func(t *testing.T) {
		a := f(t, baseConfig())
		defer a.Close()
		want := pattern(0, 128<<10)
		if err := a.WriteSync(0, want); err != nil {
			t.Fatalf("healthy write: %v", err)
		}
		a.FailDrive(1)
		got, err := a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("degraded read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("degraded read: payload mismatch (reconstruction wrong)")
		}
		want2 := pattern(1<<20, 80<<10)
		if err := a.WriteSync(1<<20, want2); err != nil {
			t.Fatalf("degraded write: %v", err)
		}
		got2, err := a.ReadSync(1<<20, int64(len(want2)))
		if err != nil {
			t.Fatalf("degraded read-back: %v", err)
		}
		if !bytes.Equal(got2, want2) {
			t.Fatal("degraded read-back: payload mismatch")
		}
	})

	t.Run("RebuildRestoresRedundancy", func(t *testing.T) {
		a := f(t, baseConfig())
		defer a.Close()
		want := pattern(4096, 96<<10)
		if err := a.WriteSync(4096, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		a.FailDrive(2)
		if err := a.RebuildDrive(2, 0); err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if failed := a.FailedDrives(); len(failed) != 0 {
			t.Fatalf("members still failed after rebuild: %v", failed)
		}
		// The rebuilt member must carry real redundancy: fail a different
		// drive and reconstruct through the rebuilt one.
		a.FailDrive(0)
		got, err := a.ReadSync(4096, int64(len(want)))
		if err != nil {
			t.Fatalf("read after rebuild with another member failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read through rebuilt member: payload mismatch")
		}
	})

	t.Run("DoubleFaultFails", func(t *testing.T) {
		a := f(t, baseConfig())
		defer a.Close()
		if err := a.WriteSync(0, pattern(0, 64<<10)); err != nil {
			t.Fatalf("write: %v", err)
		}
		a.FailDrive(0)
		a.FailDrive(1)
		if _, err := a.ReadSync(0, 64<<10); !errors.Is(err, draid.ErrIO) {
			t.Fatalf("read past the parity budget: got %v, want an ErrIO chain", err)
		}
	})

	t.Run("MediaErrorRepairOnRead", func(t *testing.T) {
		cfg := baseConfig()
		cfg.Integrity = true
		a := f(t, cfg)
		defer a.Close()
		want := pattern(0, 128<<10)
		if err := a.WriteSync(0, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Stay within one chunk: a range crossing members of one stripe
		// would be a genuine double fault on every backend.
		if err := a.Inject().MediaError(8<<10, 4<<10); err != nil {
			if errors.Is(err, draid.ErrUnsupported) {
				t.Skipf("backend does not support media injection: %v", err)
			}
			t.Fatalf("inject media error: %v", err)
		}
		got, err := a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("read over media error: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read over media error: payload mismatch (reconstruction wrong)")
		}
	})

	t.Run("BitRotCaughtByIntegrity", func(t *testing.T) {
		cfg := baseConfig()
		cfg.Integrity = true
		a := f(t, cfg)
		defer a.Close()
		want := pattern(0, 64<<10)
		if err := a.WriteSync(0, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := a.Inject().BitRot(4<<10, 8<<10); err != nil {
			if errors.Is(err, draid.ErrUnsupported) {
				t.Skipf("backend does not support bit-rot injection: %v", err)
			}
			t.Fatalf("inject bit rot: %v", err)
		}
		got, err := a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("read over bit rot: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read over bit rot: checksums did not trigger reconstruction")
		}
	})

	t.Run("SlowDriveHedgedRead", func(t *testing.T) {
		cfg := baseConfig()
		cfg.Hedge = draid.HedgeConfig{Policy: draid.HedgeFixedDelay, Delay: 10 * time.Millisecond}
		a := f(t, cfg)
		defer a.Close()
		// Four stripes, so member 1 serves data chunks in several of them no
		// matter where the parity rotation places it.
		want := pattern(0, 256<<10)
		if err := a.WriteSync(0, want); err != nil {
			t.Fatalf("priming write: %v", err)
		}
		// Member 1 now stalls for the full 2s of every 2s cycle: any chunk
		// read it serves lands seconds late. The hedge must solve k-of-n
		// through parity well inside the context budget instead of waiting
		// out the straggler.
		if err := a.Inject().SlowDrive(1, draid.SlowProfile{
			Kind: draid.SlowStall, Stall: 2 * time.Second, Period: 2 * time.Second,
		}); err != nil {
			if errors.Is(err, draid.ErrUnsupported) {
				t.Skipf("backend does not support slow-drive injection: %v", err)
			}
			t.Fatalf("inject slow drive: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		got, err := a.ReadContext(ctx, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("hedged read under slow drive: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("hedged read: payload mismatch (parity solve wrong)")
		}
		if a.Stats().HedgedReads == 0 {
			t.Fatal("read completed without hedging; expected a hedged parity solve")
		}
	})

	t.Run("WritebackStagedCrashRecovery", func(t *testing.T) {
		cfg := baseConfig()
		cfg.WriteBack = true
		cfg.StageMB = 1
		cfg.CacheMB = 1
		a := f(t, cfg)
		defer a.Close()
		base := pattern(0, 128<<10)
		if err := a.WriteSync(0, base); err != nil {
			t.Fatalf("priming write: %v", err)
		}
		if err := a.Flush(); err != nil {
			t.Fatalf("priming flush: %v", err)
		}
		// Sub-stripe writes acknowledged from the staging buffer; some may
		// still be staged (or mid-destage) when the controller dies.
		staged := []struct{ off, n int64 }{
			{4 << 10, 6 << 10},   // sub-chunk
			{70 << 10, 9 << 10},  // chunk-crossing partial
			{100 << 10, 2 << 10}, // second write into the same stripe
		}
		want := append([]byte(nil), base...)
		for _, c := range staged {
			p := pattern(c.off+1, int(c.n)) // +1: differs from the primer
			if err := a.WriteSync(c.off, p); err != nil {
				t.Fatalf("staged write [%d,%d): %v", c.off, c.off+c.n, err)
			}
			copy(want[c.off:], p)
		}
		// Kill the controller; the replacement adopts the intent log, fences
		// the dead session, and resyncs — zero acknowledged writes may be
		// lost.
		if _, err := a.FailoverHost(); err != nil {
			t.Fatalf("host failover: %v", err)
		}
		got, err := a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after failover: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read after failover: acknowledged staged writes lost")
		}
		// Destage everything and read back from the drives proper.
		if err := a.Flush(); err != nil {
			t.Fatalf("flush after failover: %v", err)
		}
		got, err = a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after flush: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read after flush: destaged bytes differ")
		}
	})

	t.Run("DeclusteredCrashAndRebuild", func(t *testing.T) {
		// Width-3 parity groups declustered over 5 physical drives: a drive
		// crash must be survivable and the many-to-many rebuild (relocation
		// into distributed spare slots, no spare endpoint) must restore
		// redundancy identically on every backend.
		cfg := baseConfig()
		cfg.Drives = 3
		cfg.Declustered = true
		cfg.ClusterDrives = 5
		a := f(t, cfg)
		defer a.Close()
		want := pattern(0, 160<<10)
		if err := a.WriteSync(0, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		a.FailDrive(2)
		got, err := a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("degraded read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("degraded read: payload mismatch")
		}
		if err := a.RebuildDrive(2, 0); err != nil {
			t.Fatalf("declustered rebuild: %v", err)
		}
		// Redundancy must be whole again: a second failure on a different
		// drive reconstructs through the relocated chunks.
		a.FailDrive(4)
		got, err = a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after rebuild with second drive failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read after declustered rebuild: payload mismatch")
		}
	})

	t.Run("PartitionedHostFailover", func(t *testing.T) {
		// The tentpole robustness scenario: the host is partitioned from every
		// drive mid-workload, a replacement seizes the volume at a higher
		// epoch, the partition heals — and no acknowledged write may be lost,
		// while nothing the stale host attempted may surface after takeover.
		cfg := baseConfig()
		cfg.EpochFencing = true
		cfg.HostLease = 50 * time.Millisecond
		cfg.WriteBack = true
		cfg.StageMB = 1
		cfg.OpDeadline = 50 * time.Millisecond
		a := f(t, cfg)
		defer a.Close()
		base := pattern(0, 128<<10)
		if err := a.WriteSync(0, base); err != nil {
			t.Fatalf("priming write: %v", err)
		}
		if err := a.Flush(); err != nil {
			t.Fatalf("priming flush: %v", err)
		}
		if err := a.Inject().IsolateHost(); err != nil {
			if errors.Is(err, draid.ErrUnsupported) {
				t.Skipf("backend does not support partition injection: %v", err)
			}
			t.Fatalf("isolate host: %v", err)
		}
		want := append([]byte(nil), base...)
		// A sub-stripe write is acknowledged from the staging buffer even
		// while the fabric is cut; its destages fail until takeover. Once
		// acknowledged it must survive everything that follows.
		ackd := pattern(5<<10, 6<<10)
		if err := a.WriteSync(4<<10, ackd); err != nil {
			t.Fatalf("staged write during partition: %v", err)
		}
		copy(want[4<<10:], ackd)
		// A full-stripe write goes write-through into the cut fabric and must
		// fail — never be silently dropped as acknowledged. (The exact error
		// depends on what the partition starved first: a plain op timeout, or
		// a degraded-path failure after timeouts struck members out.)
		if err := a.WriteSync(64<<10, pattern(1, 64<<10)); err == nil {
			t.Fatal("write-through during partition unexpectedly succeeded")
		}
		if err := a.Inject().HealHostIsolation(); err != nil {
			t.Fatalf("heal partition: %v", err)
		}
		// The replacement seizes the volume without crashing the predecessor:
		// the epoch bump plus the servers' stale-epoch rejections are what
		// fence the zombie out.
		if _, err := a.SeizeHost(); err != nil {
			t.Fatalf("seize host: %v", err)
		}
		if got := a.HostEpoch(); got != 2 {
			t.Fatalf("replacement epoch: got %d, want 2", got)
		}
		if err := a.Flush(); err != nil {
			t.Fatalf("flush after takeover: %v", err)
		}
		got, err := a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after takeover: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read after takeover: acknowledged write lost or stale write applied")
		}
	})

	t.Run("DeclusteredRaid6RebuildThroughQ", func(t *testing.T) {
		// Double fault on a declustered RAID-6 volume: reads must solve
		// through P+Q, and the many-to-many rebuild must relocate both failed
		// drives' chunks — Q parity included — into distributed spare slots,
		// leaving redundancy whole enough to survive two further failures.
		cfg := baseConfig()
		cfg.Level = draid.Raid6
		cfg.Drives = 4
		cfg.Declustered = true
		cfg.ClusterDrives = 7
		a := f(t, cfg)
		defer a.Close()
		want := pattern(0, 160<<10)
		if err := a.WriteSync(0, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		a.FailDrive(1)
		a.FailDrive(3)
		got, err := a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("double-degraded read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("double-degraded read: P+Q solve wrong")
		}
		if err := a.RebuildDrive(1, 0); err != nil {
			t.Fatalf("rebuild first failed drive: %v", err)
		}
		if err := a.RebuildDrive(3, 0); err != nil {
			t.Fatalf("rebuild second failed drive: %v", err)
		}
		// Redundancy must be fully restored: two fresh failures reconstruct
		// through the relocated chunks (Q among them).
		a.FailDrive(0)
		a.FailDrive(4)
		got, err = a.ReadSync(0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after rebuild with two more drives failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read after RAID-6 declustered rebuild: payload mismatch")
		}
	})

	t.Run("OutOfRange", func(t *testing.T) {
		a := f(t, baseConfig())
		defer a.Close()
		if _, err := a.ReadSync(a.Size(), 4096); !errors.Is(err, draid.ErrOutOfRange) {
			t.Fatalf("read past device: got %v, want ErrOutOfRange", err)
		}
		if err := a.WriteSync(a.Size()-1024, pattern(0, 4096)); !errors.Is(err, draid.ErrOutOfRange) {
			t.Fatalf("write past device: got %v, want ErrOutOfRange", err)
		}
	})
}
