package backend

import (
	"math/rand"

	"draid/internal/sim"
)

// EngineProvider is implemented by runners backed by the deterministic
// discrete-event engine. Simulation-only layers (CPU-cost pools, tracing,
// the experiment harness) unwrap it to reach the concrete engine; its
// absence is how code detects a non-deterministic backend.
type EngineProvider interface {
	SimEngine() *sim.Engine
}

// SimRunner adapts a *sim.Engine to the Runner interface by direct
// delegation. It adds no events and perturbs no ordering, so a run through
// the adapter is byte-identical to one against the bare engine.
//
// An adapter (rather than methods on Engine itself) is needed because
// Engine's After/AfterBG return the concrete *sim.Timer, which does not
// satisfy the interface's `Timer` return type.
func SimRunner(e *sim.Engine) Runner { return simRunner{e} }

type simRunner struct{ eng *sim.Engine }

func (r simRunner) SimEngine() *sim.Engine { return r.eng }

func (r simRunner) Now() sim.Time                           { return r.eng.Now() }
func (r simRunner) Defer(fn func())                         { r.eng.Defer(fn) }
func (r simRunner) After(d sim.Duration, fn func()) Timer   { return r.eng.After(d, fn) }
func (r simRunner) AfterBG(d sim.Duration, fn func()) Timer { return r.eng.AfterBG(d, fn) }
func (r simRunner) Rand() *rand.Rand                        { return r.eng.Rand() }
func (r simRunner) Run()                                    { r.eng.Run() }
func (r simRunner) RunFor(d sim.Duration)                   { r.eng.RunFor(d) }
func (r simRunner) RunUntil(t sim.Time)                     { r.eng.RunUntil(t) }

// Call runs fn inline: the caller of a single-goroutine simulation is
// already its execution domain.
func (r simRunner) Call(fn func()) { fn() }
