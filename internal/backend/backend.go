// Package backend defines the substrate interfaces the dRAID protocol runs
// on: a Runtime (event scheduling and time), a Transport (capsule delivery
// between the host and the storage targets, with the NVMe-oF command framing
// and checksum semantics), a Drive (block media with fault and media-error
// injection), and an Executor (CPU cost accounting).
//
// Two implementations exist:
//
//   - the deterministic simulation (internal/sim + internal/simnet +
//     internal/ssd, adapted by Engine in this package): single-goroutine
//     virtual time, byte-identical runs for a given seed — the golden-test
//     and torture substrate;
//   - the real-time backend (internal/backend/realtime): one goroutine per
//     node, wall-clock timers, in-process channels or TCP loopback for the
//     fabric, and memory- or file-backed media — the same protocol code
//     doing actual I/O.
//
// internal/core, internal/cluster, and internal/repair speak only these
// interfaces; nothing above this package may assume which substrate is
// underneath (the simulation-only experiment harness and baselines are the
// deliberate exception).
package backend

import (
	"errors"
	"fmt"
	"math/rand"

	"draid/internal/integrity"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/sim"
)

// NodeID identifies an endpoint on the transport: HostID for the host,
// 0..n-1 for storage targets.
type NodeID int

// HostID is the host's NodeID.
const HostID NodeID = -1

// VolumeID identifies one virtual array (an NVMe namespace) among the many
// that may share a cluster. It rides in every capsule's NSID field, so the
// shared host endpoint can demultiplex completions to the owning controller
// and the servers can keep per-volume reduce state apart.
type VolumeID uint32

// Message is a capsule plus its (possibly elided) payload.
type Message struct {
	Cmd     nvmeof.Command
	Payload parity.Buffer
	From    NodeID
}

// Handler consumes messages delivered to a transport endpoint.
type Handler func(Message)

// Timer is a handle to a scheduled event that can be cancelled. Stop reports
// whether the event had not yet fired; stopping twice is a no-op.
type Timer interface {
	Stop() bool
}

// Runtime is the event-scheduling surface a controller runs on. On the
// simulation it is the discrete-event engine (virtual time, deterministic
// ordering); on the real-time backend it is one node's event loop
// (wall-clock time, per-loop FIFO ordering only).
//
// All controller state must be touched only from Runtime callbacks — the
// single-threaded discipline that is free on the simulation and enforced by
// loop confinement on the real-time backend.
type Runtime interface {
	// Now returns the current time in nanoseconds since the run started
	// (virtual on the simulation, wall-clock on realtime).
	Now() sim.Time
	// Defer schedules fn to run after the work already queued at this
	// instant — the "post to the event loop" primitive.
	Defer(fn func())
	// After schedules fn to run d nanoseconds from now as foreground work:
	// a Runner's Run does not return while it is pending.
	After(d sim.Duration, fn func()) Timer
	// AfterBG schedules fn as background work d nanoseconds from now:
	// periodic maintenance that must never keep Run from returning.
	AfterBG(d sim.Duration, fn func()) Timer
	// Rand returns this runtime's seeded random source. It must only be
	// used from Runtime callbacks.
	Rand() *rand.Rand
}

// Runner is the top-level control surface of an assembled bed: the Runtime
// of its coordinating (host) node plus the blocking entry points that
// advance or await work.
type Runner interface {
	Runtime
	// Run blocks until no foreground work remains.
	Run()
	// RunFor advances time by d (virtually, or by sleeping).
	RunFor(d sim.Duration)
	// RunUntil advances time to t, then waits for in-flight work to drain.
	RunUntil(t sim.Time)
	// Call executes fn inside the runtime's execution domain and waits for
	// it to return — the safe way for outside goroutines to touch
	// controller state. On the simulation it runs fn inline. It must not be
	// called from within a Runtime callback.
	Call(fn func())
}

// Executor models CPU cost: fn runs after d nanoseconds of core time,
// FIFO-queued behind earlier work on the same executor. The simulation backs
// it with cpu.Core/cpu.Pool reservations; the real-time backend executes
// immediately in submission order (real CPUs cost real time already).
type Executor interface {
	Exec(d sim.Duration, fn func())
}

// Transport connects the host and the storage targets: a host↔target star
// plus a target↔target mesh. Implementations must preserve the fabric
// contract the protocol depends on:
//
//   - delivery invokes the destination endpoint's handler from that
//     endpoint's Runtime (loop/engine), never inline in Send;
//   - messages to or from a down endpoint vanish (the sender's §5.4
//     deadline notices);
//   - capsules whose command-level checksum fails on receive are dropped,
//     as if lost (receiver-side CRC validation);
//   - per-endpoint delivery order is FIFO per sender.
type Transport interface {
	// Send transmits a capsule (and payload) from one endpoint to another.
	// The payload must be treated as immutable after Send returns.
	Send(from, to NodeID, cmd nvmeof.Command, payload parity.Buffer)
	// Register installs the endpoint-wide handler (servers).
	Register(id NodeID, h Handler)
	// RegisterVolume installs a volume-scoped handler on an endpoint
	// (host controllers, demultiplexed by capsule NSID). Re-registering
	// replaces the handler (host failover).
	RegisterVolume(id NodeID, vol VolumeID, h Handler)
	// Width returns the number of targets (spares included).
	Width() int
	// Down reports whether an endpoint is unreachable.
	Down(id NodeID) bool
	// SetDown makes an endpoint unreachable (true) or reachable (false).
	SetDown(id NodeID, down bool)
}

// PartitionDir selects which directions of a node pair a partition cuts.
type PartitionDir int

const (
	// PartitionBoth cuts a→b and b→a (a symmetric partition).
	PartitionBoth PartitionDir = iota
	// PartitionAToB cuts only messages from a to b — the asymmetric case
	// where b still hears a's peer but not vice versa.
	PartitionAToB
	// PartitionBToA cuts only messages from b to a.
	PartitionBToA
)

// PartitionInjector is the optional network-partition surface of a
// Transport: messages crossing a partitioned pair vanish in the cut
// direction(s) exactly as if addressed to a down endpoint — the sender's
// §5.4 deadline machinery notices, nothing else does. Partitions compose
// with drop/delay/corruption injection and with SetDown; they are tracked
// per ordered pair, so asymmetric (one-way) partitions and partial heals
// are expressible. Backends that cannot cut links pairwise simply do not
// implement the interface, and callers surface ErrUnsupported.
type PartitionInjector interface {
	// InjectPartition cuts the pair (a, b) in the given direction(s).
	// Injecting an already-cut direction is a no-op.
	InjectPartition(a, b NodeID, dir PartitionDir)
	// HealPartition restores the pair in the given direction(s); healing a
	// healthy direction is a no-op.
	HealPartition(a, b NodeID, dir PartitionDir)
	// Partitioned reports whether messages from 'from' to 'to' are cut.
	Partitioned(from, to NodeID) bool
}

// DuplicateInjector is the optional message-duplication surface of a
// Transport: a one-shot trigger per ordered pair that makes the next message
// from 'from' to 'to' arrive twice back to back, modeling a retransmission
// the fabric resolved late. The protocol must tolerate it — writes are
// idempotent, completions for retired command IDs are discarded. Backends
// that cannot replay frames do not implement the interface.
type DuplicateInjector interface {
	// DuplicateNext arms the one-shot for the ordered pair (from, to).
	// Arming an already-armed pair is a no-op.
	DuplicateNext(from, to NodeID)
}

// Traffic is the optional byte-accounting surface of a Transport, mirroring
// the NIC counters of the simulated fabric: out counts at send (a message
// dropped downstream still consumed send-side bandwidth), in at delivery.
type Traffic interface {
	// HostBytes reports (out, in) wire bytes crossing the host endpoint.
	HostBytes() (out, in int64)
	// HostVolumeBytes reports the host bytes attributed to one volume.
	HostVolumeBytes(vol VolumeID) (out, in int64)
	// ResetTraffic zeroes all counters.
	ResetTraffic()
}

// DriveStats counts completed drive operations.
type DriveStats struct {
	ReadOps, WriteOps     int64
	TrimOps               int64
	ReadBytes, WriteBytes int64
	// MediaErrors counts reads that completed with ErrMediaError (injected
	// or latent). CorruptReads counts reads that returned silently rotted
	// payload bytes — the drive itself cannot see these; only an end-to-end
	// checksum above it can.
	MediaErrors  int64
	CorruptReads int64
}

// Drive is one block device. Operations are asynchronous: callbacks fire
// from the owning node's Runtime. A failed drive never completes operations
// (in-flight or future) — callers detect this via timeouts, as with a dead
// device on a real fabric.
type Drive interface {
	// Capacity returns the drive size in bytes.
	Capacity() int64
	// StoresData reports whether payload bytes are materialized (false in
	// size-only benchmark mode: reads return elided buffers).
	StoresData() bool
	// Read fetches n bytes at off. cb receives the payload (zeros for
	// never-written ranges) or an error; reads overlapping an unreadable
	// media range complete with a *MediaError naming the overlap.
	Read(off, n int64, cb func(parity.Buffer, error))
	// Write persists b at off. A successful write clears media-error state
	// over its range (sector remap on program).
	Write(off int64, b parity.Buffer, cb func(error))
	// Trim discards [off, off+n): subsequent reads return zeros. Like a
	// write, it clears media-error state over the range.
	Trim(off, n int64, cb func(error))
	// PeekSync reads stored bytes immediately, bypassing timing and queues
	// — for integrity checksums and test assertions only. Returns nil when
	// the drive does not store data.
	PeekSync(off, n int64) []byte
	// Fail puts the drive into the failed state; Recover returns it to
	// service with stored data retained (a transient failure).
	Fail()
	Recover()
	Failed() bool
	// Stats returns operation counters.
	Stats() DriveStats
}

// SlowKind names a grey-failure latency profile: the drive keeps answering
// correctly, just late.
type SlowKind int

const (
	// SlowNone disables injection (the zero value).
	SlowNone SlowKind = iota
	// SlowConstant inflates every operation's modeled latency by Factor
	// from the moment of injection.
	SlowConstant
	// SlowFading ramps the inflation factor linearly from 1 up to Factor
	// over Ramp, then holds — a drive that is wearing out.
	SlowFading
	// SlowStall freezes the drive periodically: operations completing
	// inside the first Stall of every Period are held until the window
	// ends — firmware garbage collection, internal retries.
	SlowStall
)

// SlowProfile describes deterministic per-drive latency inflation. The same
// profile drives both backends: the simulated SSD scales its modeled service
// and access latency by FactorAt, while realtime drives (which have no
// timing model of their own) add (FactorAt-1)×Base of wall-clock delay per
// operation. StallDelay applies identically on both.
type SlowProfile struct {
	Kind SlowKind
	// Factor is the steady-state latency multiplier (SlowConstant,
	// SlowFading). Values ≤ 1 mean no inflation.
	Factor float64
	// Ramp is the SlowFading ramp length.
	Ramp sim.Duration
	// Period and Stall shape SlowStall: every Period, the drive stalls for
	// the first Stall of the cycle.
	Period, Stall sim.Duration
	// Base is the synthetic per-op latency inflated by drives without a
	// timing model (the realtime backend). Zero means 100µs. The simulated
	// SSD ignores it — it scales its own modeled latency instead.
	Base sim.Duration
	// Jitter, when > 0, multiplies each op's inflation by a uniform draw
	// from [1-Jitter, 1+Jitter] using the injection seed, so repeated runs
	// stay reproducible while individual ops vary.
	Jitter float64
}

// FactorAt returns the latency multiplier for an operation issued at now
// under a profile injected at since. rng carries the injection-seeded source
// for Jitter; it may be nil when Jitter is 0.
func (p SlowProfile) FactorAt(now, since sim.Time, rng *rand.Rand) float64 {
	f := 1.0
	switch p.Kind {
	case SlowConstant:
		f = p.Factor
	case SlowFading:
		if p.Ramp <= 0 || now-since >= sim.Time(p.Ramp) {
			f = p.Factor
		} else {
			f = 1 + (p.Factor-1)*float64(now-since)/float64(p.Ramp)
		}
	}
	if f < 1 {
		f = 1
	}
	if f > 1 && p.Jitter > 0 && rng != nil {
		f = 1 + (f-1)*(1+p.Jitter*(2*rng.Float64()-1))
	}
	return f
}

// StallDelay returns the extra completion delay of an operation issued at
// now under a SlowStall profile injected at since; zero for other kinds.
func (p SlowProfile) StallDelay(now, since sim.Time) sim.Duration {
	if p.Kind != SlowStall || p.Period <= 0 || p.Stall <= 0 {
		return 0
	}
	phase := sim.Duration((now - since) % sim.Time(p.Period))
	if phase < p.Stall {
		return p.Stall - phase
	}
	return 0
}

// BaseLatency returns the synthetic per-op latency realtime drives inflate.
func (p SlowProfile) BaseLatency() sim.Duration {
	if p.Base > 0 {
		return p.Base
	}
	return 100 * sim.Microsecond
}

// SlowInjector is the optional grey-failure surface of a Drive: backends
// that cannot model latency inflation (for example the file-backed realtime
// drive) simply do not implement it, and callers surface ErrUnsupported
// after a failed type assertion.
type SlowInjector interface {
	// SetSlowProfile installs (or, with Kind SlowNone, clears) the drive's
	// latency-inflation profile. seed feeds the profile's private jitter
	// source so injection stays reproducible.
	SetSlowProfile(p SlowProfile, seed int64)
	// SlowProfileInstalled returns the active profile (Kind SlowNone when
	// healthy).
	SlowProfileInstalled() SlowProfile
}

// MediaInjector is the optional fault-injection surface of a Drive. Backends
// without media-error hooks (for example the file-backed real-time drive)
// simply do not implement it; callers detect that with a type assertion and
// surface ErrUnsupported.
type MediaInjector interface {
	// InjectMediaError marks [off, off+n) unreadable until rewritten.
	InjectMediaError(off, n int64)
	// InjectBitRot silently corrupts the stored bytes of [off, off+n).
	InjectBitRot(off, n int64)
	// SetLatentErrorRate gives each read op probability rate of developing
	// a new unreadable range; the draw uses a private source seeded here.
	SetLatentErrorRate(rate float64, seed int64)
	// MediaErrorRanges returns the currently unreadable ranges.
	MediaErrorRanges() []integrity.Span
}

// ErrUnsupported reports an operation the active backend cannot perform —
// for example, media-error injection on a drive without media hooks.
var ErrUnsupported = errors.New("backend: operation not supported by this backend")

// ErrMediaError is an unrecoverable read error (URE): the drive is alive and
// keeps serving other LBAs, but this range is gone. Unlike a failed drive,
// the operation completes — with this error instead of data.
var ErrMediaError = errors.New("drive: unrecoverable media error")

// MediaError reports the precise unreadable sub-range of a failed read, so
// upper layers can reconstruct exactly the bytes that are lost rather than
// the whole request. It unwraps to ErrMediaError.
type MediaError struct {
	Off, N int64 // absolute drive byte range that could not be read
}

func (e *MediaError) Error() string {
	return fmt.Sprintf("drive: unrecoverable media error at [%d,+%d)", e.Off, e.N)
}

// Unwrap makes errors.Is(err, ErrMediaError) hold.
func (e *MediaError) Unwrap() error { return ErrMediaError }
