package realtime

import (
	"sync"
	"testing"
	"time"

	"draid/internal/backend"
	"draid/internal/nvmeof"
	"draid/internal/parity"
)

// recorder collects delivered messages thread-safely and signals arrivals.
type recorder struct {
	mu   sync.Mutex
	msgs []backend.Message
	ch   chan struct{}
}

func newRecorder() *recorder { return &recorder{ch: make(chan struct{}, 64)} }

func (r *recorder) handler(m backend.Message) {
	r.mu.Lock()
	r.msgs = append(r.msgs, m)
	r.mu.Unlock()
	r.ch <- struct{}{}
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// waitFor blocks until n messages arrived or the deadline passes.
func (r *recorder) waitFor(n int, d time.Duration) bool {
	dl := time.After(d)
	for {
		if r.count() >= n {
			return true
		}
		select {
		case <-r.ch:
		case <-dl:
			return r.count() >= n
		}
	}
}

// settle gives in-flight deliveries a moment to land (used before asserting
// a message did NOT arrive).
func settle() { time.Sleep(50 * time.Millisecond) }

type sendTransport interface {
	backend.Transport
	backend.PartitionInjector
	backend.DuplicateInjector
}

func testCmd(id uint64) nvmeof.Command {
	return nvmeof.Command{Opcode: nvmeof.OpWrite, ID: id, NSID: 1, Length: 8}
}

// runTransportTests exercises partition and duplication semantics shared by
// both realtime transports.
func runTransportTests(t *testing.T, bed *Bed, tr sendTransport) {
	host := backend.HostID
	n0 := backend.NodeID(0)
	rec := newRecorder()
	tr.Register(n0, rec.handler)

	// Baseline delivery.
	tr.Send(host, n0, testCmd(1), parity.Sized(8))
	if !rec.waitFor(1, 2*time.Second) {
		t.Fatal("baseline send never delivered")
	}

	// Symmetric partition cuts host→member.
	tr.InjectPartition(host, n0, backend.PartitionBoth)
	tr.Send(host, n0, testCmd(2), parity.Sized(8))
	settle()
	if rec.count() != 1 {
		t.Fatalf("partitioned send delivered: %d messages", rec.count())
	}

	// Asymmetric heal: host→member restored, member→host still cut.
	tr.HealPartition(host, n0, backend.PartitionAToB)
	if tr.Partitioned(host, n0) {
		t.Fatal("host→member should be healed")
	}
	if !tr.Partitioned(n0, host) {
		t.Fatal("member→host should still be cut")
	}
	tr.Send(host, n0, testCmd(3), parity.Sized(8))
	if !rec.waitFor(2, 2*time.Second) {
		t.Fatal("send after asymmetric heal never delivered")
	}
	tr.HealPartition(host, n0, backend.PartitionBoth)

	// One-shot duplication: next message arrives twice, following one once.
	tr.DuplicateNext(host, n0)
	tr.Send(host, n0, testCmd(4), parity.FromBytes([]byte("payload!")))
	if !rec.waitFor(4, 2*time.Second) {
		t.Fatalf("duplicated send delivered %d messages, want 2 copies", rec.count()-2)
	}
	tr.Send(host, n0, testCmd(5), parity.Sized(8))
	if !rec.waitFor(5, 2*time.Second) {
		t.Fatal("post-duplicate send never delivered")
	}
	settle()
	if rec.count() != 5 {
		t.Fatalf("one-shot duplication leaked: %d total messages, want 5", rec.count())
	}

	// The duplicated copies carried identical commands and payloads.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	a, b := rec.msgs[2], rec.msgs[3]
	if a.Cmd.ID != 4 || b.Cmd.ID != 4 {
		t.Fatalf("duplicate copies carry IDs %d and %d, want both 4", a.Cmd.ID, b.Cmd.ID)
	}
	if string(a.Payload.Data()) != "payload!" || string(b.Payload.Data()) != "payload!" {
		t.Fatal("duplicate copies should carry identical payload bytes")
	}
}

func TestChanTransportPartitionAndDuplicate(t *testing.T) {
	bed := NewBed(1, 2)
	defer bed.Close()
	tr := NewChanTransport(bed, 2)
	runTransportTests(t, bed, tr)
}

func TestTCPTransportPartitionAndDuplicate(t *testing.T) {
	bed := NewBed(1, 2)
	defer bed.Close()
	tr, err := NewTCPTransport(bed, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	runTransportTests(t, bed, tr)
}

// Duplication is per ordered pair: arming host→0 must not duplicate host→1.
func TestDuplicatePerPair(t *testing.T) {
	bed := NewBed(1, 2)
	defer bed.Close()
	tr := NewChanTransport(bed, 2)
	host := backend.HostID
	rec0, rec1 := newRecorder(), newRecorder()
	tr.Register(backend.NodeID(0), rec0.handler)
	tr.Register(backend.NodeID(1), rec1.handler)
	tr.DuplicateNext(host, backend.NodeID(0))
	tr.Send(host, backend.NodeID(1), testCmd(1), parity.Sized(8))
	if !rec1.waitFor(1, 2*time.Second) {
		t.Fatal("send to node 1 never delivered")
	}
	settle()
	if rec1.count() != 1 {
		t.Fatalf("node 1 got %d messages; duplication armed for node 0 leaked", rec1.count())
	}
	tr.Send(host, backend.NodeID(0), testCmd(2), parity.Sized(8))
	if !rec0.waitFor(2, 2*time.Second) {
		t.Fatalf("node 0 got %d messages, want the armed duplicate pair", rec0.count())
	}
}
