package realtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"draid/internal/backend"
	"draid/internal/integrity"
	"draid/internal/nvmeof"
	"draid/internal/parity"
)

// TCPTransport carries capsules over real TCP loopback sockets: each
// endpoint (host + every target) owns a listener, and each ordered sender→
// receiver pair gets one lazily-dialed connection, so per-pair FIFO order is
// preserved by the stream. Frames carry the encoded capsule, its CRC32C
// (recomputed and verified at the receiver, like the NIC-level command check
// on the simulated fabric — a mismatch drops the frame and the sender's op
// deadline takes over), and the payload bytes.
//
// Quiescence across the wire: the sender takes a foreground token before the
// socket write and the receiver releases it after the delivery task runs (or
// the frame is dropped). The tokens are a shared counter, so any release
// pairs with any hold; what matters is that a frame buffered in the kernel
// still counts as outstanding work.
type TCPTransport struct {
	endpoints
	bed *Bed

	addrs map[backend.NodeID]string
	lns   []net.Listener

	connMu sync.Mutex
	conns  map[[2]backend.NodeID]net.Conn

	corruptDrops int64
	closed       atomic.Bool
	wg           sync.WaitGroup
}

// NewTCPTransport opens one loopback listener per endpoint and starts its
// accept loop. Close shuts everything down.
func NewTCPTransport(bed *Bed, width int) (*TCPTransport, error) {
	t := &TCPTransport{
		endpoints: newEndpoints(width),
		bed:       bed,
		addrs:     make(map[backend.NodeID]string),
		conns:     make(map[[2]backend.NodeID]net.Conn),
	}
	ids := make([]backend.NodeID, 0, width+1)
	ids = append(ids, backend.HostID)
	for i := 0; i < width; i++ {
		ids = append(ids, backend.NodeID(i))
	}
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("realtime: listen for node %d: %w", id, err)
		}
		t.lns = append(t.lns, ln)
		t.addrs[id] = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(id, ln)
	}
	return t, nil
}

func (t *TCPTransport) acceptLoop(id backend.NodeID, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.readLoop(id, c)
	}
}

// frame layout: u32 cmdLen | cmd | u32 checksum | i64 from | u8 elided |
// u32 payloadLen | payload bytes (absent when elided).
func (t *TCPTransport) readLoop(id backend.NodeID, c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		cmdLen := binary.LittleEndian.Uint32(hdr[:])
		if cmdLen > 1<<20 {
			return // stream corrupt beyond recovery
		}
		rest := make([]byte, int(cmdLen)+4+8+1+4)
		if _, err := io.ReadFull(c, rest); err != nil {
			return
		}
		cmdBytes := rest[:cmdLen]
		tail := rest[cmdLen:]
		sum := binary.LittleEndian.Uint32(tail[0:])
		from := backend.NodeID(int64(binary.LittleEndian.Uint64(tail[4:])))
		elided := tail[12] != 0
		payloadLen := int(binary.LittleEndian.Uint32(tail[13:]))
		var payload parity.Buffer
		if elided {
			payload = parity.Sized(payloadLen)
		} else {
			data := make([]byte, payloadLen)
			if _, err := io.ReadFull(c, data); err != nil {
				return
			}
			payload = parity.FromBytes(data)
		}
		if integrity.Checksum(cmdBytes) != sum {
			atomic.AddInt64(&t.corruptDrops, 1)
			t.bed.release() // the sender's hold for this frame
			continue
		}
		cmd, err := nvmeof.Decode(cmdBytes)
		if err != nil {
			atomic.AddInt64(&t.corruptDrops, 1)
			t.bed.release()
			continue
		}
		wire := int64(len(cmdBytes)) + int64(payloadLen) + wireHeaderBytes
		vol := backend.VolumeID(cmd.NSID)
		// The sender's token transfers to the delivery task; postFG takes its
		// own, so release the sender's once the task (or drop) is accounted.
		t.bed.postFG(t.bed.loopFor(id), func() {
			if h := t.accept(id, vol, wire); h != nil {
				h(backend.Message{Cmd: cmd, Payload: payload, From: from})
			}
		})
		t.bed.release()
	}
}

// dial returns (creating on demand) the from→to connection.
func (t *TCPTransport) dial(from, to backend.NodeID) (net.Conn, error) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	key := [2]backend.NodeID{from, to}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, err
	}
	t.conns[key] = c
	return c, nil
}

// Send implements backend.Transport.
func (t *TCPTransport) Send(from, to backend.NodeID, cmd nvmeof.Command, payload parity.Buffer) {
	if from == to {
		panic(fmt.Sprintf("realtime: send from %d to itself", from))
	}
	if t.closed.Load() || t.Down(from) {
		return
	}
	cmdBytes := cmd.Encode()
	wire := int64(len(cmdBytes)) + int64(payload.Len()) + wireHeaderBytes
	t.countOut(from, backend.VolumeID(cmd.NSID), wire)
	if t.Partitioned(from, to) {
		return // cut by an injected partition after consuming send bandwidth
	}

	frame := make([]byte, 0, 4+len(cmdBytes)+4+8+1+4+payload.Len())
	le := binary.LittleEndian
	frame = le.AppendUint32(frame, uint32(len(cmdBytes)))
	frame = append(frame, cmdBytes...)
	frame = le.AppendUint32(frame, cmd.Checksum())
	frame = le.AppendUint64(frame, uint64(int64(from)))
	if payload.Elided() {
		frame = append(frame, 1)
	} else {
		frame = append(frame, 0)
	}
	frame = le.AppendUint32(frame, uint32(payload.Len()))
	if !payload.Elided() {
		frame = append(frame, payload.Data()...)
	}

	copies := 1
	if t.consumeDup(from, to) {
		copies = 2 // the stream replays the frame back to back
	}
	for i := 0; i < copies; i++ {
		t.bed.hold() // released by the receiver after delivery (or on error below)
		c, err := t.dial(from, to)
		if err == nil {
			t.connMu.Lock()
			_, err = c.Write(frame)
			t.connMu.Unlock()
		}
		if err != nil {
			t.bed.release()
		}
	}
}

// CorruptDrops reports frames discarded after a receiver-side checksum
// mismatch.
func (t *TCPTransport) CorruptDrops() int64 { return atomic.LoadInt64(&t.corruptDrops) }

// Close shuts down listeners and connections and waits for the I/O
// goroutines to exit.
func (t *TCPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	for _, ln := range t.lns {
		ln.Close()
	}
	t.connMu.Lock()
	for _, c := range t.conns {
		c.Close()
	}
	t.connMu.Unlock()
	t.wg.Wait()
	return nil
}

var (
	_ backend.Transport         = (*TCPTransport)(nil)
	_ backend.Traffic           = (*TCPTransport)(nil)
	_ backend.PartitionInjector = (*TCPTransport)(nil)
	_ backend.DuplicateInjector = (*TCPTransport)(nil)
)
