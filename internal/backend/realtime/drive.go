package realtime

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"sync"

	"draid/internal/backend"
	"draid/internal/integrity"
	"draid/internal/parity"
	"draid/internal/sim"
)

// ErrOutOfRange reports access beyond a drive's capacity.
var ErrOutOfRange = errors.New("realtime: access beyond drive capacity")

const (
	memPageSize  = 64 << 10
	latentSector = 4096
)

// MemDrive is a memory-backed drive for the realtime backend: a sparse page
// store with the same fault-injection surface as the simulated SSD (media
// errors, bit rot, latent URE development). Completions are delivered on the
// owning node's loop via the runtime; state is mutex-guarded because
// injection calls arrive from other goroutines.
type MemDrive struct {
	rt       backend.Runtime
	capacity int64

	mu         sync.Mutex
	pages      map[int64][]byte // nil ⇒ SizeOnly (elided payloads)
	failed     bool
	media      integrity.RangeSet
	rot        integrity.RangeSet
	latentRate float64
	latentRng  *rand.Rand
	stats      backend.DriveStats

	// Grey-failure latency profile. MemDrive has no timing model, so
	// constant/fading profiles inflate SlowProfile.BaseLatency() per op;
	// stall profiles hold completions until the stall window ends. Delays
	// are scheduled on the owning loop via rt.After.
	slow      backend.SlowProfile
	slowSince sim.Time
	slowRng   *rand.Rand
}

// NewMemDrive builds a drive of the given capacity. With storeData false the
// drive tracks only sizes and returns elided payloads.
func NewMemDrive(rt backend.Runtime, capacity int64, storeData bool) *MemDrive {
	d := &MemDrive{rt: rt, capacity: capacity}
	if storeData {
		d.pages = make(map[int64][]byte)
	}
	return d
}

func (d *MemDrive) Capacity() int64  { return d.capacity }
func (d *MemDrive) StoresData() bool { return d.pages != nil }

func (d *MemDrive) Stats() backend.DriveStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *MemDrive) Fail() {
	d.mu.Lock()
	d.failed = true
	d.mu.Unlock()
}

func (d *MemDrive) Recover() {
	d.mu.Lock()
	d.failed = false
	d.mu.Unlock()
}

func (d *MemDrive) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// SetSlowProfile implements backend.SlowInjector.
func (d *MemDrive) SetSlowProfile(p backend.SlowProfile, seed int64) {
	d.mu.Lock()
	d.slow = p
	d.slowSince = d.rt.Now()
	d.slowRng = rand.New(rand.NewSource(seed))
	d.mu.Unlock()
}

// SlowProfileInstalled implements backend.SlowInjector.
func (d *MemDrive) SlowProfileInstalled() backend.SlowProfile {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.slow
}

// slowDelay returns the grey-failure completion delay for an op issued now.
func (d *MemDrive) slowDelay() sim.Duration {
	d.mu.Lock()
	p, since, rng := d.slow, d.slowSince, d.slowRng
	d.mu.Unlock()
	if p.Kind == backend.SlowNone {
		return 0
	}
	now := d.rt.Now()
	var extra sim.Duration
	if f := p.FactorAt(now, since, rng); f > 1 {
		extra += sim.Duration(float64(p.BaseLatency()) * (f - 1))
	}
	extra += p.StallDelay(now, since)
	return extra
}

// complete schedules an op completion on the owning loop, delayed when a
// slow profile is installed.
func (d *MemDrive) complete(fn func()) {
	if extra := d.slowDelay(); extra > 0 {
		d.rt.After(extra, fn)
		return
	}
	d.rt.Defer(fn)
}

// Read implements backend.Drive. As on the simulated SSD, operations
// submitted to a failed drive never complete — the caller's op deadline is
// the detection mechanism.
func (d *MemDrive) Read(off, n int64, cb func(parity.Buffer, error)) {
	if off < 0 || n < 0 || off+n > d.capacity {
		d.rt.Defer(func() { cb(parity.Buffer{}, ErrOutOfRange) })
		return
	}
	if d.Failed() {
		return
	}
	d.complete(func() {
		d.mu.Lock()
		if d.failed {
			d.mu.Unlock()
			return
		}
		d.stats.ReadOps++
		d.stats.ReadBytes += n
		d.maybeDevelopLatentLocked(off, n)
		if bad, hit := d.media.Intersect(off, n); hit {
			d.stats.MediaErrors++
			d.mu.Unlock()
			cb(parity.Buffer{}, &backend.MediaError{Off: bad.Off, N: bad.Len})
			return
		}
		if _, hit := d.rot.Intersect(off, n); hit {
			d.stats.CorruptReads++
		}
		b := d.loadLocked(off, n)
		d.mu.Unlock()
		cb(b, nil)
	})
}

// Write implements backend.Drive. Payload bytes are snapshotted at
// submission (DMA semantics).
func (d *MemDrive) Write(off int64, b parity.Buffer, cb func(error)) {
	n := int64(b.Len())
	if off < 0 || off+n > d.capacity {
		d.rt.Defer(func() { cb(ErrOutOfRange) })
		return
	}
	if d.Failed() {
		return
	}
	var snapshot []byte
	if d.pages != nil && !b.Elided() {
		snapshot = append([]byte(nil), b.Data()...)
	}
	d.complete(func() {
		d.mu.Lock()
		if d.failed {
			d.mu.Unlock()
			return
		}
		d.stats.WriteOps++
		d.stats.WriteBytes += n
		if snapshot != nil {
			d.storeLocked(off, snapshot)
		}
		d.media.Remove(off, n)
		d.rot.Remove(off, n)
		d.mu.Unlock()
		cb(nil)
	})
}

// Trim implements backend.Drive: discards the range and clears fault state
// over it.
func (d *MemDrive) Trim(off, n int64, cb func(error)) {
	if off < 0 || n < 0 || off+n > d.capacity {
		d.rt.Defer(func() { cb(ErrOutOfRange) })
		return
	}
	if d.Failed() {
		return
	}
	d.complete(func() {
		d.mu.Lock()
		if d.failed {
			d.mu.Unlock()
			return
		}
		d.stats.TrimOps++
		d.discardLocked(off, n)
		d.media.Remove(off, n)
		d.rot.Remove(off, n)
		d.mu.Unlock()
		cb(nil)
	})
}

// PeekSync reads stored bytes immediately, bypassing the loop — for test
// assertions only.
func (d *MemDrive) PeekSync(off, n int64) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.loadLocked(off, n)
	if b.Elided() {
		return nil
	}
	return b.Data()
}

// InjectMediaError implements backend.MediaInjector.
func (d *MemDrive) InjectMediaError(off, n int64) {
	d.mu.Lock()
	d.media.Add(off, n)
	d.mu.Unlock()
}

// InjectBitRot implements backend.MediaInjector. It requires stored data.
func (d *MemDrive) InjectBitRot(off, n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pages == nil {
		panic("realtime: InjectBitRot requires stored data")
	}
	buf := d.loadLocked(off, n)
	data := buf.Data()
	for i := range data {
		data[i] ^= 0x5A
	}
	d.storeLocked(off, data)
	d.rot.Add(off, n)
}

// SetLatentErrorRate implements backend.MediaInjector.
func (d *MemDrive) SetLatentErrorRate(rate float64, seed int64) {
	d.mu.Lock()
	d.latentRate = rate
	d.latentRng = rand.New(rand.NewSource(seed))
	d.mu.Unlock()
}

// MediaErrorRanges implements backend.MediaInjector.
func (d *MemDrive) MediaErrorRanges() []integrity.Span {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.media.Spans()
}

func (d *MemDrive) maybeDevelopLatentLocked(off, n int64) {
	if d.latentRate <= 0 || d.latentRng == nil || n <= 0 {
		return
	}
	if d.latentRng.Float64() >= d.latentRate {
		return
	}
	pos := off + d.latentRng.Int63n(n)
	pos -= pos % latentSector
	end := pos + latentSector
	if end > d.capacity {
		end = d.capacity
	}
	if pos < off {
		pos = off
	}
	d.media.Add(pos, end-pos)
}

func (d *MemDrive) loadLocked(off, n int64) parity.Buffer {
	if d.pages == nil {
		return parity.Sized(int(n))
	}
	out := make([]byte, n)
	for pos := int64(0); pos < n; {
		pageNo := (off + pos) / memPageSize
		pageOff := (off + pos) % memPageSize
		span := memPageSize - pageOff
		if span > n-pos {
			span = n - pos
		}
		if page, ok := d.pages[pageNo]; ok {
			copy(out[pos:pos+span], page[pageOff:pageOff+span])
		}
		pos += span
	}
	return parity.FromBytes(out)
}

func (d *MemDrive) storeLocked(off int64, data []byte) {
	n := int64(len(data))
	for pos := int64(0); pos < n; {
		pageNo := (off + pos) / memPageSize
		pageOff := (off + pos) % memPageSize
		span := memPageSize - pageOff
		if span > n-pos {
			span = n - pos
		}
		page, ok := d.pages[pageNo]
		if !ok {
			page = make([]byte, memPageSize)
			d.pages[pageNo] = page
		}
		copy(page[pageOff:pageOff+span], data[pos:pos+span])
		pos += span
	}
}

func (d *MemDrive) discardLocked(off, n int64) {
	if d.pages == nil {
		return
	}
	for pos := int64(0); pos < n; {
		pageNo := (off + pos) / memPageSize
		pageOff := (off + pos) % memPageSize
		span := memPageSize - pageOff
		if span > n-pos {
			span = n - pos
		}
		if page, ok := d.pages[pageNo]; ok {
			if span == memPageSize {
				delete(d.pages, pageNo)
			} else {
				clearTo := page[pageOff : pageOff+span]
				for i := range clearTo {
					clearTo[i] = 0
				}
			}
		}
		pos += span
	}
}

// FileDrive is a file-backed drive: reads and writes go to a sparse file via
// pread/pwrite. It deliberately implements only backend.Drive — not
// backend.MediaInjector — making it the backend on which injection APIs
// surface backend.ErrUnsupported.
type FileDrive struct {
	rt       backend.Runtime
	f        *os.File
	path     string
	capacity int64

	mu     sync.Mutex
	failed bool
	stats  backend.DriveStats
}

// NewFileDrive creates (truncating) the backing file.
func NewFileDrive(rt backend.Runtime, path string, capacity int64) (*FileDrive, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	return &FileDrive{rt: rt, f: f, path: path, capacity: capacity}, nil
}

// Path returns the backing file's path.
func (d *FileDrive) Path() string { return d.path }

// Close closes the backing file (the drive must be idle).
func (d *FileDrive) Close() error { return d.f.Close() }

func (d *FileDrive) Capacity() int64  { return d.capacity }
func (d *FileDrive) StoresData() bool { return true }

func (d *FileDrive) Stats() backend.DriveStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *FileDrive) Fail() {
	d.mu.Lock()
	d.failed = true
	d.mu.Unlock()
}

func (d *FileDrive) Recover() {
	d.mu.Lock()
	d.failed = false
	d.mu.Unlock()
}

func (d *FileDrive) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// readAt fills out from the file, zero-filling past EOF (sparse semantics).
func (d *FileDrive) readAt(out []byte, off int64) error {
	n, err := d.f.ReadAt(out, off)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		for i := n; i < len(out); i++ {
			out[i] = 0
		}
		return nil
	}
	return err
}

// Read implements backend.Drive.
func (d *FileDrive) Read(off, n int64, cb func(parity.Buffer, error)) {
	if off < 0 || n < 0 || off+n > d.capacity {
		d.rt.Defer(func() { cb(parity.Buffer{}, ErrOutOfRange) })
		return
	}
	if d.Failed() {
		return
	}
	d.rt.Defer(func() {
		d.mu.Lock()
		if d.failed {
			d.mu.Unlock()
			return
		}
		d.stats.ReadOps++
		d.stats.ReadBytes += n
		d.mu.Unlock()
		out := make([]byte, n)
		if err := d.readAt(out, off); err != nil {
			cb(parity.Buffer{}, err)
			return
		}
		cb(parity.FromBytes(out), nil)
	})
}

// Write implements backend.Drive. Elided payloads are rejected: a file-backed
// drive cannot represent sizes without bytes.
func (d *FileDrive) Write(off int64, b parity.Buffer, cb func(error)) {
	n := int64(b.Len())
	if off < 0 || off+n > d.capacity {
		d.rt.Defer(func() { cb(ErrOutOfRange) })
		return
	}
	if d.Failed() {
		return
	}
	var snapshot []byte
	if !b.Elided() {
		snapshot = append([]byte(nil), b.Data()...)
	} else {
		snapshot = make([]byte, n) // elided payload: store zeros
	}
	d.rt.Defer(func() {
		d.mu.Lock()
		if d.failed {
			d.mu.Unlock()
			return
		}
		d.stats.WriteOps++
		d.stats.WriteBytes += n
		d.mu.Unlock()
		if _, err := d.f.WriteAt(snapshot, off); err != nil {
			cb(err)
			return
		}
		cb(nil)
	})
}

// Trim implements backend.Drive by writing zeros (portable hole emulation).
func (d *FileDrive) Trim(off, n int64, cb func(error)) {
	if off < 0 || n < 0 || off+n > d.capacity {
		d.rt.Defer(func() { cb(ErrOutOfRange) })
		return
	}
	if d.Failed() {
		return
	}
	d.rt.Defer(func() {
		d.mu.Lock()
		if d.failed {
			d.mu.Unlock()
			return
		}
		d.stats.TrimOps++
		d.mu.Unlock()
		if _, err := d.f.WriteAt(make([]byte, n), off); err != nil {
			cb(err)
			return
		}
		cb(nil)
	})
}

// PeekSync reads stored bytes immediately — for test assertions only.
func (d *FileDrive) PeekSync(off, n int64) []byte {
	out := make([]byte, n)
	if err := d.readAt(out, off); err != nil {
		return nil
	}
	return out
}

var (
	_ backend.Drive         = (*MemDrive)(nil)
	_ backend.MediaInjector = (*MemDrive)(nil)
	_ backend.SlowInjector  = (*MemDrive)(nil)
	_ backend.Drive         = (*FileDrive)(nil)
)
