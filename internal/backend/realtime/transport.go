package realtime

import (
	"fmt"
	"sync"

	"draid/internal/backend"
	"draid/internal/nvmeof"
	"draid/internal/parity"
)

// wireHeaderBytes is the per-message framing overhead counted against the
// traffic totals, matching the simulated fabric's default header size.
const wireHeaderBytes = 128

// volKey addresses a volume-scoped handler on one endpoint.
type volKey struct {
	node backend.NodeID
	vol  backend.VolumeID
}

// volTraffic counts one volume's host wire bytes.
type volTraffic struct{ out, in int64 }

// endpoints is the registration/routing/accounting state shared by both
// realtime transports. All fields are guarded by mu: unlike the simulation,
// senders and receivers live on different goroutines.
type endpoints struct {
	mu          sync.Mutex
	width       int
	handlers    map[backend.NodeID]backend.Handler
	volHandlers map[volKey]backend.Handler
	down        map[backend.NodeID]bool
	partitions  map[[2]backend.NodeID]bool
	dupOnce     map[[2]backend.NodeID]bool
	hostOut     int64
	hostIn      int64
	volBytes    map[backend.VolumeID]*volTraffic
}

func newEndpoints(width int) endpoints {
	return endpoints{
		width:       width,
		handlers:    make(map[backend.NodeID]backend.Handler),
		volHandlers: make(map[volKey]backend.Handler),
		down:        make(map[backend.NodeID]bool),
		partitions:  make(map[[2]backend.NodeID]bool),
		dupOnce:     make(map[[2]backend.NodeID]bool),
		volBytes:    make(map[backend.VolumeID]*volTraffic),
	}
}

// InjectPartition cuts traffic between two endpoints in the given
// direction(s). Cut messages vanish after consuming sender bandwidth,
// exactly like messages to a down node — only the sender's op deadline
// notices. Both realtime transports share this state via embedding.
func (e *endpoints) InjectPartition(a, b backend.NodeID, dir backend.PartitionDir) {
	e.mu.Lock()
	if dir == backend.PartitionBoth || dir == backend.PartitionAToB {
		e.partitions[[2]backend.NodeID{a, b}] = true
	}
	if dir == backend.PartitionBoth || dir == backend.PartitionBToA {
		e.partitions[[2]backend.NodeID{b, a}] = true
	}
	e.mu.Unlock()
}

// HealPartition restores traffic between two endpoints in the given
// direction(s).
func (e *endpoints) HealPartition(a, b backend.NodeID, dir backend.PartitionDir) {
	e.mu.Lock()
	if dir == backend.PartitionBoth || dir == backend.PartitionAToB {
		delete(e.partitions, [2]backend.NodeID{a, b})
	}
	if dir == backend.PartitionBoth || dir == backend.PartitionBToA {
		delete(e.partitions, [2]backend.NodeID{b, a})
	}
	e.mu.Unlock()
}

// Partitioned reports whether messages from 'from' to 'to' are cut.
func (e *endpoints) Partitioned(from, to backend.NodeID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.partitions[[2]backend.NodeID{from, to}]
}

// DuplicateNext arms a one-shot duplication for the ordered pair: the next
// message from 'from' to 'to' is delivered twice back to back (a late
// fabric retransmission). Both realtime transports share this state.
func (e *endpoints) DuplicateNext(from, to backend.NodeID) {
	e.mu.Lock()
	e.dupOnce[[2]backend.NodeID{from, to}] = true
	e.mu.Unlock()
}

// consumeDup reports and clears the pair's one-shot duplication.
func (e *endpoints) consumeDup(from, to backend.NodeID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := [2]backend.NodeID{from, to}
	if !e.dupOnce[key] {
		return false
	}
	delete(e.dupOnce, key)
	return true
}

func (e *endpoints) Register(id backend.NodeID, h backend.Handler) {
	e.mu.Lock()
	e.handlers[id] = h
	e.mu.Unlock()
}

func (e *endpoints) RegisterVolume(id backend.NodeID, vol backend.VolumeID, h backend.Handler) {
	e.mu.Lock()
	e.volHandlers[volKey{node: id, vol: vol}] = h
	e.mu.Unlock()
}

func (e *endpoints) Width() int { return e.width }

func (e *endpoints) Down(id backend.NodeID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down[id]
}

func (e *endpoints) SetDown(id backend.NodeID, down bool) {
	e.mu.Lock()
	e.down[id] = down
	e.mu.Unlock()
}

// countOut books outbound host bytes at send time (NIC-counter semantics: a
// message dropped downstream still consumed send bandwidth).
func (e *endpoints) countOut(from backend.NodeID, vol backend.VolumeID, wire int64) {
	if from != backend.HostID {
		return
	}
	e.mu.Lock()
	e.hostOut += wire
	e.vol(vol).out += wire
	e.mu.Unlock()
}

// accept runs the delivery-side checks and accounting, returning the handler
// to invoke (nil: the destination is down or has no handler).
func (e *endpoints) accept(to backend.NodeID, vol backend.VolumeID, wire int64) backend.Handler {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.down[to] {
		return nil
	}
	if to == backend.HostID {
		e.hostIn += wire
		e.vol(vol).in += wire
	}
	if h, ok := e.volHandlers[volKey{node: to, vol: vol}]; ok {
		return h
	}
	return e.handlers[to]
}

// vol returns (creating on demand) a volume's traffic record. Callers hold mu.
func (e *endpoints) vol(id backend.VolumeID) *volTraffic {
	t, ok := e.volBytes[id]
	if !ok {
		t = &volTraffic{}
		e.volBytes[id] = t
	}
	return t
}

func (e *endpoints) HostBytes() (out, in int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hostOut, e.hostIn
}

func (e *endpoints) HostVolumeBytes(vol backend.VolumeID) (out, in int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t, ok := e.volBytes[vol]; ok {
		return t.out, t.in
	}
	return 0, 0
}

func (e *endpoints) ResetTraffic() {
	e.mu.Lock()
	e.hostOut, e.hostIn = 0, 0
	for _, t := range e.volBytes {
		t.out, t.in = 0, 0
	}
	e.mu.Unlock()
}

// ChanTransport moves capsules between node loops in-process: a Send posts a
// delivery task onto the destination's loop. The payload is cloned at send
// time (DMA snapshot semantics — the sender may reuse its buffer), and the
// message holds a foreground token until the handler returns, so Run()
// observes in-flight messages exactly as the simulation's event count does.
type ChanTransport struct {
	endpoints
	bed *Bed
}

// NewChanTransport builds the in-process transport over bed's loops.
func NewChanTransport(bed *Bed, width int) *ChanTransport {
	return &ChanTransport{endpoints: newEndpoints(width), bed: bed}
}

// Send implements backend.Transport. Messages from or to a down endpoint
// vanish (the sender's op deadline fires, as on the simulated fabric).
func (t *ChanTransport) Send(from, to backend.NodeID, cmd nvmeof.Command, payload parity.Buffer) {
	if from == to {
		panic(fmt.Sprintf("realtime: send from %d to itself", from))
	}
	if t.Down(from) {
		return
	}
	p := payload
	if !p.Elided() {
		p = p.Clone()
	}
	wire := int64(cmd.EncodedSize()) + int64(p.Len()) + wireHeaderBytes
	vol := backend.VolumeID(cmd.NSID)
	t.countOut(from, vol, wire)
	if t.Partitioned(from, to) {
		return // cut by an injected partition after consuming send bandwidth
	}
	copies := 1
	if t.consumeDup(from, to) {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		dp := p
		if i > 0 && !dp.Elided() {
			dp = dp.Clone() // each delivered copy owns its payload
		}
		t.bed.postFG(t.bed.loopFor(to), func() {
			if h := t.accept(to, vol, wire); h != nil {
				h(backend.Message{Cmd: cmd, Payload: dp, From: from})
			}
		})
	}
}

var (
	_ backend.Transport         = (*ChanTransport)(nil)
	_ backend.Traffic           = (*ChanTransport)(nil)
	_ backend.PartitionInjector = (*ChanTransport)(nil)
	_ backend.DuplicateInjector = (*ChanTransport)(nil)
)
