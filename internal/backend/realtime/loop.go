// Package realtime is the wall-clock backend: the same dRAID protocol code
// that runs on the deterministic simulation, executed by real goroutines
// against real timers, in-process channel or TCP-loopback transports, and
// memory- or file-backed media.
//
// Concurrency model: one event loop (goroutine) per node — the host plus
// each storage target. All of a controller's callbacks run on its node's
// loop, preserving the single-threaded discipline the protocol code was
// written under; cross-node interaction happens only through the transport,
// which posts deliveries onto the destination loop.
//
// Quiescence: Run() must block exactly while protocol work is outstanding,
// like the simulation's foreground event count. A shared foreground-token
// counter implements this: every posted loop task, in-flight drive
// operation, undelivered transport message, and armed foreground timer holds
// one token from creation until its work completes. An operation on a failed
// drive takes no token (it will never complete — its op deadline, itself a
// foreground timer, is what keeps Run waiting). Background timers take none.
//
// Unlike the simulation, nothing here is deterministic: goroutine
// interleaving, wall-clock jitter, and TCP scheduling vary run to run. Only
// application-visible semantics are preserved — the conformance suite in
// backend/conformancetest is the contract.
package realtime

import (
	"math/rand"
	"sync"
	"time"

	"draid/internal/backend"
	"draid/internal/sim"
)

// loop is one node's event loop: a goroutine draining a FIFO task queue.
type loop struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []func()
	closed bool
}

func newLoop() *loop {
	l := &loop{}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

func (l *loop) run() {
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.q) == 0 {
			l.mu.Unlock()
			return
		}
		fn := l.q[0]
		l.q = l.q[1:]
		l.mu.Unlock()
		fn()
	}
}

// post enqueues fn, reporting false when the loop is closed (the caller must
// release any foreground token it meant the task to carry).
func (l *loop) post(fn func()) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.q = append(l.q, fn)
	l.cond.Signal()
	l.mu.Unlock()
	return true
}

func (l *loop) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Bed is an assembled real-time testbed: the host loop plus one loop per
// storage target, sharing a foreground-token counter. Bed itself is the
// host's backend.Runner (and Executor); NodeRuntime returns the per-target
// runtimes.
type Bed struct {
	start time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	fg     int
	closed bool

	host  *NodeRuntime
	nodes []*NodeRuntime
}

// NewBed creates the loops for a host plus n targets. Each node gets its own
// seeded random source (used only from its loop).
func NewBed(seed int64, n int) *Bed {
	if seed == 0 {
		seed = 1
	}
	b := &Bed{start: time.Now()}
	b.cond = sync.NewCond(&b.mu)
	b.host = &NodeRuntime{bed: b, loop: newLoop(), rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < n; i++ {
		b.nodes = append(b.nodes, &NodeRuntime{
			bed: b, loop: newLoop(), rng: rand.New(rand.NewSource(seed + int64(i) + 1)),
		})
	}
	return b
}

// NodeRuntime returns the runtime of one endpoint (backend.HostID or a
// target index). It implements backend.Runtime and backend.Executor.
func (b *Bed) NodeRuntime(id backend.NodeID) *NodeRuntime {
	if id == backend.HostID {
		return b.host
	}
	return b.nodes[id]
}

func (b *Bed) loopFor(id backend.NodeID) *loop { return b.NodeRuntime(id).loop }

// hold takes a foreground token; release returns it, waking Run when the
// count reaches zero.
func (b *Bed) hold() {
	b.mu.Lock()
	b.fg++
	b.mu.Unlock()
}

func (b *Bed) release() {
	b.mu.Lock()
	b.fg--
	if b.fg <= 0 {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// postFG posts fn to l as foreground work: a token is held until the task
// finishes (or is dropped because the loop closed).
func (b *Bed) postFG(l *loop, fn func()) {
	b.hold()
	if !l.post(func() { fn(); b.release() }) {
		b.release()
	}
}

// rtTimer is a wall-clock timer whose callback runs on its node's loop. The
// done flag arbitrates the Stop-vs-fire race: exactly one side wins.
type rtTimer struct {
	bed *Bed
	mu  sync.Mutex
	t   *time.Timer
	fg  bool
	out bool // fired or stopped
}

func (b *Bed) newTimer(l *loop, d sim.Duration, fn func(), fg bool) backend.Timer {
	if d < 0 {
		d = 0
	}
	tm := &rtTimer{bed: b, fg: fg}
	if fg {
		b.hold()
	}
	tm.t = time.AfterFunc(time.Duration(d), func() {
		tm.mu.Lock()
		if tm.out {
			tm.mu.Unlock()
			return
		}
		tm.out = true
		tm.mu.Unlock()
		// The token transfers from "armed" to "queued task" without a gap.
		if !l.post(func() {
			fn()
			if fg {
				b.release()
			}
		}) && fg {
			b.release()
		}
	})
	return tm
}

func (tm *rtTimer) Stop() bool {
	tm.mu.Lock()
	if tm.out {
		tm.mu.Unlock()
		return false
	}
	tm.out = true
	tm.mu.Unlock()
	tm.t.Stop()
	if tm.fg {
		tm.bed.release()
	}
	return true
}

// NodeRuntime is one node's backend.Runtime: scheduling lands on the node's
// loop. Its Exec executes CPU work immediately in submission order (real
// cores cost real time), which also makes it the node's backend.Executor.
type NodeRuntime struct {
	bed  *Bed
	loop *loop
	rng  *rand.Rand
}

func (n *NodeRuntime) Now() sim.Time     { return sim.Time(time.Since(n.bed.start)) }
func (n *NodeRuntime) Defer(fn func())   { n.bed.postFG(n.loop, fn) }
func (n *NodeRuntime) Rand() *rand.Rand  { return n.rng }

func (n *NodeRuntime) After(d sim.Duration, fn func()) backend.Timer {
	return n.bed.newTimer(n.loop, d, fn, true)
}

func (n *NodeRuntime) AfterBG(d sim.Duration, fn func()) backend.Timer {
	return n.bed.newTimer(n.loop, d, fn, false)
}

func (n *NodeRuntime) Exec(d sim.Duration, fn func()) { n.bed.postFG(n.loop, fn) }

// ---------------------------------------------------------------------------
// Bed as the host's Runner.

func (b *Bed) Now() sim.Time    { return b.host.Now() }
func (b *Bed) Defer(fn func())  { b.host.Defer(fn) }
func (b *Bed) Rand() *rand.Rand { return b.host.rng }

func (b *Bed) After(d sim.Duration, fn func()) backend.Timer   { return b.host.After(d, fn) }
func (b *Bed) AfterBG(d sim.Duration, fn func()) backend.Timer { return b.host.AfterBG(d, fn) }
func (b *Bed) Exec(d sim.Duration, fn func())                  { b.host.Exec(d, fn) }

// Run blocks until no foreground work remains (or the bed is closed).
func (b *Bed) Run() {
	b.mu.Lock()
	for b.fg > 0 && !b.closed {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// RunFor sleeps for d of wall time.
func (b *Bed) RunFor(d sim.Duration) {
	if d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// RunUntil sleeps until instant t on the bed's clock.
func (b *Bed) RunUntil(t sim.Time) {
	if d := time.Until(b.start.Add(time.Duration(t))); d > 0 {
		time.Sleep(d)
	}
}

// Call marshals fn onto the host loop and waits for it to return — the safe
// way for an outside goroutine to touch host-confined state. It must not be
// called from a loop task (it would deadlock waiting on itself). On a closed
// bed fn runs inline: the loops are gone, so nothing races.
func (b *Bed) Call(fn func()) {
	done := make(chan struct{})
	b.hold()
	if !b.host.loop.post(func() { fn(); close(done); b.release() }) {
		b.release()
		fn()
		return
	}
	<-done
}

// Close stops every loop. Queued tasks drain; future posts are dropped (with
// their tokens released), and Run unblocks.
func (b *Bed) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	b.host.loop.close()
	for _, n := range b.nodes {
		n.loop.close()
	}
	return nil
}

var (
	_ backend.Runner   = (*Bed)(nil)
	_ backend.Executor = (*Bed)(nil)
	_ backend.Runtime  = (*NodeRuntime)(nil)
	_ backend.Executor = (*NodeRuntime)(nil)
)
