// Package baseline implements the paper's comparison systems over the SAME
// simulated substrate as dRAID:
//
//   - Host: a host-centric parity-RAID controller in two styles — the Intel
//     SPDK RAID-5 POC (user-space, efficient, but all parity work on the
//     host: 2× outbound write traffic, N× inbound degraded-read traffic,
//     stripe-locked normal reads) and Linux MD (same data flow plus kernel
//     block-stack overhead and a single raid5d worker thread serializing
//     all stripe handling).
//   - SingleMachine: the RAID controller co-located with its drives on one
//     storage server (Table 1's first column): 1× network overhead but no
//     server fault tolerance.
//
// Both speak only standard NVMe-oF (Read/Write) to the unmodified
// server-side controllers.
package baseline

import (
	"draid/internal/core"
	"draid/internal/cpu"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

// Style captures what differs between the host-centric baselines.
type Style struct {
	// Name labels output ("SPDK", "Linux").
	Name string
	// LockReads serializes normal reads against writes on the same stripe
	// (the SPDK POC behaviour §8; dRAID removes it).
	LockReads bool
	// Raid5dSingleCore routes every write and degraded-read stripe
	// operation through one dedicated worker core (Linux MD's raid5d).
	Raid5dSingleCore bool
	// PerStripeOp is fixed worker time per stripe operation (stripe cache
	// management, bitmap update, request bookkeeping).
	PerStripeOp sim.Duration
	// PerChunkOp is additional worker time per member chunk touched.
	PerChunkOp sim.Duration
	// CopyBps, when nonzero, replaces the XOR/GF rate for parity work
	// (Linux's stripe-cache memcpy+xor path is much slower than ISA-L).
	CopyBps float64
	// ReadPerIO is block-stack time per normal read I/O on the host pool.
	ReadPerIO sim.Duration
	// SerialWriteReads issues a write's pre-reads one at a time (the SPDK
	// POC's stripe state machine walks its read states sequentially;
	// dRAID's §5.3 pipeline is the contrast).
	SerialWriteReads bool
	// DegradedPageSize and DegradedPerPage model Linux MD's stripe-cache
	// processing of reconstruction in page-sized units: each page of a
	// degraded read costs DegradedPerPage of raid5d time.
	DegradedPageSize int64
	DegradedPerPage  sim.Duration
}

// SPDKStyle models the enhanced SPDK RAID-5/6 POC of §9.1.
func SPDKStyle() Style {
	return Style{
		Name:             "SPDK",
		LockReads:        true,
		SerialWriteReads: true,
	}
}

// LinuxStyle models Linux software RAID (MD driver).
func LinuxStyle() Style {
	return Style{
		Name:             "Linux",
		LockReads:        false,
		Raid5dSingleCore: true,
		SerialWriteReads: true,
		PerStripeOp:      40 * sim.Microsecond,
		PerChunkOp:       6 * sim.Microsecond,
		CopyBps:          5e9, // stripe-cache copies + xor
		ReadPerIO:        8 * sim.Microsecond,
		DegradedPageSize: 4 << 10,
		DegradedPerPage:  25 * sim.Microsecond,
	}
}

// Config parameterizes a baseline host.
type Config struct {
	Geometry raid.Geometry
	Costs    cpu.Costs
	Style    Style
	// HostCores sizes the host reactor pool (default 4).
	HostCores int
	// Deadline bounds each stripe op (default 1s).
	Deadline sim.Duration
}

// Host is a host-centric RAID controller: it is the only place parity is
// computed, and every byte of every pre-read crosses the host NIC.
type Host struct {
	eng    *sim.Engine
	fab    *core.Fabric
	geo    raid.Geometry
	cfg    Config
	cores  *cpu.Pool
	raid5d *cpu.Core // Linux's single worker, when enabled

	size    int64
	nextID  uint64
	stripeQ map[int64]*stripeQueue
	pending map[uint64]*op
	failed  map[int]bool

	stats Stats
}

// Stats counts baseline host events.
type Stats struct {
	Reads, Writes      int64
	RMWWrites          int64
	RCWWrites          int64
	FullStripeWrites   int64
	DegradedReads      int64
	Timeouts, Retries  int64
	UserBytesRead      int64
	UserBytesWritten   int64
	StripeLockConflict int64
}

type stripeQueue struct {
	busy    bool
	waiters []func()
}

type op struct {
	id        uint64
	remaining int
	doneFn    func()
	failedFn  func(missing []int)
	onPayload func(from int, off, length int64, b parity.Buffer)
	timer     *sim.Timer
	done      bool
	watch     []int
}
