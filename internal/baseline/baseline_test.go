package baseline_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"draid/internal/baseline"
	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/cpu"
	"draid/internal/gf256"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
	"draid/internal/simnet"
	"draid/internal/ssd"
)

const chunkSize = 64 << 10

func testHost(t *testing.T, targets int, level raid.Level, style baseline.Style) (*cluster.Cluster, *baseline.Host) {
	t.Helper()
	spec := cluster.DefaultSpec()
	spec.Targets = targets
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	spec.Drive = &drv
	cl := cluster.New(spec)
	h := baseline.NewHost(cl.Eng, cl.Fabric, cl.DriveCapacity(), baseline.Config{
		Geometry: raid.Geometry{Level: level, Width: targets, ChunkSize: chunkSize},
		Costs:    cl.Costs,
		Style:    style,
		Deadline: 50 * sim.Millisecond,
	})
	return cl, h
}

func mustWrite(t *testing.T, cl *cluster.Cluster, h *baseline.Host, off int64, data []byte) {
	t.Helper()
	err := errors.New("pending")
	h.Write(off, parity.FromBytes(data), func(e error) { err = e })
	cl.Eng.Run()
	if err != nil {
		t.Fatalf("write: %v", err)
	}
}

func mustRead(t *testing.T, cl *cluster.Cluster, h *baseline.Host, off, n int64) []byte {
	t.Helper()
	err := errors.New("pending")
	var out []byte
	h.Read(off, n, func(b parity.Buffer, e error) { err, out = e, b.Data() })
	cl.Eng.Run()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func verifyParity(t *testing.T, cl *cluster.Cluster, h *baseline.Host, stripe int64) {
	t.Helper()
	g := h.Geometry()
	base := g.DriveOffset(stripe)
	data := make([][]byte, g.DataChunks())
	for c := 0; c < g.DataChunks(); c++ {
		data[c] = cl.Drives[g.DataDrive(stripe, c)].PeekSync(base, g.ChunkSize)
	}
	wantP := make([]byte, g.ChunkSize)
	wantQ := make([]byte, g.ChunkSize)
	gf256.SyndromePQ(wantP, wantQ, data)
	if !bytes.Equal(cl.Drives[g.PDrive(stripe)].PeekSync(base, g.ChunkSize), wantP) {
		t.Fatalf("stripe %d: P inconsistent", stripe)
	}
	if g.Level == raid.Raid6 {
		if !bytes.Equal(cl.Drives[g.QDrive(stripe)].PeekSync(base, g.ChunkSize), wantQ) {
			t.Fatalf("stripe %d: Q inconsistent", stripe)
		}
	}
}

func stylesUnderTest() map[string]baseline.Style {
	return map[string]baseline.Style{
		"spdk":  baseline.SPDKStyle(),
		"linux": baseline.LinuxStyle(),
	}
}

func TestRoundTripAllModes(t *testing.T) {
	for name, style := range stylesUnderTest() {
		t.Run(name, func(t *testing.T) {
			cl, h := testHost(t, 8, raid.Raid5, style) // k=7
			cases := []struct {
				off  int64
				size int
			}{
				{4 << 10, 8 << 10},             // RMW single chunk
				{0, 3 * chunkSize},             // RCW
				{0, 7 * chunkSize},             // full stripe
				{2*chunkSize + 100, 2 << 10},   // unaligned RMW
				{6 * chunkSize, 2 * chunkSize}, // cross-stripe
			}
			for i, tc := range cases {
				data := randBytes(int64(100+i), tc.size)
				mustWrite(t, cl, h, tc.off, data)
				if got := mustRead(t, cl, h, tc.off, int64(tc.size)); !bytes.Equal(got, data) {
					t.Fatalf("case %d: round-trip mismatch", i)
				}
			}
			verifyParity(t, cl, h, 0)
			verifyParity(t, cl, h, 1)
			st := h.Stats()
			if st.RMWWrites == 0 || st.RCWWrites == 0 || st.FullStripeWrites == 0 {
				t.Fatalf("stats = %+v, expected all modes exercised", st)
			}
		})
	}
}

func TestRaid6RoundTripAndParity(t *testing.T) {
	cl, h := testHost(t, 6, raid.Raid6, baseline.SPDKStyle())
	data := randBytes(1, 2*chunkSize)
	mustWrite(t, cl, h, 0, data)
	if got := mustRead(t, cl, h, 0, int64(len(data))); !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	verifyParity(t, cl, h, 0)
}

func TestDegradedReadHostSide(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	data := randBytes(2, 16<<10)
	mustWrite(t, cl, h, 0, data)
	m := h.Geometry().DataDrive(0, 0)
	cl.FailTarget(m)
	h.SetFailed(m, true)
	cl.ResetTraffic()
	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}
	// Host-centric reconstruction drags (n-1)× the data across the host
	// NIC inbound — the Table 1 D-Read overhead.
	_, in := cl.TotalHostBytes()
	ratio := float64(in) / float64(len(data))
	if ratio < 3.5 {
		t.Fatalf("host inbound = %.2f× requested, expected ~(n-1)× amplification", ratio)
	}
}

func TestDegradedWriteUntouchedFailed(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	seed := randBytes(3, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	m := h.Geometry().DataDrive(0, 2)
	cl.FailTarget(m)
	h.SetFailed(m, true)
	newData := randBytes(4, chunkSize)
	mustWrite(t, cl, h, 0, newData)
	if got := mustRead(t, cl, h, 2*chunkSize, chunkSize); !bytes.Equal(got, seed[2*chunkSize:3*chunkSize]) {
		t.Fatal("failed chunk no longer reconstructable after degraded RMW")
	}
}

func TestDegradedWriteTouchedFailed(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	seed := randBytes(5, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	m := h.Geometry().DataDrive(0, 1)
	cl.FailTarget(m)
	h.SetFailed(m, true)
	newData := randBytes(6, chunkSize)
	mustWrite(t, cl, h, chunkSize, newData)
	if got := mustRead(t, cl, h, chunkSize, chunkSize); !bytes.Equal(got, newData) {
		t.Fatal("write to failed chunk not absorbed by parity")
	}
}

func TestTimeoutRetryMarksFailed(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	seed := randBytes(7, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	m := h.Geometry().DataDrive(0, 0)
	cl.FailTarget(m) // silent failure
	newData := randBytes(8, chunkSize)
	err := errors.New("pending")
	h.Write(0, parity.FromBytes(newData), func(e error) { err = e })
	cl.Eng.Run()
	if err != nil {
		t.Fatalf("write after silent failure: %v", err)
	}
	if h.Stats().Timeouts == 0 || h.Stats().Retries == 0 {
		t.Fatalf("stats = %+v", h.Stats())
	}
	if got := mustRead(t, cl, h, 0, chunkSize); !bytes.Equal(got, newData) {
		t.Fatal("post-retry read mismatch")
	}
}

// SPDK-style RMW writes must cost ~2× host outbound (data + parity), the
// bandwidth ceiling the paper identifies.
func TestSPDKWriteTrafficIsTwox(t *testing.T) {
	cl, h := testHost(t, 8, raid.Raid5, baseline.SPDKStyle())
	warm := randBytes(9, 128<<10)
	mustWrite(t, cl, h, 0, warm)
	cl.ResetTraffic()
	// One full chunk: the classic RMW — write data + write parity of equal
	// size (a two-chunk write would share one parity union and land at
	// 1.5×, which TestSPDKMultiChunkRMWTraffic covers).
	const userBytes = chunkSize
	mustWrite(t, cl, h, 4*chunkSize, randBytes(10, userBytes))
	out, in := cl.TotalHostBytes()
	outRatio := float64(out) / userBytes
	inRatio := float64(in) / userBytes
	if outRatio < 1.8 || outRatio > 2.3 {
		t.Fatalf("host outbound = %.2f× user bytes, want ~2×", outRatio)
	}
	if inRatio < 1.8 || inRatio > 2.3 {
		t.Fatalf("host inbound = %.2f× user bytes, want ~2× (pre-reads)", inRatio)
	}
}

// A two-chunk RMW shares one parity union, so amplification is 1.5×.
func TestSPDKMultiChunkRMWTraffic(t *testing.T) {
	cl, h := testHost(t, 8, raid.Raid5, baseline.SPDKStyle())
	mustWrite(t, cl, h, 0, randBytes(16, 128<<10))
	cl.ResetTraffic()
	const userBytes = 2 * chunkSize
	mustWrite(t, cl, h, 4*chunkSize, randBytes(17, userBytes))
	out, _ := cl.TotalHostBytes()
	if ratio := float64(out) / userBytes; ratio < 1.4 || ratio > 1.7 {
		t.Fatalf("host outbound = %.2f× user bytes, want ~1.5×", ratio)
	}
}

func TestStripeLockSerializesSPDKReads(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	data := randBytes(11, 32<<10)
	mustWrite(t, cl, h, 0, data)
	done := 0
	for i := 0; i < 4; i++ {
		h.Read(0, 8<<10, func(b parity.Buffer, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			done++
		})
	}
	cl.Eng.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if h.Stats().StripeLockConflict != 3 {
		t.Fatalf("lock conflicts = %d, want 3", h.Stats().StripeLockConflict)
	}
}

func TestLinuxReadsAreLockFree(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.LinuxStyle())
	mustWrite(t, cl, h, 0, randBytes(12, 16<<10))
	for i := 0; i < 4; i++ {
		h.Read(0, 8<<10, func(parity.Buffer, error) {})
	}
	cl.Eng.Run()
	if h.Stats().StripeLockConflict != 0 {
		t.Fatalf("lock conflicts = %d, want 0", h.Stats().StripeLockConflict)
	}
}

// Linux's single raid5d worker should make its writes measurably slower
// than SPDK's multi-core handling under concurrency.
func TestLinuxWritesSlowerThanSPDK(t *testing.T) {
	elapsed := func(style baseline.Style) sim.Time {
		cl, h := testHost(t, 8, raid.Raid5, style)
		pending := 0
		for i := 0; i < 32; i++ {
			pending++
			off := int64(i) * 7 * chunkSize // one write per stripe
			h.Write(off, parity.FromBytes(randBytes(int64(i), 16<<10)), func(err error) {
				if err != nil {
					t.Errorf("write: %v", err)
				}
				pending--
			})
		}
		end := cl.Eng.Run()
		if pending != 0 {
			t.Fatal("writes did not drain")
		}
		return end
	}
	spdk := elapsed(baseline.SPDKStyle())
	linux := elapsed(baseline.LinuxStyle())
	if linux <= spdk {
		t.Fatalf("linux (%v) should be slower than spdk (%v)", linux, spdk)
	}
}

// --- SingleMachine -----------------------------------------------------------

func newSingleMachine(t *testing.T) (*sim.Engine, *baseline.SingleMachine) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	drv := ssd.DefaultSpec()
	drv.Capacity = 64 << 20
	geo := raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: chunkSize}
	return eng, baseline.NewSingleMachine(eng, net, geo, drv, cpu.DefaultCosts(), 100)
}

func TestSingleMachineRoundTrip(t *testing.T) {
	eng, sm := newSingleMachine(t)
	data := randBytes(13, 100<<10)
	err := errors.New("pending")
	sm.Write(8<<10, parity.FromBytes(data), func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	var got []byte
	sm.Read(8<<10, int64(len(data)), func(b parity.Buffer, e error) { err, got = e, b.Data() })
	eng.Run()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read err=%v match=%v", err, bytes.Equal(got, data))
	}
}

func TestSingleMachineDegradedReadOnexTraffic(t *testing.T) {
	eng, sm := newSingleMachine(t)
	data := randBytes(14, 64<<10)
	errp := errors.New("pending")
	sm.Write(0, parity.FromBytes(data), func(e error) { errp = e })
	eng.Run()
	if errp != nil {
		t.Fatal(errp)
	}
	sm.SetFailed(4, true) // whichever member; reads of its chunks reconstruct locally
	sm.Client().ResetCounters()
	var got []byte
	sm.Read(0, int64(len(data)), func(b parity.Buffer, e error) { errp, got = e, b.Data() })
	eng.Run()
	if errp != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded read err=%v", errp)
	}
	in := sm.Client().BytesIn()
	if ratio := float64(in) / float64(len(data)); ratio > 1.1 {
		t.Fatalf("client inbound = %.2f×, want ~1× (reconstruction stays in the box)", ratio)
	}
}

func TestSingleMachineWriteOnexTraffic(t *testing.T) {
	eng, sm := newSingleMachine(t)
	data := randBytes(15, 64<<10)
	errp := errors.New("pending")
	sm.Client().ResetCounters()
	sm.Write(0, parity.FromBytes(data), func(e error) { errp = e })
	eng.Run()
	if errp != nil {
		t.Fatal(errp)
	}
	out := sm.Client().BytesOut()
	if ratio := float64(out) / float64(len(data)); ratio > 1.1 {
		t.Fatalf("client outbound = %.2f×, want ~1×", ratio)
	}
	if sm.Describe() == "" {
		t.Fatal("empty description")
	}
}

var _ = core.HostID // keep import for potential fabric assertions
