package baseline

import (
	"fmt"

	"draid/internal/blockdev"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

// Write implements blockdev.Device. All parity work happens on the host:
// pre-reads pull old data/parity across the host NIC, the worker computes,
// and the new data plus parity are written back — the 2× (RAID-5) / 3×
// (RAID-6) outbound amplification that motivates dRAID.
func (h *Host) Write(off int64, data parity.Buffer, cb func(error)) {
	n := int64(data.Len())
	if err := blockdev.CheckRange(off, n, h.size); err != nil {
		h.eng.Defer(func() { cb(err) })
		return
	}
	h.stats.Writes++
	h.stats.UserBytesWritten += n
	if n == 0 {
		h.eng.Defer(func() { cb(nil) })
		return
	}
	byStripe := raid.StripeExtents(h.geo.Split(off, n))
	pending := len(byStripe)
	var firstErr error
	for _, stripe := range raid.StripeOrder(byStripe) {
		stripe, group := stripe, byStripe[stripe]
		h.acquire(stripe, func() {
			h.stripeWrite(stripe, group, data, false, func(err error) {
				h.release(stripe)
				if err != nil && firstErr == nil {
					firstErr = err
				}
				pending--
				if pending == 0 {
					cb(firstErr)
				}
			})
		})
	}
}

func (h *Host) stripeWrite(stripe int64, exts []raid.Extent, data parity.Buffer, isRetry bool, done func(error)) {
	pAlive := !h.failed[h.geo.PDrive(stripe)]
	qAlive := h.geo.Level == raid.Raid6 && !h.failed[h.geo.QDrive(stripe)]

	var touchedFailed []raid.Extent
	failedUntouched := false
	touched := make(map[int]raid.Extent)
	for _, e := range exts {
		touched[e.Chunk] = e
		if h.failed[h.geo.DataDrive(stripe, e.Chunk)] {
			touchedFailed = append(touchedFailed, e)
		}
	}
	for c := 0; c < h.geo.DataChunks(); c++ {
		if _, ok := touched[c]; !ok && h.failed[h.geo.DataDrive(stripe, c)] {
			failedUntouched = true
		}
	}

	onTimeout := func(missing []int) {
		if isRetry || len(missing) == 0 {
			done(fmt.Errorf("baseline: stripe %d write: %w", stripe, blockdev.ErrTimeout))
			return
		}
		h.stats.Retries++
		for _, m := range missing {
			h.SetFailed(m, true)
		}
		h.stripeWrite(stripe, exts, data, true, done)
	}

	mode := h.geo.DecideWriteMode(exts)
	uLo, uHi := unionRange(exts)

	switch {
	case mode == raid.ModeFull:
		h.stats.FullStripeWrites++
		h.fullStripe(stripe, exts, data, pAlive, qAlive, onTimeout, done)
	case !pAlive && !qAlive:
		h.plainWrites(stripe, exts, data, onTimeout, done)
	case len(touchedFailed) == 0 && !failedUntouched && mode == raid.ModeRCW:
		h.stats.RCWWrites++
		h.gatherRCW(stripe, exts, data, uLo, uHi, pAlive, qAlive, onTimeout, done)
	case len(touchedFailed) == 0:
		// Healthy-touched RMW, also forced when a failed chunk is untouched.
		h.stats.RMWWrites++
		h.gatherRMW(stripe, exts, data, uLo, uHi, pAlive, qAlive, onTimeout, done)
	case len(touchedFailed) == 1 && !failedUntouched &&
		touchedFailed[0].Off == uLo && touchedFailed[0].Off+touchedFailed[0].Len == uHi:
		h.stats.RCWWrites++
		h.gatherRCW(stripe, exts, data, uLo, uHi, pAlive, qAlive, onTimeout, done)
	default:
		h.gatherAll(stripe, exts, data, uLo, uHi, pAlive, qAlive, onTimeout, done)
	}
}

func unionRange(exts []raid.Extent) (lo, hi int64) {
	lo, hi = exts[0].Off, exts[0].Off+exts[0].Len
	for _, e := range exts[1:] {
		if e.Off < lo {
			lo = e.Off
		}
		if e.Off+e.Len > hi {
			hi = e.Off + e.Len
		}
	}
	return lo, hi
}

type readReq struct {
	member   int
	off, len int64
}

type writeReq struct {
	member int
	off    int64
	buf    parity.Buffer
}

// gather issues pre-reads, then runs compute on the worker, then writes.
func (h *Host) gather(reads []readReq, work func(map[int]parity.Buffer) ([]writeReq, int), onTimeout func([]int), done func(error)) {
	got := make(map[int]parity.Buffer, len(reads))
	doWrites := func() {
		writes, cost := work(got)
		h.worker(h.stripeOverhead()+h.workCost(cost), func() {
			if len(writes) == 0 {
				done(nil)
				return
			}
			watch := make([]int, 0, len(writes))
			for _, w := range writes {
				watch = append(watch, w.member)
			}
			wo := h.newOp(len(writes), watch, func() { done(nil) }, onTimeout)
			for _, w := range writes {
				h.send(wo, w.member, nvmeof.Command{
					Opcode: nvmeof.OpWrite, Offset: w.off, Length: int64(w.buf.Len()),
				}, w.buf)
			}
		})
	}
	if len(reads) == 0 {
		h.eng.Defer(doWrites)
		return
	}
	watch := make([]int, 0, len(reads))
	for _, r := range reads {
		watch = append(watch, r.member)
	}
	ro := h.newOp(len(reads), watch, doWrites, onTimeout)
	ro.onPayload = func(from int, _, _ int64, b parity.Buffer) { got[from] = b }
	if !h.cfg.Style.SerialWriteReads {
		for _, r := range reads {
			h.send(ro, r.member, nvmeof.Command{Opcode: nvmeof.OpRead, Offset: r.off, Length: r.len}, parity.Buffer{})
		}
		return
	}
	// Serial pre-reads: walk the read states one at a time, as the POC's
	// stripe state machine does.
	idx := 0
	var next func()
	orig := ro.onPayload
	ro.onPayload = func(from int, a, b2 int64, b parity.Buffer) {
		orig(from, a, b2, b)
		if idx < len(reads) && !ro.done {
			next()
		}
	}
	next = func() {
		r := reads[idx]
		idx++
		h.send(ro, r.member, nvmeof.Command{Opcode: nvmeof.OpRead, Offset: r.off, Length: r.len}, parity.Buffer{})
	}
	next()
}

// workCost converts a byte count of parity work to worker time.
func (h *Host) workCost(bytes int) sim.Duration { return h.xorCost(bytes) }

// fullStripe computes parity straight from the user data.
func (h *Host) fullStripe(stripe int64, exts []raid.Extent, data parity.Buffer, pAlive, qAlive bool, onTimeout func([]int), done func(error)) {
	k := h.geo.DataChunks()
	cs := h.geo.ChunkSize
	base := h.geo.DriveOffset(stripe)
	chunks := make([]parity.Buffer, k)
	for _, e := range exts {
		chunks[e.Chunk] = data.Slice(int(e.VOff), int(cs))
	}
	work := func(map[int]parity.Buffer) ([]writeReq, int) {
		var writes []writeReq
		for c := 0; c < k; c++ {
			m := h.geo.DataDrive(stripe, c)
			if !h.failed[m] {
				writes = append(writes, writeReq{member: m, off: base, buf: chunks[c]})
			}
		}
		cost := 0
		if pAlive {
			writes = append(writes, writeReq{member: h.geo.PDrive(stripe), off: base, buf: parity.ComputeP(chunks)})
			cost += int(cs) * k
		}
		if qAlive {
			writes = append(writes, writeReq{member: h.geo.QDrive(stripe), off: base, buf: parity.ComputeQ(chunks, nil)})
			cost += int(cs) * k
		}
		return writes, cost
	}
	h.gather(nil, work, onTimeout, done)
}

// plainWrites updates data with no surviving parity to maintain.
func (h *Host) plainWrites(stripe int64, exts []raid.Extent, data parity.Buffer, onTimeout func([]int), done func(error)) {
	base := h.geo.DriveOffset(stripe)
	work := func(map[int]parity.Buffer) ([]writeReq, int) {
		var writes []writeReq
		for _, e := range exts {
			m := h.geo.DataDrive(stripe, e.Chunk)
			if h.failed[m] {
				continue
			}
			writes = append(writes, writeReq{member: m, off: base + e.Off, buf: data.Slice(int(e.VOff), int(e.Len))})
		}
		return writes, 0
	}
	h.gather(nil, work, onTimeout, done)
}

// gatherRMW: read old data under each written range plus old parity over
// the union; apply deltas; write back.
func (h *Host) gatherRMW(stripe int64, exts []raid.Extent, data parity.Buffer, uLo, uHi int64, pAlive, qAlive bool, onTimeout func([]int), done func(error)) {
	base := h.geo.DriveOffset(stripe)
	uLen := uHi - uLo
	var reads []readReq
	for _, e := range exts {
		reads = append(reads, readReq{member: h.geo.DataDrive(stripe, e.Chunk), off: base + e.Off, len: e.Len})
	}
	pm, qm := h.geo.PDrive(stripe), -1
	if pAlive {
		reads = append(reads, readReq{member: pm, off: base + uLo, len: uLen})
	}
	if qAlive {
		qm = h.geo.QDrive(stripe)
		reads = append(reads, readReq{member: qm, off: base + uLo, len: uLen})
	}
	work := func(got map[int]parity.Buffer) ([]writeReq, int) {
		cost := 0
		pNew := parity.Sized(int(uLen))
		qNew := pNew
		if pAlive {
			pNew = got[pm].Clone()
		}
		if qAlive {
			qNew = got[qm].Clone()
		}
		var writes []writeReq
		for _, e := range exts {
			m := h.geo.DataDrive(stripe, e.Chunk)
			newSeg := data.Slice(int(e.VOff), int(e.Len))
			delta := parity.XORInto(got[m].Clone(), newSeg)
			rel := int(e.Off - uLo)
			if pAlive {
				pSub := pNew.Slice(rel, int(e.Len))
				parity.XORInto(pSub, delta)
				if pSub.Elided() {
					pNew = parity.Sized(int(uLen))
				}
				cost += int(e.Len) * 2
			}
			if qAlive {
				qSub := qNew.Slice(rel, int(e.Len))
				parity.MulAddInto(qSub, delta, parity.QCoeff(e.Chunk))
				if qSub.Elided() {
					qNew = parity.Sized(int(uLen))
				}
				cost += int(e.Len) * 2
			}
			writes = append(writes, writeReq{member: m, off: base + e.Off, buf: newSeg})
		}
		if pAlive {
			writes = append(writes, writeReq{member: pm, off: base + uLo, buf: pNew})
		}
		if qAlive {
			writes = append(writes, writeReq{member: qm, off: base + uLo, buf: qNew})
		}
		return writes, cost
	}
	h.gather(reads, work, onTimeout, done)
}

// gatherRCW: read the union from chunks whose content is not fully known
// from the write payload, recompute parity over the union, write back.
// Valid when any failed touched chunk covers the whole union.
func (h *Host) gatherRCW(stripe int64, exts []raid.Extent, data parity.Buffer, uLo, uHi int64, pAlive, qAlive bool, onTimeout func([]int), done func(error)) {
	base := h.geo.DriveOffset(stripe)
	uLen := uHi - uLo
	k := h.geo.DataChunks()
	extBy := make(map[int]raid.Extent)
	for _, e := range exts {
		extBy[e.Chunk] = e
	}
	var reads []readReq
	memberOf := make([]int, k)
	for c := 0; c < k; c++ {
		m := h.geo.DataDrive(stripe, c)
		memberOf[c] = m
		if h.failed[m] {
			continue
		}
		e, isTouched := extBy[c]
		fullyCovered := isTouched && e.Off == uLo && e.Off+e.Len == uHi
		if !fullyCovered {
			reads = append(reads, readReq{member: m, off: base + uLo, len: uLen})
		}
	}
	work := func(got map[int]parity.Buffer) ([]writeReq, int) {
		cost := 0
		values := make([]parity.Buffer, k)
		for c := 0; c < k; c++ {
			m := memberOf[c]
			e, isTouched := extBy[c]
			switch {
			case isTouched && e.Off == uLo && e.Off+e.Len == uHi:
				values[c] = data.Slice(int(e.VOff), int(e.Len))
			case h.failed[m]:
				// Untouched failed chunks are excluded by the caller; a
				// touched-but-not-covering failed chunk routes to
				// gatherAll. Reaching here means covered, handled above.
				values[c] = parity.Sized(int(uLen))
			default:
				v := got[m].Clone()
				if isTouched && !data.Elided() {
					v.CopyAt(int(e.Off-uLo), data.Slice(int(e.VOff), int(e.Len)))
				}
				values[c] = v
			}
		}
		var writes []writeReq
		for _, e := range exts {
			m := memberOf[e.Chunk]
			if h.failed[m] {
				continue
			}
			writes = append(writes, writeReq{member: m, off: base + e.Off, buf: data.Slice(int(e.VOff), int(e.Len))})
		}
		if pAlive {
			writes = append(writes, writeReq{member: h.geo.PDrive(stripe), off: base + uLo, buf: parity.ComputeP(values)})
			cost += int(uLen) * k
		}
		if qAlive {
			writes = append(writes, writeReq{member: h.geo.QDrive(stripe), off: base + uLo, buf: parity.ComputeQ(values, nil)})
			cost += int(uLen) * k
		}
		return writes, cost
	}
	h.gather(reads, work, onTimeout, done)
}

// gatherAll is the catch-all consistency path: read the union from every
// alive data chunk and P, reconstruct any lost old content, overlay the new
// data, recompute parity, and write back. Mirrors real MD's degraded
// handling of awkward geometries.
func (h *Host) gatherAll(stripe int64, exts []raid.Extent, data parity.Buffer, uLo, uHi int64, pAlive, qAlive bool, onTimeout func([]int), done func(error)) {
	base := h.geo.DriveOffset(stripe)
	uLen := uHi - uLo
	k := h.geo.DataChunks()

	var lost []int
	var reads []readReq
	for c := 0; c < k; c++ {
		m := h.geo.DataDrive(stripe, c)
		if h.failed[m] {
			lost = append(lost, c)
			continue
		}
		reads = append(reads, readReq{member: m, off: base + uLo, len: uLen})
	}
	if len(lost) > 1 || (len(lost) == 1 && !pAlive) {
		h.eng.Defer(func() {
			done(fmt.Errorf("baseline: stripe %d write: %w", stripe, blockdev.ErrDoubleFault))
		})
		return
	}
	pm := h.geo.PDrive(stripe)
	if len(lost) == 1 {
		reads = append(reads, readReq{member: pm, off: base + uLo, len: uLen})
	}
	work := func(got map[int]parity.Buffer) ([]writeReq, int) {
		values := make([]parity.Buffer, k)
		for c := 0; c < k; c++ {
			m := h.geo.DataDrive(stripe, c)
			if !h.failed[m] {
				values[c] = got[m].Clone()
			}
		}
		if len(lost) == 1 {
			acc := got[pm].Clone()
			for c := 0; c < k; c++ {
				m := h.geo.DataDrive(stripe, c)
				if !h.failed[m] {
					acc = parity.XORInto(acc, got[m])
				}
			}
			values[lost[0]] = acc
		}
		for _, e := range exts {
			if data.Elided() {
				values[e.Chunk] = parity.Sized(int(uLen))
				continue
			}
			values[e.Chunk].CopyAt(int(e.Off-uLo), data.Slice(int(e.VOff), int(e.Len)))
		}
		var writes []writeReq
		cost := 0
		for _, e := range exts {
			m := h.geo.DataDrive(stripe, e.Chunk)
			if h.failed[m] {
				continue
			}
			writes = append(writes, writeReq{member: m, off: base + e.Off, buf: data.Slice(int(e.VOff), int(e.Len))})
		}
		if pAlive {
			writes = append(writes, writeReq{member: pm, off: base + uLo, buf: parity.ComputeP(values)})
			cost += int(uLen) * k
		}
		if qAlive {
			writes = append(writes, writeReq{member: h.geo.QDrive(stripe), off: base + uLo, buf: parity.ComputeQ(values, nil)})
			cost += int(uLen) * k
		}
		return writes, cost
	}
	h.gather(reads, work, onTimeout, done)
}

var _ blockdev.Device = (*Host)(nil)
