package baseline

import (
	"fmt"
	"sort"

	"draid/internal/blockdev"
	"draid/internal/core"
	"draid/internal/cpu"
	"draid/internal/gf256"
	"draid/internal/nvmeof"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
)

// NewHost attaches a host-centric baseline controller to the fabric's host
// endpoint (in place of a dRAID host — one controller per fabric).
func NewHost(eng *sim.Engine, fab *core.Fabric, driveCapacity int64, cfg Config) *Host {
	if err := cfg.Geometry.Validate(); err != nil {
		panic(err)
	}
	if cfg.Geometry.Width != fab.Width() {
		panic(fmt.Sprintf("baseline: geometry width %d != fabric targets %d", cfg.Geometry.Width, fab.Width()))
	}
	if cfg.HostCores <= 0 {
		cfg.HostCores = 4
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = sim.Second
	}
	h := &Host{
		eng: eng, fab: fab, geo: cfg.Geometry, cfg: cfg,
		cores:   cpu.NewPool(eng, cfg.HostCores),
		size:    cfg.Geometry.VirtualSize(driveCapacity),
		stripeQ: make(map[int64]*stripeQueue),
		pending: make(map[uint64]*op),
		failed:  make(map[int]bool),
	}
	if cfg.Style.Raid5dSingleCore {
		h.raid5d = cpu.NewCore(eng)
	}
	fab.Register(core.HostID, h.handle)
	return h
}

// Size implements blockdev.Device.
func (h *Host) Size() int64 { return h.size }

// Stats returns a snapshot of counters.
func (h *Host) Stats() Stats { return h.stats }

// Geometry returns the array geometry.
func (h *Host) Geometry() raid.Geometry { return h.geo }

// SetFailed marks a member failed/restored.
func (h *Host) SetFailed(member int, failed bool) {
	if failed {
		h.failed[member] = true
	} else {
		delete(h.failed, member)
	}
}

// FailedMembers returns sorted failed member indices.
func (h *Host) FailedMembers() []int {
	var out []int
	for m := range h.failed {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// worker schedules stripe-processing work: on Linux's single raid5d core
// when configured, otherwise on the host pool.
func (h *Host) worker(d sim.Duration, fn func()) {
	if h.raid5d != nil {
		h.raid5d.Exec(d, fn)
		return
	}
	h.cores.Exec(d, fn)
}

// stripeOverhead is the per-stripe-operation worker cost.
func (h *Host) stripeOverhead() sim.Duration {
	return h.cfg.Style.PerStripeOp + sim.Duration(h.geo.Width)*h.cfg.Style.PerChunkOp
}

// xorCost converts parity byte counts to worker time.
func (h *Host) xorCost(n int) sim.Duration {
	if h.cfg.Style.CopyBps > 0 {
		return sim.Duration(float64(n) / h.cfg.Style.CopyBps * 1e9)
	}
	return h.cfg.Costs.Xor(n)
}

func (h *Host) gfCost(n int) sim.Duration {
	if h.cfg.Style.CopyBps > 0 {
		return sim.Duration(float64(n) / h.cfg.Style.CopyBps * 1e9)
	}
	return h.cfg.Costs.Gf(n)
}

// --- op plumbing -------------------------------------------------------------

func (h *Host) handle(m core.Message) {
	h.cores.Exec(h.cfg.Costs.PerMsg, func() {
		o, ok := h.pending[m.Cmd.ID]
		if !ok || o.done {
			return
		}
		if m.Cmd.Status != nvmeof.StatusSuccess {
			h.endOp(o, []int{int(m.From)})
			return
		}
		if m.Payload.Len() > 0 && o.onPayload != nil {
			o.onPayload(int(m.From), m.Cmd.Offset, m.Cmd.Length, m.Payload)
		}
		o.remaining--
		if o.remaining == 0 {
			h.fin(o)
		}
	})
}

func (h *Host) fin(o *op) {
	if o.done {
		return
	}
	o.done = true
	o.timer.Stop()
	delete(h.pending, o.id)
	o.doneFn()
}

func (h *Host) endOp(o *op, missing []int) {
	if o.done {
		return
	}
	o.done = true
	o.timer.Stop()
	delete(h.pending, o.id)
	o.failedFn(missing)
}

func (h *Host) newOp(expect int, watch []int, done func(), failed func(missing []int)) *op {
	h.nextID++
	o := &op{id: h.nextID, remaining: expect, doneFn: done, failedFn: failed, watch: watch}
	h.pending[o.id] = o
	o.timer = h.eng.After(h.cfg.Deadline, func() {
		if o.done {
			return
		}
		h.stats.Timeouts++
		var down []int
		for _, t := range o.watch {
			if h.fab.Node(core.NodeID(t)).Down() {
				down = append(down, t)
			}
		}
		h.endOp(o, down)
	})
	return o
}

func (h *Host) send(o *op, member int, cmd nvmeof.Command, payload parity.Buffer) {
	cmd.ID = o.id
	h.fab.Send(core.HostID, core.NodeID(member), cmd, payload)
}

// --- stripe lock -------------------------------------------------------------

func (h *Host) acquire(stripe int64, fn func()) {
	q, ok := h.stripeQ[stripe]
	if !ok {
		q = &stripeQueue{}
		h.stripeQ[stripe] = q
	}
	if !q.busy {
		q.busy = true
		fn()
		return
	}
	h.stats.StripeLockConflict++
	q.waiters = append(q.waiters, fn)
}

func (h *Host) release(stripe int64) {
	q := h.stripeQ[stripe]
	if q == nil {
		return
	}
	if len(q.waiters) == 0 {
		delete(h.stripeQ, stripe)
		return
	}
	next := q.waiters[0]
	q.waiters = q.waiters[1:]
	h.eng.Defer(next)
}

// --- reads -------------------------------------------------------------------

// Read implements blockdev.Device.
func (h *Host) Read(off, n int64, cb func(parity.Buffer, error)) {
	if err := blockdev.CheckRange(off, n, h.size); err != nil {
		h.eng.Defer(func() { cb(parity.Buffer{}, err) })
		return
	}
	h.stats.Reads++
	h.stats.UserBytesRead += n
	if n == 0 {
		h.eng.Defer(func() { cb(parity.Alloc(0), nil) })
		return
	}
	exts := h.geo.Split(off, n)
	buf := parity.Alloc(int(n))
	elided := false
	pending := len(exts)
	var firstErr error
	part := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		pending--
		if pending == 0 {
			if firstErr != nil {
				cb(parity.Buffer{}, firstErr)
				return
			}
			if elided {
				cb(parity.Sized(int(n)), nil)
				return
			}
			cb(buf, nil)
		}
	}
	put := func(vOff int64, b parity.Buffer) {
		if b.Elided() {
			elided = true
			return
		}
		buf.CopyAt(int(vOff), b)
	}
	for _, e := range exts {
		e := e
		run := func(done func(error)) {
			if h.failed[h.geo.DataDrive(e.Stripe, e.Chunk)] {
				h.degradedReadExtent(e, put, done)
			} else {
				h.normalReadExtent(e, put, done)
			}
		}
		if h.cfg.Style.LockReads {
			h.acquire(e.Stripe, func() {
				run(func(err error) {
					h.release(e.Stripe)
					part(err)
				})
			})
		} else {
			run(part)
		}
	}
}

func (h *Host) normalReadExtent(e raid.Extent, put func(int64, parity.Buffer), done func(error)) {
	member := h.geo.DataDrive(e.Stripe, e.Chunk)
	o := h.newOp(1, []int{member},
		func() { done(nil) },
		func(missing []int) { h.readRetry(e, missing, put, done) },
	)
	o.onPayload = func(_ int, _, _ int64, b parity.Buffer) { put(e.VOff, b) }
	h.cores.Exec(h.cfg.Style.ReadPerIO, func() {
		h.send(o, member, nvmeof.Command{
			Opcode: nvmeof.OpRead,
			Offset: h.geo.DriveOffset(e.Stripe) + e.Off, Length: e.Len,
		}, parity.Buffer{})
	})
}

func (h *Host) readRetry(e raid.Extent, missing []int, put func(int64, parity.Buffer), done func(error)) {
	if len(missing) == 0 {
		done(fmt.Errorf("baseline: stripe %d read: %w", e.Stripe, blockdev.ErrTimeout))
		return
	}
	h.stats.Retries++
	for _, m := range missing {
		h.SetFailed(m, true)
	}
	h.degradedReadExtent(e, put, done)
}

// degradedReadExtent reconstructs one extent on the host: every survivor
// segment crosses the host NIC ((n−1)× inbound amplification), then the
// worker XORs/solves.
func (h *Host) degradedReadExtent(e raid.Extent, put func(int64, parity.Buffer), done func(error)) {
	h.stats.DegradedReads++
	stripe := e.Stripe
	rOff := h.geo.DriveOffset(stripe) + e.Off

	pieces := make(map[int]*recPiece)
	var members []int
	failedData := 0
	for m := 0; m < h.geo.Width; m++ {
		if kind, _ := h.geo.Role(stripe, m); h.failed[m] && kind == raid.KindData {
			failedData++
		}
	}
	needQ := failedData > 1 || h.failed[h.geo.PDrive(stripe)]
	for m := 0; m < h.geo.Width; m++ {
		if h.failed[m] {
			continue
		}
		kind, idx := h.geo.Role(stripe, m)
		if kind == raid.KindQ && !needQ {
			continue // Q not needed for single-failure recovery
		}
		pieces[m] = &recPiece{kind: kind, dataIdx: idx}
		members = append(members, m)
	}
	if failedData+lostParity(h, stripe) > h.geo.Level.ParityCount() {
		h.eng.Defer(func() {
			done(fmt.Errorf("baseline: stripe %d: %w", stripe, blockdev.ErrDoubleFault))
		})
		return
	}
	o := h.newOp(len(members), members,
		func() {
			work := h.stripeOverhead() + h.xorCost(int(e.Len)*len(members))
			if h.cfg.Style.DegradedPageSize > 0 {
				pages := (e.Len + h.cfg.Style.DegradedPageSize - 1) / h.cfg.Style.DegradedPageSize
				work += sim.Duration(pages) * h.cfg.Style.DegradedPerPage
			}
			h.worker(work, func() {
				out := h.solve(stripe, e, pieces)
				put(e.VOff, out)
				done(nil)
			})
		},
		func(missing []int) {
			done(fmt.Errorf("baseline: stripe %d: members %v lost during recovery: %w",
				stripe, missing, blockdev.ErrDegraded))
		},
	)
	o.onPayload = func(from int, _, _ int64, b parity.Buffer) {
		if p := pieces[from]; p != nil {
			p.buf = b
		}
	}
	for _, m := range members {
		h.send(o, m, nvmeof.Command{Opcode: nvmeof.OpRead, Offset: rOff, Length: e.Len}, parity.Buffer{})
	}
}

func lostParity(h *Host, stripe int64) int {
	n := 0
	if h.failed[h.geo.PDrive(stripe)] {
		n++
	}
	if h.geo.Level == raid.Raid6 && h.failed[h.geo.QDrive(stripe)] {
		n++
	}
	return n
}

// recPiece is one survivor segment gathered to the host for reconstruction.
type recPiece struct {
	kind    raid.ChunkKind
	dataIdx int
	buf     parity.Buffer
}

// solve recovers extent e's data chunk from gathered survivor pieces using
// XOR (single failure) or the RAID-6 GF solves.
func (h *Host) solve(stripe int64, e raid.Extent, pieces map[int]*recPiece) parity.Buffer {
	rLen := int(e.Len)
	var pBuf, qBuf parity.Buffer
	var dataBufs []parity.Buffer
	var dataIdx []int
	for _, p := range pieces {
		if p.buf.Elided() {
			return parity.Sized(rLen)
		}
		switch p.kind {
		case raid.KindP:
			pBuf = p.buf
		case raid.KindQ:
			qBuf = p.buf
		default:
			dataBufs = append(dataBufs, p.buf)
			dataIdx = append(dataIdx, p.dataIdx)
		}
	}
	var lostData []int
	for m := range h.failed {
		if k, idx := h.geo.Role(stripe, m); k == raid.KindData {
			lostData = append(lostData, idx)
		}
	}
	sort.Ints(lostData)

	switch {
	case len(lostData) == 1 && !pBuf.Elided() && pBuf.Len() == rLen:
		acc := pBuf.Clone()
		for _, d := range dataBufs {
			acc = parity.XORInto(acc, d)
		}
		return acc
	case len(lostData) == 1 && qBuf.Len() == rLen && !qBuf.Elided():
		survivors := make([][]byte, len(dataBufs))
		for i, d := range dataBufs {
			survivors[i] = d.Data()
		}
		out := make([]byte, rLen)
		gf256.RecoverOneDataFromQ(out, qBuf.Data(), survivors, dataIdx, e.Chunk)
		return parity.FromBytes(out)
	case len(lostData) == 2:
		survivors := make([][]byte, len(dataBufs))
		for i, d := range dataBufs {
			survivors[i] = d.Data()
		}
		dx := make([]byte, rLen)
		dy := make([]byte, rLen)
		gf256.RecoverTwoData(dx, dy, pBuf.Data(), qBuf.Data(), survivors, dataIdx, lostData[0], lostData[1])
		if e.Chunk == lostData[0] {
			return parity.FromBytes(dx)
		}
		return parity.FromBytes(dy)
	default:
		return parity.Sized(rLen)
	}
}
