package baseline_test

import (
	"bytes"
	"errors"
	"testing"

	"draid/internal/baseline"
	"draid/internal/parity"
	"draid/internal/raid"
)

func TestSizeAndFailedMembers(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	_ = cl
	want := (int64(64<<20) / chunkSize) * 4 * chunkSize
	if h.Size() != want {
		t.Fatalf("size = %d, want %d", h.Size(), want)
	}
	h.SetFailed(3, true)
	h.SetFailed(1, true)
	if got := h.FailedMembers(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("failed = %v", got)
	}
	h.SetFailed(3, false)
	if got := h.FailedMembers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed after restore = %v", got)
	}
}

func TestReadRetryAfterSilentFailure(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	data := randBytes(20, 16<<10)
	mustWrite(t, cl, h, 0, data)
	m := h.Geometry().DataDrive(0, 0)
	cl.FailTarget(m) // host not told
	got := mustRead(t, cl, h, 0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("read retry mismatch")
	}
	if h.Stats().Retries == 0 || h.Stats().Timeouts == 0 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

// plainWrites: RAID-5 with its parity member dead degenerates to bare data
// writes.
func TestPlainWritesWhenNoParitySurvives(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	seed := randBytes(21, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	p := h.Geometry().PDrive(0)
	cl.FailTarget(p)
	h.SetFailed(p, true)
	newData := randBytes(22, 8<<10)
	mustWrite(t, cl, h, 0, newData)
	if got := mustRead(t, cl, h, 0, 8<<10); !bytes.Equal(got, newData) {
		t.Fatal("plain write round-trip mismatch")
	}
}

// gatherAll: a multi-chunk write partially covering a failed chunk needs
// host-side reconstruction of the lost old content.
func TestGatherAllPartialCoverageOfFailedChunk(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	seed := randBytes(23, 4*chunkSize)
	mustWrite(t, cl, h, 0, seed)
	m := h.Geometry().DataDrive(0, 1)
	cl.FailTarget(m)
	h.SetFailed(m, true)

	off := int64(chunkSize / 2)
	data := randBytes(24, chunkSize) // half of chunk 0 + half of chunk 1 (failed)
	mustWrite(t, cl, h, off, data)
	if got := mustRead(t, cl, h, off, int64(len(data))); !bytes.Equal(got, data) {
		t.Fatal("gatherAll round-trip mismatch")
	}
	// Untouched tail of the failed chunk preserved through reconstruction.
	tail := mustRead(t, cl, h, chunkSize+chunkSize/2, chunkSize/2)
	if !bytes.Equal(tail, seed[chunkSize+chunkSize/2:2*chunkSize]) {
		t.Fatal("gatherAll corrupted untouched range")
	}
}

// Q-based solves at the host: RAID-6 degraded reads with P also lost, and
// with two data members lost.
func TestRaid6HostSolves(t *testing.T) {
	cl, h := testHost(t, 6, raid.Raid6, baseline.SPDKStyle())
	data := randBytes(25, 4*chunkSize)
	mustWrite(t, cl, h, 0, data)
	g := h.Geometry()

	// Data + P lost.
	m := g.DataDrive(0, 1)
	cl.FailTarget(m)
	h.SetFailed(m, true)
	p := g.PDrive(0)
	cl.FailTarget(p)
	h.SetFailed(p, true)
	got := mustRead(t, cl, h, chunkSize, chunkSize)
	if !bytes.Equal(got, data[chunkSize:2*chunkSize]) {
		t.Fatal("data+P recovery via Q mismatch")
	}
}

func TestRaid6TwoDataLostHostSolve(t *testing.T) {
	cl, h := testHost(t, 6, raid.Raid6, baseline.SPDKStyle())
	data := randBytes(26, 4*chunkSize)
	mustWrite(t, cl, h, 0, data)
	g := h.Geometry()
	for _, c := range []int{0, 2} {
		m := g.DataDrive(0, c)
		cl.FailTarget(m)
		h.SetFailed(m, true)
	}
	for _, c := range []int{0, 2} {
		got := mustRead(t, cl, h, int64(c)*chunkSize, chunkSize)
		if !bytes.Equal(got, data[int64(c)*chunkSize:int64(c+1)*chunkSize]) {
			t.Fatalf("two-data-lost recovery mismatch for chunk %d", c)
		}
	}
}

func TestTooManyFailuresReadFails(t *testing.T) {
	cl, h := testHost(t, 5, raid.Raid5, baseline.SPDKStyle())
	mustWrite(t, cl, h, 0, randBytes(27, 4*chunkSize))
	g := h.Geometry()
	for _, c := range []int{0, 1} {
		m := g.DataDrive(0, c)
		cl.FailTarget(m)
		h.SetFailed(m, true)
	}
	err := errors.New("pending")
	h.Read(0, chunkSize, func(_ parity.Buffer, e error) { err = e })
	cl.Eng.Run()
	if err == nil {
		t.Fatal("RAID-5 double failure read should error")
	}
}

// SingleMachine degraded write path and Size.
func TestSingleMachineDegradedWriteAndSize(t *testing.T) {
	eng, sm := newSingleMachine(t)
	if sm.Size() <= 0 {
		t.Fatal("size")
	}
	seed := randBytes(28, 4*64<<10)
	errp := errors.New("pending")
	sm.Write(0, parity.FromBytes(seed), func(e error) { errp = e })
	eng.Run()
	if errp != nil {
		t.Fatal(errp)
	}
	// Out-of-range checks.
	var oErr error
	sm.Read(sm.Size(), 4, func(_ parity.Buffer, e error) { oErr = e })
	eng.Run()
	if oErr == nil {
		t.Fatal("out-of-range read accepted")
	}
	sm.Write(-1, parity.Sized(4), func(e error) { oErr = e })
	eng.Run()
	if oErr == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestSingleMachineReconstructLocal(t *testing.T) {
	eng, sm := newSingleMachine(t)
	seed := randBytes(29, 4*64<<10) // full stripe at 64 KB chunks, width 5
	errp := errors.New("pending")
	sm.Write(0, parity.FromBytes(seed), func(e error) { errp = e })
	eng.Run()
	if errp != nil {
		t.Fatal(errp)
	}
	// Fail the member holding chunk 0 and read it back (local XOR).
	g := raid.Geometry{Level: raid.Raid5, Width: 5, ChunkSize: chunkSize}
	sm.SetFailed(g.DataDrive(0, 0), true)
	var got []byte
	sm.Read(0, chunkSize, func(b parity.Buffer, e error) { errp, got = e, b.Data() })
	eng.Run()
	if errp != nil || !bytes.Equal(got, seed[:chunkSize]) {
		t.Fatalf("local reconstruction mismatch err=%v", errp)
	}
}

func TestLinuxGfCostUsesCopyRate(t *testing.T) {
	cl, h := testHost(t, 6, raid.Raid6, baseline.LinuxStyle())
	data := randBytes(30, 2*chunkSize)
	mustWrite(t, cl, h, 0, data)
	if got := mustRead(t, cl, h, 0, int64(len(data))); !bytes.Equal(got, data) {
		t.Fatal("linux RAID-6 round-trip mismatch")
	}
	verifyParity(t, cl, h, 0)
}
