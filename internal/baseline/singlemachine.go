package baseline

import (
	"fmt"

	"draid/internal/blockdev"
	"draid/internal/cpu"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/sim"
	"draid/internal/simnet"
	"draid/internal/ssd"
)

// SingleMachine is the remote RAID architecture of Table 1's first column:
// the RAID controller and all member drives live on one storage server; the
// client reaches the virtual device over the network. Network overhead is
// 1× in every state (parity traffic never leaves the box) but a server
// outage takes out the whole array, the hot spare must be pre-provisioned,
// and scaling requires pre-provisioned slots — the qualitative rows of
// Table 1.
type SingleMachine struct {
	eng    *sim.Engine
	conn   *simnet.Conn
	client *simnet.Node
	server *simnet.Node
	core   *cpu.Core
	costs  cpu.Costs
	geo    raid.Geometry
	drives []*ssd.Drive
	size   int64
	failed map[int]bool
	hdr    int64 // request header bytes
}

// NewSingleMachine builds the client, the storage server with geo.Width
// local drives, and the connecting link.
func NewSingleMachine(eng *sim.Engine, net *simnet.Network, geo raid.Geometry, driveSpec ssd.Spec, costs cpu.Costs, gbps float64) *SingleMachine {
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	client := net.NewNode("sm-client")
	client.AddNIC("nic0", gbps)
	server := net.NewNode("sm-server")
	server.AddNIC("nic0", gbps)
	s := &SingleMachine{
		eng: eng, client: client, server: server,
		conn:   net.Connect(client, server),
		core:   cpu.NewCore(eng),
		costs:  costs,
		geo:    geo,
		size:   geo.VirtualSize(driveSpec.Capacity),
		failed: make(map[int]bool),
		hdr:    64,
	}
	for i := 0; i < geo.Width; i++ {
		s.drives = append(s.drives, ssd.New(eng, driveSpec))
	}
	return s
}

// Client returns the client node (for traffic accounting).
func (s *SingleMachine) Client() *simnet.Node { return s.client }

// SetFailed marks a local member drive failed (the array keeps serving
// degraded I/O; a SERVER failure in this architecture loses everything,
// which is the point of Table 1's fault-tolerance row).
func (s *SingleMachine) SetFailed(member int, failed bool) {
	if failed {
		s.failed[member] = true
	} else {
		delete(s.failed, member)
	}
}

// Size implements blockdev.Device.
func (s *SingleMachine) Size() int64 { return s.size }

// Read implements blockdev.Device: request goes over, only the requested
// bytes come back — reconstruction happens inside the box.
func (s *SingleMachine) Read(off, n int64, cb func(parity.Buffer, error)) {
	if err := blockdev.CheckRange(off, n, s.size); err != nil {
		s.eng.Defer(func() { cb(parity.Buffer{}, err) })
		return
	}
	s.conn.Send(s.client, s.hdr, func() {
		s.serveRead(off, n, func(b parity.Buffer, err error) {
			s.conn.Send(s.server, int64(b.Len())+s.hdr, func() { cb(b, err) })
		})
	})
}

// Write implements blockdev.Device: data crosses the wire once; all RAID
// I/O stays local.
func (s *SingleMachine) Write(off int64, data parity.Buffer, cb func(error)) {
	if err := blockdev.CheckRange(off, int64(data.Len()), s.size); err != nil {
		s.eng.Defer(func() { cb(err) })
		return
	}
	s.conn.Send(s.client, int64(data.Len())+s.hdr, func() {
		s.serveWrite(off, data, func(err error) {
			s.conn.Send(s.server, s.hdr, func() { cb(err) })
		})
	})
}

// serveRead handles a read locally, reconstructing failed chunks from the
// local peers.
func (s *SingleMachine) serveRead(off, n int64, cb func(parity.Buffer, error)) {
	exts := s.geo.Split(off, n)
	out := parity.Alloc(int(n))
	elided := false
	pending := len(exts)
	var firstErr error
	part := func(vOff int64, b parity.Buffer, err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if b.Elided() {
			elided = true
		} else if err == nil {
			out.CopyAt(int(vOff), b)
		}
		pending--
		if pending == 0 {
			if firstErr != nil {
				cb(parity.Buffer{}, firstErr)
			} else if elided {
				cb(parity.Sized(int(n)), nil)
			} else {
				cb(out, nil)
			}
		}
	}
	for _, e := range exts {
		e := e
		m := s.geo.DataDrive(e.Stripe, e.Chunk)
		absOff := s.geo.DriveOffset(e.Stripe) + e.Off
		if !s.failed[m] {
			s.drives[m].Read(absOff, e.Len, func(b parity.Buffer, err error) {
				s.core.Exec(s.costs.PerIO, func() { part(e.VOff, b, err) })
			})
			continue
		}
		s.reconstructLocal(e.Stripe, absOff, e.Len, m, func(b parity.Buffer, err error) {
			part(e.VOff, b, err)
		})
	}
	if len(exts) == 0 {
		s.eng.Defer(func() { cb(parity.Alloc(0), nil) })
	}
}

// reconstructLocal XORs the surviving chunks of the stripe on the local
// core — drive I/O but zero network.
func (s *SingleMachine) reconstructLocal(stripe, absOff, length int64, lost int, cb func(parity.Buffer, error)) {
	var members []int
	for m := 0; m < s.geo.Width; m++ {
		kind, _ := s.geo.Role(stripe, m)
		if m == lost || s.failed[m] || kind == raid.KindQ {
			continue
		}
		members = append(members, m)
	}
	if len(members) < s.geo.DataChunks() {
		s.eng.Defer(func() {
			cb(parity.Buffer{}, fmt.Errorf("baseline: stripe %d: %w", stripe, blockdev.ErrDoubleFault))
		})
		return
	}
	acc := parity.Alloc(int(length))
	pending := len(members)
	failed := false
	for _, m := range members {
		s.drives[m].Read(absOff, length, func(b parity.Buffer, err error) {
			if err != nil {
				failed = true
			}
			s.core.Exec(s.costs.Xor(int(length)), func() {
				if err == nil {
					acc = parity.XORInto(acc, b)
				}
				pending--
				if pending == 0 {
					if failed {
						cb(parity.Buffer{}, fmt.Errorf("baseline: stripe %d: member read failed during recovery: %w",
							stripe, blockdev.ErrDegraded))
						return
					}
					cb(acc, nil)
				}
			})
		})
	}
}

// serveWrite handles a write locally with read-modify-write per stripe.
func (s *SingleMachine) serveWrite(off int64, data parity.Buffer, cb func(error)) {
	byStripe := raid.StripeExtents(s.geo.Split(off, int64(data.Len())))
	pending := len(byStripe)
	var firstErr error
	for _, stripe := range raid.StripeOrder(byStripe) {
		exts := byStripe[stripe]
		s.localStripeWrite(stripe, exts, data, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			pending--
			if pending == 0 {
				cb(firstErr)
			}
		})
	}
	if len(byStripe) == 0 {
		s.eng.Defer(func() { cb(nil) })
	}
}

func (s *SingleMachine) localStripeWrite(stripe int64, exts []raid.Extent, data parity.Buffer, done func(error)) {
	base := s.geo.DriveOffset(stripe)
	pm := s.geo.PDrive(stripe)
	pAlive := !s.failed[pm]
	uLo, uHi := unionRange(exts)
	uLen := uHi - uLo

	// Local RMW: read old data + old parity, apply deltas, write back.
	// (Single-machine arrays can afford RMW everywhere; mode nuances don't
	// change the network picture Table 1 cares about.)
	type oldSeg struct {
		e   raid.Extent
		buf parity.Buffer
	}
	var olds []*oldSeg
	var pOld parity.Buffer
	reads := 0
	var anyErr error
	var finish func()
	part := func() {
		reads--
		if reads == 0 {
			finish()
		}
	}
	for _, e := range exts {
		m := s.geo.DataDrive(stripe, e.Chunk)
		if s.failed[m] {
			continue
		}
		seg := &oldSeg{e: e}
		olds = append(olds, seg)
		reads++
		s.drives[m].Read(base+e.Off, e.Len, func(b parity.Buffer, err error) {
			if err != nil {
				anyErr = err
			}
			seg.buf = b
			part()
		})
	}
	if pAlive {
		reads++
		s.drives[pm].Read(base+uLo, uLen, func(b parity.Buffer, err error) {
			if err != nil {
				anyErr = err
			}
			pOld = b
			part()
		})
	}
	finish = func() {
		if anyErr != nil {
			done(anyErr)
			return
		}
		work := s.costs.Xor(int(uLen) * (len(olds) + 1))
		s.core.Exec(work, func() {
			var pNew parity.Buffer
			if pAlive {
				pNew = pOld.Clone()
				for _, seg := range olds {
					delta := parity.XORInto(seg.buf.Clone(), data.Slice(int(seg.e.VOff), int(seg.e.Len)))
					sub := pNew.Slice(int(seg.e.Off-uLo), int(seg.e.Len))
					merged := parity.XORInto(sub, delta)
					if merged.Elided() {
						pNew = parity.Sized(int(uLen))
					}
				}
			}
			writes := 0
			var wErr error
			wPart := func(err error) {
				if err != nil && wErr == nil {
					wErr = err
				}
				writes--
				if writes == 0 {
					done(wErr)
				}
			}
			for _, seg := range olds {
				m := s.geo.DataDrive(stripe, seg.e.Chunk)
				writes++
				s.drives[m].Write(base+seg.e.Off, data.Slice(int(seg.e.VOff), int(seg.e.Len)), wPart)
			}
			if pAlive {
				writes++
				s.drives[pm].Write(base+uLo, pNew, wPart)
			}
			if writes == 0 {
				s.eng.Defer(func() { done(nil) })
			}
		})
	}
	if reads == 0 {
		s.eng.Defer(finish)
	}
}

var _ blockdev.Device = (*SingleMachine)(nil)

// Describe returns the Table 1 qualitative rows for this architecture.
func (s *SingleMachine) Describe() string {
	return fmt.Sprintf("single-machine %v: fault tolerance = disk only; hot spare = dedicated; scaling = pre-provisioned", s.geo.Level)
}
