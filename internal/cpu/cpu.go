// Package cpu models compute as FIFO time reservations on cores, so that
// parity arithmetic and per-I/O software overhead consume virtual time and
// can become the bottleneck (as they do for the Linux MD baseline) or stay
// negligible (as the paper reports for dRAID's server-side controllers).
package cpu

import (
	"fmt"

	"draid/internal/sim"
)

// Costs converts work items to core time. Rates are bytes per second.
type Costs struct {
	XorBps  float64      // XOR throughput (ISA-L-class: tens of GB/s)
	GfBps   float64      // GF(2^8) multiply-accumulate throughput
	PerMsg  sim.Duration // handling one network message
	PerIO   sim.Duration // submitting/completing one drive I/O
	PerUser sim.Duration // admitting one user I/O (request parsing etc.)
}

// DefaultCosts reflects a modern x86 server core with ISA-L acceleration
// (the paper: dRAID's parity work uses <25% of one core per SSD).
func DefaultCosts() Costs {
	return Costs{
		XorBps:  40e9, // 40 GB/s single-core XOR
		GfBps:   20e9, // 20 GB/s single-core GF multiply-accumulate
		PerMsg:  600 * sim.Nanosecond,
		PerIO:   700 * sim.Nanosecond,
		PerUser: 500 * sim.Nanosecond,
	}
}

// Xor returns the core time to XOR n bytes.
func (c Costs) Xor(n int) sim.Duration {
	return sim.Duration(float64(n) / c.XorBps * 1e9)
}

// Gf returns the core time to multiply-accumulate n bytes over GF(2^8).
func (c Costs) Gf(n int) sim.Duration {
	return sim.Duration(float64(n) / c.GfBps * 1e9)
}

// Core is one processor core running in poll mode: work items queue FIFO.
type Core struct {
	eng       *sim.Engine
	busyUntil sim.Time
	busyTotal sim.Duration
}

// NewCore returns an idle core.
func NewCore(eng *sim.Engine) *Core { return &Core{eng: eng} }

// Exec queues d of work and runs fn when it completes. Zero-cost work still
// defers fn to preserve event ordering.
func (c *Core) Exec(d sim.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("cpu: negative work %d", d))
	}
	start := c.eng.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + sim.Time(d)
	c.busyTotal += d
	c.eng.At(c.busyUntil, fn)
}

// BusyTotal returns accumulated busy time since creation.
func (c *Core) BusyTotal() sim.Duration { return c.busyTotal }

// Utilization returns the fraction of the window [since, now] this core was
// busy, given the busy total observed at the window start.
func (c *Core) Utilization(busyAtStart sim.Duration, since sim.Time) float64 {
	elapsed := c.eng.Now() - since
	if elapsed <= 0 {
		return 0
	}
	return float64(c.busyTotal-busyAtStart) / float64(elapsed)
}

// Pool schedules work across several cores, picking the one that frees up
// first (work-conserving, like an SPDK reactor group).
type Pool struct {
	cores []*Core
}

// NewPool creates n cores.
func NewPool(eng *sim.Engine, n int) *Pool {
	if n <= 0 {
		panic("cpu: pool needs at least one core")
	}
	p := &Pool{}
	for i := 0; i < n; i++ {
		p.cores = append(p.cores, NewCore(eng))
	}
	return p
}

// Exec queues d of work on the earliest-available core.
func (p *Pool) Exec(d sim.Duration, fn func()) {
	best := p.cores[0]
	for _, c := range p.cores[1:] {
		if c.busyUntil < best.busyUntil {
			best = c
		}
	}
	best.Exec(d, fn)
}

// Cores returns the pool's cores.
func (p *Pool) Cores() []*Core { return p.cores }

// BusyTotal sums busy time over all cores.
func (p *Pool) BusyTotal() sim.Duration {
	var t sim.Duration
	for _, c := range p.cores {
		t += c.busyTotal
	}
	return t
}
