package cpu

import (
	"testing"

	"draid/internal/sim"
)

func TestCoreSerializesWork(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCore(eng)
	var times []sim.Time
	c.Exec(100, func() { times = append(times, eng.Now()) })
	c.Exec(100, func() { times = append(times, eng.Now()) })
	eng.Run()
	if times[0] != 100 || times[1] != 200 {
		t.Fatalf("times = %v, want [100 200]", times)
	}
	if c.BusyTotal() != 200 {
		t.Fatalf("busy = %d, want 200", c.BusyTotal())
	}
}

func TestZeroWorkStillDefers(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCore(eng)
	ran := false
	c.Exec(0, func() { ran = true })
	if ran {
		t.Fatal("zero-cost work ran synchronously")
	}
	eng.Run()
	if !ran {
		t.Fatal("zero-cost work never ran")
	}
}

func TestNegativeWorkPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCore(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Exec(-1, func() {})
}

func TestCoreIdleGapNotCounted(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCore(eng)
	c.Exec(100, func() {})
	eng.Run()
	eng.At(1000, func() { c.Exec(50, func() {}) })
	eng.Run()
	if c.BusyTotal() != 150 {
		t.Fatalf("busy = %d, want 150", c.BusyTotal())
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCore(eng)
	start := eng.Now()
	busy0 := c.BusyTotal()
	c.Exec(250, func() {})
	eng.Run()
	eng.RunUntil(1000)
	u := c.Utilization(busy0, start)
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestPoolPicksEarliestAvailable(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPool(eng, 2)
	var times []sim.Time
	for i := 0; i < 4; i++ {
		p.Exec(100, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	// Two cores run pairs in parallel: completions at 100,100,200,200.
	want := []sim.Time{100, 100, 200, 200}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if p.BusyTotal() != 400 {
		t.Fatalf("pool busy = %d, want 400", p.BusyTotal())
	}
	if len(p.Cores()) != 2 {
		t.Fatal("Cores() wrong length")
	}
}

func TestEmptyPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPool(sim.NewEngine(1), 0)
}

func TestCosts(t *testing.T) {
	c := Costs{XorBps: 1e9, GfBps: 5e8}
	if c.Xor(1000) != 1000 {
		t.Fatalf("Xor(1000) = %d ns, want 1000", c.Xor(1000))
	}
	if c.Gf(1000) != 2000 {
		t.Fatalf("Gf(1000) = %d ns, want 2000", c.Gf(1000))
	}
}

func TestDefaultCostsParityIsCheap(t *testing.T) {
	c := DefaultCosts()
	// XOR of a 512 KB chunk should take ~13us on one core — far below the
	// time to move the same bytes over a 100 Gbps NIC (~46us), matching the
	// paper's claim that parity work fits in <25% of a core.
	xor := c.Xor(512 << 10)
	if xor <= 0 || xor > 50*sim.Microsecond {
		t.Fatalf("xor of 512KB = %v ns, implausible", xor)
	}
}
