package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("quantile of empty histogram should be 0")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Record(100)
	if h.Count() != 1 || h.Min() != 100 || h.Max() != 100 {
		t.Fatalf("zero-value histogram broken: %+v", h.Summarize())
	}
}

func TestExactSmallValues(t *testing.T) {
	h := New()
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 30 || q > 33 {
		t.Fatalf("median = %d, want ~31", q)
	}
}

func TestMeanIsExact(t *testing.T) {
	h := New()
	var sum int64
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 17)
		sum += i * 17
	}
	want := float64(sum) / 1000
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Fatalf("mean = %f, want %f", h.Mean(), want)
	}
}

func TestQuantileRelativeError(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(1))
	samples := make([]int64, 0, 100000)
	for i := 0; i < 100000; i++ {
		v := int64(rng.ExpFloat64() * 1e6) // exponential latencies ~1ms
		h.Record(v)
		samples = append(samples, v)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	exact := func(q float64) int64 {
		return sorted[int(q*float64(len(sorted)-1))]
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, want := h.Quantile(q), exact(q)
		if want == 0 {
			continue
		}
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.05 {
			t.Errorf("q=%v: got %d want %d (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestQuantileBounds(t *testing.T) {
	h := New()
	h.Record(10)
	h.Record(1000000)
	if h.Quantile(0) != 10 {
		t.Fatalf("q0 = %d, want min", h.Quantile(0))
	}
	if h.Quantile(1) != 1000000 {
		t.Fatalf("q1 = %d, want max", h.Quantile(1))
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d, want 200", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1099 {
		t.Fatalf("min=%d max=%d", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestReset(t *testing.T) {
	h := New()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Record(7)
	if h.Min() != 7 {
		t.Fatalf("min after reset+record = %d", h.Min())
	}
}

// Property: bucket midpoint is always within 2% of any value ≥ 4096 mapping
// to that bucket, and quantiles stay within [min,max].
func TestPropertyBucketAccuracy(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)%1e9 + 4096
		mid := midpointOf(bucketOf(v))
		rel := math.Abs(float64(mid-v)) / float64(v)
		return rel <= 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuantileWithinRange(t *testing.T) {
	f := func(vals []uint16, qRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := New()
		for _, v := range vals {
			h.Record(int64(v))
		}
		q := float64(qRaw) / 255
		got := h.Quantile(q)
		return got >= h.Min() && got <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("mean = %f, want 5", w.Mean())
	}
	if math.Abs(w.Stddev()-2.138089935) > 1e-6 {
		t.Fatalf("stddev = %f", w.Stddev())
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
}

// TestQuantilesBimodal pins the summary quantiles on a grey-failure-shaped
// distribution: 97% of samples at a fast mode, 3% stuck at a 100× slow mode
// (a straggling drive). p50/p95 must sit on the fast mode, p99/p999 on the
// slow one, and the summary must carry them in order.
func TestQuantilesBimodal(t *testing.T) {
	h := New()
	const fast, slow = 100_000, 10_000_000 // 100µs vs 10ms
	for i := 0; i < 10000; i++ {
		if i%100 < 97 {
			h.Record(fast)
		} else {
			h.Record(slow)
		}
	}
	s := h.Summarize()
	within := func(got float64, want int64) bool {
		return math.Abs(got-float64(want))/float64(want) < 0.02
	}
	if !within(s.P50, fast) || !within(s.P95, fast) {
		t.Fatalf("p50=%.0f p95=%.0f, want both ~%d", s.P50, s.P95, int64(fast))
	}
	if !within(s.P99, slow) || !within(s.P999, slow) {
		t.Fatalf("p99=%.0f p999=%.0f, want both ~%d", s.P99, s.P999, int64(slow))
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.P999 && s.P999 <= float64(s.Max)) {
		t.Fatalf("quantiles out of order: %+v", s)
	}
}

// TestQuantilesHeavyTail checks p999 on a Pareto-like tail where the extreme
// quantiles are far above p99 — exactly the regime the hedging figures
// report — against the exact order statistics.
func TestQuantilesHeavyTail(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 0, 200000)
	for i := 0; i < 200000; i++ {
		// Pareto(alpha=1.5) scaled to ~50µs minimum.
		v := int64(50_000 * math.Pow(1-rng.Float64(), -1/1.5))
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	exact := func(q float64) int64 {
		return samples[int(q*float64(len(samples)-1))]
	}
	s := h.Summarize()
	for _, c := range []struct {
		name string
		got  float64
		want int64
	}{
		{"p50", s.P50, exact(0.50)},
		{"p95", s.P95, exact(0.95)},
		{"p99", s.P99, exact(0.99)},
		{"p999", s.P999, exact(0.999)},
	} {
		rel := math.Abs(c.got-float64(c.want)) / float64(c.want)
		if rel > 0.05 {
			t.Errorf("%s: got %.0f want %d (rel err %.3f)", c.name, c.got, c.want, rel)
		}
	}
	if s.P999 < 2*s.P99 {
		t.Fatalf("tail not heavy enough to exercise p999: p99=%.0f p999=%.0f", s.P99, s.P999)
	}
}

func TestSummaryString(t *testing.T) {
	h := New()
	h.Record(1500)
	s := h.Summarize().String()
	if s == "" {
		t.Fatal("empty summary string")
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Fatalf("bar = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Fatal("bar should clamp to width")
	}
	if Bar(0, 10, 10) != "" || Bar(5, 0, 10) != "" {
		t.Fatal("degenerate bars should be empty")
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 31 % 1e9)
	}
}
