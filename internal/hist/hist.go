// Package hist provides latency histograms and summary statistics used by
// the workload generators and the benchmark harness.
//
// The histogram is log-bucketed (HDR-style): values are grouped into
// power-of-two magnitudes, each split into a fixed number of linear
// sub-buckets, giving a bounded relative error (~1.6% with 64 sub-buckets)
// over the full int64 range with a few KB of memory.
package hist

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

const subBucketBits = 6 // 64 linear sub-buckets per power of two

// Histogram records int64 samples (typically nanoseconds) with bounded
// relative error. The zero value is ready to use.
type Histogram struct {
	counts map[int]uint64
	n      uint64
	sum    float64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{counts: make(map[int]uint64), min: math.MaxInt64}
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<subBucketBits {
		return int(v) // exact for small values
	}
	mag := bits.Len64(uint64(v)) - 1 // index of highest set bit, ≥ subBucketBits
	sub := int(v>>(uint(mag)-subBucketBits)) & ((1 << subBucketBits) - 1)
	return ((mag - subBucketBits + 1) << subBucketBits) | sub
}

// midpointOf returns a representative value for bucket b (inverse of
// bucketOf up to the bucket's width).
func midpointOf(b int) int64 {
	if b < 1<<subBucketBits {
		return int64(b)
	}
	mag := (b >> subBucketBits) + subBucketBits - 1
	sub := int64(b & ((1 << subBucketBits) - 1))
	lo := (int64(1) << uint(mag)) | (sub << (uint(mag) - subBucketBits))
	width := int64(1) << (uint(mag) - subBucketBits)
	return lo + width/2
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if h.counts == nil {
		h.counts = make(map[int]uint64)
		h.min = math.MaxInt64
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the arithmetic mean of the samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) with the histogram's
// bucket resolution, or 0 if empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := uint64(math.Ceil(q * float64(h.n)))
	var cum uint64
	for _, k := range keys {
		cum += h.counts[k]
		if cum >= target {
			v := midpointOf(k)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]uint64)
		h.min = math.MaxInt64
	}
	for k, c := range other.counts {
		h.counts[k] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.counts = make(map[int]uint64)
	h.n = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary is a compact digest of a histogram, convenient for tables.
type Summary struct {
	Count          uint64
	Mean, P50, P95 float64
	P99, P999, Max float64
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.n,
		Mean:  h.Mean(),
		P50:   float64(h.Quantile(0.50)),
		P95:   float64(h.Quantile(0.95)),
		P99:   float64(h.Quantile(0.99)),
		P999:  float64(h.Quantile(0.999)),
		Max:   float64(h.Max()),
	}
}

// String renders the summary with microsecond units (samples are assumed to
// be nanoseconds, as everywhere in this repository).
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus p999=%.1fus max=%.1fus",
		s.Count, s.Mean/1e3, s.P50/1e3, s.P95/1e3, s.P99/1e3, s.P999/1e3, s.Max/1e3)
}

// Welford accumulates streaming mean/variance for scalar series (used for
// throughput sampling).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Bar renders a crude ASCII bar of width proportional to v/max, for the
// trace/bench CLIs.
func Bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
