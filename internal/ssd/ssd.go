// Package ssd models an NVMe solid-state drive at the fidelity the dRAID
// evaluation needs: a finite service rate that reads and writes share, a
// per-operation access latency that overlaps across queued operations, real
// byte storage for correctness tests, and fault injection.
//
// Service time (size/rate) occupies the drive's internal bandwidth FIFO;
// access latency is added after service and does not consume bandwidth, so
// a deep queue reaches the drive's full rate — as on real NVMe.
package ssd

import (
	"errors"
	"fmt"
	"math/rand"

	"draid/internal/backend"
	"draid/internal/integrity"
	"draid/internal/parity"
	"draid/internal/sim"
	"draid/internal/trace"
)

// Spec describes a drive model.
type Spec struct {
	Capacity     int64        // bytes
	ReadBps      int64        // sustained read, bytes/sec
	WriteBps     int64        // sustained write, bytes/sec
	ReadLatency  sim.Duration // per-op access latency (read)
	WriteLatency sim.Duration // per-op access latency (write)
	StoreData    bool         // keep real bytes (false ⇒ size-only payloads)
}

// DefaultSpec is calibrated to the paper's Dell Ent NVMe AGN MU 1.6 TB
// drives: ~19 Gbps (2.4 GB/s) writes, ~26 Gbps (3.2 GB/s) reads.
func DefaultSpec() Spec {
	return Spec{
		Capacity:     1600 << 30, // 1.6 TB
		ReadBps:      3200 << 20, // 3.2 GB/s
		WriteBps:     2375 << 20, // 2.375 GB/s ≈ 19 Gbps
		ReadLatency:  80 * sim.Microsecond,
		WriteLatency: 15 * sim.Microsecond,
		StoreData:    true,
	}
}

// Errors reported through operation callbacks. The media-error types live in
// the backend package (they are part of the Drive interface contract shared
// by every backend); the names here are aliases kept for existing callers.
var (
	ErrOutOfRange = errors.New("ssd: access beyond capacity")
	ErrFailed     = errors.New("ssd: drive failed")
	// ErrMediaError is an unrecoverable read error (URE): the drive is alive
	// and keeps serving other LBAs, but this range is gone. Unlike Fail, the
	// operation completes — with this error instead of data.
	ErrMediaError = backend.ErrMediaError
)

// MediaError reports the precise unreadable sub-range of a failed read. It
// unwraps to ErrMediaError.
type MediaError = backend.MediaError

const pageSize = 64 << 10 // sparse backing-store granularity

// Stats counts completed operations.
type Stats = backend.DriveStats

// Drive is one simulated SSD. All methods must be called from engine
// callbacks (single-threaded simulation discipline).
type Drive struct {
	eng    *sim.Engine
	spec   Spec
	pages  map[int64][]byte
	busy   sim.Time // FIFO bandwidth reservation
	failed bool
	stats  Stats
	// inflight counts submitted-but-incomplete operations (queue depth).
	inflight int
	tracer   *trace.Collector
	track    trace.Track

	// media holds the unreadable byte ranges (injected UREs and latent
	// errors). rot holds ranges whose stored bytes were silently flipped;
	// it only feeds the CorruptReads counter — the payload damage itself
	// lives in the page store. A successful write clears both over its
	// range: flash remaps bad sectors on program.
	media integrity.RangeSet
	rot   integrity.RangeSet
	// latentRate is the per-read probability of developing a new URE; it
	// draws from its own seeded source so enabling it on one drive does not
	// perturb the engine RNG stream shared by everything else.
	latentRate float64
	latentRng  *rand.Rand

	// slow is the grey-failure latency profile (SlowNone when healthy):
	// constant/fading profiles scale the drive's service and access latency
	// — slowness serializes inside the device, so queue depth compounds it
	// — while stall profiles delay completions without consuming bandwidth.
	// The jitter draw uses its own seeded source, like latentRng.
	slow      backend.SlowProfile
	slowSince sim.Time
	slowRng   *rand.Rand
}

// SetTracer enables per-operation service spans on the given track and a
// queue-depth gauge; nil disables.
func (d *Drive) SetTracer(c *trace.Collector, tr trace.Track) {
	d.tracer, d.track = c, tr
	if c.Enabled() {
		c.AddGauge(tr, "queue depth", func() float64 { return float64(d.inflight) })
	}
}

// QueueDepth reports the number of in-flight operations.
func (d *Drive) QueueDepth() int { return d.inflight }

// New creates a drive.
func New(eng *sim.Engine, spec Spec) *Drive {
	if spec.Capacity <= 0 || spec.ReadBps <= 0 || spec.WriteBps <= 0 {
		panic(fmt.Sprintf("ssd: invalid spec %+v", spec))
	}
	d := &Drive{eng: eng, spec: spec}
	if spec.StoreData {
		d.pages = make(map[int64][]byte)
	}
	return d
}

// Spec returns the drive's specification.
func (d *Drive) Spec() Spec { return d.spec }

// Capacity returns the drive size in bytes.
func (d *Drive) Capacity() int64 { return d.spec.Capacity }

// StoresData reports whether payload bytes are materialized.
func (d *Drive) StoresData() bool { return d.spec.StoreData }

// Stats returns operation counters.
func (d *Drive) Stats() Stats { return d.stats }

// Fail puts the drive into a failed state: in-flight and future operations
// never complete (their callbacks are never invoked), as with a dead device
// on a real fabric. Callers are expected to detect this via timeouts.
func (d *Drive) Fail() { d.failed = true }

// Recover returns the drive to service. Stored data is retained (a
// transient failure); for a replaced drive, create a new Drive.
func (d *Drive) Recover() { d.failed = false }

// Failed reports the failure state.
func (d *Drive) Failed() bool { return d.failed }

// InjectMediaError marks [off, off+n) unreadable: reads overlapping the
// range complete with a *MediaError naming the overlap. A later write over
// the range clears it (sector remap on program).
func (d *Drive) InjectMediaError(off, n int64) { d.media.Add(off, n) }

// InjectBitRot silently flips the stored bytes of [off, off+n): reads
// succeed and return the damaged payload. Requires StoreData — rot with no
// bytes to rot is meaningless.
func (d *Drive) InjectBitRot(off, n int64) {
	if d.pages == nil {
		panic("ssd: InjectBitRot requires StoreData")
	}
	buf := d.load(off, n)
	data := buf.Data()
	for i := range data {
		data[i] ^= 0x5A
	}
	d.store(off, data)
	d.rot.Add(off, n)
}

// MediaErrorRanges returns the currently unreadable ranges (tests, status).
func (d *Drive) MediaErrorRanges() []integrity.Span { return d.media.Spans() }

// SetLatentErrorRate enables spontaneous URE development: each read op
// grows, with probability rate, a new sectorSize-aligned media-error range
// inside the range it reads (and then fails on it). The draw uses a private
// source seeded here, keeping the engine's RNG stream untouched.
func (d *Drive) SetLatentErrorRate(rate float64, seed int64) {
	d.latentRate = rate
	d.latentRng = rand.New(rand.NewSource(seed))
}

// SetSlowProfile installs (or, with Kind SlowNone, clears) a grey-failure
// latency profile. seed feeds the profile's private jitter source.
func (d *Drive) SetSlowProfile(p backend.SlowProfile, seed int64) {
	d.slow = p
	d.slowSince = d.eng.Now()
	d.slowRng = rand.New(rand.NewSource(seed))
}

// SlowProfileInstalled returns the active slow profile.
func (d *Drive) SlowProfileInstalled() backend.SlowProfile { return d.slow }

// slowFactor returns the current latency multiplier (1 when healthy).
func (d *Drive) slowFactor() float64 {
	if d.slow.Kind == backend.SlowNone {
		return 1
	}
	return d.slow.FactorAt(d.eng.Now(), d.slowSince, d.slowRng)
}

// slowStall returns the extra completion delay of an op issued now.
func (d *Drive) slowStall() sim.Duration {
	if d.slow.Kind != backend.SlowStall {
		return 0
	}
	return d.slow.StallDelay(d.eng.Now(), d.slowSince)
}

const latentSector = 4096 // granularity of a spontaneously developed URE

// maybeDevelopLatent rolls the latent-error dice for a read of [off, off+n).
func (d *Drive) maybeDevelopLatent(off, n int64) {
	if d.latentRate <= 0 || d.latentRng == nil || n <= 0 {
		return
	}
	if d.latentRng.Float64() >= d.latentRate {
		return
	}
	pos := off + d.latentRng.Int63n(n)
	pos -= pos % latentSector
	end := pos + latentSector
	if end > d.spec.Capacity {
		end = d.spec.Capacity
	}
	if pos < off {
		pos = off
	}
	d.media.Add(pos, end-pos)
}

func (d *Drive) reserve(size int64, rate int64) (start, done sim.Time) {
	start = d.eng.Now()
	if d.busy > start {
		start = d.busy
	}
	d.busy = start + sim.Time(float64(size)/(float64(rate)/1e9))
	return start, d.busy
}

// Read fetches n bytes at off. cb receives the payload (zeros for
// never-written ranges; elided when StoreData is false).
func (d *Drive) Read(off, n int64, cb func(parity.Buffer, error)) {
	if off < 0 || n < 0 || off+n > d.spec.Capacity {
		d.eng.Defer(func() { cb(parity.Buffer{}, ErrOutOfRange) })
		return
	}
	if d.failed {
		return
	}
	rate, lat := d.spec.ReadBps, d.spec.ReadLatency
	if d.slow.Kind != backend.SlowNone {
		if f := d.slowFactor(); f > 1 {
			rate = int64(float64(rate) / f)
			lat = sim.Duration(float64(lat) * f)
		}
	}
	start, done := d.reserve(n, rate)
	d.inflight++
	end := done + sim.Time(lat)
	if s := d.slowStall(); s > 0 {
		end += sim.Time(s)
	}
	d.eng.At(end, func() {
		d.inflight--
		if d.failed {
			return
		}
		d.stats.ReadOps++
		d.stats.ReadBytes += n
		if t := d.tracer; t.Enabled() {
			t.Span(d.track, "drive", "read", start, end, trace.I64("bytes", n))
		}
		d.maybeDevelopLatent(off, n)
		if bad, hit := d.media.Intersect(off, n); hit {
			d.stats.MediaErrors++
			cb(parity.Buffer{}, &MediaError{Off: bad.Off, N: bad.Len})
			return
		}
		if _, hit := d.rot.Intersect(off, n); hit {
			d.stats.CorruptReads++
		}
		cb(d.load(off, n), nil)
	})
}

// Write persists b at off. cb receives nil on success.
func (d *Drive) Write(off int64, b parity.Buffer, cb func(error)) {
	n := int64(b.Len())
	if off < 0 || off+n > d.spec.Capacity {
		d.eng.Defer(func() { cb(ErrOutOfRange) })
		return
	}
	if d.failed {
		return
	}
	// Capture payload bytes at submission time (DMA semantics): the caller
	// may reuse its buffer immediately after Write returns.
	var snapshot []byte
	if d.pages != nil && !b.Elided() {
		snapshot = append([]byte(nil), b.Data()...)
	}
	rate, lat := d.spec.WriteBps, d.spec.WriteLatency
	if d.slow.Kind != backend.SlowNone {
		if f := d.slowFactor(); f > 1 {
			rate = int64(float64(rate) / f)
			lat = sim.Duration(float64(lat) * f)
		}
	}
	start, done := d.reserve(n, rate)
	d.inflight++
	end := done + sim.Time(lat)
	if s := d.slowStall(); s > 0 {
		end += sim.Time(s)
	}
	d.eng.At(end, func() {
		d.inflight--
		if d.failed {
			return
		}
		d.stats.WriteOps++
		d.stats.WriteBytes += n
		if t := d.tracer; t.Enabled() {
			t.Span(d.track, "drive", "write", start, end, trace.I64("bytes", n))
		}
		if snapshot != nil {
			d.store(off, snapshot)
		}
		d.media.Remove(off, n)
		d.rot.Remove(off, n)
		cb(nil)
	})
}

// Trim discards [off, off+n): subsequent reads return zeros. Modeled as a
// metadata operation — per-op write latency, no bandwidth reservation. Like
// a write, it clears media-error and rot state over its range.
func (d *Drive) Trim(off, n int64, cb func(error)) {
	if off < 0 || n < 0 || off+n > d.spec.Capacity {
		d.eng.Defer(func() { cb(ErrOutOfRange) })
		return
	}
	if d.failed {
		return
	}
	d.inflight++
	d.eng.After(d.spec.WriteLatency, func() {
		d.inflight--
		if d.failed {
			return
		}
		d.stats.TrimOps++
		d.discard(off, n)
		d.media.Remove(off, n)
		d.rot.Remove(off, n)
		cb(nil)
	})
}

// discard zeroes [off, off+n) in the page store, dropping whole pages.
func (d *Drive) discard(off, n int64) {
	if d.pages == nil {
		return
	}
	for pos := int64(0); pos < n; {
		pageNo := (off + pos) / pageSize
		pageOff := (off + pos) % pageSize
		span := pageSize - pageOff
		if span > n-pos {
			span = n - pos
		}
		if page, ok := d.pages[pageNo]; ok {
			if span == pageSize {
				delete(d.pages, pageNo)
			} else {
				clearTo := page[pageOff : pageOff+span]
				for i := range clearTo {
					clearTo[i] = 0
				}
			}
		}
		pos += span
	}
}

// load copies [off, off+n) out of the sparse page store.
func (d *Drive) load(off, n int64) parity.Buffer {
	if d.pages == nil {
		return parity.Sized(int(n))
	}
	out := make([]byte, n)
	for pos := int64(0); pos < n; {
		pageNo := (off + pos) / pageSize
		pageOff := (off + pos) % pageSize
		span := pageSize - pageOff
		if span > n-pos {
			span = n - pos
		}
		if page, ok := d.pages[pageNo]; ok {
			copy(out[pos:pos+span], page[pageOff:pageOff+span])
		}
		pos += span
	}
	return parity.FromBytes(out)
}

func (d *Drive) store(off int64, data []byte) {
	n := int64(len(data))
	for pos := int64(0); pos < n; {
		pageNo := (off + pos) / pageSize
		pageOff := (off + pos) % pageSize
		span := pageSize - pageOff
		if span > n-pos {
			span = n - pos
		}
		page, ok := d.pages[pageNo]
		if !ok {
			page = make([]byte, pageSize)
			d.pages[pageNo] = page
		}
		copy(page[pageOff:pageOff+span], data[pos:pos+span])
		pos += span
	}
}

// PeekSync reads stored bytes immediately, bypassing timing — for test
// assertions only.
func (d *Drive) PeekSync(off, n int64) []byte {
	b := d.load(off, n)
	if b.Elided() {
		return nil
	}
	return b.Data()
}

// The simulated drive is the deterministic backend.Drive implementation and
// supports the full fault-injection surface.
var (
	_ backend.Drive         = (*Drive)(nil)
	_ backend.MediaInjector = (*Drive)(nil)
	_ backend.SlowInjector  = (*Drive)(nil)
)
