package ssd

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"draid/internal/parity"
	"draid/internal/sim"
)

// testSpec: 1 GB/s read and write (1 byte/ns), zero latency, 1 MB capacity.
func testSpec() Spec {
	return Spec{Capacity: 1 << 20, ReadBps: 1e9, WriteBps: 1e9, StoreData: true}
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	payload := []byte("hello, raid world")
	var got []byte
	d.Write(100, parity.FromBytes(payload), func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
		d.Read(100, int64(len(payload)), func(b parity.Buffer, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			got = b.Data()
		})
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
}

func TestUnwrittenRangeReadsZeros(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	var got []byte
	d.Read(5000, 10, func(b parity.Buffer, err error) { got = b.Data() })
	eng.Run()
	for _, v := range got {
		if v != 0 {
			t.Fatal("unwritten range not zero")
		}
	}
}

func TestServiceTimeAndLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := testSpec()
	spec.ReadLatency = 500
	d := New(eng, spec)
	var at sim.Time
	d.Read(0, 1000, func(parity.Buffer, error) { at = eng.Now() })
	eng.Run()
	// 1000 ns service + 500 ns latency.
	if at != 1500 {
		t.Fatalf("read completed at %d, want 1500", at)
	}
}

func TestBandwidthSharedBetweenReadsAndWrites(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	var last sim.Time
	d.Write(0, parity.Sized(1000), func(error) { last = eng.Now() })
	d.Read(0, 1000, func(parity.Buffer, error) { last = eng.Now() })
	eng.Run()
	// Serialized through one pipe: 1000 + 1000.
	if last != 2000 {
		t.Fatalf("last completion %d, want 2000", last)
	}
}

func TestDistinctReadWriteRates(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := testSpec()
	spec.WriteBps = 5e8 // half the read rate
	d := New(eng, spec)
	var wAt, rAt sim.Time
	d.Write(0, parity.Sized(1000), func(error) { wAt = eng.Now() })
	d.Read(0, 1000, func(parity.Buffer, error) { rAt = eng.Now() })
	eng.Run()
	if wAt != 2000 {
		t.Fatalf("write at %d, want 2000 (half rate)", wAt)
	}
	if rAt != 3000 {
		t.Fatalf("read at %d, want 3000 (queued behind write)", rAt)
	}
}

func TestThroughputSaturatesAtRate(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	var last sim.Time
	const ops, size = 50, 10000
	for i := 0; i < ops; i++ {
		d.Write(int64(i*size), parity.Sized(size), func(error) { last = eng.Now() })
	}
	eng.Run()
	rate := float64(ops*size) / float64(last)
	if rate > 1.001 || rate < 0.99 {
		t.Fatalf("rate = %v B/ns, want ~1", rate)
	}
}

func TestOutOfRange(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	var rErr, wErr error
	d.Read(1<<20-5, 10, func(_ parity.Buffer, err error) { rErr = err })
	d.Write(-1, parity.Sized(1), func(err error) { wErr = err })
	eng.Run()
	if rErr != ErrOutOfRange || wErr != ErrOutOfRange {
		t.Fatalf("rErr=%v wErr=%v, want ErrOutOfRange", rErr, wErr)
	}
}

func TestFailedDriveNeverCompletes(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	d.Fail()
	completed := false
	d.Read(0, 10, func(parity.Buffer, error) { completed = true })
	d.Write(0, parity.Sized(10), func(error) { completed = true })
	eng.Run()
	if completed {
		t.Fatal("operation completed on failed drive")
	}
	if !d.Failed() {
		t.Fatal("Failed() false after Fail()")
	}
}

func TestFailDropsInFlightOps(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := testSpec()
	spec.ReadLatency = 1000
	d := New(eng, spec)
	completed := false
	d.Read(0, 100, func(parity.Buffer, error) { completed = true })
	eng.At(50, func() { d.Fail() })
	eng.Run()
	if completed {
		t.Fatal("in-flight op completed after drive failed")
	}
}

func TestRecoverRetainsData(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	d.Write(0, parity.FromBytes([]byte{42}), func(error) {})
	eng.Run()
	d.Fail()
	d.Recover()
	var got []byte
	d.Read(0, 1, func(b parity.Buffer, err error) { got = b.Data() })
	eng.Run()
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("data lost across transient failure: %v", got)
	}
}

func TestWriteSnapshotsBuffer(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	buf := []byte{1, 2, 3}
	d.Write(0, parity.FromBytes(buf), func(error) {})
	buf[0] = 99 // mutate after submit; DMA semantics must have snapshotted
	eng.Run()
	if got := d.PeekSync(0, 1); got[0] != 1 {
		t.Fatalf("drive stored %d, want pre-mutation 1", got[0])
	}
}

func TestElidedMode(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := testSpec()
	spec.StoreData = false
	d := New(eng, spec)
	var got parity.Buffer
	d.Write(0, parity.FromBytes([]byte{1, 2, 3}), func(error) {})
	d.Read(0, 3, func(b parity.Buffer, err error) { got = b })
	eng.Run()
	if !got.Elided() || got.Len() != 3 {
		t.Fatalf("elided drive returned %+v", got)
	}
	if d.PeekSync(0, 3) != nil {
		t.Fatal("PeekSync on elided drive should be nil")
	}
}

func TestStats(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	d.Write(0, parity.Sized(100), func(error) {})
	d.Read(0, 50, func(parity.Buffer, error) {})
	d.Read(0, 50, func(parity.Buffer, error) {})
	eng.Run()
	s := d.Stats()
	if s.WriteOps != 1 || s.WriteBytes != 100 || s.ReadOps != 2 || s.ReadBytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: arbitrary sequences of page-crossing writes followed by reads
// return exactly what was last written (sparse page store correctness).
func TestPropertySparseStoreConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine(seed)
		d := New(eng, Spec{Capacity: 4 * pageSize, ReadBps: 1e9, WriteBps: 1e9, StoreData: true})
		shadow := make([]byte, 4*pageSize)
		for i := 0; i < 20; i++ {
			off := rng.Int63n(3 * pageSize)
			n := rng.Int63n(pageSize+1000) + 1
			if off+n > 4*pageSize {
				n = 4*pageSize - off
			}
			data := make([]byte, n)
			rng.Read(data)
			copy(shadow[off:off+n], data)
			d.Write(off, parity.FromBytes(data), func(error) {})
		}
		eng.Run()
		ok := true
		off := rng.Int63n(2 * pageSize)
		n := int64(2*pageSize) - off
		d.Read(off, n, func(b parity.Buffer, err error) {
			ok = err == nil && bytes.Equal(b.Data(), shadow[off:off+n])
		})
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.NewEngine(1), Spec{})
}

func TestDefaultSpecSane(t *testing.T) {
	s := DefaultSpec()
	if s.WriteBps >= s.ReadBps {
		t.Fatal("default write rate should be below read rate")
	}
	if !s.StoreData {
		t.Fatal("default should store data")
	}
}

func TestMediaErrorReadCompletesWithError(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	d.Write(0, parity.FromBytes(make([]byte, 8192)), nil2(t))
	eng.Run()
	d.InjectMediaError(4096, 512)

	// A read missing the bad range succeeds.
	var okRead bool
	d.Read(0, 4096, func(b parity.Buffer, err error) { okRead = err == nil })
	eng.Run()
	if !okRead {
		t.Fatal("read outside media error should succeed")
	}

	// A read overlapping it completes (does not hang) with a typed error
	// naming the overlap.
	var gotErr error
	d.Read(0, 8192, func(b parity.Buffer, err error) { gotErr = err })
	eng.Run()
	var me *MediaError
	if !errors.As(gotErr, &me) || !errors.Is(gotErr, ErrMediaError) {
		t.Fatalf("read error = %v, want MediaError", gotErr)
	}
	if me.Off != 4096 || me.N != 512 {
		t.Fatalf("bad range = [%d,+%d), want [4096,+512)", me.Off, me.N)
	}
	if s := d.Stats(); s.MediaErrors != 1 {
		t.Fatalf("MediaErrors = %d, want 1", s.MediaErrors)
	}

	// Writing over the range remaps the sectors: the error clears.
	d.Write(4096, parity.FromBytes(make([]byte, 512)), nil2(t))
	eng.Run()
	gotErr = errors.New("sentinel")
	d.Read(0, 8192, func(b parity.Buffer, err error) { gotErr = err })
	eng.Run()
	if gotErr != nil {
		t.Fatalf("read after rewrite = %v, want nil", gotErr)
	}
}

func TestBitRotSilentlyCorrupts(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	payload := []byte("integrity matters")
	d.Write(100, parity.FromBytes(payload), nil2(t))
	eng.Run()
	d.InjectBitRot(100, 4)

	var got []byte
	var gotErr error
	d.Read(100, int64(len(payload)), func(b parity.Buffer, err error) { got, gotErr = b.Data(), err })
	eng.Run()
	if gotErr != nil {
		t.Fatalf("rotted read must succeed silently, got %v", gotErr)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("payload not corrupted")
	}
	if bytes.Equal(got[4:], payload[4:]) == false {
		t.Fatal("rot leaked outside injected range")
	}
	if s := d.Stats(); s.CorruptReads != 1 {
		t.Fatalf("CorruptReads = %d, want 1", s.CorruptReads)
	}

	// Rewriting restores clean data and stops counting corrupt reads.
	d.Write(100, parity.FromBytes(payload), nil2(t))
	eng.Run()
	d.Read(100, int64(len(payload)), func(b parity.Buffer, err error) { got = b.Data() })
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("rewrite did not restore data")
	}
	if s := d.Stats(); s.CorruptReads != 1 {
		t.Fatal("clean read after rewrite still counted as corrupt")
	}
}

func TestLatentErrorRateDevelopsUREs(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, testSpec())
	d.SetLatentErrorRate(0.2, 42)
	errs := 0
	for i := 0; i < 200; i++ {
		d.Read(0, 1<<20, func(b parity.Buffer, err error) {
			if err != nil {
				if !errors.Is(err, ErrMediaError) {
					t.Errorf("latent error has wrong type: %v", err)
				}
				errs++
			}
		})
		eng.Run()
	}
	if errs == 0 {
		t.Fatal("no latent errors developed at 20% per read")
	}
	if len(d.MediaErrorRanges()) == 0 {
		t.Fatal("no media ranges recorded")
	}
	// Determinism: a second drive with the same seed develops the same map.
	eng2 := sim.NewEngine(1)
	d2 := New(eng2, testSpec())
	d2.SetLatentErrorRate(0.2, 42)
	for i := 0; i < 200; i++ {
		d2.Read(0, 1<<20, func(parity.Buffer, error) {})
		eng2.Run()
	}
	a, b := d.MediaErrorRanges(), d2.MediaErrorRanges()
	if len(a) != len(b) {
		t.Fatalf("latent maps diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latent maps diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// nil2 adapts a must-succeed write callback.
func nil2(t *testing.T) func(error) {
	return func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	}
}
