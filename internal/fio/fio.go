// Package fio is a flexible I/O tester for simulated block devices, modelled
// on the tool the paper evaluates with: random reads/writes of a fixed I/O
// size at a fixed queue depth (closed loop), with a ramp-up window excluded
// from measurement, reporting bandwidth, IOPS, and latency percentiles.
package fio

import (
	"fmt"
	"math/rand"

	"draid/internal/blockdev"
	"draid/internal/hist"
	"draid/internal/parity"
	"draid/internal/sim"
)

// Engine is the clock/scheduler surface fio needs: the simulation engine or
// a realtime backend runner. Call marshals a function into the device's
// callback context (inline on the simulation), which Start uses so the
// closed loop's state is only ever touched from that context.
type Engine interface {
	Now() sim.Time
	RunUntil(t sim.Time)
	Call(fn func())
}

// Job describes one benchmark run.
type Job struct {
	Name string
	Dev  blockdev.Device
	Eng  Engine
	// IOSize is the per-operation transfer size in bytes.
	IOSize int64
	// ReadRatio in [0,1]: fraction of operations that are reads.
	ReadRatio float64
	// QueueDepth is the number of operations kept in flight (closed loop).
	QueueDepth int
	// Ramp is excluded from measurement; Measure is the recorded window.
	Ramp    sim.Duration
	Measure sim.Duration
	// WorkingSet restricts offsets to [0, WorkingSet); 0 means the whole
	// device.
	WorkingSet int64
	// Align overrides offset alignment (default IOSize).
	Align int64
	// Seed drives offset/op randomness (default 1).
	Seed int64
	// Materialize sends real random payloads instead of size-only buffers.
	Materialize bool
	// Sequential issues offsets front to back (wrapping) instead of
	// randomly — the streaming-writer tenant profile.
	Sequential bool
}

// Result summarizes a run.
type Result struct {
	Name       string
	ReadBytes  int64
	WriteBytes int64
	ReadOps    int64
	WriteOps   int64
	Elapsed    sim.Duration
	ReadLat    hist.Summary
	WriteLat   hist.Summary
	Errors     int64
}

// BandwidthMBps returns total goodput in MB/s (10^6 bytes per second).
func (r Result) BandwidthMBps() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.ReadBytes+r.WriteBytes) / 1e6 / sim.Seconds(r.Elapsed)
}

// ReadBandwidthMBps returns read goodput in MB/s.
func (r Result) ReadBandwidthMBps() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.ReadBytes) / 1e6 / sim.Seconds(r.Elapsed)
}

// WriteBandwidthMBps returns write goodput in MB/s.
func (r Result) WriteBandwidthMBps() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.WriteBytes) / 1e6 / sim.Seconds(r.Elapsed)
}

// IOPS returns total operations per second.
func (r Result) IOPS() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.ReadOps+r.WriteOps) / sim.Seconds(r.Elapsed)
}

// AvgLatency returns the mean latency in microseconds across ops.
func (r Result) AvgLatency() float64 {
	n := r.ReadLat.Count + r.WriteLat.Count
	if n == 0 {
		return 0
	}
	sum := r.ReadLat.Mean*float64(r.ReadLat.Count) + r.WriteLat.Mean*float64(r.WriteLat.Count)
	return sum / float64(n) / 1e3
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-12s bw=%8.1f MB/s iops=%9.0f lat=%7.1fus (r: %s | w: %s)",
		r.Name, r.BandwidthMBps(), r.IOPS(), r.AvgLatency(), r.ReadLat, r.WriteLat)
}

// Running is a started job whose closed loop is live on the engine. It
// exists so several jobs can run concurrently on one engine — start each,
// advance the clock past End (e.g. eng.RunUntil), then collect Result.
type Running struct {
	// End is the virtual time at which the job stops issuing.
	End sim.Time

	res      Result
	readLat  *hist.Histogram
	writeLat *hist.Histogram
}

// Result finalizes and returns the job's measurements. Call after the
// engine clock has passed End.
func (r *Running) Result() Result {
	res := r.res
	res.ReadLat = r.readLat.Summarize()
	res.WriteLat = r.writeLat.Summarize()
	return res
}

// Run executes the job on the engine (which must be otherwise idle) and
// returns the measured result. The engine clock advances by Ramp+Measure.
func Run(job Job) Result {
	r := Start(job)
	job.Eng.RunUntil(r.End)
	// Collect inside Call: on a realtime backend, stragglers completing
	// after End still invoke record on the device's loop.
	var res Result
	job.Eng.Call(func() { res = r.Result() })
	return res
}

// Start launches the job's closed loop without running the engine, so
// multiple tenants can issue I/O concurrently on one shared clock.
func Start(job Job) *Running {
	if job.QueueDepth <= 0 {
		job.QueueDepth = 32
	}
	if job.IOSize <= 0 {
		panic("fio: IOSize must be positive")
	}
	if job.Seed == 0 {
		job.Seed = 1
	}
	align := job.Align
	if align <= 0 {
		align = job.IOSize
	}
	span := job.WorkingSet
	if span <= 0 || span > job.Dev.Size() {
		span = job.Dev.Size()
	}
	slots := (span - job.IOSize) / align
	if slots <= 0 {
		panic(fmt.Sprintf("fio: device too small for IOSize %d", job.IOSize))
	}
	rng := rand.New(rand.NewSource(job.Seed))
	eng := job.Eng

	start := eng.Now()
	measureStart := start + sim.Time(job.Ramp)
	end := measureStart + sim.Time(job.Measure)

	running := &Running{
		End:     end,
		res:     Result{Name: job.Name, Elapsed: job.Measure},
		readLat: hist.New(), writeLat: hist.New(),
	}
	res := &running.res
	readLat := running.readLat
	writeLat := running.writeLat

	var payload parity.Buffer
	if job.Materialize {
		raw := make([]byte, job.IOSize)
		rng.Read(raw)
		payload = parity.FromBytes(raw)
	} else {
		payload = parity.Sized(int(job.IOSize))
	}

	var seqCursor int64
	var issue func()
	issue = func() {
		if eng.Now() >= end {
			return
		}
		var off int64
		if job.Sequential {
			off = seqCursor * align
			seqCursor = (seqCursor + 1) % slots
		} else {
			off = rng.Int63n(slots) * align
		}
		issued := eng.Now()
		record := func(isRead bool, err error) {
			now := eng.Now()
			if err != nil {
				res.Errors++
			} else if now > measureStart && now <= end {
				lat := int64(now - issued)
				if isRead {
					res.ReadBytes += job.IOSize
					res.ReadOps++
					readLat.Record(lat)
				} else {
					res.WriteBytes += job.IOSize
					res.WriteOps++
					writeLat.Record(lat)
				}
			}
			issue()
		}
		if rng.Float64() < job.ReadRatio {
			job.Dev.Read(off, job.IOSize, func(_ parity.Buffer, err error) { record(true, err) })
		} else {
			job.Dev.Write(off, payload, func(err error) { record(false, err) })
		}
	}
	// Issue the initial window from the device's callback context, so the
	// loop state (rng, cursors, counters) has a single owner. Inline on the
	// simulation.
	eng.Call(func() {
		for i := 0; i < job.QueueDepth; i++ {
			issue()
		}
	})
	return running
}
