package fio

import (
	"strings"
	"testing"

	"draid/internal/blockdev"
	"draid/internal/sim"
)

func testJob(eng *sim.Engine, dev blockdev.Device) Job {
	return Job{
		Name: "test", Dev: dev, Eng: eng,
		IOSize: 4096, QueueDepth: 4,
		Ramp: sim.Millisecond, Measure: 10 * sim.Millisecond,
	}
}

func TestClosedLoopThroughput(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 1<<20, 100*sim.Microsecond)
	job := testJob(eng, dev)
	job.ReadRatio = 1.0
	res := Run(job)
	// QD=4, 100us per op ⇒ ~40k IOPS.
	if res.IOPS() < 30000 || res.IOPS() > 45000 {
		t.Fatalf("IOPS = %v, want ~40000", res.IOPS())
	}
	if res.WriteOps != 0 {
		t.Fatal("read-only job performed writes")
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestLatencyMatchesDevice(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 1<<20, 250*sim.Microsecond)
	job := testJob(eng, dev)
	job.ReadRatio = 1.0
	res := Run(job)
	if res.ReadLat.Mean < 245e3 || res.ReadLat.Mean > 265e3 {
		t.Fatalf("mean latency = %v ns, want ~250us", res.ReadLat.Mean)
	}
}

func TestMixedRatioApproximatelyHonored(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 1<<20, 10*sim.Microsecond)
	job := testJob(eng, dev)
	job.ReadRatio = 0.75
	res := Run(job)
	frac := float64(res.ReadOps) / float64(res.ReadOps+res.WriteOps)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("read fraction = %v, want ~0.75", frac)
	}
}

func TestRampExcluded(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 1<<20, 100*sim.Microsecond)
	job := testJob(eng, dev)
	job.ReadRatio = 1
	job.Ramp = 5 * sim.Millisecond
	job.Measure = 5 * sim.Millisecond
	res := Run(job)
	// Ops completed in the ramp must not count: with 100us ops and QD 4,
	// a 5ms window fits ~200 ops.
	if res.ReadOps > 230 {
		t.Fatalf("ops = %d, ramp window leaked into measurement", res.ReadOps)
	}
}

func TestBandwidthCalculation(t *testing.T) {
	r := Result{ReadBytes: 5e6, WriteBytes: 5e6, Elapsed: sim.Second}
	if r.BandwidthMBps() != 10 {
		t.Fatalf("bw = %v, want 10", r.BandwidthMBps())
	}
	if r.ReadBandwidthMBps() != 5 || r.WriteBandwidthMBps() != 5 {
		t.Fatal("split bandwidth wrong")
	}
	var zero Result
	if zero.BandwidthMBps() != 0 || zero.IOPS() != 0 || zero.AvgLatency() != 0 {
		t.Fatal("zero result should report zeros")
	}
}

func TestStringContainsName(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 1<<20, 10*sim.Microsecond)
	res := Run(testJob(eng, dev))
	if !strings.Contains(res.String(), "test") {
		t.Fatalf("summary %q missing job name", res.String())
	}
}

func TestWorkingSetRestrictsOffsets(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 1<<20, sim.Microsecond)
	job := testJob(eng, dev)
	job.WorkingSet = 64 << 10
	res := Run(job)
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestMaterializedPayload(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 1<<20, sim.Microsecond)
	job := testJob(eng, dev)
	job.ReadRatio = 0
	job.Materialize = true
	res := Run(job)
	if res.WriteOps == 0 {
		t.Fatal("no writes recorded")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() Result {
		eng := sim.NewEngine(7)
		dev := blockdev.NewMem(eng, 1<<20, 50*sim.Microsecond)
		job := testJob(eng, dev)
		job.Seed = 42
		job.ReadRatio = 0.5
		return Run(job)
	}
	a, b := run(), run()
	if a.ReadOps != b.ReadOps || a.WriteOps != b.WriteOps || a.ReadLat.Mean != b.ReadLat.Mean {
		t.Fatalf("non-deterministic results: %+v vs %+v", a, b)
	}
}

func TestTinyDevicePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := blockdev.NewMem(eng, 1024, 0)
	job := testJob(eng, dev)
	job.IOSize = 4096
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Run(job)
}
