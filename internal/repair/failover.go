package repair

import (
	"fmt"

	"draid/internal/backend"
	"draid/internal/core"
)

// Failover is the §5.4 host-crash recovery protocol: a replacement
// controller that has Adopted a crashed predecessor first fences the dead
// session at every bdev — discarding its open reductions and waiting out
// its in-flight drive writes, so no straggler can land later — then resyncs
// exactly the stripes the write-intent bitmap marked dirty — never a
// full-array scan — and resumes service. Stripes are resynced sequentially
// (each one re-reads survivors and rewrites parity), and cb fires once all
// are consistent.
func Failover(eng backend.Runtime, h *core.HostController, dirty []int64, cb func(error)) {
	var step func(i int)
	step = func(i int) {
		if i >= len(dirty) {
			cb(nil)
			return
		}
		h.ResyncStripe(dirty[i], func(err error) {
			if err != nil {
				cb(fmt.Errorf("repair: resync stripe %d: %w", dirty[i], err))
				return
			}
			step(i + 1)
		})
	}
	eng.Defer(func() {
		h.Fence(func(error) { step(0) })
	})
}
