package repair

import (
	"fmt"

	"draid/internal/backend"
	"draid/internal/core"
	"draid/internal/placement"
	"draid/internal/sim"
	"draid/internal/trace"
)

// RebalanceStatus is a snapshot of an online-expansion migration.
type RebalanceStatus struct {
	Active bool
	Drive  int  // drive being filled (add) or drained (remove)
	Drain  bool // true when draining for removal
	// Done/Total count chunk relocations of the current (or last) run.
	Done, Total int
	// Skipped counts planned moves abandoned because their target slot was
	// claimed by a racing rebuild or migration; the chunk stays where it is
	// and placement remains valid, merely a little less balanced.
	Skipped int
}

// Rebalancer executes layout migrations for online expansion on a
// declustered volume: after a drive add it moves the new drive's fair
// share of chunks onto it, and before a drive removal it drains every
// chunk off the leaving drive into the remaining rows' spare slots. Each
// relocation runs under the per-stripe write lock (the same discipline as
// destage and rebuild) and is paced by the shared repair rate budget, so
// foreground service keeps its share while the cluster reshapes.
type Rebalancer struct {
	eng  backend.Runtime
	host *core.HostController
	cfg  RebuilderConfig

	status RebalanceStatus

	track  trace.Track
	tracer *trace.Collector
	span   *trace.Op
}

// NewRebalancer builds a rebalance manager sharing the rebuilder's rate
// configuration (and, through cfg.Limiter, its cluster-wide budget).
func NewRebalancer(eng backend.Runtime, host *core.HostController, cfg RebuilderConfig, tracer *trace.Collector) *Rebalancer {
	r := &Rebalancer{eng: eng, host: host, cfg: cfg, tracer: tracer}
	if tracer.Enabled() {
		r.track = tracer.Track("repair", "rebalance")
		tracer.AddGauge(r.track, "rebalance progress", func() float64 {
			if r.status.Total == 0 {
				return 0
			}
			return float64(r.status.Done) / float64(r.status.Total)
		})
	}
	return r
}

// Rebind points the rebalancer at a replacement controller after failover.
func (r *Rebalancer) Rebind(h *core.HostController) { r.host = h }

// Status returns a snapshot of the current (or last) rebalance.
func (r *Rebalancer) Status() RebalanceStatus { return r.status }

// chunkGap returns the token-bucket spacing between relocations at the
// private rate; the shared limiter replaces it when configured.
func (r *Rebalancer) chunkGap() sim.Duration {
	if r.cfg.RateMBps <= 0 {
		return 0
	}
	bytesPerNs := r.cfg.RateMBps * 1e6 / 1e9
	return sim.Duration(float64(r.host.Geometry().ChunkSize) / bytesPerNs)
}

func (r *Rebalancer) pace(lastStart *sim.Time, gap sim.Duration, run func()) {
	if r.cfg.Limiter != nil {
		if wait := r.cfg.Limiter.Reserve(r.host.Geometry().ChunkSize); wait > 0 {
			r.eng.After(wait, run)
		} else {
			r.eng.Defer(run)
		}
		return
	}
	if wait := sim.Duration(*lastStart+sim.Time(gap)) - sim.Duration(r.eng.Now()); gap > 0 && wait > 0 {
		r.eng.After(wait, run)
	} else {
		r.eng.Defer(run)
	}
}

func (r *Rebalancer) begin(drive int, drain bool, total int, label string) {
	r.status = RebalanceStatus{Active: true, Drive: drive, Drain: drain, Total: total}
	if r.tracer.Enabled() {
		r.span = r.tracer.Begin(r.track, "repair", label, trace.I64("chunks", int64(total)))
	}
}

func (r *Rebalancer) finish(err error, cb func(error)) {
	if r.span != nil {
		result := "ok"
		if err != nil {
			result = "aborted"
		}
		r.span.End(trace.Str("result", result))
		r.span = nil
	}
	r.status.Active = false
	cb(err)
}

// Fill migrates a fair share of existing chunks onto a freshly added drive
// (the host must already have grown its drive set via AddDrive). A planned
// move whose target row slot has meanwhile been claimed is skipped — the
// placement stays valid either way.
func (r *Rebalancer) Fill(drive int, cb func(error)) {
	if r.status.Active {
		r.eng.Defer(func() { cb(fmt.Errorf("repair: rebalance of drive %d already active", r.status.Drive)) })
		return
	}
	dyn, ok := r.host.Layout().(placement.Dynamic)
	if !ok {
		r.eng.Defer(func() { cb(fmt.Errorf("repair: layout does not support rebalance: %w", backend.ErrUnsupported)) })
		return
	}
	moves := dyn.PlanAdd(drive)
	r.begin(drive, false, len(moves), fmt.Sprintf("rebalance onto d%d", drive))
	gap := r.chunkGap()
	lastStart := r.eng.Now()

	var step func(i int)
	step = func(i int) {
		if i >= len(moves) {
			r.finish(nil, cb)
			return
		}
		run := func() {
			lastStart = r.eng.Now()
			m := moves[i]
			if !dyn.ClaimDrive(m.Stripe, m.To) {
				r.status.Skipped++
				r.status.Done = i + 1
				step(i + 1)
				return
			}
			r.host.MigrateStripeChunk(m.Stripe, m.Member, m.To, func(err error) {
				if err != nil {
					r.finish(fmt.Errorf("repair: rebalance stripe %d member %d → d%d: %w", m.Stripe, m.Member, m.To, err), cb)
					return
				}
				r.status.Done = i + 1
				step(i + 1)
			})
		}
		r.pace(&lastStart, gap, run)
	}
	step(0)
}

// Drain migrates every chunk off a drive being removed into spare slots on
// the remaining drives, then leaves the drive retired in the layout. The
// drive is marked removed up front so no racing rebuild or rebalance
// places new chunks onto it mid-drain.
func (r *Rebalancer) Drain(drive int, cb func(error)) {
	if r.status.Active {
		r.eng.Defer(func() { cb(fmt.Errorf("repair: rebalance of drive %d already active", r.status.Drive)) })
		return
	}
	if !r.host.Declustered() {
		r.eng.Defer(func() { cb(fmt.Errorf("repair: layout does not support drive removal: %w", backend.ErrUnsupported)) })
		return
	}
	r.host.RetireDrive(drive)
	slots := r.host.PlacementSlots(drive)
	r.begin(drive, true, len(slots), fmt.Sprintf("drain d%d", drive))
	gap := r.chunkGap()
	lastStart := r.eng.Now()

	var step func(i int)
	step = func(i int) {
		if i >= len(slots) {
			r.finish(nil, cb)
			return
		}
		run := func() {
			lastStart = r.eng.Now()
			r.host.EvictSlot(slots[i].Stripe, drive, func(err error) {
				if err != nil {
					r.finish(fmt.Errorf("repair: drain stripe %d off d%d: %w", slots[i].Stripe, drive, err), cb)
					return
				}
				r.status.Done = i + 1
				step(i + 1)
			})
		}
		r.pace(&lastStart, gap, run)
	}
	step(0)
}
