package repair_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"draid/internal/cluster"
	"draid/internal/core"
	"draid/internal/parity"
	"draid/internal/raid"
	"draid/internal/repair"
	"draid/internal/sim"
	"draid/internal/ssd"
)

const chunkSize = 64 << 10

// testCluster builds a small array with hot spares: 64 KB chunks, small
// drives so full-device rebuilds stay fast, a 5 ms op deadline.
func testCluster(t *testing.T, targets, spares int, level raid.Level) (*cluster.Cluster, *core.HostController) {
	t.Helper()
	spec := cluster.DefaultSpec()
	spec.Targets = targets
	spec.Spares = spares
	drv := ssd.DefaultSpec()
	drv.Capacity = 4 << 20
	spec.Drive = &drv
	cl := cluster.New(spec)
	h := cl.NewDRAID(core.Config{
		Geometry: raid.Geometry{Level: level, Width: targets, ChunkSize: chunkSize},
		Deadline: 5 * sim.Millisecond,
	})
	return cl, h
}

func mustWrite(t *testing.T, cl *cluster.Cluster, h *core.HostController, off int64, data []byte) {
	t.Helper()
	doneErr := errors.New("not done")
	h.Write(off, parity.FromBytes(data), func(err error) { doneErr = err })
	cl.Rt.Run()
	if doneErr != nil {
		t.Fatalf("write at %d (%d bytes): %v", off, len(data), doneErr)
	}
}

func mustRead(t *testing.T, cl *cluster.Cluster, h *core.HostController, off, n int64) []byte {
	t.Helper()
	var out []byte
	doneErr := errors.New("not done")
	h.Read(off, n, func(b parity.Buffer, err error) {
		doneErr = err
		out = b.Data()
	})
	cl.Rt.Run()
	if doneErr != nil {
		t.Fatalf("read at %d (%d bytes): %v", off, n, doneErr)
	}
	return out
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// --- Detector state machine -------------------------------------------------

func detectorFixture(t *testing.T) (*cluster.Cluster, *core.HostController, *repair.Detector, *[]int) {
	t.Helper()
	cl, h := testCluster(t, 5, 0, raid.Raid5)
	var failed []int
	det := repair.NewDetector(cl.Rt, h, repair.DetectorConfig{
		FailAfter: 3,
		Grace:     10 * sim.Millisecond,
	}, nil, func(m int) { failed = append(failed, m) })
	return cl, h, det, &failed
}

func TestDetectorStrikesEscalate(t *testing.T) {
	cl, _, det, failed := detectorFixture(t)

	det.ObserveFault(2, false)
	if got := det.State(2); got != repair.Suspect {
		t.Fatalf("after 1 strike: state = %v, want suspect", got)
	}
	det.ObserveFault(2, false)
	if got := det.State(2); got != repair.Suspect {
		t.Fatalf("after 2 strikes: state = %v, want suspect", got)
	}
	det.ObserveFault(2, false)
	if got := det.State(2); got != repair.Failed {
		t.Fatalf("after 3 strikes: state = %v, want failed", got)
	}
	// onFail is deferred through the engine, exactly once.
	cl.Rt.Run()
	if len(*failed) != 1 || (*failed)[0] != 2 {
		t.Fatalf("onFail calls = %v, want [2]", *failed)
	}
	// Further evidence against a failed member is a no-op.
	det.ObserveFault(2, true)
	cl.Rt.Run()
	if len(*failed) != 1 {
		t.Fatalf("onFail fired again on post-failure evidence: %v", *failed)
	}
	if det.FailTransitions != 1 || det.SuspectTransitions != 1 {
		t.Fatalf("transitions = %d suspect / %d fail, want 1/1",
			det.SuspectTransitions, det.FailTransitions)
	}
}

func TestDetectorConfirmedEscalatesImmediately(t *testing.T) {
	cl, _, det, failed := detectorFixture(t)
	det.ObserveFault(1, true)
	if got := det.State(1); got != repair.Failed {
		t.Fatalf("after confirmed fault: state = %v, want failed", got)
	}
	cl.Rt.Run()
	if len(*failed) != 1 || (*failed)[0] != 1 {
		t.Fatalf("onFail calls = %v, want [1]", *failed)
	}
}

func TestDetectorOKRepairsSuspicion(t *testing.T) {
	_, _, det, _ := detectorFixture(t)
	det.ObserveFault(0, false)
	det.ObserveFault(0, false)
	if det.State(0) != repair.Suspect {
		t.Fatalf("state = %v, want suspect", det.State(0))
	}
	det.ObserveOK(0)
	if det.State(0) != repair.Suspect {
		t.Fatalf("one OK cleared two strikes: state = %v", det.State(0))
	}
	det.ObserveOK(0)
	if det.State(0) != repair.Healthy {
		t.Fatalf("state = %v, want healthy after matching OKs", det.State(0))
	}
}

func TestDetectorGraceDecaysStrikes(t *testing.T) {
	cl, _, det, failed := detectorFixture(t)
	det.ObserveFault(3, false)
	det.ObserveFault(3, false)
	// A quiet window longer than Grace forgets the old strikes.
	cl.Rt.RunFor(20 * sim.Millisecond)
	det.ObserveFault(3, false)
	if got := det.State(3); got != repair.Suspect {
		t.Fatalf("stale strikes still counted: state = %v, want suspect", got)
	}
	cl.Rt.Run()
	if len(*failed) != 0 {
		t.Fatalf("member failed despite grace decay: %v", *failed)
	}
}

// --- Automatic detection via heartbeats ------------------------------------

// A crashed node (observably down) is confirmed by the first probe deadline:
// no SetFailed from outside, detection is fully automatic.
func TestHeartbeatDetectsDownNode(t *testing.T) {
	cl, h := testCluster(t, 5, 0, raid.Raid5)
	var failed []int
	det := repair.NewDetector(cl.Rt, h, repair.DetectorConfig{
		HeartbeatEvery:   sim.Millisecond,
		HeartbeatTimeout: 500 * sim.Microsecond,
	}, nil, func(m int) { failed = append(failed, m) })
	h.SetHealth(det)
	det.Start()
	defer det.Stop()

	cl.FailTarget(3) // node down + drive dead; nobody tells the host
	cl.Rt.RunFor(5 * sim.Millisecond)

	if got := det.State(3); got != repair.Failed {
		t.Fatalf("state = %v, want failed (automatic detection)", got)
	}
	if len(failed) != 1 || failed[0] != 3 {
		t.Fatalf("onFail calls = %v, want [3]", failed)
	}
	for m := 0; m < 5; m++ {
		if m != 3 && det.State(m) != repair.Healthy {
			t.Fatalf("healthy member %d reported %v", m, det.State(m))
		}
	}
}

// An asymmetric fabric fault — host→target capsules silently dropped while
// the reverse direction still delivers — is indistinguishable from a dead
// member to the host: probes go unanswered, strikes accumulate, and the
// member fails after FailAfter probe periods (unconfirmed, since the node is
// not observably down).
func TestHeartbeatDetectsAsymmetricDrop(t *testing.T) {
	cl, h := testCluster(t, 5, 0, raid.Raid5)
	var failed []int
	det := repair.NewDetector(cl.Rt, h, repair.DetectorConfig{
		FailAfter:        3,
		HeartbeatEvery:   sim.Millisecond,
		HeartbeatTimeout: 500 * sim.Microsecond,
	}, nil, func(m int) { failed = append(failed, m) })
	h.SetHealth(det)
	det.Start()
	defer det.Stop()

	conn := cl.Fabric.Connection(core.HostID, core.NodeID(2))
	conn.InjectDropDirection(cl.HostNode, 1.0) // host→target black hole

	cl.Rt.RunFor(2 * sim.Millisecond)
	if got := det.State(2); got != repair.Suspect {
		t.Fatalf("mid-escalation state = %v, want suspect", got)
	}
	cl.Rt.RunFor(8 * sim.Millisecond)
	if got := det.State(2); got != repair.Failed {
		t.Fatalf("state = %v, want failed after repeated missed heartbeats", got)
	}
	if len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("onFail calls = %v, want [2]", failed)
	}
}

// A short transient drop burst makes the member suspect; once delivery
// resumes, successful probes repair it back to healthy without escalation.
func TestTransientDropRecoversToHealthy(t *testing.T) {
	cl, h := testCluster(t, 5, 0, raid.Raid5)
	det := repair.NewDetector(cl.Rt, h, repair.DetectorConfig{
		FailAfter:        4,
		HeartbeatEvery:   sim.Millisecond,
		HeartbeatTimeout: 500 * sim.Microsecond,
	}, nil, func(m int) { t.Errorf("member %d escalated to failed", m) })
	h.SetHealth(det)
	det.Start()
	defer det.Stop()

	conn := cl.Fabric.Connection(core.HostID, core.NodeID(1))
	conn.InjectDrop(1.0)
	cl.Rt.RunFor(2500 * sim.Microsecond) // ~2 missed probes
	if got := det.State(1); got != repair.Suspect {
		t.Fatalf("state = %v, want suspect during the drop burst", got)
	}
	conn.InjectDrop(0)
	cl.Rt.RunFor(5 * sim.Millisecond)
	if got := det.State(1); got != repair.Healthy {
		t.Fatalf("state = %v, want healthy after delivery resumed", got)
	}
}

// --- Hot-spare rebuild ------------------------------------------------------

// seedDevice fills the whole virtual device with deterministic bytes and
// returns the reference image.
func seedDevice(t *testing.T, cl *cluster.Cluster, h *core.HostController, seed int64) []byte {
	t.Helper()
	ref := randBytes(seed, int(h.Size()))
	const step = 1 << 20
	for off := int64(0); off < h.Size(); off += step {
		end := off + step
		if end > h.Size() {
			end = h.Size()
		}
		mustWrite(t, cl, h, off, ref[off:end])
	}
	return ref
}

func TestRebuildCopiesMemberToSpare(t *testing.T) {
	cl, h := testCluster(t, 5, 1, raid.Raid5)
	ref := seedDevice(t, cl, h, 42)

	const victim = 1
	cl.FailTarget(victim)
	h.SetFailed(victim, true)

	reb := repair.NewRebuilder(cl.Rt, h, repair.RebuilderConfig{}, nil)
	rebErr := errors.New("not done")
	reb.Rebuild(victim, cl.SpareIDs()[0], func(err error) { rebErr = err })
	cl.Rt.Run()
	if rebErr != nil {
		t.Fatalf("rebuild: %v", rebErr)
	}
	if st := reb.Status(); st.Active {
		t.Fatalf("rebuild still active after completion: %+v", st)
	}
	if got := h.FailedMembers(); len(got) != 0 {
		t.Fatalf("failed members after rebuild = %v, want none", got)
	}
	if got := h.Stats().RebuiltStripes; got != reb.TotalStripes() {
		t.Fatalf("RebuiltStripes = %d, want %d", got, reb.TotalStripes())
	}
	// Full byte-exact sweep. The victim node is still down: every read of a
	// rebuilt chunk must come from the promoted spare.
	got := mustRead(t, cl, h, 0, h.Size())
	if !bytes.Equal(got, ref) {
		t.Fatalf("device image diverged after rebuild onto spare")
	}
}

func TestRebuildThrottleRate(t *testing.T) {
	elapsed := func(rateMBps float64) sim.Time {
		cl, h := testCluster(t, 5, 1, raid.Raid5)
		seedDevice(t, cl, h, 7)
		cl.FailTarget(2)
		h.SetFailed(2, true)
		reb := repair.NewRebuilder(cl.Rt, h, repair.RebuilderConfig{RateMBps: rateMBps}, nil)
		start := cl.Rt.Now()
		rebErr := errors.New("not done")
		reb.Rebuild(2, cl.SpareIDs()[0], func(err error) { rebErr = err })
		cl.Rt.Run()
		if rebErr != nil {
			t.Fatalf("rebuild at %v MB/s: %v", rateMBps, rebErr)
		}
		return cl.Rt.Now() - start
	}

	unthrottled := elapsed(0)
	throttled := elapsed(100)

	// 64 rebuilt chunks at 100 MB/s: at least 63 inter-stripe gaps of
	// chunkSize/rate virtual time each.
	stripes := int64(4<<20) / chunkSize
	minThrottled := sim.Time(float64(stripes-1) * float64(chunkSize) / (100 * 1e6 / 1e9))
	if throttled < minThrottled {
		t.Fatalf("throttled rebuild took %v, floor is %v", throttled, minThrottled)
	}
	if unthrottled >= throttled {
		t.Fatalf("unthrottled (%v) not faster than throttled (%v)", unthrottled, throttled)
	}
}

// --- Supervisor end to end --------------------------------------------------

// The full loop with zero external intervention: a member crashes mid-life,
// heartbeats notice, the detector escalates, the supervisor marks it failed
// and rebuilds onto the spare, and the device image survives byte-exact.
func TestSupervisorAutoRecovery(t *testing.T) {
	cl, h := testCluster(t, 5, 1, raid.Raid5)
	ref := seedDevice(t, cl, h, 99)

	sup := repair.NewSupervisor(cl.Rt, h, repair.Config{
		Detector: repair.DetectorConfig{
			HeartbeatEvery:   sim.Millisecond,
			HeartbeatTimeout: 500 * sim.Microsecond,
		},
		Spares: cl.SpareIDs(),
	}, nil)
	sup.Start()
	defer sup.Stop()

	cl.FailTarget(3) // nobody calls SetFailed
	cl.Rt.RunFor(5 * sim.Millisecond)
	cl.Rt.Run() // drive the launched rebuild to completion

	if got := sup.Detector().FailTransitions; got != 1 {
		t.Fatalf("fail transitions = %d, want 1 (automatic detection)", got)
	}
	// Post-rebuild the member is healthy again: it is served by the spare.
	if got := sup.Detector().State(3); got != repair.Healthy {
		t.Fatalf("detector state after recovery = %v, want healthy", got)
	}
	if got := h.FailedMembers(); len(got) != 0 {
		t.Fatalf("failed members after auto-recovery = %v, want none", got)
	}
	if sup.SparesAvailable() != 0 {
		t.Fatalf("spare pool = %d, want 0 (consumed)", sup.SparesAvailable())
	}
	kinds := []string{}
	for _, e := range sup.Events() {
		if e.Member == 3 {
			kinds = append(kinds, e.Kind)
		}
	}
	want := []string{"failed", "rebuild-start", "rebuild-done"}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
	got := mustRead(t, cl, h, 0, h.Size())
	if !bytes.Equal(got, ref) {
		t.Fatalf("device image diverged after automatic recovery")
	}
}

// Foreground I/O keeps completing while a throttled rebuild runs — the
// Figure 17 tradeoff the token bucket exists for.
func TestForegroundServiceDuringRebuild(t *testing.T) {
	cl, h := testCluster(t, 5, 1, raid.Raid5)
	ref := seedDevice(t, cl, h, 5)

	cl.FailTarget(0)
	h.SetFailed(0, true)
	reb := repair.NewRebuilder(cl.Rt, h, repair.RebuilderConfig{RateMBps: 50}, nil)
	rebErr := errors.New("not done")
	reb.Rebuild(0, cl.SpareIDs()[0], func(err error) { rebErr = err })

	// Interleave foreground reads with the rebuild: issue one read per
	// virtual millisecond and require every one of them to complete.
	completed := 0
	var issue func(i int)
	issue = func(i int) {
		if i >= 20 {
			return
		}
		off := (int64(i) * 3 * chunkSize) % (h.Size() - chunkSize)
		h.Read(off, chunkSize, func(b parity.Buffer, err error) {
			if err != nil {
				t.Errorf("foreground read %d during rebuild: %v", i, err)
			} else if !bytes.Equal(b.Data(), ref[off:off+chunkSize]) {
				t.Errorf("foreground read %d returned stale bytes", i)
			}
			completed++
		})
		cl.Rt.After(sim.Millisecond, func() { issue(i + 1) })
	}
	issue(0)
	cl.Rt.Run()

	if rebErr != nil {
		t.Fatalf("rebuild: %v", rebErr)
	}
	if completed != 20 {
		t.Fatalf("foreground reads completed = %d, want 20", completed)
	}
}

// --- Host failover ----------------------------------------------------------

// A controller crash mid-write loses in-flight state; the replacement adopts
// the array, resyncs exactly the stripes the write-intent bitmap marked
// dirty, and resumes service with parity consistent.
func TestHostFailoverResyncsDirtyStripes(t *testing.T) {
	cl, h := testCluster(t, 5, 0, raid.Raid5)
	geo := h.Geometry()
	stripeBytes := int64(geo.DataChunks()) * chunkSize
	ref := randBytes(11, int(4 * stripeBytes))
	mustWrite(t, cl, h, 0, ref)

	// Start writes over two stripes, then crash mid-flight.
	crashed := false
	h.Write(0, parity.FromBytes(randBytes(12, int(stripeBytes))), func(error) {
		if crashed {
			t.Error("write callback fired on a crashed controller")
		}
	})
	h.Write(2*stripeBytes, parity.FromBytes(randBytes(13, int(stripeBytes))), func(error) {
		if crashed {
			t.Error("write callback fired on a crashed controller")
		}
	})
	cl.Rt.RunFor(20 * sim.Microsecond) // partway into the writes
	dirtyBefore := h.DirtyStripes()
	if len(dirtyBefore) == 0 {
		t.Fatal("test setup: no dirty stripes at crash time")
	}
	h.Crash()
	crashed = true
	cl.Rt.Run() // drain whatever the crash left behind
	if !h.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}

	// Replacement adopts: same geometry, same fabric endpoint.
	h2 := cl.NewDRAID(core.Config{
		Geometry: geo,
		Deadline: 5 * sim.Millisecond,
	})
	adopted := h2.Adopt(h)
	if len(adopted) != len(dirtyBefore) {
		t.Fatalf("adopted %d dirty stripes, want %d", len(adopted), len(dirtyBefore))
	}

	ferr := errors.New("not done")
	repair.Failover(cl.Rt, h2, adopted, func(err error) { ferr = err })
	cl.Rt.Run()
	if ferr != nil {
		t.Fatalf("failover resync: %v", ferr)
	}
	if got := h2.Stats().Resyncs; got != int64(len(adopted)) {
		t.Fatalf("resyncs = %d, want exactly the %d dirty stripes", got, len(adopted))
	}
	if got := h2.DirtyStripes(); len(got) != 0 {
		t.Fatalf("dirty stripes after resync = %v, want none", got)
	}

	// Service resumes: a fresh write+read roundtrip on the replacement.
	fresh := randBytes(14, int(stripeBytes))
	wrErr := errors.New("not done")
	h2.Write(0, parity.FromBytes(fresh), func(err error) { wrErr = err })
	cl.Rt.Run()
	if wrErr != nil {
		t.Fatalf("post-failover write: %v", wrErr)
	}
	var got []byte
	rdErr := errors.New("not done")
	h2.Read(0, stripeBytes, func(b parity.Buffer, err error) { got, rdErr = b.Data(), err })
	cl.Rt.Run()
	if rdErr != nil {
		t.Fatalf("post-failover read: %v", rdErr)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("post-failover roundtrip returned wrong bytes")
	}
}
