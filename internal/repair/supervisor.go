package repair

import (
	"fmt"

	"draid/internal/backend"
	"draid/internal/core"
	"draid/internal/sim"
	"draid/internal/trace"
)

// Config assembles the supervision stack.
type Config struct {
	Detector DetectorConfig
	Rebuild  RebuilderConfig
	// Scrub configures the background scrubber; a zero Interval leaves
	// periodic scrubbing off (the scrubber still exists for on-demand use).
	Scrub ScrubberConfig
	// Spares is the hot-spare pool (fabric NodeIDs, consumed in order).
	// Ignored when Pool is set.
	Spares []core.NodeID
	// Pool, when non-nil, is a spare pool shared with other supervisors on
	// the same cluster: whichever volume's supervisor asks first claims the
	// spare (first-claim arbitration). When nil the supervisor wraps Spares
	// in a private pool.
	Pool *core.SparePool
}

// Event is one entry of the supervisor's recovery log.
type Event struct {
	Time   sim.Time
	Kind   string // "suspect", "failed", "rebuild-start", "rebuild-done", "rebuild-error", "failover", "scrub-pass", "scrub-repair", "scrub-error", "lost-region", "drive-add", "drive-remove", "rebalance-done", "rebalance-error"
	Member int
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%-10v %-13s m%d %s", e.Time, e.Kind, e.Member, e.Detail)
}

// Supervisor ties detection to recovery: it installs a Detector as the
// host's health sink, and on each confirmed failure marks the member failed
// on the controller and — when a spare is available — launches a throttled
// rebuild onto it, queueing further failures until the current rebuild
// finishes. It is the subsystem that turns "a node stopped answering" into
// "the array healed itself".
type Supervisor struct {
	eng  backend.Runtime
	host *core.HostController

	det   *Detector
	reb   *Rebuilder
	rebal *Rebalancer
	scrub *Scrubber

	spares  *core.SparePool
	queue   []int // failed members awaiting a spare or the rebuilder
	events  []Event
	tracer  *trace.Collector
}

// NewSupervisor wires detector + rebuilder onto the host and installs the
// health sink. Call Start to begin heartbeat probing.
func NewSupervisor(eng backend.Runtime, host *core.HostController, cfg Config, tracer *trace.Collector) *Supervisor {
	pool := cfg.Pool
	if pool == nil {
		pool = core.NewSparePool(cfg.Spares)
	}
	s := &Supervisor{eng: eng, host: host, spares: pool, tracer: tracer}
	if cfg.Rebuild.OnLost == nil {
		cfg.Rebuild.OnLost = func(stripe int64) {
			s.log("lost-region", s.reb.Status().Member, fmt.Sprintf("stripe %d rebuilt with unrecoverable hole", stripe))
		}
	}
	s.det = NewDetector(eng, host, cfg.Detector, tracer, s.handleFail)
	s.reb = NewRebuilder(eng, host, cfg.Rebuild, tracer)
	s.rebal = NewRebalancer(eng, host, cfg.Rebuild, tracer)
	if cfg.Scrub.OnEvent == nil {
		cfg.Scrub.OnEvent = func(kind string, stripe int64, detail string) {
			s.log(kind, -1, detail)
		}
	}
	s.scrub = NewScrubber(eng, host, cfg.Scrub, tracer)
	host.SetHealth(s.det)
	return s
}

// Start begins heartbeat probing (no-op when the detector has no period) and
// periodic scrub passes (no-op when the scrubber has no interval).
func (s *Supervisor) Start() {
	s.det.Start()
	s.scrub.Start()
}

// Stop halts probing and periodic scrubbing.
func (s *Supervisor) Stop() {
	s.det.Stop()
	s.scrub.Stop()
}

// Detector exposes the state machine (tests, status surfaces).
func (s *Supervisor) Detector() *Detector { return s.det }

// Rebuilder exposes the rebuild manager.
func (s *Supervisor) Rebuilder() *Rebuilder { return s.reb }

// Rebalancer exposes the online-expansion migration manager.
func (s *Supervisor) Rebalancer() *Rebalancer { return s.rebal }

// Scrubber exposes the background scrubber.
func (s *Supervisor) Scrubber() *Scrubber { return s.scrub }

// SparesAvailable returns how many spares remain in the pool (shared with
// other supervisors when the pool is).
func (s *Supervisor) SparesAvailable() int { return s.spares.Available() }

// Events returns the recovery log in order.
func (s *Supervisor) Events() []Event { return append([]Event(nil), s.events...) }

// NotifyFailed is the administrative failure path (draid.FailDrive): the
// member is declared failed without waiting for evidence.
func (s *Supervisor) NotifyFailed(member int) { s.det.ForceFail(member) }

// Rebind moves the supervision stack onto a replacement controller after
// host failover. The replacement must already have adopted the array.
func (s *Supervisor) Rebind(h *core.HostController) {
	s.host = h
	s.det.Rebind(h)
	s.reb.Rebind(h)
	s.rebal.Rebind(h)
	s.scrub.Rebind(h)
	h.SetHealth(s.det)
	s.log("failover", -1, "supervision rebound to replacement controller")
}

func (s *Supervisor) log(kind string, member int, detail string) {
	s.events = append(s.events, Event{Time: s.eng.Now(), Kind: kind, Member: member, Detail: detail})
}

// AddDrive grows a declustered volume onto a fresh fabric endpoint and
// rebalances its fair share of chunks onto it in the background. Returns
// the new drive index immediately; cb fires when the rebalance converges.
func (s *Supervisor) AddDrive(node core.NodeID, cb func(error)) (int, error) {
	idx, err := s.host.AddDrive(node)
	if err != nil {
		return 0, err
	}
	s.det.Grow(s.host.Drives())
	s.log("drive-add", idx, fmt.Sprintf("node %d joined as drive %d; rebalancing", int(node), idx))
	s.rebal.Fill(idx, func(err error) {
		if err != nil {
			s.log("rebalance-error", idx, err.Error())
		} else {
			st := s.rebal.Status()
			s.log("rebalance-done", idx, fmt.Sprintf("%d chunk(s) moved, %d skipped", st.Done-st.Skipped, st.Skipped))
		}
		cb(err)
	})
	return idx, nil
}

// RemoveDrive drains every chunk off a drive and retires it from the
// layout; cb fires when the drive is empty. The endpoint itself is not
// touched — fencing or reusing it is the caller's business.
func (s *Supervisor) RemoveDrive(drive int, cb func(error)) {
	s.log("drive-remove", drive, "draining chunks onto remaining drives")
	s.rebal.Drain(drive, func(err error) {
		if err != nil {
			s.log("rebalance-error", drive, err.Error())
		} else {
			s.log("rebalance-done", drive, fmt.Sprintf("%d chunk(s) evicted; drive retired", s.rebal.Status().Done))
		}
		cb(err)
	})
}

// handleFail runs (deferred) on each healthy/suspect → failed transition.
func (s *Supervisor) handleFail(member int) {
	s.log("failed", member, "detector confirmed failure")
	// The data path may already have marked it via §5.4; make it definitive
	// either way so no new I/O targets the dead member.
	s.host.SetFailed(member, true)
	s.queue = append(s.queue, member)
	s.tryRebuild()
}

// tryRebuild launches the next queued rebuild if a spare can be claimed and
// the rebuilder is idle. With a shared pool, the claim races supervisors of
// co-tenant volumes degraded by the same fault; engine order decides, and
// the loser keeps its member queued until a spare frees up.
func (s *Supervisor) tryRebuild() {
	if len(s.queue) == 0 || s.reb.Status().Active {
		return
	}
	if s.host.Declustered() {
		// Many-to-many rebuild: the failed drive's chunks relocate into the
		// rows' distributed spare slots — no spare endpoint is claimed, and
		// the drive stays failed (and retired) afterwards, so the detector
		// state is deliberately not reset.
		drive := s.queue[0]
		s.queue = s.queue[1:]
		s.log("rebuild-start", drive, "declustered: relocating onto distributed spare slots")
		s.reb.RebuildDrive(drive, func(err error) {
			if err != nil {
				s.log("rebuild-error", drive, err.Error())
			} else {
				s.log("rebuild-done", drive, "chunks relocated; drive retired")
			}
			s.tryRebuild()
		})
		return
	}
	spare, ok := s.spares.Claim()
	if !ok {
		return
	}
	member := s.queue[0]
	s.queue = s.queue[1:]
	s.log("rebuild-start", member, fmt.Sprintf("onto spare node %d", int(spare)))
	s.reb.Rebuild(member, spare, func(err error) {
		if err != nil {
			// The spare may hold partial state; do not return it to the
			// pool. The member stays failed (degraded service continues).
			s.log("rebuild-error", member, err.Error())
			s.tryRebuild()
			return
		}
		s.det.Reset(member)
		s.log("rebuild-done", member, fmt.Sprintf("member now served by node %d", int(spare)))
		s.tryRebuild()
	})
}
