package repair

import (
	"fmt"

	"draid/internal/backend"
	"draid/internal/core"
	"draid/internal/sim"
	"draid/internal/trace"
)

// RebuilderConfig tunes rebuild throttling.
type RebuilderConfig struct {
	// RateMBps caps the rebuild at this many megabytes of reconstructed
	// chunk data per second (the Figure 17 rebuild-vs-foreground knob).
	// 0 means unthrottled: stripes are rebuilt back-to-back.
	RateMBps float64
	// Limiter, when non-nil, replaces the private RateMBps bucket with a
	// budget shared across volumes: every rebuilder on the cluster reserves
	// its stripe bytes from the same bucket, so concurrent rebuilds split
	// the rate instead of each claiming it in full.
	Limiter *RateLimiter
	// OnLost, when non-nil, is called after any rebuilt stripe sacrificed
	// data to a media double fault (a survivor URE past the parity budget —
	// the RAID-5 rebuild hazard). The rebuild continues; the affected bytes
	// are in the host's lost-region list.
	OnLost func(stripe int64)
}

// RebuildStatus is a snapshot of rebuild progress.
type RebuildStatus struct {
	Active       bool
	Member       int
	Dest         core.NodeID
	DoneStripes  int64
	TotalStripes int64
	// LostRegions counts lost ranges recorded during this rebuild: nonzero
	// means some stripes were rebuilt with unrecoverable holes.
	LostRegions int64
}

// Rebuilder copies a failed member's chunks onto a hot spare stripe by
// stripe, using the host's disaggregated reconstruction (§6) under the
// per-stripe write lock, paced by a token-bucket rate limit so foreground
// I/O keeps serving.
type Rebuilder struct {
	eng  backend.Runtime
	host *core.HostController
	cfg  RebuilderConfig

	status RebuildStatus

	track  trace.Track
	tracer *trace.Collector
	span   *trace.Op
}

// NewRebuilder builds a rebuild manager for the host.
func NewRebuilder(eng backend.Runtime, host *core.HostController, cfg RebuilderConfig, tracer *trace.Collector) *Rebuilder {
	r := &Rebuilder{eng: eng, host: host, cfg: cfg, tracer: tracer}
	if tracer.Enabled() {
		r.track = tracer.Track("repair", "rebuild")
		tracer.AddGauge(r.track, "rebuild progress", func() float64 {
			if r.status.TotalStripes == 0 {
				return 0
			}
			return float64(r.status.DoneStripes) / float64(r.status.TotalStripes)
		})
	}
	return r
}

// Rebind points the rebuilder at a replacement controller after failover.
func (r *Rebuilder) Rebind(h *core.HostController) { r.host = h }

// Status returns a snapshot of the current rebuild.
func (r *Rebuilder) Status() RebuildStatus { return r.status }

// TotalStripes returns the number of stripes the array spans.
func (r *Rebuilder) TotalStripes() int64 {
	geo := r.host.Geometry()
	return r.host.Size() / (int64(geo.DataChunks()) * geo.ChunkSize)
}

// stripeGap returns the token-bucket spacing between stripe starts: the
// virtual time one rebuilt chunk's bytes take at the configured rate.
func (r *Rebuilder) stripeGap() sim.Duration {
	if r.cfg.RateMBps <= 0 {
		return 0
	}
	bytesPerNs := r.cfg.RateMBps * 1e6 / 1e9
	return sim.Duration(float64(r.host.Geometry().ChunkSize) / bytesPerNs)
}

// Rebuild reconstructs every stripe of member onto dest, then promotes dest
// to be member's endpoint (FinishRebuild). On any stripe error the rebuild
// aborts, the member stays failed, and the error is reported. Only one
// rebuild may run at a time.
func (r *Rebuilder) Rebuild(member int, dest core.NodeID, cb func(error)) {
	if r.status.Active {
		r.eng.Defer(func() { cb(fmt.Errorf("repair: rebuild of member %d already active", r.status.Member)) })
		return
	}
	total := r.TotalStripes()
	r.status = RebuildStatus{Active: true, Member: member, Dest: dest, TotalStripes: total}
	r.host.StartRebuild(member, dest)
	if r.tracer.Enabled() {
		r.span = r.tracer.Begin(r.track, "repair", fmt.Sprintf("rebuild m%d→n%d", member, int(dest)),
			trace.I64("stripes", total))
	}
	gap := r.stripeGap()
	lastStart := r.eng.Now()

	finish := func(err error) {
		if err == nil {
			r.host.FinishRebuild(member)
		} else {
			r.host.AbortRebuild(member)
		}
		if r.span != nil {
			result := "ok"
			if err != nil {
				result = "aborted"
			}
			r.span.End(trace.Str("result", result))
			r.span = nil
		}
		r.status.Active = false
		cb(err)
	}

	var step func(stripe int64)
	step = func(stripe int64) {
		if stripe >= total {
			finish(nil)
			return
		}
		run := func() {
			lastStart = r.eng.Now()
			lostBefore := r.host.LostRegionsEver()
			r.host.RebuildStripe(stripe, member, func(err error) {
				if delta := r.host.LostRegionsEver() - lostBefore; delta > 0 {
					r.status.LostRegions += delta
					if r.cfg.OnLost != nil {
						r.cfg.OnLost(stripe)
					}
				}
				if err != nil {
					finish(fmt.Errorf("repair: member %d stripe %d: %w", member, stripe, err))
					return
				}
				r.status.DoneStripes = stripe + 1
				step(stripe + 1)
			})
		}
		// Token bucket: the next stripe may not start before the previous
		// one's bytes have "drained" at the configured rate. A shared
		// limiter reserves from the cross-volume budget instead.
		r.pace(&lastStart, gap, run)
	}
	step(0)
}

// pace schedules run according to the rebuild rate: reserving one chunk's
// bytes from the shared limiter when configured, else spacing starts by the
// private token-bucket gap anchored at *lastStart.
func (r *Rebuilder) pace(lastStart *sim.Time, gap sim.Duration, run func()) {
	if r.cfg.Limiter != nil {
		if wait := r.cfg.Limiter.Reserve(r.host.Geometry().ChunkSize); wait > 0 {
			r.eng.After(wait, run)
		} else {
			r.eng.Defer(run)
		}
		return
	}
	if wait := sim.Duration(*lastStart+sim.Time(gap)) - sim.Duration(r.eng.Now()); gap > 0 && wait > 0 {
		r.eng.After(wait, run)
	} else {
		r.eng.Defer(run)
	}
}

// RebuildDrive is the declustered many-to-many rebuild: every chunk the
// layout places on the failed drive is reconstructed into an idle spare
// slot of its own row, so both the reconstruction reads and the replacement
// writes spread over the whole cluster and the rebuild shortens as the
// cluster grows. There is no spare endpoint and no frontier — each
// committed relocation immediately heals its stripe — and on success the
// drive is retired in the layout, never to be placed on again. The same
// rate budget paces it: one chunk's bytes per relocation.
func (r *Rebuilder) RebuildDrive(drive int, cb func(error)) {
	if r.status.Active {
		r.eng.Defer(func() { cb(fmt.Errorf("repair: rebuild of member %d already active", r.status.Member)) })
		return
	}
	slots := r.host.PlacementSlots(drive)
	r.status = RebuildStatus{Active: true, Member: drive, TotalStripes: int64(len(slots))}
	if r.tracer.Enabled() {
		r.span = r.tracer.Begin(r.track, "repair", fmt.Sprintf("declustered rebuild d%d", drive),
			trace.I64("chunks", int64(len(slots))))
	}
	gap := r.stripeGap()
	lastStart := r.eng.Now()

	finish := func(err error) {
		if err == nil {
			r.host.RetireDrive(drive)
		}
		if r.span != nil {
			result := "ok"
			if err != nil {
				result = "aborted"
			}
			r.span.End(trace.Str("result", result))
			r.span = nil
		}
		r.status.Active = false
		cb(err)
	}

	var step func(i int)
	step = func(i int) {
		if i >= len(slots) {
			finish(nil)
			return
		}
		run := func() {
			lastStart = r.eng.Now()
			lostBefore := r.host.LostRegionsEver()
			r.host.RebuildSlot(slots[i].Stripe, drive, func(err error) {
				if delta := r.host.LostRegionsEver() - lostBefore; delta > 0 {
					r.status.LostRegions += delta
					if r.cfg.OnLost != nil {
						r.cfg.OnLost(slots[i].Stripe)
					}
				}
				if err != nil {
					finish(fmt.Errorf("repair: drive %d stripe %d: %w", drive, slots[i].Stripe, err))
					return
				}
				r.status.DoneStripes = int64(i + 1)
				step(i + 1)
			})
		}
		r.pace(&lastStart, gap, run)
	}
	step(0)
}
