package repair

import (
	"draid/internal/backend"
	"draid/internal/sim"
)

// RateLimiter is a token bucket shared by the rebuilders of every volume on
// a cluster: one reconstruction-byte budget that all concurrent rebuilds
// draw from, so two degraded volumes do not each consume a full rebuild
// rate's worth of shared drive and NIC bandwidth. Reservations are granted
// in call order (first claim drains the bucket first), which on the
// deterministic engine makes the arbitration reproducible.
type RateLimiter struct {
	eng      backend.Runtime
	rateMBps float64
	nextFree sim.Time
}

// NewRateLimiter builds a shared limiter. rateMBps <= 0 means unlimited.
func NewRateLimiter(eng backend.Runtime, rateMBps float64) *RateLimiter {
	return &RateLimiter{eng: eng, rateMBps: rateMBps}
}

// Reserve books bytes against the shared budget and returns how long the
// caller must wait (from now) before starting its transfer. The budget is
// consumed immediately, so a concurrent caller's reservation lands after
// this one.
func (l *RateLimiter) Reserve(bytes int64) sim.Duration {
	if l == nil || l.rateMBps <= 0 {
		return 0
	}
	now := l.eng.Now()
	start := l.nextFree
	if start < now {
		start = now
	}
	bytesPerNs := l.rateMBps * 1e6 / 1e9
	l.nextFree = start + sim.Time(float64(bytes)/bytesPerNs)
	return sim.Duration(start - now)
}
