package repair

import (
	"fmt"

	"draid/internal/backend"
	"draid/internal/core"
	"draid/internal/sim"
	"draid/internal/trace"
)

// ScrubberConfig tunes the background scrubber.
type ScrubberConfig struct {
	// Interval is the virtual time between the ends of consecutive scrub
	// passes. 0 disables periodic scrubbing (RunPass still works on demand).
	Interval sim.Duration
	// RateMBps caps the scrub at this many megabytes of verified stripe data
	// (all chunks) per second, so a pass trickles along under foreground
	// I/O instead of saturating the drives. 0 means unthrottled.
	RateMBps float64
	// Limiter, when non-nil, replaces the private RateMBps bucket with the
	// cluster-shared repair budget, so concurrent scrubs and rebuilds split
	// one rate instead of each claiming their own.
	Limiter *RateLimiter
	// OnEvent, when non-nil, receives scrub life-cycle notifications:
	// "scrub-repair" (a stripe was fixed), "scrub-error" (a stripe could not
	// be verified), "lost-region" (data was sacrificed to a media double
	// fault), and "scrub-pass" (a full pass completed).
	OnEvent func(kind string, stripe int64, detail string)
}

// ScrubStatus is a snapshot of scrubber progress.
type ScrubStatus struct {
	Enabled bool // periodic scrubbing configured (Interval > 0)
	Active  bool // a pass is currently walking stripes
	// Passes counts completed full passes; Stripe is the next stripe the
	// active pass will verify, TotalStripes the pass length.
	Passes       int64
	Stripe       int64
	TotalStripes int64
	// Cumulative across passes: stripes verified, stripes skipped (failed
	// member present), chunks rewritten after latent media errors, parity
	// chunks rewritten after coherence mismatches, stripes that failed to
	// verify at all.
	ScrubbedStripes int64
	SkippedStripes  int64
	MediaRepairs    int64
	ParityRepairs   int64
	Errors          int64
}

// Scrubber walks the array stripe by stripe in the background, verifying
// checksum and parity coherence through core.ScrubStripe and repairing latent
// errors in place — the proactive half of the integrity story (reactive
// repair-on-read catches only sectors something reads). Pacing uses the same
// token-bucket discipline as the rebuilder; periodic passes run on background
// timers so an idle simulation can still drain.
type Scrubber struct {
	eng  backend.Runtime
	host *core.HostController
	cfg  ScrubberConfig

	status  ScrubStatus
	stopped bool

	track  trace.Track
	tracer *trace.Collector
	span   *trace.Op
}

// NewScrubber builds a scrubber for the host. Call Start for periodic
// passes, or RunPass for a single on-demand pass.
func NewScrubber(eng backend.Runtime, host *core.HostController, cfg ScrubberConfig, tracer *trace.Collector) *Scrubber {
	s := &Scrubber{eng: eng, host: host, cfg: cfg, tracer: tracer}
	s.status.Enabled = cfg.Interval > 0
	if tracer.Enabled() {
		s.track = tracer.Track("repair", "scrub")
		tracer.AddGauge(s.track, "scrub progress", func() float64 {
			if !s.status.Active || s.status.TotalStripes == 0 {
				return 0
			}
			return float64(s.status.Stripe) / float64(s.status.TotalStripes)
		})
	}
	return s
}

// Rebind points the scrubber at a replacement controller after failover.
func (s *Scrubber) Rebind(h *core.HostController) { s.host = h }

// Status returns a snapshot of scrub progress.
func (s *Scrubber) Status() ScrubStatus { return s.status }

// Start schedules the first periodic pass one interval from now. Passes run
// entirely on background timers: they never keep the engine's Run from
// returning, so simulations that do not care about scrubbing are unaffected.
func (s *Scrubber) Start() {
	if s.cfg.Interval <= 0 {
		return
	}
	s.stopped = false
	s.eng.AfterBG(s.cfg.Interval, func() { s.pass(true, nil) })
}

// Stop halts periodic scrubbing after the current stripe; an active pass
// does not resume.
func (s *Scrubber) Stop() { s.stopped = true }

// RunPass runs one full foreground pass and reports the resulting status.
// Foreground means the engine's Run drains it — the deterministic way to
// scrub in tests and admin flows ("scrub now").
func (s *Scrubber) RunPass(cb func(ScrubStatus, error)) {
	s.pass(false, cb)
}

// stripeGap returns the token-bucket spacing between stripe starts at the
// private rate: a scrub touches every chunk of the stripe.
func (s *Scrubber) stripeGap() sim.Duration {
	if s.cfg.RateMBps <= 0 {
		return 0
	}
	geo := s.host.Geometry()
	stripeBytes := int64(geo.Width) * geo.ChunkSize
	bytesPerNs := s.cfg.RateMBps * 1e6 / 1e9
	return sim.Duration(float64(stripeBytes) / bytesPerNs)
}

// pass walks every stripe once. bg selects background timers (periodic
// passes) vs foreground timers (RunPass).
func (s *Scrubber) pass(bg bool, cb func(ScrubStatus, error)) {
	if s.status.Active || (bg && s.stopped) {
		if cb != nil {
			st := s.status
			s.eng.Defer(func() { cb(st, fmt.Errorf("repair: scrub pass already active")) })
		}
		return
	}
	geo := s.host.Geometry()
	total := s.host.Size() / (int64(geo.DataChunks()) * geo.ChunkSize)
	s.status.Active = true
	s.status.Stripe = 0
	s.status.TotalStripes = total
	if s.tracer.Enabled() {
		s.span = s.tracer.Begin(s.track, "repair", fmt.Sprintf("scrub pass %d", s.status.Passes),
			trace.I64("stripes", total))
	}
	schedule := func(d sim.Duration, fn func()) {
		if bg {
			s.eng.AfterBG(d, fn)
		} else if d > 0 {
			s.eng.After(d, fn)
		} else {
			s.eng.Defer(fn)
		}
	}
	gap := s.stripeGap()
	stripeBytes := int64(geo.Width) * geo.ChunkSize
	lastStart := s.eng.Now()

	finish := func() {
		s.status.Active = false
		s.status.Passes++
		if s.span != nil {
			s.span.End(trace.Str("result", "ok"))
			s.span = nil
		}
		s.event("scrub-pass", -1, fmt.Sprintf("pass %d: %d stripes, %d media repairs, %d parity repairs",
			s.status.Passes, total, s.status.MediaRepairs, s.status.ParityRepairs))
		if cb != nil {
			cb(s.status, nil)
		}
		if bg && !s.stopped && s.cfg.Interval > 0 {
			s.eng.AfterBG(s.cfg.Interval, func() { s.pass(true, nil) })
		}
	}

	var step func(stripe int64)
	step = func(stripe int64) {
		if stripe >= total || (bg && s.stopped) {
			finish()
			return
		}
		run := func() {
			lastStart = s.eng.Now()
			s.status.Stripe = stripe
			lostBefore := s.host.LostRegionsEver()
			s.host.ScrubStripe(stripe, func(res core.ScrubResult, err error) {
				if delta := s.host.LostRegionsEver() - lostBefore; delta > 0 {
					s.event("lost-region", stripe, fmt.Sprintf("%d range(s) lost during scrub", delta))
				}
				switch {
				case err != nil:
					// One bad stripe must not wedge the pass: note it, move on.
					s.status.Errors++
					s.event("scrub-error", stripe, err.Error())
				case res.Skipped:
					s.status.SkippedStripes++
				default:
					s.status.ScrubbedStripes++
					if res.MediaRepairs > 0 || res.ParityRepairs > 0 {
						s.status.MediaRepairs += int64(res.MediaRepairs)
						s.status.ParityRepairs += int64(res.ParityRepairs)
						s.event("scrub-repair", stripe, fmt.Sprintf("%d media, %d parity chunk(s) rewritten",
							res.MediaRepairs, res.ParityRepairs))
					}
				}
				step(stripe + 1)
			})
		}
		if s.cfg.Limiter != nil {
			schedule(s.cfg.Limiter.Reserve(stripeBytes), run)
			return
		}
		if wait := sim.Duration(lastStart+sim.Time(gap)) - sim.Duration(s.eng.Now()); gap > 0 && wait > 0 {
			schedule(wait, run)
		} else {
			schedule(0, run)
		}
	}
	step(0)
}

func (s *Scrubber) event(kind string, stripe int64, detail string) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(kind, stripe, detail)
	}
}
