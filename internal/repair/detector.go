// Package repair is the fault-supervision and recovery subsystem: automatic
// failure detection (heartbeats + data-path evidence escalating through a
// healthy → suspect → failed state machine), hot-spare rebuild orchestration
// throttled to preserve foreground service (Figure 17), and host failover
// driven by the §5.4 write-intent bitmap. The paper's Table 1 credits dRAID
// with fault tolerance and fast recovery; this package is the control plane
// that makes those properties automatic rather than test-fixture toggles.
package repair

import (
	"fmt"

	"draid/internal/backend"
	"draid/internal/core"
	"draid/internal/sim"
	"draid/internal/trace"
)

// MemberState is a member's position in the detection state machine.
type MemberState int

// Detection states form the health lattice healthy → degraded → suspect →
// failed. Degraded members answer correctly but slowly (grey failure:
// repeated hedge losses); they are still served I/O and are one fault away
// from Suspect. Suspect members are still served I/O (with §5.4 retries);
// Failed members are handed to the rebuild manager.
const (
	Healthy MemberState = iota
	Degraded
	Suspect
	Failed
)

// String names the state.
func (s MemberState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("MemberState(%d)", int(s))
}

// DetectorConfig tunes the failure detector.
type DetectorConfig struct {
	// FailAfter is how many unconfirmed strikes (op timeouts, missed
	// heartbeats with the node not observably down) escalate a suspect to
	// failed. Default 3. Confirmed evidence — the member's node observed
	// down, or a drive-reported error — escalates immediately.
	FailAfter int
	// HeartbeatEvery is the probe period; 0 disables active probing (the
	// detector then sees only passive data-path evidence). Default when
	// probing is wanted: 10ms.
	HeartbeatEvery sim.Duration
	// HeartbeatTimeout is the per-probe deadline. Default HeartbeatEvery/2.
	HeartbeatTimeout sim.Duration
	// Grace is the quiet window after which accumulated strikes are
	// forgotten: a burst of transient drops older than Grace no longer
	// counts toward escalation. Default 4×HeartbeatEvery (or 40ms when
	// probing is disabled).
	Grace sim.Duration
	// DegradeAfter is how many slow strikes (hedge losses reported via
	// ObserveSlow) mark a healthy member degraded. Default 8.
	DegradeAfter int
	// EvictAfter is how many slow strikes evict a persistently slow member
	// (healthy → degraded → suspect at EvictAfter/2 → failed at EvictAfter).
	// Default 64; negative disables slow-strike eviction entirely (members
	// can still reach Degraded/Suspect via DegradeAfter, but never Failed
	// on slowness alone).
	EvictAfter int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.HeartbeatEvery > 0 && c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = c.HeartbeatEvery / 2
	}
	if c.Grace <= 0 {
		if c.HeartbeatEvery > 0 {
			c.Grace = 4 * c.HeartbeatEvery
		} else {
			c.Grace = 40 * sim.Millisecond
		}
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 8
	}
	if c.EvictAfter == 0 {
		c.EvictAfter = 64
	}
	return c
}

type memberHealth struct {
	state       MemberState
	strikes     int
	lastFault   sim.Time
	slowStrikes int
	lastSlow    sim.Time
}

// Detector escalates per-member evidence through healthy → suspect → failed.
// It implements core.HealthSink, so installing it on a HostController makes
// every op timeout and error completion feed the state machine; Start adds
// active heartbeat probing on top.
type Detector struct {
	eng     backend.Runtime
	host    *core.HostController
	cfg     DetectorConfig
	members []memberHealth
	onFail  func(member int)
	ticker  backend.Timer

	track   trace.Track
	tracer  *trace.Collector
	// Transition counters, exposed for tests and the demo.
	DegradeTransitions int64
	SuspectTransitions int64
	FailTransitions    int64
}

// NewDetector builds a detector over the host's drives (the stripe width
// for a fixed layout, the whole cluster for a declustered one). onFail
// fires (via the engine, never synchronously inside evidence delivery)
// exactly once per healthy→failed transition.
func NewDetector(eng backend.Runtime, host *core.HostController, cfg DetectorConfig, tracer *trace.Collector, onFail func(member int)) *Detector {
	d := &Detector{
		eng:     eng,
		host:    host,
		cfg:     cfg.withDefaults(),
		members: make([]memberHealth, host.Drives()),
		onFail:  onFail,
		tracer:  tracer,
	}
	if tracer.Enabled() {
		d.track = tracer.Track("repair", "detector")
		tracer.AddGauge(d.track, "suspect members", func() float64 {
			n := 0
			for _, m := range d.members {
				if m.state == Suspect {
					n++
				}
			}
			return float64(n)
		})
	}
	return d
}

// Start begins periodic heartbeat probing (no-op when HeartbeatEvery is 0).
// The ticker is a background event: it never keeps Engine.Run from
// returning, so probing only advances while foreground work runs or the
// caller drives time with RunFor/RunUntil.
func (d *Detector) Start() {
	if d.cfg.HeartbeatEvery <= 0 || d.ticker != nil {
		return
	}
	var tick func()
	tick = func() {
		for m := range d.members {
			if d.members[m].state == Failed {
				continue
			}
			d.host.Probe(m, d.cfg.HeartbeatTimeout, func(bool) {})
		}
		d.ticker = d.eng.AfterBG(d.cfg.HeartbeatEvery, tick)
	}
	d.ticker = d.eng.AfterBG(d.cfg.HeartbeatEvery, tick)
}

// Stop cancels the probe ticker.
func (d *Detector) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

// Rebind points the detector (and future probes) at a replacement
// controller after host failover.
func (d *Detector) Rebind(h *core.HostController) { d.host = h }

// Grow extends the detector to cover n drives — the online drive-add path.
// Existing state is preserved; new drives start healthy.
func (d *Detector) Grow(n int) {
	for len(d.members) < n {
		d.members = append(d.members, memberHealth{})
	}
}

// State returns member's current detection state.
func (d *Detector) State(member int) MemberState {
	if member >= len(d.members) {
		return Healthy
	}
	return d.members[member].state
}

// States returns a snapshot of all member states.
func (d *Detector) States() []MemberState {
	out := make([]MemberState, len(d.members))
	for i, m := range d.members {
		out[i] = m.state
	}
	return out
}

// ObserveFault implements core.HealthSink: one strike of evidence against
// member. Confirmed evidence escalates straight to failed; unconfirmed
// strikes accumulate toward FailAfter, decaying after a quiet Grace window.
func (d *Detector) ObserveFault(member int, confirmed bool) {
	d.Grow(member + 1)
	mh := &d.members[member]
	if mh.state == Failed {
		return
	}
	now := d.eng.Now()
	if mh.strikes > 0 && now-mh.lastFault > sim.Time(d.cfg.Grace) {
		mh.strikes = 0 // stale suspicion: transient trouble long past
	}
	mh.lastFault = now
	if confirmed {
		mh.strikes = d.cfg.FailAfter
	} else {
		mh.strikes++
	}
	if mh.strikes >= d.cfg.FailAfter {
		d.escalate(member, Failed)
		return
	}
	if mh.state < Suspect {
		d.escalate(member, Suspect)
	}
}

// ObserveSlow implements core.SlowSink: one strike of grey-failure evidence —
// the member completed successfully, but so slowly that a hedged parity solve
// beat it. Slow strikes decay only after a quiet Grace window, never on fast
// completions (grey drives still complete; an OK proves nothing about
// latency). Enough strikes walk the member down the lattice healthy →
// degraded → suspect → failed, so a persistently fading drive is eventually
// evicted and rebuilt instead of dragging every stripe it serves.
func (d *Detector) ObserveSlow(member int) {
	d.Grow(member + 1)
	mh := &d.members[member]
	if mh.state == Failed {
		return
	}
	now := d.eng.Now()
	if mh.slowStrikes > 0 && now-mh.lastSlow > sim.Time(d.cfg.Grace) {
		mh.slowStrikes = 0 // stale sluggishness: a transient brown-out long past
	}
	mh.lastSlow = now
	mh.slowStrikes++
	if d.cfg.EvictAfter > 0 && mh.slowStrikes >= d.cfg.EvictAfter {
		d.escalate(member, Failed)
		return
	}
	if t := d.slowTier(mh); t > mh.state {
		d.escalate(member, t)
	}
}

// slowTier maps a member's accumulated slow strikes to the minimum lattice
// state they pin it at.
func (d *Detector) slowTier(mh *memberHealth) MemberState {
	if d.cfg.EvictAfter > 0 && mh.slowStrikes >= d.cfg.EvictAfter/2 {
		return Suspect
	}
	if mh.slowStrikes >= d.cfg.DegradeAfter {
		return Degraded
	}
	return Healthy
}

// ObserveOK implements core.HealthSink: successful completions repair fault
// suspicion one strike at a time. Slow strikes are deliberately untouched —
// a grey drive's completions are all "successful" — so a slow-suspect member
// is not instantly re-promoted; it de-escalates only as far as its slow tier
// allows, and Degraded itself clears only after a quiet Grace window with no
// new slow evidence.
func (d *Detector) ObserveOK(member int) {
	d.Grow(member + 1)
	mh := &d.members[member]
	now := d.eng.Now()
	if mh.slowStrikes > 0 && now-mh.lastSlow > sim.Time(d.cfg.Grace) {
		mh.slowStrikes = 0
	}
	switch mh.state {
	case Suspect:
		if mh.strikes > 0 {
			mh.strikes--
		}
		if mh.strikes == 0 {
			if t := d.slowTier(mh); t < Suspect {
				d.escalate(member, t)
			}
		}
	case Degraded:
		if mh.strikes == 0 && d.slowTier(mh) == Healthy {
			d.escalate(member, Healthy)
		}
	}
}

// ForceFail escalates member to failed by administrative decree (the
// explicit FailDrive path). No-op if already failed.
func (d *Detector) ForceFail(member int) {
	d.Grow(member + 1)
	if d.members[member].state == Failed {
		return
	}
	d.members[member].strikes = d.cfg.FailAfter
	d.escalate(member, Failed)
}

// Reset returns member to healthy — called after a completed rebuild has
// promoted a spare in its place.
func (d *Detector) Reset(member int) {
	d.members[member] = memberHealth{}
}

func (d *Detector) escalate(member int, to MemberState) {
	from := d.members[member].state
	d.members[member].state = to
	if d.tracer.Enabled() {
		d.tracer.Instant(d.track, "repair", fmt.Sprintf("m%d %s→%s", member, from, to),
			trace.I64("member", int64(member)))
	}
	switch to {
	case Degraded:
		d.DegradeTransitions++
	case Suspect:
		d.SuspectTransitions++
	case Failed:
		d.FailTransitions++
		if d.onFail != nil {
			// Defer: evidence arrives from inside host completion/deadline
			// handlers; the fail action must not re-enter the controller on
			// this stack.
			m := member
			d.eng.Defer(func() { d.onFail(m) })
		}
	}
}
