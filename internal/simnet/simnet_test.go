package simnet

import (
	"testing"

	"draid/internal/sim"
)

// testNet builds a 2-node network with simple round numbers: 1 GB/s NICs
// (goodput 1.0), zero prop/per-msg delay, zero header bytes — so transfer
// time is exactly size ns per byte/ns.
func testNet(t *testing.T) (*sim.Engine, *Network, *Node, *Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 1.0})
	a := net.NewNode("a")
	b := net.NewNode("b")
	a.AddNIC("nic0", 8) // 8 Gbps = 1 byte/ns
	b.AddNIC("nic0", 8)
	return eng, net, a, b
}

func TestSendDeliversAfterSerialization(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	var deliveredAt sim.Time = -1
	conn.Send(a, 1000, func() { deliveredAt = eng.Now() })
	eng.Run()
	// 1000 bytes at 1 B/ns out + 1000 in = 2000ns total.
	if deliveredAt != 2000 {
		t.Fatalf("delivered at %d, want 2000", deliveredAt)
	}
}

func TestNICSerializesConcurrentSends(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		conn.Send(a, 1000, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	// Outbound serializes at 1000ns each; inbound pipeline overlaps with the
	// next outbound, so arrivals are 2000, 3000, 4000.
	want := []sim.Time{2000, 3000, 4000}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", times, want)
		}
	}
}

func TestFullDuplexIndependentDirections(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	var aT, bT sim.Time
	conn.Send(a, 1000, func() { aT = eng.Now() })
	conn.Send(b, 1000, func() { bT = eng.Now() })
	eng.Run()
	if aT != 2000 || bT != 2000 {
		t.Fatalf("duplex arrivals a=%d b=%d, want 2000 both", aT, bT)
	}
}

func TestPropagationAndHeaderOverhead(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{PropDelay: 100, PerMsgDelay: 50, HeaderBytes: 64, Goodput: 1.0})
	a := net.NewNode("a")
	b := net.NewNode("b")
	a.AddNIC("nic0", 8)
	b.AddNIC("nic0", 8)
	conn := net.Connect(a, b)
	var at sim.Time
	conn.Send(a, 1000, func() { at = eng.Now() })
	eng.Run()
	// (1000+64) out + 100 + 50 + (1000+64) in = 2278.
	if at != 2278 {
		t.Fatalf("arrival = %d, want 2278", at)
	}
}

func TestGoodputDeratesRate(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 0.5})
	a := net.NewNode("a")
	b := net.NewNode("b")
	a.AddNIC("nic0", 8) // 0.5 B/ns effective
	b.AddNIC("nic0", 8)
	conn := net.Connect(a, b)
	var at sim.Time
	conn.Send(a, 1000, func() { at = eng.Now() })
	eng.Run()
	if at != 4000 {
		t.Fatalf("arrival = %d, want 4000 with half-rate goodput", at)
	}
}

func TestThroughputCapsAtLineRate(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	const msgs, size = 100, 10000
	var last sim.Time
	for i := 0; i < msgs; i++ {
		conn.Send(a, size, func() { last = eng.Now() })
	}
	eng.Run()
	bytes := int64(msgs * size)
	rate := float64(bytes) / float64(last) // bytes per ns
	if rate > 1.001 {
		t.Fatalf("achieved %v B/ns through a 1 B/ns NIC", rate)
	}
	if rate < 0.95 {
		t.Fatalf("achieved only %v B/ns; pipe should saturate", rate)
	}
}

func TestCounters(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.Send(a, 500, func() {})
	conn.Send(b, 300, func() {})
	eng.Run()
	if a.BytesOut() != 500 || a.BytesIn() != 300 {
		t.Fatalf("a out=%d in=%d", a.BytesOut(), a.BytesIn())
	}
	if b.BytesOut() != 300 || b.BytesIn() != 500 {
		t.Fatalf("b out=%d in=%d", b.BytesOut(), b.BytesIn())
	}
	a.ResetCounters()
	if a.BytesOut() != 0 || a.BytesIn() != 0 {
		t.Fatal("ResetCounters did not zero")
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	b.SetDown(true)
	delivered := false
	conn.Send(a, 100, func() { delivered = true })
	eng.Run()
	if delivered {
		t.Fatal("message delivered to down node")
	}
	// Sender bandwidth was still consumed.
	if a.BytesOut() != 100 {
		t.Fatalf("sender bytes = %d, want 100", a.BytesOut())
	}
	b.SetDown(false)
	conn.Send(a, 100, func() { delivered = true })
	eng.Run()
	if !delivered {
		t.Fatal("message not delivered after recovery")
	}
}

func TestNodeGoesDownMidFlight(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	delivered := false
	conn.Send(a, 1000, func() { delivered = true })
	// Fail the receiver while the message is on the wire.
	eng.At(500, func() { b.SetDown(true) })
	eng.Run()
	if delivered {
		t.Fatal("in-flight message delivered to node that failed before arrival")
	}
}

func TestInjectDrop(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectDrop(1.0)
	delivered := 0
	for i := 0; i < 10; i++ {
		conn.Send(a, 10, func() { delivered++ })
	}
	eng.Run()
	if delivered != 0 {
		t.Fatalf("%d messages delivered despite 100%% drop", delivered)
	}
	conn.InjectDrop(0)
	conn.Send(a, 10, func() { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Fatal("message not delivered after clearing drop")
	}
}

func TestInjectDropDirection(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	// Black-hole only a→b; the reverse direction keeps delivering.
	conn.InjectDropDirection(a, 1.0)
	aToB, bToA := 0, 0
	for i := 0; i < 10; i++ {
		conn.Send(a, 10, func() { aToB++ })
		conn.Send(b, 10, func() { bToA++ })
	}
	eng.Run()
	if aToB != 0 {
		t.Fatalf("%d a→b messages delivered despite 100%% directional drop", aToB)
	}
	if bToA != 10 {
		t.Fatalf("b→a delivered %d/10; reverse direction must be unaffected", bToA)
	}
	// Clearing the direction restores symmetric delivery.
	conn.InjectDropDirection(a, 0)
	conn.Send(a, 10, func() { aToB++ })
	eng.Run()
	if aToB != 1 {
		t.Fatal("a→b not delivered after clearing directional drop")
	}
}

func TestInjectDelayDirection(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectDelayDirection(b, 5000)
	var aT, bT sim.Time
	conn.Send(a, 1000, func() { aT = eng.Now() })
	conn.Send(b, 1000, func() { bT = eng.Now() })
	eng.Run()
	if aT != 2000 {
		t.Fatalf("a→b arrival = %d, want 2000 (undelayed direction)", aT)
	}
	if bT != 7000 {
		t.Fatalf("b→a arrival = %d, want 7000 with +5000 injected delay", bT)
	}
}

func TestInjectDelay(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectDelay(5000)
	var at sim.Time
	conn.Send(a, 1000, func() { at = eng.Now() })
	eng.Run()
	if at != 7000 {
		t.Fatalf("arrival = %d, want 7000 with +5000 injected delay", at)
	}
}

func TestLeastUsedNICPlacement(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 1.0})
	a := net.NewNode("a")
	nic1 := a.AddNIC("nic1", 8)
	nic2 := a.AddNIC("nic2", 8)
	for i := 0; i < 4; i++ {
		b := net.NewNode(nodeName(i))
		b.AddNIC("nic0", 8)
		net.Connect(a, b)
	}
	if nic1.conns != 2 || nic2.conns != 2 {
		t.Fatalf("connection placement %d/%d, want 2/2", nic1.conns, nic2.conns)
	}
}

func nodeName(i int) string { return string(rune('p' + i)) }

func TestConnectSelfPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 1.0})
	a := net.NewNode("a")
	a.AddNIC("nic0", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	net.Connect(a, a)
}

func TestDuplicateNodePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 1.0})
	net.NewNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	net.NewNode("a")
}

func TestPeer(t *testing.T) {
	eng, net, a, b := testNet(t)
	_ = eng
	conn := net.Connect(a, b)
	if conn.Peer(a) != b || conn.Peer(b) != a {
		t.Fatal("Peer broken")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	_, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	conn.Send(a, -1, func() {})
}

func TestNodeLookupAndNames(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 1.0})
	a := net.NewNode("host")
	nic := a.AddNIC("mlx0", 100)
	if net.Node("host") != a || net.Node("absent") != nil {
		t.Fatal("Node lookup broken")
	}
	if nic.Name() != "host/mlx0" {
		t.Fatalf("nic name = %q", nic.Name())
	}
	if nic.RateBps() != 100e9 {
		t.Fatalf("rate = %d", nic.RateBps())
	}
}

func TestBusyAccounting(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.Send(a, 1000, func() {})
	eng.Run()
	nic := a.NICs()[0]
	if nic.BusyOut() != 1000 {
		t.Fatalf("busy out = %d, want 1000", nic.BusyOut())
	}
	if b.NICs()[0].BusyIn() != 1000 {
		t.Fatalf("busy in = %d, want 1000", b.NICs()[0].BusyIn())
	}
}

func TestGoodputBytesPerSec(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Config{Goodput: 0.92})
	a := net.NewNode("a")
	nic := a.AddNIC("nic0", 100)
	want := 100e9 / 8 * 0.92
	if got := nic.GoodputBytesPerSec(); got != want {
		t.Fatalf("goodput = %v, want %v", got, want)
	}
}

func TestInjectCorrupt(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectCorrupt(1.0)
	delivered, corrupted := 0, 0
	for i := 0; i < 10; i++ {
		conn.SendChecked(a, 10, func(c bool) {
			delivered++
			if c {
				corrupted++
			}
		})
	}
	eng.Run()
	// Unlike drops, corrupted messages still arrive — flagged.
	if delivered != 10 || corrupted != 10 {
		t.Fatalf("delivered=%d corrupted=%d, want 10/10", delivered, corrupted)
	}
	conn.InjectCorrupt(0)
	conn.SendChecked(a, 10, func(c bool) {
		if c {
			t.Error("clean message flagged corrupt")
		}
		delivered++
	})
	eng.Run()
	if delivered != 11 {
		t.Fatal("message not delivered after clearing corruption")
	}
}

func TestInjectCorruptDirection(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectCorruptDirection(a, 1.0)
	var aToB, bToA bool
	conn.SendChecked(a, 10, func(c bool) { aToB = c })
	conn.SendChecked(b, 10, func(c bool) { bToA = c })
	eng.Run()
	if !aToB || bToA {
		t.Fatalf("aToB corrupt=%v bToA corrupt=%v, want true/false", aToB, bToA)
	}
}

func TestInjectCorruptProbabilistic(t *testing.T) {
	eng, net, a, b := testNet(t)
	conn := net.Connect(a, b)
	conn.InjectCorrupt(0.3)
	delivered, corrupted := 0, 0
	for i := 0; i < 200; i++ {
		conn.SendChecked(a, 10, func(c bool) {
			delivered++
			if c {
				corrupted++
			}
		})
		eng.Run()
	}
	if delivered != 200 {
		t.Fatalf("delivered=%d, want 200 (corruption must not drop)", delivered)
	}
	if corrupted == 0 || corrupted == 200 {
		t.Fatalf("corrupted=%d, want a ~30%% mix", corrupted)
	}
}
